// Ablation bench for the design choices DESIGN.md calls out (beyond the
// paper's own figures):
//
//  A1. early-stop GET + trusted bloom skips (the paper's distinction vs
//      Speicher, §7): read latency with and without bloom filters;
//  A2. verification overhead: VRFY on vs off on the P2 read path;
//  A3. proof layout: sidecar trees vs paper-literal embedded full paths —
//      write cost and storage amplification;
//  A4. rollback defence: monotonic-counter sync period vs write latency.
#include "bench_common.h"

using namespace elsm;
using namespace elsm::bench;

int main() {
  PrintHeader("Ablations", "eLSM-P2 design-choice sensitivity",
              "early-stop+bloom and sidecar proofs should each be clear "
              "wins; VRFY is the price of untrusted reads");

  const uint64_t records = RecordsFor(1024);  // 1 GB-equivalent
  const uint64_t kOps = 2000;

  // --- A1: bloom-assisted early stop ---------------------------------------
  {
    Options with = BaseOptions(Mode::kP2);
    with.name = "ab-bloom";
    Store store = BuildStore(with, records);
    const double bloom_us = MeasureReadLatencyUs(*store.db, records, kOps);

    Options without = with;
    without.use_bloom = false;
    Reopen(store, without);
    const double nobloom_us = MeasureReadLatencyUs(*store.db, records, kOps);
    std::printf("A1 early-stop w/ bloom: %8.2f us   w/o bloom: %8.2f us  "
                "(bloom saves %.1f%%)\n",
                bloom_us, nobloom_us, 100.0 * (1.0 - bloom_us / nobloom_us));
    ReportRow("ablation", "a1-read-with-bloom", "variant", 0, bloom_us);
    ReportRow("ablation", "a1-read-without-bloom", "variant", 1, nobloom_us);
  }

  // --- A2: verification on/off ----------------------------------------------
  {
    Options verified = BaseOptions(Mode::kP2);
    verified.name = "ab-vrfy";
    Store store = BuildStore(verified, records);
    const double vrfy_us = MeasureReadLatencyUs(*store.db, records, kOps);

    Options unverified = verified;
    unverified.verify_reads = false;
    Reopen(store, unverified);
    const double raw_us = MeasureReadLatencyUs(*store.db, records, kOps);
    std::printf("A2 GET w/ VRFY:         %8.2f us   w/o VRFY:  %8.2f us  "
                "(verification costs %.2fx)\n",
                vrfy_us, raw_us, vrfy_us / raw_us);
    ReportRow("ablation", "a2-read-verified", "variant", 0, vrfy_us);
    ReportRow("ablation", "a2-read-unverified", "variant", 1, raw_us);
  }

  // --- A3: proof layout -------------------------------------------------------
  {
    Options sidecar = BaseOptions(Mode::kP2);
    sidecar.name = "ab-side";
    Store side_store = BuildStore(sidecar, records);
    uint64_t side_bytes = 0;
    for (const auto& name : side_store.fs->List(sidecar.name)) {
      side_bytes += side_store.fs->FileSize(name).value_or(0);
    }

    Options embedded = BaseOptions(Mode::kP2);
    embedded.name = "ab-embed";
    embedded.embed_full_paths = true;
    Store embed_store = BuildStore(embedded, records);
    uint64_t embed_bytes = 0;
    for (const auto& name : embed_store.fs->List(embedded.name)) {
      embed_bytes += embed_store.fs->FileSize(name).value_or(0);
    }
    std::printf("A3 storage @1GB-equiv:  sidecar %6.1f MiB  embedded-paths "
                "%6.1f MiB  (%.2fx amplification)\n",
                double(side_bytes) / (1 << 20), double(embed_bytes) / (1 << 20),
                double(embed_bytes) / double(side_bytes));
    std::printf("   write latency:       sidecar %6.2f us   embedded-paths "
                "%6.2f us\n",
                side_store.put_us, embed_store.put_us);
    ReportRow("ablation", "a3-storage-sidecar", "variant", 0,
              double(side_bytes) / (1 << 20), "mib");
    ReportRow("ablation", "a3-storage-embedded", "variant", 1,
              double(embed_bytes) / (1 << 20), "mib");
    ReportRow("ablation", "a3-write-sidecar", "variant", 0,
              side_store.put_us);
    ReportRow("ablation", "a3-write-embedded", "variant", 1,
              embed_store.put_us);
  }

  // --- A4: rollback-defence sync period ---------------------------------------
  {
    std::printf("A4 counter sync period vs write latency:\n");
    for (uint32_t period : {1u, 4u, 16u, 64u}) {
      Options o = BaseOptions(Mode::kP2);
      o.name = "ab-ctr";
      o.persist_manifest_on_flush = true;  // the defended configuration
      o.counter_sync_period = period;
      Store store = BuildStore(o, records / 4);
      std::printf("   every %2u flushes: %8.2f us/put\n", period,
                  store.put_us);
      ReportRow("ablation", "a4-write", "sync_period", period, store.put_us);
    }
  }
  return 0;
}
