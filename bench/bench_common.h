// Shared helpers for the figure-reproduction benches.
//
// Geometry: every size from the paper is divided by kScale = 128
// (DESIGN.md §2): EPC 128 MB -> 1 MiB, datasets 8 MB..5 GB -> 64 KiB..40 MiB,
// buffers likewise. Records keep the paper's 16-byte keys / 100-byte values.
// Latencies are *simulated* microseconds from the enclave cost model; the
// claims each bench checks are the paper's latency ratios, not absolutes.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "elsm/elsm_db.h"
#include "ycsb/kv_interface.h"
#include "ycsb/runner.h"
#include "ycsb/workload.h"

namespace elsm::bench {

inline constexpr uint64_t kScale = 128;
inline constexpr uint64_t kRecordBytes = 116;  // 16 B key + 100 B value

// Quick mode (ELSM_BENCH_QUICK=1): datasets are shrunk by a further 8x so
// the whole suite finishes in about a minute. Per-op costs stay honest;
// the EPC-crossing figure *shapes* are muted because buffers and the EPC
// keep their normal scaled sizes. Use full mode when checking the paper's
// claimed ratios.
inline uint64_t QuickDivisor() {
  static const uint64_t div = [] {
    const char* q = std::getenv("ELSM_BENCH_QUICK");
    return (q != nullptr && q[0] != '\0' && q[0] != '0') ? uint64_t(8)
                                                         : uint64_t(1);
  }();
  return div;
}

// Paper megabytes -> scaled bytes.
inline uint64_t ScaledBytes(double paper_mb) {
  return uint64_t(paper_mb * 1024.0 * 1024.0 / double(kScale));
}
inline uint64_t RecordsFor(double paper_mb) {
  return std::max<uint64_t>(ScaledBytes(paper_mb) / kRecordBytes /
                                QuickDivisor(),
                            64);
}

// ---------------------------------------------------------------------------
// Machine-readable output. When ELSM_BENCH_JSON names a file, every
// ReportRow() appends one JSON object per line (JSONL):
//   {"bench":"fig2","series":"inside","x_name":"buffer_mb","x":64,
//    "unit":"us","value":12.34}
// scripts/run_bench.sh sets the variable and folds the rows into
// BENCH_*.json. Without the variable the reporter is a no-op, so benches
// stay plain printf tools when run by hand.
// ---------------------------------------------------------------------------
class JsonReporter {
 public:
  static JsonReporter& Instance() {
    static JsonReporter reporter;
    return reporter;
  }

  void Row(const char* bench, const std::string& series, const char* x_name,
           double x, double value, const char* unit) {
    if (file_ == nullptr) return;
    std::fprintf(file_,
                 "{\"bench\":\"%s\",\"series\":\"%s\",\"x_name\":\"%s\","
                 "\"x\":%.6g,\"unit\":\"%s\",\"value\":%.6g}\n",
                 Escape(bench).c_str(), Escape(series).c_str(),
                 Escape(x_name).c_str(), x, Escape(unit).c_str(), value);
    std::fflush(file_);
  }

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

 private:
  JsonReporter() {
    const char* path = std::getenv("ELSM_BENCH_JSON");
    if (path != nullptr && path[0] != '\0') file_ = std::fopen(path, "a");
  }
  ~JsonReporter() {
    if (file_ != nullptr) std::fclose(file_);
  }

  // Labels are plain ASCII identifiers; escape the JSON specials anyway.
  static std::string Escape(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;
      out.push_back(c);
    }
    return out;
  }

  std::FILE* file_ = nullptr;
};

// One measured point: `series` is the line in the figure (e.g. "inside",
// "p2-mmap"), `x` its position on the x axis, `value` the latency in `unit`.
inline void ReportRow(const char* bench, const std::string& series,
                      const char* x_name, double x, double value,
                      const char* unit = "us") {
  JsonReporter::Instance().Row(bench, series, x_name, x, value, unit);
}

// Scaled default geometry shared by all benches.
inline Options BaseOptions(Mode mode) {
  Options o;
  o.mode = mode;
  o.memtable_bytes = 32 << 10;  // paper: 4 MB write buffer
  o.level1_bytes = 128 << 10;
  o.level_ratio = 4;
  o.block_bytes = 4096;
  o.file_bytes = 32 << 10;
  o.read_buffer_bytes = ScaledBytes(1024);  // 1 GB-equivalent default
  o.persist_manifest_on_flush = false;      // isolate the measured path
  o.counter_sync_period = 16;
  o.cost_model.epc_bytes = 1 << 20;  // paper: 128 MB EPC
  return o;
}

// A store whose untrusted disk + trusted platform survive reopens, so one
// load can be measured under many configurations.
//
// `put_us` is the steady-state amortized write latency: the mean simulated
// latency of the second half of the load phase, which includes every flush
// and ripple compaction those puts triggered — the paper's own methodology
// ("the time for COMPACTION amortized to the individual PUT", §6.4).
// Deep-level merges are rare spikes, so short measurement windows would be
// dominated by whether one happened to fall inside; amortizing over half
// the load is deterministic and steady.
struct Store {
  std::shared_ptr<storage::Fs> fs;
  std::shared_ptr<TrustedPlatform> platform;
  std::unique_ptr<ElsmDb> db;
  double put_us = 0;
};

inline Store BuildStore(const Options& options, uint64_t records) {
  Store store;
  store.platform = std::make_shared<TrustedPlatform>();
  auto enclave = std::make_shared<sgx::Enclave>(options.cost_model,
                                                options.mode != Mode::kUnsecured);
  store.fs = storage::MakeFs(options.backend, options.backend_dir, enclave);
  auto db = ElsmDb::Open(options, store.fs, store.platform);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    std::abort();
  }
  store.db = std::move(db).value();
  for (uint64_t i = 0; i < records; ++i) {
    if (i == records / 2) store.db->ResetOpStats();
    const Status s = store.db->Put(ycsb::MakeKey(i, 16), ycsb::MakeValue(i, 100));
    if (!s.ok()) {
      std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
      std::abort();
    }
  }
  store.put_us = store.db->op_stats().put.Mean() / 1000.0;
  if (!store.db->CompactAll().ok()) std::abort();
  return store;
}

// Reopens the same disk under a different configuration (e.g. another
// buffer size or read path). The mode must match how the data was built.
inline void Reopen(Store& store, const Options& options) {
  if (store.db != nullptr && !store.db->Close().ok()) std::abort();
  store.db.reset();
  auto db = ElsmDb::Open(options, store.fs, store.platform);
  if (!db.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n",
                 db.status().ToString().c_str());
    std::abort();
  }
  store.db = std::move(db).value();
}

// Mean simulated latency (us) of `ops` uniform random GETs over [0, records).
inline double MeasureReadLatencyUs(ElsmDb& db, uint64_t records,
                                   uint64_t ops) {
  Rng rng(0xbeef);
  const uint64_t start = db.enclave().now_ns();
  for (uint64_t i = 0; i < ops; ++i) {
    auto got = db.Get(ycsb::MakeKey(rng.Uniform(records), 16));
    if (!got.ok()) {
      std::fprintf(stderr, "read failed: %s\n",
                   got.status().ToString().c_str());
      std::abort();
    }
  }
  return double(db.enclave().now_ns() - start) / double(ops) / 1000.0;
}

// Mean simulated latency (us) of uniform random overwrite PUTs, amortized
// over a window covering 25 % of the keyspace (clamped) so that flushes and
// their proportional share of ripple compactions are included.
inline double MeasureWriteLatencyUs(ElsmDb& db, uint64_t records,
                                    uint64_t min_ops) {
  const uint64_t ops =
      std::max<uint64_t>(min_ops, std::min<uint64_t>(records / 4, 80'000));
  Rng rng(0xfeed);
  const uint64_t start = db.enclave().now_ns();
  for (uint64_t i = 0; i < ops; ++i) {
    const uint64_t k = rng.Uniform(records);
    if (!db.Put(ycsb::MakeKey(k, 16), ycsb::MakeValue(k + i, 100)).ok()) {
      std::abort();
    }
  }
  return double(db.enclave().now_ns() - start) / double(ops) / 1000.0;
}

// Mean simulated latency (us) of a mix: reads measured directly with the
// spec's key distribution; updates/inserts priced at the store's amortized
// steady-state put cost (see Store::put_us); read-modify-writes pay both.
inline double ComposedMixLatencyUs(const Store& store, ycsb::WorkloadSpec spec,
                                   uint64_t records, uint64_t read_ops) {
  const double write_frac = spec.update_proportion + spec.insert_proportion;
  const double rmw_frac = spec.rmw_proportion;
  const double read_frac = spec.read_proportion + spec.scan_proportion;

  double read_us = 0;
  if (read_frac + rmw_frac > 0) {
    ycsb::WorkloadSpec reads = spec;
    reads.read_proportion = 1.0;
    reads.update_proportion = reads.insert_proportion = 0;
    reads.scan_proportion = reads.rmw_proportion = 0;
    reads.record_count = records;
    reads.operation_count = read_ops;
    ycsb::ElsmKv kv(store.db.get());
    ycsb::YcsbRunner runner(reads);
    auto stats = runner.Run(kv);
    if (!stats.ok()) {
      std::fprintf(stderr, "mix reads failed: %s\n",
                   stats.status().ToString().c_str());
      std::abort();
    }
    read_us = stats.value().MeanLatencyUs();
  }
  return read_frac * read_us + write_frac * store.put_us +
         rmw_frac * (read_us + store.put_us);
}

inline void PrintHeader(const char* figure, const char* title,
                        const char* expectation) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("geometry: paper sizes / %llu; latencies are simulated us/op\n",
              (unsigned long long)kScale);
  std::printf("paper expectation: %s\n", expectation);
  std::printf("==============================================================\n");
}

}  // namespace elsm::bench
