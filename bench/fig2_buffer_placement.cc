// Figure 2: read latency of an SGX-ported LSM store with the read buffer
// placed inside vs outside the enclave, sweeping the buffer size.
//
// Paper setup: 5 GB dataset (memory-resident), read-only uniform workload,
// buffer 4 MB..2048 MB, EPC 128 MB. Expected shape: inside ≈ 2x outside at
// small buffers (extra boundary copy, S1); once the buffer outgrows the
// EPC, enclave paging pushes the inside series to ≈ 4.5x (S2); outside
// stays flat.
#include "bench_common.h"

using namespace elsm;
using namespace elsm::bench;

int main() {
  PrintHeader("Figure 2", "read buffer inside vs outside the enclave",
              "inside/outside ~2x at small buffers, ~4.5x past the EPC; "
              "outside flat");

  const double kPaperDataMb = 5 * 1024;  // 5 GB
  const uint64_t records = RecordsFor(kPaperDataMb);
  const uint64_t kOps = 2000;

  // Outside series: the same engine with the buffer in untrusted memory and
  // no data authentication (the paper's pre-eLSM port).
  Options outside = BaseOptions(Mode::kP2);
  outside.authenticate_data = false;
  outside.read_path = lsm::ReadPathKind::kBuffer;
  outside.name = "fig2o";
  Store outside_store = BuildStore(outside, records);

  // Inside series: eLSM-P1 (buffer in the EPC, SDK file protection).
  Options inside = BaseOptions(Mode::kP1);
  inside.name = "fig2i";
  Store inside_store = BuildStore(inside, records);

  std::printf("%12s %18s %18s %8s\n", "buffer(MB)", "outside(us)",
              "inside-P1(us)", "ratio");
  const double paper_buffer_mb[] = {4,   8,   16,  32,  64,  128, 200,
                                    400, 600, 800, 1000, 1500, 2000};
  for (double mb : paper_buffer_mb) {
    outside.read_buffer_bytes = ScaledBytes(mb);
    Reopen(outside_store, outside);
    const double out_us =
        MeasureReadLatencyUs(*outside_store.db, records, kOps);

    inside.read_buffer_bytes = ScaledBytes(mb);
    Reopen(inside_store, inside);
    const double in_us = MeasureReadLatencyUs(*inside_store.db, records, kOps);

    std::printf("%12.0f %18.2f %18.2f %7.2fx\n", mb, out_us, in_us,
                in_us / out_us);
    ReportRow("fig2", "outside", "buffer_mb", mb, out_us);
    ReportRow("fig2", "inside-p1", "buffer_mb", mb, in_us);
  }
  return 0;
}
