// Figure 5a (+ Table 1 header): operation latency vs read percentage for
// eLSM-P2-mmap, eLSM-P1 and unsecured LevelDB; 3 GB dataset, uniform keys.
//
// Expected shape: P1 wins only at/near write-only; P2 wins everywhere else
// with the gap peaking around 70 % reads (the paper's headline "4.5X");
// P2 stays within ~1.5-4x of the unsecured ideal.
#include "bench_common.h"

using namespace elsm;
using namespace elsm::bench;

int main() {
  std::printf("Table 1 recap — design choices:\n");
  std::printf("  eLSM-P1: code in enclave, data in enclave, file-granularity "
              "digests\n");
  std::printf("  eLSM-P2: code in enclave, data outside,  record-granularity "
              "digests\n\n");
  PrintHeader("Figure 5a", "latency vs read/write ratio (3 GB, uniform)",
              "P1 fastest at write-only; P2 up to ~4.5x faster than P1 near "
              "70% reads; P2 within 1.5-4x of unsecured");

  const uint64_t records = RecordsFor(3 * 1024);
  const uint64_t kOps = 3000;

  Options p2 = BaseOptions(Mode::kP2);
  p2.name = "f5a-p2";
  Store p2_store = BuildStore(p2, records);

  Options p1 = BaseOptions(Mode::kP1);
  p1.name = "f5a-p1";
  Store p1_store = BuildStore(p1, records);

  Options raw = BaseOptions(Mode::kUnsecured);
  raw.name = "f5a-raw";
  Store raw_store = BuildStore(raw, records);

  std::printf("%8s %14s %14s %16s %10s %12s\n", "read%", "P2-mmap(us)",
              "P1(us)", "unsecured(us)", "P2/raw", "P1/P2");
  for (int read_pct = 0; read_pct <= 100; read_pct += 10) {
    const auto spec = ycsb::WorkloadSpec::ReadWriteMix(
        read_pct, ycsb::KeyDistribution::kUniform);
    const double p2_us = ComposedMixLatencyUs(p2_store, spec, records, kOps);
    const double p1_us = ComposedMixLatencyUs(p1_store, spec, records, kOps);
    const double raw_us =
        ComposedMixLatencyUs(raw_store, spec, records, kOps);
    std::printf("%8d %14.2f %14.2f %16.2f %9.2fx %11.2fx\n", read_pct, p2_us,
                p1_us, raw_us, p2_us / raw_us, p1_us / p2_us);
    ReportRow("fig5a", "p2-mmap", "read_pct", read_pct, p2_us);
    ReportRow("fig5a", "p1", "read_pct", read_pct, p1_us);
    ReportRow("fig5a", "unsecured", "read_pct", read_pct, raw_us);
  }
  return 0;
}
