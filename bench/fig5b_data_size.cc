// Figure 5b: YCSB workload A (50/50, zipfian) latency vs data size for
// eLSM-P2-mmap, eLSM-P1 and the Eleos baseline.
//
// Expected shape: the P2/P1 gap widens with data size (toward ~7x at 3 GB);
// Eleos is slowest and stops scaling at its 1 GB-equivalent cap.
#include "bench_common.h"

#include "baseline/eleos_store.h"

using namespace elsm;
using namespace elsm::bench;

namespace {

// Loads an Eleos store and runs workload A over it; returns mean us/op or
// a negative value if the capacity cap was hit during load.
double EleosWorkloadA(uint64_t records, uint64_t ops) {
  sgx::CostModel m;
  m.epc_bytes = 1 << 20;
  auto enclave = std::make_shared<sgx::Enclave>(m, true);
  baseline::EleosOptions options;
  options.capacity_bytes = ScaledBytes(1024);  // the 1 GB scaling cap
  baseline::EleosStore store(options, enclave);
  for (uint64_t i = 0; i < records; ++i) {
    if (!store.Put(ycsb::MakeKey(i, 16), ycsb::MakeValue(i, 100)).ok()) {
      return -1.0;
    }
  }
  ycsb::EleosKv kv(&store, enclave.get());
  auto spec = ycsb::WorkloadSpec::A();
  spec.record_count = records;
  spec.operation_count = ops;
  ycsb::YcsbRunner runner(spec);
  auto stats = runner.Run(kv);
  if (!stats.ok() || stats.value().failures > 0) return -1.0;
  return stats.value().MeanLatencyUs();
}

}  // namespace

int main() {
  PrintHeader("Figure 5b", "YCSB-A latency vs data size (zipfian)",
              "P2/P1 gap grows with data (to ~7x at 3 GB); Eleos slowest and "
              "capped at 1 GB");

  const double paper_gb[] = {0.6, 0.8, 1.0, 2.0, 3.0};
  const uint64_t kOps = 3000;

  std::printf("%10s %14s %14s %12s %10s\n", "data(GB)", "P2-mmap(us)",
              "P1(us)", "Eleos(us)", "P1/P2");
  for (double gb : paper_gb) {
    const uint64_t records = RecordsFor(gb * 1024);

    Options p2 = BaseOptions(Mode::kP2);
    p2.name = "f5b-p2";
    Store p2_store = BuildStore(p2, records);
    const double p2_us =
        ComposedMixLatencyUs(p2_store, ycsb::WorkloadSpec::A(), records, kOps);

    Options p1 = BaseOptions(Mode::kP1);
    p1.name = "f5b-p1";
    Store p1_store = BuildStore(p1, records);
    const double p1_us =
        ComposedMixLatencyUs(p1_store, ycsb::WorkloadSpec::A(), records, kOps);

    const double eleos_us = EleosWorkloadA(records, kOps);
    if (eleos_us < 0) {
      std::printf("%10.1f %14.2f %14.2f %12s %9.2fx\n", gb, p2_us, p1_us,
                  "capped", p1_us / p2_us);
    } else {
      std::printf("%10.1f %14.2f %14.2f %12.2f %9.2fx\n", gb, p2_us, p1_us,
                  eleos_us, p1_us / p2_us);
      ReportRow("fig5b", "eleos", "data_gb", gb, eleos_us);
    }
    ReportRow("fig5b", "p2-mmap", "data_gb", gb, p2_us);
    ReportRow("fig5b", "p1", "data_gb", gb, p1_us);
  }
  return 0;
}
