// Figure 5c: operation latency under Uniform / Zipfian / Latest key
// distributions (YCSB-A mix, 3 GB data).
//
// Expected shape: eLSM-P1 is hurt most by Uniform (largest working set ⇒
// heaviest enclave paging) and least by Latest (small, recent working set);
// eLSM-P2 is comparatively insensitive to the distribution.
#include "bench_common.h"

using namespace elsm;
using namespace elsm::bench;

int main() {
  PrintHeader("Figure 5c", "latency vs key distribution (YCSB-A mix, 3 GB)",
              "P1 worst under Uniform, best under Latest; P2 insensitive");

  const uint64_t records = RecordsFor(3 * 1024);
  const uint64_t kOps = 3000;

  Options p2 = BaseOptions(Mode::kP2);
  p2.name = "f5c-p2";
  Store p2_store = BuildStore(p2, records);

  Options p1 = BaseOptions(Mode::kP1);
  p1.name = "f5c-p1";
  Store p1_store = BuildStore(p1, records);

  const ycsb::KeyDistribution dists[] = {ycsb::KeyDistribution::kUniform,
                                         ycsb::KeyDistribution::kZipfian,
                                         ycsb::KeyDistribution::kLatest};

  std::printf("%12s %14s %14s %10s\n", "distribution", "P2-mmap(us)",
              "P1(us)", "P1/P2");
  int dist_index = 0;
  for (auto dist : dists) {
    auto spec = ycsb::WorkloadSpec::A();
    spec.distribution = dist;
    const double p2_us = ComposedMixLatencyUs(p2_store, spec, records, kOps);
    const double p1_us = ComposedMixLatencyUs(p1_store, spec, records, kOps);
    std::printf("%12s %14.2f %14.2f %9.2fx\n", ycsb::KeyDistributionName(dist),
                p2_us, p1_us, p1_us / p2_us);
    const std::string name = ycsb::KeyDistributionName(dist);
    ReportRow("fig5c", std::string("p2-mmap/") + name, "dist_index",
              dist_index, p2_us);
    ReportRow("fig5c", std::string("p1/") + name, "dist_index", dist_index,
              p1_us);
    ++dist_index;
  }
  return 0;
}
