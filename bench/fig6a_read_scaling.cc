// Figure 6a: read-only latency vs data size (8 MB .. 3 GB) for eLSM-P2-mmap,
// eLSM-P1, Eleos and the unsecured buffer-outside baseline.
//
// Expected shape: below the EPC (128 MB-equivalent) P1/Eleos beat P2 (no
// proof work); past it they climb steeply while P2 stays ~flat; Eleos stops
// at its 1 GB cap; unsecured is the floor.
#include "bench_common.h"

#include "baseline/eleos_store.h"

using namespace elsm;
using namespace elsm::bench;

namespace {

double EleosReadLatency(uint64_t records, uint64_t ops) {
  sgx::CostModel m;
  m.epc_bytes = 1 << 20;
  auto enclave = std::make_shared<sgx::Enclave>(m, true);
  baseline::EleosOptions options;
  options.capacity_bytes = ScaledBytes(1024);
  baseline::EleosStore store(options, enclave);
  for (uint64_t i = 0; i < records; ++i) {
    if (!store.Put(ycsb::MakeKey(i, 16), ycsb::MakeValue(i, 100)).ok()) {
      return -1.0;
    }
  }
  Rng rng(0xbeef);
  const uint64_t start = enclave->now_ns();
  for (uint64_t i = 0; i < ops; ++i) {
    (void)store.Get(ycsb::MakeKey(rng.Uniform(records), 16));
  }
  return double(enclave->now_ns() - start) / double(ops) / 1000.0;
}

}  // namespace

int main() {
  PrintHeader("Figure 6a", "read latency vs data size (read-only, uniform)",
              "P1/Eleos fastest below the EPC, then climb; P2-mmap ~flat; "
              "Eleos capped at 1 GB; unsecured is the floor");

  const double paper_mb[] = {8, 64, 128, 256, 512, 1024, 2048, 3072};
  const uint64_t kOps = 2000;

  std::printf("%10s %14s %10s %12s %16s\n", "data(MB)", "P2-mmap(us)",
              "P1(us)", "Eleos(us)", "unsecured(us)");
  for (double mb : paper_mb) {
    const uint64_t records = RecordsFor(mb);

    Options p2 = BaseOptions(Mode::kP2);
    p2.name = "f6a-p2";
    Store p2_store = BuildStore(p2, records);
    const double p2_us = MeasureReadLatencyUs(*p2_store.db, records, kOps);

    Options p1 = BaseOptions(Mode::kP1);
    p1.name = "f6a-p1";
    Store p1_store = BuildStore(p1, records);
    const double p1_us = MeasureReadLatencyUs(*p1_store.db, records, kOps);

    const double eleos_us = EleosReadLatency(records, kOps);

    Options raw = BaseOptions(Mode::kUnsecured);
    raw.name = "f6a-raw";
    raw.read_path = lsm::ReadPathKind::kBuffer;
    Store raw_store = BuildStore(raw, records);
    const double raw_us = MeasureReadLatencyUs(*raw_store.db, records, kOps);

    if (eleos_us < 0) {
      std::printf("%10.0f %14.2f %10.2f %12s %16.2f\n", mb, p2_us, p1_us,
                  "capped", raw_us);
    } else {
      std::printf("%10.0f %14.2f %10.2f %12.2f %16.2f\n", mb, p2_us, p1_us,
                  eleos_us, raw_us);
      ReportRow("fig6a", "eleos", "data_mb", mb, eleos_us);
    }
    ReportRow("fig6a", "p2-mmap", "data_mb", mb, p2_us);
    ReportRow("fig6a", "p1", "data_mb", mb, p1_us);
    ReportRow("fig6a", "unsecured", "data_mb", mb, raw_us);
  }
  return 0;
}
