// Figure 6b: eLSM-P2 read latency, mmap read path vs user-space buffer read
// path, across data sizes.
//
// Expected shape: similar at small data (everything cached); the mmap
// advantage grows with data size (paper: ~5x at the largest scale) because
// buffer misses pay a world switch plus copies while mmap reads untrusted
// memory exitlessly.
#include "bench_common.h"

using namespace elsm;
using namespace elsm::bench;

int main() {
  PrintHeader("Figure 6b", "eLSM-P2: mmap vs buffer read path",
              "mmap advantage grows with data size (paper: ~5x at 3 GB)");

  const double paper_mb[] = {8, 16, 64, 128, 256, 512, 1024, 2048, 3072};
  const uint64_t kOps = 2000;

  std::printf("%10s %14s %16s %10s\n", "data(MB)", "P2-mmap(us)",
              "P2-buffer(us)", "ratio");
  for (double mb : paper_mb) {
    const uint64_t records = RecordsFor(mb);

    Options p2 = BaseOptions(Mode::kP2);
    p2.name = "f6b-p2";
    Store store = BuildStore(p2, records);
    const double mmap_us = MeasureReadLatencyUs(*store.db, records, kOps);

    Options buffered = p2;
    buffered.read_path = lsm::ReadPathKind::kBuffer;
    buffered.read_buffer_bytes = ScaledBytes(64);  // LevelDB-default-ish 8 MB
    Reopen(store, buffered);
    const double buffer_us = MeasureReadLatencyUs(*store.db, records, kOps);

    std::printf("%10.0f %14.2f %16.2f %9.2fx\n", mb, mmap_us, buffer_us,
                buffer_us / mmap_us);
    ReportRow("fig6b", "p2-mmap", "data_mb", mb, mmap_us);
    ReportRow("fig6b", "p2-buffer", "data_mb", mb, buffer_us);
  }
  return 0;
}
