// Figure 6c: read latency vs user-space buffer size at fixed 2 GB data —
// eLSM-P2 (buffer outside) vs eLSM-P1 (buffer inside the enclave).
//
// Expected shape: P2-buffer stays flat as the buffer grows; P1 degrades
// sharply once the buffer exceeds the EPC; overall P2-buffer is ~1.6-2.3x
// faster than P1.
#include "bench_common.h"

using namespace elsm;
using namespace elsm::bench;

int main() {
  PrintHeader("Figure 6c", "read latency vs buffer size (2 GB data)",
              "P2 flat; P1 jumps past the 128 MB-equivalent EPC; P2 ~1.6-2.3x "
              "faster");

  const uint64_t records = RecordsFor(2 * 1024);
  const uint64_t kOps = 2000;

  Options p2 = BaseOptions(Mode::kP2);
  p2.read_path = lsm::ReadPathKind::kBuffer;
  p2.name = "f6c-p2";
  Store p2_store = BuildStore(p2, records);

  Options p1 = BaseOptions(Mode::kP1);
  p1.name = "f6c-p1";
  Store p1_store = BuildStore(p1, records);

  const double paper_buffer_mb[] = {32, 64, 128, 256, 512, 1024, 1536, 2048};

  std::printf("%12s %16s %10s %10s\n", "buffer(MB)", "P2-buffer(us)",
              "P1(us)", "P1/P2");
  for (double mb : paper_buffer_mb) {
    p2.read_buffer_bytes = ScaledBytes(mb);
    Reopen(p2_store, p2);
    const double p2_us = MeasureReadLatencyUs(*p2_store.db, records, kOps);

    p1.read_buffer_bytes = ScaledBytes(mb);
    Reopen(p1_store, p1);
    const double p1_us = MeasureReadLatencyUs(*p1_store.db, records, kOps);

    std::printf("%12.0f %16.2f %10.2f %9.2fx\n", mb, p2_us, p1_us,
                p1_us / p2_us);
    ReportRow("fig6c", "p2-buffer", "buffer_mb", mb, p2_us);
    ReportRow("fig6c", "p1", "buffer_mb", mb, p1_us);
  }
  return 0;
}
