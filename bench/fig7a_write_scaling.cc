// Figure 7a: write latency (compaction on, amortized into puts) vs data
// size for eLSM-P2-mmap, eLSM-P1 and Eleos.
//
// Expected shape: P1 is the fastest writer (hardware protection, no proof
// building); P2 pays ~1.3-2.3x of P1 for authenticated compaction and
// embedded proofs; Eleos (update-in-place) is slowest and capped at 1 GB.
#include "bench_common.h"

#include "baseline/eleos_store.h"

using namespace elsm;
using namespace elsm::bench;

namespace {

double EleosWriteLatency(uint64_t records, uint64_t ops) {
  sgx::CostModel m;
  m.epc_bytes = 1 << 20;
  auto enclave = std::make_shared<sgx::Enclave>(m, true);
  baseline::EleosOptions options;
  options.capacity_bytes = ScaledBytes(1024);
  baseline::EleosStore store(options, enclave);
  for (uint64_t i = 0; i < records; ++i) {
    if (!store.Put(ycsb::MakeKey(i, 16), ycsb::MakeValue(i, 100)).ok()) {
      return -1.0;
    }
  }
  Rng rng(0xfeed);
  const uint64_t start = enclave->now_ns();
  for (uint64_t i = 0; i < ops; ++i) {
    const uint64_t k = rng.Uniform(records);
    if (!store.Put(ycsb::MakeKey(k, 16), ycsb::MakeValue(k + i, 100)).ok()) {
      return -1.0;
    }
  }
  return double(enclave->now_ns() - start) / double(ops) / 1000.0;
}

}  // namespace

int main() {
  PrintHeader("Figure 7a", "write latency vs data size (compaction on)",
              "P1 fastest; P2 ~1.3-2.3x of P1; Eleos slowest, capped at 1 GB");

  const double paper_gb[] = {0.2, 1.0, 2.0, 3.0, 4.0};
  const uint64_t kOps = 4000;

  std::printf("%10s %14s %10s %12s %10s\n", "data(GB)", "P2-mmap(us)",
              "P1(us)", "Eleos(us)", "P2/P1");
  for (double gb : paper_gb) {
    const uint64_t records = RecordsFor(gb * 1024);

    Options p2 = BaseOptions(Mode::kP2);
    p2.name = "f7a-p2";
    Store p2_store = BuildStore(p2, records);
    const double p2_us = MeasureWriteLatencyUs(*p2_store.db, records, kOps);

    Options p1 = BaseOptions(Mode::kP1);
    p1.name = "f7a-p1";
    Store p1_store = BuildStore(p1, records);
    const double p1_us = MeasureWriteLatencyUs(*p1_store.db, records, kOps);

    const double eleos_us = EleosWriteLatency(records, kOps);
    if (eleos_us < 0) {
      std::printf("%10.1f %14.2f %10.2f %12s %9.2fx\n", gb, p2_us, p1_us,
                  "capped", p2_us / p1_us);
    } else {
      std::printf("%10.1f %14.2f %10.2f %12.2f %9.2fx\n", gb, p2_us, p1_us,
                  eleos_us, p2_us / p1_us);
      ReportRow("fig7a", "eleos", "data_gb", gb, eleos_us);
    }
    ReportRow("fig7a", "p2-mmap", "data_gb", gb, p2_us);
    ReportRow("fig7a", "p1", "data_gb", gb, p1_us);
    // Streaming-compaction memory: high-water mark of entry bytes one merge
    // held resident (O(blocks in flight), not O(level)).
    const double peak_kb =
        double(p2_store.db->engine()
                   .stats()
                   .compaction_peak_resident_bytes.load()) /
        1024.0;
    ReportRow("fig7a", "p2-compaction-peak", "data_gb", gb, peak_kb, "kb");
  }
  return 0;
}
