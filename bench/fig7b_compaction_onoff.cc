// Figure 7b: write latency with vs without COMPACTION for eLSM-P2 and
// eLSM-P1.
//
// Expected shape: enabling compaction costs ~2-4x on the write path (the
// merge work amortizes into every put); with or without it, P2 writes are
// slower than P1 (embedded-proof construction).
#include "bench_common.h"

using namespace elsm;
using namespace elsm::bench;

namespace {

double WriteLatency(Mode mode, const char* name, uint64_t records,
                    uint64_t ops, bool compaction) {
  Options o = BaseOptions(mode);
  o.name = name;
  Store store = BuildStore(o, records);  // loaded with compaction on
  if (!compaction) {
    Options off = o;
    off.compaction_enabled = false;
    Reopen(store, off);
  }
  return MeasureWriteLatencyUs(*store.db, records, ops);
}

}  // namespace

int main() {
  PrintHeader("Figure 7b", "write latency with/without compaction",
              "compaction costs ~2-4x on the write path; P2 > P1 either way");

  const double paper_gb[] = {0.2, 1.0, 2.0, 3.0, 4.0};
  const uint64_t kOps = 4000;

  std::printf("%10s %12s %12s %14s %14s %12s\n", "data(GB)", "P2 w(us)",
              "P1 w(us)", "P2 w/o(us)", "P1 w/o(us)", "P2 w/(w/o)");
  for (double gb : paper_gb) {
    const uint64_t records = RecordsFor(gb * 1024);
    const double p2_on = WriteLatency(Mode::kP2, "f7b-p2on", records, kOps, true);
    const double p1_on = WriteLatency(Mode::kP1, "f7b-p1on", records, kOps, true);
    const double p2_off =
        WriteLatency(Mode::kP2, "f7b-p2off", records, kOps, false);
    const double p1_off =
        WriteLatency(Mode::kP1, "f7b-p1off", records, kOps, false);
    std::printf("%10.1f %12.2f %12.2f %14.2f %14.2f %11.2fx\n", gb, p2_on,
                p1_on, p2_off, p1_off, p2_on / p2_off);
    ReportRow("fig7b", "p2-compaction-on", "data_gb", gb, p2_on);
    ReportRow("fig7b", "p1-compaction-on", "data_gb", gb, p1_on);
    ReportRow("fig7b", "p2-compaction-off", "data_gb", gb, p2_off);
    ReportRow("fig7b", "p1-compaction-off", "data_gb", gb, p1_off);
  }
  return 0;
}
