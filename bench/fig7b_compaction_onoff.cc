// Figure 7b: write latency with vs without COMPACTION for eLSM-P2 and
// eLSM-P1, plus reads racing a deep merge: wall-clock Get p99 while the
// merge runs inline (blocking the facade lock) vs on the engine's
// background thread (snapshot reads, PR 2).
//
// Expected shape: enabling compaction costs ~2-4x on the write path (the
// merge work amortizes into every put); with or without it, P2 writes are
// slower than P1 (embedded-proof construction). Background compaction cuts
// mid-merge Get p99 by orders of magnitude, with compaction memory bounded
// by blocks in flight (peak-resident row), not level size.
#include "bench_common.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/histogram.h"

using namespace elsm;
using namespace elsm::bench;

namespace {

double WriteLatency(Mode mode, const char* name, uint64_t records,
                    uint64_t ops, bool compaction) {
  Options o = BaseOptions(mode);
  o.name = name;
  Store store = BuildStore(o, records);  // loaded with compaction on
  if (!compaction) {
    Options off = o;
    off.compaction_enabled = false;
    Reopen(store, off);
  }
  return MeasureWriteLatencyUs(*store.db, records, ops);
}

struct CompactionReadResult {
  double p99_us_wall = 0;
  double mean_us_wall = 0;
  uint64_t reads = 0;
  double peak_resident_kb = 0;
};

// Loads and fully compacts a store, reopens it with capacities shrunk so a
// full cascade of merges is pending, then measures wall-clock Get latency
// while the cascade runs — inline (background=false: the merge holds the
// facade's write lock) or on the engine thread (background=true: readers
// run against immutable snapshots).
CompactionReadResult ReadLatencyDuringCompaction(bool background,
                                                 uint64_t records) {
  Options o = BaseOptions(Mode::kP2);
  o.name = background ? "f7b-bgc" : "f7b-fgc";
  Store store = BuildStore(o, records);
  Options small = o;
  small.level1_bytes = 8 << 10;  // everything is now over capacity
  small.background_compaction = background;
  Reopen(store, small);

  std::atomic<bool> done{false};
  std::thread compactor([&] {
    if (background) {
      store.db->ScheduleCompaction();
      if (!store.db->WaitForCompaction().ok()) std::abort();
    } else {
      if (!store.db->Flush().ok()) std::abort();  // inline ripple cascade
    }
    done = true;
  });

  Histogram h;
  Rng rng(0xc0ffee);
  using clock = std::chrono::steady_clock;
  while (!done.load(std::memory_order_relaxed)) {
    const auto t0 = clock::now();
    auto got = store.db->Get(ycsb::MakeKey(rng.Uniform(records), 16));
    if (!got.ok()) std::abort();
    h.Add(uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
            .count()));
  }
  compactor.join();

  CompactionReadResult r;
  r.p99_us_wall = h.Percentile(99) / 1000.0;
  r.mean_us_wall = h.Mean() / 1000.0;
  r.reads = h.count();
  r.peak_resident_kb =
      double(store.db->engine()
                 .stats()
                 .compaction_peak_resident_bytes.load(std::memory_order_relaxed)) /
      1024.0;
  return r;
}

}  // namespace

int main() {
  PrintHeader("Figure 7b", "write latency with/without compaction",
              "compaction costs ~2-4x on the write path; P2 > P1 either way");

  const double paper_gb[] = {0.2, 1.0, 2.0, 3.0, 4.0};
  const uint64_t kOps = 4000;

  std::printf("%10s %12s %12s %14s %14s %12s\n", "data(GB)", "P2 w(us)",
              "P1 w(us)", "P2 w/o(us)", "P1 w/o(us)", "P2 w/(w/o)");
  for (double gb : paper_gb) {
    const uint64_t records = RecordsFor(gb * 1024);
    const double p2_on = WriteLatency(Mode::kP2, "f7b-p2on", records, kOps, true);
    const double p1_on = WriteLatency(Mode::kP1, "f7b-p1on", records, kOps, true);
    const double p2_off =
        WriteLatency(Mode::kP2, "f7b-p2off", records, kOps, false);
    const double p1_off =
        WriteLatency(Mode::kP1, "f7b-p1off", records, kOps, false);
    std::printf("%10.1f %12.2f %12.2f %14.2f %14.2f %11.2fx\n", gb, p2_on,
                p1_on, p2_off, p1_off, p2_on / p2_off);
    ReportRow("fig7b", "p2-compaction-on", "data_gb", gb, p2_on);
    ReportRow("fig7b", "p1-compaction-on", "data_gb", gb, p1_on);
    ReportRow("fig7b", "p2-compaction-off", "data_gb", gb, p2_off);
    ReportRow("fig7b", "p1-compaction-off", "data_gb", gb, p1_off);
  }

  // PR 2: reads racing a deep merge (wall-clock, so these rows are
  // machine-dependent — compare the inline/background ratio, not absolutes).
  const double kConcurrentGb = 2.0;
  const uint64_t records = RecordsFor(kConcurrentGb * 1024);
  const CompactionReadResult inline_merge =
      ReadLatencyDuringCompaction(/*background=*/false, records);
  const CompactionReadResult bg_merge =
      ReadLatencyDuringCompaction(/*background=*/true, records);
  std::printf("\nGET while a %.1f GB-scale cascade compacts (wall-clock):\n",
              kConcurrentGb);
  std::printf("%12s %14s %14s %10s %14s\n", "merge", "p99(us)", "mean(us)",
              "reads", "peak-res(KB)");
  std::printf("%12s %14.1f %14.1f %10llu %14.1f\n", "inline",
              inline_merge.p99_us_wall, inline_merge.mean_us_wall,
              (unsigned long long)inline_merge.reads,
              inline_merge.peak_resident_kb);
  std::printf("%12s %14.1f %14.1f %10llu %14.1f\n", "background",
              bg_merge.p99_us_wall, bg_merge.mean_us_wall,
              (unsigned long long)bg_merge.reads, bg_merge.peak_resident_kb);
  std::printf("background compaction cuts mid-merge Get p99 by %.1fx\n",
              inline_merge.p99_us_wall / std::max(bg_merge.p99_us_wall, 0.001));
  ReportRow("fig7b", "get-p99-during-compaction-inline", "data_gb",
            kConcurrentGb, inline_merge.p99_us_wall, "us_wall");
  ReportRow("fig7b", "get-p99-during-compaction-background", "data_gb",
            kConcurrentGb, bg_merge.p99_us_wall, "us_wall");
  ReportRow("fig7b", "compaction-peak-resident", "data_gb", kConcurrentGb,
            bg_merge.peak_resident_kb, "kb");
  return 0;
}
