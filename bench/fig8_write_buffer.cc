// Figure 8 (Appendix C): write latency vs *write-buffer* (memtable) size —
// eLSM-P1 (buffer inside the enclave) vs the unsecured store with the
// buffer outside.
//
// Expected shape: both series are ~flat — sequential writes touch the
// buffer with high locality, so placement barely matters; this is the
// measurement that justifies keeping the write buffer inside the enclave.
#include "bench_common.h"

using namespace elsm;
using namespace elsm::bench;

int main() {
  PrintHeader("Figure 8", "write-buffer placement (write-only workload)",
              "both series ~flat: write-buffer placement does not matter "
              "(unlike the read buffer, Fig. 2)");

  const uint64_t records = RecordsFor(1024);  // 1 GB-equivalent store
  const double paper_buffer_mb[] = {4, 8, 16, 32, 64, 128, 256, 512};
  const uint64_t kOps = 4000;

  std::printf("%12s %14s %16s %8s\n", "wbuf(MB)", "inside-P1(us)",
              "outside(us)", "ratio");
  for (double mb : paper_buffer_mb) {
    Options p1 = BaseOptions(Mode::kP1);
    p1.name = "f8-p1";
    p1.memtable_bytes = ScaledBytes(mb);
    Store p1_store = BuildStore(p1, records);
    const double p1_us = MeasureWriteLatencyUs(*p1_store.db, records, kOps);

    // The outside series is the same SGX port with the buffer outside and
    // no protection — the Appendix C comparator that isolates placement.
    Options raw = BaseOptions(Mode::kP2);
    raw.authenticate_data = false;
    raw.name = "f8-raw";
    raw.memtable_bytes = ScaledBytes(mb);
    Store raw_store = BuildStore(raw, records);
    const double raw_us = MeasureWriteLatencyUs(*raw_store.db, records, kOps);

    std::printf("%12.0f %14.2f %16.2f %7.2fx\n", mb, p1_us, raw_us,
                p1_us / raw_us);
    ReportRow("fig8", "inside-p1", "wbuf_mb", mb, p1_us);
    ReportRow("fig8", "outside", "wbuf_mb", mb, raw_us);
  }
  return 0;
}
