// Backend wall-clock comparison — the first real-hardware numbers next to
// the simulated-clock figures (ISSUE 5: pluggable storage backends).
//
// Runs the same P2 load / point-read / scan workload on each storage
// backend and reports *wall-clock* microseconds per op ("us_wall" rows —
// machine-dependent, so compare_bench.py never gates on them):
//   * sim          — in-memory SimFs, the memory-resident paper setup
//   * posix        — PosixFs on a throwaway directory, fsync-honest
//                    (every acknowledged put pays a real WAL fsync)
//   * posix-nosync — same files with Options::sync_writes off: the
//                    no-durability upper bound, isolating the fsync price
//
// ELSM_BENCH_BACKEND (comma list, default "sim,posix,posix-nosync")
// selects the series; scripts/run_bench.sh --backend sets it.
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/random.h"

using namespace elsm;
using namespace elsm::bench;

namespace {

double UsSince(std::chrono::steady_clock::time_point start, uint64_t ops) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::micro>(elapsed).count() /
         double(ops);
}

struct BackendSpec {
  std::string series;
  storage::BackendKind kind;
  bool sync_writes;
};

void RunBackend(const BackendSpec& spec, uint64_t records, uint64_t ops) {
  Options o = BaseOptions(Mode::kP2);
  o.name = "wallclock";
  o.backend = spec.kind;
  o.sync_writes = spec.sync_writes;
  // Unlike the simulated figures, manifests persist on flush here: the
  // whole point is pricing the durable write path end to end.
  o.persist_manifest_on_flush = true;

  std::string dir;
  if (spec.kind == storage::BackendKind::kPosix) {
    char tmpl[] = "/tmp/elsm-bench-XXXXXX";
    const char* made = mkdtemp(tmpl);
    if (made == nullptr) {
      std::fprintf(stderr, "mkdtemp failed; skipping %s\n",
                   spec.series.c_str());
      return;
    }
    dir = made;
    o.backend_dir = dir;
  }

  // Removes the scratch directory on every exit path from this function.
  struct DirCleanup {
    const std::string& dir;
    ~DirCleanup() {
      if (!dir.empty()) {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
      }
    }
  } cleanup{dir};

  {
    auto db = ElsmDb::Create(o);
    if (!db.ok()) {
      std::fprintf(stderr, "open %s failed: %s\n", spec.series.c_str(),
                   db.status().ToString().c_str());
      return;
    }

    auto load_start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < records; ++i) {
      if (!db.value()->Put(ycsb::MakeKey(i, 16), ycsb::MakeValue(i, 100)).ok()) {
        std::abort();
      }
    }
    const double put_us = UsSince(load_start, records);

    Rng rng(0xd15c);
    auto get_start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < ops; ++i) {
      if (!db.value()->Get(ycsb::MakeKey(rng.Uniform(records), 16)).ok()) {
        std::abort();
      }
    }
    const double get_us = UsSince(get_start, ops);

    const uint64_t scans = std::max<uint64_t>(ops / 50, 8);
    auto scan_start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < scans; ++i) {
      const uint64_t lo = rng.Uniform(records > 100 ? records - 100 : 1);
      auto scanned = db.value()->Scan(ycsb::MakeKey(lo, 16),
                                      ycsb::MakeKey(lo + 100, 16));
      if (!scanned.ok()) std::abort();
    }
    const double scan_us = UsSince(scan_start, scans);

    std::printf("%-13s put=%9.2f us  get=%9.2f us  scan=%9.2f us (wall)\n",
                spec.series.c_str(), put_us, get_us, scan_us);
    ReportRow("backend_wallclock", spec.series + "-put", "records",
              double(records), put_us, "us_wall");
    ReportRow("backend_wallclock", spec.series + "-get", "records",
              double(records), get_us, "us_wall");
    ReportRow("backend_wallclock", spec.series + "-scan", "records",
              double(records), scan_us, "us_wall");
  }
}

}  // namespace

int main() {
  const uint64_t records = 20000 / QuickDivisor();
  const uint64_t ops = 8000 / QuickDivisor();
  PrintHeader("backend_wallclock",
              "storage backends: wall-clock us/op, same workload",
              "posix pays real fsyncs on the write path; reads are "
              "cache-resident and comparable across backends");

  std::string selected = "sim,posix,posix-nosync";
  if (const char* env = std::getenv("ELSM_BENCH_BACKEND");
      env != nullptr && env[0] != '\0') {
    selected = env;
  }
  std::vector<std::string> tokens;
  for (size_t pos = 0; pos <= selected.size();) {
    const size_t comma = std::min(selected.find(',', pos), selected.size());
    if (comma > pos) tokens.push_back(selected.substr(pos, comma - pos));
    pos = comma + 1;
  }
  const std::vector<BackendSpec> all = {
      {"sim", storage::BackendKind::kSim, true},
      {"posix", storage::BackendKind::kPosix, true},
      {"posix-nosync", storage::BackendKind::kPosix, false},
  };
  for (const BackendSpec& spec : all) {
    for (const std::string& token : tokens) {
      if (token == spec.series) {
        RunBackend(spec, records, ops);
        break;
      }
    }
  }
  return 0;
}
