// Batched modern-I/O read path: cold MultiGet and cold verified Scan on
// PosixFs, batched (engine MultiGet -> one Fs::MultiRead per level pass,
// scan readahead windows; io_uring when the kernel has it) versus the
// serialized baseline (the identical store with multiget_batching off and
// scan readahead 0, so every cold block pays one blocking open+pread).
//
// Cold means cold: the posix section runs under PageCachePolicy::kBypass
// (posix_fs.h) — the enclave-side verified ReadBuffer is the only read
// cache and the engine's batched readahead the only prefetcher — and
// between passes that buffer is dropped and the backing files fsync'd +
// fadvise(DONTNEED)'d out of the OS page cache. The serialized baseline
// therefore pays one device round-trip per block while the batched path
// keeps the device queue full. These are wall-clock measurements (the
// simulated clock charges both paths identically by design — see
// options.h); the ratio rows are what the gate watches:
//   * posix-multiget-batched-over-serial — batched/serial cold MultiGet
//     wall latency (lower is better; the acceptance bar is <= 0.5)
//   * posix-scan-batched-over-serial    — same for a cold verified scan
//   * sim-multiget-batched-over-serial  — simulated-cost ratio on SimFs
//     (~1.0: batching must not change what the deterministic model
//     charges), after asserting the result bytes are identical.
//
// Geometry note: blocks are 1 KiB here so a cold block is priced by the
// device round-trip rather than by SHA-256 of the block bytes — the regime
// the batching targets (storage-bound cold reads, cf. LSKV).
#include <fcntl.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "elsm/sharded_db.h"
#include "storage/posix_fs.h"

using namespace elsm;
using namespace elsm::bench;

namespace {

constexpr const char* kBench = "fig_batched_read";
constexpr uint32_t kShards = 8;
// ~1 KiB records: one record per 1 KiB block, so a cold point lookup is
// priced by its device round-trip rather than by per-record verification
// CPU (with the paper's 100 B values this machine's scalar SHA-256 would
// dominate the block cost and mask the I/O effect the figure isolates).
constexpr uint64_t kValueBytes = 1000;

using WallClock = std::chrono::steady_clock;

Options StoreOptions(bool batched) {
  Options o = BaseOptions(Mode::kP2);
  o.name = "batchedread";
  o.read_path = lsm::ReadPathKind::kBuffer;
  o.block_bytes = 1024;
  o.file_bytes = 256 << 10;
  o.multiget_batching = batched;
  o.scan_readahead_blocks = batched ? 32 : 0;
  return o;
}

struct PhaseUsage {
  double cpu_ms = 0;
  double read_mb = 0;
};

PhaseUsage ReadUsage() {
  PhaseUsage u;
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  u.cpu_ms = (ru.ru_utime.tv_sec + ru.ru_stime.tv_sec) * 1e3 +
             (ru.ru_utime.tv_usec + ru.ru_stime.tv_usec) / 1e3;
  std::FILE* f = std::fopen("/proc/self/io", "r");
  if (f != nullptr) {
    char key[64];
    unsigned long long val = 0;
    while (std::fscanf(f, "%63[^:]: %llu\n", key, &val) == 2) {
      if (std::string(key) == "read_bytes") u.read_mb = double(val) / (1 << 20);
    }
    std::fclose(f);
  }
  return u;
}

// Push every store file out of the OS page cache (clean pages only, hence
// the fsync first). After this, a read is a real device round-trip.
void EvictPageCache(const std::string& dir) {
  std::error_code ec;
  for (auto it = std::filesystem::recursive_directory_iterator(dir, ec);
       it != std::filesystem::recursive_directory_iterator();
       it.increment(ec)) {
    if (ec || !it->is_regular_file(ec)) continue;
    const int fd = open(it->path().c_str(), O_RDONLY);
    if (fd < 0) continue;
    fsync(fd);
    posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
    close(fd);
  }
}

struct Sharded {
  std::unique_ptr<ShardedDb> db;
  std::string dir;
};

Sharded BuildSharded(Options o, storage::BackendKind backend,
                     uint64_t records) {
  Sharded s;
  o.backend = backend;
  if (backend == storage::BackendKind::kPosix) {
    char tmpl[] = "/tmp/elsm-batchedread-XXXXXX";
    const char* made = mkdtemp(tmpl);
    if (made == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      std::abort();
    }
    s.dir = made;
    o.backend_dir = s.dir;
  }
  auto db = ShardedDb::Create(o, kShards);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    std::abort();
  }
  s.db = std::move(db).value();
  ElsmDb::WriteBatch batch;
  for (uint64_t i = 0; i < records; ++i) {
    batch.Put(ycsb::MakeKey(i, 16), ycsb::MakeValue(i, kValueBytes));
    if (batch.entries.size() == 256 || i + 1 == records) {
      if (!s.db->Write(batch).ok()) std::abort();
      batch.entries.clear();
    }
  }
  if (!s.db->CompactAll().ok()) std::abort();
  return s;
}

// Up to 512 point-lookup keys sampled evenly across the keyspace; with
// ~1 KiB records each sampled key lands in its own data block, so every
// cold lookup is one distinct block read.
std::vector<std::string> SampleKeys(uint64_t records) {
  const uint64_t stride = std::max<uint64_t>(1, records / 512);
  std::vector<std::string> keys;
  for (uint64_t k = 0; k < records && keys.size() < 512; k += stride) {
    keys.push_back(ycsb::MakeKey(k, 16));
  }
  return keys;
}

double ColdMultiGetUs(Sharded& s, const std::vector<std::string>& keys) {
  double best = 0;
  for (int pass = 0; pass < 3; ++pass) {
    s.db->ClearReadCache();
    if (!s.dir.empty()) EvictPageCache(s.dir);
    const auto t0 = WallClock::now();
    auto got = s.db->MultiGet(keys);
    const double us =
        std::chrono::duration<double, std::micro>(WallClock::now() - t0)
            .count() /
        double(keys.size());
    if (!got.ok()) {
      std::fprintf(stderr, "multiget failed: %s\n",
                   got.status().ToString().c_str());
      std::abort();
    }
    for (const auto& v : got.value()) {
      if (!v.has_value()) std::abort();
    }
    if (pass == 0 || us < best) best = us;
  }
  return best;
}

double ColdScanUs(Sharded& s, uint64_t records) {
  double best = 0;
  for (int pass = 0; pass < 3; ++pass) {
    s.db->ClearReadCache();
    if (!s.dir.empty()) EvictPageCache(s.dir);
    const auto t0 = WallClock::now();
    auto got = s.db->Scan(ycsb::MakeKey(0, 16), ycsb::MakeKey(records - 1, 16));
    const double us =
        std::chrono::duration<double, std::micro>(WallClock::now() - t0)
            .count() /
        double(records);
    if (!got.ok() || got.value().size() != records) {
      std::fprintf(stderr, "scan failed (%zu/%llu): %s\n",
                   got.ok() ? got.value().size() : size_t(0),
                   (unsigned long long)records,
                   got.status().ToString().c_str());
      std::abort();
    }
    if (pass == 0 || us < best) best = us;
  }
  return best;
}

void RunPosix(uint64_t records) {
  // Deployment-faithful page-cache policy (see posix_fs.h): the verified
  // ReadBuffer is the read cache and the engine's batched readahead is the
  // prefetcher; the untrusted kernel cache neither retains nor prefetches.
  // Applied to both stores — the comparison is serialized blocking reads
  // vs one batched MultiRead under the same caching regime.
  storage::SetPosixPageCachePolicy(storage::PageCachePolicy::kBypass);
  Sharded batched = BuildSharded(StoreOptions(true),
                                 storage::BackendKind::kPosix, records);
  Sharded serial = BuildSharded(StoreOptions(false),
                                storage::BackendKind::kPosix, records);
  const std::vector<std::string> keys = SampleKeys(records);

  storage::ResetGlobalIoStats();
  PhaseUsage u0 = ReadUsage();
  const double mg_serial_us = ColdMultiGetUs(serial, keys);
  PhaseUsage u1 = ReadUsage();
  const double mg_batched_us = ColdMultiGetUs(batched, keys);
  PhaseUsage u2 = ReadUsage();
  const double scan_serial_us = ColdScanUs(serial, records);
  PhaseUsage u3 = ReadUsage();
  const double scan_batched_us = ColdScanUs(batched, records);
  PhaseUsage u4 = ReadUsage();
  std::printf("         phase cpu/io: mg-serial %.0fms/%.1fMB  mg-batched "
              "%.0fms/%.1fMB  scan-serial %.0fms/%.1fMB  scan-batched "
              "%.0fms/%.1fMB\n",
              u1.cpu_ms - u0.cpu_ms, u1.read_mb - u0.read_mb,
              u2.cpu_ms - u1.cpu_ms, u2.read_mb - u1.read_mb,
              u3.cpu_ms - u2.cpu_ms, u3.read_mb - u2.read_mb,
              u4.cpu_ms - u3.cpu_ms, u4.read_mb - u3.read_mb);

  const storage::IoStats io = storage::GlobalIoStats();
  std::printf("posix    cold multiget  serial %8.2f us/key   batched %8.2f "
              "us/key   (%.2fx)\n",
              mg_serial_us, mg_batched_us, mg_serial_us / mg_batched_us);
  std::printf("posix    cold scan      serial %8.2f us/rec   batched %8.2f "
              "us/rec   (%.2fx)\n",
              scan_serial_us, scan_batched_us,
              scan_serial_us / scan_batched_us);
  std::printf("         io: batches=%llu sub-reads/batch=%.1f uring=%llu "
              "pread=%llu\n",
              (unsigned long long)io.multiread_batches,
              io.multiread_batches > 0
                  ? double(io.multiread_subreads) /
                        double(io.multiread_batches)
                  : 0.0,
              (unsigned long long)io.uring_batches,
              (unsigned long long)io.pread_batches);

  ReportRow(kBench, "posix-multiget-serial", "pass", 0, mg_serial_us,
            "us_wall");
  ReportRow(kBench, "posix-multiget-batched", "pass", 1, mg_batched_us,
            "us_wall");
  ReportRow(kBench, "posix-scan-serial", "pass", 0, scan_serial_us,
            "us_wall");
  ReportRow(kBench, "posix-scan-batched", "pass", 1, scan_batched_us,
            "us_wall");
  // The gated rows: batched/serial cold wall latency, lower is better. The
  // acceptance bar for this figure is <= 0.5 (a >= 2x speedup).
  ReportRow(kBench, "posix-multiget-batched-over-serial", "pass", 1,
            mg_batched_us / mg_serial_us, "x");
  ReportRow(kBench, "posix-scan-batched-over-serial", "pass", 1,
            scan_batched_us / scan_serial_us, "x");

  batched.db.reset();
  serial.db.reset();
  storage::SetPosixPageCachePolicy(storage::PageCachePolicy::kKernel);
  for (const std::string& dir : {batched.dir, serial.dir}) {
    if (!dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }
}

void RunSim(uint64_t records) {
  // Deterministic backend: batching must change neither a byte of any
  // result nor (beyond shared-block hit coalescing) what the simulated
  // clock charges.
  Sharded batched =
      BuildSharded(StoreOptions(true), storage::BackendKind::kSim, records);
  Sharded serial =
      BuildSharded(StoreOptions(false), storage::BackendKind::kSim, records);
  const std::vector<std::string> keys = SampleKeys(records);

  batched.db->ClearReadCache();
  serial.db->ClearReadCache();
  const uint64_t b0 = batched.db->now_ns();
  auto bg = batched.db->MultiGet(keys);
  const uint64_t batched_ns = batched.db->now_ns() - b0;
  const uint64_t s0 = serial.db->now_ns();
  auto sg = serial.db->MultiGet(keys);
  const uint64_t serial_ns = serial.db->now_ns() - s0;
  if (!bg.ok() || !sg.ok()) std::abort();
  if (bg.value() != sg.value()) {
    std::fprintf(stderr, "sim batched/serial MultiGet results diverge\n");
    std::abort();
  }
  auto bscan =
      batched.db->Scan(ycsb::MakeKey(0, 16), ycsb::MakeKey(records - 1, 16));
  auto sscan =
      serial.db->Scan(ycsb::MakeKey(0, 16), ycsb::MakeKey(records - 1, 16));
  if (!bscan.ok() || !sscan.ok()) std::abort();
  if (bscan.value().size() != sscan.value().size()) std::abort();
  for (size_t i = 0; i < bscan.value().size(); ++i) {
    if (bscan.value()[i].key != sscan.value()[i].key ||
        bscan.value()[i].value != sscan.value()[i].value) {
      std::fprintf(stderr, "sim batched/serial Scan results diverge\n");
      std::abort();
    }
  }
  const double ratio = double(batched_ns) / double(serial_ns);
  std::printf("sim      batched results byte-identical; simulated multiget "
              "cost ratio %.3f\n",
              ratio);
  ReportRow(kBench, "sim-multiget-batched-over-serial", "pass", 1, ratio,
            "x");
}

}  // namespace

int main() {
  std::printf("fig_batched_read: cold batched reads (MultiRead/io_uring) vs "
              "serialized\n");
  // Paper-scaled 1 GB dataset over ~1 KiB records (RecordsFor assumes the
  // 116 B YCSB record; recompute for this figure's geometry).
  const uint64_t records = std::max<uint64_t>(
      ScaledBytes(1024) / (kValueBytes + 16) / QuickDivisor(), 64);
  RunSim(records);
  RunPosix(records);
  return 0;
}
