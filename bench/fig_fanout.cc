// Cross-shard fan-out (repo extension, ROADMAP "parallel cross-shard scan
// fan-out and batch fan-out"): latency of cross-shard Scan / MultiGet /
// PutBatch on the sequential router loop vs the parallel fan-out pool
// (Options::fanout_threads), across 1/2/4/8 shards.
//
// Methodology (same per-shard simulated clocks as fig_shard_scaling): an op
// advances only the clocks of the shards it touches. The sequential path
// visits shards one after another on one core, so its latency is the SUM of
// the per-shard deltas; the parallel path runs the per-shard work on the
// pool (shards modeled as pinned to separate cores), so its latency is the
// MAX delta. The router-side merge/reassembly cost (meta enclave) is added
// to both. Both paths execute for real — sequential on a pool-less store,
// parallel with fanout_threads=8 — and the bench asserts their results are
// byte-identical before reporting.
//
// Expected shape: speedup ~ shard count on balanced cross-shard ops —
// >= 3x on MultiGet/Scan at 8 shards — and 1x at one shard (nothing to fan
// out; the pool must not cost latency it cannot win back).
#include "bench_common.h"

#include <vector>

#include "elsm/sharded_db.h"

using namespace elsm;
using namespace elsm::bench;

namespace {

constexpr uint32_t kFanoutThreads = 8;

std::unique_ptr<ShardedDb> BuildSharded(uint32_t shards, uint32_t threads,
                                        uint64_t records) {
  Options o = BaseOptions(Mode::kP2);
  o.name = "ffan";
  o.fanout_threads = threads;
  auto opened = ShardedDb::Create(o, shards);
  if (!opened.ok()) {
    std::fprintf(stderr, "sharded open failed: %s\n",
                 opened.status().ToString().c_str());
    std::abort();
  }
  auto db = std::move(opened).value();
  // Load through the batch path in cross-shard groups, as a fan-out user
  // would.
  ElsmDb::WriteBatch batch;
  for (uint64_t i = 0; i < records; ++i) {
    batch.Put(ycsb::MakeKey(i, 16), ycsb::MakeValue(i, 100));
    if (batch.entries.size() == 256 || i + 1 == records) {
      if (!db->Write(batch).ok()) std::abort();
      batch.entries.clear();
    }
  }
  return db;
}

// Runs `op` once and prices it under both execution models: sequential =
// sum of per-shard clock deltas, parallel = max delta; the router (meta
// enclave) delta is added to both.
struct OpCost {
  double seq_us = 0;
  double par_us = 0;
};

template <typename Fn>
OpCost Measure(ShardedDb& db, Fn&& op) {
  const uint32_t shards = db.num_shards();
  std::vector<uint64_t> start(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    start[s] = db.shard(s).enclave().now_ns();
  }
  const uint64_t meta_start = db.meta_enclave().now_ns();
  op();
  const uint64_t meta = db.meta_enclave().now_ns() - meta_start;
  uint64_t sum = 0;
  uint64_t max = 0;
  for (uint32_t s = 0; s < shards; ++s) {
    const uint64_t elapsed = db.shard(s).enclave().now_ns() - start[s];
    sum += elapsed;
    max = std::max(max, elapsed);
  }
  OpCost cost;
  cost.seq_us = double(sum + meta) / 1e3;
  cost.par_us = double(max + meta) / 1e3;
  return cost;
}

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fig_fanout: %s\n", what);
    std::abort();
  }
}

}  // namespace

int main() {
  PrintHeader("Fan-out", "cross-shard Scan/MultiGet/PutBatch: sequential vs "
              "parallel fan-out (ShardedDb + ThreadPool)",
              ">=3x speedup on cross-shard MultiGet/Scan at 8 shards");

  const uint64_t records = RecordsFor(1024);
  const uint64_t kMultiGetKeys = 512;
  const uint64_t kBatchKeys = 512;
  const uint64_t scan_lo = records / 4;
  const uint64_t scan_hi = scan_lo + std::min<uint64_t>(records / 4, 2000);

  std::printf("%8s %16s %16s %16s\n", "shards", "scan seq/par(us)",
              "mget seq/par(us)", "batch seq/par(us)");
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    // Two identically loaded stores: pool-less (the sequential code path)
    // and pooled (the parallel one). The clock models price each path; the
    // result comparison keeps both paths honest.
    auto seq_db = BuildSharded(shards, 0, records);
    auto par_db = BuildSharded(shards, kFanoutThreads, records);

    // --- cross-shard Scan -------------------------------------------------
    std::vector<lsm::Record> seq_scan;
    std::vector<lsm::Record> par_scan;
    const OpCost scan_seq = Measure(*seq_db, [&] {
      auto got = seq_db->Scan(ycsb::MakeKey(scan_lo, 16),
                              ycsb::MakeKey(scan_hi, 16));
      Require(got.ok(), "sequential scan failed");
      seq_scan = std::move(got).value();
    });
    const OpCost scan_par = Measure(*par_db, [&] {
      auto got = par_db->Scan(ycsb::MakeKey(scan_lo, 16),
                              ycsb::MakeKey(scan_hi, 16));
      Require(got.ok(), "parallel scan failed");
      par_scan = std::move(got).value();
    });
    Require(seq_scan.size() == par_scan.size(), "scan result sizes diverge");
    for (size_t i = 0; i < seq_scan.size(); ++i) {
      Require(seq_scan[i] == par_scan[i], "scan results diverge");
    }

    // --- cross-shard MultiGet ---------------------------------------------
    Rng rng(0xfa4 + shards);
    std::vector<std::string> keys;
    keys.reserve(kMultiGetKeys);
    for (uint64_t i = 0; i < kMultiGetKeys; ++i) {
      keys.push_back(ycsb::MakeKey(rng.Uniform(records), 16));
    }
    std::vector<std::optional<std::string>> seq_mg;
    std::vector<std::optional<std::string>> par_mg;
    const OpCost mg_seq = Measure(*seq_db, [&] {
      auto got = seq_db->MultiGet(keys);
      Require(got.ok(), "sequential multiget failed");
      seq_mg = std::move(got).value();
    });
    const OpCost mg_par = Measure(*par_db, [&] {
      auto got = par_db->MultiGet(keys);
      Require(got.ok(), "parallel multiget failed");
      par_mg = std::move(got).value();
    });
    Require(seq_mg == par_mg, "multiget results diverge");

    // --- cross-shard PutBatch ---------------------------------------------
    ElsmDb::WriteBatch batch;
    for (uint64_t i = 0; i < kBatchKeys; ++i) {
      const uint64_t k = rng.Uniform(records);
      batch.Put(ycsb::MakeKey(k, 16), ycsb::MakeValue(k + 7, 100));
    }
    const OpCost batch_seq = Measure(*seq_db, [&] {
      Require(seq_db->Write(batch).ok(), "sequential batch failed");
    });
    const OpCost batch_par = Measure(*par_db, [&] {
      Require(par_db->Write(batch).ok(), "parallel batch failed");
    });

    std::printf("%8u %7.1f/%-8.1f %7.1f/%-8.1f %7.1f/%-8.1f"
                "  (scan %.2fx, mget %.2fx, batch %.2fx)\n",
                shards, scan_seq.seq_us, scan_par.par_us, mg_seq.seq_us,
                mg_par.par_us, batch_seq.seq_us, batch_par.par_us,
                scan_seq.seq_us / scan_par.par_us,
                mg_seq.seq_us / mg_par.par_us,
                batch_seq.seq_us / batch_par.par_us);
    ReportRow("fig_fanout", "scan-seq", "shards", shards, scan_seq.seq_us);
    ReportRow("fig_fanout", "scan-par", "shards", shards, scan_par.par_us);
    ReportRow("fig_fanout", "multiget-seq", "shards", shards, mg_seq.seq_us);
    ReportRow("fig_fanout", "multiget-par", "shards", shards, mg_par.par_us);
    ReportRow("fig_fanout", "putbatch-seq", "shards", shards,
              batch_seq.seq_us);
    ReportRow("fig_fanout", "putbatch-par", "shards", shards,
              batch_par.par_us);
  }
  return 0;
}
