// WAL group commit: durable multi-writer put throughput (ISSUE 8).
//
// Measures wall-clock us per acknowledged put on the posix backend while N
// concurrent writer threads hammer one ElsmDb. With sync_writes on, every
// acknowledged put is behind a real fsync; the leader/follower commit queue
// amortizes that barrier across whoever is waiting, so the 8-writer durable
// series should land within a small factor of the no-durability upper bound
// instead of paying 8 independent fsyncs.
//
//   * nosync-8t      — sync_writes off, 8 writers: the upper bound
//   * sync-1t        — fsync-per-put floor: one writer, nobody to share with
//   * sync-8t        — 8 durable writers, cohorts form from contention alone
//   * sync-8t-linger — same plus a 100us wal_sync_interval_us window: the
//                      leader waits for stragglers, trading commit latency
//                      for bigger cohorts (wins when fsync >> linger)
//
// Rows carry the "us_wall" unit (machine-dependent; compare_bench.py
// reports them informationally and never gates). The bench itself prints
// the sync-8t / nosync-8t amortization ratio — the ISSUE 8 acceptance
// criterion is that it stays within ~5x.
//
// Posix-only by design (SimFs has no real fsync to amortize): the bench
// exits quietly when ELSM_BENCH_BACKEND is set and excludes "posix".
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

using namespace elsm;
using namespace elsm::bench;

namespace {

struct GroupSpec {
  std::string series;
  bool sync_writes;
  uint32_t threads;
  uint64_t sync_interval_us;
};

// Returns wall-clock us per acknowledged put, or a negative value on error.
double RunSpec(const GroupSpec& spec, uint64_t records) {
  Options o = BaseOptions(Mode::kP2);
  o.name = "groupcommit";
  o.backend = storage::BackendKind::kPosix;
  o.sync_writes = spec.sync_writes;
  o.wal_sync_interval_us = spec.sync_interval_us;
  // Price the durable write path end to end, like fig_backend_wallclock.
  o.persist_manifest_on_flush = true;

  char tmpl[] = "/tmp/elsm-bench-XXXXXX";
  const char* made = mkdtemp(tmpl);
  if (made == nullptr) {
    std::fprintf(stderr, "mkdtemp failed; skipping %s\n",
                 spec.series.c_str());
    return -1.0;
  }
  const std::string dir = made;
  o.backend_dir = dir;

  struct DirCleanup {
    const std::string& dir;
    ~DirCleanup() {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  } cleanup{dir};

  auto db = ElsmDb::Create(o);
  if (!db.ok()) {
    std::fprintf(stderr, "open %s failed: %s\n", spec.series.c_str(),
                 db.status().ToString().c_str());
    return -1.0;
  }

  // Striped keys (thread t writes t, t+N, ...) so writers arrive at the WAL
  // barrier together and join each other's commit cohorts.
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> writers;
  writers.reserve(spec.threads);
  for (uint32_t t = 0; t < spec.threads; ++t) {
    writers.emplace_back([&, t] {
      for (uint64_t i = t; i < records; i += spec.threads) {
        if (!db.value()->Put(ycsb::MakeKey(i, 16), ycsb::MakeValue(i, 100))
                 .ok()) {
          std::abort();  // every put must be acknowledged durable
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  const auto& es = db.value()->engine().stats();
  if (es.group_commits > 0) {
    std::printf("%-15s mean cohort %.2f over %llu commits\n",
                spec.series.c_str(),
                double(es.group_commit_records) / double(es.group_commits),
                (unsigned long long)es.group_commits);
  }
  return std::chrono::duration<double, std::micro>(elapsed).count() /
         double(records);
}

}  // namespace

int main() {
  // Honor run_bench.sh --backend: this bench is all real-fsync I/O, so a
  // sim-only sweep skips it entirely.
  if (const char* env = std::getenv("ELSM_BENCH_BACKEND");
      env != nullptr && env[0] != '\0' &&
      std::strstr(env, "posix") == nullptr) {
    std::printf("fig_group_commit: skipped (ELSM_BENCH_BACKEND=%s has no "
                "posix)\n",
                env);
    return 0;
  }

  const uint64_t records = 8000 / QuickDivisor();
  PrintHeader("group_commit",
              "WAL group commit: durable put us/op vs writer threads",
              "8 durable writers share one leader's fsync; acceptance is "
              "sync-8t within ~5x of the nosync upper bound");

  const std::vector<GroupSpec> specs = {
      {"nosync-8t", false, 8, 0},
      {"sync-1t", true, 1, 0},
      {"sync-8t", true, 8, 0},
      {"sync-8t-linger", true, 8, 100},
  };
  double nosync_us = 0.0;
  double sync8_us = 0.0;
  for (const GroupSpec& spec : specs) {
    const double us = RunSpec(spec, records);
    if (us < 0.0) continue;
    std::printf("%-10s threads=%u put=%9.2f us (wall, durable)\n",
                spec.series.c_str(), spec.threads, us);
    ReportRow("group_commit", spec.series, "threads", double(spec.threads),
              us, "us_wall");
    if (spec.series == "nosync-8t") nosync_us = us;
    if (spec.series == "sync-8t") sync8_us = us;
  }
  if (nosync_us > 0.0 && sync8_us > 0.0) {
    const double ratio = sync8_us / nosync_us;
    std::printf("group commit amortization: sync-8t is %.1fx nosync-8t "
                "(acceptance: <= ~5x)\n",
                ratio);
    // The raw us_wall rows are machine-dependent, but this ratio is the
    // fsync amortization factor itself — comparable across machines, so
    // compare_bench.py gates on it ("x" unit): a regression here means
    // cohorts stopped forming.
    ReportRow("group_commit", "amortization", "threads", 8.0, ratio, "x");
  }
  return 0;
}
