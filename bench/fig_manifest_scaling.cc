// fig_manifest_scaling: manifest-maintenance cost as the level stack grows.
//
// Claim (incremental sealed VersionEdit log): the manifest bytes the store
// seals+writes per flush stay O(1) in the number of resident levels, where
// the legacy whole-manifest rewrite — expressible as snapshot-on-every-
// persist, Options::manifest_snapshot_edits = 0 — grows linearly with the
// stack. Compaction is disabled so every flush adds one level and the
// stack grows monotonically; each sample is the mean sealed manifest bytes
// per persist over a window of flushes, which amortizes the delta log's
// periodic snapshots the same way put_us amortizes compaction.
#include "bench_common.h"

#include <vector>

using namespace elsm;
using namespace elsm::bench;

namespace {

constexpr uint64_t kFlushes = 96;
constexpr uint64_t kWindow = 8;  // flushes per reported sample
constexpr uint64_t kRecordsPerFlush = 48;

struct Sample {
  double levels = 0;           // resident levels at the window's end
  double bytes_per_flush = 0;  // sealed manifest bytes / flush, windowed
};

std::vector<Sample> RunSeries(const char* name, uint32_t snapshot_edits) {
  Options o = BaseOptions(Mode::kP2);
  o.name = name;
  o.compaction_enabled = false;    // every flush adds one level
  o.persist_manifest_on_flush = true;  // the measured path
  o.counter_sync_period = 1;
  o.manifest_snapshot_edits = snapshot_edits;
  o.manifest_snapshot_bytes = UINT64_MAX;  // cadence by record count only

  Store store;
  store.platform = std::make_shared<TrustedPlatform>();
  auto enclave = std::make_shared<sgx::Enclave>(o.cost_model, true);
  store.fs = storage::MakeFs(o.backend, o.backend_dir, enclave);
  auto db = ElsmDb::Open(o, store.fs, store.platform);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    std::abort();
  }
  store.db = std::move(db).value();

  std::vector<Sample> samples;
  uint64_t key = 0;
  uint64_t window_start_bytes = 0;
  for (uint64_t f = 1; f <= kFlushes; ++f) {
    for (uint64_t i = 0; i < kRecordsPerFlush; ++i, ++key) {
      if (!store.db->Put(ycsb::MakeKey(key, 16), ycsb::MakeValue(key, 100))
               .ok()) {
        std::abort();
      }
    }
    if (!store.db->Flush().ok()) std::abort();
    if (f % kWindow == 0) {
      const uint64_t total =
          store.db->engine().stats().manifest_bytes_written.load();
      samples.push_back(
          {double(store.db->engine().levels().size()),
           double(total - window_start_bytes) / double(kWindow)});
      window_start_bytes = total;
    }
  }
  if (!store.db->Close().ok()) std::abort();
  return samples;
}

}  // namespace

int main() {
  const auto delta = RunSeries("fms-delta", 32);
  const auto rewrite = RunSeries("fms-rewrite", 0);

  std::printf("%10s %12s %18s %18s\n", "levels", "flushes",
              "delta-log B/flush", "full-rewrite B/flush");
  for (size_t i = 0; i < delta.size(); ++i) {
    const double flushes = double((i + 1) * kWindow);
    std::printf("%10.0f %12.0f %18.1f %18.1f\n", delta[i].levels, flushes,
                delta[i].bytes_per_flush, rewrite[i].bytes_per_flush);
    ReportRow("fig_manifest_scaling", "delta-log", "levels", delta[i].levels,
              delta[i].bytes_per_flush, "bytes");
    ReportRow("fig_manifest_scaling", "full-rewrite", "levels",
              rewrite[i].levels, rewrite[i].bytes_per_flush, "bytes");
  }

  // Shape check: the delta log's last-window cost must stay within a small
  // factor of its first window (flat), while the rewrite's grows with the
  // stack. Both halves guard the claim against regressions.
  const double delta_growth =
      delta.back().bytes_per_flush / delta.front().bytes_per_flush;
  const double rewrite_growth =
      rewrite.back().bytes_per_flush / rewrite.front().bytes_per_flush;
  std::printf("growth last/first window: delta-log %.2fx, full-rewrite "
              "%.2fx\n",
              delta_growth, rewrite_growth);
  if (delta_growth > 3.0) {
    std::fprintf(stderr, "delta log is not flat (%.2fx growth)\n",
                 delta_growth);
    return 1;
  }
  if (rewrite_growth < 2.0 * delta_growth) {
    std::fprintf(stderr,
                 "full rewrite did not scale with the stack (%.2fx) — "
                 "baseline misconfigured?\n",
                 rewrite_growth);
    return 1;
  }
  return 0;
}
