// Verified read caching under a Zipfian (YCSB-C-style) point-read workload.
//
// The paper's read-path figures price where the block buffer lives; this
// bench prices what the verified cache layer *saves*: a warm hit skips the
// file read, the block re-verification, and (via the verifier's proof-path
// node cache) the Merkle climb re-hash. Series, per backend (sim / posix):
//   * <backend>-uncached      — buffer shrunk to one block, so nearly every
//                               read pays ocall + file read + verification
//   * <backend>-cold          — first Zipfian pass on freshly dropped caches
//                               (the hot head warms up mid-pass)
//   * <backend>-warm          — identical key stream, caches warm
//   * <backend>-memtable      — same store, keys resident in the memtable
//                               (the "hot reads approach memtable speed"
//                               reference line)
//   * <backend>-warm-over-uncached — warm/uncached latency ratio (lower is
//                               better; gated so cache effectiveness
//                               cannot rot)
// Latencies are simulated microseconds, so sim and posix rows are directly
// comparable (the posix series proves the cache behaves identically over
// real files).
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/random.h"

using namespace elsm;
using namespace elsm::bench;

namespace {

constexpr const char* kBench = "fig_read_cache";

double MeasureZipfUs(ElsmDb& db, const std::vector<uint64_t>& keys) {
  const uint64_t start = db.enclave().now_ns();
  for (uint64_t k : keys) {
    auto got = db.GetVerified(ycsb::MakeKey(k, 16));
    if (!got.ok()) {
      std::fprintf(stderr, "read failed: %s\n",
                   got.status().ToString().c_str());
      std::abort();
    }
  }
  return double(db.enclave().now_ns() - start) / double(keys.size()) / 1000.0;
}

void RunBackend(const std::string& series, storage::BackendKind kind) {
  Options o = BaseOptions(Mode::kP2);
  o.name = "readcache";
  o.read_path = lsm::ReadPathKind::kBuffer;
  o.backend = kind;
  std::string dir;
  if (kind == storage::BackendKind::kPosix) {
    char tmpl[] = "/tmp/elsm-readcache-XXXXXX";
    const char* made = mkdtemp(tmpl);
    if (made == nullptr) {
      std::fprintf(stderr, "mkdtemp failed; skipping %s\n", series.c_str());
      return;
    }
    dir = made;
    o.backend_dir = dir;
  }

  const uint64_t records = RecordsFor(64);
  Store store = BuildStore(o, records);

  // One fixed Zipfian key stream, replayed for the cold and warm passes so
  // both measure exactly the same accesses.
  const uint64_t ops = std::max<uint64_t>(4000 / QuickDivisor(), 500);
  Rng rng(0xcafe);
  ScrambledZipfianGenerator zipf(records);
  std::vector<uint64_t> keys;
  keys.reserve(ops);
  for (uint64_t i = 0; i < ops; ++i) keys.push_back(zipf.Next(rng));

  // Uncached baseline: a one-block buffer evicts on almost every install,
  // so the stream pays the full load-and-verify path each time.
  Options uncached = o;
  uncached.read_buffer_bytes = o.block_bytes;
  uncached.read_cache_shards = 1;
  Reopen(store, uncached);
  const double uncached_us = MeasureZipfUs(*store.db, keys);

  // Drop every cache (block buffer, tree handles, proof-path nodes).
  Reopen(store, o);
  const double cold_us = MeasureZipfUs(*store.db, keys);
  const double warm_us = MeasureZipfUs(*store.db, keys);

  // Memtable reference: fresh keys that never left L0.
  const uint64_t kMemKeys = 64;
  std::vector<uint64_t> mem_keys;
  for (uint64_t i = 0; i < kMemKeys; ++i) {
    const uint64_t k = records + i;
    if (!store.db->Put(ycsb::MakeKey(k, 16), ycsb::MakeValue(k, 100)).ok()) {
      std::abort();
    }
    mem_keys.push_back(k);
  }
  const double memtable_us = MeasureZipfUs(*store.db, mem_keys);

  const auto cache = store.db->read_cache_stats();
  const auto paths = store.db->proof_path_cache_stats();
  std::printf("%-8s uncached %8.2f us   cold %8.2f us   warm %8.2f us   "
              "memtable %8.2f us\n         (warm/uncached %.3f, cache hits "
              "%llu/%llu, path hits %llu/%llu)\n",
              series.c_str(), uncached_us, cold_us, warm_us, memtable_us,
              warm_us / uncached_us, (unsigned long long)cache.hits,
              (unsigned long long)(cache.hits + cache.misses),
              (unsigned long long)paths.hits,
              (unsigned long long)paths.lookups);
  ReportRow(kBench, series + "-uncached", "pass", 0, uncached_us);
  ReportRow(kBench, series + "-cold", "pass", 1, cold_us);
  ReportRow(kBench, series + "-warm", "pass", 2, warm_us);
  ReportRow(kBench, series + "-memtable", "pass", 3, memtable_us);
  ReportRow(kBench, series + "-warm-over-uncached", "pass", 2,
            warm_us / uncached_us, "x");

  store.db.reset();
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
}

}  // namespace

int main() {
  std::printf("fig_read_cache: Zipfian verified reads, cold vs warm caches\n");
  RunBackend("sim", storage::BackendKind::kSim);
  RunBackend("posix", storage::BackendKind::kPosix);
  return 0;
}
