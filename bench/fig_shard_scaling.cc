// Shard scaling (repo extension, ROADMAP "scaling directions"): write
// throughput and latency of the hash-partitioned ShardedDb router vs shard
// count, same total data.
//
// Methodology: every shard runs on its own simulated enclave, so the
// per-shard clocks model shards pinned to separate cores. A load of N
// records leaves each shard ~N/S records; the *parallel* completion time
// of the load is the slowest shard's simulated elapsed time, and
// throughput = ops / max_shard_elapsed. The per-op simulated cost (sum of
// all shard clocks / ops) is reported too — sharding should keep it flat
// or better (smaller per-shard levels mean shallower ripples), while
// throughput scales with the shard count.
//
// Expected shape: near-linear write-throughput scaling to 4-8 shards;
// verified-GET latency flat or slightly better (smaller per-shard data).
#include "bench_common.h"

#include <vector>

#include "elsm/sharded_db.h"

using namespace elsm;
using namespace elsm::bench;

namespace {

struct ShardLoadResult {
  double tput_kops = 0;   // parallel model: ops / max shard elapsed
  double put_us = 0;      // total simulated cost per op (sum of clocks)
  double get_us = 0;      // verified random GET, same parallel-cost basis
  uint64_t compactions = 0;
};

ShardLoadResult LoadSharded(uint32_t shards, uint64_t records) {
  Options o = BaseOptions(Mode::kP2);
  o.name = "fshard";
  auto opened = ShardedDb::Create(o, shards);
  if (!opened.ok()) {
    std::fprintf(stderr, "sharded open failed: %s\n",
                 opened.status().ToString().c_str());
    std::abort();
  }
  auto db = std::move(opened).value();

  // Warm half the load, then measure the steady-state second half (same
  // methodology as Store::put_us in bench_common.h).
  const uint64_t half = records / 2;
  for (uint64_t i = 0; i < half; ++i) {
    if (!db->Put(ycsb::MakeKey(i, 16), ycsb::MakeValue(i, 100)).ok()) {
      std::abort();
    }
  }
  std::vector<uint64_t> start(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    start[s] = db->shard(s).enclave().now_ns();
  }
  for (uint64_t i = half; i < records; ++i) {
    if (!db->Put(ycsb::MakeKey(i, 16), ycsb::MakeValue(i, 100)).ok()) {
      std::abort();
    }
  }
  uint64_t max_elapsed = 0;
  uint64_t sum_elapsed = 0;
  for (uint32_t s = 0; s < shards; ++s) {
    const uint64_t elapsed = db->shard(s).enclave().now_ns() - start[s];
    max_elapsed = std::max(max_elapsed, elapsed);
    sum_elapsed += elapsed;
  }
  const uint64_t measured_ops = records - half;

  ShardLoadResult out;
  out.tput_kops = double(measured_ops) / (double(max_elapsed) / 1e9) / 1e3;
  out.put_us = double(sum_elapsed) / double(measured_ops) / 1e3;
  for (uint32_t s = 0; s < shards; ++s) {
    out.compactions += db->shard(s).engine().stats().compactions.load();
  }

  // Verified random GETs, costed the same way (reads route to one shard;
  // parallel clients see the per-shard latency).
  Rng rng(0xbeef);
  const uint64_t kReads = 2000;
  const uint64_t read_start = db->now_ns();
  for (uint64_t i = 0; i < kReads; ++i) {
    auto got = db->Get(ycsb::MakeKey(rng.Uniform(records), 16));
    if (!got.ok()) {
      std::fprintf(stderr, "sharded get failed: %s\n",
                   got.status().ToString().c_str());
      std::abort();
    }
  }
  out.get_us = double(db->now_ns() - read_start) / double(kReads) / 1e3;
  return out;
}

}  // namespace

int main() {
  PrintHeader("Shard scaling", "write throughput vs shard count (ShardedDb)",
              "near-linear throughput scaling to 4-8 shards; flat GET cost");

  // Large enough that even 8 shards keep flushing and rippling inside the
  // measured window (else the deepest points degenerate to memtable-only
  // writes and the curve turns super-linear).
  const uint64_t records = RecordsFor(2048);
  std::printf("%8s %14s %12s %12s %12s\n", "shards", "tput(kops/s)",
              "put(us/op)", "get(us/op)", "compactions");
  double base_tput = 0;
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    const ShardLoadResult r = LoadSharded(shards, records);
    if (shards == 1) base_tput = r.tput_kops;
    std::printf("%8u %14.1f %12.2f %12.2f %12llu   (%.2fx)\n", shards,
                r.tput_kops, r.put_us, r.get_us,
                (unsigned long long)r.compactions,
                base_tput > 0 ? r.tput_kops / base_tput : 0.0);
    ReportRow("fig_shard_scaling", "p2-sharded-tput", "shards", shards,
              r.tput_kops, "kops_s");
    ReportRow("fig_shard_scaling", "p2-sharded-put", "shards", shards,
              r.put_us);
    ReportRow("fig_shard_scaling", "p2-sharded-get", "shards", shards,
              r.get_us);
  }
  return 0;
}
