// google-benchmark microbenchmarks of the crypto substrate: SHA-256
// throughput, HMAC, Merkle build / path generation / verification, hash
// chains and embedded-proof codec — the real-work primitives underlying
// every eLSM figure.
#include <benchmark/benchmark.h>

#include "auth/proof.h"
#include "crypto/hash_chain.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace {

using namespace elsm;
using namespace elsm::crypto;

void BM_Sha256(benchmark::State& state) {
  const std::string data(size_t(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Digest(data));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const std::string data(size_t(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256("key", data));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(116)->Arg(4096);

std::vector<Hash256> MakeLeaves(int64_t n) {
  std::vector<Hash256> leaves;
  leaves.reserve(size_t(n));
  for (int64_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256::Digest("leaf" + std::to_string(i)));
  }
  return leaves;
}

void BM_MerkleBuild(benchmark::State& state) {
  const auto leaves = MakeLeaves(state.range(0));
  for (auto _ : state) {
    MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.root());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MerkleBuild)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_MerklePathGen(benchmark::State& state) {
  MerkleTree tree(MakeLeaves(state.range(0)));
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Path(i++ % uint64_t(state.range(0))));
  }
}
BENCHMARK(BM_MerklePathGen)->Arg(16384)->Arg(131072);

void BM_MerklePathVerify(benchmark::State& state) {
  MerkleTree tree(MakeLeaves(state.range(0)));
  const auto path = tree.Path(uint64_t(state.range(0)) / 2);
  const Hash256 leaf = tree.leaf(uint64_t(state.range(0)) / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree::VerifyPath(
        leaf, path, uint64_t(state.range(0)), tree.root()));
  }
}
BENCHMARK(BM_MerklePathVerify)->Arg(16384)->Arg(131072);

void BM_ChainDigest(benchmark::State& state) {
  std::vector<std::string> encodings;
  for (int64_t i = 0; i < state.range(0); ++i) {
    encodings.push_back(std::string(116, char('a' + i % 26)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChainDigest(encodings));
  }
}
BENCHMARK(BM_ChainDigest)->Arg(1)->Arg(4)->Arg(16);

void BM_EmbeddedProofCodec(benchmark::State& state) {
  auth::EmbeddedProof proof;
  proof.leaf_index = 123456;
  proof.suffix.present = true;
  proof.suffix.digest = Sha256::Digest("suffix");
  const std::string blob = proof.Encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(auth::EmbeddedProof::Decode(blob));
  }
}
BENCHMARK(BM_EmbeddedProofCodec);

}  // namespace

BENCHMARK_MAIN();
