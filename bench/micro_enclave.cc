// §4.2 claim: the naive all-in-EPC placement causes a slowdown of "more
// than two orders of magnitude" once the working set far exceeds the EPC.
//
// Microbenchmark: uniform random 128-byte reads over a region N x the EPC
// size, inside the enclave (hardware paging) vs plain untrusted memory.
#include <cstdio>

#include "bench_common.h"
#include "common/random.h"
#include "sgxsim/enclave.h"

int main() {
  using namespace elsm;
  std::printf("=============================================================\n");
  std::printf("§4.2 micro — enclave paging slowdown vs untrusted memory\n");
  std::printf("paper expectation: >2 orders of magnitude once working set >>"
              " EPC\n");
  std::printf("=============================================================\n");

  sgx::CostModel m;
  m.epc_bytes = 1 << 20;
  const uint64_t kOps = 20000;

  std::printf("%16s %16s %18s %10s\n", "region/EPC", "enclave(ns/op)",
              "untrusted(ns/op)", "slowdown");
  for (double factor : {0.25, 0.5, 1.0, 2.0, 8.0, 32.0, 64.0}) {
    const uint64_t region_bytes = uint64_t(double(m.epc_bytes) * factor);

    sgx::Enclave enclave(m, true);
    const sgx::RegionId region = enclave.RegisterRegion(region_bytes);
    Rng rng(1);
    // Warm: one pass to fault in whatever fits.
    for (uint64_t off = 0; off + 128 < region_bytes; off += 4096) {
      enclave.AccessRegion(region, off, 128);
    }
    const uint64_t start = enclave.now_ns();
    for (uint64_t i = 0; i < kOps; ++i) {
      enclave.AccessRegion(region, rng.Uniform(region_bytes - 128), 128);
    }
    const double enclave_ns = double(enclave.now_ns() - start) / double(kOps);

    sgx::Enclave plain(m, true);
    const uint64_t pstart = plain.now_ns();
    for (uint64_t i = 0; i < kOps; ++i) {
      plain.UntrustedRead(128);
    }
    const double plain_ns = double(plain.now_ns() - pstart) / double(kOps);

    std::printf("%15.2fx %16.1f %18.1f %9.1fx\n", factor, enclave_ns,
                plain_ns, enclave_ns / plain_ns);
    bench::ReportRow("micro_enclave", "enclave", "region_over_epc", factor,
                     enclave_ns, "ns");
    bench::ReportRow("micro_enclave", "untrusted", "region_over_epc", factor,
                     plain_ns, "ns");
  }
  return 0;
}
