// §6 / §3.4 claim: "eLSM achieves lower operation latency than the baseline
// of update-in-place data structures by more than one order of magnitude."
//
// Compares eLSM-P2 against the update-in-place authenticated B+-tree
// (baseline/merkle_btree): every B-tree write re-hashes and rewrites the
// root-to-leaf path with random IO, while eLSM digests append-only.
#include "bench_common.h"

#include "baseline/merkle_btree.h"

using namespace elsm;
using namespace elsm::bench;

int main() {
  PrintHeader("ADS table (§3.4/§6)",
              "eLSM-P2 vs update-in-place Merkle B+-tree",
              "eLSM writes >10x faster than the update-in-place ADS; reads "
              "competitive");

  const double paper_mb[] = {64, 256, 1024};
  const uint64_t kOps = 3000;

  std::printf("%10s %12s %12s %12s %12s %12s\n", "data(MB)", "eLSM-w(us)",
              "BTree-w(us)", "w-speedup", "eLSM-r(us)", "BTree-r(us)");
  for (double mb : paper_mb) {
    const uint64_t records = RecordsFor(mb);

    Options p2 = BaseOptions(Mode::kP2);
    p2.name = "ads-p2";
    Store store = BuildStore(p2, records);
    const double elsm_w = MeasureWriteLatencyUs(*store.db, records, kOps);
    const double elsm_r = MeasureReadLatencyUs(*store.db, records, kOps);

    sgx::CostModel m;
    m.epc_bytes = 1 << 20;
    auto enclave = std::make_shared<sgx::Enclave>(m, true);
    baseline::MerkleBTree tree(baseline::MerkleBTreeOptions{}, enclave);
    for (uint64_t i = 0; i < records; ++i) {
      if (!tree.Put(ycsb::MakeKey(i, 16), ycsb::MakeValue(i, 100)).ok()) {
        return 1;
      }
    }
    Rng rng(0xfeed);
    uint64_t start = enclave->now_ns();
    for (uint64_t i = 0; i < kOps; ++i) {
      const uint64_t k = rng.Uniform(records);
      if (!tree.Put(ycsb::MakeKey(k, 16), ycsb::MakeValue(k + i, 100)).ok()) {
        return 1;
      }
    }
    const double btree_w =
        double(enclave->now_ns() - start) / double(kOps) / 1000.0;
    start = enclave->now_ns();
    for (uint64_t i = 0; i < kOps; ++i) {
      (void)tree.Get(ycsb::MakeKey(rng.Uniform(records), 16));
    }
    const double btree_r =
        double(enclave->now_ns() - start) / double(kOps) / 1000.0;

    ReportRow("table_ads", "elsm-write", "data_mb", mb, elsm_w);
    ReportRow("table_ads", "btree-write", "data_mb", mb, btree_w);
    ReportRow("table_ads", "elsm-read", "data_mb", mb, elsm_r);
    ReportRow("table_ads", "btree-read", "data_mb", mb, btree_r);
    std::printf("%10.0f %12.2f %12.2f %11.1fx %12.2f %12.2f\n", mb, elsm_w,
                btree_w, btree_w / elsm_w, elsm_r, btree_r);
  }
  return 0;
}
