// Blockchain ledger scenario (paper §3.1 / Appendix B): an eLSM store as the
// ledger backend of a cryptocurrency node — an intensive stream of small
// transaction writes, plus SPV-style clients doing random-access verified
// reads of individual transactions without trusting the node.
//
//   $ ./build/examples/blockchain_ledger
#include <cstdio>
#include <string>

#include "common/random.h"
#include "crypto/sha256.h"
#include "elsm/elsm_db.h"

namespace {

struct Transaction {
  uint64_t id;
  std::string from;
  std::string to;
  uint64_t amount;

  std::string Key() const {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "tx%012llu",
                  static_cast<unsigned long long>(id));
    return buf;
  }
  std::string Serialize() const {
    return from + "->" + to + ":" + std::to_string(amount);
  }
};

}  // namespace

int main() {
  using namespace elsm;

  Options options;
  options.mode = Mode::kP2;
  options.name = "ledger";
  // Ledger entries are immutable; values encrypted at rest is optional but
  // shows the confidentiality layer on a realistic path.
  options.encrypt_values = true;
  auto opened = ElsmDb::Create(options);
  if (!opened.ok()) return 1;
  auto db = std::move(opened).value();

  // --- full node: ingest a block stream -----------------------------------
  std::printf("== full node ingests 20 blocks x 250 transactions ==\n");
  Rng rng(7);
  uint64_t tx_id = 0;
  for (int block = 0; block < 20; ++block) {
    for (int i = 0; i < 250; ++i) {
      Transaction tx{tx_id++,
                     "acct" + std::to_string(rng.Uniform(500)),
                     "acct" + std::to_string(rng.Uniform(500)),
                     rng.Uniform(10'000)};
      if (!db->Put(tx.Key(), tx.Serialize()).ok()) return 1;
    }
    // Block boundary: flush = durable checkpoint + sealed manifest + bump
    // of the trusted monotonic counter (rollback defence for the ledger).
    if (!db->Flush().ok()) return 1;
  }
  std::printf("ledger: %llu transactions across %zu levels, counter=%llu\n",
              (unsigned long long)tx_id, db->engine().levels().size(),
              (unsigned long long)db->platform().counter.Read());

  // --- SPV client: random-access verified reads ----------------------------
  std::printf("\n== SPV client samples the history ==\n");
  db->ResetOpStats();
  uint64_t verified = 0;
  for (int i = 0; i < 200; ++i) {
    Transaction probe{rng.Uniform(tx_id), "", "", 0};
    auto got = db->GetVerified(probe.Key());
    if (got.ok() && got.value().record.has_value() && got.value().verified) {
      ++verified;
    }
  }
  const auto& stats = db->op_stats();
  std::printf("verified %llu/200 sampled transactions\n",
              (unsigned long long)verified);
  std::printf("mean verified-read latency: %.2f us (simulated), proof "
              "payload %.1f KiB total\n",
              stats.get.Mean() / 1000.0, double(stats.proof_bytes) / 1024.0);

  // --- auditing a range of the history -------------------------------------
  auto range = db->Scan("tx000000001000", "tx000000001050");
  if (range.ok()) {
    std::printf("audited txs [1000,1050]: %zu records, completeness "
                "verified\n",
                range.value().size());
  }

  // --- a malicious node rewrites history ----------------------------------
  std::printf("\n== malicious node rewrites a ledger file ==\n");
  std::string victim;
  for (const auto& name : db->fs().List("ledger")) {
    if (name.ends_with(".sst")) {
      victim = name;
      break;
    }
  }
  // Rewrite a stripe of the file (a realistic history-rewrite attempt) —
  // via the backend-neutral on-disk tamper hook.
  if (auto size = db->fs().FileSize(victim); size.ok()) {
    for (uint64_t off = 64; off < size.value(); off += 256) {
      db->fs().Corrupt(victim, off, 0x20);
    }
  }
  int rejected = 0;
  for (uint64_t id = 0; id < tx_id; id += 37) {
    Transaction probe{id, "", "", 0};
    if (!db->GetVerified(probe.Key()).ok()) ++rejected;
  }
  std::printf("SPV clients rejected %d tampered reads (AuthFailure)\n",
              rejected);
  return verified == 200 && rejected > 0 ? 0 : 1;
}
