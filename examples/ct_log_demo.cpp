// Certificate-transparency case study (paper §5.7): an eLSM-backed CT log
// serving three actors — the CA stream submitting certificates, a browser
// auditor validating TLS handshakes, and a domain-owner monitor detecting
// mis-issuance with sublinear bandwidth.
//
//   $ ./build/examples/ct_log_demo
#include <cstdio>

#include "ct/ct.h"

int main() {
  using namespace elsm;
  using namespace elsm::ct;

  Options options;
  options.mode = Mode::kP2;
  options.name = "ctlog";
  auto created = LogServer::Create(options);
  if (!created.ok()) return 1;
  auto log = std::move(created).value();

  // --- CA write stream: an intensive stream of small certificate writes ---
  std::printf("== CT log server: ingesting certificate stream ==\n");
  Certificate mine;
  for (int i = 0; i < 2000; ++i) {
    Certificate cert;
    char host[64];
    std::snprintf(host, sizeof(host), "host%04d.example.org", i);
    cert.hostname = host;
    cert.issuer = (i % 3 == 0) ? "LetsEncrypt" : "DigiCert";
    cert.public_key = "pk" + std::to_string(i);
    cert.serial = uint64_t(i);
    if (cert.hostname == "host0042.example.org") mine = cert;
    if (!log->Submit(cert).ok()) return 1;
  }
  log->Checkpoint().ok();
  std::printf("ingested 2000 certificates, %zu LSM levels\n",
              log->db().engine().levels().size());

  // --- browser auditor: validate the cert seen on a TLS handshake ---
  Auditor auditor(log.get());
  std::printf("auditor validates host0042 cert: %s\n",
              auditor.Validate(mine) == Auditor::Verdict::kValid ? "VALID"
                                                                 : "INVALID");

  // The CA rotates the certificate; presenting the old one must now fail —
  // this is the freshness property (a stale cert may be a stolen key).
  Certificate rotated = mine;
  rotated.serial = 9999;
  rotated.public_key = "pk-rotated";
  log->Submit(rotated).ok();
  std::printf("after rotation, old cert verdict: %s\n",
              auditor.Validate(mine) == Auditor::Verdict::kMismatch
                  ? "MISMATCH (stale cert rejected)"
                  : "unexpected");

  // Revocation: freshness again, via a revocation marker.
  log->Revoke("host0042.example.org").ok();
  std::printf("after revocation, rotated cert verdict: %s\n",
              auditor.Validate(rotated) == Auditor::Verdict::kRevoked
                  ? "REVOKED"
                  : "unexpected");

  // --- domain-owner monitor: watch only your own domain ---
  std::printf("\n== lightweight monitor for corp.example.com ==\n");
  Certificate legit;
  legit.hostname = "corp.example.com";
  legit.issuer = "DigiCert";
  legit.public_key = "corp-pk";
  legit.serial = 1;
  log->Submit(legit).ok();

  Monitor monitor(log.get(), "corp.example.com");
  monitor.Trust(legit);
  auto clean = monitor.FindMisissued();
  std::printf("before attack: %zu mis-issued certificates\n",
              clean.ok() ? clean.value().size() : size_t(-1));

  // A rogue CA mis-issues a certificate under the watched domain.
  Certificate rogue;
  rogue.hostname = "corp.example.com.evil-sub";
  rogue.issuer = "RogueCA";
  rogue.public_key = "attacker-pk";
  rogue.serial = 666;
  log->Submit(rogue).ok();
  log->Checkpoint().ok();

  auto alerts = monitor.FindMisissued();
  if (alerts.ok()) {
    std::printf("after attack: %zu alert(s)\n", alerts.value().size());
    for (const auto& host : alerts.value()) {
      std::printf("  MIS-ISSUED: %s\n", host.c_str());
    }
  }

  // Bandwidth story: the monitor's verified scan covers only its domain
  // prefix, not the whole log.
  const auto& stats = log->db().op_stats();
  std::printf(
      "\nmonitor bandwidth: %.1f KiB of proofs over %llu verified queries "
      "(log holds 2002 certs)\n",
      double(stats.proof_bytes) / 1024.0,
      (unsigned long long)stats.verified_ops);
  return alerts.ok() && alerts.value().size() == 1 ? 0 : 1;
}
