// Quickstart: open an eLSM-P2 store, write, read with verification, scan,
// delete, and demonstrate that tampering with the untrusted storage is
// detected. Mirrors the README walk-through.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "auth/adversary.h"
#include "elsm/elsm_db.h"

int main() {
  using namespace elsm;

  // 1. Open a store. Mode::kP2 is the paper's primary design: LSM code in
  //    the (simulated) enclave, data outside, per-level Merkle forests.
  Options options;
  options.mode = Mode::kP2;
  options.name = "quickstart";
  auto opened = ElsmDb::Create(options);
  if (!opened.ok()) {
    std::printf("open failed: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(opened).value();

  // 2. Write some records. Timestamps are assigned by the in-enclave
  //    timestamp manager; tombstones implement deletes.
  for (int i = 0; i < 1000; ++i) {
    char key[32], value[32];
    std::snprintf(key, sizeof(key), "user%04d", i);
    std::snprintf(value, sizeof(value), "profile-%d", i);
    if (!db->Put(key, value).ok()) return 1;
  }
  db->Delete("user0500").ok();
  db->CompactAll().ok();
  std::printf("loaded 1000 records across %zu LSM levels\n",
              db->engine().levels().size());

  // 3. Verified reads: every GET carries a proof checked inside the enclave.
  auto hit = db->GetVerified("user0042");
  std::printf("GET user0042 -> %s  (verified=%s, proof=%llu bytes)\n",
              hit.ok() && hit.value().record.has_value()
                  ? hit.value().record->value.c_str()
                  : "<miss>",
              hit.ok() && hit.value().verified ? "yes" : "no",
              hit.ok() ? (unsigned long long)hit.value().proof_bytes : 0ull);

  auto miss = db->Get("user0500");
  std::printf("GET user0500 -> %s (deleted; absence is authenticated)\n",
              miss.ok() && !miss.value().has_value() ? "<miss>" : "<error>");

  // 4. Range scan with completeness verification.
  auto scan = db->Scan("user0100", "user0110");
  if (scan.ok()) {
    std::printf("SCAN [user0100, user0110] -> %zu records, first=%s\n",
                scan.value().size(), scan.value().front().key.c_str());
  }

  // 5. The untrusted host tampers with an SSTable on disk...
  std::string victim;
  for (const auto& name : db->fs().List("quickstart")) {
    if (name.ends_with(".sst")) victim = name;
  }
  auth::Adversary::CorruptFile(db->fs(), victim, 200);

  // ...and the next read touching it fails verification instead of
  // returning forged data.
  int detected = 0;
  for (int i = 0; i < 1000; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "user%04d", i);
    if (!db->GetVerified(key).ok()) ++detected;
  }
  std::printf("after tampering with %s: %d reads failed verification\n",
              victim.c_str(), detected);

  // 6. Simulated-cost accounting: how much enclave work did all this take?
  const auto counters = db->enclave().counters();
  std::printf(
      "simulated totals: %.2f ms, %llu ecalls, %llu ocalls, %llu EPC faults, "
      "%.1f KiB hashed\n",
      double(db->enclave().now_ns()) / 1e6,
      (unsigned long long)counters.ecalls, (unsigned long long)counters.ocalls,
      (unsigned long long)counters.epc_faults,
      double(counters.bytes_hashed) / 1024.0);
  return detected > 0 ? 0 : 1;
}
