// YCSB command-line tool: run any core workload (A-F) against any engine
// (p2, p2-buffer, p1, unsecured, eleos, btree) at a chosen scale and print
// load/run statistics — the interactive counterpart of the bench/ binaries.
//
//   $ ./build/examples/ycsb_tool [workload] [engine] [records] [ops]
//         (plus optional --shards=N --fanout-threads=N
//          --backend={sim,posix} --dir=PATH
//          --write-threads=N --read-threads=N --sync-interval-us=U
//          --fault-rate=R --fault-seed=S anywhere in argv)
//   $ ./build/examples/ycsb_tool A p2 20000 10000
//   $ ./build/examples/ycsb_tool A p2 20000 10000 --shards=4
//   $ ./build/examples/ycsb_tool E p2 20000 10000 --shards=8 --fanout-threads=8
//   $ ./build/examples/ycsb_tool A p2 20000 10000 --backend=posix --dir=/tmp/elsm
//
// --shards=N (N > 1) routes the eLSM engines (p2, p2-buffer, p1, unsecured)
// through the hash-partitioned ShardedDb router; baselines ignore it.
// --fanout-threads=N gives the router a shared worker pool so cross-shard
// scans and batch writes dispatch per-shard work in parallel (0 =
// sequential); it only matters together with --shards.
//
// --backend=posix runs the eLSM engines on real files (storage::PosixFs)
// under --dir (a mkdtemp'd /tmp directory when --dir is omitted), with
// fsync-honest durability; --backend=sim (default) keeps the in-memory
// deterministic disk. Both report simulated latencies *and* wall-clock
// phase times — on posix the wall clock is the first real-hardware number.
//
// --write-threads=N (N > 1) loads the eLSM engines with N concurrent writer
// threads issuing per-record Puts (striped across the key range), so the
// load phase exercises the WAL group-commit path: concurrent writers join
// one leader's fsync cohort instead of paying a barrier each. The load line
// then reports durable aggregate and per-thread ops/s separately — only
// acknowledged (fsynced) writes count. --sync-interval-us=U sets
// Options::wal_sync_interval_us, the window a group-commit leader lingers
// to absorb late joiners. Baselines (eleos, btree) are single-writer and
// ignore --write-threads.
//
// --read-threads=N (N > 1) splits the evaluation phase across N concurrent
// threads (each drives ops/N operations from its own deterministic op
// stream), so the run phase exercises the concurrent read path — sharded
// read-buffer locks, single-flight miss collapsing, and batched MultiRead
// under contention. Stats are merged across threads; baselines (eleos,
// btree) are single-threaded and ignore it. An `io:` line after the run
// reports the batched-I/O telemetry: MultiRead batches and mean sub-reads
// per batch, the io_uring vs pread split, and engine readahead hits.
//
// --fault-rate=R (R in (0,1]) wraps every eLSM disk in storage::FaultFs
// with a seeded probabilistic transient-error stream: each fs op fails
// Unavailable with probability R, exercising the bounded-retry path under
// load. --fault-seed=S picks the deterministic stream (default 1; shard i
// uses S+i). The run prints a health line — retries absorbed/exhausted,
// WAL tail repairs, injected faults, degraded/sick-shard state — so soak
// runs surface how much of the storm the retry policy absorbed.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "baseline/eleos_store.h"
#include "baseline/merkle_btree.h"
#include "elsm/elsm_db.h"
#include "elsm/sharded_db.h"
#include "storage/fault_fs.h"
#include "ycsb/kv_interface.h"
#include "ycsb/runner.h"

using namespace elsm;
using namespace elsm::ycsb;

namespace {

WorkloadSpec PickWorkload(const char* name) {
  switch (name[0]) {
    case 'A':
      return WorkloadSpec::A();
    case 'B':
      return WorkloadSpec::B();
    case 'C':
      return WorkloadSpec::C();
    case 'D':
      return WorkloadSpec::D();
    case 'E':
      return WorkloadSpec::E();
    case 'F':
      return WorkloadSpec::F();
    default:
      std::fprintf(stderr, "unknown workload %s, using A\n", name);
      return WorkloadSpec::A();
  }
}

void PrintStats(const char* phase, const RunStats& stats) {
  std::printf("%-5s ops=%-8llu mean=%8.2fus p50=%8.2fus p95=%8.2fus "
              "p99=%8.2fus\n",
              phase, (unsigned long long)stats.ops, stats.MeanLatencyUs(),
              stats.overall.Percentile(50) / 1000.0,
              stats.overall.Percentile(95) / 1000.0,
              stats.overall.Percentile(99) / 1000.0);
  if (stats.reads.count() > 0) {
    std::printf("      reads:  %s\n", stats.reads.Summary().c_str());
  }
  if (stats.writes.count() > 0) {
    std::printf("      writes: %s\n", stats.writes.Summary().c_str());
  }
  if (stats.scans.count() > 0) {
    std::printf("      scans:  %s\n", stats.scans.Summary().c_str());
  }
  if (stats.failures > 0) {
    std::printf("      stopped after %llu failures (capacity cap?)\n",
                (unsigned long long)stats.failures);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Pull --shards=N / --fanout-threads=N out of argv so the positional
  // arguments stay stable.
  uint32_t shards = 1;
  uint32_t fanout_threads = 0;
  uint32_t write_threads = 1;
  uint32_t read_threads = 1;
  uint64_t sync_interval_us = 0;
  const char* backend_name = "sim";
  std::string dir;
  double fault_rate = 0.0;
  uint64_t fault_seed = 1;
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      backend_name = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--dir=", 6) == 0) {
      dir = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--fault-rate=", 13) == 0) {
      fault_rate = strtod(argv[i] + 13, nullptr);
    } else if (std::strncmp(argv[i], "--fault-seed=", 13) == 0) {
      fault_seed = strtoull(argv[i] + 13, nullptr, 10);
      if (fault_seed == 0) fault_seed = 1;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = uint32_t(strtoul(argv[i] + 9, nullptr, 10));
      if (shards == 0) shards = 1;
    } else if (std::strncmp(argv[i], "--write-threads=", 16) == 0) {
      write_threads = uint32_t(std::min(strtoul(argv[i] + 16, nullptr, 10),
                                        64ul));
      if (write_threads == 0) write_threads = 1;
    } else if (std::strncmp(argv[i], "--read-threads=", 15) == 0) {
      read_threads = uint32_t(std::min(strtoul(argv[i] + 15, nullptr, 10),
                                       64ul));
      if (read_threads == 0) read_threads = 1;
    } else if (std::strncmp(argv[i], "--sync-interval-us=", 19) == 0) {
      sync_interval_us = strtoull(argv[i] + 19, nullptr, 10);
    } else if (std::strncmp(argv[i], "--fanout-threads=", 17) == 0) {
      // Clamp: a negative/garbage value would wrap through strtoul into a
      // few billion spawned threads.
      fanout_threads = uint32_t(std::min(strtoul(argv[i] + 17, nullptr, 10),
                                         64ul));
    } else {
      args.push_back(argv[i]);
    }
  }
  const char* workload_name = args.size() > 0 ? args[0] : "A";
  const char* engine_name = args.size() > 1 ? args[1] : "p2";
  const uint64_t records =
      args.size() > 2 ? strtoull(args[2], nullptr, 10) : 20000;
  const uint64_t ops = args.size() > 3 ? strtoull(args[3], nullptr, 10) : 10000;

  WorkloadSpec spec = PickWorkload(workload_name);
  spec.record_count = records;
  spec.operation_count = ops;

  storage::BackendKind backend = storage::BackendKind::kSim;
  if (std::strcmp(backend_name, "posix") == 0) {
    backend = storage::BackendKind::kPosix;
    if (dir.empty()) {
      char tmpl[] = "/tmp/elsm-ycsb-XXXXXX";
      const char* made = mkdtemp(tmpl);
      if (made == nullptr) {
        std::fprintf(stderr, "mkdtemp failed for --backend=posix\n");
        return 1;
      }
      dir = made;
    }
    std::printf("posix backend root: %s\n", dir.c_str());
  } else if (std::strcmp(backend_name, "sim") != 0) {
    std::fprintf(stderr, "unknown backend %s (want sim|posix)\n",
                 backend_name);
    return 1;
  }

  std::printf("YCSB workload %s on engine %s (%u shard%s, %u fan-out "
              "thread%s, %u writer%s): %llu records, %llu ops\n",
              spec.name.c_str(), engine_name, shards, shards == 1 ? "" : "s",
              fanout_threads, fanout_threads == 1 ? "" : "s", write_threads,
              write_threads == 1 ? "" : "s", (unsigned long long)records,
              (unsigned long long)ops);

  YcsbRunner runner(spec);

  std::unique_ptr<ElsmDb> db;
  std::unique_ptr<ShardedDb> sharded;
  std::unique_ptr<baseline::EleosStore> eleos;
  std::unique_ptr<baseline::MerkleBTree> btree;
  std::shared_ptr<sgx::Enclave> enclave;
  std::unique_ptr<KvInterface> kv;
  // The injection decorators when --fault-rate is set (one per disk), kept
  // for the end-of-run health report.
  std::vector<std::shared_ptr<storage::FaultFs>> fault_fs;

  if (std::strcmp(engine_name, "eleos") == 0) {
    enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
    eleos = std::make_unique<baseline::EleosStore>(baseline::EleosOptions{},
                                                   enclave);
    kv = std::make_unique<EleosKv>(eleos.get(), enclave.get());
  } else if (std::strcmp(engine_name, "btree") == 0) {
    enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
    btree = std::make_unique<baseline::MerkleBTree>(
        baseline::MerkleBTreeOptions{}, enclave);
    kv = std::make_unique<MerkleBTreeKv>(btree.get(), enclave.get());
  } else {
    Options options;
    options.name = "ycsb";
    options.backend = backend;
    options.backend_dir = dir;
    options.wal_sync_interval_us = sync_interval_us;
    if (std::strcmp(engine_name, "p1") == 0) {
      options.mode = Mode::kP1;
    } else if (std::strcmp(engine_name, "unsecured") == 0) {
      options.mode = Mode::kUnsecured;
    } else {
      options.mode = Mode::kP2;
      options.read_path = std::strcmp(engine_name, "p2-buffer") == 0
                              ? lsm::ReadPathKind::kBuffer
                              : lsm::ReadPathKind::kMmap;
    }
    // With --fault-rate, build each disk the store would have built and
    // wrap it in a FaultFs carrying the seeded transient-error stream
    // (the stores re-home the enclaves on open).
    auto make_faulty_fs = [&](uint64_t seed) {
      auto fs_enclave = std::make_shared<sgx::Enclave>(
          options.cost_model, options.mode != Mode::kUnsecured);
      auto f = std::make_shared<storage::FaultFs>(
          storage::MakeFs(backend, dir, fs_enclave));
      f->SetTransientRate(fault_rate, seed);
      fault_fs.push_back(f);
      return f;
    };
    if (shards > 1) {
      options.fanout_threads = fanout_threads;
      std::shared_ptr<ShardEnv> env;
      if (fault_rate > 0.0) {
        env = std::make_shared<ShardEnv>();
        for (uint32_t i = 0; i < shards; ++i) {
          env->shard_fs.push_back(make_faulty_fs(fault_seed + i));
        }
      }
      auto opened = ShardedDb::Open(options, shards, env);
      if (!opened.ok()) {
        std::fprintf(stderr, "open failed: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      sharded = std::move(opened).value();
      kv = std::make_unique<ShardedKv>(sharded.get());
    } else if (fault_rate > 0.0) {
      auto opened = ElsmDb::Open(options, make_faulty_fs(fault_seed),
                                 std::make_shared<TrustedPlatform>());
      if (!opened.ok()) {
        std::fprintf(stderr, "open failed: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      db = std::move(opened).value();
      kv = std::make_unique<ElsmKv>(db.get());
    } else {
      auto opened = ElsmDb::Create(options);
      if (!opened.ok()) {
        std::fprintf(stderr, "open failed: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      db = std::move(opened).value();
      kv = std::make_unique<ElsmKv>(db.get());
    }
  }

  // Baselines have no internal locking; the multi-writer load only applies
  // to the eLSM engines (whose write path is the group-commit queue).
  if (write_threads > 1 && db == nullptr && sharded == nullptr) {
    std::fprintf(stderr,
                 "--write-threads ignored: engine %s is single-writer\n",
                 engine_name);
    write_threads = 1;
  }
  if (read_threads > 1 && db == nullptr && sharded == nullptr) {
    std::fprintf(stderr,
                 "--read-threads ignored: engine %s is single-threaded\n",
                 engine_name);
    read_threads = 1;
  }

  using WallClock = std::chrono::steady_clock;
  const uint64_t load_start = kv->now_ns();
  const auto load_wall_start = WallClock::now();
  uint64_t load_acked = records;
  uint64_t load_failed = 0;
  if (write_threads > 1) {
    // Striped per-record Puts (thread t loads keys t, t+N, t+2N, ...) so
    // concurrent writers hit the WAL barrier together and join each other's
    // commit cohorts — the scenario group commit amortizes. Only writes the
    // store acknowledged (leader fsync succeeded) count as durable.
    std::vector<std::thread> writers;
    std::vector<uint64_t> acked(write_threads, 0);
    std::vector<uint64_t> failed(write_threads, 0);
    writers.reserve(write_threads);
    for (uint32_t t = 0; t < write_threads; ++t) {
      writers.emplace_back([&, t] {
        for (uint64_t i = t; i < records; i += write_threads) {
          Status ps = kv->Put(MakeKey(i, spec.key_size),
                              MakeValue(i, spec.value_size));
          if (ps.ok()) {
            ++acked[t];
          } else {
            ++failed[t];
          }
        }
      });
    }
    for (auto& w : writers) w.join();
    load_acked = 0;
    load_failed = 0;
    for (uint32_t t = 0; t < write_threads; ++t) {
      load_acked += acked[t];
      load_failed += failed[t];
    }
    if (load_acked == 0) {
      std::fprintf(stderr, "load failed: no write was acknowledged\n");
      return 1;
    }
  } else {
    Status s = runner.Load(*kv);
    if (!s.ok()) {
      std::printf("load stopped: %s\n", s.ToString().c_str());
      if (!s.IsCapacityExceeded()) return 1;
    }
  }
  const double load_wall_ms =
      std::chrono::duration<double, std::milli>(WallClock::now() -
                                                load_wall_start)
          .count();
  // Durable throughput: acked writes only, aggregate across writers and
  // per-thread, so group-commit gains show up directly in the wall line.
  const double agg_ops =
      load_wall_ms > 0 ? double(load_acked) * 1e3 / load_wall_ms : 0.0;
  std::printf("load phase: %.2f simulated ms, %.2f wall ms "
              "(durable %.0f ops/s aggregate, %.0f ops/s/thread, "
              "threads=%u, failed=%llu)\n",
              double(kv->now_ns() - load_start) / 1e6, load_wall_ms, agg_ops,
              agg_ops / double(write_threads), write_threads,
              (unsigned long long)load_failed);

  // Snapshot the batched-I/O counters so the io: line prices the run phase
  // only (the load phase's flush/compaction reads are excluded).
  storage::ResetGlobalIoStats();
  const auto run_wall_start = WallClock::now();
  Result<RunStats> stats = Status::Ok();
  if (read_threads > 1) {
    // Each thread drives its own deterministic op stream (seed 42+t) for
    // ops/N operations against the shared store, then the per-thread stats
    // merge — the run phase becomes a concurrent-reader stress of the
    // sharded cache locks, single-flight collapsing, and MultiRead batches.
    std::vector<std::thread> readers;
    std::vector<Result<RunStats>> parts(read_threads, Status::Ok());
    readers.reserve(read_threads);
    for (uint32_t t = 0; t < read_threads; ++t) {
      readers.emplace_back([&, t] {
        WorkloadSpec sub = spec;
        sub.operation_count = ops / read_threads +
                              (t < ops % read_threads ? 1 : 0);
        YcsbRunner part_runner(sub, 42 + t);
        parts[t] = part_runner.Run(*kv);
      });
    }
    for (auto& r : readers) r.join();
    RunStats merged;
    for (uint32_t t = 0; t < read_threads; ++t) {
      if (!parts[t].ok()) {
        stats = parts[t].status();
        break;
      }
      const RunStats& p = parts[t].value();
      merged.overall.Merge(p.overall);
      merged.reads.Merge(p.reads);
      merged.writes.Merge(p.writes);
      merged.scans.Merge(p.scans);
      merged.ops += p.ops;
      merged.not_found += p.not_found;
      merged.failures += p.failures;
      merged.sim_ns = std::max(merged.sim_ns, p.sim_ns);
    }
    if (stats.ok()) stats = std::move(merged);
  } else {
    stats = runner.Run(*kv);
  }
  if (!stats.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  const double run_wall_ms =
      std::chrono::duration<double, std::milli>(WallClock::now() -
                                                run_wall_start)
          .count();
  PrintStats("run", stats.value());
  std::printf("run phase: %.2f wall ms (%.0f ops/s, threads=%u, "
              "backend=%s)\n",
              run_wall_ms,
              run_wall_ms > 0
                  ? double(stats.value().ops) * 1e3 / run_wall_ms
                  : 0.0,
              read_threads, backend_name);

  // Batched-I/O telemetry for the run phase: MultiRead batches and their
  // mean width, how they executed (io_uring vs the preadv/pread fallback),
  // and how often the engine's readahead satisfied a block read.
  if (db != nullptr || sharded != nullptr) {
    const storage::IoStats io = storage::GlobalIoStats();
    uint64_t mg_batches = 0;
    uint64_t mg_blocks = 0;
    uint64_t ra_blocks = 0;
    uint64_t ra_hits = 0;
    auto add_engine = [&](const lsm::EngineStats& es) {
      mg_batches += es.multiget_batches.load();
      mg_blocks += es.multiget_batched_blocks.load();
      ra_blocks += es.readahead_blocks.load();
      ra_hits += es.readahead_hits.load();
    };
    if (sharded != nullptr) {
      for (uint32_t i = 0; i < sharded->num_shards(); ++i) {
        add_engine(sharded->shard(i).engine().stats());
      }
    } else {
      add_engine(db->engine().stats());
    }
    std::printf("io: multiread-batches=%llu sub-reads/batch=%.2f "
                "uring=%llu pread=%llu multiget-blocks=%llu "
                "readahead-hits=%llu/%llu\n",
                (unsigned long long)io.multiread_batches,
                io.multiread_batches > 0
                    ? double(io.multiread_subreads) /
                          double(io.multiread_batches)
                    : 0.0,
                (unsigned long long)io.uring_batches,
                (unsigned long long)io.pread_batches,
                (unsigned long long)(mg_batches > 0 ? mg_blocks : 0),
                (unsigned long long)ra_hits,
                (unsigned long long)(ra_blocks + mg_blocks));
  }

  // Health line: how the retry/degradation machinery fared. Always printed
  // for eLSM engines — all-zero without --fault-rate, the absorbed/
  // exhausted split under injection.
  uint64_t retry_attempts = 0;
  uint64_t retries_absorbed = 0;
  uint64_t retries_exhausted = 0;
  uint64_t wal_tail_repairs = 0;
  uint64_t injected = 0;
  for (const auto& f : fault_fs) injected += f->injected_faults();
  if (sharded != nullptr) {
    uint64_t flushes = 0;
    uint64_t compactions = 0;
    uint64_t manifest_edits = 0;
    uint64_t manifest_snapshots = 0;
    uint64_t manifest_bytes = 0;
    for (uint32_t i = 0; i < sharded->num_shards(); ++i) {
      const auto& es = sharded->shard(i).engine().stats();
      flushes += es.flushes.load();
      compactions += es.compactions.load();
      manifest_edits += es.manifest_edits_appended.load();
      manifest_snapshots += es.manifest_snapshots_written.load();
      manifest_bytes += es.manifest_bytes_written.load();
      retry_attempts += es.retry_attempts.load();
      retries_absorbed += es.retries_absorbed.load();
      retries_exhausted += es.retries_exhausted.load();
      wal_tail_repairs += es.wal_tail_repairs.load();
    }
    const auto& fan = sharded->fanout_stats();
    std::printf("sharded: shards=%u flushes=%llu compactions=%llu "
                "parallel-dispatches=%llu scan-invocations=%llu "
                "scan-skips=%llu\n",
                sharded->num_shards(), (unsigned long long)flushes,
                (unsigned long long)compactions,
                (unsigned long long)fan.parallel_dispatches.load(),
                (unsigned long long)fan.scan_shard_invocations.load(),
                (unsigned long long)fan.scan_shards_skipped.load());
    std::printf("manifest: edits=%llu snapshots=%llu bytes=%.1fKiB\n",
                (unsigned long long)manifest_edits,
                (unsigned long long)manifest_snapshots,
                double(manifest_bytes) / 1024.0);
    const auto rc = sharded->read_cache_stats();
    const auto pc = sharded->proof_path_cache_stats();
    std::printf("read cache: hits=%llu misses=%llu evictions=%llu "
                "invalidations=%llu | proof-path: hits=%llu/%llu "
                "nodes-hashed=%llu\n",
                (unsigned long long)rc.hits, (unsigned long long)rc.misses,
                (unsigned long long)rc.evictions,
                (unsigned long long)rc.invalidations,
                (unsigned long long)pc.hits, (unsigned long long)pc.lookups,
                (unsigned long long)pc.path_nodes_hashed);
    std::printf("health: retries=%llu absorbed=%llu exhausted=%llu "
                "wal-repairs=%llu injected-faults=%llu sick-shards=%u "
                "maintenance-skips=%llu\n",
                (unsigned long long)retry_attempts,
                (unsigned long long)retries_absorbed,
                (unsigned long long)retries_exhausted,
                (unsigned long long)wal_tail_repairs,
                (unsigned long long)injected, sharded->sick_shards(),
                (unsigned long long)sharded->fanout_stats()
                    .maintenance_shards_skipped.load());
  }
  if (db != nullptr) {
    const auto counters = db->enclave().counters();
    std::printf("enclave: ecalls=%llu ocalls=%llu faults=%llu hashed=%.1fKiB "
                "levels=%zu\n",
                (unsigned long long)counters.ecalls,
                (unsigned long long)counters.ocalls,
                (unsigned long long)counters.epc_faults,
                double(counters.bytes_hashed) / 1024.0,
                db->engine().levels().size());
    const auto& es = db->engine().stats();
    if (es.group_commits > 0) {
      std::printf("group commit: cohorts=%llu records=%llu "
                  "mean-cohort=%.2f\n",
                  (unsigned long long)es.group_commits,
                  (unsigned long long)es.group_commit_records,
                  double(es.group_commit_records) /
                      double(es.group_commits));
    }
    std::printf("manifest: edits=%llu snapshots=%llu bytes=%.1fKiB\n",
                (unsigned long long)es.manifest_edits_appended.load(),
                (unsigned long long)es.manifest_snapshots_written.load(),
                double(es.manifest_bytes_written.load()) / 1024.0);
    const auto rc = db->read_cache_stats();
    const auto pc = db->proof_path_cache_stats();
    std::printf("read cache: hits=%llu misses=%llu evictions=%llu "
                "invalidations=%llu | proof-path: hits=%llu/%llu "
                "nodes-hashed=%llu\n",
                (unsigned long long)rc.hits, (unsigned long long)rc.misses,
                (unsigned long long)rc.evictions,
                (unsigned long long)rc.invalidations,
                (unsigned long long)pc.hits, (unsigned long long)pc.lookups,
                (unsigned long long)pc.path_nodes_hashed);
    std::printf("health: retries=%llu absorbed=%llu exhausted=%llu "
                "wal-repairs=%llu injected-faults=%llu degraded=%s\n",
                (unsigned long long)es.retry_attempts.load(),
                (unsigned long long)es.retries_absorbed.load(),
                (unsigned long long)es.retries_exhausted.load(),
                (unsigned long long)es.wal_tail_repairs.load(),
                (unsigned long long)injected,
                db->degraded() ? "yes" : "no");
  }
  return 0;
}
