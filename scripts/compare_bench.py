#!/usr/bin/env python3
"""Compare two bench JSON baselines (scripts/run_bench.sh output).

    scripts/compare_bench.py BENCH_seed.json BENCH_pr2.json
    scripts/compare_bench.py base.json new.json --threshold 0.20 \
        --watch 'fig7a:*' --watch 'fig7b:p2-*'

Rows are matched on (bench, series, x_name, x). The exit code is non-zero
when any *watched* row regresses (its value grows) by more than --threshold,
or when a watched base row disappeared. Only rows with machine-comparable
units are watched: simulated latencies ("us", "ns") and dimensionless
ratios ("x", e.g. fig_group_commit's fsync amortization factor).
Wall-clock and size rows ("us_wall", "kb") are machine- or
feature-dependent and reported informationally.

Default watch list: every figure bench ("fig*:*"). micro_* benches measure
real time and are never watched by default.
"""
import argparse
import fnmatch
import json
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "elsm-bench-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    rows = {}
    for row in doc.get("rows", []):
        key = (row["bench"], row["series"], row.get("x_name", ""), row["x"])
        rows[key] = row
    return doc, rows


def watched(key, row, patterns):
    if row.get("unit") not in ("us", "ns", "x"):
        return False
    name = f"{key[0]}:{key[1]}"
    return any(fnmatch.fnmatch(name, pat) for pat in patterns)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("base")
    parser.add_argument("new")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max allowed relative increase of a watched row")
    parser.add_argument("--watch", action="append", default=[],
                        help="bench:series glob to gate on (repeatable); "
                             "default: 'fig*:*'")
    parser.add_argument("--top", type=int, default=40,
                        help="how many largest deltas to print")
    parser.add_argument("--allow-missing", action="store_true",
                        help="do not fail when a watched base row is gone")
    args = parser.parse_args()
    patterns = args.watch or ["fig*:*"]

    base_doc, base = load_rows(args.base)
    new_doc, new = load_rows(args.new)
    if base_doc.get("quick") != new_doc.get("quick"):
        print(f"WARNING: quick-mode mismatch (base quick={base_doc.get('quick')}, "
              f"new quick={new_doc.get('quick')}): values are not comparable")

    deltas = []           # (rel_delta, key, base_value, new_value, is_watched)
    regressions = []
    missing = []
    for key, row in sorted(base.items()):
        gate = watched(key, row, patterns)
        if key not in new:
            if gate:
                missing.append(key)
            continue
        b, n = row["value"], new[key]["value"]
        rel = (n - b) / b if b else float("inf") if n else 0.0
        deltas.append((rel, key, b, n, gate))
        if gate and rel > args.threshold:
            regressions.append((rel, key, b, n))
    added = [k for k in new if k not in base]

    label = lambda k: f"{k[0]}:{k[1]} @{k[2]}={k[3]:g}"
    print(f"compared {len(deltas)} rows "
          f"({base_doc.get('label')} -> {new_doc.get('label')}); "
          f"{len(added)} new, {len(missing)} watched-missing, "
          f"threshold {args.threshold:.0%}")
    print(f"{'delta':>8}  {'base':>12}  {'new':>12}  row")
    for rel, key, b, n, gate in sorted(deltas, key=lambda d: -abs(d[0]))[:args.top]:
        flag = " <-- REGRESSION" if gate and rel > args.threshold else ""
        mark = "*" if gate else " "
        print(f"{rel:>+7.1%}{mark} {b:>12.4g}  {n:>12.4g}  {label(key)}{flag}")
    if added:
        print("new rows: " + ", ".join(sorted(label(k) for k in added)[:20]))
    for key in missing:
        print(f"MISSING watched row: {label(key)}")

    failed = bool(regressions) or (bool(missing) and not args.allow_missing)
    if regressions:
        print(f"FAIL: {len(regressions)} watched row(s) regressed "
              f"> {args.threshold:.0%}")
    elif missing and not args.allow_missing:
        print(f"FAIL: {len(missing)} watched base row(s) missing")
    else:
        print("OK: no watched regression")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
