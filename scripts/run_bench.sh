#!/usr/bin/env bash
# Runs the figure-reproduction and micro benchmarks and folds their
# machine-readable rows into one JSON perf baseline.
#
#   scripts/run_bench.sh --quick              # ~1 min smoke baseline
#   scripts/run_bench.sh                      # full paper-scale run (~10 min)
#   scripts/run_bench.sh --quick fig2 fig6b   # subset by bench prefix
#   scripts/run_bench.sh --backend posix      # wall-clock rows: posix only
#
# --backend restricts the backend_wallclock series (comma list of
# sim|posix|posix-nosync; default all three). Those rows carry the
# "us_wall" unit, so compare_bench.py reports them informationally and
# never gates on machine-dependent real-disk numbers.
#
# Output (default BENCH_seed.json):
#   { "schema": "elsm-bench-v1", "label": ..., "quick": ...,
#     "rows": [ {bench, series, x_name, x, unit, value}, ... ] }
#
# Fig benches emit rows themselves via ELSM_BENCH_JSON (bench_common.h);
# micro_crypto's rows are converted from google-benchmark's native JSON.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="$ROOT/build"
OUT=""
LABEL=""
QUICK=0
BACKENDS=""
ONLY=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --out) OUT="$2"; shift ;;
    --label) LABEL="$2"; shift ;;
    --build-dir) BUILD_DIR="$2"; shift ;;
    --backend) BACKENDS="$2"; shift ;;
    -h|--help)
      # Print the whole leading comment block, however long it grows.
      awk 'NR == 1 { next } !/^#/ { exit } { sub(/^# ?/, ""); print }' "$0"
      exit 0 ;;
    -*) echo "unknown flag: $1" >&2; exit 2 ;;
    *) ONLY+=("$1") ;;
  esac
  shift
done

# Default output follows the label so runs never clobber the committed
# quick-mode seed baseline: --label pr7 -> BENCH_pr7.json; an unlabelled
# full run gets "full" (its 8x-larger-dataset rows are not comparable to
# the quick baseline and must not replace it).
if [[ -z "$LABEL" ]]; then
  [[ "$QUICK" == 1 ]] && LABEL="seed" || LABEL="full"
fi
[[ -z "$OUT" ]] && OUT="$ROOT/BENCH_${LABEL}.json"

FIG_BENCHES=(
  fig2_buffer_placement
  fig5a_read_write_ratio
  fig5b_data_size
  fig5c_distributions
  fig6a_read_scaling
  fig6b_mmap_vs_buffer
  fig6c_buffer_sweep
  fig7a_write_scaling
  fig7b_compaction_onoff
  fig8_write_buffer
  fig_backend_wallclock
  fig_batched_read
  fig_fanout
  fig_group_commit
  fig_manifest_scaling
  fig_read_cache
  fig_shard_scaling
  micro_enclave
  ablation_design_choices
  table_ads_comparison
)

selected() {  # does $1 match any positional filter (prefix match)?
  [[ ${#ONLY[@]} -eq 0 ]] && return 0
  local b
  for b in "${ONLY[@]}"; do
    [[ "$1" == "$b"* ]] && return 0
  done
  return 1
}

for bench in "${FIG_BENCHES[@]}"; do
  if [[ ! -x "$BUILD_DIR/bench/$bench" ]]; then
    echo "== $bench missing; building $BUILD_DIR =="
    cmake -B "$BUILD_DIR" -S "$ROOT"
    cmake --build "$BUILD_DIR" -j "$(nproc)"
    break
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
ROWS="$TMP/rows.jsonl"
: > "$ROWS"
mkdir -p "$TMP/logs"

export ELSM_BENCH_JSON="$ROWS"
if [[ -n "$BACKENDS" ]]; then
  export ELSM_BENCH_BACKEND="$BACKENDS"
else
  unset ELSM_BENCH_BACKEND
fi
if [[ "$QUICK" == 1 ]]; then
  export ELSM_BENCH_QUICK=1
else
  unset ELSM_BENCH_QUICK
fi

for bench in "${FIG_BENCHES[@]}"; do
  selected "$bench" || continue
  echo "== $bench =="
  "$BUILD_DIR/bench/$bench" | tee "$TMP/logs/$bench.log" | tail -n 3
done

if selected micro_crypto && [[ -x "$BUILD_DIR/bench/micro_crypto" ]]; then
  echo "== micro_crypto =="
  MIN_TIME=()
  [[ "$QUICK" == 1 ]] && MIN_TIME=(--benchmark_min_time=0.01)
  "$BUILD_DIR/bench/micro_crypto" "${MIN_TIME[@]}" \
    --benchmark_format=json --benchmark_out="$TMP/micro_crypto.json" \
    >/dev/null
  python3 - "$TMP/micro_crypto.json" >> "$ROWS" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
for b in doc.get("benchmarks", []):
    name = b["name"].split("/")
    print(json.dumps({
        "bench": "micro_crypto",
        "series": name[0],
        "x_name": "arg",
        "x": float(name[1]) if len(name) > 1 else 0.0,
        "unit": b.get("time_unit", "ns"),
        "value": b.get("real_time", 0.0),
    }))
PY
fi

python3 - "$ROWS" "$OUT" "$LABEL" "$QUICK" <<'PY'
import json, platform, sys
rows_path, out_path, label, quick = sys.argv[1:5]
rows = [json.loads(line) for line in open(rows_path) if line.strip()]
doc = {
    "schema": "elsm-bench-v1",
    "label": label,
    "quick": quick == "1",
    "host": {"machine": platform.machine(), "system": platform.system()},
    "row_count": len(rows),
    "rows": rows,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
PY

echo "wrote $OUT"
