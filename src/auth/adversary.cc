#include "auth/adversary.h"

namespace elsm::auth {
namespace {

AssembledLevel* HitLevel(AssembledGet* proof) {
  for (auto& level : proof->levels) {
    if (level.found && !level.chain.empty()) return &level;
  }
  return nullptr;
}

}  // namespace

bool Adversary::ForgeResultValue(AssembledGet* proof) {
  AssembledLevel* level = HitLevel(proof);
  if (level == nullptr) return false;
  std::string& core = level->chain.back().entry.core;
  if (core.empty()) return false;
  core[core.size() / 2] = char(core[core.size() / 2] ^ 0x40);
  return true;
}

bool Adversary::ServeStaleWithinLevel(AssembledGet* proof) {
  AssembledLevel* level = HitLevel(proof);
  if (level == nullptr) return false;
  // The honest chain is [newest .. result]. A staleness attack serves an
  // older record while *hiding* the newer one: strip the chain down to the
  // stale record only, keeping its (legitimate) embedded proof.
  if (level->chain.size() < 2) {
    // Need an older version: pull it from the suffix — not reconstructible
    // without the data, so the attack needs a chain of >= 2 records.
    return false;
  }
  AssembledEntry stale = level->chain.back();
  level->chain.clear();
  level->chain.push_back(std::move(stale));
  level->chain_path.leaf_index = level->chain.front().proof.leaf_index;
  return true;
}

bool Adversary::SuppressShallowHit(AssembledGet* proof) {
  // Rewrite the shallowest found level as "no result here", forcing the
  // verifier to look for (absent) non-membership witnesses.
  AssembledLevel* level = HitLevel(proof);
  if (level == nullptr) return false;
  level->found = false;
  level->chain.clear();
  level->pred.reset();
  level->succ.reset();
  return true;
}

bool Adversary::ClaimMissingKey(AssembledGet* proof) {
  bool changed = false;
  for (auto& level : proof->levels) {
    if (!level.chain.empty()) {
      level.found = false;
      level.chain.clear();
      changed = true;
    }
  }
  return changed;
}

bool Adversary::DropScanRecord(AssembledScan* proof) {
  for (auto& level : proof->levels) {
    if (!level.heads.empty()) {
      level.heads.erase(level.heads.begin() + level.heads.size() / 2);
      return true;
    }
  }
  if (!proof->memtable_records.empty()) {
    // Memtable records are trusted in the model; dropping them simulates a
    // buggy enclave, not a host attack — still useful for tests.
    proof->memtable_records.pop_back();
    return true;
  }
  return false;
}

bool Adversary::CorruptFile(storage::Fs& fs, const std::string& name,
                            size_t offset) {
  // Backend-neutral byte flip on the untrusted disk: SimFs mutates the
  // stored blob in place, PosixFs pwrites the byte (and patches any live
  // mapping) — either way live readers observe the tampering.
  return fs.Corrupt(name, offset, 0x01);
}

}  // namespace elsm::auth
