// Adversary harness (paper §3.3 threats): canned attacks a malicious host
// can mount on assembled proofs or on the untrusted storage, used by the
// security test-suite to show VRFY rejects each one.
//
// The mutators operate on AssembledGet/AssembledScan — i.e. between the
// honest engine's response and the enclave's verifier, exactly where the
// untrusted host sits.
#pragma once

#include <string>

#include "auth/proof.h"
#include "storage/fs.h"

namespace elsm::auth {

struct Adversary {
  // --- integrity -----------------------------------------------------------
  // Flips a byte inside the result record's canonical encoding.
  static bool ForgeResultValue(AssembledGet* proof);

  // --- freshness -----------------------------------------------------------
  // Presents the second-newest chain record as the result, hiding the
  // newest (Theorem 5.3 Case 1). Requires a chain of length >= 2 — the
  // caller arranges overwrites. Returns false if no such chain exists.
  static bool ServeStaleWithinLevel(AssembledGet* proof);
  // Drops the hit level's proof entirely and re-labels a deeper "found"
  // level... impossible without deeper data, so instead: presents a
  // non-membership claim for a level that actually holds the key
  // (Case 2a: the fresher shallow record is suppressed).
  static bool SuppressShallowHit(AssembledGet* proof);

  // --- completeness ----------------------------------------------------------
  // Converts a found result into a claimed miss by clearing the chain (the
  // host "forgets" the record but keeps the rest of the proof).
  static bool ClaimMissingKey(AssembledGet* proof);
  // Removes one record from a scan result (range completeness, §5.4).
  static bool DropScanRecord(AssembledScan* proof);

  // --- storage tampering ------------------------------------------------------
  // Flips one byte of an SSTable / sidecar file on the untrusted disk.
  static bool CorruptFile(storage::Fs& fs, const std::string& name,
                          size_t offset = 0);
};

}  // namespace elsm::auth
