#include "auth/level_builder.h"

#include "auth/proof.h"
#include "crypto/hash_chain.h"
#include "crypto/merkle.h"

namespace elsm::auth {
namespace {

// Walks groups of equal keys in a sorted run, invoking `fn(first, last)`
// (half-open indices) per group.
template <typename GetKey, typename Fn>
void ForEachGroup(size_t n, GetKey&& key_of, Fn&& fn) {
  size_t i = 0;
  while (i < n) {
    size_t j = i + 1;
    while (j < n && key_of(j) == key_of(i)) ++j;
    fn(i, j);
    i = j;
  }
}

}  // namespace

void RunDigester::Add(const lsm::Record& record, std::string_view core) {
  if (!in_group_ || record.key != current_key_) {
    SealGroup();
    current_key_ = record.key;
    in_group_ = true;
  }
  group_cores_.emplace_back(core);
  enclave_->ChargeHash(core.size() + 33);
}

void RunDigester::SealGroup() {
  if (!in_group_ || group_cores_.empty()) return;
  leaves_.push_back(crypto::ChainDigest(group_cores_));
  group_cores_.clear();
}

LevelDigest RunDigester::Finish() {
  SealGroup();
  in_group_ = false;
  enclave_->ChargeHash(leaves_.size() * 64);  // interior nodes, amortized
  crypto::MerkleTree tree(std::move(leaves_));
  leaves_.clear();
  return LevelDigest{tree.root(), tree.leaf_count()};
}

Status SealBuilder::AddGroup(const std::vector<lsm::Record>& group,
                             std::vector<std::string>* proof_blobs) {
  if (group.empty()) return Status::Ok();
  std::vector<std::string> encodings;
  encodings.reserve(group.size());
  for (const lsm::Record& r : group) encodings.push_back(r.EncodeCore());
  const auto suffixes = crypto::ChainSuffixes(encodings);
  const uint64_t leaf_index = leaves_.size();
  for (size_t i = 0; i < group.size(); ++i) {
    EmbeddedProof proof;
    proof.leaf_index = leaf_index;
    proof.suffix = suffixes[i];
    proof_blobs->push_back(proof.Encode());
    enclave_->ChargeHash(encodings[i].size() + 33);
  }
  leaves_.push_back(crypto::ChainDigest(encodings));
  return Status::Ok();
}

Result<lsm::CompactionSeal> SealBuilder::Finish() {
  lsm::CompactionSeal seal;
  if (leaves_.empty()) return seal;
  enclave_->ChargeHash(leaves_.size() * 64);  // interior-node hashing
  crypto::MerkleTree tree(std::move(leaves_));
  leaves_.clear();
  seal.root = tree.root();
  seal.leaf_count = tree.leaf_count();
  seal.tree_payload = TreeFile::Serialize(tree);
  // The sidecar is recomputed above; charge the duplicate interior pass.
  enclave_->ChargeHash(seal.leaf_count * 32);
  return seal;
}

LevelDigest DigestRun(const std::vector<lsm::RawEntry>& run,
                      sgx::Enclave& enclave) {
  RunDigester digester(&enclave);
  for (const lsm::RawEntry& e : run) digester.Add(e.record, e.core);
  return digester.Finish();
}

Result<lsm::CompactionSeal> BuildLevelSeal(
    const std::vector<lsm::Record>& output, sgx::Enclave& enclave,
    bool embed_full_paths) {
  lsm::CompactionSeal seal;
  if (output.empty()) return seal;

  // Pass 1: canonical encodings + chain suffixes + leaves.
  std::vector<std::string> cores;
  cores.reserve(output.size());
  for (const lsm::Record& r : output) cores.push_back(r.EncodeCore());

  std::vector<crypto::Hash256> leaves;
  std::vector<EmbeddedProof> proofs(output.size());
  ForEachGroup(
      output.size(),
      [&](size_t i) -> const std::string& { return output[i].key; },
      [&](size_t first, size_t last) {
        std::vector<std::string> encodings(cores.begin() + first,
                                           cores.begin() + last);
        const auto suffixes = crypto::ChainSuffixes(encodings);
        const uint64_t leaf_index = leaves.size();
        for (size_t i = first; i < last; ++i) {
          proofs[i].leaf_index = leaf_index;
          proofs[i].suffix = suffixes[i - first];
          enclave.ChargeHash(cores[i].size() + 33);
        }
        leaves.push_back(crypto::ChainDigest(encodings));
      });

  enclave.ChargeHash(leaves.size() * 64);  // interior-node hashing
  crypto::MerkleTree tree(std::move(leaves));
  seal.root = tree.root();
  seal.leaf_count = tree.leaf_count();
  seal.tree_payload = TreeFile::Serialize(tree);
  // The sidecar is recomputed above; charge the duplicate interior pass.
  enclave.ChargeHash(seal.leaf_count * 32);

  seal.proof_blobs.reserve(output.size());
  for (size_t i = 0; i < output.size(); ++i) {
    if (embed_full_paths) proofs[i].path = tree.Path(proofs[i].leaf_index);
    seal.proof_blobs.push_back(proofs[i].Encode());
  }
  return seal;
}

}  // namespace elsm::auth
