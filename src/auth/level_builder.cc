#include "auth/level_builder.h"

#include "auth/proof.h"
#include "crypto/hash_chain.h"
#include "crypto/merkle.h"

namespace elsm::auth {
namespace {

// Walks groups of equal keys in a sorted run, invoking `fn(first, last)`
// (half-open indices) per group.
template <typename GetKey, typename Fn>
void ForEachGroup(size_t n, GetKey&& key_of, Fn&& fn) {
  size_t i = 0;
  while (i < n) {
    size_t j = i + 1;
    while (j < n && key_of(j) == key_of(i)) ++j;
    fn(i, j);
    i = j;
  }
}

}  // namespace

LevelDigest DigestRun(const std::vector<lsm::RawEntry>& run,
                      sgx::Enclave& enclave) {
  std::vector<crypto::Hash256> leaves;
  ForEachGroup(
      run.size(), [&](size_t i) -> const std::string& { return run[i].record.key; },
      [&](size_t first, size_t last) {
        std::vector<std::string> encodings;
        encodings.reserve(last - first);
        for (size_t i = first; i < last; ++i) {
          encodings.push_back(run[i].core);
          enclave.ChargeHash(run[i].core.size() + 33);
        }
        leaves.push_back(crypto::ChainDigest(encodings));
      });
  enclave.ChargeHash(leaves.size() * 64);  // interior nodes, amortized
  crypto::MerkleTree tree(std::move(leaves));
  return LevelDigest{tree.root(), tree.leaf_count()};
}

Result<lsm::CompactionSeal> BuildLevelSeal(
    const std::vector<lsm::Record>& output, sgx::Enclave& enclave,
    bool embed_full_paths) {
  lsm::CompactionSeal seal;
  if (output.empty()) return seal;

  // Pass 1: canonical encodings + chain suffixes + leaves.
  std::vector<std::string> cores;
  cores.reserve(output.size());
  for (const lsm::Record& r : output) cores.push_back(r.EncodeCore());

  std::vector<crypto::Hash256> leaves;
  std::vector<EmbeddedProof> proofs(output.size());
  ForEachGroup(
      output.size(),
      [&](size_t i) -> const std::string& { return output[i].key; },
      [&](size_t first, size_t last) {
        std::vector<std::string> encodings(cores.begin() + first,
                                           cores.begin() + last);
        const auto suffixes = crypto::ChainSuffixes(encodings);
        const uint64_t leaf_index = leaves.size();
        for (size_t i = first; i < last; ++i) {
          proofs[i].leaf_index = leaf_index;
          proofs[i].suffix = suffixes[i - first];
          enclave.ChargeHash(cores[i].size() + 33);
        }
        leaves.push_back(crypto::ChainDigest(encodings));
      });

  enclave.ChargeHash(leaves.size() * 64);  // interior-node hashing
  crypto::MerkleTree tree(std::move(leaves));
  seal.root = tree.root();
  seal.leaf_count = tree.leaf_count();
  seal.tree_payload = TreeFile::Serialize(tree);
  // The sidecar is recomputed above; charge the duplicate interior pass.
  enclave.ChargeHash(seal.leaf_count * 32);

  seal.proof_blobs.reserve(output.size());
  for (size_t i = 0; i < output.size(); ++i) {
    if (embed_full_paths) proofs[i].path = tree.Path(proofs[i].leaf_index);
    seal.proof_blobs.push_back(proofs[i].Encode());
  }
  return seal;
}

}  // namespace elsm::auth
