// Builds the eLSM-P2 digest for a freshly compacted level (paper §5.5.2
// steps b and c): per-key hash chains over the sorted run, a Merkle tree
// over the chain digests, embedded-proof blobs for every record, and the
// serialized tree sidecar.
//
// Hash work is real (the root is a genuine SHA-256 Merkle root over the
// records) and is charged on the enclave cost model.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "lsm/engine.h"
#include "sgxsim/enclave.h"

namespace elsm::auth {

struct LevelDigest {
  crypto::Hash256 root = crypto::kZeroHash;
  uint64_t leaf_count = 0;
};

// Incremental form of DigestRun: feed the run's records in order (key asc,
// ts desc); per-key chains seal as the key changes, so only the current
// group's encodings are ever buffered. Finish() builds the Merkle root over
// the accumulated 32-byte leaves.
class RunDigester {
 public:
  explicit RunDigester(sgx::Enclave* enclave) : enclave_(enclave) {}

  void Add(const lsm::Record& record, std::string_view core);
  LevelDigest Finish();

 private:
  void SealGroup();

  sgx::Enclave* enclave_;
  std::string current_key_;
  bool in_group_ = false;
  std::vector<std::string> group_cores_;
  std::vector<crypto::Hash256> leaves_;
};

// Incremental form of BuildLevelSeal for the streaming compaction path:
// AddGroup() seals one merged key group (newest-first) and emits its proof
// blobs immediately; Finish() returns root/leaf_count/tree sidecar. Only
// valid without embed_full_paths — full Merkle paths need the finished
// tree, i.e. the buffered protocol.
class SealBuilder {
 public:
  explicit SealBuilder(sgx::Enclave* enclave) : enclave_(enclave) {}

  Status AddGroup(const std::vector<lsm::Record>& group,
                  std::vector<std::string>* proof_blobs);
  Result<lsm::CompactionSeal> Finish();

 private:
  sgx::Enclave* enclave_;
  std::vector<crypto::Hash256> leaves_;
};

// Computes only the digest of a sorted run — used to re-authenticate
// compaction *inputs* against the enclave-held root (Fig. 4 lines 31-33).
LevelDigest DigestRun(const std::vector<lsm::RawEntry>& run,
                      sgx::Enclave& enclave);

// Computes the digest *and* the seal (proof blobs + sidecar) for compaction
// output. `embed_full_paths` additionally embeds each record's full Merkle
// path into its blob (the paper's literal layout).
Result<lsm::CompactionSeal> BuildLevelSeal(
    const std::vector<lsm::Record>& output, sgx::Enclave& enclave,
    bool embed_full_paths);

}  // namespace elsm::auth
