// Builds the eLSM-P2 digest for a freshly compacted level (paper §5.5.2
// steps b and c): per-key hash chains over the sorted run, a Merkle tree
// over the chain digests, embedded-proof blobs for every record, and the
// serialized tree sidecar.
//
// Hash work is real (the root is a genuine SHA-256 Merkle root over the
// records) and is charged on the enclave cost model.
#pragma once

#include <vector>

#include "common/status.h"
#include "lsm/engine.h"
#include "sgxsim/enclave.h"

namespace elsm::auth {

struct LevelDigest {
  crypto::Hash256 root = crypto::kZeroHash;
  uint64_t leaf_count = 0;
};

// Computes only the digest of a sorted run — used to re-authenticate
// compaction *inputs* against the enclave-held root (Fig. 4 lines 31-33).
LevelDigest DigestRun(const std::vector<lsm::RawEntry>& run,
                      sgx::Enclave& enclave);

// Computes the digest *and* the seal (proof blobs + sidecar) for compaction
// output. `embed_full_paths` additionally embeds each record's full Merkle
// path into its blob (the paper's literal layout).
Result<lsm::CompactionSeal> BuildLevelSeal(
    const std::vector<lsm::Record>& output, sgx::Enclave& enclave,
    bool embed_full_paths);

}  // namespace elsm::auth
