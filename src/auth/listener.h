// Authenticated COMPACTION as a pure add-on (paper §5.5.2, §5.5.3, Fig. 4).
//
// The listener reconstructs each input run's Merkle digest and compares it
// with the enclave-held root for that level (input authentication); on
// output it builds the new level's digest, embedded proofs and tree sidecar.
// The LsmEngine never learns what the seal means — exactly the RocksDB-
// callback integration the paper claims.
//
// Two protocols: the default streaming protocol digests inputs entry by
// entry and seals output groups as the merge produces them, so compaction
// never buffers a whole level; embed_full_paths falls back to the buffered
// protocol (OnInputRun/OnOutput) because a record's full Merkle path needs
// the finished tree.
#pragma once

#include <string_view>
#include <vector>

#include "auth/level_builder.h"
#include "lsm/engine.h"
#include "sgxsim/enclave.h"

namespace elsm::auth {

class AuthCompactionListener : public lsm::CompactionListener {
 public:
  AuthCompactionListener(sgx::Enclave* enclave, bool embed_full_paths)
      : enclave_(enclave), embed_full_paths_(embed_full_paths) {}

  bool streaming() const override { return !embed_full_paths_; }

  // --- buffered protocol (embed_full_paths; also callable directly) --------
  Status OnInputRun(int src_depth, const std::vector<lsm::RawEntry>& run,
                    const lsm::LevelMeta* meta) override {
    if (src_depth < 0 || meta == nullptr) return Status::Ok();  // memtable
    const LevelDigest digest = DigestRun(run, *enclave_);
    return CheckDigest(digest, *meta, src_depth);
  }

  Result<lsm::CompactionSeal> OnOutput(
      const std::vector<lsm::Record>& output) override {
    return BuildLevelSeal(output, *enclave_, embed_full_paths_);
  }

  // --- streaming protocol --------------------------------------------------
  Status OnCompactionBegin(size_t run_count) override {
    inputs_.clear();
    inputs_.reserve(run_count);
    for (size_t i = 0; i < run_count; ++i) inputs_.emplace_back(enclave_);
    seal_builder_ = SealBuilder(enclave_);
    return Status::Ok();
  }

  Status OnInputRunBegin(size_t run_idx, int src_depth,
                         const lsm::LevelMeta* meta) override {
    if (run_idx >= inputs_.size()) {
      return Status::InvalidArgument("input run index out of range");
    }
    inputs_[run_idx].depth = src_depth;
    inputs_[run_idx].meta = (src_depth >= 0) ? meta : nullptr;
    return Status::Ok();
  }

  Status OnInputEntry(size_t run_idx, const lsm::Record& record,
                      std::string_view core) override {
    if (run_idx >= inputs_.size()) {
      return Status::InvalidArgument("input run index out of range");
    }
    if (inputs_[run_idx].meta != nullptr) {
      inputs_[run_idx].digester.Add(record, core);
    }
    return Status::Ok();
  }

  Status OnInputRunEnd(size_t run_idx) override {
    if (run_idx >= inputs_.size()) {
      return Status::InvalidArgument("input run index out of range");
    }
    InputState& input = inputs_[run_idx];
    if (input.meta == nullptr) return Status::Ok();  // trusted memtable
    return CheckDigest(input.digester.Finish(), *input.meta, input.depth);
  }

  Status OnOutputGroup(const std::vector<lsm::Record>& group,
                       std::vector<std::string>* proof_blobs) override {
    return seal_builder_.AddGroup(group, proof_blobs);
  }

  Result<lsm::CompactionSeal> OnOutputEnd() override {
    return seal_builder_.Finish();
  }

 private:
  struct InputState {
    explicit InputState(sgx::Enclave* enclave) : digester(enclave) {}
    int depth = -1;
    const lsm::LevelMeta* meta = nullptr;
    RunDigester digester;
  };

  Status CheckDigest(const LevelDigest& digest, const lsm::LevelMeta& meta,
                     int src_depth) const {
    if (digest.root != meta.root || digest.leaf_count != meta.leaf_count) {
      return Status::AuthFailure("compaction input digest mismatch at level " +
                                 std::to_string(src_depth));
    }
    return Status::Ok();
  }

  sgx::Enclave* enclave_;
  bool embed_full_paths_;
  std::vector<InputState> inputs_;
  SealBuilder seal_builder_{nullptr};
};

}  // namespace elsm::auth
