// Authenticated COMPACTION as a pure add-on (paper §5.5.2, §5.5.3, Fig. 4).
//
// The listener reconstructs each input run's Merkle digest and compares it
// with the enclave-held root for that level (input authentication); on
// output it builds the new level's digest, embedded proofs and tree sidecar
// via BuildLevelSeal. The LsmEngine never learns what the seal means —
// exactly the RocksDB-callback integration the paper claims.
#pragma once

#include "auth/level_builder.h"
#include "lsm/engine.h"
#include "sgxsim/enclave.h"

namespace elsm::auth {

class AuthCompactionListener : public lsm::CompactionListener {
 public:
  AuthCompactionListener(sgx::Enclave* enclave, bool embed_full_paths)
      : enclave_(enclave), embed_full_paths_(embed_full_paths) {}

  Status OnInputRun(int src_depth, const std::vector<lsm::RawEntry>& run,
                    const lsm::LevelMeta* meta) override {
    if (src_depth < 0 || meta == nullptr) return Status::Ok();  // memtable
    const LevelDigest digest = DigestRun(run, *enclave_);
    if (digest.root != meta->root || digest.leaf_count != meta->leaf_count) {
      return Status::AuthFailure("compaction input digest mismatch at level " +
                                 std::to_string(src_depth));
    }
    return Status::Ok();
  }

  Result<lsm::CompactionSeal> OnOutput(
      const std::vector<lsm::Record>& output) override {
    return BuildLevelSeal(output, *enclave_, embed_full_paths_);
  }

 private:
  sgx::Enclave* enclave_;
  bool embed_full_paths_;
};

}  // namespace elsm::auth
