#include "auth/proof.h"

#include <cstring>

#include "common/coding.h"

namespace elsm::auth {
namespace {

constexpr uint8_t kHasSuffix = 1 << 0;
constexpr uint8_t kHasPath = 1 << 1;

}  // namespace

std::string EmbeddedProof::Encode() const {
  std::string out;
  uint8_t flags = 0;
  if (suffix.present) flags |= kHasSuffix;
  if (path.has_value()) flags |= kHasPath;
  out.push_back(static_cast<char>(flags));
  PutVarint64(&out, leaf_index);
  if (suffix.present) {
    out.append(reinterpret_cast<const char*>(suffix.digest.data()), 32);
  }
  if (path.has_value()) PutLengthPrefixed(&out, path->Encode());
  return out;
}

Result<EmbeddedProof> EmbeddedProof::Decode(std::string_view blob) {
  if (blob.empty()) return Status::Corruption("empty embedded proof");
  EmbeddedProof proof;
  const uint8_t flags = static_cast<uint8_t>(blob.front());
  blob.remove_prefix(1);
  if (!GetVarint64(&blob, &proof.leaf_index)) {
    return Status::Corruption("bad embedded proof index");
  }
  if (flags & kHasSuffix) {
    if (blob.size() < 32) return Status::Corruption("bad embedded suffix");
    proof.suffix.present = true;
    std::memcpy(proof.suffix.digest.data(), blob.data(), 32);
    blob.remove_prefix(32);
  }
  if (flags & kHasPath) {
    std::string_view encoded;
    if (!GetLengthPrefixed(&blob, &encoded)) {
      return Status::Corruption("bad embedded path");
    }
    auto path = crypto::MerklePath::Decode(encoded);
    if (!path.ok()) return path.status();
    proof.path = std::move(path).value();
  }
  return proof;
}

std::string TreeFile::Serialize(const crypto::MerkleTree& tree) {
  std::string out;
  PutFixed64(&out, tree.leaf_count());
  // Rebuild level-by-level exactly as MerkleTree does, appending raw hashes.
  // (The tree object does not expose its levels; recompute widths and walk
  // leaves upward — cheap relative to the hashing already done.)
  std::vector<crypto::Hash256> level;
  level.reserve(tree.leaf_count());
  for (uint64_t i = 0; i < tree.leaf_count(); ++i) level.push_back(tree.leaf(i));
  while (true) {
    for (const crypto::Hash256& h : level) {
      out.append(reinterpret_cast<const char*>(h.data()), h.size());
    }
    if (level.size() <= 1) break;
    std::vector<crypto::Hash256> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(crypto::HashInterior(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return out;
}

Result<TreeFile> TreeFile::Open(const storage::Fs& fs,
                                const std::string& name) {
  auto region = storage::MmapRegion::Open(fs, name);
  if (!region.ok()) return region.status();
  auto header = region.value().Read(0, 8);
  if (!header.ok() || header.value().size() < 8) {
    return Status::Corruption("bad tree file header");
  }
  uint64_t leaf_count = 0;
  std::string_view cursor = header.value();
  if (!GetFixed64(&cursor, &leaf_count)) {
    return Status::Corruption("bad tree file header");
  }
  std::vector<uint64_t> offsets;
  std::vector<uint64_t> widths;
  uint64_t offset = 8;
  uint64_t width = leaf_count == 0 ? 1 : leaf_count;
  while (true) {
    offsets.push_back(offset);
    widths.push_back(width);
    offset += width * 32;
    if (width <= 1) break;
    width = (width + 1) / 2;
  }
  return TreeFile(std::move(region).value(), leaf_count, std::move(offsets),
                  std::move(widths));
}

Result<crypto::Hash256> TreeFile::Node(size_t level, uint64_t index) const {
  if (level >= level_offsets_.size() || index >= level_widths_[level]) {
    return Status::Corruption("tree node out of range");
  }
  auto bytes = region_.Read(level_offsets_[level] + index * 32, 32);
  if (!bytes.ok()) return bytes.status();
  if (bytes.value().size() != 32) {
    return Status::Corruption("short tree node read");
  }
  crypto::Hash256 h;
  std::memcpy(h.data(), bytes.value().data(), 32);
  return h;
}

Result<crypto::MerklePath> TreeFile::Siblings(uint64_t leaf_index) const {
  crypto::MerklePath path;
  path.leaf_index = leaf_index;
  uint64_t idx = leaf_index;
  for (size_t l = 0; l + 1 < level_widths_.size(); ++l) {
    const uint64_t width = level_widths_[l];
    if (idx % 2 == 1) {
      auto node = Node(l, idx - 1);
      if (!node.ok()) return node.status();
      path.siblings.push_back(node.value());
    } else if (idx + 1 < width) {
      auto node = Node(l, idx + 1);
      if (!node.ok()) return node.status();
      path.siblings.push_back(node.value());
    }
    idx /= 2;
  }
  return path;
}

Result<crypto::MerkleRangeProof> TreeFile::RangeProof(uint64_t lo,
                                                      uint64_t hi) const {
  crypto::MerkleRangeProof proof;
  proof.lo = lo;
  uint64_t cur_lo = lo;
  uint64_t cur_hi = hi;
  for (size_t l = 0; l + 1 < level_widths_.size(); ++l) {
    const uint64_t width = level_widths_[l];
    if (cur_lo % 2 == 1) {
      auto node = Node(l, cur_lo - 1);
      if (!node.ok()) return node.status();
      proof.hashes.push_back(node.value());
    }
    if (cur_hi % 2 == 0 && cur_hi + 1 < width) {
      auto node = Node(l, cur_hi + 1);
      if (!node.ok()) return node.status();
      proof.hashes.push_back(node.value());
    }
    cur_lo /= 2;
    cur_hi /= 2;
  }
  return proof;
}

Result<const TreeFile*> ProofAssembler::Tree(const std::string& name) {
  std::lock_guard<std::mutex> lock(trees_mu_);
  auto it = trees_.find(name);
  if (it == trees_.end()) {
    auto tree = TreeFile::Open(*fs_, name);
    if (!tree.ok()) return tree.status();
    it = trees_.emplace(name, std::move(tree).value()).first;
  }
  return &it->second;
}

void ProofAssembler::Evict(const std::string& name) {
  std::lock_guard<std::mutex> lock(trees_mu_);
  trees_.erase(name);
}

void ProofAssembler::Clear() {
  std::lock_guard<std::mutex> lock(trees_mu_);
  trees_.clear();
}

size_t ProofAssembler::cached_trees() const {
  std::lock_guard<std::mutex> lock(trees_mu_);
  return trees_.size();
}

namespace {

Result<AssembledEntry> MakeEntry(const lsm::RawEntry& raw) {
  auto proof = EmbeddedProof::Decode(raw.proof_blob);
  if (!proof.ok()) return proof.status();
  AssembledEntry out;
  out.entry = raw;
  out.proof = std::move(proof).value();
  return out;
}

}  // namespace

Result<AssembledGet> ProofAssembler::AssembleGet(
    const lsm::GetResponse& response,
    const std::vector<lsm::LevelMeta>& levels) {
  AssembledGet out;
  out.memtable_hit = response.memtable_hit;
  for (const lsm::LevelGetResult& lr : response.levels) {
    AssembledLevel al;
    al.level_pos = lr.level_pos;
    al.bloom_negative = lr.bloom_negative;
    al.found = lr.found;
    if (lr.level_pos >= levels.size()) {
      return Status::Corruption("level position out of range");
    }
    const lsm::LevelMeta& meta = levels[lr.level_pos];

    auto attach_path =
        [&](const EmbeddedProof& proof,
            crypto::MerklePath* path_out) -> Status {
      if (proof.path.has_value()) {
        *path_out = *proof.path;
        return Status::Ok();
      }
      auto tree = Tree(meta.tree_file);
      if (!tree.ok()) return tree.status();
      auto path = tree.value()->Siblings(proof.leaf_index);
      if (!path.ok()) return path.status();
      *path_out = std::move(path).value();
      return Status::Ok();
    };

    if (!lr.chain.empty()) {
      for (const lsm::RawEntry& raw : lr.chain) {
        auto entry = MakeEntry(raw);
        if (!entry.ok()) return entry.status();
        out.proof_bytes += raw.core.size() + raw.proof_blob.size();
        al.chain.push_back(std::move(entry).value());
      }
      Status s = attach_path(al.chain.front().proof, &al.chain_path);
      if (!s.ok()) return s;
      out.proof_bytes += al.chain_path.ByteSize();
    }
    if (lr.pred.has_value()) {
      auto entry = MakeEntry(*lr.pred);
      if (!entry.ok()) return entry.status();
      al.pred = std::move(entry).value();
      Status s = attach_path(al.pred->proof, &al.pred_path);
      if (!s.ok()) return s;
      out.proof_bytes += lr.pred->core.size() + al.pred_path.ByteSize();
    }
    if (lr.succ.has_value()) {
      auto entry = MakeEntry(*lr.succ);
      if (!entry.ok()) return entry.status();
      al.succ = std::move(entry).value();
      Status s = attach_path(al.succ->proof, &al.succ_path);
      if (!s.ok()) return s;
      out.proof_bytes += lr.succ->core.size() + al.succ_path.ByteSize();
    }
    out.levels.push_back(std::move(al));
  }
  return out;
}

Result<AssembledScan> ProofAssembler::AssembleScan(
    const lsm::ScanResponse& response,
    const std::vector<lsm::LevelMeta>& levels) {
  AssembledScan out;
  out.memtable_records = response.memtable_records;
  for (const lsm::LevelScanResult& lr : response.levels) {
    AssembledScanLevel al;
    al.level_pos = lr.level_pos;
    if (lr.level_pos >= levels.size()) {
      return Status::Corruption("level position out of range");
    }
    const lsm::LevelMeta& meta = levels[lr.level_pos];
    if (meta.leaf_count == 0) {
      out.levels.push_back(std::move(al));
      continue;
    }

    for (const lsm::RawEntry& raw : lr.heads) {
      auto entry = MakeEntry(raw);
      if (!entry.ok()) return entry.status();
      out.proof_bytes += raw.core.size() + raw.proof_blob.size();
      al.heads.push_back(std::move(entry).value());
    }
    if (lr.pred.has_value()) {
      auto entry = MakeEntry(*lr.pred);
      if (!entry.ok()) return entry.status();
      out.proof_bytes += lr.pred->core.size();
      al.pred = std::move(entry).value();
    }
    if (lr.succ.has_value()) {
      auto entry = MakeEntry(*lr.succ);
      if (!entry.ok()) return entry.status();
      out.proof_bytes += lr.succ->core.size();
      al.succ = std::move(entry).value();
    }

    // Contiguous leaf run = [pred] + heads + [succ].
    uint64_t lo = 0;
    uint64_t hi = 0;
    bool have = false;
    auto extend = [&](const std::optional<AssembledEntry>& e) {
      if (!e.has_value()) return;
      const uint64_t idx = e->proof.leaf_index;
      if (!have) {
        lo = hi = idx;
        have = true;
      } else {
        lo = std::min(lo, idx);
        hi = std::max(hi, idx);
      }
    };
    extend(al.pred);
    for (const AssembledEntry& e : al.heads) {
      if (!have) {
        lo = hi = e.proof.leaf_index;
        have = true;
      } else {
        lo = std::min(lo, e.proof.leaf_index);
        hi = std::max(hi, e.proof.leaf_index);
      }
    }
    extend(al.succ);
    if (have) {
      auto tree = Tree(meta.tree_file);
      if (!tree.ok()) return tree.status();
      auto range = tree.value()->RangeProof(lo, hi);
      if (!range.ok()) return range.status();
      al.range = std::move(range).value();
      out.proof_bytes += al.range.hashes.size() * 32;
    }
    out.levels.push_back(std::move(al));
  }
  return out;
}

}  // namespace elsm::auth
