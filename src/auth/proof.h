// eLSM-P2 proof machinery (paper §5.2, §5.3).
//
// Embedded proof: every record stored in an SSTable carries
//   { leaf_index, chain suffix }  (+ optionally the full Merkle path).
// The Merkle authentication-path hashes live in a per-level *tree sidecar*
// file in untrusted storage; the ProofAssembler (playing the untrusted-host
// role, §5.3 r1) combines record blobs with sidecar hashes into the proof
// the enclave verifies. DESIGN.md §2 documents this as a storage-layout
// refinement of the paper's "proofs embedded in records": the proof is
// still assembled entirely from untrusted, per-record materialized data,
// but interior hashes are not duplicated into every record (the paper's
// literal layout is available via `embed_full_paths` and tested equal).
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "crypto/hash_chain.h"
#include "crypto/merkle.h"
#include "lsm/engine.h"
#include "storage/fs.h"
#include "storage/mmap.h"

namespace elsm::auth {

struct EmbeddedProof {
  uint64_t leaf_index = 0;
  crypto::ChainSuffix suffix;               // digest of the older chain tail
  std::optional<crypto::MerklePath> path;   // present iff embed_full_paths

  std::string Encode() const;
  static Result<EmbeddedProof> Decode(std::string_view blob);
};

// Reader for the per-level Merkle sidecar: all tree nodes, level by level,
// leaves first. The file is untrusted — a tampered sidecar only produces
// proofs that fail verification.
class TreeFile {
 public:
  static Result<TreeFile> Open(const storage::Fs& fs, const std::string& name);

  uint64_t leaf_count() const { return leaf_count_; }
  Result<crypto::MerklePath> Siblings(uint64_t leaf_index) const;
  Result<crypto::MerkleRangeProof> RangeProof(uint64_t lo, uint64_t hi) const;

  // Serialization used by the level builder.
  static std::string Serialize(const crypto::MerkleTree& tree);

 private:
  TreeFile(storage::MmapRegion region, uint64_t leaf_count,
           std::vector<uint64_t> level_offsets,
           std::vector<uint64_t> level_widths)
      : region_(std::move(region)),
        leaf_count_(leaf_count),
        level_offsets_(std::move(level_offsets)),
        level_widths_(std::move(level_widths)) {}

  Result<crypto::Hash256> Node(size_t level, uint64_t index) const;

  storage::MmapRegion region_;
  uint64_t leaf_count_;
  std::vector<uint64_t> level_offsets_;  // byte offset of each tree level
  std::vector<uint64_t> level_widths_;
};

// --- assembled (wire-level) proofs the enclave verifies ---------------------

struct AssembledEntry {
  lsm::RawEntry entry;
  EmbeddedProof proof;
};

struct AssembledLevel {
  size_t level_pos = 0;
  bool bloom_negative = false;
  bool found = false;
  std::vector<AssembledEntry> chain;       // newest-first group prefix
  crypto::MerklePath chain_path;           // shared by every chain entry
  std::optional<AssembledEntry> pred;
  crypto::MerklePath pred_path;
  std::optional<AssembledEntry> succ;
  crypto::MerklePath succ_path;
};

struct AssembledGet {
  std::optional<lsm::Record> memtable_hit;
  std::vector<AssembledLevel> levels;
  uint64_t proof_bytes = 0;  // total authentication payload (reporting)
};

struct AssembledScanLevel {
  size_t level_pos = 0;
  std::vector<AssembledEntry> heads;  // newest record per in-range key group
  std::optional<AssembledEntry> pred;
  std::optional<AssembledEntry> succ;
  crypto::MerkleRangeProof range;
};

struct AssembledScan {
  std::vector<lsm::Record> memtable_records;
  std::vector<AssembledScanLevel> levels;
  uint64_t proof_bytes = 0;
};

// Untrusted-host role: turns engine responses into assembled proofs by
// decoding embedded blobs and fetching sidecar hashes. Keeps per-level
// TreeFile handles cached (mmap once per level generation).
class ProofAssembler {
 public:
  explicit ProofAssembler(std::shared_ptr<storage::Fs> fs)
      : fs_(std::move(fs)) {}

  Result<AssembledGet> AssembleGet(const lsm::GetResponse& response,
                                   const std::vector<lsm::LevelMeta>& levels);
  Result<AssembledScan> AssembleScan(const lsm::ScanResponse& response,
                                     const std::vector<lsm::LevelMeta>& levels);

  // Drops the cached handle for a compaction-deleted sidecar. Safe only for
  // names no live Version references (the caller drains them from the file
  // tracker, which requires every pinning snapshot to have died).
  void Evict(const std::string& name);
  // Drops every cached handle (manifest restore / reopen).
  void Clear();
  size_t cached_trees() const;

 private:
  Result<const TreeFile*> Tree(const std::string& name);

  std::shared_ptr<storage::Fs> fs_;
  mutable std::mutex trees_mu_;  // concurrent readers share one assembler
  std::map<std::string, TreeFile> trees_;
};

}  // namespace elsm::auth
