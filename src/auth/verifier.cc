#include "auth/verifier.h"

#include <map>

namespace elsm::auth {
namespace {

Result<lsm::Record> DecodeEntry(const AssembledEntry& e) {
  std::string_view cursor(e.entry.core);
  auto record = lsm::Record::DecodeCore(&cursor);
  if (!record.ok() || !cursor.empty()) {
    return Status::AuthFailure("undecodable record in proof");
  }
  return record;
}

// Cache key for a verified tree node: the enclave-held root it was verified
// against, the tree level, and the node index within that level.
std::string NodeKey(const crypto::Hash256& root, uint32_t level,
                    uint64_t index) {
  std::string key;
  key.reserve(root.size() + 1 + 8);
  key.append(reinterpret_cast<const char*>(root.data()), root.size());
  key.push_back(static_cast<char>(level));  // tree height <= 64
  for (int i = 0; i < 8; ++i) {
    key.push_back(static_cast<char>((index >> (8 * i)) & 0xFF));
  }
  return key;
}

}  // namespace

Status Verifier::VerifyPathCached(const crypto::Hash256& leaf_hash,
                                  const crypto::MerklePath& path,
                                  uint64_t leaf_count,
                                  const crypto::Hash256& root) const {
  if (path_cache_entries_ == 0) {
    enclave_->ChargeHash(65 * path.siblings.size());
    return crypto::MerkleTree::VerifyPath(leaf_hash, path, leaf_count, root);
  }
  if (leaf_count == 0) return Status::AuthFailure("path against empty tree");
  if (path.leaf_index >= leaf_count) {
    return Status::AuthFailure("leaf index out of range");
  }

  std::lock_guard<std::mutex> lock(cache_mu_);
  ++cache_stats_.lookups;
  crypto::Hash256 h = leaf_hash;
  uint64_t idx = path.leaf_index;
  uint64_t width = leaf_count;
  uint32_t level = 0;
  size_t used = 0;
  uint64_t hashed = 0;
  bool short_circuit = false;
  // Nodes computed on this climb, inserted only if the whole path verifies.
  std::vector<std::pair<std::string, crypto::Hash256>> computed;
  computed.emplace_back(NodeKey(root, level, idx), h);

  // One ChargeHash covers the whole climb (same cost as the uncached
  // single 65*n charge when nothing is cached).
  auto finish = [&](Status s) {
    if (hashed > 0) {
      enclave_->ChargeHash(65 * hashed);
      cache_stats_.path_nodes_hashed += hashed;
    }
    return s;
  };

  while (width > 1) {
    auto it = path_nodes_.find(computed.back().first);
    if (it != path_nodes_.end()) {
      if (it->second != h) {
        // The host's proof disagrees with a node already verified against
        // this root: under collision resistance the proof is forged.
        return finish(
            Status::AuthFailure("proof contradicts verified path node"));
      }
      // The climb from this node to the root was verified before; only the
      // remaining sibling count still needs checking (same malformed-proof
      // acceptance as the full climb).
      short_circuit = true;
      while (width > 1) {
        if (idx % 2 == 1 || idx + 1 < width) ++used;
        idx /= 2;
        width = (width + 1) / 2;
      }
      break;
    }
    if (idx % 2 == 1) {
      if (used >= path.siblings.size()) {
        return finish(Status::AuthFailure("merkle path too short"));
      }
      h = crypto::HashInterior(path.siblings[used++], h);
      ++hashed;
    } else if (idx + 1 < width) {
      if (used >= path.siblings.size()) {
        return finish(Status::AuthFailure("merkle path too short"));
      }
      h = crypto::HashInterior(h, path.siblings[used++]);
      ++hashed;
    }
    // An unpaired rightmost node carries up unhashed; either way the node
    // one level up is now known.
    idx /= 2;
    width = (width + 1) / 2;
    ++level;
    computed.emplace_back(NodeKey(root, level, idx), h);
  }

  if (used != path.siblings.size()) {
    return finish(Status::AuthFailure("merkle path has extra nodes"));
  }
  if (!short_circuit && h != root) {
    return finish(Status::AuthFailure("merkle root mismatch"));
  }
  if (short_circuit) ++cache_stats_.hits;
  for (auto& [key, node] : computed) {
    auto [pos, inserted] = path_nodes_.emplace(key, node);
    (void)pos;
    if (inserted) {
      path_fifo_.push_back(key);
      ++cache_stats_.insertions;
    }
  }
  while (path_nodes_.size() > path_cache_entries_ && !path_fifo_.empty()) {
    path_nodes_.erase(path_fifo_.front());
    path_fifo_.pop_front();
    ++cache_stats_.evictions;
  }
  return finish(Status::Ok());
}

void Verifier::InvalidatePathCache() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  path_nodes_.clear();
  path_fifo_.clear();
}

ProofPathCacheStats Verifier::path_cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_stats_;
}

Result<crypto::Hash256> Verifier::HeadLeaf(const AssembledEntry& e) const {
  enclave_->ChargeHash(e.entry.core.size() + 33);
  return crypto::ChainLeafFromPrefix({std::string_view(e.entry.core)},
                                     e.proof.suffix);
}

Status Verifier::VerifyLevelMembership(std::string_view key, uint64_t ts_max,
                                       const AssembledLevel& al,
                                       const lsm::LevelMeta& meta) const {
  if (al.chain.empty()) return Status::AuthFailure("empty membership chain");
  const uint64_t leaf_index = al.chain.front().proof.leaf_index;
  std::vector<std::string_view> encodings;
  encodings.reserve(al.chain.size());

  uint64_t prev_ts = UINT64_MAX;
  for (size_t i = 0; i < al.chain.size(); ++i) {
    const AssembledEntry& e = al.chain[i];
    auto record = DecodeEntry(e);
    if (!record.ok()) return record.status();
    const lsm::Record& r = record.value();
    if (r.key != key) return Status::AuthFailure("chain key mismatch");
    if (e.proof.leaf_index != leaf_index) {
      return Status::AuthFailure("chain leaf index mismatch");
    }
    if (r.ts >= prev_ts) {
      return Status::AuthFailure("chain timestamps not descending");
    }
    prev_ts = r.ts;
    const bool is_last = i + 1 == al.chain.size();
    if (!is_last && r.ts <= ts_max) {
      // A visible record hidden behind another visible record: the host
      // should have stopped the chain here.
      return Status::AuthFailure("chain extends past visible record");
    }
    if (is_last) {
      if (al.found && r.ts > ts_max) {
        return Status::AuthFailure("claimed result newer than query time");
      }
      if (!al.found) {
        // The whole group is invisible at ts_max: the chain must be
        // exhausted, otherwise older (possibly visible) records are hidden.
        if (r.ts <= ts_max) {
          return Status::AuthFailure("visible record on not-found chain");
        }
        if (e.proof.suffix.present) {
          return Status::AuthFailure("chain not exhausted on not-found");
        }
      }
    }
    encodings.push_back(e.entry.core);
    enclave_->ChargeHash(e.entry.core.size() + 33);
  }

  const crypto::Hash256 leaf = crypto::ChainLeafFromPrefix(
      encodings, al.chain.back().proof.suffix);
  if (al.chain_path.leaf_index != leaf_index) {
    return Status::AuthFailure("path index mismatch");
  }
  return VerifyPathCached(leaf, al.chain_path, meta.leaf_count, meta.root);
}

Status Verifier::VerifyLevelNonMembership(std::string_view key,
                                          const AssembledLevel& al,
                                          const lsm::LevelMeta& meta) const {
  if (!al.pred.has_value() && !al.succ.has_value()) {
    if (meta.leaf_count != 0 || meta.root != crypto::kZeroHash) {
      return Status::AuthFailure("missing non-membership witnesses");
    }
    return Status::Ok();  // provably empty level
  }
  if (meta.leaf_count == 0) {
    return Status::AuthFailure("witnesses against empty level");
  }

  uint64_t pred_index = 0;
  uint64_t succ_index = 0;
  if (al.pred.has_value()) {
    auto record = DecodeEntry(*al.pred);
    if (!record.ok()) return record.status();
    if (!(record.value().key < std::string(key))) {
      return Status::AuthFailure("pred key not below query");
    }
    auto leaf = HeadLeaf(*al.pred);
    if (!leaf.ok()) return leaf.status();
    pred_index = al.pred->proof.leaf_index;
    if (al.pred_path.leaf_index != pred_index) {
      return Status::AuthFailure("pred path index mismatch");
    }
    Status s = VerifyPathCached(leaf.value(), al.pred_path, meta.leaf_count,
                                meta.root);
    if (!s.ok()) return s;
  }
  if (al.succ.has_value()) {
    auto record = DecodeEntry(*al.succ);
    if (!record.ok()) return record.status();
    if (!(std::string(key) < record.value().key)) {
      return Status::AuthFailure("succ key not above query");
    }
    auto leaf = HeadLeaf(*al.succ);
    if (!leaf.ok()) return leaf.status();
    succ_index = al.succ->proof.leaf_index;
    if (al.succ_path.leaf_index != succ_index) {
      return Status::AuthFailure("succ path index mismatch");
    }
    Status s = VerifyPathCached(leaf.value(), al.succ_path, meta.leaf_count,
                                meta.root);
    if (!s.ok()) return s;
  }

  // Adjacency: the bracketing leaves must leave no room for the key.
  if (al.pred.has_value() && al.succ.has_value()) {
    if (succ_index != pred_index + 1) {
      return Status::AuthFailure("witnesses not adjacent");
    }
  } else if (al.succ.has_value()) {
    if (succ_index != 0) {
      return Status::AuthFailure("succ-only witness not first leaf");
    }
  } else {
    if (pred_index != meta.leaf_count - 1) {
      return Status::AuthFailure("pred-only witness not last leaf");
    }
  }
  return Status::Ok();
}

Result<std::optional<lsm::Record>> Verifier::VerifyGet(
    std::string_view key, uint64_t ts_max, const AssembledGet& proof,
    const std::vector<lsm::LevelMeta>& levels) const {
  enclave_->Copy(proof.proof_bytes, /*cross_boundary=*/true);

  if (proof.memtable_hit.has_value()) {
    // L0 lives inside the enclave: trusted, and it holds the newest data so
    // the search legitimately stopped there.
    if (!proof.levels.empty()) {
      return Status::AuthFailure("levels attached to a memtable hit");
    }
    return std::optional<lsm::Record>(*proof.memtable_hit);
  }

  for (size_t i = 0; i < proof.levels.size(); ++i) {
    const AssembledLevel& al = proof.levels[i];
    if (al.level_pos != i) {
      return Status::AuthFailure("level sequence gap in proof");
    }
    const lsm::LevelMeta& meta = levels[i];

    if (al.bloom_negative) {
      // Trusted skip, but re-check against the enclave-resident filter so a
      // forged response cannot abuse the flag.
      if (!meta.files.empty() && meta.bloom.MayContain(key)) {
        return Status::AuthFailure("bloom skip contradicts enclave filter");
      }
      continue;
    }

    if (!al.chain.empty()) {
      Status s = VerifyLevelMembership(key, ts_max, al, meta);
      if (!s.ok()) return s;
      if (al.found) {
        if (i + 1 != proof.levels.size()) {
          return Status::AuthFailure("proof continues past hit level");
        }
        auto record = DecodeEntry(al.chain.back());
        if (!record.ok()) return record.status();
        return std::optional<lsm::Record>(std::move(record).value());
      }
      continue;  // group exists but is invisible at ts_max: go deeper
    }

    Status s = VerifyLevelNonMembership(key, al, meta);
    if (!s.ok()) return s;
  }

  // No level produced a visible record: the proof must cover every level.
  if (proof.levels.size() != levels.size()) {
    return Status::AuthFailure("miss proof does not cover all levels");
  }
  return std::optional<lsm::Record>(std::nullopt);
}

Result<std::vector<lsm::Record>> Verifier::VerifyScan(
    std::string_view k1, std::string_view k2, const AssembledScan& proof,
    const std::vector<lsm::LevelMeta>& levels) const {
  enclave_->Copy(proof.proof_bytes, /*cross_boundary=*/true);
  if (proof.levels.size() != levels.size()) {
    return Status::AuthFailure("scan proof does not cover all levels");
  }

  // Merged view: first writer (shallowest source) wins per key.
  std::map<std::string, lsm::Record> merged;
  for (const lsm::Record& r : proof.memtable_records) {
    merged.emplace(r.key, r);
  }

  for (size_t i = 0; i < proof.levels.size(); ++i) {
    const AssembledScanLevel& al = proof.levels[i];
    if (al.level_pos != i) {
      return Status::AuthFailure("scan level sequence gap");
    }
    const lsm::LevelMeta& meta = levels[i];
    if (meta.leaf_count == 0) {
      if (!al.heads.empty() || al.pred.has_value() || al.succ.has_value()) {
        return Status::AuthFailure("witnesses against empty level");
      }
      continue;
    }

    std::vector<crypto::Hash256> run_leaves;
    uint64_t run_lo = 0;
    bool have_run = false;
    std::string prev_key;

    auto push_leaf = [&](const AssembledEntry& e,
                         uint64_t expected_index) -> Status {
      if (e.proof.leaf_index != expected_index) {
        return Status::AuthFailure("scan leaves not contiguous");
      }
      auto leaf = HeadLeaf(e);
      if (!leaf.ok()) return leaf.status();
      run_leaves.push_back(leaf.value());
      return Status::Ok();
    };

    if (al.pred.has_value()) {
      auto record = DecodeEntry(*al.pred);
      if (!record.ok()) return record.status();
      if (!(record.value().key < std::string(k1))) {
        return Status::AuthFailure("scan pred not below range");
      }
      run_lo = al.pred->proof.leaf_index;
      have_run = true;
      auto leaf = HeadLeaf(*al.pred);
      if (!leaf.ok()) return leaf.status();
      run_leaves.push_back(leaf.value());
    }

    std::vector<lsm::Record> head_records;
    head_records.reserve(al.heads.size());
    for (const AssembledEntry& e : al.heads) {
      auto record = DecodeEntry(e);
      if (!record.ok()) return record.status();
      const lsm::Record& r = record.value();
      if (r.key < std::string(k1) || std::string(k2) < r.key) {
        return Status::AuthFailure("scan head outside range");
      }
      if (!head_records.empty() && !(prev_key < r.key)) {
        return Status::AuthFailure("scan heads not strictly ascending");
      }
      prev_key = r.key;
      if (!have_run) {
        run_lo = e.proof.leaf_index;
        have_run = true;
        auto leaf = HeadLeaf(e);
        if (!leaf.ok()) return leaf.status();
        run_leaves.push_back(leaf.value());
      } else {
        Status s = push_leaf(e, run_lo + run_leaves.size());
        if (!s.ok()) return s;
      }
      head_records.push_back(r);
    }

    if (al.succ.has_value()) {
      auto record = DecodeEntry(*al.succ);
      if (!record.ok()) return record.status();
      if (!(std::string(k2) < record.value().key)) {
        return Status::AuthFailure("scan succ not above range");
      }
      if (!have_run) {
        run_lo = al.succ->proof.leaf_index;
        have_run = true;
        auto leaf = HeadLeaf(*al.succ);
        if (!leaf.ok()) return leaf.status();
        run_leaves.push_back(leaf.value());
      } else {
        Status s = push_leaf(*al.succ, run_lo + run_leaves.size());
        if (!s.ok()) return s;
      }
    }

    // Boundary completeness: without a pred (succ) witness the run must
    // start (end) at the level's edge.
    const uint64_t first_head_index =
        al.pred.has_value() ? run_lo + 1 : run_lo;
    if (!al.pred.has_value() && have_run && first_head_index != 0) {
      return Status::AuthFailure("scan run missing left boundary");
    }
    const uint64_t run_hi = run_lo + run_leaves.size() - 1;
    if (!al.succ.has_value() && have_run && run_hi != meta.leaf_count - 1) {
      return Status::AuthFailure("scan run missing right boundary");
    }
    if (!have_run) {
      return Status::AuthFailure("non-empty level with empty scan proof");
    }
    if (al.range.lo != run_lo) {
      return Status::AuthFailure("range proof offset mismatch");
    }
    enclave_->ChargeHash(65 * (al.range.hashes.size() + run_leaves.size()));
    Status s = crypto::MerkleTree::VerifyRange(run_leaves, al.range,
                                               meta.leaf_count, meta.root);
    if (!s.ok()) return s;

    for (const lsm::Record& r : head_records) merged.emplace(r.key, r);
  }

  std::vector<lsm::Record> out;
  out.reserve(merged.size());
  for (auto& [k, r] : merged) {
    if (!r.deleted()) out.push_back(std::move(r));
  }
  return out;
}

}  // namespace elsm::auth
