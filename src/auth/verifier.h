// In-enclave VRFY algorithms (paper §5.3, §5.3.1, §5.4).
//
// VerifyGet walks the assembled proof shallow→deep and enforces:
//   * integrity      — records re-decoded from the exact hashed bytes; leaf
//                      digests recomputed through the per-key hash chain;
//   * freshness      — every chain entry ahead of the result must be newer
//                      than the query timestamp (Case 1 of Theorem 5.3);
//                      shallower levels need non-membership (Case 2a);
//                      deeper levels need nothing (Case 2b / Lemma 5.4);
//   * completeness   — non-membership = two adjacent leaves bracketing the
//                      key (or boundary leaves), leaf adjacency checked
//                      against the enclave-held leaf count;
//   * bloom skips    — re-checked against the enclave-resident filters.
//
// VerifyScan additionally checks leaf-contiguity of the returned key groups
// plus boundary records and a Merkle range proof per level (§5.4).
//
// All roots/leaf counts/blooms come from the caller's *enclave-held*
// LevelMeta snapshot — never from the proof itself.
#pragma once

#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "auth/proof.h"
#include "common/status.h"
#include "lsm/engine.h"
#include "sgxsim/enclave.h"

namespace elsm::auth {

// Telemetry for the Merkle proof-path node cache (see Verifier below).
struct ProofPathCacheStats {
  uint64_t lookups = 0;           // path verifications that consulted it
  uint64_t hits = 0;              // climbs short-circuited at a cached node
  uint64_t path_nodes_hashed = 0; // interior hashes actually evaluated
  uint64_t insertions = 0;
  uint64_t evictions = 0;
};

class Verifier {
 public:
  // `path_cache_entries` bounds the Merkle proof-path node cache (0
  // disables it). Upper tree levels are shared across keys, so once any
  // path against a root has been verified, climbs for neighbouring keys
  // stop at the first node they can match against a cached (and therefore
  // verified) value — a repeat verification of a hot key re-hashes zero
  // path nodes. Soundness: a cached node is keyed by the enclave-held root
  // it was verified against; under collision resistance only one value at
  // a (level, index) position is consistent with that root, so matching it
  // proves the rest of the climb, and a mismatch proves the host's proof
  // is forged (fail closed).
  explicit Verifier(sgx::Enclave* enclave, size_t path_cache_entries = 4096)
      : enclave_(enclave), path_cache_entries_(path_cache_entries) {}

  // Returns the authenticated newest record visible at ts_max (which may be
  // a tombstone — the caller maps it to "absent"), or nullopt for an
  // authenticated miss. AuthFailure means the host misbehaved.
  Result<std::optional<lsm::Record>> VerifyGet(
      std::string_view key, uint64_t ts_max, const AssembledGet& proof,
      const std::vector<lsm::LevelMeta>& levels) const;

  // Returns the authenticated visible records in [k1, k2] (tombstones
  // filtered), or AuthFailure.
  Result<std::vector<lsm::Record>> VerifyScan(
      std::string_view k1, std::string_view k2, const AssembledScan& proof,
      const std::vector<lsm::LevelMeta>& levels) const;

  // Drops every cached path node (manifest restore / reopen).
  void InvalidatePathCache() const;
  ProofPathCacheStats path_cache_stats() const;

 private:
  Status VerifyLevelMembership(std::string_view key, uint64_t ts_max,
                               const AssembledLevel& al,
                               const lsm::LevelMeta& meta) const;
  Status VerifyLevelNonMembership(std::string_view key,
                                  const AssembledLevel& al,
                                  const lsm::LevelMeta& meta) const;
  // Recomputes a group-head leaf hash and verifies key/path bookkeeping.
  Result<crypto::Hash256> HeadLeaf(const AssembledEntry& e) const;

  // MerkleTree::VerifyPath with the node cache: identical acceptance
  // semantics (same malformed-proof checks), but the climb stops at the
  // first cached node and only the interior hashes actually evaluated are
  // charged to the enclave.
  Status VerifyPathCached(const crypto::Hash256& leaf_hash,
                          const crypto::MerklePath& path, uint64_t leaf_count,
                          const crypto::Hash256& root) const;

  sgx::Enclave* enclave_;
  size_t path_cache_entries_;
  // Guards the node cache; verifications run concurrently under the
  // facade's shared read lock.
  mutable std::mutex cache_mu_;
  mutable std::unordered_map<std::string, crypto::Hash256> path_nodes_;
  mutable std::deque<std::string> path_fifo_;  // insertion order (FIFO evict)
  mutable ProofPathCacheStats cache_stats_;
};

}  // namespace elsm::auth
