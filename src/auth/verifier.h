// In-enclave VRFY algorithms (paper §5.3, §5.3.1, §5.4).
//
// VerifyGet walks the assembled proof shallow→deep and enforces:
//   * integrity      — records re-decoded from the exact hashed bytes; leaf
//                      digests recomputed through the per-key hash chain;
//   * freshness      — every chain entry ahead of the result must be newer
//                      than the query timestamp (Case 1 of Theorem 5.3);
//                      shallower levels need non-membership (Case 2a);
//                      deeper levels need nothing (Case 2b / Lemma 5.4);
//   * completeness   — non-membership = two adjacent leaves bracketing the
//                      key (or boundary leaves), leaf adjacency checked
//                      against the enclave-held leaf count;
//   * bloom skips    — re-checked against the enclave-resident filters.
//
// VerifyScan additionally checks leaf-contiguity of the returned key groups
// plus boundary records and a Merkle range proof per level (§5.4).
//
// All roots/leaf counts/blooms come from the caller's *enclave-held*
// LevelMeta snapshot — never from the proof itself.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "auth/proof.h"
#include "common/status.h"
#include "lsm/engine.h"
#include "sgxsim/enclave.h"

namespace elsm::auth {

class Verifier {
 public:
  explicit Verifier(sgx::Enclave* enclave) : enclave_(enclave) {}

  // Returns the authenticated newest record visible at ts_max (which may be
  // a tombstone — the caller maps it to "absent"), or nullopt for an
  // authenticated miss. AuthFailure means the host misbehaved.
  Result<std::optional<lsm::Record>> VerifyGet(
      std::string_view key, uint64_t ts_max, const AssembledGet& proof,
      const std::vector<lsm::LevelMeta>& levels) const;

  // Returns the authenticated visible records in [k1, k2] (tombstones
  // filtered), or AuthFailure.
  Result<std::vector<lsm::Record>> VerifyScan(
      std::string_view k1, std::string_view k2, const AssembledScan& proof,
      const std::vector<lsm::LevelMeta>& levels) const;

 private:
  Status VerifyLevelMembership(std::string_view key, uint64_t ts_max,
                               const AssembledLevel& al,
                               const lsm::LevelMeta& meta) const;
  Status VerifyLevelNonMembership(std::string_view key,
                                  const AssembledLevel& al,
                                  const lsm::LevelMeta& meta) const;
  // Recomputes a group-head leaf hash and verifies key/path bookkeeping.
  Result<crypto::Hash256> HeadLeaf(const AssembledEntry& e) const;

  sgx::Enclave* enclave_;
};

}  // namespace elsm::auth
