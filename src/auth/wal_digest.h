// In-enclave WAL digest chain (paper §5.3 w1): dig' = H(dig ‖ record).
// Together with the sealed manifest and the monotonic counter this anchors
// recovery: on restart the enclave re-folds the untrusted WAL and compares
// against the sealed digest; a shorter/altered WAL is detected.
#pragma once

#include <cstdint>
#include <string_view>

#include "crypto/sha256.h"

namespace elsm::auth {

class WalDigest {
 public:
  void Append(std::string_view record_core) {
    crypto::Sha256 h;
    h.Update(digest_.data(), digest_.size());
    h.Update(record_core);
    digest_ = h.Finalize();
    ++count_;
  }

  void Reset() {
    digest_ = crypto::kZeroHash;
    count_ = 0;
  }

  void Restore(const crypto::Hash256& digest, uint64_t count) {
    digest_ = digest;
    count_ = count;
  }

  const crypto::Hash256& digest() const { return digest_; }
  uint64_t count() const { return count_; }

 private:
  crypto::Hash256 digest_ = crypto::kZeroHash;
  uint64_t count_ = 0;
};

}  // namespace elsm::auth
