#include "baseline/eleos_store.h"

namespace elsm::baseline {
namespace {

// Deterministic per-key bit source steering the simulated binary-search
// path (which half the key falls into at each level).
uint64_t KeyBits(std::string_view key) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

EleosStore::EleosStore(EleosOptions options,
                       std::shared_ptr<sgx::Enclave> enclave)
    : options_(options), enclave_(std::move(enclave)) {
  region_ = enclave_->RegisterRegion(options_.capacity_bytes);
}

EleosStore::~EleosStore() { enclave_->FreeRegion(region_); }

void EleosStore::ChargeSlot(uint64_t slot_index, uint64_t bytes) const {
  enclave_->Advance(enclave_->model().sw_monitor_ns);
  enclave_->AccessRegion(region_, slot_index * slot_bytes_, bytes,
                         /*software_paging=*/true);
}

void EleosStore::ChargeBinarySearch(std::string_view key) const {
  // Probe positions of a binary search over n slots (with slack factored
  // into the footprint): lo/hi halving, branch chosen by key bits. The top
  // of the search tree reuses the same few pages (they stay EPC-resident);
  // the leaf-side probes scatter across the whole array.
  const uint64_t n =
      uint64_t(double(records_.size()) * (1.0 + options_.slack_fraction)) + 1;
  uint64_t lo = 0;
  uint64_t hi = n;
  uint64_t bits = KeyBits(key);
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    ChargeSlot(mid, 64);
    if (hi - lo <= 1) break;
    if (bits & 1) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
    bits >>= 1;
  }
}

Status EleosStore::Put(std::string_view key, std::string_view value) {
  enclave_->ChargeEcall();
  const uint64_t record_bytes = key.size() + value.size() + 16;
  auto it = records_.find(key);
  if (it == records_.end() &&
      bytes_used_ + record_bytes > options_.capacity_bytes) {
    return Status::CapacityExceeded(
        "Eleos baseline caps at " + std::to_string(options_.capacity_bytes) +
        " bytes (1 GB-equivalent)");
  }

  ChargeBinarySearch(key);
  // Update-in-place: shift records toward the next slack gap. With 30 %
  // slack spread through the array the expected shift is ~1/slack slots.
  const uint64_t shift_slots =
      it != records_.end()
          ? 0
          : 1 + uint64_t(1.0 / options_.slack_fraction);
  const uint64_t base = KeyBits(key) % (records_.size() + 1);
  for (uint64_t s = 0; s < shift_slots; ++s) {
    ChargeSlot(base + s, slot_bytes_);
  }

  if (it != records_.end()) {
    bytes_used_ -= it->first.size() + it->second.size() + 16;
    it->second.assign(value);
  } else {
    records_.emplace(std::string(key), std::string(value));
  }
  bytes_used_ += record_bytes;
  enclave_->ResizeRegion(
      region_,
      uint64_t(double(bytes_used_) * (1.0 + options_.slack_fraction)) + 4096);

  // Periodic persistence of recent updates (paper §6.1).
  if (++updates_since_persist_ >= options_.persist_interval) {
    updates_since_persist_ = 0;
    enclave_->ChargeOcall();
    enclave_->ChargeFileWrite(uint64_t(options_.persist_interval) * 128);
  }
  return Status::Ok();
}

Result<std::optional<std::string>> EleosStore::Get(
    std::string_view key) const {
  enclave_->ChargeEcall();
  ChargeBinarySearch(key);
  auto it = records_.find(key);
  if (it == records_.end()) {
    return std::optional<std::string>(std::nullopt);
  }
  ChargeSlot(KeyBits(key) % (records_.size() + 1),
             it->first.size() + it->second.size());
  return std::optional<std::string>(it->second);
}

Result<std::vector<std::pair<std::string, std::string>>> EleosStore::Scan(
    std::string_view k1, std::string_view k2) const {
  enclave_->ChargeEcall();
  ChargeBinarySearch(k1);
  std::vector<std::pair<std::string, std::string>> out;
  const uint64_t base = KeyBits(k1) % (records_.size() + 1);
  uint64_t offset = 0;
  for (auto it = records_.lower_bound(k1);
       it != records_.end() && it->first <= std::string(k2); ++it) {
    ChargeSlot(base + offset++, it->first.size() + it->second.size());
    out.emplace_back(it->first, it->second);
  }
  return out;
}

}  // namespace elsm::baseline
