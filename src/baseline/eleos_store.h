// Eleos baseline (paper §6.1): an in-enclave, update-in-place sorted array
// with 30 % slack for insertions, backed by Eleos-style *software* paging —
// user-space monitoring plus data relocation between enclave and untrusted
// memory instead of hardware EPC faults.
//
// Storage uses an ordered map for O(log n) real work; the *cost layer*
// models the sorted-array layout explicitly (this mirrors how every engine
// in the repo separates real data-structure work from the calibrated
// enclave cost model, DESIGN.md §2):
//  * a read charges the binary-search probe sequence — the top probes hit
//    the same (hot, resident) pages every time, the bottom probes hit
//    key-dependent pages, which is exactly what makes large stores thrash
//    the EPC while small ones stay resident (Fig. 6a);
//  * an insert additionally charges the shift-to-next-gap memmove that the
//    30 % slack bounds to ~1/slack slots on average (update-in-place write
//    amplification, Fig. 7a);
//  * every persist_interval updates, recent writes flush to "disk" via an
//    OCall (paper: "persisted to disk periodically ... through an OCall");
//  * capacity is capped at a 1 GB-equivalent (the open-source Eleos limit
//    the paper reports: it "can scale only to 1 GB data").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sgxsim/enclave.h"

namespace elsm::baseline {

struct EleosOptions {
  // 1 GB / 64 (DESIGN.md scaled geometry).
  uint64_t capacity_bytes = 16 << 20;
  double slack_fraction = 0.30;
  // Persist the write buffer after this many updates (OCall + file write).
  uint32_t persist_interval = 256;
  std::string name = "eleos";
};

class EleosStore {
 public:
  EleosStore(EleosOptions options, std::shared_ptr<sgx::Enclave> enclave);
  ~EleosStore();

  EleosStore(const EleosStore&) = delete;
  EleosStore& operator=(const EleosStore&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Result<std::optional<std::string>> Get(std::string_view key) const;
  Result<std::vector<std::pair<std::string, std::string>>> Scan(
      std::string_view k1, std::string_view k2) const;

  size_t size() const { return records_.size(); }
  uint64_t bytes_used() const { return bytes_used_; }

 private:
  // Charges the probe sequence of a binary search over the sorted array:
  // one slot access per halving step, at the positions the search visits.
  void ChargeBinarySearch(std::string_view key) const;
  void ChargeSlot(uint64_t slot_index, uint64_t bytes) const;

  EleosOptions options_;
  std::shared_ptr<sgx::Enclave> enclave_;
  sgx::RegionId region_;
  std::map<std::string, std::string, std::less<>> records_;
  uint64_t bytes_used_ = 0;
  uint64_t slot_bytes_ = 160;  // modeled array-slot footprint
  uint32_t updates_since_persist_ = 0;
};

}  // namespace elsm::baseline
