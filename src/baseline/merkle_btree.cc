#include "baseline/merkle_btree.h"

#include <algorithm>

namespace elsm::baseline {
namespace {

// Disk-page cost shaping: each node touch is a random access against the
// disk-resident digest structure (§3.4: "with digests stored on disk, the
// update-in-place digest structures cause random disk accesses"). 30 us is
// an SSD-class random read; rotating disks would be ~100x worse.
constexpr uint64_t kNodeSeekNs = 30'000;

}  // namespace

MerkleBTree::MerkleBTree(MerkleBTreeOptions options,
                         std::shared_ptr<sgx::Enclave> enclave)
    : options_(options), enclave_(std::move(enclave)) {
  root_ = AllocNode();
  root_hash_ = HashNode(nodes_.at(root_));
  nodes_.at(root_).hash = root_hash_;
}

uint64_t MerkleBTree::AllocNode() {
  const uint64_t id = next_id_++;
  nodes_[id] = Node{};
  return id;
}

MerkleBTree::Node& MerkleBTree::Fetch(uint64_t id) const {
  enclave_->Advance(kNodeSeekNs);
  Node& node = nodes_.at(id);
  uint64_t bytes = 64;
  for (const auto& k : node.keys) bytes += k.size();
  for (const auto& v : node.values) bytes += v.size();
  bytes += node.child_hashes.size() * 40;
  enclave_->ChargeFileRead(bytes);
  return node;
}

void MerkleBTree::ChargeNodeWrite(const Node& node) const {
  uint64_t bytes = 64;
  for (const auto& k : node.keys) bytes += k.size();
  for (const auto& v : node.values) bytes += v.size();
  bytes += node.child_hashes.size() * 40;
  enclave_->Advance(kNodeSeekNs);
  enclave_->ChargeFileWrite(bytes);
}

crypto::Hash256 MerkleBTree::HashNode(const Node& node) const {
  crypto::Sha256 h;
  const uint8_t tag = node.leaf ? 0x02 : 0x03;
  h.Update(&tag, 1);
  uint64_t bytes = 1;
  for (size_t i = 0; i < node.keys.size(); ++i) {
    h.Update(node.keys[i]);
    bytes += node.keys[i].size();
    if (node.leaf) {
      h.Update(node.values[i]);
      bytes += node.values[i].size();
    }
  }
  for (const crypto::Hash256& ch : node.child_hashes) {
    h.Update(ch.data(), ch.size());
    bytes += 32;
  }
  enclave_->ChargeHash(bytes);
  return h.Finalize();
}

Result<MerkleBTree::SplitResult> MerkleBTree::Insert(uint64_t id,
                                                     std::string_view key,
                                                     std::string_view value) {
  Node& node = Fetch(id);
  SplitResult result;

  if (node.leaf) {
    auto it = std::lower_bound(node.keys.begin(), node.keys.end(),
                               std::string(key));
    const size_t pos = size_t(it - node.keys.begin());
    if (it != node.keys.end() && *it == key) {
      node.values[pos].assign(value);
    } else {
      node.keys.insert(it, std::string(key));
      node.values.insert(node.values.begin() + pos, std::string(value));
      ++size_;
    }
  } else {
    // Descend: child i covers keys < keys[i]; last child covers the rest.
    size_t ci = size_t(std::upper_bound(node.keys.begin(), node.keys.end(),
                                        std::string(key)) -
                       node.keys.begin());
    auto child_split = Insert(node.children[ci], key, value);
    if (!child_split.ok()) return child_split.status();
    // Refresh the child digest (update-in-place hash maintenance).
    node.child_hashes[ci] = nodes_.at(node.children[ci]).hash;
    if (child_split.value().split) {
      node.keys.insert(node.keys.begin() + ci, child_split.value().separator);
      node.children.insert(node.children.begin() + ci + 1,
                           child_split.value().right);
      node.child_hashes.insert(
          node.child_hashes.begin() + ci + 1,
          nodes_.at(child_split.value().right).hash);
    }
  }

  if (node.keys.size() > options_.fanout) {
    const size_t mid = node.keys.size() / 2;
    const uint64_t right_id = AllocNode();
    Node& right = nodes_.at(right_id);
    right.leaf = node.leaf;
    if (node.leaf) {
      result.separator = node.keys[mid];
      right.keys.assign(node.keys.begin() + mid, node.keys.end());
      right.values.assign(node.values.begin() + mid, node.values.end());
      node.keys.resize(mid);
      node.values.resize(mid);
    } else {
      result.separator = node.keys[mid];
      right.keys.assign(node.keys.begin() + mid + 1, node.keys.end());
      right.children.assign(node.children.begin() + mid + 1,
                            node.children.end());
      right.child_hashes.assign(node.child_hashes.begin() + mid + 1,
                                node.child_hashes.end());
      node.keys.resize(mid);
      node.children.resize(mid + 1);
      node.child_hashes.resize(mid + 1);
    }
    right.hash = HashNode(right);
    ChargeNodeWrite(right);
    result.split = true;
    result.right = right_id;
  }

  node.hash = HashNode(node);
  ChargeNodeWrite(node);
  return result;
}

Status MerkleBTree::Put(std::string_view key, std::string_view value) {
  auto split = Insert(root_, key, value);
  if (!split.ok()) return split.status();
  if (split.value().split) {
    const uint64_t new_root = AllocNode();
    Node& root = nodes_.at(new_root);
    root.leaf = false;
    root.keys.push_back(split.value().separator);
    root.children = {root_, split.value().right};
    root.child_hashes = {nodes_.at(root_).hash,
                         nodes_.at(split.value().right).hash};
    root.hash = HashNode(root);
    ChargeNodeWrite(root);
    root_ = new_root;
  }
  root_hash_ = nodes_.at(root_).hash;  // trusted copy
  return Status::Ok();
}

Result<std::optional<std::string>> MerkleBTree::Get(
    std::string_view key) const {
  uint64_t id = root_;
  crypto::Hash256 expected = root_hash_;
  while (true) {
    const Node& node = Fetch(id);
    // Verify the fetched page against the digest carried from its parent
    // (root page against the trusted root hash).
    if (HashNode(node) != expected) {
      return Status::AuthFailure("merkle btree node digest mismatch");
    }
    if (node.leaf) {
      auto it = std::lower_bound(node.keys.begin(), node.keys.end(),
                                 std::string(key));
      if (it != node.keys.end() && *it == key) {
        return std::optional<std::string>(
            node.values[size_t(it - node.keys.begin())]);
      }
      return std::optional<std::string>(std::nullopt);
    }
    const size_t ci = size_t(std::upper_bound(node.keys.begin(),
                                              node.keys.end(),
                                              std::string(key)) -
                             node.keys.begin());
    expected = node.child_hashes[ci];
    id = node.children[ci];
  }
}

bool MerkleBTree::TamperLeafValue(std::string_view key,
                                  std::string_view new_value) {
  // Adversary: mutate the untrusted page bytes directly, no re-hashing.
  uint64_t id = root_;
  while (true) {
    Node& node = nodes_.at(id);
    if (node.leaf) {
      auto it = std::lower_bound(node.keys.begin(), node.keys.end(),
                                 std::string(key));
      if (it == node.keys.end() || *it != key) return false;
      node.values[size_t(it - node.keys.begin())].assign(new_value);
      return true;
    }
    const size_t ci = size_t(std::upper_bound(node.keys.begin(),
                                              node.keys.end(),
                                              std::string(key)) -
                             node.keys.begin());
    id = node.children[ci];
  }
}

}  // namespace elsm::baseline
