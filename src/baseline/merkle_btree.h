// Update-in-place authenticated B+-tree — the "conventional ADS" baseline
// (paper §1, §3.4): a single Merkle-ized search tree over the whole dataset,
// updated in place on every write.
//
// Every node lives in untrusted storage as its own "disk page"; the trusted
// side (data-owner/enclave) holds only the root hash. A write must read and
// re-hash the root-to-leaf path and write every node on it back (random IO +
// hash amplification); a read fetches the path and verifies it against the
// root hash. This is exactly the random-access digest traffic §3.4 blames
// for the update-in-place approach's write cost, and the baseline that eLSM
// beats "by more than one order of magnitude" (§6 / bench/table_ads_*).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "crypto/sha256.h"
#include "sgxsim/enclave.h"

namespace elsm::baseline {

struct MerkleBTreeOptions {
  size_t fanout = 32;  // max keys per node
  std::string name = "mbt";
};

class MerkleBTree {
 public:
  MerkleBTree(MerkleBTreeOptions options, std::shared_ptr<sgx::Enclave> enclave);

  Status Put(std::string_view key, std::string_view value);
  // Verified point lookup: recomputes the path digest against the trusted
  // root hash; AuthFailure on any tampering of node pages.
  Result<std::optional<std::string>> Get(std::string_view key) const;

  const crypto::Hash256& root_hash() const { return root_hash_; }
  size_t size() const { return size_; }
  uint64_t node_count() const { return nodes_.size(); }

  // Adversary hook for tests: direct mutation of an untrusted node page.
  bool TamperLeafValue(std::string_view key, std::string_view new_value);

 private:
  struct Node {
    bool leaf = true;
    std::vector<std::string> keys;
    std::vector<std::string> values;    // leaf payloads
    std::vector<uint64_t> children;     // interior child page ids
    std::vector<crypto::Hash256> child_hashes;  // digests of children
    crypto::Hash256 hash = crypto::kZeroHash;
  };

  uint64_t AllocNode();
  Node& Fetch(uint64_t id) const;            // charges a random page read
  void ChargeNodeWrite(const Node& node) const;
  crypto::Hash256 HashNode(const Node& node) const;

  // Returns (separator key, new right sibling id) when `id` splits.
  struct SplitResult {
    bool split = false;
    std::string separator;
    uint64_t right = 0;
  };
  Result<SplitResult> Insert(uint64_t id, std::string_view key,
                             std::string_view value);

  MerkleBTreeOptions options_;
  std::shared_ptr<sgx::Enclave> enclave_;
  mutable std::map<uint64_t, Node> nodes_;  // untrusted "disk pages"
  uint64_t root_ = 0;
  uint64_t next_id_ = 1;
  crypto::Hash256 root_hash_ = crypto::kZeroHash;  // trusted side
  size_t size_ = 0;
};

}  // namespace elsm::baseline
