#include "common/coding.h"

namespace elsm {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t v) { PutVarint64(dst, v); }

void PutVarint64(std::string* dst, uint64_t v) {
  char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<char>(v | 0x80);
    v >>= 7;
  }
  buf[n++] = static_cast<char>(v);
  dst->append(buf, n);
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetFixed32(std::string_view* input, uint32_t* v) {
  if (input->size() < 4) return false;
  uint32_t result = 0;
  for (int i = 0; i < 4; ++i) {
    result |= static_cast<uint32_t>(static_cast<uint8_t>((*input)[i]))
              << (8 * i);
  }
  input->remove_prefix(4);
  *v = result;
  return true;
}

bool GetFixed64(std::string_view* input, uint64_t* v) {
  if (input->size() < 8) return false;
  uint64_t result = 0;
  for (int i = 0; i < 8; ++i) {
    result |= static_cast<uint64_t>(static_cast<uint8_t>((*input)[i]))
              << (8 * i);
  }
  input->remove_prefix(8);
  *v = result;
  return true;
}

bool GetVarint32(std::string_view* input, uint32_t* v) {
  uint64_t wide = 0;
  if (!GetVarint64(input, &wide) || wide > UINT32_MAX) return false;
  *v = static_cast<uint32_t>(wide);
  return true;
}

bool GetVarint64(std::string_view* input, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint8_t byte = static_cast<uint8_t>(input->front());
    input->remove_prefix(1);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;
}

bool GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint32_t len = 0;
  if (!GetVarint32(input, &len) || input->size() < len) return false;
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

int VarintLength(uint64_t v) {
  int n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace elsm
