// Little-endian fixed and varint coding helpers, in the style of LevelDB's
// util/coding.h. Used by WAL framing, SSTable blocks and proof serialization.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace elsm {

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);
// Length-prefixed (varint32) byte string.
void PutLengthPrefixed(std::string* dst, std::string_view value);

// Each Get* consumes bytes from the front of *input and returns true on
// success; on failure *input is left unspecified and false is returned.
bool GetFixed32(std::string_view* input, uint32_t* v);
bool GetFixed64(std::string_view* input, uint64_t* v);
bool GetVarint32(std::string_view* input, uint32_t* v);
bool GetVarint64(std::string_view* input, uint64_t* v);
bool GetLengthPrefixed(std::string_view* input, std::string_view* value);

// Size of v once varint-encoded (1..10 bytes).
int VarintLength(uint64_t v);

}  // namespace elsm
