#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace elsm {

Histogram::Histogram() : buckets_(kBuckets, 0) {}

uint64_t Histogram::BucketLimit(int index) {
  // Log-spaced: ~10 buckets per decade, covering 1ns .. ~1e14ns.
  return static_cast<uint64_t>(std::pow(10.0, double(index) / 10.0));
}

int Histogram::BucketFor(uint64_t value) {
  if (value <= 1) return 0;
  int idx = static_cast<int>(std::log10(double(value)) * 10.0);
  return std::min(std::max(idx, 0), kBuckets - 1);
}

void Histogram::Add(uint64_t value_ns) {
  if (count_ == 0 || value_ns < min_) min_ = value_ns;
  if (value_ns > max_) max_ = value_ns;
  ++count_;
  sum_ += double(value_ns);
  ++buckets_[BucketFor(value_ns)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Clear() {
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / double(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double threshold = double(count_) * (p / 100.0);
  uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i];
    if (double(cumulative) >= threshold) {
      const uint64_t lo = i == 0 ? 0 : BucketLimit(i - 1);
      const uint64_t hi = BucketLimit(i);
      return double(lo) + (double(hi) - double(lo)) * 0.5;
    }
  }
  return double(max_);
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2fus p50=%.2fus p95=%.2fus p99=%.2fus",
                static_cast<unsigned long long>(count_), Mean() / 1000.0,
                Percentile(50) / 1000.0, Percentile(95) / 1000.0,
                Percentile(99) / 1000.0);
  return buf;
}

}  // namespace elsm
