// Latency histogram with log-spaced buckets, used by the YCSB runner and
// the figure benches to report mean / p50 / p95 / p99 of per-op simulated
// latencies (nanoseconds).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace elsm {

class Histogram {
 public:
  Histogram();

  void Add(uint64_t value_ns);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  double Mean() const;
  uint64_t Min() const { return count_ == 0 ? 0 : min_; }
  uint64_t Max() const { return max_; }
  // Approximate percentile (p in [0,100]) from bucket interpolation.
  double Percentile(double p) const;

  // One-line summary: "count=... mean=...us p50=... p95=... p99=..."
  std::string Summary() const;

 private:
  static constexpr int kBuckets = 140;
  static uint64_t BucketLimit(int index);
  static int BucketFor(uint64_t value);

  uint64_t count_ = 0;
  double sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  std::vector<uint64_t> buckets_;
};

}  // namespace elsm
