#include "common/random.h"

#include <cmath>

namespace elsm {

Rng::Rng(uint64_t seed) {
  // SplitMix64 expansion of the seed into two non-zero state words.
  auto splitmix = [](uint64_t& x) {
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  uint64_t x = seed;
  s0_ = splitmix(x);
  s1_ = splitmix(x);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::Uniform(uint64_t n) { return Next() % n; }

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

uint64_t FnvHash64(uint64_t value) {
  constexpr uint64_t kOffset = 0xCBF29CE484222325ull;
  constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t hash = kOffset;
  for (int i = 0; i < 8; ++i) {
    const uint64_t octet = value & 0xff;
    value >>= 8;
    hash ^= octet;
    hash *= kPrime;
  }
  return hash;
}

ScrambledZipfianGenerator::ScrambledZipfianGenerator(uint64_t n)
    : zipf_(n), n_(n) {}

uint64_t ScrambledZipfianGenerator::Next(Rng& rng) {
  return FnvHash64(zipf_.Next(rng)) % n_;
}

LatestGenerator::LatestGenerator(uint64_t initial_count)
    : count_(initial_count), zipf_(initial_count == 0 ? 1 : initial_count) {}

uint64_t LatestGenerator::Next(Rng& rng) {
  // Rank 0 = newest key. Reuse the zipfian ranks mirrored from the top.
  const uint64_t rank = zipf_.Next(rng) % count_;
  return count_ - 1 - rank;
}

void LatestGenerator::AdvanceTo(uint64_t new_count) {
  if (new_count > count_) count_ = new_count;
}

}  // namespace elsm
