// Deterministic RNG and the YCSB key distributions used by the workload
// generator (Uniform, Zipfian with the YCSB constant 0.99, ScrambledZipfian,
// Latest). The algorithms mirror the YCSB core package so that the skew of
// generated keys matches the paper's evaluation setup.
#pragma once

#include <cstdint>

namespace elsm {

// xorshift128+ generator: fast, deterministic, good enough for workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  uint64_t Next();
  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);
  // Uniform double in [0, 1).
  double NextDouble();
  // True with probability p (0 <= p <= 1).
  bool Bernoulli(double p);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

// Zipfian generator over [0, n) using the Gray/YCSB rejection-free method.
// theta defaults to YCSB's 0.99. Item 0 is the most popular.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99);

  uint64_t Next(Rng& rng);
  uint64_t item_count() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

// ScrambledZipfian: zipfian rank hashed across the key space so that hot
// keys are spread out (YCSB default for workloads A/B/C/F).
class ScrambledZipfianGenerator {
 public:
  explicit ScrambledZipfianGenerator(uint64_t n);
  uint64_t Next(Rng& rng);

 private:
  ZipfianGenerator zipf_;
  uint64_t n_;
};

// Latest: skewed toward the most recently inserted key. The caller advances
// max_key as inserts happen (YCSB workload D).
class LatestGenerator {
 public:
  explicit LatestGenerator(uint64_t initial_count);
  uint64_t Next(Rng& rng);
  void AdvanceTo(uint64_t new_count);

 private:
  uint64_t count_;
  ZipfianGenerator zipf_;
};

// FNV-style 64-bit hash used by ScrambledZipfian (matches YCSB's FNVhash64).
uint64_t FnvHash64(uint64_t value);

}  // namespace elsm
