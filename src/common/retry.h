// Bounded retry with deterministic exponential backoff for transient
// storage faults (DESIGN.md §6 error vocabulary: only Status::IsTransient()
// is retried; permanent classes surface immediately).
//
// The backoff "sleep" is a caller-supplied callback so common/ stays free
// of a sgxsim dependency: storage-engine callers charge the simulated
// enclave clock (Enclave::Advance), keeping every retry schedule
// reproducible — no wall-clock, no jitter.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "common/status.h"

namespace elsm::common {

// Knobs threaded through elsm::Options / lsm::LsmOptions. The defaults
// absorb a one-shot transient fault (2 retries) while keeping worst-case
// simulated stall bounded (~700us at the default backoff).
struct RetryPolicy {
  // Total attempts including the first one; <=1 disables retrying.
  int max_attempts = 3;
  // Simulated-clock backoff before retry k (1-based) is
  // backoff_base_ns << (k-1), capped at backoff_cap_ns.
  uint64_t backoff_base_ns = 100'000;      // 100us
  uint64_t backoff_cap_ns = 10'000'000;    // 10ms

  bool enabled() const { return max_attempts > 1; }

  uint64_t BackoffNs(int retry_index) const {
    uint64_t ns = backoff_base_ns;
    for (int i = 1; i < retry_index && ns < backoff_cap_ns; ++i) ns <<= 1;
    return ns < backoff_cap_ns ? ns : backoff_cap_ns;
  }
};

// Counters an engine exposes for observability; incremented by RunWithRetry.
struct RetryStats {
  uint64_t attempts = 0;   // extra attempts beyond the first
  uint64_t absorbed = 0;   // ops that failed transiently, then succeeded
  uint64_t exhausted = 0;  // ops that stayed transient through the budget
};

// Runs `op` until it returns a non-transient status or the attempt budget
// is spent. `sleep_ns` (may be null) is invoked with the backoff before
// each retry; `stats` (may be null) is updated without locking — callers
// serialize or use one RetryStats per thread.
template <typename Op>
Status RunWithRetry(const RetryPolicy& policy, Op&& op,
                    const std::function<void(uint64_t)>& sleep_ns = nullptr,
                    RetryStats* stats = nullptr) {
  Status s = op();
  for (int retry = 1; s.IsTransient() && retry < policy.max_attempts;
       ++retry) {
    if (sleep_ns) sleep_ns(policy.BackoffNs(retry));
    if (stats != nullptr) ++stats->attempts;
    s = op();
    if (s.ok() && stats != nullptr) ++stats->absorbed;
  }
  if (s.IsTransient() && stats != nullptr) ++stats->exhausted;
  return s;
}

}  // namespace elsm::common
