#include "common/status.h"

namespace elsm {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kAuthFailure:
      return "AuthFailure";
    case StatusCode::kRollbackDetected:
      return "RollbackDetected";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  std::string out{StatusCodeName(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace elsm
