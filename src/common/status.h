// Status / Result error-handling vocabulary used across the library.
//
// Conventions (see DESIGN.md §6): fallible operations return Status, or
// Result<T> when they produce a value. Authentication failures are a
// first-class code so callers can distinguish "host is malicious" from
// ordinary IO errors.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace elsm {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kCorruption,
  kInvalidArgument,
  kIOError,
  kAuthFailure,        // proof verification failed: host misbehaviour
  kRollbackDetected,   // state freshness violated across restarts
  kCapacityExceeded,   // e.g. the Eleos baseline's 1 GB-equivalent cap
  kNotSupported,
  kUnavailable,        // transient host-side fault; safe to retry
};

// Human-readable name of a status code ("Ok", "AuthFailure", ...).
std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status NotFound(std::string m = "") {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status Corruption(std::string m) {
    return {StatusCode::kCorruption, std::move(m)};
  }
  static Status InvalidArgument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status IOError(std::string m) {
    return {StatusCode::kIOError, std::move(m)};
  }
  static Status AuthFailure(std::string m) {
    return {StatusCode::kAuthFailure, std::move(m)};
  }
  static Status RollbackDetected(std::string m) {
    return {StatusCode::kRollbackDetected, std::move(m)};
  }
  static Status CapacityExceeded(std::string m) {
    return {StatusCode::kCapacityExceeded, std::move(m)};
  }
  static Status NotSupported(std::string m) {
    return {StatusCode::kNotSupported, std::move(m)};
  }
  static Status Unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAuthFailure() const { return code_ == StatusCode::kAuthFailure; }
  bool IsRollbackDetected() const {
    return code_ == StatusCode::kRollbackDetected;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsCapacityExceeded() const {
    return code_ == StatusCode::kCapacityExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  // Transient faults are safe to retry verbatim: the failed call had no
  // effect (or an effect the caller repairs before retrying). Permanent
  // classes — Corruption, AuthFailure, CapacityExceeded, plain IOError —
  // must surface instead of burning retry budget.
  bool IsTransient() const { return code_ == StatusCode::kUnavailable; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "AuthFailure: stale record at level 2" style rendering for logs/tests.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Result<T> couples a Status with an optional value; the value is present
// iff the status is Ok.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-*)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace elsm
