#include "common/thread_pool.h"

namespace elsm::common {

ThreadPool::ThreadPool(size_t threads) {
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even after stop: a queued task has a future some
      // caller is blocked on.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (workers_.empty()) {
    task();
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (workers_.empty() || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n - 1);
  for (size_t i = 1; i < n; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  // Caller-runs: the calling thread takes a partition instead of idling on
  // the join, so num_shards-1 workers already capture full parallelism and
  // a busy shared pool can never stall an op completely.
  std::exception_ptr first_error;
  try {
    fn(0);
  } catch (...) {
    first_error = std::current_exception();
  }
  // Join every future before any rethrow: a still-queued task references
  // fn and the caller's stack, so unwinding past it would hand a worker
  // dangling state. The first exception (caller's partition first, then
  // ascending index) wins; later ones are swallowed.
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace elsm::common
