// Fixed-size shared worker pool for cross-shard fan-out (ROADMAP "parallel
// cross-shard scan fan-out and batch fan-out"). Tasks are plain
// std::function<void()> jobs pushed onto one FIFO queue; Submit returns a
// future the caller can join on, ParallelFor is the fork-join helper the
// ShardedDb fan-out paths use. A pool of size 0 degrades to inline
// execution on the calling thread — the sequential fallback — so callers
// never need two code paths.
//
// Shutdown is clean: the destructor stops intake, drains every task already
// queued, and joins the workers, so a ShardedDb can hold a pool by
// shared_ptr and die while benches/tests still share it elsewhere.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace elsm::common {

class ThreadPool {
 public:
  // Spawns `threads` workers; 0 means "no workers": every task runs inline
  // in Submit/ParallelFor on the calling thread.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  // Enqueues one task (runs it inline when the pool has no workers). The
  // returned future rethrows any task exception on get().
  std::future<void> Submit(std::function<void()> fn);

  // Runs fn(0), ..., fn(n-1) and blocks until all complete. With workers
  // the iterations run concurrently (order unspecified; the calling thread
  // runs fn(0) itself instead of idling); without, they run inline in
  // index order. fn must therefore only touch per-index state or
  // synchronize itself. If any iteration throws, ParallelFor still joins
  // every other iteration before rethrowing the first exception — fn and
  // the caller's stack stay valid for the stragglers.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace elsm::common
