#include "crypto/cipher.h"

#include <cstring>

#include "crypto/hmac.h"

namespace elsm::crypto {
namespace {

// XOR `data` with a keystream derived from (key, iv): block i of the stream
// is HMAC(key, iv || i).
std::string XorKeystream(std::string_view key, std::string_view iv,
                         std::string_view data) {
  std::string out(data);
  uint64_t counter = 0;
  size_t pos = 0;
  while (pos < out.size()) {
    std::string block_input(iv);
    char ctr[8];
    for (int i = 0; i < 8; ++i) ctr[i] = char((counter >> (8 * i)) & 0xff);
    block_input.append(ctr, 8);
    const Hash256 stream = HmacSha256(key, block_input);
    const size_t n = std::min(out.size() - pos, stream.size());
    for (size_t i = 0; i < n; ++i) {
      out[pos + i] = char(uint8_t(out[pos + i]) ^ stream[i]);
    }
    pos += n;
    ++counter;
  }
  return out;
}

}  // namespace

std::string StreamEncrypt(std::string_view key, uint64_t nonce,
                          std::string_view plaintext) {
  char iv[8];
  for (int i = 0; i < 8; ++i) iv[i] = char((nonce >> (8 * i)) & 0xff);
  return XorKeystream(key, std::string_view(iv, 8), plaintext);
}

std::string StreamDecrypt(std::string_view key, uint64_t nonce,
                          std::string_view ciphertext) {
  return StreamEncrypt(key, nonce, ciphertext);  // XOR is its own inverse
}

std::string DeterministicEncrypt(std::string_view key,
                                 std::string_view plaintext) {
  const Hash256 tag = HmacSha256(key, plaintext);
  const std::string_view iv(reinterpret_cast<const char*>(tag.data()),
                            tag.size());
  std::string out(reinterpret_cast<const char*>(tag.data()), tag.size());
  out += XorKeystream(key, iv, plaintext);
  return out;
}

Result<std::string> DeterministicDecrypt(std::string_view key,
                                         std::string_view ciphertext) {
  if (ciphertext.size() < 32) {
    return Status::Corruption("DE ciphertext shorter than tag");
  }
  Hash256 tag;
  std::memcpy(tag.data(), ciphertext.data(), tag.size());
  const std::string_view iv(ciphertext.data(), 32);
  const std::string plaintext =
      XorKeystream(key, iv, ciphertext.substr(32));
  if (!TagEqual(tag, HmacSha256(key, plaintext))) {
    return Status::Corruption("DE tag mismatch");
  }
  return plaintext;
}

}  // namespace elsm::crypto
