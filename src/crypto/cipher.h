// Confidentiality layer (paper §5.6.2).
//
// The paper uses the SGX SDK's AES-GCM for values and deterministic
// encryption (DE) for data keys so the ciphertext domain stays searchable.
// We substitute hash-based constructions (documented in DESIGN.md §2):
//
//  * StreamEncrypt / StreamDecrypt — keystream derived per 32-byte block as
//    HMAC(key, nonce || counter); semantically secure under unique nonces.
//  * DeterministicEncrypt — SIV style: tag = HMAC(key, plaintext), body =
//    plaintext XOR keystream(tag). Equal plaintexts map to equal ciphertexts
//    (that is the point of DE: it preserves searchability), and the tag
//    authenticates the plaintext on decryption.
//
// The sgxsim cost model charges cipher_per_byte for these operations.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "crypto/sha256.h"

namespace elsm::crypto {

// Semantically secure encryption with an explicit 8-byte nonce.
std::string StreamEncrypt(std::string_view key, uint64_t nonce,
                          std::string_view plaintext);
std::string StreamDecrypt(std::string_view key, uint64_t nonce,
                          std::string_view ciphertext);

// Deterministic, authenticated encryption. Output = 32-byte tag || body.
std::string DeterministicEncrypt(std::string_view key,
                                 std::string_view plaintext);
// Fails with Corruption if the tag does not authenticate the plaintext.
Result<std::string> DeterministicDecrypt(std::string_view key,
                                         std::string_view ciphertext);

}  // namespace elsm::crypto
