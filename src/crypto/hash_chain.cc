#include "crypto/hash_chain.h"

namespace elsm::crypto {

Hash256 ChainBase(std::string_view record_encoding) {
  Sha256 h;
  const uint8_t prefix = 0x00;
  h.Update(&prefix, 1);
  h.Update(record_encoding);
  return h.Finalize();
}

Hash256 ChainLink(std::string_view record_encoding, const Hash256& suffix) {
  Sha256 h;
  const uint8_t prefix = 0x00;
  h.Update(&prefix, 1);
  h.Update(record_encoding);
  h.Update(suffix.data(), suffix.size());
  return h.Finalize();
}

Hash256 ChainDigest(const std::vector<std::string>& encodings_newest_first) {
  Hash256 digest = kZeroHash;
  bool have = false;
  for (auto it = encodings_newest_first.rbegin();
       it != encodings_newest_first.rend(); ++it) {
    digest = have ? ChainLink(*it, digest) : ChainBase(*it);
    have = true;
  }
  return digest;
}

std::vector<ChainSuffix> ChainSuffixes(
    const std::vector<std::string>& encodings_newest_first) {
  const size_t n = encodings_newest_first.size();
  std::vector<ChainSuffix> out(n);
  Hash256 digest = kZeroHash;
  bool have = false;
  // Walk oldest -> newest; out[i] records the digest of everything older.
  for (size_t i = n; i-- > 0;) {
    out[i].present = have;
    out[i].digest = have ? digest : kZeroHash;
    digest = have ? ChainLink(encodings_newest_first[i], digest)
                  : ChainBase(encodings_newest_first[i]);
    have = true;
  }
  return out;
}

Hash256 ChainLeafFromPrefix(const std::vector<std::string_view>& encodings,
                            const ChainSuffix& suffix) {
  Hash256 digest = suffix.digest;
  bool have = suffix.present;
  for (auto it = encodings.rbegin(); it != encodings.rend(); ++it) {
    digest = have ? ChainLink(*it, digest) : ChainBase(*it);
    have = true;
  }
  return digest;
}

}  // namespace elsm::crypto
