// Per-key hash chains (paper §5.2, design 2).
//
// Within an LSM level, all records of the same data key are digested into a
// single chain whose outermost layer covers the *newest* record:
//
//   C_k     = H(0x00 || enc(r_k))              (r_k = oldest)
//   C_i     = H(0x00 || enc(r_i) || C_{i+1})   (records ordered newest-first)
//   leaf    = C_1
//
// The Merkle leaf for the key is C_1, so a proof claiming record r_i is the
// query answer necessarily discloses the encodings of the newer records
// r_1..r_{i-1} — which is exactly how the verifier catches staleness
// (Theorem 5.3 Case 1). The suffix digest C_{i+1} is all a prover needs to
// rebuild the leaf from the newest record alone.
//
// The 0x00 prefix domain-separates chain hashing from interior Merkle nodes
// (0x01, see merkle.h).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "crypto/sha256.h"

namespace elsm::crypto {

// H(0x00 || bytes): chain base element.
Hash256 ChainBase(std::string_view record_encoding);

// H(0x00 || bytes || suffix): one link of the chain.
Hash256 ChainLink(std::string_view record_encoding, const Hash256& suffix);

// Digest for encodings ordered newest-first. Empty input is invalid.
Hash256 ChainDigest(const std::vector<std::string>& encodings_newest_first);

// Suffix digests: out[i] = C_{i+1}, i.e. the digest of everything older
// than record i (kZeroHash marks "no suffix" for the oldest record).
// out[0] combined with encoding 0 reproduces the leaf.
struct ChainSuffix {
  Hash256 digest = kZeroHash;
  bool present = false;
};
std::vector<ChainSuffix> ChainSuffixes(
    const std::vector<std::string>& encodings_newest_first);

// Rebuilds the leaf digest from the newest `k` encodings plus the suffix
// covering the rest. `suffix.present == false` means the provided encodings
// are the whole chain.
Hash256 ChainLeafFromPrefix(const std::vector<std::string_view>& encodings,
                            const ChainSuffix& suffix);

}  // namespace elsm::crypto
