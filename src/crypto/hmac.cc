#include "crypto/hmac.h"

#include <cstring>

namespace elsm::crypto {

Hash256 HmacSha256(std::string_view key, std::string_view message) {
  uint8_t key_block[64] = {0};
  if (key.size() > 64) {
    const Hash256 kh = Sha256::Digest(key);
    std::memcpy(key_block, kh.data(), kh.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  uint8_t ipad[64];
  uint8_t opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad, sizeof(ipad));
  inner.Update(message);
  const Hash256 inner_hash = inner.Finalize();

  Sha256 outer;
  outer.Update(opad, sizeof(opad));
  outer.Update(inner_hash.data(), inner_hash.size());
  return outer.Finalize();
}

bool TagEqual(const Hash256& a, const Hash256& b) {
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace elsm::crypto
