// HMAC-SHA256 (RFC 2104). Used for sealed storage MACs, P1 file-granularity
// authentication tags and the deterministic-encryption synthetic IV.
#pragma once

#include <string_view>

#include "crypto/sha256.h"

namespace elsm::crypto {

Hash256 HmacSha256(std::string_view key, std::string_view message);

// Constant-time comparison of two tags.
bool TagEqual(const Hash256& a, const Hash256& b);

}  // namespace elsm::crypto
