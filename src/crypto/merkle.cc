#include "crypto/merkle.h"

#include <cstring>

#include "common/coding.h"

namespace elsm::crypto {

Hash256 HashInterior(const Hash256& a, const Hash256& b) {
  Sha256 h;
  const uint8_t prefix = 0x01;
  h.Update(&prefix, 1);
  h.Update(a.data(), a.size());
  h.Update(b.data(), b.size());
  return h.Finalize();
}

std::string MerklePath::Encode() const {
  std::string out;
  PutVarint64(&out, leaf_index);
  PutVarint32(&out, static_cast<uint32_t>(siblings.size()));
  for (const Hash256& h : siblings) {
    out.append(reinterpret_cast<const char*>(h.data()), h.size());
  }
  return out;
}

Result<MerklePath> MerklePath::Decode(std::string_view data) {
  MerklePath path;
  uint32_t count = 0;
  if (!GetVarint64(&data, &path.leaf_index) || !GetVarint32(&data, &count) ||
      data.size() < size_t(count) * 32) {
    return Status::Corruption("bad merkle path encoding");
  }
  path.siblings.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::memcpy(path.siblings[i].data(), data.data() + size_t(i) * 32, 32);
  }
  return path;
}

std::string MerkleRangeProof::Encode() const {
  std::string out;
  PutVarint64(&out, lo);
  PutVarint32(&out, static_cast<uint32_t>(hashes.size()));
  for (const Hash256& h : hashes) {
    out.append(reinterpret_cast<const char*>(h.data()), h.size());
  }
  return out;
}

Result<MerkleRangeProof> MerkleRangeProof::Decode(std::string_view data) {
  MerkleRangeProof proof;
  uint32_t count = 0;
  if (!GetVarint64(&data, &proof.lo) || !GetVarint32(&data, &count) ||
      data.size() < size_t(count) * 32) {
    return Status::Corruption("bad merkle range proof encoding");
  }
  proof.hashes.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::memcpy(proof.hashes[i].data(), data.data() + size_t(i) * 32, 32);
  }
  return proof;
}

MerkleTree::MerkleTree(std::vector<Hash256> leaves)
    : leaf_count_(leaves.size()) {
  if (leaves.empty()) {
    root_ = kZeroHash;
    levels_.push_back({});
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const std::vector<Hash256>& cur = levels_.back();
    std::vector<Hash256> next;
    next.reserve((cur.size() + 1) / 2);
    for (size_t i = 0; i + 1 < cur.size(); i += 2) {
      next.push_back(HashInterior(cur[i], cur[i + 1]));
    }
    if (cur.size() % 2 == 1) next.push_back(cur.back());  // carry odd node
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back()[0];
}

MerklePath MerkleTree::Path(uint64_t leaf_index) const {
  MerklePath path;
  path.leaf_index = leaf_index;
  uint64_t idx = leaf_index;
  for (size_t l = 0; l + 1 < levels_.size(); ++l) {
    const std::vector<Hash256>& level = levels_[l];
    if (idx % 2 == 1) {
      path.siblings.push_back(level[idx - 1]);
    } else if (idx + 1 < level.size()) {
      path.siblings.push_back(level[idx + 1]);
    }
    // idx even and last in level: carried up, no sibling at this level.
    idx /= 2;
  }
  return path;
}

Status MerkleTree::VerifyPath(const Hash256& leaf_hash, const MerklePath& path,
                              uint64_t leaf_count, const Hash256& root) {
  if (leaf_count == 0) return Status::AuthFailure("path against empty tree");
  if (path.leaf_index >= leaf_count) {
    return Status::AuthFailure("leaf index out of range");
  }
  Hash256 h = leaf_hash;
  uint64_t idx = path.leaf_index;
  uint64_t width = leaf_count;
  size_t used = 0;
  while (width > 1) {
    if (idx % 2 == 1) {
      if (used >= path.siblings.size()) {
        return Status::AuthFailure("merkle path too short");
      }
      h = HashInterior(path.siblings[used++], h);
    } else if (idx + 1 < width) {
      if (used >= path.siblings.size()) {
        return Status::AuthFailure("merkle path too short");
      }
      h = HashInterior(h, path.siblings[used++]);
    }
    idx /= 2;
    width = (width + 1) / 2;
  }
  if (used != path.siblings.size()) {
    return Status::AuthFailure("merkle path has extra nodes");
  }
  if (h != root) return Status::AuthFailure("merkle root mismatch");
  return Status::Ok();
}

MerkleRangeProof MerkleTree::RangeProof(uint64_t lo, uint64_t hi) const {
  MerkleRangeProof proof;
  proof.lo = lo;
  uint64_t cur_lo = lo;
  uint64_t cur_hi = hi;
  for (size_t l = 0; l + 1 < levels_.size(); ++l) {
    const std::vector<Hash256>& level = levels_[l];
    const uint64_t width = level.size();
    if (cur_lo % 2 == 1) proof.hashes.push_back(level[cur_lo - 1]);
    if (cur_hi % 2 == 0 && cur_hi + 1 < width) {
      proof.hashes.push_back(level[cur_hi + 1]);
    }
    cur_lo /= 2;
    cur_hi /= 2;
  }
  return proof;
}

Status MerkleTree::VerifyRange(const std::vector<Hash256>& leaf_hashes,
                               const MerkleRangeProof& proof,
                               uint64_t leaf_count, const Hash256& root) {
  if (leaf_hashes.empty()) {
    return Status::AuthFailure("empty range proof payload");
  }
  const uint64_t lo = proof.lo;
  const uint64_t hi = lo + leaf_hashes.size() - 1;
  if (hi >= leaf_count) return Status::AuthFailure("range beyond leaf count");

  std::vector<Hash256> nodes = leaf_hashes;
  uint64_t cur_lo = lo;
  uint64_t width = leaf_count;
  size_t used = 0;
  while (width > 1) {
    uint64_t cur_hi = cur_lo + nodes.size() - 1;
    if (cur_lo % 2 == 1) {
      if (used >= proof.hashes.size()) {
        return Status::AuthFailure("range proof too short");
      }
      nodes.insert(nodes.begin(), proof.hashes[used++]);
      cur_lo -= 1;
    }
    if (cur_hi % 2 == 0 && cur_hi + 1 < width) {
      if (used >= proof.hashes.size()) {
        return Status::AuthFailure("range proof too short");
      }
      nodes.push_back(proof.hashes[used++]);
    }
    // Pair up; a trailing unpaired node (only possible at the end of the
    // level) carries up unchanged.
    std::vector<Hash256> next;
    next.reserve(nodes.size() / 2 + 1);
    size_t i = 0;
    for (; i + 1 < nodes.size(); i += 2) {
      next.push_back(HashInterior(nodes[i], nodes[i + 1]));
    }
    if (i < nodes.size()) next.push_back(nodes[i]);
    nodes = std::move(next);
    cur_lo /= 2;
    width = (width + 1) / 2;
  }
  if (used != proof.hashes.size()) {
    return Status::AuthFailure("range proof has extra nodes");
  }
  if (nodes.size() != 1 || nodes[0] != root) {
    return Status::AuthFailure("range proof root mismatch");
  }
  return Status::Ok();
}

}  // namespace elsm::crypto
