// Merkle hash tree with membership paths, adjacency-based non-membership
// and contiguous range proofs (paper §5.2, §5.4, Appendix A.2).
//
// Shape: RFC 6962-style binary tree. Leaves are pre-hashed 32-byte digests
// (eLSM leaves are per-key hash-chain digests). At each level nodes are
// paired left-to-right; a trailing unpaired node is carried up unchanged.
// Interior nodes are H(0x01 || left || right), giving domain separation from
// the 0x00-prefixed record/chain hashes (see hash_chain.h).
//
// A MerklePath carries the leaf index so the verifier can recompute the
// left/right orientation at every level; the verifier must also know the
// authenticated leaf count (eLSM keeps (root, leaf_count) per level inside
// the enclave).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "crypto/sha256.h"

namespace elsm::crypto {

// Interior node rule, exposed for tests: H(0x01 || a || b).
Hash256 HashInterior(const Hash256& a, const Hash256& b);

struct MerklePath {
  uint64_t leaf_index = 0;
  std::vector<Hash256> siblings;

  // Compact wire form: varint index, varint count, raw hashes.
  std::string Encode() const;
  static Result<MerklePath> Decode(std::string_view data);
  size_t ByteSize() const { return siblings.size() * 32 + 16; }
};

// Extra hashes required to recompute the root from a contiguous run of
// leaves [lo, hi]. `left[l]` / `right[l]` hold the boundary hash needed at
// tree level l, if any (encoded positionally).
struct MerkleRangeProof {
  uint64_t lo = 0;  // first covered leaf index
  std::vector<Hash256> hashes;  // consumed in verification order

  std::string Encode() const;
  static Result<MerkleRangeProof> Decode(std::string_view data);
};

class MerkleTree {
 public:
  // Builds the full tree; an empty leaf set yields root() == kZeroHash.
  explicit MerkleTree(std::vector<Hash256> leaves);

  const Hash256& root() const { return root_; }
  uint64_t leaf_count() const { return leaf_count_; }
  const Hash256& leaf(uint64_t index) const { return levels_[0][index]; }

  MerklePath Path(uint64_t leaf_index) const;
  MerkleRangeProof RangeProof(uint64_t lo, uint64_t hi) const;

  // Recomputes the root from a single leaf + path. Pure function: no tree
  // instance needed (this is what runs inside the enclave).
  static Status VerifyPath(const Hash256& leaf_hash, const MerklePath& path,
                           uint64_t leaf_count, const Hash256& root);

  // Recomputes the root from leaves [proof.lo, proof.lo + leaves.size()).
  static Status VerifyRange(const std::vector<Hash256>& leaf_hashes,
                            const MerkleRangeProof& proof, uint64_t leaf_count,
                            const Hash256& root);

  // Number of hash evaluations VerifyPath will perform (for cost charging).
  static uint64_t PathHashOps(const MerklePath& path) {
    return path.siblings.size();
  }

 private:
  uint64_t leaf_count_;
  std::vector<std::vector<Hash256>> levels_;  // levels_[0] = leaves
  Hash256 root_;
};

}  // namespace elsm::crypto
