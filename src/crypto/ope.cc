#include "crypto/ope.h"

#include "common/random.h"
#include "crypto/hmac.h"

namespace elsm::crypto {
namespace {

// Seeds a PRG from HMAC(key, prefix); increments for all 256 byte values at
// this position are drawn sequentially (one HMAC per position, not per
// value).
Rng PrefixRng(std::string_view key, std::string_view prefix) {
  const Hash256 seed = HmacSha256(key, prefix);
  uint64_t s = 0;
  for (int i = 0; i < 8; ++i) s = (s << 8) | seed[size_t(i)];
  return Rng(s);
}

void PutFixed16BE(std::string* out, uint32_t v) {
  out->push_back(char((v >> 8) & 0xff));
  out->push_back(char(v & 0xff));
}

bool GetFixed16BE(std::string_view* in, uint32_t* v) {
  if (in->size() < 2) return false;
  *v = (uint32_t(uint8_t((*in)[0])) << 8) | uint32_t(uint8_t((*in)[1]));
  in->remove_prefix(2);
  return true;
}

}  // namespace

std::string OpeCipher::Encrypt(std::string_view plaintext) const {
  std::string out;
  out.reserve(plaintext.size() * 2 + 2);
  for (size_t i = 0; i < plaintext.size(); ++i) {
    const uint8_t b = uint8_t(plaintext[i]);
    Rng rng = PrefixRng(key_, plaintext.substr(0, i));
    uint32_t code = 1;
    for (uint32_t v = 0; v < b; ++v) {
      code += 1 + uint32_t(rng.Uniform(kSpread));
    }
    PutFixed16BE(&out, code);
  }
  PutFixed16BE(&out, 0);  // terminator: sorts below every continuation
  return out;
}

Result<std::string> OpeCipher::Decrypt(std::string_view ciphertext) const {
  std::string plaintext;
  while (true) {
    uint32_t code = 0;
    if (!GetFixed16BE(&ciphertext, &code)) {
      return Status::Corruption("OPE ciphertext truncated");
    }
    if (code == 0) break;  // terminator
    Rng rng = PrefixRng(key_, plaintext);
    uint32_t acc = 1;
    int byte_value = -1;
    for (uint32_t v = 0; v < 256; ++v) {
      if (acc == code) {
        byte_value = int(v);
        break;
      }
      if (acc > code) break;
      acc += 1 + uint32_t(rng.Uniform(kSpread));
    }
    if (byte_value < 0) return Status::Corruption("bad OPE code");
    plaintext.push_back(char(byte_value));
  }
  if (!ciphertext.empty()) {
    return Status::Corruption("OPE trailing bytes");
  }
  return plaintext;
}

uint32_t OpeCipher::Increment(std::string_view prefix, uint8_t value) const {
  Rng rng = PrefixRng(key_, prefix);
  uint32_t inc = 0;
  for (uint32_t v = 0; v <= value; ++v) inc = 1 + uint32_t(rng.Uniform(kSpread));
  return inc;
}

}  // namespace elsm::crypto
