// Order-preserving encryption for data keys (paper §5.6.2: "For range
// query, one can use Order-Preserving Encryption (OPE) to encrypt the data
// keys").
//
// Construction: a keyed, strictly monotone, prefix-recursive mapping over
// byte strings. Each plaintext byte b (given the already-encrypted prefix)
// maps to the cumulative sum of keyed pseudorandom increments
//
//   inc(prefix, v) = 1 + (HMAC(key, prefix ‖ v) mod kSpread),   v = 0..255
//   E(prefix, b)   = Σ_{v<b} inc(prefix, v)        (encoded as fixed16 BE)
//
// plus a fixed16 terminator strictly below any continuation, so that
//   a < b  ⇔  Encrypt(a) < Encrypt(b)   (bytewise/lexicographic)
// for all plaintexts, including prefixes of one another. This is the
// classic Boldyreva-style "random monotone function" idea in its simplest
// deterministic form; like all stateless OPE it leaks order (that is the
// point) and approximate distance — see the header-level security note in
// DESIGN.md. Decryption inverts byte-by-byte using the same increments.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"

namespace elsm::crypto {

class OpeCipher {
 public:
  explicit OpeCipher(std::string key) : key_(std::move(key)) {}

  // Ciphertexts compare (memcmp/lexicographic) exactly like plaintexts.
  std::string Encrypt(std::string_view plaintext) const;
  Result<std::string> Decrypt(std::string_view ciphertext) const;

 private:
  static constexpr uint32_t kSpread = 200;  // increment randomization range

  // Pseudorandom increment table position sum for value v under a prefix.
  uint32_t Increment(std::string_view prefix, uint8_t value) const;

  std::string key_;
};

}  // namespace elsm::crypto
