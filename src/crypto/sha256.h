// From-scratch SHA-256 (FIPS 180-4) with an incremental interface.
//
// All integrity checks in the library hash real bytes through this
// implementation; the enclave cost model separately *charges* simulated time
// per hashed byte (see sgxsim/cost_model.h) so that benchmark numbers are
// deterministic while correctness remains genuine.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace elsm::crypto {

using Hash256 = std::array<uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void Update(std::string_view data);
  void Update(const void* data, size_t len);
  Hash256 Finalize();
  void Reset();

  // One-shot convenience.
  static Hash256 Digest(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

// Hex rendering for logs/tests ("ab04...", lowercase).
std::string ToHex(const Hash256& h);

// Hash over the concatenation of two hashes: H(a || b). The Merkle tree's
// interior-node rule.
Hash256 HashConcat(const Hash256& a, const Hash256& b);

// Hash over bytes || hash: used by per-key hash chains, H(record || C).
Hash256 HashBytesThenHash(std::string_view bytes, const Hash256& h);

// An all-zero hash, used as the digest of an empty set/level.
inline constexpr Hash256 kZeroHash{};

}  // namespace elsm::crypto
