#include "ct/ct.h"

namespace elsm::ct {
namespace {

constexpr std::string_view kRevokedMarker = "REVOKED";

}  // namespace

std::string Certificate::Digest() const {
  crypto::Sha256 h;
  h.Update(hostname);
  h.Update(issuer);
  h.Update(public_key);
  char serial_bytes[8];
  for (int i = 0; i < 8; ++i) {
    serial_bytes[i] = char((serial >> (8 * i)) & 0xff);
  }
  h.Update(serial_bytes, sizeof(serial_bytes));
  return crypto::ToHex(h.Finalize());
}

Result<std::unique_ptr<LogServer>> LogServer::Create(Options options) {
  options.name = options.name.empty() ? "ctlog" : options.name;
  auto db = ElsmDb::Create(options);
  if (!db.ok()) return db.status();
  return std::make_unique<LogServer>(std::move(db).value());
}

Status LogServer::Submit(const Certificate& cert) {
  if (cert.hostname.empty()) {
    return Status::InvalidArgument("certificate without hostname");
  }
  return db_->Put(cert.hostname, cert.Digest());
}

Status LogServer::Revoke(std::string_view hostname) {
  return db_->Put(hostname, std::string(kRevokedMarker));
}

Result<std::optional<LogEntry>> LogServer::Lookup(std::string_view hostname) {
  auto got = db_->GetVerified(hostname);
  if (!got.ok()) return got.status();
  if (!got.value().record.has_value() || got.value().record->deleted()) {
    return std::optional<LogEntry>(std::nullopt);
  }
  LogEntry entry;
  entry.hostname = std::string(hostname);
  entry.cert_digest = got.value().record->value;
  entry.log_ts = got.value().record->ts;
  return std::optional<LogEntry>(std::move(entry));
}

Result<std::vector<LogEntry>> LogServer::WatchDomain(std::string_view domain) {
  // Hostnames are stored reversed-label-free (exact hostnames); the prefix
  // range [domain, domain + 0xff) covers "domain" and "sub.domain"-style
  // keys sharing the prefix.
  std::string hi(domain);
  hi.push_back('\xff');
  auto records = db_->Scan(domain, hi);
  if (!records.ok()) return records.status();
  std::vector<LogEntry> out;
  out.reserve(records.value().size());
  for (const auto& r : records.value()) {
    out.push_back(LogEntry{r.key, r.value, r.ts});
  }
  return out;
}

Auditor::Verdict Auditor::Validate(const Certificate& presented) {
  auto entry = log_->Lookup(presented.hostname);
  if (!entry.ok()) return Verdict::kLogMisbehaved;
  if (!entry.value().has_value()) return Verdict::kUnknownHost;
  if (entry.value()->cert_digest == kRevokedMarker) return Verdict::kRevoked;
  return entry.value()->cert_digest == presented.Digest()
             ? Verdict::kValid
             : Verdict::kMismatch;
}

void Monitor::Trust(const Certificate& cert) {
  trusted_.push_back(LogEntry{cert.hostname, cert.Digest(), 0});
}

Result<std::vector<std::string>> Monitor::FindMisissued() {
  auto logged = log_->WatchDomain(domain_);
  if (!logged.ok()) return logged.status();
  std::vector<std::string> misissued;
  for (const LogEntry& entry : logged.value()) {
    if (entry.cert_digest == kRevokedMarker) continue;
    bool known = false;
    for (const LogEntry& t : trusted_) {
      if (t.hostname == entry.hostname && t.cert_digest == entry.cert_digest) {
        known = true;
        break;
      }
    }
    if (!known) misissued.push_back(entry.hostname);
  }
  return misissued;
}

}  // namespace elsm::ct
