// Certificate-transparency case study (paper §5.7): an eLSM-backed CT log
// server with query authenticity and lightweight monitoring.
//
//  * LogServer  — stores hostname -> certificate-hash records in ElsmDb; the
//    write stream is certificate issuance (the paper's intensive small-write
//    workload).
//  * Auditor    — a browser-side client validating the certificate presented
//    on a TLS handshake: verified point GET (inclusion + freshness, so a
//    revoked-and-rotated certificate cannot be replayed).
//  * Monitor    — a domain owner watching *only its own* domains: verified
//    range SCAN over the domain's key prefix, "low and sublinear bandwidth"
//    instead of downloading the full log.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "crypto/sha256.h"
#include "elsm/elsm_db.h"

namespace elsm::ct {

struct Certificate {
  std::string hostname;
  std::string issuer;
  std::string public_key;
  uint64_t serial = 0;

  // The log stores H(certificate) as the value, keyed by hostname.
  std::string Digest() const;
};

struct LogEntry {
  std::string hostname;
  std::string cert_digest;
  uint64_t log_ts = 0;  // timestamp assigned by the log (eLSM ts)
};

class LogServer {
 public:
  explicit LogServer(std::unique_ptr<ElsmDb> db) : db_(std::move(db)) {}

  static Result<std::unique_ptr<LogServer>> Create(Options options);

  // CA submits a newly issued certificate.
  Status Submit(const Certificate& cert);
  // CA revokes: logs a revocation marker so stale certs fail freshness.
  Status Revoke(std::string_view hostname);

  // Auditor-facing: verified inclusion + freshness lookup.
  Result<std::optional<LogEntry>> Lookup(std::string_view hostname);
  // Monitor-facing: verified scan of every hostname with `domain` prefix.
  Result<std::vector<LogEntry>> WatchDomain(std::string_view domain);

  Status Checkpoint() { return db_->Flush(); }
  ElsmDb& db() { return *db_; }

 private:
  std::unique_ptr<ElsmDb> db_;
};

// Browser-side TLS-handshake validation: does the presented certificate
// match the latest logged one for its hostname?
class Auditor {
 public:
  explicit Auditor(LogServer* log) : log_(log) {}

  enum class Verdict { kValid, kUnknownHost, kMismatch, kRevoked, kLogMisbehaved };
  Verdict Validate(const Certificate& presented);

 private:
  LogServer* log_;
};

// Domain-owner monitoring: detect certificates mis-issued under a domain.
class Monitor {
 public:
  Monitor(LogServer* log, std::string domain)
      : log_(log), domain_(std::move(domain)) {}

  // Registers the legitimate certificates the owner knows about.
  void Trust(const Certificate& cert);
  // Returns hostnames in the domain whose logged certificate is not one the
  // owner registered (mis-issuance candidates).
  Result<std::vector<std::string>> FindMisissued();

 private:
  LogServer* log_;
  std::string domain_;
  std::vector<LogEntry> trusted_;
};

}  // namespace elsm::ct
