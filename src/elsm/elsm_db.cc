#include "elsm/elsm_db.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

#include "common/coding.h"
#include "common/retry.h"
#include "crypto/cipher.h"
#include "crypto/ope.h"
#include "elsm/manifest_log.h"
#include "sgxsim/sealed.h"

namespace elsm {
namespace {

lsm::LsmOptions MakeEngineOptions(const Options& o) {
  lsm::LsmOptions eo;
  eo.name = o.name;
  eo.memtable_bytes = o.memtable_bytes;
  eo.level1_bytes = o.level1_bytes;
  eo.level_ratio = o.level_ratio;
  eo.block_bytes = o.block_bytes;
  eo.file_bytes = o.file_bytes;
  eo.bloom_bits_per_key = o.bloom_bits_per_key;
  eo.use_bloom = o.use_bloom;
  eo.compaction_enabled = o.compaction_enabled;
  eo.background_compaction = o.background_compaction;
  eo.sync_writes = o.sync_writes;
  eo.wal_sync_interval_us = o.wal_sync_interval_us;
  eo.io_retry = o.io_retry;
  eo.read_buffer_bytes = o.read_buffer_bytes;
  eo.read_cache_shards = o.read_cache_shards;
  eo.multiget_batching = o.multiget_batching;
  eo.scan_readahead_blocks = o.scan_readahead_blocks;
  eo.compaction_readahead_files = o.compaction_readahead_files;
  // The facade persists the manifest; compacted-away files may only be
  // unlinked after the manifest dropping them is durable (crash safety),
  // so the engine parks them and the facade purges post-persist.
  eo.defer_obsolete_deletion = true;
  switch (o.mode) {
    case Mode::kP1:
      // P1 keeps the whole read path in enclave memory; mmap files cannot
      // live in the EPC (§6.3), so P1 always uses the in-enclave buffer.
      eo.read_path = lsm::ReadPathKind::kBuffer;
      eo.buffer_placement = storage::BufferPlacement::kInsideEnclave;
      eo.protect_blocks = true;
      break;
    case Mode::kP2:
    case Mode::kUnsecured:
      eo.read_path = o.read_path;
      eo.buffer_placement = storage::BufferPlacement::kOutsideEnclave;
      eo.protect_blocks = false;
      // P2 blocks are plaintext in untrusted memory; verified cache
      // admission is what makes a buffer hit trustworthy. The unsecured
      // baseline skips it (no integrity contract to uphold).
      eo.verify_blocks = o.mode == Mode::kP2;
      break;
  }
  return eo;
}

}  // namespace

ElsmDb::ElsmDb(const Options& options, std::shared_ptr<storage::Fs> fs,
               std::shared_ptr<TrustedPlatform> platform)
    : options_(options),
      enclave_(std::make_shared<sgx::Enclave>(options.cost_model,
                                              options.mode != Mode::kUnsecured)),
      fs_(std::move(fs)),
      platform_(std::move(platform)),
      verifier_(enclave_.get(), options.proof_path_cache_entries) {
  if (fs_ == nullptr) {
    fs_ = storage::MakeFs(options_.backend, options_.backend_dir, enclave_);
  }
  fs_->set_enclave(enclave_);
  engine_ = std::make_unique<lsm::LsmEngine>(MakeEngineOptions(options_),
                                             enclave_, fs_);
  if (options_.mode == Mode::kP2 && options_.authenticate_data) {
    listener_ = std::make_unique<auth::AuthCompactionListener>(
        enclave_.get(), options_.embed_full_paths);
    engine_->SetListener(listener_.get());
  }
  assembler_ = std::make_unique<auth::ProofAssembler>(fs_);
  // Compaction-deleted files must leave every cache: the engine drops its
  // own read-buffer entries and mmap handles, then this hook retires the
  // assembler's tree-sidecar handles (fires outside engine locks).
  engine_->SetCachePurgeHook([this](const std::vector<std::string>& names) {
    for (const std::string& name : names) assembler_->Evict(name);
  });
  if (options_.background_compaction) {
    engine_->SetCompactionCallback(
        [this] { return PersistAfterBackgroundCompaction(); });
  }
  // The in-enclave WAL digest is maintained by the engine's commit leader:
  // cores arrive here in WAL byte order, per record, only after the whole
  // cohort's frames are durable (sync_writes) and under the engine's
  // exclusive lock — so the digest can never run ahead of the real WAL (a
  // failed append appends nothing here), and concurrent leaders serialize.
  // Persist-time reads are safe without the engine lock: they run under
  // exclusive db_mu_, which quiesces every writer (writers hold db_mu_
  // shared across their whole commit).
  engine_->SetCommitHook([this](std::string_view core) {
    enclave_->ChargeHash(core.size() + 32);
    wal_digest_.Append(core);
  });
  if (options_.async_flush) {
    flush_thread_ = std::thread([this] { FlushWorker(); });
  }
}

ElsmDb::~ElsmDb() {
  if (!closed_) (void)Close();
  StopFlushWorker();  // Close stops it too; needed when Open never finished
}

Result<std::unique_ptr<ElsmDb>> ElsmDb::Open(
    const Options& options, std::shared_ptr<storage::Fs> fs,
    std::shared_ptr<TrustedPlatform> platform) {
  if (platform == nullptr) {
    return Status::InvalidArgument("TrustedPlatform required");
  }
  if (options.deterministic_key_encryption && options.order_preserving_keys) {
    return Status::InvalidArgument(
        "deterministic and order-preserving key encryption are exclusive");
  }
  if (fs == nullptr && options.backend == storage::BackendKind::kPosix &&
      options.backend_dir.empty()) {
    return Status::InvalidArgument(
        "the posix backend needs Options::backend_dir");
  }
  std::unique_ptr<ElsmDb> db(new ElsmDb(options, std::move(fs), platform));
  Status s = db->Recover();
  if (!s.ok()) {
    // The destructor's Close() must not persist a fresh manifest over the
    // very state recovery just refused to accept — that would both destroy
    // the evidence of tampering and write a log whose chain cannot extend
    // the surviving tail.
    db->closed_ = true;
    return s;
  }
  return db;
}

Result<std::unique_ptr<ElsmDb>> ElsmDb::Create(const Options& options) {
  return Open(options, nullptr, std::make_shared<TrustedPlatform>());
}

std::string ElsmDb::edits_name(uint64_t gen) const {
  return manifest::TailName(options_.name + "/EDITS", gen);
}

Status ElsmDb::Recover() {
  // A crash can strand a half-written MANIFEST.tmp; the atomic rename in
  // PersistManifest means it was never the authoritative copy.
  if (fs_->Exists(manifest_tmp_name())) (void)fs_->Delete(manifest_tmp_name());

  if (!fs_->Exists(manifest_name())) {
    if (options_.rollback_defense && platform_->counter.Read() > 0) {
      // A manifest was sealed at least once (the counter only bumps after
      // a successful persist) — a missing file means the host dropped the
      // store's state wholesale.
      return Status::RollbackDetected(
          "manifest vanished: hardware counter is " +
          std::to_string(platform_->counter.Read()) +
          " but no sealed manifest exists");
    }
    if (options_.rollback_defense && !fs_->List(edits_prefix()).empty()) {
      // The first persist is always a snapshot and snapshot installs only
      // ever *replace* the file, so no legitimate history has a tail log
      // without its snapshot — the host dropped the authoritative record
      // while keeping deltas.
      return Status::AuthFailure(
          "manifest edit log present but its snapshot vanished");
    }
    // Fresh store — or a crash before the first manifest persist. Replay
    // whatever the WAL holds; there is no sealed digest to hold it to yet.
    Status s = ReplayWal(/*wal_count=*/0, crypto::kZeroHash,
                         /*check_digest=*/false, /*flushed_ts=*/0);
    if (!s.ok()) return s;
    GcOrphanFiles();
    return Status::Ok();
  }

  auto sealed = fs_->ReadAll(manifest_name());
  if (!sealed.ok()) return sealed.status();
  auto payload = sgx::Unseal(platform_->sealing_key, sealed.value());
  if (!payload.ok()) {
    return Status::AuthFailure("manifest seal broken: " +
                               payload.status().message());
  }

  std::string_view cursor(payload.value());
  manifest::RecordHeader header;
  manifest::StoreState state;
  std::string_view engine_manifest;
  if (!manifest::GetHeader(&cursor, &header) ||
      !manifest::GetStoreState(&cursor, &state) ||
      !GetLengthPrefixed(&cursor, &engine_manifest)) {
    return Status::Corruption("bad manifest payload");
  }
  if (header.kind != manifest::kSnapshot) {
    return Status::AuthFailure(
        "manifest file holds a delta record, not a snapshot (spliced log)");
  }
  enclave_->ChargeHash(payload.value().size());
  crypto::Hash256 chain = crypto::Sha256::Digest(payload.value());
  uint64_t seq = header.seq;
  const uint64_t snapshot_gen = header.seq;

  // Replay the snapshot generation's tail log: each complete frame must
  // unseal, carry the next sequence number, and chain over the previous
  // record's payload hash — reordering, splicing, or mid-log truncation
  // all fail closed here. A trailing *partial* frame is the one crash
  // artifact appends can leave (they are synced before the counter bump
  // acknowledges them); it is dropped, and the tail is marked dirty so the
  // next persist supersedes the file instead of appending after garbage.
  std::vector<std::string> engine_edits;
  uint64_t tail_records = 0;
  uint64_t tail_bytes = 0;
  bool dirty_tail = false;
  if (fs_->Exists(edits_name(snapshot_gen))) {
    auto raw = fs_->ReadAll(edits_name(snapshot_gen));
    if (!raw.ok()) return raw.status();
    bool torn = false;
    for (std::string_view frame :
         manifest::SplitFrames(raw.value(), &torn)) {
      auto record = sgx::Unseal(platform_->sealing_key, frame);
      if (!record.ok()) {
        return Status::AuthFailure("manifest edit record seal broken: " +
                                   record.status().message());
      }
      std::string_view record_cursor(record.value());
      manifest::RecordHeader record_header;
      manifest::StoreState record_state;
      if (!manifest::GetHeader(&record_cursor, &record_header) ||
          !manifest::GetStoreState(&record_cursor, &record_state)) {
        return Status::Corruption("bad manifest edit record");
      }
      if (record_header.kind != manifest::kDelta) {
        return Status::AuthFailure(
            "snapshot record spliced into the manifest edit log");
      }
      if (record_header.seq != seq + 1) {
        return Status::AuthFailure(
            "manifest edit log sequence break: record " +
            std::to_string(record_header.seq) + " after " +
            std::to_string(seq) + " (reordered or spliced records)");
      }
      if (record_header.prev_chain != chain) {
        return Status::AuthFailure(
            "manifest edit log chain mismatch at record " +
            std::to_string(record_header.seq));
      }
      if (record_state.counter < state.counter) {
        return Status::AuthFailure(
            "manifest edit log counter regressed at record " +
            std::to_string(record_header.seq));
      }
      uint32_t edit_count = 0;
      if (!GetVarint32(&record_cursor, &edit_count)) {
        return Status::Corruption("bad manifest edit record");
      }
      for (uint32_t i = 0; i < edit_count; ++i) {
        std::string_view edit;
        if (!GetLengthPrefixed(&record_cursor, &edit)) {
          return Status::Corruption("bad manifest edit record");
        }
        engine_edits.emplace_back(edit);
      }
      enclave_->ChargeHash(record.value().size());
      chain = crypto::Sha256::Digest(record.value());
      seq = record_header.seq;
      state = record_state;
      ++tail_records;
      tail_bytes += 4 + frame.size();
    }
    dirty_tail = torn;
  }

  if (options_.rollback_defense) {
    // Adjudicate on the newest acknowledged record: torn debris dropped
    // above never had its bump, so the surviving log is exactly what the
    // counter covers.
    const uint64_t hw = platform_->counter.Read();
    if (state.counter < hw) {
      return Status::RollbackDetected(
          "manifest log counter " + std::to_string(state.counter) +
          " behind hardware counter " + std::to_string(hw));
    }
    if (state.counter == hw + 1) {
      // Crash window: the record landed but the power failed before the
      // bump. The record is the newest sealed state (the host cannot forge
      // a counter value inside the seal) — sync the hardware to it.
      platform_->counter.Increment();
    } else if (state.counter > hw) {
      return Status::Corruption("manifest log counter ahead of hardware");
    }
  }

  Status s = engine_->RestoreManifest(engine_manifest);
  if (!s.ok()) return s;
  // The restored stack may reuse names and carries fresh roots: retire the
  // sidecar handles and verified path nodes along with the engine's caches.
  assembler_->Clear();
  verifier_.InvalidatePathCache();
  for (const std::string& edit : engine_edits) {
    s = engine_->ApplyEdit(edit);
    if (!s.ok()) return s;
  }
  manifest_seq_ = seq;
  manifest_chain_ = chain;
  snapshot_seq_ = snapshot_gen;
  tail_records_ = tail_records;
  tail_bytes_ = tail_bytes;
  // RestoreManifest restarted the engine edit sequence at zero; everything
  // on disk is covered by the records just replayed.
  persisted_edit_seq_ = 0;
  have_snapshot_ = true;
  force_snapshot_ = dirty_tail;
  edits_dir_synced_ = false;
  last_ts_ = state.last_ts;
  flushed_ts_ = state.flushed_ts;
  s = ReplayWal(state.wal_count, state.wal_digest, /*check_digest=*/true,
                state.flushed_ts);
  if (!s.ok()) return s;
  GcOrphanFiles();
  return Status::Ok();
}

void ElsmDb::GcOrphanFiles() {
  // A crash can strand files the recovered manifest does not reference:
  // outputs of a compaction whose manifest persist never landed, and
  // compacted-away inputs parked for deletion whose purge never ran.
  // Without GC they would accumulate across crash/recover cycles.
  std::set<std::string> keep;
  for (const lsm::LevelMeta& level : engine_->levels()) {
    for (const lsm::FileMeta& file : level.files) keep.insert(file.name);
    if (!level.tree_file.empty()) keep.insert(level.tree_file);
  }
  const std::string wal_name = options_.name + "/wal";
  // Only the current generation's tail file is live; stale EDITS-* files
  // (crash between a snapshot install and its tail truncation, or an
  // unsynced-loss rollback resurrecting one) are orphans like any other.
  const std::string live_edits = edits_name(snapshot_seq_);
  for (const std::string& name : fs_->List(options_.name + "/")) {
    if (name == manifest_name() || name == manifest_tmp_name() ||
        name == wal_name || name == live_edits || keep.count(name) > 0) {
      continue;
    }
    (void)fs_->Delete(name);
  }
}

Status ElsmDb::ReplayWal(uint64_t wal_count, const crypto::Hash256& wal_dig,
                         bool check_digest, uint64_t flushed_ts) {
  // The sealed digest must cover the WAL's persisted prefix exactly
  // (w1/§5.6.1); anything beyond extends the digest.
  auto wal = engine_->ReadWalRecords();
  if (!wal.ok()) return wal.status();
  const auto& records = wal.value().records;
  if (records.size() < wal_count) {
    return Status::RollbackDetected("WAL shorter than sealed digest covers");
  }
  wal_digest_.Reset();
  for (size_t i = 0; i < records.size(); ++i) {
    enclave_->ChargeHash(records[i].size() + 32);
    wal_digest_.Append(records[i]);
    if (check_digest && i + 1 == wal_count &&
        wal_digest_.digest() != wal_dig) {
      return Status::AuthFailure("WAL digest mismatch on recovery");
    }
    std::string_view record_cursor(records[i]);
    auto record = lsm::Record::DecodeCore(&record_cursor);
    if (!record.ok()) return record.status();
    last_ts_ = std::max<uint64_t>(last_ts_, record.value().ts);
    if (record.value().ts <= flushed_ts) {
      // Leftover of a flush that persisted its manifest but crashed before
      // truncating the WAL: the record is already in the level stack, so
      // re-inserting it would duplicate an internal key across runs.
      continue;
    }
    Status s = engine_->ReinsertFromWal(std::move(record).value());
    if (!s.ok()) return s;
  }
  // Tail repair (after the digest checks accepted the well-formed prefix):
  // drop any torn bytes past it so post-recovery appends never land behind
  // garbage — a frame appended there would be unreachable to the next
  // replay and silently lose the acknowledged write. Also primes the
  // engine's committed-offset tracking for its write-path repair.
  return engine_->TruncateWalTail(wal.value().valid_bytes);
}

Status ElsmDb::PersistManifest(const crypto::Hash256& wal_dig,
                               uint64_t wal_count) {
  ++flush_count_;
  const bool bump =
      options_.rollback_defense &&
      flush_count_ % std::max<uint32_t>(1, options_.counter_sync_period) == 0;
  // Persist-level retry: a transiently failed snapshot install re-runs as
  // the same idempotent atomic replace, and a transiently failed delta
  // append sets force_snapshot_ inside the attempt — so the retry installs
  // a fresh-generation snapshot instead of appending again behind possible
  // garbage. The raw append is never blindly retried.
  common::RetryStats rstats;
  Status s = common::RunWithRetry(
      options_.io_retry,
      [&] { return PersistManifestOnce(wal_dig, wal_count, bump); },
      [this](uint64_t ns) { enclave_->Advance(ns); }, &rstats);
  engine_->NoteRetry(rstats);
  return s;
}

Status ElsmDb::PersistManifestOnce(const crypto::Hash256& wal_dig,
                                   uint64_t wal_count, bool bump) {
  manifest::StoreState state;
  state.last_ts = last_ts_;
  state.flushed_ts = flushed_ts_;
  state.wal_digest = wal_dig;
  state.wal_count = wal_count;
  // Record the post-bump value; the bump itself happens only after the
  // record is durable, so a crash can never leave the hardware counter
  // ahead of every record on disk (which would brick the store as a false
  // rollback). Recovery tolerates the inverse window (record one ahead).
  state.counter = platform_->counter.Read() + (bump ? 1 : 0);

  uint64_t newest_edit_seq = 0;
  std::vector<std::string> edits =
      engine_->EditsSince(persisted_edit_seq_, &newest_edit_seq);

  const bool snapshot =
      !have_snapshot_ || force_snapshot_ ||
      options_.manifest_snapshot_edits == 0 ||
      tail_records_ >= options_.manifest_snapshot_edits ||
      tail_bytes_ >= options_.manifest_snapshot_bytes;

  manifest::RecordHeader header;
  header.kind = snapshot ? manifest::kSnapshot : manifest::kDelta;
  header.seq = manifest_seq_ + 1;
  header.prev_chain = manifest_chain_;
  std::string payload;
  manifest::PutHeader(&payload, header);
  manifest::PutStoreState(&payload, state);
  if (snapshot) {
    // The snapshot captures the whole stack and the engine edit sequence
    // it covers atomically; edits through that sequence become redundant.
    PutLengthPrefixed(&payload, engine_->EncodeManifest(&newest_edit_seq));
  } else {
    PutVarint32(&payload, static_cast<uint32_t>(edits.size()));
    for (const std::string& edit : edits) PutLengthPrefixed(&payload, edit);
  }
  enclave_->ChargeHash(payload.size());  // seal MAC
  enclave_->ChargeHash(payload.size());  // chain digest
  enclave_->ChargeOcall();
  std::string sealed = sgx::Seal(platform_->sealing_key, payload);
  const uint64_t sealed_bytes = sealed.size();

  if (snapshot) {
    // Crash-consistent install (Fs::Sync contract): data fsync before the
    // rename, directory fsync after it, counter bump only once the new
    // snapshot is fully durable.
    Status s = fs_->Write(manifest_tmp_name(), std::move(sealed));
    if (!s.ok()) return s;
    if (options_.sync_writes) {
      s = fs_->Sync(manifest_tmp_name());
      if (!s.ok()) return s;
    }
    s = fs_->Rename(manifest_tmp_name(), manifest_name());
    if (!s.ok()) return s;
    if (options_.sync_writes) {
      s = fs_->SyncDir();
      if (!s.ok()) return s;
    }
    // Tail truncation: the new snapshot supersedes every prior
    // generation's tail, so delete them. Cleanup, not correctness — stale
    // generations are ignored by name on recovery (an unsynced-loss crash
    // may even resurrect one) and GC'd as orphans.
    for (const std::string& name : fs_->List(edits_prefix())) {
      if (name != edits_name(header.seq)) (void)fs_->Delete(name);
    }
    engine_->NoteManifestWrite(/*snapshot=*/true, sealed_bytes);
    snapshot_seq_ = header.seq;
    tail_records_ = 0;
    tail_bytes_ = 0;
    have_snapshot_ = true;
    force_snapshot_ = false;
    edits_dir_synced_ = false;
  } else {
    std::string frame;
    manifest::AppendFrame(&frame, sealed);
    const uint64_t frame_bytes = frame.size();
    if (options_.sync_writes) {
      // Namespace barrier *before* the record lands: the flush/compaction
      // behind this persist fsynced its new SSTables' data, but their
      // directory entries are not durable until SyncDir (fs.h contract).
      // The snapshot path gets this for free from its post-rename SyncDir;
      // an appended record would otherwise survive a crash that erases the
      // very files it references.
      Status sd = fs_->SyncDir();
      if (!sd.ok()) return sd;
    }
    // Any failure from here on leaves the tail file in an unknown state (a
    // partial frame may have landed); never append after possible garbage —
    // the next persist must supersede the tail with a fresh-generation
    // snapshot.
    Status s = fs_->Append(edits_name(snapshot_seq_), frame);
    if (!s.ok()) {
      force_snapshot_ = true;
      return s;
    }
    if (options_.sync_writes) {
      s = fs_->Sync(edits_name(snapshot_seq_));
      if (!s.ok()) {
        force_snapshot_ = true;
        return s;
      }
      if (!edits_dir_synced_) {
        // One-time namespace barrier per tail generation: the freshly
        // created file's directory entry is not durable until SyncDir
        // (fs.h contract, same as the WAL's).
        s = fs_->SyncDir();
        if (!s.ok()) {
          force_snapshot_ = true;
          return s;
        }
        edits_dir_synced_ = true;
      }
    }
    engine_->NoteManifestWrite(/*snapshot=*/false, frame_bytes);
    ++tail_records_;
    tail_bytes_ += frame_bytes;
  }
  manifest_seq_ = header.seq;
  manifest_chain_ = crypto::Sha256::Digest(payload);
  persisted_edit_seq_ = newest_edit_seq;
  engine_->TrimEditsThrough(newest_edit_seq);
  if (bump) {
    platform_->counter.Increment();
    enclave_->ChargeCounterBump();
  }
  return Status::Ok();
}

std::string ElsmDb::TransformKey(std::string_view key) const {
  if (options_.order_preserving_keys) {
    enclave_->ChargeCipher(key.size() * 2);
    return crypto::OpeCipher(options_.data_key).Encrypt(key);
  }
  if (!options_.deterministic_key_encryption) return std::string(key);
  enclave_->ChargeCipher(key.size());
  return crypto::DeterministicEncrypt(options_.data_key, key);
}

std::string ElsmDb::TransformValue(std::string_view value, uint64_t ts) const {
  if (!options_.encrypt_values) return std::string(value);
  enclave_->ChargeCipher(value.size());
  return crypto::StreamEncrypt(options_.data_key, ts, value);
}

Status ElsmDb::UntransformRecord(lsm::Record* record) const {
  if (options_.encrypt_values && !record->deleted()) {
    enclave_->ChargeCipher(record->value.size());
    record->value =
        crypto::StreamDecrypt(options_.data_key, record->ts, record->value);
  }
  if (options_.deterministic_key_encryption) {
    enclave_->ChargeCipher(record->key.size());
    auto key = crypto::DeterministicDecrypt(options_.data_key, record->key);
    if (!key.ok()) return key.status();
    record->key = std::move(key).value();
  } else if (options_.order_preserving_keys) {
    enclave_->ChargeCipher(record->key.size());
    auto key = crypto::OpeCipher(options_.data_key).Decrypt(record->key);
    if (!key.ok()) return key.status();
    record->key = std::move(key).value();
  }
  return Status::Ok();
}

Status ElsmDb::FlushInternal(bool only_if_full) {
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  // Early-out BEFORE demanding the exclusive db lock. Every writer in the
  // cohort that filled the memtable sees need_flush and lands here; they
  // serialize on flush_mu_ behind the one doing the work, and once it is
  // done they must leave without touching db_mu_ — an exclusive acquire
  // starves under continuous shared-holder (writer) traffic, and a convoy
  // of them collapses write concurrency to whatever two threads slip
  // through. Atomic reads suffice here; the check repeats under the
  // exclusive lock before anything irreversible.
  if (only_if_full && engine_->memtable_bytes() < options_.memtable_bytes &&
      engine_->wal_bytes() < wal_bound()) {
    return Status::Ok();  // another writer flushed while we queued
  }
  if (options_.background_compaction) {
    // Drain the engine thread before taking db_mu_, so readers only ever
    // wait behind the bounded memtable->L1 merge, never a deep ripple.
    engine_->WaitForCompaction();
  }
  std::unique_lock<std::shared_mutex> lock(db_mu_);
  if (only_if_full && engine_->memtable_bytes() < options_.memtable_bytes &&
      engine_->wal_bytes() < wal_bound()) {
    return Status::Ok();  // flushed between the fast-path check and here
  }
  Status s = engine_->Flush();
  if (!s.ok()) return NoteWriteResult(std::move(s));
  if (!options_.background_compaction) {
    s = engine_->MaybeCompact();
    if (!s.ok()) return NoteWriteResult(std::move(s));
  }
  // Crash ordering: every record at/below last_ts_ is now in the level
  // stack, so persist a manifest recording the post-truncation WAL state
  // (empty digest, flushed_ts_ high water) *before* truncating the WAL. A
  // crash in between leaves stale frames behind; ReplayWal skips them. The
  // live wal_digest_ resets only once both steps succeeded, so a transient
  // persist/truncate failure leaves digest and WAL still in agreement.
  flushed_ts_ = last_ts_;
  if (options_.persist_manifest_on_flush) {
    s = PersistManifest(crypto::kZeroHash, 0);
    if (!s.ok()) return NoteWriteResult(std::move(s));
  }
  s = engine_->ResetWal();
  if (!s.ok()) {
    // The unlink may have landed before a later barrier of the reset
    // failed; the live digest must keep matching the on-disk WAL either
    // way, or a later Close() would seal coverage of vanished frames.
    if (!fs_->Exists(options_.name + "/wal")) wal_digest_.Reset();
    return NoteWriteResult(std::move(s));
  }
  wal_digest_.Reset();
  engine_->PurgeObsoleteFiles();
  lock.unlock();
  if (options_.background_compaction) engine_->ScheduleCompaction();
  return Status::Ok();
}

Status ElsmDb::MaybeScheduleFlush() {
  if (!options_.async_flush) return FlushInternal(/*only_if_full=*/true);
  {
    std::lock_guard<std::mutex> lock(flush_state_mu_);
    flush_pending_ = true;
    flush_cv_.notify_one();
  }
  // Back-pressure: fall back to a synchronous flush when the worker cannot
  // keep up (the active memtable has blown far past its limit) or when the
  // WAL has outgrown its bound and needs the truncating full flush only
  // the synchronous path performs.
  if (engine_->memtable_bytes() >= 4 * options_.memtable_bytes ||
      engine_->wal_bytes() >= wal_bound()) {
    return FlushInternal(/*only_if_full=*/true);
  }
  return Status::Ok();
}

Status ElsmDb::AsyncFlushOnce() {
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  if (options_.background_compaction) engine_->WaitForCompaction();
  uint64_t seal_ts = 0;
  {
    std::unique_lock<std::shared_mutex> lock(db_mu_);
    if (closed_) return Status::Ok();
    // Quiescing writers (they hold db_mu_ shared across their whole
    // commit) makes the seal a clean cut: every assigned timestamp has
    // been committed or failed, so seal_ts covers exactly the sealed
    // records and nothing the fresh active memtable will ever hold.
    const bool sealed = engine_->SealMemtable();
    if (!sealed && !engine_->HasImm()) return Status::Ok();
    seal_ts = last_ts_.load(std::memory_order_relaxed);
  }
  // Writers proceed into the fresh active memtable from here on; the
  // sealed one is immutable and merges without any facade lock held.
  Status s = engine_->FlushImm();
  if (!s.ok()) return NoteWriteResult(std::move(s));
  if (!options_.background_compaction) {
    s = engine_->MaybeCompact();
    if (!s.ok()) return NoteWriteResult(std::move(s));
  }
  {
    std::unique_lock<std::shared_mutex> lock(db_mu_);
    if (closed_) return Status::Ok();
    if (seal_ts > flushed_ts_) flushed_ts_ = seal_ts;
    if (options_.persist_manifest_on_flush) {
      // Persist the *live* digest: unlike the synchronous path, the WAL is
      // not truncated here — concurrent writers appended past the sealed
      // prefix, so the whole file stays; recovery skips frames at/below
      // flushed_ts (already in a level) and replays only the newer ones.
      // The WAL's growth is bounded by the forced synchronous flush in
      // MaybeScheduleFlush once it exceeds wal_bound().
      s = PersistManifest();
      if (!s.ok()) return NoteWriteResult(std::move(s));
    }
    engine_->PurgeObsoleteFiles();
  }
  if (options_.background_compaction) engine_->ScheduleCompaction();
  return Status::Ok();
}

void ElsmDb::FlushWorker() {
  std::unique_lock<std::mutex> lock(flush_state_mu_);
  while (true) {
    flush_cv_.wait(lock, [this] { return flush_pending_ || flush_stop_; });
    if (flush_stop_) return;
    flush_pending_ = false;
    flush_running_ = true;
    lock.unlock();
    Status s = AsyncFlushOnce();
    lock.lock();
    if (!s.ok() && flush_status_.ok()) flush_status_ = s;
    flush_running_ = false;
    flush_done_cv_.notify_all();
  }
}

void ElsmDb::StopFlushWorker() {
  {
    std::lock_guard<std::mutex> lock(flush_state_mu_);
    flush_stop_ = true;
    flush_cv_.notify_one();
  }
  if (flush_thread_.joinable()) flush_thread_.join();
}

Status ElsmDb::WaitForFlush() {
  if (!options_.async_flush) return Status::Ok();
  std::unique_lock<std::mutex> lock(flush_state_mu_);
  flush_done_cv_.wait(lock, [this] {
    return (!flush_pending_ && !flush_running_) || flush_stop_;
  });
  Status s = std::move(flush_status_);
  flush_status_ = Status::Ok();
  return s;
}

Status ElsmDb::PersistAfterBackgroundCompaction() {
  // Durability catch-up: the ripple changed the level stack after the
  // flush-time manifest. Skipped when flush-time persistence is off (the
  // bench configuration) — Close() still writes the final manifest. A
  // failure here surfaces through WaitForCompaction().
  if (!options_.persist_manifest_on_flush) return Status::Ok();
  std::unique_lock<std::shared_mutex> lock(db_mu_);
  if (closed_) return Status::Ok();
  Status s = PersistManifest();
  if (s.ok()) engine_->PurgeObsoleteFiles();
  return NoteWriteResult(std::move(s));
}

Status ElsmDb::NoteWriteResult(Status s) {
  // ENOSPC-class exhaustion flips the store into read-only degraded mode:
  // the failed op left memtable, WAL, and digest consistent (op-level
  // atomicity), so verified reads keep serving while writes fail fast
  // until TryResume() finds space again.
  if (s.IsCapacityExceeded()) {
    degraded_.store(true, std::memory_order_release);
  }
  return s;
}

Status ElsmDb::TryResume() {
  std::unique_lock<std::shared_mutex> lock(db_mu_);
  if (closed_) return Status::IOError("store is closed");
  if (!degraded_.load(std::memory_order_acquire)) return Status::Ok();
  // Probe the disk the way the write path uses it: create, sync, and
  // delete a scratch file under the store's namespace. A crash mid-probe
  // strands a file GcOrphanFiles removes on the next open.
  const std::string probe = options_.name + "/RESUME.probe";
  Status s = fs_->Write(probe, "resume-probe");
  if (s.ok() && options_.sync_writes) s = fs_->Sync(probe);
  if (fs_->Exists(probe)) (void)fs_->Delete(probe);
  if (!s.ok()) return s;  // still degraded
  degraded_.store(false, std::memory_order_release);
  // Pending memtable records (and their WAL frames) survived degradation
  // untouched; the next flush drains them normally.
  return Status::Ok();
}

void ElsmDb::RecordOpStat(Histogram OpStats::*h, uint64_t latency_ns) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  (op_stats_.*h).Add(latency_ns);
}

Status ElsmDb::Put(std::string_view key, std::string_view value) {
  const uint64_t start = enclave_->now_ns();
  bool need_flush = false;
  {
    // Shared, not exclusive: concurrent writers serialize on the engine's
    // commit queue (leader/follower group commit), not on the facade lock.
    // Exclusive sections (flush/seal/persist/close) still quiesce every
    // in-flight writer. The WAL digest is maintained by the commit hook
    // (see the constructor) after the cohort is durable, so a failed
    // append never leaves the in-enclave digest ahead of the real WAL.
    std::shared_lock<std::shared_mutex> lock(db_mu_);
    enclave_->ChargeEcall();
    if (degraded()) {
      return Status::CapacityExceeded(
          "store is in read-only degraded mode (call TryResume)");
    }
    lsm::Record record;
    record.ts = ++last_ts_;
    record.key = TransformKey(key);
    record.value = TransformValue(value, record.ts);
    record.type = lsm::RecordType::kValue;
    Status s = engine_->Put(std::move(record));
    if (!s.ok()) return NoteWriteResult(std::move(s));
    need_flush = engine_->memtable_bytes() >= options_.memtable_bytes ||
                 (options_.async_flush && engine_->wal_bytes() >= wal_bound());
  }
  Status s = need_flush ? MaybeScheduleFlush() : Status::Ok();
  RecordOpStat(&OpStats::put, enclave_->now_ns() - start);
  return s;
}

Status ElsmDb::Delete(std::string_view key) {
  const uint64_t start = enclave_->now_ns();
  bool need_flush = false;
  {
    std::shared_lock<std::shared_mutex> lock(db_mu_);
    enclave_->ChargeEcall();
    if (degraded()) {
      return Status::CapacityExceeded(
          "store is in read-only degraded mode (call TryResume)");
    }
    lsm::Record record;
    record.ts = ++last_ts_;
    record.key = TransformKey(key);
    record.type = lsm::RecordType::kTombstone;
    Status s = engine_->Put(std::move(record));
    if (!s.ok()) return NoteWriteResult(std::move(s));
    need_flush = engine_->memtable_bytes() >= options_.memtable_bytes ||
                 (options_.async_flush && engine_->wal_bytes() >= wal_bound());
  }
  Status s = need_flush ? MaybeScheduleFlush() : Status::Ok();
  RecordOpStat(&OpStats::put, enclave_->now_ns() - start);
  return s;
}

Status ElsmDb::Write(const WriteBatch& batch) {
  const uint64_t start = enclave_->now_ns();
  bool need_flush = false;
  {
    std::shared_lock<std::shared_mutex> lock(db_mu_);
    enclave_->ChargeEcall();
    if (degraded()) {
      return Status::CapacityExceeded(
          "store is in read-only degraded mode (call TryResume)");
    }
    // The whole batch rides one commit-queue request, so it lands as a
    // single WAL append (one world switch) and one contiguous digest run.
    std::vector<lsm::Record> records;
    records.reserve(batch.entries.size());
    for (const WriteBatch::Entry& entry : batch.entries) {
      lsm::Record record;
      record.ts = ++last_ts_;
      record.key = TransformKey(entry.key);
      if (entry.is_delete) {
        record.type = lsm::RecordType::kTombstone;
      } else {
        record.value = TransformValue(entry.value, record.ts);
      }
      records.push_back(std::move(record));
    }
    Status s = engine_->PutBatch(std::move(records));
    if (!s.ok()) return NoteWriteResult(std::move(s));
    need_flush = engine_->memtable_bytes() >= options_.memtable_bytes ||
                 (options_.async_flush && engine_->wal_bytes() >= wal_bound());
  }
  Status s = need_flush ? MaybeScheduleFlush() : Status::Ok();
  RecordOpStat(&OpStats::put, enclave_->now_ns() - start);
  return s;
}

std::optional<lsm::Record> ElsmDb::UnverifiedResult(
    const lsm::GetResponse& resp) {
  if (resp.memtable_hit.has_value()) return resp.memtable_hit;
  for (const lsm::LevelGetResult& lr : resp.levels) {
    if (lr.found) return lr.chain.back().record;
  }
  return std::nullopt;
}

Result<ElsmDb::VerifiedRecord> ElsmDb::GetVerified(std::string_view key,
                                                   uint64_t ts_max) {
  std::shared_lock<std::shared_mutex> lock(db_mu_);
  const uint64_t start = enclave_->now_ns();
  enclave_->ChargeEcall();
  const std::string lookup_key = TransformKey(key);

  auto resp = engine_->Get(lookup_key, ts_max);
  if (!resp.ok()) return resp.status();

  VerifiedRecord out;
  if (options_.mode == Mode::kP2 && options_.authenticate_data &&
      options_.verify_reads) {
    // Assemble and verify against the snapshot the lookup ran on — the live
    // stack may already belong to a newer version mid-compaction.
    const std::vector<lsm::LevelMeta>& levels =
        resp.value().snapshot->levels();
    auto assembled = assembler_->AssembleGet(resp.value(), levels);
    if (!assembled.ok()) return assembled.status();
    out.proof_bytes = assembled.value().proof_bytes;
    auto verified =
        verifier_.VerifyGet(lookup_key, ts_max, assembled.value(), levels);
    if (!verified.ok()) return verified.status();
    out.record = std::move(verified).value();
    out.verified = true;
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      op_stats_.proof_bytes += out.proof_bytes;
      ++op_stats_.verified_ops;
    }
  } else {
    out.record = UnverifiedResult(resp.value());
  }

  if (out.record.has_value()) {
    Status s = UntransformRecord(&*out.record);
    if (!s.ok()) return s;
  }
  RecordOpStat(&OpStats::get, enclave_->now_ns() - start);
  return out;
}

std::vector<Result<ElsmDb::VerifiedRecord>> ElsmDb::MultiGetVerified(
    const std::vector<std::string>& keys, uint64_t ts_max) {
  std::vector<Result<VerifiedRecord>> out;
  out.reserve(keys.size());
  if (keys.empty()) return out;
  std::shared_lock<std::shared_mutex> lock(db_mu_);
  const uint64_t start = enclave_->now_ns();
  // One ECall covers the whole batch: the boundary crossing is the part a
  // batched API genuinely amortizes.
  enclave_->ChargeEcall();
  std::vector<std::string> lookup_keys;
  lookup_keys.reserve(keys.size());
  for (const std::string& key : keys) {
    lookup_keys.push_back(TransformKey(key));
  }

  auto items = engine_->MultiGet(lookup_keys, ts_max);
  const bool verify = options_.mode == Mode::kP2 &&
                      options_.authenticate_data && options_.verify_reads;
  for (size_t i = 0; i < items.size(); ++i) {
    if (!items[i].status.ok()) {
      out.push_back(items[i].status);
      continue;
    }
    VerifiedRecord rec;
    if (verify) {
      // Every response carries the same snapshot; each key is assembled
      // and verified independently against it, exactly like GetVerified.
      const std::vector<lsm::LevelMeta>& levels =
          items[i].response.snapshot->levels();
      auto assembled = assembler_->AssembleGet(items[i].response, levels);
      if (!assembled.ok()) {
        out.push_back(assembled.status());
        continue;
      }
      rec.proof_bytes = assembled.value().proof_bytes;
      auto verified = verifier_.VerifyGet(lookup_keys[i], ts_max,
                                          assembled.value(), levels);
      if (!verified.ok()) {
        out.push_back(verified.status());
        continue;
      }
      rec.record = std::move(verified).value();
      rec.verified = true;
      {
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        op_stats_.proof_bytes += rec.proof_bytes;
        ++op_stats_.verified_ops;
      }
    } else {
      rec.record = UnverifiedResult(items[i].response);
    }
    if (rec.record.has_value()) {
      Status s = UntransformRecord(&*rec.record);
      if (!s.ok()) {
        out.push_back(s);
        continue;
      }
    }
    out.push_back(std::move(rec));
  }
  // One histogram sample per key, sharing the batch's wall time evenly —
  // keeps get-latency sample counts comparable with sequential callers.
  const uint64_t elapsed = enclave_->now_ns() - start;
  const uint64_t per_key = elapsed / keys.size();
  for (size_t i = 0; i < keys.size(); ++i) {
    RecordOpStat(&OpStats::get, per_key);
  }
  return out;
}

Result<std::vector<std::optional<std::string>>> ElsmDb::MultiGet(
    const std::vector<std::string>& keys) {
  auto verified = MultiGetVerified(keys, kLatest);
  std::vector<std::optional<std::string>> out;
  out.reserve(verified.size());
  for (auto& result : verified) {
    if (!result.ok()) return result.status();  // fail closed in aggregate
    auto& record = result.value().record;
    if (!record.has_value() || record->deleted()) {
      out.emplace_back(std::nullopt);
    } else {
      out.emplace_back(std::move(record->value));
    }
  }
  return out;
}

Result<std::optional<std::string>> ElsmDb::Get(std::string_view key) {
  auto result = GetVerified(key, kLatest);
  if (!result.ok()) return result.status();
  auto& record = result.value().record;
  if (!record.has_value() || record->deleted()) {
    return std::optional<std::string>(std::nullopt);
  }
  return std::optional<std::string>(std::move(record->value));
}

Result<std::vector<lsm::Record>> ElsmDb::Scan(std::string_view k1,
                                              std::string_view k2) {
  if (options_.deterministic_key_encryption) {
    return Status::NotSupported(
        "range queries over DE keys require order-preserving encryption");
  }
  std::shared_lock<std::shared_mutex> lock(db_mu_);
  const uint64_t start = enclave_->now_ns();
  enclave_->ChargeEcall();
  std::string lo(k1);
  std::string hi(k2);
  if (options_.order_preserving_keys) {
    lo = TransformKey(k1);
    hi = TransformKey(k2);
  }
  auto resp = engine_->Scan(lo, hi);
  if (!resp.ok()) return resp.status();

  std::vector<lsm::Record> records;
  if (options_.mode == Mode::kP2 && options_.authenticate_data &&
      options_.verify_reads) {
    const std::vector<lsm::LevelMeta>& levels =
        resp.value().snapshot->levels();
    auto assembled = assembler_->AssembleScan(resp.value(), levels);
    if (!assembled.ok()) return assembled.status();
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      op_stats_.proof_bytes += assembled.value().proof_bytes;
      ++op_stats_.verified_ops;
    }
    auto verified = verifier_.VerifyScan(lo, hi, assembled.value(), levels);
    if (!verified.ok()) return verified.status();
    records = std::move(verified).value();
  } else {
    std::map<std::string, lsm::Record> merged;
    for (const lsm::Record& r : resp.value().memtable_records) {
      merged.emplace(r.key, r);
    }
    for (const lsm::LevelScanResult& lr : resp.value().levels) {
      for (const lsm::RawEntry& e : lr.heads) merged.emplace(e.record.key, e.record);
    }
    for (auto& [k, r] : merged) {
      if (!r.deleted()) records.push_back(std::move(r));
    }
  }

  for (lsm::Record& r : records) {
    Status s = UntransformRecord(&r);
    if (!s.ok()) return s;
  }
  RecordOpStat(&OpStats::scan, enclave_->now_ns() - start);
  return records;
}

Status ElsmDb::Flush() { return FlushInternal(/*only_if_full=*/false); }

Status ElsmDb::CompactAll() {
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  if (options_.background_compaction) engine_->WaitForCompaction();
  std::unique_lock<std::shared_mutex> lock(db_mu_);
  Status s = engine_->Flush();
  if (!s.ok()) return NoteWriteResult(std::move(s));
  s = engine_->CompactAll();
  if (!s.ok()) return NoteWriteResult(std::move(s));
  // Same crash ordering as FlushInternal: manifest (recording the emptied
  // WAL) first, WAL truncation next, live digest reset only on success.
  flushed_ts_ = last_ts_;
  s = PersistManifest(crypto::kZeroHash, 0);
  if (!s.ok()) return NoteWriteResult(std::move(s));
  s = engine_->ResetWal();
  if (!s.ok()) {
    // The unlink may have landed before a later barrier of the reset
    // failed; the live digest must keep matching the on-disk WAL either
    // way, or a later Close() would seal coverage of vanished frames.
    if (!fs_->Exists(options_.name + "/wal")) wal_digest_.Reset();
    return NoteWriteResult(std::move(s));
  }
  wal_digest_.Reset();
  engine_->PurgeObsoleteFiles();
  return Status::Ok();
}

void ElsmDb::ScheduleCompaction() { engine_->ScheduleCompaction(); }

Status ElsmDb::WaitForCompaction() {
  engine_->WaitForCompaction();
  return engine_->TakeBackgroundStatus();
}

Status ElsmDb::Close() {
  {
    std::unique_lock<std::shared_mutex> lock(db_mu_);
    if (closed_) return Status::Ok();
  }
  // Join the async-flush worker first (it takes flush_mu_ for its flushes,
  // so it must be gone before we hold that lock across the final persist);
  // a flush it had pending simply stays in the WAL and replays on reopen.
  StopFlushWorker();
  // Serialize with in-flight flushes, then stop the engine thread before
  // the final manifest so no compaction (background or a racing flusher's
  // schedule) can run after it is written.
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  engine_->StopBackgroundCompaction();
  std::unique_lock<std::shared_mutex> lock(db_mu_);
  if (closed_) return Status::Ok();
  closed_ = true;
  // Persist the manifest *without* flushing the memtable: pending records
  // stay in the WAL and replay on reopen (that is the recovery test path).
  Status s = PersistManifest();
  if (s.ok()) engine_->PurgeObsoleteFiles();
  return s;
}

}  // namespace elsm
