// ElsmDb — the public authenticated key-value store (paper Eq. 1):
//
//   ts            = Put(k, v)
//   <k, v, ts>    = Get(k, ts_q)
//   {<k, v, ts>}  = Scan(k1, k2)
//   Delete(k)                      (tombstone write, §5.4)
//
// The facade plays the "trusted application + enclave" side: it assigns
// timestamps, maintains the WAL digest, drives flush/compaction, persists a
// sealed manifest bound to the trusted monotonic counter, and — in P2 mode —
// verifies every read against the enclave-held level roots.
//
// A TrustedPlatform outlives the DB instance across close/reopen (simulated
// power cycles); the storage::Fs backend is the untrusted disk the
// adversary may tamper
// with or roll back.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>

#include "auth/listener.h"
#include "auth/proof.h"
#include "auth/verifier.h"
#include "auth/wal_digest.h"
#include "common/histogram.h"
#include "common/status.h"
#include "elsm/options.h"
#include "lsm/engine.h"
#include "sgxsim/counter.h"
#include "sgxsim/enclave.h"
#include "storage/fs.h"

namespace elsm {

// Hardware that survives "power cycles" (DB close/reopen).
struct TrustedPlatform {
  sgx::MonotonicCounter counter;
  std::string sealing_key = "elsm-sealing-key";
};

inline constexpr uint64_t kLatest = UINT64_MAX;

class ElsmDb {
 public:
  // Opens (or recovers) a store on `fs`. Pass a fresh Fs (or nullptr to
  // build one from Options::backend/backend_dir) for a new store; pass the
  // same Fs + platform again to reopen after Close().
  static Result<std::unique_ptr<ElsmDb>> Open(
      const Options& options, std::shared_ptr<storage::Fs> fs,
      std::shared_ptr<TrustedPlatform> platform);

  // Convenience: fresh enclave + filesystem + platform.
  static Result<std::unique_ptr<ElsmDb>> Create(const Options& options);

  ~ElsmDb();

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  // Atomic-ish batched writes (LevelDB-style WriteBatch): all entries are
  // applied under one exclusive section with one trailing flush check, so a
  // reader never observes a partially applied batch.
  struct WriteBatch {
    void Put(std::string_view key, std::string_view value) {
      entries.push_back({std::string(key), std::string(value), false});
    }
    void Delete(std::string_view key) {
      entries.push_back({std::string(key), "", true});
    }
    struct Entry {
      std::string key;
      std::string value;
      bool is_delete;
    };
    std::vector<Entry> entries;
  };
  Status Write(const WriteBatch& batch);

  // Simple value lookup at the latest timestamp (nullopt = not found).
  Result<std::optional<std::string>> Get(std::string_view key);

  struct VerifiedRecord {
    std::optional<lsm::Record> record;  // nullopt = authenticated miss
    uint64_t proof_bytes = 0;
    bool verified = false;  // true iff the VRFY algorithm actually ran
  };
  Result<VerifiedRecord> GetVerified(std::string_view key,
                                     uint64_t ts_max = kLatest);

  // Batched point lookups: all keys resolve against ONE engine snapshot and
  // the engine coalesces their cache-missing blocks into Fs::MultiRead
  // batches (see Options::multiget_batching). Results are in key order;
  // each key is assembled and verified independently, exactly like
  // GetVerified — per-key error isolation, so one tampered block fails
  // only the keys that need it.
  std::vector<Result<VerifiedRecord>> MultiGetVerified(
      const std::vector<std::string>& keys, uint64_t ts_max = kLatest);

  // Value-only MultiGet (nullopt = authenticated miss). Fail-closed in
  // aggregate: any per-key error fails the whole call.
  Result<std::vector<std::optional<std::string>>> MultiGet(
      const std::vector<std::string>& keys);

  // Range query; completeness-verified in P2 mode (§5.4).
  Result<std::vector<lsm::Record>> Scan(std::string_view k1,
                                        std::string_view k2);

  // Flush L0 + ripple compaction + persist the sealed manifest. With
  // background_compaction the ripple is scheduled on the engine thread
  // instead of running inline, so the exclusive section stays bounded by
  // the memtable->L1 merge.
  Status Flush();
  Status CompactAll();
  // Background-compaction hooks: request a ripple pass (inline when the
  // option is off) / drain the engine thread and surface any error a pass
  // or its manifest persist hit (immediately Ok when it is off).
  void ScheduleCompaction();
  Status WaitForCompaction();
  // Async-flush hook (Options::async_flush): blocks until no background
  // flush is pending or running, then surfaces (and clears) the first
  // error a background flush hit. Immediately Ok when async flush is off.
  Status WaitForFlush();
  // Persist and stop; the Fs/platform can be reused to reopen.
  Status Close();

  // --- degraded operation (transient-fault tolerance) ----------------------
  // True while the store is in read-only degraded mode: a write path
  // exhausted its retries on an ENOSPC-class fault, so writes fail fast
  // with CapacityExceeded while verified Get/Scan keep serving (the
  // memtable and WAL of the failed op are intact and consistent).
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }
  // Re-probes the disk with a small write+sync+delete under the store's
  // namespace. Exits degraded mode and returns Ok when space is back
  // (pending memtable data drains on the next flush); returns the probe's
  // error — typically CapacityExceeded — while the disk is still full.
  // Ok and a no-op when not degraded.
  Status TryResume();

  // --- introspection ----------------------------------------------------------
  sgx::Enclave& enclave() { return *enclave_; }
  lsm::LsmEngine& engine() { return *engine_; }
  storage::Fs& fs() { return *fs_; }
  TrustedPlatform& platform() { return *platform_; }
  const Options& options() const { return options_; }
  uint64_t last_ts() const { return last_ts_.load(std::memory_order_relaxed); }
  // Block-cache counters summed over the read buffer's shards (all zero
  // when the mmap read path carries no buffer).
  storage::ReadBufferStats read_cache_stats() const {
    const storage::ReadBuffer* buffer = engine_->read_buffer();
    return buffer != nullptr ? buffer->stats() : storage::ReadBufferStats{};
  }
  // Drops every cached block (bench support: cold-read passes).
  void ClearReadCache() { engine_->ClearReadCache(); }
  // Verifier-side Merkle proof-path node cache counters.
  auth::ProofPathCacheStats proof_path_cache_stats() const {
    return verifier_.path_cache_stats();
  }
  // Tree-sidecar handles currently cached by the proof assembler.
  size_t cached_tree_handles() const { return assembler_->cached_trees(); }

  struct OpStats {
    Histogram put;
    Histogram get;
    Histogram scan;
    uint64_t proof_bytes = 0;
    uint64_t verified_ops = 0;
  };
  const OpStats& op_stats() const { return op_stats_; }
  void ResetOpStats() { op_stats_ = OpStats{}; }

 private:
  ElsmDb(const Options& options, std::shared_ptr<storage::Fs> fs,
         std::shared_ptr<TrustedPlatform> platform);

  Status Recover();
  // Rebuilds the in-enclave WAL digest over every surviving frame and
  // re-inserts the ones not yet in the level stack (ts > flushed_ts).
  // `wal_count`/`wal_dig` are the sealed coverage from the manifest;
  // `check_digest` is false on the fresh-store path, which has no sealed
  // digest yet.
  Status ReplayWal(uint64_t wal_count, const crypto::Hash256& wal_dig,
                   bool check_digest, uint64_t flushed_ts);
  // Seals one record of the manifest log and makes it durable, then bumps
  // the monotonic counter. Most persists append an O(changed levels) delta
  // record to the tail log (fsync-per-append under sync_writes); every
  // manifest_snapshot_edits records / manifest_snapshot_bytes tail bytes —
  // or whenever the tail may hold garbage (force_snapshot_) — a full
  // snapshot is installed instead (write tmp + Sync + Rename + SyncDir)
  // and the tail truncated by starting a new generation. The counter bump
  // always comes after the record is durable, so recovery accepts the
  // newest sealed record being exactly one ahead of the hardware counter —
  // the crash window between the append/rename and the bump. The WAL
  // coverage to record is passed explicitly so a flush can seal the
  // post-truncation state (empty digest) *before* mutating the live
  // wal_digest_ — a transiently failed persist must leave the in-memory
  // digest matching the untouched WAL.
  Status PersistManifest(const crypto::Hash256& wal_dig, uint64_t wal_count);
  Status PersistManifest() {
    return PersistManifest(wal_digest_.digest(), wal_digest_.count());
  }
  // One attempt of the persist (PersistManifest wraps it in the retry
  // policy; `bump` is decided once per logical persist).
  Status PersistManifestOnce(const crypto::Hash256& wal_dig,
                             uint64_t wal_count, bool bump);
  // Marks the store degraded when `s` is a capacity exhaustion; returns `s`
  // unchanged so write paths can tail-call it.
  Status NoteWriteResult(Status s);
  // Deletes files under the store prefix that the recovered manifest does
  // not reference (crashed compactions/flushes strand their outputs, and
  // parked-for-deletion inputs whose purge never ran).
  void GcOrphanFiles();
  // The one flush path: serializes flushers, drains the engine thread
  // *before* taking db_mu_ (so readers are never blocked behind a deep
  // merge), flushes, and schedules/runs the ripple per the options.
  Status FlushInternal(bool only_if_full);
  // Writer-path flush dispatch: synchronous FlushInternal when async_flush
  // is off; otherwise wakes the flush worker and returns immediately,
  // falling back to a synchronous flush only under back-pressure (active
  // memtable 4x over its limit — the worker cannot keep up) or once the
  // WAL outgrows wal_bound() and needs a truncating full flush.
  Status MaybeScheduleFlush();
  // One background flush: seal the active memtable under a short exclusive
  // section (writers then proceed into a fresh one), flush the sealed
  // memtable with no facade lock held, and persist a manifest recording
  // the *live* WAL digest (the WAL is not truncated — concurrent writers
  // appended past the flushed prefix; recovery skips frames at/below
  // flushed_ts).
  Status AsyncFlushOnce();
  void FlushWorker();
  void StopFlushWorker();
  uint64_t wal_bound() const {
    return options_.max_wal_bytes != 0 ? options_.max_wal_bytes
                                       : 8 * options_.memtable_bytes;
  }
  // Engine-thread callback: re-persists the manifest after a ripple pass;
  // errors surface through WaitForCompaction().
  Status PersistAfterBackgroundCompaction();
  void RecordOpStat(Histogram OpStats::*h, uint64_t latency_ns);
  std::string manifest_name() const { return options_.name + "/MANIFEST"; }
  std::string manifest_tmp_name() const {
    return options_.name + "/MANIFEST.tmp";
  }
  // Tail-log file of generation `gen` (the seq of the snapshot that opened
  // it); stale generations are ignored by name and garbage-collected.
  std::string edits_name(uint64_t gen) const;
  std::string edits_prefix() const { return options_.name + "/EDITS-"; }

  std::string TransformKey(std::string_view key) const;
  std::string TransformValue(std::string_view value, uint64_t ts) const;
  Status UntransformRecord(lsm::Record* record) const;

  // Extracts the result record without verification (P1 / unsecured).
  static std::optional<lsm::Record> UnverifiedResult(
      const lsm::GetResponse& resp);

  Options options_;
  std::shared_ptr<sgx::Enclave> enclave_;
  std::shared_ptr<storage::Fs> fs_;
  std::shared_ptr<TrustedPlatform> platform_;
  std::unique_ptr<lsm::LsmEngine> engine_;
  std::unique_ptr<auth::AuthCompactionListener> listener_;
  std::unique_ptr<auth::ProofAssembler> assembler_;
  auth::Verifier verifier_;
  auth::WalDigest wal_digest_;

  // Facade-level reader/writer lock (paper §5.5.2 multi-threading): writes
  // and flushes are exclusive; verified reads share. Reads verify against
  // the engine-response *snapshot*, so background compaction never holds
  // this lock — a GET issued mid-merge completes without waiting for it.
  mutable std::shared_mutex db_mu_;
  // Serializes flushers so the engine-thread drain happens outside db_mu_.
  std::mutex flush_mu_;
  mutable std::mutex stats_mu_;

  // --- manifest-log position (mutated under the exclusive db_mu_ section
  // of every persist) -------------------------------------------------------
  // Sequence and payload hash of the newest sealed record, chained into the
  // next one; the generation (seq) of the current snapshot, which names the
  // tail file; tail cadence counters; and the engine edit sequence already
  // covered by sealed records.
  uint64_t manifest_seq_ = 0;
  crypto::Hash256 manifest_chain_ = crypto::kZeroHash;
  uint64_t snapshot_seq_ = 0;
  uint64_t tail_records_ = 0;
  uint64_t tail_bytes_ = 0;
  uint64_t persisted_edit_seq_ = 0;
  // The store's first persist must be a snapshot (the tail has no base
  // until one exists).
  bool have_snapshot_ = false;
  // Set when the tail file may end in garbage (a failed/torn append): the
  // next persist must supersede it with a fresh-generation snapshot
  // instead of appending after the damage.
  bool force_snapshot_ = false;
  // The current tail file's directory entry is known durable (fs.h: a
  // freshly created file needs one SyncDir). Reset per generation.
  bool edits_dir_synced_ = false;

  // Timestamp oracle. Writers hold db_mu_ *shared* (they serialize on the
  // engine's commit queue, not here), so the increment must be atomic;
  // exclusive db_mu_ sections (flush/seal/persist/close) quiesce all
  // writers and may read it as a stable value.
  std::atomic<uint64_t> last_ts_{0};
  // Highest timestamp known to be in the level stack (set when a flush
  // lands, persisted in the manifest). Recovery re-inserts only WAL frames
  // above it — frames at/below it survive a crash between a flush's
  // manifest persist and its WAL truncation and are already in a level.
  uint64_t flushed_ts_ = 0;
  uint64_t flush_count_ = 0;
  bool closed_ = false;
  // Read-only degraded mode: set by NoteWriteResult on CapacityExceeded
  // exhaustion, cleared by a successful TryResume probe. Atomic so stats
  // and the fail-fast check need no lock; writes to it happen under
  // exclusive db_mu_ sections (or flush_mu_ for background persists).
  std::atomic<bool> degraded_{false};
  OpStats op_stats_;

  // --- async flush worker (Options::async_flush) ---------------------------
  // One background thread drains sealed memtables so writers never stall on
  // a flush. flush_state_mu_ guards only the handshake flags; the worker
  // takes flush_mu_ (like every flusher) for the flush itself.
  std::thread flush_thread_;
  std::mutex flush_state_mu_;
  std::condition_variable flush_cv_;       // wakes the worker
  std::condition_variable flush_done_cv_;  // wakes WaitForFlush
  bool flush_pending_ = false;
  bool flush_running_ = false;
  bool flush_stop_ = false;
  // First error a background flush hit; surfaced and cleared by
  // WaitForFlush (writers otherwise keep succeeding — their WAL frames are
  // durable regardless of whether the flush behind them landed).
  Status flush_status_;
};

}  // namespace elsm
