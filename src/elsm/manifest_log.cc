#include "elsm/manifest_log.h"

#include <cstring>

#include "common/coding.h"

namespace elsm::manifest {

void PutHeader(std::string* dst, const RecordHeader& header) {
  PutFixed64(dst, kMagic);
  dst->push_back(static_cast<char>(header.kind));
  PutFixed64(dst, header.seq);
  dst->append(reinterpret_cast<const char*>(header.prev_chain.data()), 32);
}

bool GetHeader(std::string_view* input, RecordHeader* header) {
  uint64_t magic = 0;
  if (!GetFixed64(input, &magic) || magic != kMagic) return false;
  if (input->empty()) return false;
  const uint8_t kind = static_cast<uint8_t>(input->front());
  input->remove_prefix(1);
  if (kind != kSnapshot && kind != kDelta) return false;
  header->kind = static_cast<RecordKind>(kind);
  if (!GetFixed64(input, &header->seq)) return false;
  if (input->size() < 32) return false;
  std::memcpy(header->prev_chain.data(), input->data(), 32);
  input->remove_prefix(32);
  return true;
}

void PutStoreState(std::string* dst, const StoreState& state) {
  PutFixed64(dst, state.last_ts);
  PutFixed64(dst, state.flushed_ts);
  dst->append(reinterpret_cast<const char*>(state.wal_digest.data()), 32);
  PutFixed64(dst, state.wal_count);
  PutFixed64(dst, state.counter);
}

bool GetStoreState(std::string_view* input, StoreState* state) {
  if (!GetFixed64(input, &state->last_ts) ||
      !GetFixed64(input, &state->flushed_ts)) {
    return false;
  }
  if (input->size() < 32) return false;
  std::memcpy(state->wal_digest.data(), input->data(), 32);
  input->remove_prefix(32);
  return GetFixed64(input, &state->wal_count) &&
         GetFixed64(input, &state->counter);
}

void AppendFrame(std::string* dst, std::string_view sealed) {
  PutFixed32(dst, static_cast<uint32_t>(sealed.size()));
  dst->append(sealed);
}

std::vector<std::string_view> SplitFrames(std::string_view raw, bool* torn) {
  *torn = false;
  std::vector<std::string_view> frames;
  while (!raw.empty()) {
    std::string_view cursor = raw;
    uint32_t len = 0;
    if (!GetFixed32(&cursor, &len) || cursor.size() < len) {
      // Trailing partial frame: a torn final append. Everything before it
      // is intact (each acknowledged append was synced before the next).
      *torn = true;
      break;
    }
    frames.push_back(cursor.substr(0, len));
    raw = cursor.substr(len);
  }
  return frames;
}

std::string TailName(const std::string& prefix, uint64_t gen) {
  return prefix + "-" + std::to_string(gen);
}

}  // namespace elsm::manifest
