// Sealed manifest-log primitives shared by ElsmDb (per-store manifest) and
// ShardedDb (super-manifest).
//
// Both logs follow the same shape: one sealed *snapshot* file holding the
// full state (installed with the crash-consistent tmp+Sync+Rename+SyncDir
// sequence), plus an append-only *tail* file of sealed delta records
// (fsync-per-append under sync_writes). Every record — snapshot or delta —
// carries a monotone sequence number and the SHA-256 of the previous
// record's plaintext payload, forming one hash chain that runs through
// snapshots, so records cannot be reordered, spliced across generations,
// or replayed from a different position without breaking either the seal
// (AuthFailure) or the chain (AuthFailure) or the counter floor
// (RollbackDetected).
//
// Tail framing: each append is one frame, Fixed32 length + sealed record.
// A crash can tear the *final* frame only (appends are synced before the
// counter bump acknowledges them); recovery drops a trailing partial frame
// silently — its bump never happened, so the surviving prefix is exactly
// the acknowledged state. A *complete* frame that fails to unseal can never
// be crash debris (a torn append is by definition shorter than its own
// length header claims), so it is adjudicated as tampering.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/sha256.h"

namespace elsm::manifest {

// Domain tag leading every record payload ("ELSMLOG1"), so a manifest
// record can never parse as some other sealed blob and vice versa.
inline constexpr uint64_t kMagic = 0x31474f4c4d534c45ull;

enum RecordKind : uint8_t {
  kSnapshot = 1,  // full state; the authoritative file after install
  kDelta = 2,     // incremental record appended to the tail log
};

// Common prefix of every record payload: magic | kind | seq | prev_chain.
// `seq` increases by exactly 1 per record across the snapshot/tail
// boundary; `prev_chain` is SHA-256 of the previous record's plaintext
// payload (kZeroHash for the first record of a store's history).
struct RecordHeader {
  RecordKind kind = kSnapshot;
  uint64_t seq = 0;
  crypto::Hash256 prev_chain = crypto::kZeroHash;
};

void PutHeader(std::string* dst, const RecordHeader& header);
// False on malformed input or magic mismatch (corrupt/foreign blob).
bool GetHeader(std::string_view* input, RecordHeader* header);

// Facade store-state block, present in every ElsmDb manifest record right
// after the header: the fields recovery needs even when no structural
// (level-stack) change rode along.
struct StoreState {
  uint64_t last_ts = 0;
  uint64_t flushed_ts = 0;
  crypto::Hash256 wal_digest = crypto::kZeroHash;
  uint64_t wal_count = 0;
  // The post-bump counter value this record acknowledges. The hardware
  // bump happens only after the record is durable, so recovery tolerates
  // the newest record being exactly one ahead of the hardware counter.
  uint64_t counter = 0;
};

void PutStoreState(std::string* dst, const StoreState& state);
bool GetStoreState(std::string_view* input, StoreState* state);

// One tail frame: Fixed32 length + sealed record bytes.
void AppendFrame(std::string* dst, std::string_view sealed);
// Splits a tail file into complete sealed frames. A trailing partial frame
// (torn append) is dropped and *torn set — the caller must treat the tail
// file as dirty and supersede it with a fresh-generation snapshot rather
// than append after the garbage.
std::vector<std::string_view> SplitFrames(std::string_view raw, bool* torn);

// Tail-file naming: "<prefix>-<gen>", where gen is the sequence number of
// the snapshot that opened the generation. Stale generations are ignored
// by name and garbage-collected.
std::string TailName(const std::string& prefix, uint64_t gen);

}  // namespace elsm::manifest
