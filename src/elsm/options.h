// Public configuration for ElsmDb (paper Table 1 + §5.6 extensions).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/retry.h"
#include "common/thread_pool.h"
#include "lsm/engine.h"
#include "sgxsim/cost_model.h"
#include "storage/fs.h"

namespace elsm {

// Which system from the paper to run.
enum class Mode {
  kP2,         // eLSM-P2: code in enclave, buffers outside, record-grained
               // Merkle digests with embedded proofs (§5)
  kP1,         // eLSM-P1: everything in enclave, file-grained protection (§4)
  kUnsecured,  // plain LSM store, no enclave, no authentication (baseline)
};

struct Options {
  Mode mode = Mode::kP2;
  std::string name = "elsm";

  // --- storage backend -----------------------------------------------------
  // Which storage::Fs backend Open/Create builds when the caller does not
  // pass one explicitly: the deterministic in-memory SimFs (default, the
  // paper's memory-resident evaluation) or PosixFs on real files under
  // `backend_dir` (required for kPosix). An explicitly passed Fs/ShardEnv
  // always wins over these fields.
  storage::BackendKind backend = storage::BackendKind::kSim;
  std::string backend_dir;
  // Honor the Fs durability contract on the write path: fsync the WAL
  // before acknowledging a write, fsync SSTables/sidecars before the
  // manifest that references them, and install manifests with
  // Sync(tmp) + Rename + SyncDir before bumping the monotonic counter.
  // Free on SimFs (always durable); real fsyncs on PosixFs. Disable only
  // for benchmarks that want the no-durability upper bound.
  bool sync_writes = true;
  // Bounded retry for transient storage faults (Status::IsTransient — an
  // EIO blip, EAGAIN-class resource pressure) on the retry-safe write
  // paths: WAL append+sync with tail repair between attempts, SSTable and
  // tree-sidecar installs (atomic whole-file replaces), and the manifest
  // install (a failed delta append escalates to an idempotent
  // fresh-generation snapshot before the retry). Backoff is charged on the
  // simulated enclave clock, so retried runs stay deterministic.
  // Permanent classes — Corruption, AuthFailure, CapacityExceeded, plain
  // IOError — are never retried. max_attempts <= 1 disables retries.
  common::RetryPolicy io_retry;
  // Group-commit linger window (microseconds). Concurrent writers already
  // share one WAL append + fsync per commit cohort (the first queued writer
  // acts as leader for everyone queued behind it); with 0 the leader syncs
  // as soon as it reaches the barrier, >0 lets it linger up to the window
  // to absorb straggling writers into the same fsync. Larger windows mean
  // fewer fsyncs per op under load but add up to the window of latency to
  // lightly-contended writes. No effect on durability: a write is never
  // acknowledged before its frame is synced (when sync_writes is set), so
  // the window only shapes latency/throughput, not the crash contract.
  // Ignored when sync_writes is false.
  uint64_t wal_sync_interval_us = 0;
  // Move memtable sealing off the writer path: when the active memtable
  // fills, writers seal it and roll to a fresh one, and the sealed
  // (immutable) memtable flushes on a background worker — a Put never
  // stalls behind a memtable->L1 merge. Off by default: the synchronous
  // path flushes inline and truncates the WAL every flush, which is the
  // deterministic behavior most tests and single-threaded callers want.
  // With async flush the WAL is truncated only by a forced synchronous
  // flush once it outgrows max_wal_bytes (manifests persisted by the
  // background flush record the live WAL digest instead, and recovery
  // skips frames already covered by a flushed level).
  bool async_flush = false;
  // WAL growth bound for async_flush (bytes); when the acknowledged WAL
  // exceeds it, the next write triggers a synchronous truncating flush.
  // 0 = 8 * memtable_bytes.
  uint64_t max_wal_bytes = 0;

  // --- LSM geometry (defaults are the paper's setup scaled /64) ------------
  uint64_t memtable_bytes = 64 << 10;
  uint64_t level1_bytes = 256 << 10;
  uint32_t level_ratio = 4;
  uint64_t block_bytes = 4096;
  uint64_t file_bytes = 64 << 10;
  int bloom_bits_per_key = 10;
  bool use_bloom = true;
  bool compaction_enabled = true;
  // Run ripple compaction on the engine's background thread: flushes
  // schedule it and return, so reads never wait for a deep merge. Drive
  // deterministically with ScheduleCompaction()/WaitForCompaction().
  bool background_compaction = false;

  // --- read path (§5.5.1; ignored for P1, which always uses an in-enclave
  //     user-space buffer) ---------------------------------------------------
  lsm::ReadPathKind read_path = lsm::ReadPathKind::kMmap;
  uint64_t read_buffer_bytes = 8 << 20;
  // LRU shards of the read buffer (per-shard mutex, single-flight misses;
  // entries are keyed by the block digest sealed in the snapshot, so a hit
  // is already verified).
  int read_cache_shards = 8;
  // Merkle proof-path node cache inside the verifier: bounds the number of
  // verified tree nodes kept so hot-key re-verifications skip the path
  // re-hash entirely. 0 disables the cache.
  size_t proof_path_cache_entries = 4096;
  // Batched read I/O (buffer read path only). multiget_batching collects
  // every cache-missing candidate block of a MultiGet level pass into one
  // Fs::MultiRead; scan_readahead_blocks pipelines verified scans by
  // batch-reading the next N blocks the range walk will provably visit
  // (0 disables). compaction_readahead_files batch-reads the next K input
  // run files per opened compaction input (0 = legacy Blob path, which
  // charges no file read — keep 0 for cost-model-faithful figures).
  bool multiget_batching = true;
  uint64_t scan_readahead_blocks = 8;
  uint64_t compaction_readahead_files = 0;

  // --- authentication (P2) -------------------------------------------------
  // Build the Merkle forest at all (false = a plain LSM store that still
  // runs inside the enclave — the "SGX port without authentication"
  // configuration of the paper's Fig. 2 / Fig. 6a preliminary studies).
  bool authenticate_data = true;
  bool verify_reads = true;       // run VRFY on every GET/SCAN result
  bool embed_full_paths = false;  // paper-literal proof layout (DESIGN.md §2)

  // --- freshness / rollback defence (§5.6.1) -------------------------------
  bool rollback_defense = true;
  uint32_t counter_sync_period = 1;  // flushes per monotonic-counter bump
  // Seal + persist the manifest on every flush (durable default). Benches
  // disable it to keep the measured path free of manifest-sealing costs;
  // Close() always persists.
  bool persist_manifest_on_flush = true;
  // Manifest-log snapshot cadence: a full sealed snapshot replaces the
  // append-only delta tail after this many delta records, or once the tail
  // exceeds manifest_snapshot_bytes, whichever first. Between snapshots
  // every persist appends one O(changed levels) sealed record, keeping
  // manifest maintenance O(1) in resident file count. 0 delta records
  // means snapshot-on-every-persist — the legacy full-rewrite behavior the
  // fig_manifest_scaling bench uses as its O(files) baseline. ShardedDb
  // applies the same cadence to its super-manifest log.
  uint32_t manifest_snapshot_edits = 32;
  uint64_t manifest_snapshot_bytes = 4 << 20;

  // --- cross-shard fan-out (ShardedDb only; ElsmDb ignores these) ----------
  // Worker threads for parallel cross-shard Scan/MultiGet/Write fan-out.
  // 0 = sequential fallback: every cross-shard op visits its shards one at
  // a time on the calling thread (the pre-fan-out behavior). Shards are
  // fully independent stores and the calling thread runs one partition
  // itself (caller-runs), so a pool of min(num_shards - 1, cores - 1)
  // captures all available parallelism; larger pools only add queueing.
  uint32_t fanout_threads = 0;
  // Share one pool between stores (many ShardedDbs in one process should
  // not each spawn their own workers). When null and fanout_threads > 0,
  // ShardedDb creates a private pool of that size.
  std::shared_ptr<common::ThreadPool> fanout_pool;

  // --- confidentiality (§5.6.2) ---------------------------------------------
  bool encrypt_values = false;             // semantically secure values
  bool deterministic_key_encryption = false;  // searchable (DE) keys;
                                              // disables SCAN (needs OPE)
  // Order-preserving key encryption: keeps SCAN working over ciphertext
  // keys (mutually exclusive with deterministic_key_encryption). Leaks key
  // order by design — see crypto/ope.h.
  bool order_preserving_keys = false;
  std::string data_key = "elsm-data-key";

  // --- simulated hardware ----------------------------------------------------
  sgx::CostModel cost_model;
};

}  // namespace elsm
