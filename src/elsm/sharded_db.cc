#include "elsm/sharded_db.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/coding.h"
#include "elsm/manifest_log.h"
#include "lsm/merge_iter.h"
#include "sgxsim/sealed.h"

namespace elsm {
namespace {

constexpr uint32_t kMaxShards = 4096;

}  // namespace

uint32_t ShardForKey(std::string_view key, uint32_t num_shards) {
  // FNV-1a 64: stable across platforms/processes, so keys keep landing on
  // the same shard for the lifetime of the store (the sealed shard count
  // pins the modulus).
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return static_cast<uint32_t>(h % num_shards);
}

std::string ShardedDb::ShardName(const std::string& base_name,
                                 uint32_t shard) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "/shard-%03u", shard);
  return base_name + buf;
}

std::string ShardedDb::super_edits_name(uint64_t gen) const {
  return manifest::TailName(options_.name + "/SUPER-EDITS", gen);
}

ShardedDb::ShardedDb(const Options& base, uint32_t num_shards,
                     std::shared_ptr<ShardEnv> env)
    : options_(base),
      num_shards_(num_shards),
      env_(std::move(env)),
      meta_enclave_(std::make_shared<sgx::Enclave>(
          base.cost_model, base.mode != Mode::kUnsecured)) {
  if (options_.fanout_pool != nullptr) {
    pool_ = options_.fanout_pool;
  } else if (options_.fanout_threads > 0) {
    pool_ = std::make_shared<common::ThreadPool>(options_.fanout_threads);
  }
  if (env_->meta_platform == nullptr) {
    env_->meta_platform = std::make_shared<TrustedPlatform>();
  }
  if (env_->meta_fs == nullptr) {
    env_->meta_fs =
        storage::MakeFs(options_.backend, options_.backend_dir, meta_enclave_);
  } else {
    env_->meta_fs->set_enclave(meta_enclave_);
  }
  env_->shard_fs.resize(num_shards_);
  env_->shard_platforms.resize(num_shards_);
  for (uint32_t i = 0; i < num_shards_; ++i) {
    if (env_->shard_platforms[i] == nullptr) {
      auto platform = std::make_shared<TrustedPlatform>();
      // Derived per-shard sealing keys: a shard's manifest cannot be
      // unsealed under another shard's key, so swapping shard directories
      // surfaces as AuthFailure instead of silently re-homing data.
      platform->sealing_key =
          env_->meta_platform->sealing_key + ShardName("", i);
      env_->shard_platforms[i] = std::move(platform);
    }
    if (env_->shard_fs[i] == nullptr) {
      // Posix shards share one --dir root; their names are disjoint by the
      // per-shard directory prefix. Separate instances keep each shard's
      // I/O charged on its own enclave once ElsmDb re-homes them.
      env_->shard_fs[i] =
          storage::MakeFs(options_.backend, options_.backend_dir, meta_enclave_);
    }
  }
}

ShardedDb::~ShardedDb() {
  if (!closed_) (void)Close();
}

Result<std::unique_ptr<ShardedDb>> ShardedDb::Open(
    const Options& base, uint32_t num_shards, std::shared_ptr<ShardEnv> env) {
  if (num_shards == 0 || num_shards > kMaxShards) {
    return Status::InvalidArgument("num_shards must be in [1, " +
                                   std::to_string(kMaxShards) + "]");
  }
  if (base.backend == storage::BackendKind::kPosix &&
      base.backend_dir.empty() &&
      (env == nullptr || env->meta_fs == nullptr)) {
    return Status::InvalidArgument(
        "the posix backend needs Options::backend_dir");
  }
  if (env == nullptr) env = std::make_shared<ShardEnv>();
  if (!env->shard_fs.empty() && env->shard_fs.size() != num_shards) {
    return Status::InvalidArgument(
        "ShardEnv holds " + std::to_string(env->shard_fs.size()) +
        " shard filesystems but " + std::to_string(num_shards) +
        " shards were requested");
  }
  std::unique_ptr<ShardedDb> db(new ShardedDb(base, num_shards, env));
  Status s = db->OpenShards();
  if (!s.ok()) {
    // A failed open must not let the destructor's Close() refresh the
    // super-manifest over the very state verification just rejected.
    db->closed_ = true;
    return s;
  }
  return db;
}

Result<std::unique_ptr<ShardedDb>> ShardedDb::Create(const Options& base,
                                                     uint32_t num_shards) {
  return Open(base, num_shards, nullptr);
}

Status ShardedDb::OpenShards() {
  if (env_->meta_fs->Exists(super_tmp_name())) {
    (void)env_->meta_fs->Delete(super_tmp_name());
  }
  bool found = false;
  Status s = VerifySuperManifest(&found);
  if (!s.ok()) return s;
  if (!found && options_.rollback_defense) {
    // No super-manifest: acceptable only for a genuinely fresh store. Any
    // shard with sealed state (or a bumped trusted counter) means the host
    // deleted the cross-shard binding.
    if (env_->meta_platform->counter.Read() > 0) {
      return Status::RollbackDetected(
          "super-manifest vanished: meta counter is " +
          std::to_string(env_->meta_platform->counter.Read()));
    }
    for (uint32_t i = 0; i < num_shards_; ++i) {
      if (env_->shard_fs[i]->Exists(shard_manifest_name(i)) ||
          env_->shard_platforms[i]->counter.Read() > 0) {
        return Status::RollbackDetected(
            "super-manifest vanished but shard " + std::to_string(i) +
            " has sealed state");
      }
    }
  }
  // Drop tail files from superseded generations (a crash between a SUPER
  // snapshot install and the old tail's deletion strands one); they are
  // already ignored by name.
  const std::string live_tail =
      found ? super_edits_name(super_snapshot_seq_) : std::string();
  for (const std::string& name : env_->meta_fs->List(super_edits_prefix())) {
    if (name != live_tail) (void)env_->meta_fs->Delete(name);
  }
  shards_.reserve(num_shards_);
  health_.clear();
  for (uint32_t i = 0; i < num_shards_; ++i) {
    health_.push_back(std::make_unique<ShardHealthState>());
  }
  for (uint32_t i = 0; i < num_shards_; ++i) {
    Options shard_options = options_;
    shard_options.name = ShardName(options_.name, i);
    auto db =
        ElsmDb::Open(shard_options, env_->shard_fs[i], env_->shard_platforms[i]);
    if (!db.ok()) return db.status();
    shards_.push_back(std::move(db).value());
  }
  // Record the post-recovery shard digests (also seals the shard count the
  // first time through).
  return PersistSuperManifest();
}

Status ShardedDb::ShardManifestState(uint32_t shard, crypto::Hash256* digest,
                                     uint64_t* last_ts) const {
  *digest = crypto::kZeroHash;
  *last_ts = 0;
  auto blob = env_->shard_fs[shard]->Blob(shard_manifest_name(shard));
  if (blob == nullptr) return Status::Ok();
  auto payload =
      sgx::Unseal(env_->shard_platforms[shard]->sealing_key, *blob);
  if (!payload.ok()) {
    return Status::AuthFailure(
        "shard " + std::to_string(shard) +
        " manifest is not sealed under its shard key: " +
        payload.status().message());
  }
  std::string_view cursor(payload.value());
  manifest::RecordHeader header;
  manifest::StoreState state;
  if (!manifest::GetHeader(&cursor, &header) ||
      header.kind != manifest::kSnapshot ||
      !manifest::GetStoreState(&cursor, &state)) {
    return Status::Corruption("bad shard manifest payload");
  }
  *last_ts = state.last_ts;
  // The shard's authoritative manifest is the snapshot plus its live tail
  // of sealed delta records; digest both so the super pins the shard's
  // exact log content, and take the last_ts floor from the newest sealed
  // record. Chain/sequence validation over the tail is the shard's own
  // recovery job — here every record just has to carry the shard's seal.
  crypto::Sha256 hasher;
  hasher.Update(*blob);
  uint64_t hashed_bytes = blob->size();
  auto tail = env_->shard_fs[shard]->Blob(manifest::TailName(
      ShardName(options_.name, shard) + "/EDITS", header.seq));
  if (tail != nullptr) {
    hasher.Update(*tail);
    hashed_bytes += tail->size();
    bool torn = false;
    for (std::string_view frame : manifest::SplitFrames(*tail, &torn)) {
      auto record =
          sgx::Unseal(env_->shard_platforms[shard]->sealing_key, frame);
      if (!record.ok()) {
        return Status::AuthFailure(
            "shard " + std::to_string(shard) +
            " manifest edit record is not sealed under its shard key: " +
            record.status().message());
      }
      std::string_view rc(record.value());
      manifest::RecordHeader rh;
      manifest::StoreState rs;
      if (!manifest::GetHeader(&rc, &rh) || rh.kind != manifest::kDelta ||
          !manifest::GetStoreState(&rc, &rs)) {
        return Status::Corruption("bad shard manifest edit record");
      }
      *last_ts = std::max(*last_ts, rs.last_ts);
    }
  }
  meta_enclave_->ChargeHash(hashed_bytes);
  *digest = hasher.Finalize();
  return Status::Ok();
}

Status ShardedDb::VerifySuperManifest(bool* found) {
  *found = false;
  if (!env_->meta_fs->Exists(super_name())) {
    // A tail log with no snapshot base is never a legitimate history:
    // snapshots are installed atomically and tails deleted only after a
    // replacement snapshot lands. With a bumped meta counter the caller's
    // vanished-super check raises the stronger RollbackDetected; this
    // catches the counter-zero corner (tail planted before any bump).
    if (options_.rollback_defense &&
        env_->meta_platform->counter.Read() == 0 &&
        !env_->meta_fs->List(super_edits_prefix()).empty()) {
      return Status::AuthFailure(
          "super-manifest edit log present but its snapshot vanished");
    }
    return Status::Ok();
  }

  auto sealed = env_->meta_fs->ReadAll(super_name());
  if (!sealed.ok()) return sealed.status();
  auto payload = sgx::Unseal(env_->meta_platform->sealing_key, sealed.value());
  if (!payload.ok()) {
    return Status::AuthFailure("super-manifest seal broken: " +
                               payload.status().message());
  }

  std::string_view cursor(payload.value());
  manifest::RecordHeader header;
  uint64_t shard_count = 0;
  uint64_t counter_value = 0;
  if (!manifest::GetHeader(&cursor, &header) ||
      !GetFixed64(&cursor, &shard_count) ||
      !GetFixed64(&cursor, &counter_value)) {
    return Status::Corruption("bad super-manifest payload");
  }
  if (header.kind != manifest::kSnapshot) {
    return Status::AuthFailure(
        "super-manifest file holds a delta record, not a snapshot (spliced "
        "log)");
  }
  if (shard_count != num_shards_) {
    return Status::InvalidArgument(
        "sharded store was sealed with " + std::to_string(shard_count) +
        " shards but opened with " + std::to_string(num_shards_) +
        " — the shard count (and thus key routing) is fixed at creation");
  }
  if (cursor.size() != size_t(shard_count) * 40) {
    return Status::Corruption("bad super-manifest digest block");
  }
  std::vector<crypto::Hash256> table(num_shards_, crypto::kZeroHash);
  std::vector<uint64_t> floors(num_shards_, 0);
  for (uint32_t i = 0; i < num_shards_; ++i) {
    std::memcpy(table[i].data(), cursor.data(), 32);
    cursor.remove_prefix(32);
    if (!GetFixed64(&cursor, &floors[i])) {
      return Status::Corruption("bad super-manifest digest block");
    }
  }
  meta_enclave_->ChargeHash(payload.value().size());
  crypto::Hash256 chain = crypto::Sha256::Digest(payload.value());
  uint64_t seq = header.seq;

  // Replay the SUPER-EDITS tail of this snapshot's generation: each sealed
  // delta record must extend the hash chain with the next sequence number
  // and a non-regressing counter, and overlays only the shards it names.
  uint64_t tail_records = 0;
  uint64_t tail_bytes = 0;
  bool dirty_tail = false;
  const std::string tail_name = super_edits_name(header.seq);
  if (env_->meta_fs->Exists(tail_name)) {
    auto raw = env_->meta_fs->ReadAll(tail_name);
    if (!raw.ok()) return raw.status();
    bool torn = false;
    for (std::string_view frame : manifest::SplitFrames(raw.value(), &torn)) {
      auto record = sgx::Unseal(env_->meta_platform->sealing_key, frame);
      if (!record.ok()) {
        return Status::AuthFailure("super-manifest edit record seal broken: " +
                                   record.status().message());
      }
      std::string_view rc(record.value());
      manifest::RecordHeader rh;
      uint64_t record_counter = 0;
      if (!manifest::GetHeader(&rc, &rh) ||
          !GetFixed64(&rc, &record_counter)) {
        return Status::Corruption("bad super-manifest edit record");
      }
      if (rh.kind != manifest::kDelta) {
        return Status::AuthFailure(
            "snapshot record spliced into the super-manifest edit log");
      }
      if (rh.seq != seq + 1) {
        return Status::AuthFailure(
            "super-manifest edit log sequence break: record " +
            std::to_string(rh.seq) + " follows " + std::to_string(seq) +
            " (reordered or spliced records)");
      }
      if (rh.prev_chain != chain) {
        return Status::AuthFailure(
            "super-manifest edit log chain mismatch at record " +
            std::to_string(rh.seq));
      }
      if (record_counter < counter_value) {
        return Status::AuthFailure(
            "super-manifest edit record counter regressed");
      }
      uint32_t changed = 0;
      if (!GetVarint32(&rc, &changed) ||
          rc.size() != size_t(changed) * 44) {
        return Status::Corruption("bad super-manifest edit record");
      }
      for (uint32_t i = 0; i < changed; ++i) {
        uint32_t shard = 0;
        if (!GetFixed32(&rc, &shard)) {
          return Status::Corruption("bad super-manifest edit record");
        }
        if (shard >= num_shards_) {
          return Status::Corruption(
              "super-manifest edit record names shard " +
              std::to_string(shard) + " of " + std::to_string(num_shards_));
        }
        std::memcpy(table[shard].data(), rc.data(), 32);
        rc.remove_prefix(32);
        if (!GetFixed64(&rc, &floors[shard])) {
          return Status::Corruption("bad super-manifest edit record");
        }
      }
      meta_enclave_->ChargeHash(record.value().size());
      chain = crypto::Sha256::Digest(record.value());
      seq = rh.seq;
      counter_value = record_counter;
      ++tail_records;
      tail_bytes += 4 + frame.size();
    }
    dirty_tail = torn;
  }

  // Adjudicate freshness on the *final* replayed state: the counter in the
  // newest sealed record (snapshot or delta) is the one whose bump may
  // still be pending after a crash.
  if (options_.rollback_defense) {
    const uint64_t hw = env_->meta_platform->counter.Read();
    if (counter_value < hw) {
      return Status::RollbackDetected(
          "super-manifest counter " + std::to_string(counter_value) +
          " behind hardware counter " + std::to_string(hw));
    }
    if (counter_value == hw + 1) {
      // Crash window between the record's durability and the bump; the
      // sealed counter cannot be forged, so sync the hardware to it.
      env_->meta_platform->counter.Increment();
    } else if (counter_value > hw) {
      return Status::Corruption("super-manifest counter ahead of hardware");
    }
  }

  for (uint32_t i = 0; i < num_shards_; ++i) {
    if (table[i] == crypto::kZeroHash) continue;  // shard fresh at record time
    if (!env_->shard_fs[i]->Exists(shard_manifest_name(i))) {
      return Status::AuthFailure(
          "shard " + std::to_string(i) +
          " had sealed state but its manifest vanished from the untrusted "
          "disk");
    }
    crypto::Hash256 current;
    uint64_t current_last_ts = 0;
    Status s = ShardManifestState(i, &current, &current_last_ts);
    if (!s.ok()) return s;
    if (current == table[i]) continue;  // exact content the super sealed
    // Content differs: legal only when the shard moved *forward* (its
    // manifest records persist between super refreshes). last_ts is
    // monotone across a shard's manifest persists, so an
    // older-but-validly-sealed manifest (single-shard rollback inside a
    // counter-sync window) lands below the recorded floor.
    if (current_last_ts < floors[i]) {
      return Status::AuthFailure(
          "shard " + std::to_string(i) + " manifest (last_ts " +
          std::to_string(current_last_ts) +
          ") rolled back behind the super-manifest floor (" +
          std::to_string(floors[i]) + ")");
    }
  }

  recorded_digests_ = std::move(table);
  recorded_last_ts_ = std::move(floors);
  super_seq_ = seq;
  super_chain_ = chain;
  super_snapshot_seq_ = header.seq;
  super_tail_records_ = tail_records;
  super_tail_bytes_ = tail_bytes;
  have_super_ = true;
  force_super_snapshot_ = dirty_tail;
  super_edits_dir_synced_ = false;
  *found = true;
  return Status::Ok();
}

Status ShardedDb::PersistSuperManifest() {
  // Snapshot every shard's current manifest-log state; the diff against
  // the table the durable log already encodes decides what (if anything)
  // the next record must carry.
  std::vector<crypto::Hash256> digests(num_shards_);
  std::vector<uint64_t> floors(num_shards_);
  for (uint32_t i = 0; i < num_shards_; ++i) {
    Status s = ShardManifestState(i, &digests[i], &floors[i]);
    if (!s.ok()) return s;
  }
  std::vector<uint32_t> changed;
  for (uint32_t i = 0; i < num_shards_; ++i) {
    if (!have_super_ || digests[i] != recorded_digests_[i] ||
        floors[i] != recorded_last_ts_[i]) {
      changed.push_back(i);
    }
  }
  if (have_super_ && changed.empty() && !force_super_snapshot_) {
    // The durable log already pins exactly this state; a record would only
    // burn a counter bump.
    return Status::Ok();
  }

  const bool bump = options_.rollback_defense;
  const uint64_t counter_value =
      env_->meta_platform->counter.Read() + (bump ? 1 : 0);
  const bool snapshot = !have_super_ || force_super_snapshot_ ||
                        options_.manifest_snapshot_edits == 0 ||
                        super_tail_records_ >= options_.manifest_snapshot_edits ||
                        super_tail_bytes_ >= options_.manifest_snapshot_bytes;

  manifest::RecordHeader header;
  header.kind = snapshot ? manifest::kSnapshot : manifest::kDelta;
  header.seq = super_seq_ + 1;
  header.prev_chain = super_chain_;
  std::string payload;
  manifest::PutHeader(&payload, header);
  if (snapshot) {
    PutFixed64(&payload, num_shards_);
    PutFixed64(&payload, counter_value);
    for (uint32_t i = 0; i < num_shards_; ++i) {
      payload.append(reinterpret_cast<const char*>(digests[i].data()), 32);
      PutFixed64(&payload, floors[i]);
    }
  } else {
    PutFixed64(&payload, counter_value);
    PutVarint32(&payload, static_cast<uint32_t>(changed.size()));
    for (uint32_t i : changed) {
      PutFixed32(&payload, i);
      payload.append(reinterpret_cast<const char*>(digests[i].data()), 32);
      PutFixed64(&payload, floors[i]);
    }
  }
  // Two passes inside the enclave: the seal's MAC and the chain digest the
  // next record embeds.
  meta_enclave_->ChargeHash(payload.size());
  meta_enclave_->ChargeHash(payload.size());
  meta_enclave_->ChargeOcall();
  std::string sealed = sgx::Seal(env_->meta_platform->sealing_key, payload);

  if (snapshot) {
    // Same crash-consistent install as the shard manifests: fsync data
    // before the rename, fsync the namespace after it, bump last. The old
    // generation's tail is deleted only after the new snapshot is durable —
    // a crash in between strands a stale tail that recovery ignores by
    // name and garbage-collects.
    Status s = env_->meta_fs->Write(super_tmp_name(), std::move(sealed));
    if (!s.ok()) return s;
    if (options_.sync_writes) {
      s = env_->meta_fs->Sync(super_tmp_name());
      if (!s.ok()) return s;
    }
    s = env_->meta_fs->Rename(super_tmp_name(), super_name());
    if (!s.ok()) return s;
    if (options_.sync_writes) {
      s = env_->meta_fs->SyncDir();
      if (!s.ok()) return s;
    }
    for (const std::string& name :
         env_->meta_fs->List(super_edits_prefix())) {
      if (name != super_edits_name(header.seq)) {
        (void)env_->meta_fs->Delete(name);
      }
    }
    super_snapshot_seq_ = header.seq;
    super_tail_records_ = 0;
    super_tail_bytes_ = 0;
    have_super_ = true;
    force_super_snapshot_ = false;
    super_edits_dir_synced_ = false;
  } else {
    // Delta append: any failure below may leave garbage at the tail's end,
    // so the next persist must supersede the file with a fresh-generation
    // snapshot instead of appending after it.
    std::string frame;
    manifest::AppendFrame(&frame, sealed);
    const std::string tail_name = super_edits_name(super_snapshot_seq_);
    Status s = env_->meta_fs->Append(tail_name, frame);
    if (!s.ok()) {
      force_super_snapshot_ = true;
      return s;
    }
    if (options_.sync_writes) {
      s = env_->meta_fs->Sync(tail_name);
      if (!s.ok()) {
        force_super_snapshot_ = true;
        return s;
      }
      if (!super_edits_dir_synced_) {
        s = env_->meta_fs->SyncDir();
        if (!s.ok()) {
          force_super_snapshot_ = true;
          return s;
        }
        super_edits_dir_synced_ = true;
      }
    }
    ++super_tail_records_;
    super_tail_bytes_ += frame.size();
  }
  super_seq_ = header.seq;
  super_chain_ = crypto::Sha256::Digest(payload);
  recorded_digests_ = std::move(digests);
  recorded_last_ts_ = std::move(floors);
  if (bump) {
    env_->meta_platform->counter.Increment();
    meta_enclave_->ChargeCounterBump();
  }
  return Status::Ok();
}

Status ShardedDb::Put(std::string_view key, std::string_view value) {
  return shards_[ShardOf(key)]->Put(key, value);
}

Status ShardedDb::Delete(std::string_view key) {
  return shards_[ShardOf(key)]->Delete(key);
}

Result<std::optional<std::string>> ShardedDb::Get(std::string_view key) {
  return shards_[ShardOf(key)]->Get(key);
}

Result<ElsmDb::VerifiedRecord> ShardedDb::GetVerified(std::string_view key,
                                                      uint64_t ts_max) {
  return shards_[ShardOf(key)]->GetVerified(key, ts_max);
}

Status ShardedDb::FanOut(const std::vector<uint32_t>& targets,
                         const std::function<Status(size_t, uint32_t)>& fn) {
  if (targets.empty()) return Status::Ok();
  std::vector<Status> statuses(targets.size());
  if (pool_ != nullptr && pool_->size() > 0 && targets.size() > 1) {
    fanout_stats_.parallel_dispatches.fetch_add(1, std::memory_order_relaxed);
    pool_->ParallelFor(targets.size(),
                       [&](size_t i) { statuses[i] = fn(i, targets[i]); });
  } else {
    for (size_t i = 0; i < targets.size(); ++i) {
      statuses[i] = fn(i, targets[i]);
    }
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status ShardedDb::Write(const ElsmDb::WriteBatch& batch) {
  fanout_stats_.batch_writes.fetch_add(1, std::memory_order_relaxed);
  std::vector<ElsmDb::WriteBatch> parts(num_shards_);
  for (const ElsmDb::WriteBatch::Entry& entry : batch.entries) {
    parts[ShardOf(entry.key)].entries.push_back(entry);
  }
  std::vector<uint32_t> targets;
  targets.reserve(num_shards_);
  for (uint32_t i = 0; i < num_shards_; ++i) {
    if (!parts[i].entries.empty()) targets.push_back(i);
  }
  // Each sub-batch is one shard group commit (own WAL append + memtable
  // pass + any auto-flush it triggers); shards share no locks, so the
  // sub-batches proceed fully independently on the pool. Per-shard commit
  // queues compose with the fan-out: every shard runs its own
  // leader/follower cohort over its own WAL, so concurrent ShardedDb
  // writers amortize fsyncs within each shard while different shards sync
  // in parallel (Options::wal_sync_interval_us applies per shard).
  return FanOut(targets, [&](size_t, uint32_t shard) {
    return shards_[shard]->Write(parts[shard]);
  });
}

Result<std::vector<std::optional<std::string>>> ShardedDb::MultiGet(
    const std::vector<std::string>& keys) {
  fanout_stats_.multigets.fetch_add(1, std::memory_order_relaxed);
  // Group key *positions* by owning shard so duplicates each keep their own
  // slot and the output preserves input order by construction.
  std::vector<std::vector<size_t>> groups(num_shards_);
  for (size_t i = 0; i < keys.size(); ++i) {
    groups[ShardOf(keys[i])].push_back(i);
  }
  std::vector<uint32_t> targets;
  targets.reserve(num_shards_);
  for (uint32_t i = 0; i < num_shards_; ++i) {
    if (!groups[i].empty()) targets.push_back(i);
  }
  std::vector<std::optional<std::string>> out(keys.size());
  // Tasks write disjoint slots of `out` (each position belongs to exactly
  // one shard group), so no synchronization beyond the fork-join is needed.
  // Each shard answers its whole key group with ONE batched MultiGet: one
  // snapshot, one ECall, and cache-missing blocks coalesced into
  // Fs::MultiRead batches — instead of a sequential Get per key.
  Status s = FanOut(targets, [&](size_t, uint32_t shard) {
    std::vector<std::string> sub;
    sub.reserve(groups[shard].size());
    for (size_t idx : groups[shard]) sub.push_back(keys[idx]);
    auto got = shards_[shard]->MultiGet(sub);
    if (!got.ok()) return got.status();
    for (size_t k = 0; k < groups[shard].size(); ++k) {
      out[groups[shard][k]] = std::move(got.value()[k]);
    }
    return Status::Ok();
  });
  if (!s.ok()) return s;
  return out;
}

Result<std::vector<lsm::Record>> ShardedDb::Scan(std::string_view k1,
                                                 std::string_view k2) {
  fanout_stats_.scans.fetch_add(1, std::memory_order_relaxed);
  if (options_.deterministic_key_encryption) {
    // Match ElsmDb::Scan: a misconfigured store must surface the error for
    // every range — including ones the short-circuits below would answer
    // without ever consulting a shard.
    return Status::NotSupported(
        "range queries over DE keys require order-preserving encryption");
  }
  // Short-circuit shards that provably cannot intersect the inclusive
  // range [k1, k2] under hash routing: an empty range touches no shard,
  // a single-key range only the key's owner. (Any wider range can hash
  // anywhere, so no other pruning is sound.)
  if (k1 > k2) {
    fanout_stats_.scan_shards_skipped.fetch_add(num_shards_,
                                                std::memory_order_relaxed);
    return std::vector<lsm::Record>();
  }
  std::vector<uint32_t> targets;
  if (k1 == k2) {
    targets.push_back(ShardOf(k1));
    fanout_stats_.scan_shards_skipped.fetch_add(num_shards_ - 1,
                                                std::memory_order_relaxed);
  } else {
    targets.reserve(num_shards_);
    for (uint32_t i = 0; i < num_shards_; ++i) targets.push_back(i);
  }
  fanout_stats_.scan_shard_invocations.fetch_add(targets.size(),
                                                 std::memory_order_relaxed);

  // Fan out: each shard's Scan is completeness-verified against that
  // shard's own trusted digests (inside ElsmDb). The hash partition makes
  // shard key sets disjoint, so merging the verified per-shard results
  // yields a complete, duplicate-free global range.
  std::vector<std::vector<lsm::Record>> results(targets.size());
  Status s = FanOut(targets, [&](size_t slot, uint32_t shard) {
    auto records = shards_[shard]->Scan(k1, k2);
    if (!records.ok()) return records.status();
    results[slot] = std::move(records).value();
    return Status::Ok();
  });
  if (!s.ok()) return s;

  std::vector<std::unique_ptr<lsm::RunIterator>> runs;
  runs.reserve(results.size());
  for (std::vector<lsm::Record>& records : results) {
    std::vector<lsm::RawEntry> run;
    run.reserve(records.size());
    for (lsm::Record& r : records) {
      run.push_back({std::move(r), {}, {}});
    }
    runs.push_back(std::make_unique<lsm::VectorRunIterator>(std::move(run)));
  }

  lsm::MergeIterator merge(std::move(runs), nullptr, nullptr);
  s = merge.Init();
  if (!s.ok()) return s;
  std::vector<lsm::Record> out;
  while (merge.Valid()) {
    meta_enclave_->Copy(merge.record().ByteSize(), /*cross_boundary=*/false);
    out.push_back(merge.TakeAndAdvance());
  }
  if (!merge.status().ok()) return merge.status();
  return out;
}

Status ShardedDb::AllShards(const std::function<Status(ElsmDb&)>& fn) {
  std::vector<uint32_t> targets(num_shards_);
  for (uint32_t i = 0; i < num_shards_; ++i) targets[i] = i;
  return FanOut(targets,
                [&](size_t, uint32_t shard) { return fn(*shards_[shard]); });
}

bool ShardedDb::ShardSick(uint32_t shard) const {
  return shards_[shard]->degraded() ||
         health_[shard]->quarantined.load(std::memory_order_acquire);
}

void ShardedDb::NoteShardResult(uint32_t shard, const Status& s) {
  ShardHealthState& h = *health_[shard];
  if (s.ok()) {
    h.consecutive_failures.store(0, std::memory_order_relaxed);
    h.quarantined.store(false, std::memory_order_release);
    return;
  }
  h.total_failures.fetch_add(1, std::memory_order_relaxed);
  const uint64_t consecutive =
      h.consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  if (consecutive >= kQuarantineAfter) {
    h.quarantined.store(true, std::memory_order_release);
  }
}

Status ShardedDb::MaintenanceFanOut(const std::function<Status(ElsmDb&)>& fn) {
  // Sick shards are skipped, not failed: their error is already known (and
  // point writes to them fail fast inside the shard), while the healthy
  // shards must keep flushing/compacting. TryResume re-admits them.
  std::vector<uint32_t> targets;
  targets.reserve(num_shards_);
  uint32_t skipped = 0;
  for (uint32_t i = 0; i < num_shards_; ++i) {
    if (ShardSick(i)) {
      ++skipped;
      continue;
    }
    targets.push_back(i);
  }
  if (skipped > 0) {
    fanout_stats_.maintenance_shards_skipped.fetch_add(
        skipped, std::memory_order_relaxed);
  }
  return FanOut(targets, [&](size_t, uint32_t shard) {
    Status s = fn(*shards_[shard]);
    NoteShardResult(shard, s);
    return s;
  });
}

ShardedDb::ShardHealthInfo ShardedDb::shard_health(uint32_t shard) const {
  ShardHealthInfo info;
  const ShardHealthState& h = *health_[shard];
  info.consecutive_failures =
      h.consecutive_failures.load(std::memory_order_relaxed);
  info.total_failures = h.total_failures.load(std::memory_order_relaxed);
  if (h.quarantined.load(std::memory_order_acquire)) {
    info.state = ShardHealth::kQuarantined;
  } else if (shards_[shard]->degraded()) {
    info.state = ShardHealth::kDegraded;
  }
  return info;
}

uint32_t ShardedDb::sick_shards() const {
  uint32_t n = 0;
  for (uint32_t i = 0; i < num_shards_; ++i) {
    if (ShardSick(i)) ++n;
  }
  return n;
}

Status ShardedDb::TryResume() {
  std::lock_guard<std::mutex> lock(super_mu_);
  std::vector<uint32_t> targets;
  for (uint32_t i = 0; i < num_shards_; ++i) {
    if (ShardSick(i)) targets.push_back(i);
  }
  // A quarantined-but-not-degraded shard (repeated transient exhaustion)
  // answers its TryResume with Ok, which clears the quarantine through
  // NoteShardResult; a degraded shard must pass its disk probe first.
  return FanOut(targets, [&](size_t, uint32_t shard) {
    Status s = shards_[shard]->TryResume();
    NoteShardResult(shard, s);
    return s;
  });
}

Status ShardedDb::Flush() {
  // Maintenance fans out like the query paths: shards flush concurrently
  // on the pool (each under its own locks), with the same deterministic
  // error selection — the lowest failing shard's status wins, every shard
  // still runs. The super-manifest refresh stays serialized on super_mu_
  // and only happens once every shard's manifest is durable.
  std::lock_guard<std::mutex> lock(super_mu_);
  Status s = MaintenanceFanOut([](ElsmDb& shard) { return shard.Flush(); });
  if (!s.ok()) return s;
  return PersistSuperManifest();
}

Status ShardedDb::CompactAll() {
  std::lock_guard<std::mutex> lock(super_mu_);
  Status s =
      MaintenanceFanOut([](ElsmDb& shard) { return shard.CompactAll(); });
  if (!s.ok()) return s;
  return PersistSuperManifest();
}

void ShardedDb::ScheduleCompaction() {
  for (auto& shard : shards_) shard->ScheduleCompaction();
}

Status ShardedDb::WaitForCompaction() {
  Status first = Status::Ok();
  for (auto& shard : shards_) {
    Status s = shard->WaitForCompaction();
    if (first.ok() && !s.ok()) first = s;
  }
  return first;
}

Status ShardedDb::Close() {
  std::lock_guard<std::mutex> lock(super_mu_);
  if (closed_) return Status::Ok();
  closed_ = true;
  Status first = Status::Ok();
  for (auto& shard : shards_) {
    Status s = shard->Close();
    if (first.ok() && !s.ok()) first = s;
  }
  if (!first.ok()) return first;
  return PersistSuperManifest();
}

uint64_t ShardedDb::now_ns() const {
  uint64_t total = meta_enclave_->now_ns();
  for (const auto& shard : shards_) total += shard->enclave().now_ns();
  return total;
}

}  // namespace elsm
