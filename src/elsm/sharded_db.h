// ShardedDb — hash-partitioned multi-shard router over N independent
// ElsmDb engines (ROADMAP "scaling directions": the paper keeps one
// authenticated LSM per enclave; production scale partitions the keyspace
// so writes, flushes and background compactions proceed per shard instead
// of serializing on one facade lock).
//
// Each shard is a full ElsmDb: its own Fs namespace (untrusted disk),
// WAL, sealed manifest, trusted monotonic counter, enclave instance and —
// when Options::background_compaction is set — its own compaction thread.
// Keys route by a stable 64-bit FNV-1a hash; SCAN fans out per-shard
// verified range scans (each proof checked against that shard's trusted
// digests inside ElsmDb) and k-way merges the already-verified results
// with the lsm::MergeIterator machinery.
//
// Cross-shard fan-out (Options::fanout_threads): Scan, MultiGet and Write
// dispatch their per-shard work onto a shared common::ThreadPool when one
// is configured, turning the router loop into a parallel query engine.
// With fanout_threads == 0 every op visits its shards sequentially on the
// calling thread. Both paths are result- and proof-equivalent: the same
// per-shard verified operations run either way, only the dispatch differs,
// and errors are reported deterministically (the failing shard with the
// lowest index wins, so parallel and sequential calls surface the same
// status). A failure on any shard fails the whole operation — no partial
// results ever escape.
//
// Cross-shard trust (the "super-manifest"): a sealed log binding
//   shard count | meta monotonic counter |
//   per-shard (manifest-log digest, manifest last_ts floor)
// so a malicious host cannot silently drop a whole shard (digest recorded
// but manifest gone -> AuthFailure), swap or replay shard manifests (each
// shard's manifest is sealed under a per-shard derived key ->
// AuthFailure), re-partition the store under a different shard count
// (sealed count mismatch), or roll a single shard back to an
// older-but-validly-sealed manifest inside a counter-sync window: the
// recorded digests may lag the shards (they refresh on open, explicit
// Flush/CompactAll and Close — auto-flushes persist shard manifests in
// between), so a digest mismatch is resolved through the monotone
// last_ts floor — moved forward is benign, behind the floor is an attack.
//
// The super-manifest uses the same delta-log layout as the per-shard
// manifests (src/elsm/manifest_log.h): a sealed SUPER snapshot holding the
// full digest table plus a hash-chained SUPER-EDITS-<gen> tail whose delta
// records carry only the shards whose state changed — O(changed shards)
// per refresh instead of rewriting O(shards) state — with a full snapshot
// every Options::manifest_snapshot_edits records. Refreshes that change
// nothing are skipped entirely (no record, no counter bump).
//
// Not provided: cross-shard atomicity. A WriteBatch spanning shards is
// applied per shard (each sub-batch atomically); timestamps are per-shard.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "crypto/sha256.h"
#include "elsm/elsm_db.h"

namespace elsm {

// The persistent world a sharded store lives in: untrusted disks and
// trusted platforms that survive Close()/reopen (simulated power cycles).
// Pass the same ShardEnv back to ShardedDb::Open to recover. Tests may
// substitute storage::FaultFs instances to crash individual shards.
struct ShardEnv {
  std::shared_ptr<storage::Fs> meta_fs;  // holds the super-manifest
  std::shared_ptr<TrustedPlatform> meta_platform;
  std::vector<std::shared_ptr<storage::Fs>> shard_fs;
  std::vector<std::shared_ptr<TrustedPlatform>> shard_platforms;
};

// Stable key router shared with tests/benches: FNV-1a 64 over the key
// bytes, reduced mod num_shards.
uint32_t ShardForKey(std::string_view key, uint32_t num_shards);

class ShardedDb {
 public:
  // Opens (or recovers) a sharded store. `env` may be empty/null for a
  // fresh store; pass the same env again to reopen. `base` configures every
  // shard; per-shard names/sealing keys are derived internally.
  static Result<std::unique_ptr<ShardedDb>> Open(
      const Options& base, uint32_t num_shards, std::shared_ptr<ShardEnv> env);
  static Result<std::unique_ptr<ShardedDb>> Create(const Options& base,
                                                   uint32_t num_shards);

  ~ShardedDb();

  // --- point ops: routed to the owning shard -------------------------------
  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);
  Result<std::optional<std::string>> Get(std::string_view key);
  Result<ElsmDb::VerifiedRecord> GetVerified(std::string_view key,
                                             uint64_t ts_max = kLatest);
  // Batch write, partitioned per shard; each sub-batch is a single shard
  // group commit, dispatched to the fan-out pool when one is configured.
  // Not atomic across shards: on error some shards may have committed their
  // sub-batch (the returned status is the lowest failing shard's), so the
  // caller must treat every key of the batch as indeterminate.
  Status Write(const ElsmDb::WriteBatch& batch);

  // Batched point lookups: keys are grouped by owning shard, the per-shard
  // groups run on the fan-out pool, and the per-key results are reassembled
  // in input order (duplicate keys allowed — each slot answers for its own
  // position). Every key is individually proof-verified inside its shard,
  // exactly as a lone Get would be. Fail-closed: any per-key failure
  // (AuthFailure & friends) fails the whole call with that shard's status —
  // never a partial result vector.
  Result<std::vector<std::optional<std::string>>> MultiGet(
      const std::vector<std::string>& keys);

  // Verified cross-shard range scan over the inclusive range [k1, k2]:
  // per-shard verified scans (parallel on the fan-out pool), k-way merged
  // into one globally key-ordered result. Shards that provably cannot hold
  // a key of the range are skipped without opening iterators: every shard
  // when k1 > k2, all but ShardOf(k1) when k1 == k2 (hash routing admits no
  // wider pruning; fanout_stats() counts invocations vs skips).
  Result<std::vector<lsm::Record>> Scan(std::string_view k1,
                                        std::string_view k2);

  // --- maintenance: fanned out to every shard (parallel on the fan-out
  // pool, deterministic lowest-failing-shard error selection) ---------------
  Status Flush();
  Status CompactAll();
  void ScheduleCompaction();
  Status WaitForCompaction();
  Status Close();

  // --- per-shard health (transient-fault tolerance) ------------------------
  // Maintenance fan-out tracks each shard's outcomes: a shard whose store
  // is in read-only degraded mode (ENOSPC-class exhaustion), or that
  // failed kQuarantineAfter consecutive maintenance passes, is *sick* —
  // Flush/CompactAll skip it (its failure would be repeated noise and
  // healthy shards must keep getting maintained) until TryResume
  // re-admits it. Point writes routed to a degraded shard still fail fast
  // inside the shard; reads stay fail-closed and keep serving.
  enum class ShardHealth { kHealthy, kDegraded, kQuarantined };
  struct ShardHealthInfo {
    ShardHealth state = ShardHealth::kHealthy;
    uint64_t consecutive_failures = 0;
    uint64_t total_failures = 0;
  };
  ShardHealthInfo shard_health(uint32_t shard) const;
  // Number of shards currently skipped by maintenance fan-out.
  uint32_t sick_shards() const;
  // Fans ElsmDb::TryResume out to every sick shard and re-admits the ones
  // whose probe succeeds. Returns the lowest still-failing shard's status
  // (Ok when every shard is healthy again).
  Status TryResume();

  // --- introspection -------------------------------------------------------
  // Fan-out observability: how often cross-shard ops ran, how many
  // per-shard scans were actually issued vs short-circuited away, and how
  // many ops dispatched in parallel (vs the sequential fallback).
  struct FanoutStats {
    std::atomic<uint64_t> scans{0};
    std::atomic<uint64_t> scan_shard_invocations{0};
    std::atomic<uint64_t> scan_shards_skipped{0};
    std::atomic<uint64_t> multigets{0};
    std::atomic<uint64_t> batch_writes{0};
    std::atomic<uint64_t> parallel_dispatches{0};
    // Shard visits maintenance fan-out skipped because the shard was sick.
    std::atomic<uint64_t> maintenance_shards_skipped{0};
  };
  const FanoutStats& fanout_stats() const { return fanout_stats_; }
  // Block-cache counters summed across every shard's read buffer.
  storage::ReadBufferStats read_cache_stats() const {
    storage::ReadBufferStats total;
    for (const auto& shard : shards_) {
      const storage::ReadBufferStats s = shard->read_cache_stats();
      total.hits += s.hits;
      total.misses += s.misses;
      total.evictions += s.evictions;
      total.invalidations += s.invalidations;
    }
    return total;
  }
  // Drops every shard's cached blocks (bench support: cold-read passes).
  void ClearReadCache() {
    for (const auto& shard : shards_) shard->ClearReadCache();
  }
  // Proof-path node-cache counters summed across every shard's verifier.
  auth::ProofPathCacheStats proof_path_cache_stats() const {
    auth::ProofPathCacheStats total;
    for (const auto& shard : shards_) {
      const auth::ProofPathCacheStats s = shard->proof_path_cache_stats();
      total.lookups += s.lookups;
      total.hits += s.hits;
      total.path_nodes_hashed += s.path_nodes_hashed;
      total.insertions += s.insertions;
      total.evictions += s.evictions;
    }
    return total;
  }
  // The pool cross-shard ops dispatch onto (null = sequential fallback).
  const std::shared_ptr<common::ThreadPool>& fanout_pool() const {
    return pool_;
  }
  uint32_t num_shards() const { return num_shards_; }
  uint32_t ShardOf(std::string_view key) const {
    return ShardForKey(key, num_shards_);
  }
  ElsmDb& shard(uint32_t i) { return *shards_[i]; }
  ShardEnv& env() { return *env_; }
  sgx::Enclave& meta_enclave() { return *meta_enclave_; }
  const Options& options() const { return options_; }
  // Total simulated time across the router and every shard enclave. Each
  // op advances only its shard's clock, so deltas of this sum price
  // individual ops; per-shard clocks model shards running on parallel
  // hardware (see bench/fig_shard_scaling.cc).
  uint64_t now_ns() const;

  static std::string ShardName(const std::string& base_name, uint32_t shard);

 private:
  ShardedDb(const Options& base, uint32_t num_shards,
            std::shared_ptr<ShardEnv> env);

  Status OpenShards();
  // Runs fn(slot, targets[slot]) for every slot — concurrently on the
  // fan-out pool when one is configured and more than one target exists,
  // inline in slot order otherwise. All targets run even after a failure
  // (matching the parallel path, where siblings are already in flight);
  // the returned status is the lowest failing slot's, so both dispatch
  // modes surface identical errors.
  Status FanOut(const std::vector<uint32_t>& targets,
                const std::function<Status(size_t, uint32_t)>& fn);
  // FanOut over every shard (the maintenance paths).
  Status AllShards(const std::function<Status(ElsmDb&)>& fn);
  // AllShards minus the sick shards, with per-shard outcomes folded into
  // the health counters (Flush/CompactAll use this).
  Status MaintenanceFanOut(const std::function<Status(ElsmDb&)>& fn);
  bool ShardSick(uint32_t shard) const;
  void NoteShardResult(uint32_t shard, const Status& s);
  // Verifies the sealed super-manifest against the trusted meta counter and
  // the shard disks (drop/swap/count/rollback-floor checks). Sets
  // *found=false when no super-manifest exists (fresh store candidate).
  Status VerifySuperManifest(bool* found);
  Status PersistSuperManifest();
  // Digest + last_ts of shard's on-disk manifest log (zero/0 when absent).
  // The digest covers the sealed snapshot file plus its live tail file, so
  // it pins the shard's exact authoritative bytes; the last_ts (taken from
  // the newest sealed record) is the monotone floor that lets verification
  // tell a shard that *advanced* past the recorded digest (benign:
  // auto-flushes persist shard manifest records between super refreshes)
  // from one rolled *behind* it.
  Status ShardManifestState(uint32_t shard, crypto::Hash256* digest,
                            uint64_t* last_ts) const;
  std::string shard_manifest_name(uint32_t shard) const {
    return ShardName(options_.name, shard) + "/MANIFEST";
  }
  std::string super_name() const { return options_.name + "/SUPER"; }
  std::string super_tmp_name() const { return options_.name + "/SUPER.tmp"; }
  std::string super_edits_name(uint64_t gen) const;
  std::string super_edits_prefix() const {
    return options_.name + "/SUPER-EDITS-";
  }

  Options options_;
  uint32_t num_shards_;
  std::shared_ptr<ShardEnv> env_;
  std::shared_ptr<sgx::Enclave> meta_enclave_;
  std::vector<std::unique_ptr<ElsmDb>> shards_;
  std::shared_ptr<common::ThreadPool> pool_;  // null = sequential fallback
  FanoutStats fanout_stats_;

  // Serializes super-manifest writers (Flush/CompactAll/Close); routed
  // point ops never take it.
  std::mutex super_mu_;

  // --- super-manifest log position (mutated under super_mu_ / open) --------
  // Mirrors ElsmDb's manifest-log state: seq + payload hash of the newest
  // sealed record, the generation of the current SUPER snapshot (names the
  // SUPER-EDITS tail), tail cadence counters, and dirty-tail/first-persist
  // flags. recorded_* cache the per-shard (digest, last_ts floor) table the
  // durable log currently encodes, so a refresh appends only the shards
  // that changed — and is skipped entirely when none did.
  uint64_t super_seq_ = 0;
  crypto::Hash256 super_chain_ = crypto::kZeroHash;
  uint64_t super_snapshot_seq_ = 0;
  uint64_t super_tail_records_ = 0;
  uint64_t super_tail_bytes_ = 0;
  bool have_super_ = false;
  bool force_super_snapshot_ = false;
  bool super_edits_dir_synced_ = false;
  std::vector<crypto::Hash256> recorded_digests_;
  std::vector<uint64_t> recorded_last_ts_;

  // --- per-shard health ----------------------------------------------------
  // Consecutive maintenance failures after which a shard is quarantined.
  static constexpr uint64_t kQuarantineAfter = 3;
  // Atomics (in unique_ptrs so the vector can size at open): maintenance
  // fan-out updates them from pool threads.
  struct ShardHealthState {
    std::atomic<uint64_t> consecutive_failures{0};
    std::atomic<uint64_t> total_failures{0};
    std::atomic<bool> quarantined{false};
  };
  std::vector<std::unique_ptr<ShardHealthState>> health_;

  bool closed_ = false;
};

}  // namespace elsm
