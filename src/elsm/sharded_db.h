// ShardedDb — hash-partitioned multi-shard router over N independent
// ElsmDb engines (ROADMAP "scaling directions": the paper keeps one
// authenticated LSM per enclave; production scale partitions the keyspace
// so writes, flushes and background compactions proceed per shard instead
// of serializing on one facade lock).
//
// Each shard is a full ElsmDb: its own SimFs namespace (untrusted disk),
// WAL, sealed manifest, trusted monotonic counter, enclave instance and —
// when Options::background_compaction is set — its own compaction thread.
// Keys route by a stable 64-bit FNV-1a hash; SCAN fans out per-shard
// verified range scans (each proof checked against that shard's trusted
// digests inside ElsmDb) and k-way merges the already-verified results
// with the lsm::MergeIterator machinery.
//
// Cross-shard trust (the "super-manifest"): a sealed file binding
//   shard count | meta monotonic counter |
//   per-shard (manifest digest, manifest last_ts floor)
// so a malicious host cannot silently drop a whole shard (digest recorded
// but manifest gone -> AuthFailure), swap or replay shard manifests (each
// shard's manifest is sealed under a per-shard derived key ->
// AuthFailure), re-partition the store under a different shard count
// (sealed count mismatch), or roll a single shard back to an
// older-but-validly-sealed manifest inside a counter-sync window: the
// recorded digests may lag the shards (they refresh on open, explicit
// Flush/CompactAll and Close — auto-flushes persist shard manifests in
// between), so a digest mismatch is resolved through the monotone
// last_ts floor — moved forward is benign, behind the floor is an attack.
//
// Not provided: cross-shard atomicity. A WriteBatch spanning shards is
// applied per shard (each sub-batch atomically); timestamps are per-shard.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "crypto/sha256.h"
#include "elsm/elsm_db.h"

namespace elsm {

// The persistent world a sharded store lives in: untrusted disks and
// trusted platforms that survive Close()/reopen (simulated power cycles).
// Pass the same ShardEnv back to ShardedDb::Open to recover. Tests may
// substitute storage::FaultFs instances to crash individual shards.
struct ShardEnv {
  std::shared_ptr<storage::SimFs> meta_fs;  // holds the super-manifest
  std::shared_ptr<TrustedPlatform> meta_platform;
  std::vector<std::shared_ptr<storage::SimFs>> shard_fs;
  std::vector<std::shared_ptr<TrustedPlatform>> shard_platforms;
};

// Stable key router shared with tests/benches: FNV-1a 64 over the key
// bytes, reduced mod num_shards.
uint32_t ShardForKey(std::string_view key, uint32_t num_shards);

class ShardedDb {
 public:
  // Opens (or recovers) a sharded store. `env` may be empty/null for a
  // fresh store; pass the same env again to reopen. `base` configures every
  // shard; per-shard names/sealing keys are derived internally.
  static Result<std::unique_ptr<ShardedDb>> Open(
      const Options& base, uint32_t num_shards, std::shared_ptr<ShardEnv> env);
  static Result<std::unique_ptr<ShardedDb>> Create(const Options& base,
                                                   uint32_t num_shards);

  ~ShardedDb();

  // --- point ops: routed to the owning shard -------------------------------
  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);
  Result<std::optional<std::string>> Get(std::string_view key);
  Result<ElsmDb::VerifiedRecord> GetVerified(std::string_view key,
                                             uint64_t ts_max = kLatest);
  // Batch write, partitioned per shard; each sub-batch is a single shard
  // group commit. Not atomic across shards.
  Status Write(const ElsmDb::WriteBatch& batch);

  // Verified cross-shard range scan: per-shard verified scans, k-way merged
  // into one globally key-ordered result.
  Result<std::vector<lsm::Record>> Scan(std::string_view k1,
                                        std::string_view k2);

  // --- maintenance: fanned out to every shard ------------------------------
  Status Flush();
  Status CompactAll();
  void ScheduleCompaction();
  Status WaitForCompaction();
  Status Close();

  // --- introspection -------------------------------------------------------
  uint32_t num_shards() const { return num_shards_; }
  uint32_t ShardOf(std::string_view key) const {
    return ShardForKey(key, num_shards_);
  }
  ElsmDb& shard(uint32_t i) { return *shards_[i]; }
  ShardEnv& env() { return *env_; }
  sgx::Enclave& meta_enclave() { return *meta_enclave_; }
  const Options& options() const { return options_; }
  // Total simulated time across the router and every shard enclave. Each
  // op advances only its shard's clock, so deltas of this sum price
  // individual ops; per-shard clocks model shards running on parallel
  // hardware (see bench/fig_shard_scaling.cc).
  uint64_t now_ns() const;

  static std::string ShardName(const std::string& base_name, uint32_t shard);

 private:
  ShardedDb(const Options& base, uint32_t num_shards,
            std::shared_ptr<ShardEnv> env);

  Status OpenShards();
  // Verifies the sealed super-manifest against the trusted meta counter and
  // the shard disks (drop/swap/count/rollback-floor checks). Sets
  // *found=false when no super-manifest exists (fresh store candidate).
  Status VerifySuperManifest(bool* found);
  Status PersistSuperManifest();
  // Digest + last_ts of shard's on-disk manifest (zero/0 when absent). The
  // pair snapshots the same sealed blob: the digest pins exact content, the
  // last_ts is the monotone floor that lets verification tell a shard that
  // *advanced* past the recorded digest (benign: auto-flushes persist shard
  // manifests between super refreshes) from one rolled *behind* it.
  Status ShardManifestState(uint32_t shard, crypto::Hash256* digest,
                            uint64_t* last_ts) const;
  std::string shard_manifest_name(uint32_t shard) const {
    return ShardName(options_.name, shard) + "/MANIFEST";
  }
  std::string super_name() const { return options_.name + "/SUPER"; }
  std::string super_tmp_name() const { return options_.name + "/SUPER.tmp"; }

  Options options_;
  uint32_t num_shards_;
  std::shared_ptr<ShardEnv> env_;
  std::shared_ptr<sgx::Enclave> meta_enclave_;
  std::vector<std::unique_ptr<ElsmDb>> shards_;

  // Serializes super-manifest writers (Flush/CompactAll/Close); routed
  // point ops never take it.
  std::mutex super_mu_;
  bool closed_ = false;
};

}  // namespace elsm
