#include "lsm/bloom.h"

#include <algorithm>

namespace elsm::lsm {
namespace {

constexpr int kNumProbes = 7;

}  // namespace

BloomFilter::BloomFilter(int bits_per_key, uint64_t expected_keys) {
  const uint64_t want_bits =
      std::max<uint64_t>(64, expected_keys * uint64_t(bits_per_key));
  bits_.assign((want_bits + 7) / 8, 0);
}

uint64_t BloomFilter::HashKey(std::string_view key) {
  // 64-bit FNV-1a over the key bytes.
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void BloomFilter::Add(std::string_view key) {
  ++key_count_;
  const size_t nbits = bits_.size() * 8;
  uint64_t h = HashKey(key);
  const uint64_t delta = (h >> 17) | (h << 47);
  for (int i = 0; i < kNumProbes; ++i) {
    const size_t bit = h % nbits;
    bits_[bit / 8] |= uint8_t(1) << (bit % 8);
    h += delta;
  }
}

bool BloomFilter::MayContain(std::string_view key) const {
  if (key_count_ == 0) return false;
  const size_t nbits = bits_.size() * 8;
  uint64_t h = HashKey(key);
  const uint64_t delta = (h >> 17) | (h << 47);
  for (int i = 0; i < kNumProbes; ++i) {
    const size_t bit = h % nbits;
    if ((bits_[bit / 8] & (uint8_t(1) << (bit % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

std::string BloomFilter::Encode() const {
  std::string out;
  out.reserve(bits_.size() + 8);
  for (int i = 0; i < 8; ++i) {
    out.push_back(char((key_count_ >> (8 * i)) & 0xff));
  }
  out.append(bits_.begin(), bits_.end());
  return out;
}

BloomFilter BloomFilter::Decode(std::string_view data) {
  BloomFilter f(10, 8);
  if (data.size() < 8) return f;
  uint64_t count = 0;
  for (int i = 0; i < 8; ++i) {
    count |= uint64_t(uint8_t(data[i])) << (8 * i);
  }
  f.key_count_ = count;
  data.remove_prefix(8);
  f.bits_.assign(data.begin(), data.end());
  if (f.bits_.empty()) f.bits_.assign(8, 0);
  return f;
}

}  // namespace elsm::lsm
