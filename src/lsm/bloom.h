// Bloom filter over data keys. In eLSM the per-level filters live *inside*
// the enclave, so a negative answer is a trusted non-membership oracle: the
// read path can skip a level without fetching an untrusted proof (§5.3,
// "Meta-data authenticity").
//
// The bit array is sized once, up front, from the expected key count —
// levels are rebuilt wholesale at compaction time when the exact count is
// known — and never grows afterwards (growth after inserts would introduce
// false negatives, which for eLSM would be a *completeness violation*).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace elsm::lsm {

class BloomFilter {
 public:
  // `bits_per_key` trades space for false-positive rate (10 ≈ 1%).
  explicit BloomFilter(int bits_per_key = 10, uint64_t expected_keys = 4096);

  void Add(std::string_view key);
  bool MayContain(std::string_view key) const;

  // Serialization for the manifest.
  std::string Encode() const;
  static BloomFilter Decode(std::string_view data);

  size_t bit_count() const { return bits_.size() * 8; }
  size_t byte_size() const { return bits_.size(); }
  uint64_t key_count() const { return key_count_; }

 private:
  static uint64_t HashKey(std::string_view key);

  uint64_t key_count_ = 0;
  std::vector<uint8_t> bits_;
};

}  // namespace elsm::lsm
