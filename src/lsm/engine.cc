#include "lsm/engine.h"

#include <algorithm>

#include "common/coding.h"

namespace elsm::lsm {
namespace {

// Append-order locality probe for memtable charging.
uint64_t KeyProbe(std::string_view key) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

LsmEngine::LsmEngine(LsmOptions options, std::shared_ptr<sgx::Enclave> enclave,
                     std::shared_ptr<storage::Fs> fs)
    : options_(std::move(options)),
      enclave_(std::move(enclave)),
      fs_(std::move(fs)),
      memtable_(std::make_unique<SkipList>()),
      tracker_(std::make_shared<FileTracker>(
          fs_, options_.defer_obsolete_deletion)),
      version_(std::make_shared<Version>(std::vector<LevelMeta>{}, tracker_)),
      wal_(fs_.get(), options_.name + "/wal") {
  memtable_region_ = enclave_->RegisterRegion(options_.memtable_bytes);
  metadata_region_ = enclave_->RegisterRegion(64 * 1024);
  if (options_.read_path == ReadPathKind::kBuffer) {
    read_buffer_ = std::make_unique<storage::ReadBuffer>(
        enclave_, options_.read_buffer_bytes, options_.buffer_placement,
        options_.read_cache_shards);
  }
  if (options_.background_compaction) {
    bg_started_ = true;
    bg_thread_ = std::thread(&LsmEngine::BackgroundLoop, this);
  }
}

LsmEngine::~LsmEngine() {
  StopBackgroundCompaction();
  enclave_->FreeRegion(memtable_region_);
  enclave_->FreeRegion(metadata_region_);
}

uint64_t LsmEngine::LevelCapacity(size_t pos) const {
  uint64_t cap = options_.level1_bytes;
  for (size_t i = 0; i < pos; ++i) cap *= options_.level_ratio;
  return cap;
}

std::string LsmEngine::NewFileName(const char* suffix) {
  char buf[32];
  const uint64_t no = next_file_no_.fetch_add(1, std::memory_order_relaxed);
  std::snprintf(buf, sizeof(buf), "/%06llu%s",
                static_cast<unsigned long long>(no), suffix);
  return options_.name + buf;
}

void LsmEngine::ChargeMetadataAccess(size_t level_pos) const {
  enclave_->AccessRegion(metadata_region_, (level_pos * 4096) % (256 * 1024),
                         64);
}

void LsmEngine::RefreshMetadataFootprint(const std::vector<LevelMeta>& levels) {
  uint64_t bytes = 4096;
  for (const LevelMeta& level : levels) bytes += level.MetadataBytes();
  enclave_->ResizeRegion(metadata_region_, bytes);
}

std::shared_ptr<const Version> LsmEngine::SnapshotVersion() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return version_;
}

std::shared_ptr<const Version> LsmEngine::current_version() const {
  return SnapshotVersion();
}

Status LsmEngine::SyncWal() {
  Status s = wal_.Sync();
  if (!s.ok()) return s;
  // fsync of a freshly created file does not make its directory entry
  // durable (fs.h contract) — a crash could drop the whole WAL and with
  // it every acknowledged write since the last flush. Pay one SyncDir on
  // the first commit of each WAL generation.
  if (!wal_dir_synced_.load(std::memory_order_relaxed)) {
    s = fs_->SyncDir();
    if (!s.ok()) return s;
    wal_dir_synced_.store(true, std::memory_order_relaxed);
  }
  return Status::Ok();
}

Status LsmEngine::RetryIo(const std::function<Status()>& op) {
  common::RetryStats rs;
  Status s = common::RunWithRetry(
      options_.io_retry, op,
      [this](uint64_t ns) { enclave_->Advance(ns); }, &rs);
  NoteRetry(rs);
  return s;
}

void LsmEngine::NoteRetry(const common::RetryStats& stats) {
  if (stats.attempts != 0) {
    stats_.retry_attempts.fetch_add(stats.attempts,
                                    std::memory_order_relaxed);
  }
  if (stats.absorbed != 0) {
    stats_.retries_absorbed.fetch_add(stats.absorbed,
                                      std::memory_order_relaxed);
  }
  if (stats.exhausted != 0) {
    stats_.retries_exhausted.fetch_add(stats.exhausted,
                                       std::memory_order_relaxed);
  }
}

Status LsmEngine::RepairWalTailLocked() {
  if (!wal_dirty_) return Status::Ok();
  const std::string& name = wal_.name();
  if (fs_->Exists(name)) {
    auto size = fs_->FileSize(name);
    if (!size.ok()) return size.status();
    if (size.value() > wal_committed_bytes_) {
      Status s = fs_->Truncate(name, wal_committed_bytes_);
      if (!s.ok()) return s;
      stats_.wal_tail_repairs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  wal_dirty_ = false;
  return Status::Ok();
}

Status LsmEngine::TruncateWalTail(uint64_t committed_bytes) {
  const std::string& name = wal_.name();
  if (fs_->Exists(name)) {
    auto size = fs_->FileSize(name);
    if (!size.ok()) return size.status();
    if (size.value() > committed_bytes) {
      Status s = RetryIo(
          [&] { return fs_->Truncate(name, committed_bytes); });
      if (!s.ok()) return s;
      stats_.wal_tail_repairs.fetch_add(1, std::memory_order_relaxed);
      if (options_.sync_writes) {
        s = RetryIo([&] { return fs_->Sync(name); });
        if (!s.ok()) return s;
      }
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  wal_committed_bytes_ = committed_bytes;
  wal_dirty_ = false;
  return Status::Ok();
}

Status LsmEngine::Put(Record record) {
  std::vector<Record> one;
  one.push_back(std::move(record));
  return CommitGroup(&one);
}

Status LsmEngine::PutBatch(std::vector<Record> records) {
  if (records.empty()) return Status::Ok();
  return CommitGroup(&records);
}

namespace {
// Cohort size cap: a lingering leader stops absorbing stragglers here so a
// single fsync never covers an unbounded queue (bounds both latency for the
// earliest waiter and the repair truncation span on failure).
constexpr size_t kMaxCommitCohort = 128;
}  // namespace

Status LsmEngine::CommitGroup(std::vector<Record>* records) {
  CommitRequest req;
  req.records = records;
  req.cores.reserve(records->size());
  for (const Record& record : *records) {
    req.cores.push_back(record.EncodeCore());
    req.framed_bytes += req.cores.back().size() + storage::kWalFrameOverhead;
  }

  std::unique_lock<std::mutex> queue_lock(commit_mu_);
  commit_queue_.push_back(&req);
  commit_join_cv_.notify_one();  // a lingering leader absorbs this arrival
  while (!req.done && commit_queue_.front() != &req) {
    req.cv.wait(queue_lock);
  }
  if (req.done) return req.status;  // a leader carried this request

  // This writer leads the cohort. With a linger window, wait for stragglers
  // before the barrier: each joiner rides the same fsync for free.
  if (options_.wal_sync_interval_us > 0 && options_.sync_writes) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(options_.wal_sync_interval_us);
    while (commit_queue_.size() < kMaxCommitCohort &&
           commit_join_cv_.wait_until(queue_lock, deadline) !=
               std::cv_status::timeout) {
    }
  }
  const size_t cohort_size = std::min(commit_queue_.size(), kMaxCommitCohort);
  std::vector<CommitRequest*> cohort(commit_queue_.begin(),
                                     commit_queue_.begin() + cohort_size);
  // The cohort stays in the queue while its I/O runs: arrivals line up
  // behind it (front != them, so they wait) and form the next cohort.
  queue_lock.unlock();

  const Status s = CommitCohort(cohort);

  queue_lock.lock();
  for (size_t i = 0; i < cohort_size; ++i) {
    CommitRequest* follower = commit_queue_.front();
    commit_queue_.pop_front();
    if (follower != &req) {
      follower->status = s;
      follower->done = true;
      follower->cv.notify_one();
    }
  }
  if (!commit_queue_.empty()) commit_queue_.front()->cv.notify_one();
  return s;
}

Status LsmEngine::CommitCohort(const std::vector<CommitRequest*>& cohort) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string_view> payloads;
  uint64_t framed_bytes = 0;
  for (const CommitRequest* member : cohort) {
    for (const std::string& core : member->cores) payloads.push_back(core);
    framed_bytes += member->framed_bytes;
  }
  // w3: append the whole cohort to the WAL outside the enclave as one frame
  // group (the world switch and the fsync are group-committed across
  // writers), then make it durable before acknowledging anyone (Fs::Sync
  // contract). A transient fault anywhere in the sequence marks the tail
  // dirty — the unacknowledged frames may sit there torn or unsynced — and
  // the retry truncates back to the committed boundary before appending
  // again, so the WAL never accretes garbage mid-stream. A clean error
  // after exhaustion leaves every cohort record out of both WAL and
  // memtable: the cohort failed atomically and a later attempt starts from
  // the repaired tail.
  Status s = RetryIo([&]() -> Status {
    Status rs = RepairWalTailLocked();
    if (!rs.ok()) return rs;
    rs = wal_.AppendBatch(payloads);
    if (!rs.ok()) {
      wal_dirty_ = true;
      return rs;
    }
    if (options_.sync_writes) {
      rs = SyncWal();  // ONE fsync acknowledges the whole cohort
      if (!rs.ok()) {
        wal_dirty_ = true;
        return rs;
      }
    }
    wal_committed_bytes_ += framed_bytes;
    return Status::Ok();
  });
  if (!s.ok()) {
    for (const CommitRequest* member : cohort) {
      for (const Record& record : *member->records) {
        if (record.type == RecordType::kTombstone) {
          ++stats_.failed_deletes;
        } else {
          ++stats_.failed_puts;
        }
      }
    }
    return s;
  }
  ++stats_.group_commits;
  stats_.group_commit_records += payloads.size();
  // w1: insert into the L0 write buffer inside the enclave, in WAL order.
  // The commit hook fires here too — after durability, before any ack —
  // so the facade's digest chain follows the WAL byte order exactly.
  for (CommitRequest* member : cohort) {
    size_t core_idx = 0;
    for (Record& record : *member->records) {
      if (commit_hook_) commit_hook_(member->cores[core_idx]);
      ++core_idx;
      const uint64_t size = record.ByteSize() + kMemtableEntryOverhead;
      enclave_->AccessRegion(
          memtable_region_,
          memtable_used_.load(std::memory_order_relaxed) %
              options_.memtable_bytes,
          size);
      memtable_used_.fetch_add(size, std::memory_order_relaxed);
      if (record.type == RecordType::kTombstone) {
        ++stats_.deletes;
      } else {
        ++stats_.puts;
      }
      memtable_->Insert(std::move(record));
    }
  }
  return Status::Ok();
}

Result<GetResponse> LsmEngine::Get(std::string_view key, uint64_t ts_max) {
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  PurgeDeadCaches();
  GetResponse resp;
  {
    // L0: the in-enclave memtables are trusted; a hit stops the search. The
    // active memtable is probed first, then the sealed (imm) one — every
    // imm record is strictly older than every active record (the seal is a
    // quiesced watermark), so an active hit is always the newest visible
    // version. The shared lock covers only these probes plus the snapshot
    // grab — the level search below runs lock-free against the immutable
    // snapshot.
    std::shared_lock<std::shared_mutex> lock(mu_);
    enclave_->AccessRegion(memtable_region_,
                           KeyProbe(key) % options_.memtable_bytes, 128);
    if (const Record* r = memtable_->Find(key, ts_max)) {
      resp.memtable_hit = *r;
      resp.snapshot = version_;
      return resp;
    }
    if (imm_ != nullptr) {
      enclave_->AccessRegion(memtable_region_,
                             KeyProbe(key) % options_.memtable_bytes, 128);
      if (const Record* r = imm_->Find(key, ts_max)) {
        resp.memtable_hit = *r;
        resp.snapshot = version_;
        return resp;
      }
    }
    resp.snapshot = version_;
  }

  const std::vector<LevelMeta>& levels = resp.snapshot->levels();
  for (size_t i = 0; i < levels.size(); ++i) {
    ChargeMetadataAccess(i);
    LevelGetResult lr;
    lr.level_pos = i;
    if (levels[i].files.empty() ||
        (options_.use_bloom && !levels[i].bloom.MayContain(key))) {
      lr.bloom_negative = true;
      resp.levels.push_back(std::move(lr));
      continue;
    }
    Status s = LookupInLevel(levels[i], key, ts_max, &lr);
    if (!s.ok()) return s;
    const bool stop = lr.found;
    resp.levels.push_back(std::move(lr));
    if (stop) break;  // early stop (§5.3): deeper levels are provably older
  }
  return resp;
}

std::string LsmEngine::BlockKey(const FileMeta& file,
                                const BlockHandle& block) {
  return file.name + '#' + std::to_string(block.offset);
}

Result<std::shared_ptr<const std::string>> LsmEngine::ReadBlock(
    const FileMeta& file, const BlockHandle& block,
    const PrefetchedBlocks* prefetched) const {
  if (prefetched != nullptr) {
    auto it = prefetched->find(BlockKey(file, block));
    if (it != prefetched->end()) {
      // The batch already paid this block's canonical charges (hit, or
      // ocall + load + verify + install) and a stored failure must replay
      // as-is — a fresh load here would diverge from the batched I/O the
      // fault model already observed.
      stats_.readahead_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  if (options_.read_path == ReadPathKind::kMmap) {
    // Find-or-open under the cache lock, then copy the region handle out (it
    // only pins a blob) so the read + block copy run without serializing
    // concurrent readers.
    std::optional<storage::MmapRegion> region;
    {
      std::lock_guard<std::mutex> lock(mmaps_mu_);
      auto it = mmaps_.find(file.name);
      if (it == mmaps_.end()) {
        auto opened = storage::MmapRegion::Open(*fs_, file.name);
        if (!opened.ok()) return opened.status();
        it = mmaps_.emplace(file.name, std::move(opened).value()).first;
      }
      region = it->second;
    }
    auto view = region->Read(block.offset, block.size);
    if (!view.ok()) return view.status();
    auto bytes = std::make_shared<const std::string>(view.value());
    if (options_.protect_blocks) {
      // SDK-style AES-GCM: decrypt + authenticate in one pass.
      enclave_->ChargeCipher(bytes->size());
      Status s = VerifyBlockMac(*bytes, options_.mac_key, block.mac);
      if (!s.ok()) return s;
    }
    return bytes;
  }

  // Buffer path: the cache holds verified plaintext blocks, so the MAC/
  // decrypt cost is paid once per miss. The cache is keyed by the block
  // digest sealed in the snapshot metadata and verifies loaded bytes
  // against it before admission, so a hit never re-reads or re-hashes.
  auto loader = [this, &file, &block]() -> Result<std::string> {
    auto bytes = fs_->Read(file.name, block.offset, block.size);
    if (!bytes.ok()) return bytes.status();
    if (options_.protect_blocks) {
      // SDK-style AES-GCM: decrypt + authenticate in one pass.
      enclave_->ChargeCipher(bytes.value().size());
      Status s = VerifyBlockMac(bytes.value(), options_.mac_key, block.mac);
      if (!s.ok()) return s;
    }
    return bytes;
  };
  return read_buffer_->Get(
      file.name, block.offset,
      options_.verify_blocks ? block.digest : crypto::kZeroHash, loader);
}

Result<LsmEngine::ParsedBlock> LsmEngine::ReadParsedBlock(
    const FileMeta& file, const BlockHandle& block,
    const PrefetchedBlocks* prefetched) const {
  auto bytes = ReadBlock(file, block, prefetched);
  if (!bytes.ok()) return bytes.status();
  ParsedBlock out;
  out.backing = std::move(bytes).value();
  Status s = ParseBlockInto(*out.backing, block.num_entries, &out.entries);
  if (!s.ok()) return s;
  return out;
}

Result<RawEntry> LsmEngine::FirstHead(const FileMeta& file,
                                      const PrefetchedBlocks* prefetched)
    const {
  auto parsed = ReadParsedBlock(file, file.blocks.front(), prefetched);
  if (!parsed.ok()) return parsed.status();
  if (parsed.value().entries.empty()) return Status::Corruption("empty block");
  return MaterializeEntry(parsed.value().entries.front());
}

Result<RawEntry> LsmEngine::LastHead(const FileMeta& file,
                                     const PrefetchedBlocks* prefetched)
    const {
  auto parsed = ReadParsedBlock(file, file.blocks.back(), prefetched);
  if (!parsed.ok()) return parsed.status();
  const auto& v = parsed.value().entries;
  if (v.empty()) return Status::Corruption("empty block");
  // Walk back from the last entry to its group head (groups never straddle
  // blocks, so the head is in this block).
  size_t i = v.size() - 1;
  while (i > 0 && v[i - 1].record.key == v[i].record.key) --i;
  return MaterializeEntry(v[i]);
}

size_t LsmEngine::ReadBlockBatch(
    const std::vector<std::pair<const FileMeta*, const BlockHandle*>>& blocks,
    PrefetchedBlocks* out) const {
  if (read_buffer_ == nullptr || blocks.empty()) return 0;
  // Dedup within the batch and against earlier windows: each distinct block
  // is read, verified, and admitted at most once per operation.
  std::vector<std::pair<const FileMeta*, const BlockHandle*>> todo;
  std::vector<std::string> todo_keys;
  for (const auto& [file, block] : blocks) {
    std::string key = BlockKey(*file, *block);
    if (out->count(key) > 0) continue;
    out->emplace(key, Result<std::shared_ptr<const std::string>>(
                          Status::IOError("prefetch pending")));
    todo.emplace_back(file, block);
    todo_keys.push_back(std::move(key));
  }
  if (todo.empty()) return 0;

  std::vector<storage::ReadBuffer::BatchRequest> requests;
  requests.reserve(todo.size());
  for (const auto& [file, block] : todo) {
    storage::ReadBuffer::BatchRequest req;
    req.file = file->name;
    req.offset = block->offset;
    req.digest = options_.verify_blocks ? block->digest : crypto::kZeroHash;
    requests.push_back(std::move(req));
  }
  // Post-I/O block decode shared by both loaders, identical to the
  // sequential ReadBlock loader (P1 MAC check + cipher charge per block).
  auto decode = [this](const BlockHandle& block,
                       Result<std::string> bytes) -> Result<std::string> {
    if (!bytes.ok()) return bytes;
    if (options_.protect_blocks) {
      enclave_->ChargeCipher(bytes.value().size());
      Status s = VerifyBlockMac(bytes.value(), options_.mac_key, block.mac);
      if (!s.ok()) return s;
    }
    return bytes;
  };
  auto batch_loader = [this, &todo, &decode](
                          const std::vector<size_t>& leaders,
                          std::vector<Result<std::string>>& loaded) {
    std::vector<storage::ReadRequest> io;
    io.reserve(leaders.size());
    for (size_t li : leaders) {
      io.push_back(storage::ReadRequest{todo[li].first->name,
                                        todo[li].second->offset,
                                        todo[li].second->size});
    }
    auto got = fs_->MultiRead(io);
    for (size_t k = 0; k < leaders.size(); ++k) {
      loaded[leaders[k]] = decode(*todo[leaders[k]].second, std::move(got[k]));
    }
  };
  auto single_loader = [this, &todo,
                        &decode](size_t i) -> Result<std::string> {
    auto bytes = fs_->Read(todo[i].first->name, todo[i].second->offset,
                           todo[i].second->size);
    return decode(*todo[i].second, std::move(bytes));
  };
  auto results = read_buffer_->GetBatch(requests, batch_loader, single_loader);
  for (size_t k = 0; k < todo.size(); ++k) {
    out->at(todo_keys[k]) = std::move(results[k]);
  }
  return todo.size();
}

void LsmEngine::PlanLookupBlocks(
    const LevelMeta& level, std::string_view key,
    std::vector<std::pair<const FileMeta*, const BlockHandle*>>* out) const {
  // Mirrors LookupInLevel's binary searches: the first block the lookup
  // touches is the key's candidate block, or the boundary-witness blocks
  // (LastHead/FirstHead of the bracketing files) when the key misses every
  // file range. Follow-up singleton reads (succ in the next block) stay on
  // the sequential path — they are rare and data-dependent.
  const auto& files = level.files;
  if (files.empty()) return;
  size_t fi = 0;
  {
    size_t lo = 0, hi = files.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (files[mid].largest < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    fi = lo;
  }
  if (fi == files.size()) {
    if (!files.back().blocks.empty()) {
      out->emplace_back(&files.back(), &files.back().blocks.back());
    }
    return;
  }
  if (key < files[fi].smallest) {
    if (!files[fi].blocks.empty()) {
      out->emplace_back(&files[fi], &files[fi].blocks.front());
    }
    if (fi > 0 && !files[fi - 1].blocks.empty()) {
      out->emplace_back(&files[fi - 1], &files[fi - 1].blocks.back());
    }
    return;
  }
  const FileMeta& file = files[fi];
  if (file.blocks.empty()) return;
  size_t bi = 0;
  {
    size_t lo = 0, hi = file.blocks.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (file.blocks[mid].first_key <= key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    bi = lo == 0 ? 0 : lo - 1;
  }
  out->emplace_back(&file, &file.blocks[bi]);
}

std::vector<LsmEngine::MultiGetItem> LsmEngine::MultiGet(
    const std::vector<std::string>& keys, uint64_t ts_max) {
  std::vector<MultiGetItem> out(keys.size());
  if (keys.empty()) return out;
  stats_.gets.fetch_add(keys.size(), std::memory_order_relaxed);
  PurgeDeadCaches();
  std::vector<bool> done(keys.size(), false);
  std::shared_ptr<const Version> snapshot;
  {
    // One shared-lock pass probes the memtables for every key and grabs a
    // single version snapshot — all keys are answered against the same
    // level stack, with the same per-key charges as sequential Gets.
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (size_t i = 0; i < keys.size(); ++i) {
      enclave_->AccessRegion(memtable_region_,
                             KeyProbe(keys[i]) % options_.memtable_bytes, 128);
      if (const Record* r = memtable_->Find(keys[i], ts_max)) {
        out[i].response.memtable_hit = *r;
        done[i] = true;
        continue;
      }
      if (imm_ != nullptr) {
        enclave_->AccessRegion(
            memtable_region_, KeyProbe(keys[i]) % options_.memtable_bytes,
            128);
        if (const Record* r = imm_->Find(keys[i], ts_max)) {
          out[i].response.memtable_hit = *r;
          done[i] = true;
        }
      }
    }
    snapshot = version_;
  }
  for (MultiGetItem& item : out) item.response.snapshot = snapshot;

  const bool batching = options_.multiget_batching &&
                        options_.read_path == ReadPathKind::kBuffer &&
                        read_buffer_ != nullptr;
  const std::vector<LevelMeta>& levels = snapshot->levels();
  for (size_t li = 0; li < levels.size() ; ++li) {
    std::vector<size_t> active;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (!done[i]) active.push_back(i);
    }
    if (active.empty()) break;
    // Pass 1 mirrors Get's per-key metadata charge + bloom skip, and plans
    // the candidate blocks of every key that must consult this level.
    std::vector<std::pair<const FileMeta*, const BlockHandle*>> plan;
    std::vector<size_t> consult;
    for (size_t i : active) {
      ChargeMetadataAccess(li);
      if (levels[li].files.empty() ||
          (options_.use_bloom && !levels[li].bloom.MayContain(keys[i]))) {
        LevelGetResult lr;
        lr.level_pos = li;
        lr.bloom_negative = true;
        out[i].response.levels.push_back(std::move(lr));
        continue;
      }
      consult.push_back(i);
      if (batching) PlanLookupBlocks(levels[li], keys[i], &plan);
    }
    // One MultiRead covers every cache-missing candidate block of this
    // level across all keys; per-key lookups then consume the results.
    PrefetchedBlocks prefetched;
    if (batching && !plan.empty()) {
      const size_t fetched = ReadBlockBatch(plan, &prefetched);
      if (fetched > 0) {
        stats_.multiget_batches.fetch_add(1, std::memory_order_relaxed);
        stats_.multiget_batched_blocks.fetch_add(fetched,
                                                 std::memory_order_relaxed);
      }
    }
    for (size_t i : consult) {
      LevelGetResult lr;
      lr.level_pos = li;
      Status s = LookupInLevel(levels[li], keys[i], ts_max, &lr,
                               prefetched.empty() ? nullptr : &prefetched);
      if (!s.ok()) {
        // Per-key isolation: a failed block fails only the keys that need
        // it; the other keys' lookups keep their own results.
        out[i].status = s;
        done[i] = true;
        continue;
      }
      const bool stop = lr.found;
      out[i].response.levels.push_back(std::move(lr));
      if (stop) done[i] = true;  // early stop, per key
    }
  }
  return out;
}

Status LsmEngine::LookupInLevel(const LevelMeta& level, std::string_view key,
                                uint64_t ts_max, LevelGetResult* out,
                                const PrefetchedBlocks* prefetched) const {
  const auto& files = level.files;
  // First file whose range may contain `key`.
  size_t fi = 0;
  {
    size_t lo = 0, hi = files.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (files[mid].largest < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    fi = lo;
  }

  if (fi == files.size()) {  // key beyond the whole level
    auto pred = LastHead(files.back(), prefetched);
    if (!pred.ok()) return pred.status();
    out->pred = std::move(pred).value();
    return Status::Ok();
  }
  if (key < files[fi].smallest) {  // key falls in a gap before file fi
    auto succ = FirstHead(files[fi], prefetched);
    if (!succ.ok()) return succ.status();
    out->succ = std::move(succ).value();
    if (fi > 0) {
      auto pred = LastHead(files[fi - 1], prefetched);
      if (!pred.ok()) return pred.status();
      out->pred = std::move(pred).value();
    }
    return Status::Ok();
  }

  const FileMeta& file = files[fi];
  // Last block whose first_key <= key.
  size_t bi = 0;
  {
    size_t lo = 0, hi = file.blocks.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (file.blocks[mid].first_key <= key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    bi = lo == 0 ? 0 : lo - 1;
  }

  auto parsed = ReadParsedBlock(file, file.blocks[bi], prefetched);
  if (!parsed.ok()) return parsed.status();
  const std::vector<BlockEntry>& entries = parsed.value().entries;

  // Find the key's group.
  size_t g = 0;
  while (g < entries.size() && entries[g].record.key < key) ++g;
  if (g < entries.size() && entries[g].record.key == key) {
    // Collect the chain prefix: records newer than ts_max, then the result.
    size_t i = g;
    while (i < entries.size() && entries[i].record.key == key &&
           entries[i].record.ts > ts_max) {
      out->chain.push_back(MaterializeEntry(entries[i]));
      ++i;
    }
    if (i < entries.size() && entries[i].record.key == key) {
      out->chain.push_back(MaterializeEntry(entries[i]));
      out->found = true;  // visible version located
    }
    return Status::Ok();
  }

  // Non-membership: bracket the key.
  if (g > 0) {
    // Group head of the last key below `key` (head is in this block).
    size_t j = g - 1;
    while (j > 0 && entries[j - 1].record.key == entries[j].record.key) --j;
    out->pred = MaterializeEntry(entries[j]);
  } else {
    // key < every entry although first_key <= key cannot happen; guard
    // against corrupted metadata by bracketing with the previous file.
    if (fi > 0) {
      auto pred = LastHead(files[fi - 1], prefetched);
      if (!pred.ok()) return pred.status();
      out->pred = std::move(pred).value();
    }
  }
  if (g < entries.size()) {
    out->succ = MaterializeEntry(entries[g]);  // first entry above `key`
  } else if (bi + 1 < file.blocks.size()) {
    auto next = ReadParsedBlock(file, file.blocks[bi + 1], prefetched);
    if (!next.ok()) return next.status();
    if (next.value().entries.empty()) return Status::Corruption("empty block");
    out->succ = MaterializeEntry(next.value().entries.front());
  } else if (fi + 1 < files.size()) {
    auto succ = FirstHead(files[fi + 1], prefetched);
    if (!succ.ok()) return succ.status();
    out->succ = std::move(succ).value();
  }
  return Status::Ok();
}

Result<ScanResponse> LsmEngine::Scan(std::string_view k1,
                                     std::string_view k2) {
  stats_.scans.fetch_add(1, std::memory_order_relaxed);
  PurgeDeadCaches();
  ScanResponse resp;
  {
    // L0: trusted scan of the memtables (newest visible version per key) —
    // active first, then the sealed one for keys the active table does not
    // hold (active versions are strictly newer per key, see Get); the
    // level walk below is lock-free against the snapshot.
    std::shared_lock<std::shared_mutex> lock(mu_);
    enclave_->AccessRegion(memtable_region_, 0, options_.memtable_bytes / 4);
    std::string last_key;
    bool have_last = false;
    for (auto it = memtable_->NewIterator(); it.Valid(); it.Next()) {
      const Record& r = it.record();
      if (r.key < k1 || (have_last && r.key == last_key)) continue;
      if (r.key > k2) break;
      resp.memtable_records.push_back(r);
      last_key = r.key;
      have_last = true;
    }
    if (imm_ != nullptr) {
      std::vector<Record> merged;
      merged.reserve(resp.memtable_records.size());
      auto active_it = resp.memtable_records.begin();
      last_key.clear();
      have_last = false;
      for (auto it = imm_->NewIterator(); it.Valid(); it.Next()) {
        const Record& r = it.record();
        if (r.key < k1 || (have_last && r.key == last_key)) continue;
        if (r.key > k2) break;
        while (active_it != resp.memtable_records.end() &&
               active_it->key < r.key) {
          merged.push_back(std::move(*active_it++));
        }
        if (active_it != resp.memtable_records.end() &&
            active_it->key == r.key) {
          merged.push_back(std::move(*active_it++));  // active wins the key
        } else {
          merged.push_back(r);
        }
        last_key = r.key;
        have_last = true;
      }
      while (active_it != resp.memtable_records.end()) {
        merged.push_back(std::move(*active_it++));
      }
      resp.memtable_records = std::move(merged);
    }
    resp.snapshot = version_;
  }

  const std::vector<LevelMeta>& levels = resp.snapshot->levels();
  for (size_t i = 0; i < levels.size(); ++i) {
    ChargeMetadataAccess(i);
    LevelScanResult lr;
    lr.level_pos = i;
    if (!levels[i].files.empty()) {
      Status s = ScanInLevel(levels[i], k1, k2, &lr);
      if (!s.ok()) return s;
    }
    resp.levels.push_back(std::move(lr));
  }
  return resp;
}

Status LsmEngine::ScanInLevel(const LevelMeta& level, std::string_view k1,
                              std::string_view k2,
                              LevelScanResult* out) const {
  const auto& files = level.files;
  size_t fi = 0;
  {
    size_t lo = 0, hi = files.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (files[mid].largest < k1) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    fi = lo;
  }
  if (fi == files.size()) {  // whole level below the range
    auto pred = LastHead(files.back());
    if (!pred.ok()) return pred.status();
    out->pred = std::move(pred).value();
    return Status::Ok();
  }
  size_t bi = 0;
  if (k1 >= files[fi].smallest) {
    size_t lo = 0, hi = files[fi].blocks.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (files[fi].blocks[mid].first_key <= k1) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    bi = lo == 0 ? 0 : lo - 1;
    if (files[fi].blocks[bi].first_key == k1) {
      // The start block holds nothing below k1; the left-boundary witness
      // lives in the previous block/file.
      if (bi > 0) {
        --bi;
      } else if (fi > 0) {
        auto pred = LastHead(files[fi - 1]);
        if (!pred.ok()) return pred.status();
        out->pred = std::move(pred).value();
      }
    }
  } else if (fi > 0) {
    auto pred = LastHead(files[fi - 1]);
    if (!pred.ok()) return pred.status();
    out->pred = std::move(pred).value();
  }

  // Walk blocks forward collecting group heads until we pass k2. With
  // readahead on, each block the walk is about to touch triggers one
  // MultiRead over the next scan_readahead_blocks blocks of the run — but
  // only blocks with first_key <= k2, which the walk provably visits (a
  // stop block's successors all start above k2), so the batch performs
  // exactly the reads the sequential walk would and charges are identical.
  const bool readahead = read_buffer_ != nullptr &&
                         options_.read_path == ReadPathKind::kBuffer &&
                         options_.scan_readahead_blocks > 0;
  PrefetchedBlocks prefetched;
  std::string prev_key;
  bool have_prev = false;
  for (size_t f = fi; f < files.size(); ++f) {
    for (size_t b = (f == fi ? bi : 0); b < files[f].blocks.size(); ++b) {
      if (readahead &&
          prefetched.count(BlockKey(files[f], files[f].blocks[b])) == 0) {
        std::vector<std::pair<const FileMeta*, const BlockHandle*>> window;
        window.emplace_back(&files[f], &files[f].blocks[b]);
        size_t wf = f, wb = b + 1;
        while (window.size() < options_.scan_readahead_blocks &&
               wf < files.size()) {
          if (wb >= files[wf].blocks.size()) {
            ++wf;
            wb = 0;
            continue;
          }
          const BlockHandle& h = files[wf].blocks[wb];
          if (h.first_key > k2) break;
          window.emplace_back(&files[wf], &h);
          ++wb;
        }
        stats_.readahead_blocks.fetch_add(ReadBlockBatch(window, &prefetched),
                                          std::memory_order_relaxed);
      }
      auto parsed = ReadParsedBlock(files[f], files[f].blocks[b],
                                    readahead ? &prefetched : nullptr);
      if (!parsed.ok()) return parsed.status();
      for (const BlockEntry& e : parsed.value().entries) {
        const bool is_head = !have_prev || e.record.key != prev_key;
        prev_key = e.record.key;
        have_prev = true;
        if (!is_head) continue;
        if (e.record.key < k1) {
          out->pred = MaterializeEntry(e);
        } else if (e.record.key <= k2) {
          out->heads.push_back(MaterializeEntry(e));
        } else {
          out->succ = MaterializeEntry(e);
          return Status::Ok();
        }
      }
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Compaction.
// ---------------------------------------------------------------------------

Status LsmEngine::Flush() {
  std::lock_guard<std::mutex> cl(compaction_mu_);
  return FlushInternal();
}

bool LsmEngine::SealMemtable() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (imm_ != nullptr || memtable_->empty()) return false;
  imm_ = std::move(memtable_);
  imm_used_ = memtable_used_.exchange(0, std::memory_order_relaxed);
  memtable_ = std::make_unique<SkipList>();
  return true;
}

Status LsmEngine::FlushImm() {
  std::lock_guard<std::mutex> cl(compaction_mu_);
  return FlushImmInternal();
}

bool LsmEngine::HasImm() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return imm_ != nullptr;
}

Status LsmEngine::FlushImmInternal() {
  std::vector<RawEntry> run;
  {
    // Writers keep committing into the fresh active memtable throughout;
    // the sealed one is immutable, so the shared lock only fences the
    // pointer read against a concurrent RestoreManifest.
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (imm_ == nullptr) return Status::Ok();
    run.reserve(imm_->size());
    for (auto it = imm_->NewIterator(); it.Valid(); it.Next()) {
      RawEntry e;
      e.record = it.record();
      e.core = e.record.EncodeCore();
      run.push_back(std::move(e));
    }
  }
  stats_.flushes.fetch_add(1, std::memory_order_relaxed);
  // w2: stream the sorted buffer out of the enclave.
  enclave_->AccessRegion(memtable_region_, 0, imm_used_);

  MergeSource source;
  source.depth = -1;
  source.run = std::move(run);
  std::vector<MergeSource> sources;
  sources.push_back(std::move(source));
  const bool as_new_level = !options_.compaction_enabled;
  return CompactStep(std::move(sources), /*target_pos=*/0, as_new_level,
                     MemtableReset::kImm);
}

Status LsmEngine::MaybeCompact() {
  if (!options_.compaction_enabled) return Status::Ok();
  std::lock_guard<std::mutex> cl(compaction_mu_);
  return MaybeCompactInternal();
}

Status LsmEngine::CompactAll() {
  std::lock_guard<std::mutex> cl(compaction_mu_);
  return CompactAllInternal();
}

Status LsmEngine::FlushInternal() {
  // Drain any sealed-but-unflushed memtable first: its records are older
  // than the active ones, and flushing it as its own run keeps the
  // newest-first level order intact.
  Status s = FlushImmInternal();
  if (!s.ok()) return s;
  if (memtable_->empty()) return Status::Ok();
  stats_.flushes.fetch_add(1, std::memory_order_relaxed);

  std::vector<RawEntry> run;
  {
    // Writers are quiesced by the caller (facade holds its write lock); the
    // shared lock still fences engine-level users racing Put against Flush.
    std::shared_lock<std::shared_mutex> lock(mu_);
    run.reserve(memtable_->size());
    for (auto it = memtable_->NewIterator(); it.Valid(); it.Next()) {
      RawEntry e;
      e.record = it.record();
      e.core = e.record.EncodeCore();
      run.push_back(std::move(e));
    }
  }
  // w2: stream the sorted buffer out of the enclave.
  enclave_->AccessRegion(memtable_region_, 0,
                         memtable_used_.load(std::memory_order_relaxed));

  MergeSource source;
  source.depth = -1;
  source.run = std::move(run);
  std::vector<MergeSource> sources;
  sources.push_back(std::move(source));
  const bool as_new_level = !options_.compaction_enabled;
  return CompactStep(std::move(sources), /*target_pos=*/0, as_new_level,
                     MemtableReset::kActive);
}

Status LsmEngine::MaybeCompactInternal() {
  for (size_t i = 0;; ++i) {
    auto base = SnapshotVersion();
    if (i >= base->levels().size()) break;
    if (base->levels()[i].bytes <= LevelCapacity(i)) continue;
    std::vector<MergeSource> sources(1);
    sources[0].depth = static_cast<int>(i);
    Status s = CompactStep(std::move(sources), i + 1, /*insert_as_new=*/false,
                           MemtableReset::kNone);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status LsmEngine::CompactAllInternal() {
  while (true) {
    auto base = SnapshotVersion();
    const auto& levels = base->levels();
    // Find the shallowest non-empty level with something below it.
    size_t first = levels.size();
    for (size_t i = 0; i < levels.size(); ++i) {
      if (!levels[i].files.empty()) {
        first = i;
        break;
      }
    }
    if (first >= levels.size()) return Status::Ok();
    bool deeper = false;
    for (size_t j = first + 1; j < levels.size(); ++j) {
      if (!levels[j].files.empty()) {
        deeper = true;
        break;
      }
    }
    if (!deeper) return Status::Ok();
    // Merge into the next non-empty level.
    size_t target = first + 1;
    while (target < levels.size() && levels[target].files.empty()) ++target;
    std::vector<MergeSource> sources(1);
    sources[0].depth = static_cast<int>(first);
    Status s = CompactStep(std::move(sources), target, /*insert_as_new=*/false,
                           MemtableReset::kNone);
    if (!s.ok()) return s;
  }
}

std::unique_ptr<RunIterator> LsmEngine::MakeSourceIterator(
    const Version& base, MergeSource source) const {
  if (source.depth < 0) {
    return std::make_unique<VectorRunIterator>(std::move(source.run));
  }
  const LevelMeta* level = &base.levels()[static_cast<size_t>(source.depth)];
  std::function<Result<std::shared_ptr<const std::string>>(const FileMeta&)>
      opener;
  if (options_.compaction_readahead_files > 0) {
    // Opt-in batched variant: opening a run file issues one MultiRead over
    // it plus the next K un-prefetched files of the run, so the merge's
    // input I/O is pipelined instead of one synchronous read per file.
    // Unlike Blob (mmap semantics, no read charge), this path pays real
    // file-read charges — hence the 0 default, which keeps legacy costs.
    auto images = std::make_shared<
        std::unordered_map<std::string, std::shared_ptr<const std::string>>>();
    opener = [this, level, images](const FileMeta& file)
        -> Result<std::shared_ptr<const std::string>> {
      enclave_->ChargeOcall();
      enclave_->ChargeMmapSetup();
      auto it = images->find(file.name);
      if (it != images->end()) {
        auto blob = std::move(it->second);
        images->erase(it);
        return blob;
      }
      std::vector<storage::ReadRequest> io;
      io.push_back(storage::ReadRequest{
          file.name, 0, std::numeric_limits<uint64_t>::max()});
      size_t pos = 0;
      while (pos < level->files.size() &&
             level->files[pos].name != file.name) {
        ++pos;
      }
      for (size_t j = pos + 1;
           j < level->files.size() &&
           io.size() < options_.compaction_readahead_files + 1;
           ++j) {
        if (images->count(level->files[j].name) > 0) continue;
        io.push_back(storage::ReadRequest{
            level->files[j].name, 0, std::numeric_limits<uint64_t>::max()});
      }
      auto got = fs_->MultiRead(io);
      for (size_t k = 1; k < io.size(); ++k) {
        if (got[k].ok()) {
          (*images)[io[k].name] = std::make_shared<const std::string>(
              std::move(got[k]).value());
        }
      }
      if (!got[0].ok()) {
        return Status::IOError("no such file: " + file.name);
      }
      return std::make_shared<const std::string>(std::move(got[0]).value());
    };
  } else {
    opener = [this](const FileMeta& file)
        -> Result<std::shared_ptr<const std::string>> {
      // m1: OCall + map the input file; the enclave then streams its blocks
      // straight from untrusted memory — no whole-level copy.
      enclave_->ChargeOcall();
      enclave_->ChargeMmapSetup();
      auto blob = fs_->Blob(file.name);
      if (blob == nullptr) {
        return Status::IOError("no such file: " + file.name);
      }
      return blob;
    };
  }
  auto check = [this](const FileMeta& file, const BlockHandle& block,
                      std::string_view bytes) -> Status {
    (void)file;
    enclave_->UntrustedRead(bytes.size());
    if (options_.protect_blocks) {
      enclave_->ChargeCipher(bytes.size());  // one-pass AES-GCM
      return VerifyBlockMac(bytes, options_.mac_key, block.mac);
    }
    return Status::Ok();
  };
  return std::make_unique<LevelRunIterator>(level, std::move(opener),
                                            std::move(check));
}

void LsmEngine::UpdatePeakResident(uint64_t resident_bytes) {
  uint64_t cur =
      stats_.compaction_peak_resident_bytes.load(std::memory_order_relaxed);
  while (resident_bytes > cur &&
         !stats_.compaction_peak_resident_bytes.compare_exchange_weak(
             cur, resident_bytes, std::memory_order_relaxed)) {
  }
}

Status LsmEngine::StreamCompaction(const Version& base,
                                   std::vector<MergeSource> sources,
                                   std::vector<int> depths, bool to_bottom,
                                   LevelBuild* build, CompactionSeal* seal) {
  CompactionListener* listener = listener_;
  if (listener != nullptr) {
    Status s = listener->OnCompactionBegin(sources.size());
    if (!s.ok()) return s;
    for (size_t i = 0; i < sources.size(); ++i) {
      const LevelMeta* meta =
          depths[i] >= 0 ? &base.levels()[static_cast<size_t>(depths[i])]
                         : nullptr;
      s = listener->OnInputRunBegin(i, depths[i], meta);
      if (!s.ok()) return s;
    }
  }

  MergeIterator::EntryTap tap;
  MergeIterator::RunEnd run_end;
  if (listener != nullptr) {
    tap = [listener](size_t idx, const Record& record, std::string_view core) {
      return listener->OnInputEntry(idx, record, core);
    };
    run_end = [listener](size_t idx) { return listener->OnInputRunEnd(idx); };
  }

  std::vector<std::unique_ptr<RunIterator>> runs;
  runs.reserve(sources.size());
  for (MergeSource& source : sources) {
    runs.push_back(MakeSourceIterator(base, std::move(source)));
  }
  MergeIterator merge(std::move(runs), std::move(tap), std::move(run_end));
  Status s = merge.Init();
  if (!s.ok()) return s;

  // m2: merge groupwise — the resident state is the parsed blocks at the
  // head of each run plus one key group, never a whole level.
  std::vector<Record> group;
  std::vector<std::string> blobs;
  while (merge.Valid()) {
    group.clear();
    const std::string group_key = merge.record().key;
    uint64_t group_bytes = 0;
    while (merge.Valid() && merge.record().key == group_key) {
      Record r = merge.TakeAndAdvance();
      group_bytes += r.ByteSize();
      group.push_back(std::move(r));
    }
    if (!merge.status().ok()) return merge.status();
    UpdatePeakResident(merge.resident_bytes() + group_bytes);

    // Drop policy (§5.4): at the bottom, a tombstone-led group vanishes.
    if (to_bottom && group.front().deleted()) continue;
    if (!options_.keep_old_versions) group.resize(1);

    enclave_->Copy(group.size() * 128, /*cross_boundary=*/false);
    blobs.clear();
    if (listener != nullptr) {
      s = listener->OnOutputGroup(group, &blobs);
      if (!s.ok()) return s;
      if (!blobs.empty() && blobs.size() != group.size()) {
        return Status::InvalidArgument("group proof count mismatch");
      }
    }
    for (size_t j = 0; j < group.size(); ++j) {
      s = AppendOutput(build, group[j],
                       blobs.empty() ? std::string_view() : blobs[j]);
      if (!s.ok()) return s;
    }
  }
  if (!merge.status().ok()) return merge.status();

  if (listener != nullptr) {
    auto sealed = listener->OnOutputEnd();
    if (!sealed.ok()) return sealed.status();
    *seal = std::move(sealed).value();
  }
  return Status::Ok();
}

Status LsmEngine::BufferedCompaction(const Version& base,
                                     std::vector<MergeSource> sources,
                                     std::vector<int> depths, bool to_bottom,
                                     LevelBuild* build, CompactionSeal* seal) {
  // Legacy protocol: whole runs and the whole merged output materialize so
  // OnInputRun/OnOutput see everything at once (required by listeners that
  // embed full Merkle paths — the tree must be finished before any blob).
  std::vector<std::vector<RawEntry>> run_data(sources.size());
  uint64_t resident = 0;
  for (size_t i = 0; i < sources.size(); ++i) {
    if (sources[i].depth < 0) {
      run_data[i] = std::move(sources[i].run);
    } else {
      auto it = MakeSourceIterator(base, std::move(sources[i]));
      Status s = it->Init();
      if (!s.ok()) return s;
      while (it->Valid()) {
        RawEntry e;
        e.core.assign(it->core());
        e.proof_blob.assign(it->proof());
        e.record = it->TakeRecord();
        run_data[i].push_back(std::move(e));
        s = it->Next();
        if (!s.ok()) return s;
      }
    }
    for (const RawEntry& e : run_data[i]) {
      resident += e.record.ByteSize() + e.core.size() + e.proof_blob.size();
    }
  }
  UpdatePeakResident(resident);

  // m2 step (a): authenticate the inputs read from the untrusted world.
  if (listener_ != nullptr) {
    for (size_t i = 0; i < run_data.size(); ++i) {
      const LevelMeta* meta =
          depths[i] >= 0 ? &base.levels()[static_cast<size_t>(depths[i])]
                         : nullptr;
      Status s = listener_->OnInputRun(depths[i], run_data[i], meta);
      if (!s.ok()) return s;
    }
  }

  std::vector<std::unique_ptr<RunIterator>> runs;
  runs.reserve(run_data.size());
  uint64_t reserve = 0;
  for (auto& rd : run_data) reserve += rd.size();
  for (auto& rd : run_data) {
    runs.push_back(std::make_unique<VectorRunIterator>(std::move(rd)));
  }
  MergeIterator merge(std::move(runs), nullptr, nullptr);
  Status s = merge.Init();
  if (!s.ok()) return s;

  std::vector<Record> output;
  output.reserve(reserve);
  std::vector<Record> group;
  while (merge.Valid()) {
    group.clear();
    const std::string group_key = merge.record().key;
    while (merge.Valid() && merge.record().key == group_key) {
      group.push_back(merge.TakeAndAdvance());
    }
    if (!merge.status().ok()) return merge.status();
    if (to_bottom && group.front().deleted()) continue;
    if (!options_.keep_old_versions) group.resize(1);
    for (Record& r : group) output.push_back(std::move(r));
  }
  if (!merge.status().ok()) return merge.status();
  uint64_t output_bytes = 0;
  for (const Record& r : output) output_bytes += r.ByteSize();
  UpdatePeakResident(resident + output_bytes);
  enclave_->Copy(output.size() * 128, /*cross_boundary=*/false);

  // m2 steps (b)+(c): digest the output and generate embedded proofs.
  if (listener_ != nullptr) {
    auto sealed = listener_->OnOutput(output);
    if (!sealed.ok()) return sealed.status();
    *seal = std::move(sealed).value();
    if (!seal->proof_blobs.empty() &&
        seal->proof_blobs.size() != output.size()) {
      return Status::InvalidArgument("seal proof count mismatch");
    }
  }
  for (size_t i = 0; i < output.size(); ++i) {
    s = AppendOutput(build, output[i],
                     seal->proof_blobs.empty() ? std::string_view()
                                               : seal->proof_blobs[i]);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status LsmEngine::CompactStep(std::vector<MergeSource> sources,
                              size_t target_pos, bool insert_as_new,
                              MemtableReset reset) {
  stats_.compactions.fetch_add(1, std::memory_order_relaxed);
  auto base = SnapshotVersion();
  const std::vector<LevelMeta>& levels = base->levels();
  const bool target_exists = !insert_as_new && target_pos < levels.size();

  std::vector<int> upper_depths;
  std::vector<int> depths;
  uint64_t input_entries = 0;
  for (const MergeSource& source : sources) {
    depths.push_back(source.depth);
    if (source.depth >= 0) {
      upper_depths.push_back(source.depth);
      input_entries += levels[static_cast<size_t>(source.depth)].num_records;
    } else {
      input_entries += source.run.size();
    }
  }
  if (target_exists) {
    MergeSource target;
    target.depth = static_cast<int>(target_pos);
    depths.push_back(target.depth);
    input_entries += levels[target_pos].num_records;
    sources.push_back(std::move(target));
  }
  stats_.compaction_bytes_in.fetch_add(input_entries,
                                       std::memory_order_relaxed);

  // Drop policy applies when the output is (or becomes) the deepest data.
  const bool to_bottom =
      insert_as_new ? levels.empty()
                    : (target_pos + 1 >= levels.size() ||
                       [&] {
                         for (size_t j = target_pos + 1; j < levels.size();
                              ++j) {
                           if (!levels[j].files.empty()) return false;
                         }
                         return true;
                       }());

  LevelBuild build(options_.block_bytes,
                   options_.protect_blocks ? options_.mac_key : "");
  build.level.bloom =
      BloomFilter(options_.bloom_bits_per_key,
                  std::max<uint64_t>(input_entries, 16));  // upper bound
  CompactionSeal seal;
  const bool streaming = listener_ == nullptr || listener_->streaming();
  Status s = streaming
                 ? StreamCompaction(*base, std::move(sources), depths,
                                    to_bottom, &build, &seal)
                 : BufferedCompaction(*base, std::move(sources), depths,
                                      to_bottom, &build, &seal);
  if (s.ok()) s = FinalizeLevel(&build, seal);
  if (!s.ok()) {
    AbortLevel(&build);
    return s;
  }
  stats_.compaction_bytes_out.fetch_add(build.records_out,
                                        std::memory_order_relaxed);

  // m3: publish the new version; inputs retire through the file tracker
  // once the last snapshot reading them dies.
  std::vector<LevelMeta> new_levels = levels;
  std::vector<std::string> obsolete;
  auto retire = [&obsolete](const LevelMeta& level) {
    for (const FileMeta& file : level.files) obsolete.push_back(file.name);
    if (!level.tree_file.empty()) obsolete.push_back(level.tree_file);
  };
  if (target_exists) retire(levels[target_pos]);
  for (int depth : upper_depths) {
    retire(levels[static_cast<size_t>(depth)]);
    new_levels[static_cast<size_t>(depth)] = LevelMeta();  // now empty
  }
  const size_t output_pos = insert_as_new ? 0 : target_pos;
  if (insert_as_new) {
    new_levels.insert(new_levels.begin(), std::move(build.level));
  } else if (target_exists) {
    new_levels[target_pos] = std::move(build.level);
  } else {
    new_levels.insert(new_levels.begin() + target_pos, std::move(build.level));
  }
  RefreshMetadataFootprint(new_levels);
  // Mirror the mutation above as a VersionEdit: the cleared upper slots at
  // their original indices first, then the output level (the clears all sit
  // above output_pos, so the insert never shifts them). Replaying these ops
  // over the previous stack reproduces new_levels exactly.
  VersionEdit edit;
  edit.next_file_no = next_file_no_.load(std::memory_order_relaxed);
  for (int depth : upper_depths) {
    VersionEdit::LevelOp clear;
    clear.kind = VersionEdit::OpKind::kSet;
    clear.pos = static_cast<uint32_t>(depth);
    edit.ops.push_back(std::move(clear));
  }
  VersionEdit::LevelOp out_op;
  out_op.kind = (insert_as_new || !target_exists)
                    ? VersionEdit::OpKind::kInsert
                    : VersionEdit::OpKind::kSet;
  out_op.pos = static_cast<uint32_t>(output_pos);
  out_op.level = new_levels[output_pos];
  edit.ops.push_back(std::move(out_op));
  InstallVersion(std::move(new_levels), reset, obsolete, edit.Encode());
  return Status::Ok();
}

Status LsmEngine::AppendOutput(LevelBuild* build, const Record& record,
                               std::string_view proof_blob) {
  if (build->builder.pending_bytes() >= options_.file_bytes &&
      record.key != build->prev_key) {
    Status s = FinishOutputFile(build);
    if (!s.ok()) return s;
  }
  if (record.key != build->prev_key) build->level.bloom.Add(record.key);
  build->builder.Add(record, proof_blob);
  build->prev_key = record.key;
  ++build->records_out;
  return Status::Ok();
}

Status LsmEngine::FinishOutputFile(LevelBuild* build) {
  FileMeta meta;
  std::string contents = build->builder.Finish(&meta);
  if (contents.empty()) return Status::Ok();
  meta.name = NewFileName(".sst");
  if (options_.protect_blocks) {
    // SDK-style whole-file encrypt + MAC (one-pass AES-GCM).
    enclave_->ChargeCipher(contents.size());
  }
  enclave_->ChargeOcall();
  enclave_->Copy(contents.size(), /*cross_boundary=*/true);
  // Retry-safe: Fs::Write is an atomic whole-file replace, so a failed
  // attempt left either nothing or a complete file the next attempt
  // rewrites. The manifest that references this file may persist right
  // after the version swap; the file must already be durable by then.
  Status s = RetryIo([&]() -> Status {
    Status ws = fs_->Write(meta.name, contents);
    if (!ws.ok()) return ws;
    return options_.sync_writes ? fs_->Sync(meta.name) : Status::Ok();
  });
  if (!s.ok()) return s;
  build->level.bytes += meta.size;
  build->level.num_records += meta.num_records;
  if (listener_ != nullptr) listener_->OnTableFileCreated(meta);
  build->level.files.push_back(std::move(meta));
  return Status::Ok();
}

Status LsmEngine::FinalizeLevel(LevelBuild* build, const CompactionSeal& seal) {
  Status s = FinishOutputFile(build);
  if (!s.ok()) return s;
  build->level.root = seal.root;
  build->level.leaf_count = seal.leaf_count;
  if (!seal.tree_payload.empty()) {
    build->level.tree_file = NewFileName(".tree");
    enclave_->ChargeOcall();
    s = RetryIo([&]() -> Status {
      Status ws = fs_->Write(build->level.tree_file, seal.tree_payload);
      if (!ws.ok()) return ws;
      return options_.sync_writes ? fs_->Sync(build->level.tree_file)
                                  : Status::Ok();
    });
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

void LsmEngine::AbortLevel(LevelBuild* build) {
  // Never-installed outputs are unreferenced: delete them directly.
  for (const FileMeta& file : build->level.files) (void)fs_->Delete(file.name);
  if (!build->level.tree_file.empty()) {
    (void)fs_->Delete(build->level.tree_file);
  }
}

void LsmEngine::InstallVersion(std::vector<LevelMeta> levels,
                               MemtableReset reset,
                               const std::vector<std::string>& obsolete_files,
                               std::string encoded_edit) {
  auto next = std::make_shared<Version>(std::move(levels), tracker_);
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    version_ = std::move(next);
    if (reset == MemtableReset::kActive) {
      memtable_ = std::make_unique<SkipList>();
      memtable_used_.store(0, std::memory_order_relaxed);
    } else if (reset == MemtableReset::kImm) {
      imm_.reset();
      imm_used_ = 0;
    }
    if (!encoded_edit.empty()) {
      edit_log_.emplace_back(++edit_seq_, std::move(encoded_edit));
    }
  }
  for (const std::string& name : obsolete_files) tracker_->MarkObsolete(name);
  PurgeDeadCaches();
}

void LsmEngine::PurgeDeadCaches() {
  // Called on version installs and polled by reads: deferred deletions fire
  // on the reader thread that drops the last snapshot, which may never be
  // followed by another install.
  if (!tracker_->has_deleted()) return;
  const std::vector<std::string> deleted = tracker_->DrainDeleted();
  if (deleted.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mmaps_mu_);
    for (const std::string& name : deleted) mmaps_.erase(name);
  }
  for (const std::string& name : deleted) {
    if (read_buffer_ != nullptr) read_buffer_->Invalidate(name);
  }
  std::function<void(const std::vector<std::string>&)> hook;
  {
    std::lock_guard<std::mutex> lock(purge_hook_mu_);
    hook = cache_purge_hook_;
  }
  if (hook) hook(deleted);
}

void LsmEngine::SetCachePurgeHook(
    std::function<void(const std::vector<std::string>&)> hook) {
  std::lock_guard<std::mutex> lock(purge_hook_mu_);
  cache_purge_hook_ = std::move(hook);
}

// ---------------------------------------------------------------------------
// Background compaction.
// ---------------------------------------------------------------------------

void LsmEngine::ScheduleCompaction() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    // Once stopped (close/teardown) requests are dropped — threaded or
    // inline alike: compacting after the final manifest would orphan its
    // files on disk.
    if (bg_stop_) return;
    if (bg_started_) {
      bg_pending_ = true;
      bg_work_cv_.notify_all();
      return;
    }
  }
  // No background thread was ever configured: run the pass inline.
  Status s = MaybeCompact();
  if (!s.ok()) {
    std::lock_guard<std::mutex> lock(bg_mu_);
    if (bg_status_.ok()) bg_status_ = s;
  }
}

void LsmEngine::WaitForCompaction() {
  std::unique_lock<std::mutex> lock(bg_mu_);
  bg_idle_cv_.wait(lock, [&] { return !bg_pending_ && !bg_running_; });
}

Status LsmEngine::TakeBackgroundStatus() {
  std::lock_guard<std::mutex> lock(bg_mu_);
  Status s = bg_status_;
  bg_status_ = Status::Ok();
  return s;
}

void LsmEngine::SetCompactionCallback(std::function<Status()> callback) {
  std::lock_guard<std::mutex> lock(bg_mu_);
  bg_callback_ = std::move(callback);
}

void LsmEngine::StopBackgroundCompaction() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    bg_stop_ = true;
    if (bg_thread_.joinable()) to_join = std::move(bg_thread_);
  }
  bg_work_cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

void LsmEngine::BackgroundLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(bg_mu_);
      bg_work_cv_.wait(lock, [&] { return bg_pending_ || bg_stop_; });
      if (!bg_pending_ && bg_stop_) return;  // drain before exiting
      bg_pending_ = false;
      bg_running_ = true;
    }
    Status s = MaybeCompact();
    std::function<Status()> callback;
    {
      std::lock_guard<std::mutex> lock(bg_mu_);
      if (!s.ok() && bg_status_.ok()) bg_status_ = s;
      callback = bg_callback_;
    }
    // Runs with no engine lock held, so it may take facade locks freely.
    if (callback != nullptr) {
      Status cs = callback();
      if (!cs.ok()) {
        std::lock_guard<std::mutex> lock(bg_mu_);
        if (bg_status_.ok()) bg_status_ = cs;
      }
    }
    {
      std::lock_guard<std::mutex> lock(bg_mu_);
      bg_running_ = false;
    }
    bg_idle_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Manifest & recovery.
// ---------------------------------------------------------------------------

std::string LsmEngine::EncodeManifest(uint64_t* covered_edit_seq) const {
  std::shared_ptr<const Version> snapshot;
  {
    // Capture the stack and the edit sequence under one lock: the snapshot
    // covers exactly the edits logged so far, so trimming through the
    // returned sequence after the snapshot persists never drops an edit the
    // snapshot missed.
    std::shared_lock<std::shared_mutex> lock(mu_);
    snapshot = version_;
    if (covered_edit_seq != nullptr) *covered_edit_seq = edit_seq_;
  }
  std::string out;
  PutVarint64(&out, next_file_no_.load(std::memory_order_relaxed));
  out += EncodeLevels(snapshot->levels());
  return out;
}

Status LsmEngine::RestoreManifest(std::string_view manifest) {
  std::lock_guard<std::mutex> cl(compaction_mu_);
  uint64_t next_no = 0;
  if (!GetVarint64(&manifest, &next_no)) {
    return Status::Corruption("bad manifest header");
  }
  auto levels = DecodeLevels(manifest);
  if (!levels.ok()) return levels.status();
  RefreshMetadataFootprint(levels.value());
  next_file_no_.store(next_no, std::memory_order_relaxed);
  auto next = std::make_shared<Version>(std::move(levels).value(), tracker_);
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    version_ = std::move(next);
    memtable_ = std::make_unique<SkipList>();
    memtable_used_.store(0, std::memory_order_relaxed);
    imm_.reset();
    imm_used_ = 0;
    edit_seq_ = 0;
    edit_log_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(mmaps_mu_);
    mmaps_.clear();
  }
  // The restored stack may reuse file names with different contents; the
  // digest keying already makes stale hits unreachable, but the bytes are
  // dead weight — drop them with the mmap handles.
  if (read_buffer_ != nullptr) read_buffer_->Clear();
  return Status::Ok();
}

std::vector<std::string> LsmEngine::EditsSince(uint64_t since,
                                               uint64_t* newest_seq) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  *newest_seq = edit_seq_;
  std::vector<std::string> out;
  for (const auto& [seq, encoded] : edit_log_) {
    if (seq > since) out.push_back(encoded);
  }
  return out;
}

void LsmEngine::TrimEditsThrough(uint64_t seq) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  size_t keep = 0;
  while (keep < edit_log_.size() && edit_log_[keep].first <= seq) ++keep;
  edit_log_.erase(edit_log_.begin(), edit_log_.begin() + keep);
}

Status LsmEngine::ApplyEdit(std::string_view encoded) {
  std::lock_guard<std::mutex> cl(compaction_mu_);
  auto edit = VersionEdit::Decode(encoded);
  if (!edit.ok()) return edit.status();
  std::vector<LevelMeta> levels = SnapshotVersion()->levels();
  Status s = edit.value().ApplyTo(&levels);
  if (!s.ok()) return s;
  RefreshMetadataFootprint(levels);
  // File numbers only grow across edits; keep the high water monotone even
  // if a replayed record carries a stale snapshot of the atomic.
  uint64_t prev_no = next_file_no_.load(std::memory_order_relaxed);
  if (edit.value().next_file_no > prev_no) {
    next_file_no_.store(edit.value().next_file_no, std::memory_order_relaxed);
  }
  auto next = std::make_shared<Version>(std::move(levels), tracker_);
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    version_ = std::move(next);
  }
  return Status::Ok();
}

void LsmEngine::NoteManifestWrite(bool snapshot, uint64_t bytes) {
  if (snapshot) {
    stats_.manifest_snapshots_written.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.manifest_edits_appended.fetch_add(1, std::memory_order_relaxed);
  }
  stats_.manifest_bytes_written.fetch_add(bytes, std::memory_order_relaxed);
}

Result<storage::WalContents> LsmEngine::ReadWalRecords() const {
  return storage::ReadWal(*fs_, options_.name + "/wal");
}

Status LsmEngine::ReinsertFromWal(Record record) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const uint64_t size = record.ByteSize() + kMemtableEntryOverhead;
  enclave_->AccessRegion(
      memtable_region_,
      memtable_used_.load(std::memory_order_relaxed) % options_.memtable_bytes,
      size);
  memtable_used_.fetch_add(size, std::memory_order_relaxed);
  memtable_->Insert(std::move(record));
  return Status::Ok();
}

void LsmEngine::PurgeObsoleteFiles() {
  tracker_->PurgeParked();
  PurgeDeadCaches();
}

Status LsmEngine::ResetWal() {
  const std::string name = options_.name + "/wal";
  wal_dir_synced_.store(false, std::memory_order_relaxed);
  Status result = Status::Ok();
  if (fs_->Exists(name)) {
    // Retry-safe: an injected transient fault means the unlink did not
    // happen; the vanished-between-attempts check covers a real POSIX
    // EINTR whose unlink may have landed before the interruption.
    result = RetryIo([&]() -> Status {
      Status ds = fs_->Delete(name);
      if (!ds.ok() && !fs_->Exists(name)) return Status::Ok();
      return ds;
    });
    // Make the truncation durable: a crash must not resurrect frames the
    // manifest already claims are flushed (ReplayWal would skip them via
    // flushed_ts, but an honest namespace keeps recovery simple).
    if (result.ok() && options_.sync_writes) {
      result = RetryIo([&] { return fs_->SyncDir(); });
    }
  }
  // A failed *delete* leaves the old offsets valid. But once the file is
  // really gone, tracking must restart with the next WAL generation even
  // when a post-delete SyncDir exhausted its retries — the vanished file's
  // offsets must not leak into the one the next append creates.
  if (fs_->Exists(name)) return result;
  std::unique_lock<std::shared_mutex> lock(mu_);
  wal_committed_bytes_ = 0;
  wal_dirty_ = false;
  return result;
}


}  // namespace elsm::lsm
