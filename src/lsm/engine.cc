#include "lsm/engine.h"

#include <algorithm>

#include "common/coding.h"

namespace elsm::lsm {
namespace {

// Append-order locality probe for memtable charging.
uint64_t KeyProbe(std::string_view key) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

LsmEngine::LsmEngine(LsmOptions options, std::shared_ptr<sgx::Enclave> enclave,
                     std::shared_ptr<storage::SimFs> fs)
    : options_(std::move(options)),
      enclave_(std::move(enclave)),
      fs_(std::move(fs)),
      memtable_(std::make_unique<SkipList>()),
      wal_(fs_.get(), options_.name + "/wal") {
  memtable_region_ = enclave_->RegisterRegion(options_.memtable_bytes);
  metadata_region_ = enclave_->RegisterRegion(64 * 1024);
  if (options_.read_path == ReadPathKind::kBuffer) {
    read_buffer_ = std::make_unique<storage::ReadBuffer>(
        enclave_, options_.read_buffer_bytes, options_.buffer_placement);
  }
}

LsmEngine::~LsmEngine() {
  enclave_->FreeRegion(memtable_region_);
  enclave_->FreeRegion(metadata_region_);
}

uint64_t LsmEngine::LevelCapacity(size_t pos) const {
  uint64_t cap = options_.level1_bytes;
  for (size_t i = 0; i < pos; ++i) cap *= options_.level_ratio;
  return cap;
}

std::string LsmEngine::NewFileName(const char* suffix) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/%06llu%s",
                static_cast<unsigned long long>(next_file_no_++), suffix);
  return options_.name + buf;
}

void LsmEngine::ChargeMetadataAccess(size_t level_pos) const {
  enclave_->AccessRegion(metadata_region_, (level_pos * 4096) % (256 * 1024),
                         64);
}

void LsmEngine::RefreshMetadataFootprint() {
  uint64_t bytes = 4096;
  for (const LevelMeta& level : levels_) bytes += level.MetadataBytes();
  enclave_->ResizeRegion(metadata_region_, bytes);
}

Status LsmEngine::Put(Record record) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  ++stats_.puts;
  const std::string core = record.EncodeCore();
  // w3: append to the WAL outside the enclave. The world switch is group-
  // committed across writers; its amortized share lives in wal_append_ns.
  Status s = wal_.Append(core);
  if (!s.ok()) return s;
  // w1: insert into the L0 write buffer inside the enclave.
  const uint64_t size = record.ByteSize() + 64;
  enclave_->AccessRegion(memtable_region_,
                         memtable_used_ % options_.memtable_bytes, size);
  memtable_used_ += record.ByteSize() + 32;
  memtable_->Insert(std::move(record));
  return Status::Ok();
}

Result<GetResponse> LsmEngine::Get(std::string_view key, uint64_t ts_max) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  GetResponse resp;

  // L0: the in-enclave memtable is trusted; a hit stops the search.
  enclave_->AccessRegion(memtable_region_,
                         KeyProbe(key) % options_.memtable_bytes, 128);
  if (const Record* r = memtable_->Find(key, ts_max)) {
    resp.memtable_hit = *r;
    return resp;
  }

  for (size_t i = 0; i < levels_.size(); ++i) {
    ChargeMetadataAccess(i);
    LevelGetResult lr;
    lr.level_pos = i;
    if (levels_[i].files.empty() ||
        (options_.use_bloom && !levels_[i].bloom.MayContain(key))) {
      lr.bloom_negative = true;
      resp.levels.push_back(std::move(lr));
      continue;
    }
    Status s = LookupInLevel(levels_[i], key, ts_max, &lr);
    if (!s.ok()) return s;
    const bool stop = lr.found;
    resp.levels.push_back(std::move(lr));
    if (stop) break;  // early stop (§5.3): deeper levels are provably older
  }
  return resp;
}

Result<std::shared_ptr<const std::string>> LsmEngine::ReadBlock(
    const FileMeta& file, const BlockHandle& block) const {
  if (options_.read_path == ReadPathKind::kMmap) {
    auto it = mmaps_.find(file.name);
    if (it == mmaps_.end()) {
      auto region = storage::MmapRegion::Open(*fs_, file.name);
      if (!region.ok()) return region.status();
      it = mmaps_.emplace(file.name, std::move(region).value()).first;
    }
    auto view = it->second.Read(block.offset, block.size);
    if (!view.ok()) return view.status();
    auto bytes = std::make_shared<const std::string>(view.value());
    if (options_.protect_blocks) {
      // SDK-style AES-GCM: decrypt + authenticate in one pass.
      enclave_->ChargeCipher(bytes->size());
      Status s = VerifyBlockMac(*bytes, options_.mac_key, block.mac);
      if (!s.ok()) return s;
    }
    return bytes;
  }

  // Buffer path: the cache holds verified plaintext blocks, so the MAC/
  // decrypt cost is paid once per miss.
  auto loader = [this, &file, &block]() -> Result<std::string> {
    auto bytes = fs_->Read(file.name, block.offset, block.size);
    if (!bytes.ok()) return bytes.status();
    if (options_.protect_blocks) {
      // SDK-style AES-GCM: decrypt + authenticate in one pass.
      enclave_->ChargeCipher(bytes.value().size());
      Status s = VerifyBlockMac(bytes.value(), options_.mac_key, block.mac);
      if (!s.ok()) return s;
    }
    return bytes;
  };
  return read_buffer_->Get(file.name, block.offset, loader);
}

Result<std::vector<RawEntry>> LsmEngine::ReadParsedBlock(
    const FileMeta& file, const BlockHandle& block) const {
  auto bytes = ReadBlock(file, block);
  if (!bytes.ok()) return bytes.status();
  return ParseBlock(*bytes.value());
}

Result<RawEntry> LsmEngine::FirstHead(const FileMeta& file) const {
  auto entries = ReadParsedBlock(file, file.blocks.front());
  if (!entries.ok()) return entries.status();
  if (entries.value().empty()) return Status::Corruption("empty block");
  return entries.value().front();
}

Result<RawEntry> LsmEngine::LastHead(const FileMeta& file) const {
  auto entries = ReadParsedBlock(file, file.blocks.back());
  if (!entries.ok()) return entries.status();
  auto& v = entries.value();
  if (v.empty()) return Status::Corruption("empty block");
  // Walk back from the last entry to its group head (groups never straddle
  // blocks, so the head is in this block).
  size_t i = v.size() - 1;
  while (i > 0 && v[i - 1].record.key == v[i].record.key) --i;
  return v[i];
}

Status LsmEngine::LookupInLevel(const LevelMeta& level, std::string_view key,
                                uint64_t ts_max, LevelGetResult* out) const {
  const auto& files = level.files;
  // First file whose range may contain `key`.
  size_t fi = 0;
  {
    size_t lo = 0, hi = files.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (files[mid].largest < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    fi = lo;
  }

  if (fi == files.size()) {  // key beyond the whole level
    auto pred = LastHead(files.back());
    if (!pred.ok()) return pred.status();
    out->pred = std::move(pred).value();
    return Status::Ok();
  }
  if (key < files[fi].smallest) {  // key falls in a gap before file fi
    auto succ = FirstHead(files[fi]);
    if (!succ.ok()) return succ.status();
    out->succ = std::move(succ).value();
    if (fi > 0) {
      auto pred = LastHead(files[fi - 1]);
      if (!pred.ok()) return pred.status();
      out->pred = std::move(pred).value();
    }
    return Status::Ok();
  }

  const FileMeta& file = files[fi];
  // Last block whose first_key <= key.
  size_t bi = 0;
  {
    size_t lo = 0, hi = file.blocks.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (file.blocks[mid].first_key <= key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    bi = lo == 0 ? 0 : lo - 1;
  }

  auto parsed = ReadParsedBlock(file, file.blocks[bi]);
  if (!parsed.ok()) return parsed.status();
  const std::vector<RawEntry>& entries = parsed.value();

  // Find the key's group.
  size_t g = 0;
  while (g < entries.size() && entries[g].record.key < key) ++g;
  if (g < entries.size() && entries[g].record.key == key) {
    // Collect the chain prefix: records newer than ts_max, then the result.
    size_t i = g;
    while (i < entries.size() && entries[i].record.key == key &&
           entries[i].record.ts > ts_max) {
      out->chain.push_back(entries[i]);
      ++i;
    }
    if (i < entries.size() && entries[i].record.key == key) {
      out->chain.push_back(entries[i]);
      out->found = true;  // visible version located
    }
    return Status::Ok();
  }

  // Non-membership: bracket the key.
  if (g > 0) {
    // Group head of the last key below `key` (head is in this block).
    size_t j = g - 1;
    while (j > 0 && entries[j - 1].record.key == entries[j].record.key) --j;
    out->pred = entries[j];
  } else {
    // key < every entry although first_key <= key cannot happen; guard
    // against corrupted metadata by bracketing with the previous file.
    if (fi > 0) {
      auto pred = LastHead(files[fi - 1]);
      if (!pred.ok()) return pred.status();
      out->pred = std::move(pred).value();
    }
  }
  if (g < entries.size()) {
    out->succ = entries[g];  // first entry above `key` is a group head
  } else if (bi + 1 < file.blocks.size()) {
    auto next = ReadParsedBlock(file, file.blocks[bi + 1]);
    if (!next.ok()) return next.status();
    if (next.value().empty()) return Status::Corruption("empty block");
    out->succ = next.value().front();
  } else if (fi + 1 < files.size()) {
    auto succ = FirstHead(files[fi + 1]);
    if (!succ.ok()) return succ.status();
    out->succ = std::move(succ).value();
  }
  return Status::Ok();
}

Result<ScanResponse> LsmEngine::Scan(std::string_view k1,
                                     std::string_view k2) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  stats_.scans.fetch_add(1, std::memory_order_relaxed);
  ScanResponse resp;

  // L0: trusted scan of the memtable (newest visible version per key).
  enclave_->AccessRegion(memtable_region_, 0, options_.memtable_bytes / 4);
  std::string last_key;
  bool have_last = false;
  for (auto it = memtable_->NewIterator(); it.Valid(); it.Next()) {
    const Record& r = it.record();
    if (r.key < k1 || (have_last && r.key == last_key)) continue;
    if (r.key > k2) break;
    resp.memtable_records.push_back(r);
    last_key = r.key;
    have_last = true;
  }

  for (size_t i = 0; i < levels_.size(); ++i) {
    ChargeMetadataAccess(i);
    LevelScanResult lr;
    lr.level_pos = i;
    if (!levels_[i].files.empty()) {
      Status s = ScanInLevel(levels_[i], k1, k2, &lr);
      if (!s.ok()) return s;
    }
    resp.levels.push_back(std::move(lr));
  }
  return resp;
}

Status LsmEngine::ScanInLevel(const LevelMeta& level, std::string_view k1,
                              std::string_view k2,
                              LevelScanResult* out) const {
  const auto& files = level.files;
  size_t fi = 0;
  {
    size_t lo = 0, hi = files.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (files[mid].largest < k1) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    fi = lo;
  }
  if (fi == files.size()) {  // whole level below the range
    auto pred = LastHead(files.back());
    if (!pred.ok()) return pred.status();
    out->pred = std::move(pred).value();
    return Status::Ok();
  }
  size_t bi = 0;
  if (k1 >= files[fi].smallest) {
    size_t lo = 0, hi = files[fi].blocks.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (files[fi].blocks[mid].first_key <= k1) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    bi = lo == 0 ? 0 : lo - 1;
    if (files[fi].blocks[bi].first_key == k1) {
      // The start block holds nothing below k1; the left-boundary witness
      // lives in the previous block/file.
      if (bi > 0) {
        --bi;
      } else if (fi > 0) {
        auto pred = LastHead(files[fi - 1]);
        if (!pred.ok()) return pred.status();
        out->pred = std::move(pred).value();
      }
    }
  } else if (fi > 0) {
    auto pred = LastHead(files[fi - 1]);
    if (!pred.ok()) return pred.status();
    out->pred = std::move(pred).value();
  }

  // Walk blocks forward collecting group heads until we pass k2.
  std::string prev_key;
  bool have_prev = false;
  for (size_t f = fi; f < files.size(); ++f) {
    for (size_t b = (f == fi ? bi : 0); b < files[f].blocks.size(); ++b) {
      auto parsed = ReadParsedBlock(files[f], files[f].blocks[b]);
      if (!parsed.ok()) return parsed.status();
      for (const RawEntry& e : parsed.value()) {
        const bool is_head = !have_prev || e.record.key != prev_key;
        prev_key = e.record.key;
        have_prev = true;
        if (!is_head) continue;
        if (e.record.key < k1) {
          out->pred = e;
        } else if (e.record.key <= k2) {
          out->heads.push_back(e);
        } else {
          out->succ = e;
          return Status::Ok();
        }
      }
    }
  }
  return Status::Ok();
}

Result<std::vector<RawEntry>> LsmEngine::LoadLevel(
    const LevelMeta& level) const {
  std::vector<RawEntry> run;
  run.reserve(level.num_records);
  for (const FileMeta& file : level.files) {
    // m1: OCall to load the input file into untrusted memory, then the
    // enclave streams it.
    enclave_->ChargeOcall();
    auto bytes = fs_->ReadAll(file.name);
    if (!bytes.ok()) return bytes.status();
    enclave_->UntrustedRead(bytes.value().size());
    for (const BlockHandle& block : file.blocks) {
      if (block.offset + block.size > bytes.value().size()) {
        return Status::Corruption("block beyond file");
      }
      const std::string_view view(bytes.value().data() + block.offset,
                                  block.size);
      if (options_.protect_blocks) {
        enclave_->ChargeCipher(view.size());  // one-pass AES-GCM
        Status s = VerifyBlockMac(view, options_.mac_key, block.mac);
        if (!s.ok()) return s;
      }
      auto parsed = ParseBlock(view);
      if (!parsed.ok()) return parsed.status();
      for (RawEntry& e : parsed.value()) run.push_back(std::move(e));
    }
  }
  return run;
}

Status LsmEngine::Flush() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (memtable_->empty()) return Status::Ok();
  ++stats_.flushes;

  std::vector<RawEntry> run;
  run.reserve(memtable_->size());
  for (auto it = memtable_->NewIterator(); it.Valid(); it.Next()) {
    RawEntry e;
    e.record = it.record();
    e.core = e.record.EncodeCore();
    run.push_back(std::move(e));
  }
  // w2: stream the sorted buffer out of the enclave.
  enclave_->AccessRegion(memtable_region_, 0, memtable_used_);

  const bool as_new_level = !options_.compaction_enabled;
  Status s = MergeRuns(std::move(run), /*upper_depth=*/-1, /*target_pos=*/0,
                       as_new_level);
  if (!s.ok()) return s;
  memtable_ = std::make_unique<SkipList>();
  memtable_used_ = 0;
  return Status::Ok();
}

Status LsmEngine::MaybeCompact() {
  if (!options_.compaction_enabled) return Status::Ok();
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].bytes <= LevelCapacity(i)) continue;
    auto upper = LoadLevel(levels_[i]);
    if (!upper.ok()) return upper.status();
    Status s = MergeRuns(std::move(upper).value(), static_cast<int>(i), i + 1,
                         /*insert_as_new=*/false);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status LsmEngine::CompactAll() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  while (true) {
    // Find the shallowest non-empty level with something below it.
    size_t first = levels_.size();
    for (size_t i = 0; i < levels_.size(); ++i) {
      if (!levels_[i].files.empty()) {
        first = i;
        break;
      }
    }
    if (first >= levels_.size()) return Status::Ok();
    bool deeper = false;
    for (size_t j = first + 1; j < levels_.size(); ++j) {
      if (!levels_[j].files.empty()) {
        deeper = true;
        break;
      }
    }
    if (!deeper) return Status::Ok();
    auto upper = LoadLevel(levels_[first]);
    if (!upper.ok()) return upper.status();
    // Merge into the next non-empty level.
    size_t target = first + 1;
    while (target < levels_.size() && levels_[target].files.empty()) ++target;
    Status s = MergeRuns(std::move(upper).value(), static_cast<int>(first),
                         target, /*insert_as_new=*/false);
    if (!s.ok()) return s;
  }
}

Status LsmEngine::MergeRuns(std::vector<RawEntry> upper, int upper_depth,
                            size_t target_pos, bool insert_as_new) {
  ++stats_.compactions;
  const bool target_exists = !insert_as_new && target_pos < levels_.size();

  std::vector<RawEntry> lower;
  if (target_exists && !levels_[target_pos].files.empty()) {
    auto loaded = LoadLevel(levels_[target_pos]);
    if (!loaded.ok()) return loaded.status();
    lower = std::move(loaded).value();
  }

  // m2 step (a): authenticate the inputs read from the untrusted world.
  if (listener_ != nullptr) {
    const LevelMeta* upper_meta =
        upper_depth >= 0 ? &levels_[size_t(upper_depth)] : nullptr;
    Status s = listener_->OnInputRun(upper_depth, upper, upper_meta);
    if (!s.ok()) return s;
    if (target_exists) {
      s = listener_->OnInputRun(static_cast<int>(target_pos), lower,
                                &levels_[target_pos]);
      if (!s.ok()) return s;
    }
  }
  stats_.compaction_bytes_in += upper.size() + lower.size();

  // Merge the two sorted runs (key asc, ts desc); the upper run holds the
  // newer records so on equal ordering it wins.
  std::vector<Record> merged;
  merged.reserve(upper.size() + lower.size());
  InternalKeyLess less;
  size_t a = 0, b = 0;
  while (a < upper.size() || b < lower.size()) {
    if (b >= lower.size() ||
        (a < upper.size() && !less(lower[b].record, upper[a].record))) {
      merged.push_back(std::move(upper[a].record));
      ++a;
    } else {
      merged.push_back(std::move(lower[b].record));
      ++b;
    }
  }

  // Drop policy: when the output is (or becomes) the deepest data, a key
  // group whose newest record is a tombstone is physically dropped (§5.4).
  const bool to_bottom =
      insert_as_new ? levels_.empty()
                    : (target_pos + 1 >= levels_.size() ||
                       [&] {
                         for (size_t j = target_pos + 1; j < levels_.size();
                              ++j) {
                           if (!levels_[j].files.empty()) return false;
                         }
                         return true;
                       }());
  std::vector<Record> output;
  output.reserve(merged.size());
  for (size_t i = 0; i < merged.size();) {
    size_t j = i;
    while (j < merged.size() && merged[j].key == merged[i].key) ++j;
    const bool drop_group = to_bottom && merged[i].deleted();
    if (!drop_group) {
      if (options_.keep_old_versions) {
        for (size_t k = i; k < j; ++k) output.push_back(std::move(merged[k]));
      } else {
        output.push_back(std::move(merged[i]));
      }
    }
    i = j;
  }
  enclave_->Copy(output.size() * 128, /*cross_boundary=*/false);

  // m2 steps (b)+(c): digest the output and generate embedded proofs.
  CompactionSeal seal;
  if (listener_ != nullptr) {
    auto sealed = listener_->OnOutput(output);
    if (!sealed.ok()) return sealed.status();
    seal = std::move(sealed).value();
    if (!seal.proof_blobs.empty() && seal.proof_blobs.size() != output.size()) {
      return Status::InvalidArgument("seal proof count mismatch");
    }
  }

  LevelMeta fresh;
  Status s = WriteLevel(output, seal, &fresh);
  if (!s.ok()) return s;
  stats_.compaction_bytes_out += output.size();

  // m3: install the new level, drop the inputs.
  if (target_exists) DropLevelFiles(levels_[target_pos]);
  if (upper_depth >= 0) {
    DropLevelFiles(levels_[size_t(upper_depth)]);
    levels_[size_t(upper_depth)] = LevelMeta();  // now an empty level
  }
  if (insert_as_new) {
    levels_.insert(levels_.begin(), std::move(fresh));
  } else if (target_exists) {
    levels_[target_pos] = std::move(fresh);
  } else {
    levels_.insert(levels_.begin() + target_pos, std::move(fresh));
  }
  RefreshMetadataFootprint();
  return Status::Ok();
}

Status LsmEngine::WriteLevel(const std::vector<Record>& output,
                             const CompactionSeal& seal, LevelMeta* out) {
  LevelMeta level;
  level.bloom = BloomFilter(options_.bloom_bits_per_key,
                            std::max<uint64_t>(output.size(), 16));
  level.root = seal.root;
  level.leaf_count = seal.leaf_count;

  SSTableBuilder builder(options_.block_bytes,
                         options_.protect_blocks ? options_.mac_key : "");
  auto finish_file = [&]() -> Status {
    FileMeta meta;
    std::string contents = builder.Finish(&meta);
    if (contents.empty()) return Status::Ok();
    meta.name = NewFileName(".sst");
    if (options_.protect_blocks) {
      // SDK-style whole-file encrypt + MAC (one-pass AES-GCM).
      enclave_->ChargeCipher(contents.size());
    }
    enclave_->ChargeOcall();
    enclave_->Copy(contents.size(), /*cross_boundary=*/true);
    Status s = fs_->Write(meta.name, std::move(contents));
    if (!s.ok()) return s;
    level.bytes += meta.size;
    level.num_records += meta.num_records;
    if (listener_ != nullptr) listener_->OnTableFileCreated(meta);
    level.files.push_back(std::move(meta));
    return Status::Ok();
  };

  std::string prev_key;
  for (size_t i = 0; i < output.size(); ++i) {
    const Record& r = output[i];
    if (builder.pending_bytes() >= options_.file_bytes && r.key != prev_key) {
      Status s = finish_file();
      if (!s.ok()) return s;
    }
    if (r.key != prev_key) level.bloom.Add(r.key);
    builder.Add(r, seal.proof_blobs.empty() ? std::string_view()
                                            : seal.proof_blobs[i]);
    prev_key = r.key;
  }
  Status s = finish_file();
  if (!s.ok()) return s;

  if (!seal.tree_payload.empty()) {
    level.tree_file = NewFileName(".tree");
    enclave_->ChargeOcall();
    s = fs_->Write(level.tree_file, seal.tree_payload);
    if (!s.ok()) return s;
  }
  *out = std::move(level);
  return Status::Ok();
}

void LsmEngine::DropLevelFiles(const LevelMeta& level) {
  for (const FileMeta& file : level.files) {
    mmaps_.erase(file.name);
    if (read_buffer_ != nullptr) read_buffer_->Invalidate(file.name);
    (void)fs_->Delete(file.name);
  }
  if (!level.tree_file.empty()) {
    mmaps_.erase(level.tree_file);
    (void)fs_->Delete(level.tree_file);
  }
}

std::string LsmEngine::EncodeManifest() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::string out;
  PutVarint64(&out, next_file_no_);
  out += EncodeLevels(levels_);
  return out;
}

Status LsmEngine::RestoreManifest(std::string_view manifest) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  uint64_t next_no = 0;
  if (!GetVarint64(&manifest, &next_no)) {
    return Status::Corruption("bad manifest header");
  }
  auto levels = DecodeLevels(manifest);
  if (!levels.ok()) return levels.status();
  next_file_no_ = next_no;
  levels_ = std::move(levels).value();
  memtable_ = std::make_unique<SkipList>();
  memtable_used_ = 0;
  mmaps_.clear();
  RefreshMetadataFootprint();
  return Status::Ok();
}

Result<storage::WalContents> LsmEngine::ReadWalRecords() const {
  return storage::ReadWal(*fs_, options_.name + "/wal");
}

Status LsmEngine::ReinsertFromWal(Record record) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const uint64_t size = record.ByteSize() + 64;
  enclave_->AccessRegion(memtable_region_,
                         memtable_used_ % options_.memtable_bytes, size);
  memtable_used_ += record.ByteSize() + 32;
  memtable_->Insert(std::move(record));
  return Status::Ok();
}

Status LsmEngine::ResetWal() {
  const std::string name = options_.name + "/wal";
  if (fs_->Exists(name)) return fs_->Delete(name);
  return Status::Ok();
}

uint64_t LsmEngine::wal_bytes() const {
  auto size = fs_->FileSize(options_.name + "/wal");
  return size.ok() ? size.value() : 0;
}

}  // namespace elsm::lsm
