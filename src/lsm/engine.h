// LsmEngine: a LevelDB-class LSM store over the simulated enclave substrate.
//
// Layout (paper §5.1): L0 is the in-enclave memtable; disk levels are a
// stack of sorted runs, shallowest first (levels()[0] is the paper's L1).
// Each disk level is one sorted run split into SSTable files. Compaction is
// the paper's basic form — merge a full level into the next one.
//
// The engine is "vanilla": it knows nothing about Merkle trees. It exposes
// the two integration points the paper uses for RocksDB (§5.5.3):
//   * CompactionListener::OnInputRun / OnOutput — the Filter() /
//     OnTableFileCreated() analogue through which auth verifies compaction
//     inputs and seals outputs (root, leaf count, proof blobs, tree sidecar);
//   * opaque per-record proof blobs stored alongside records in SSTables.
//
// Read paths (§5.5.1): mmap (direct untrusted-memory access) or a
// user-space ReadBuffer placed outside (P2) or inside (P1) the enclave.
// With `protect_blocks` (P1) every block carries an HMAC checked on load
// and the engine charges SDK-style encrypt/decrypt costs.
//
// Thread safety: a shared_mutex allows concurrent Get/Scan; Put/Flush/
// compaction take the exclusive lock (LevelDB-style single writer).
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "lsm/record.h"
#include "lsm/skiplist.h"
#include "lsm/sstable.h"
#include "lsm/version.h"
#include "sgxsim/enclave.h"
#include "storage/mmap.h"
#include "storage/read_buffer.h"
#include "storage/simfs.h"
#include "storage/wal.h"

namespace elsm::lsm {

enum class ReadPathKind { kMmap, kBuffer };

struct LsmOptions {
  std::string name = "db";
  uint64_t memtable_bytes = 64 << 10;
  uint64_t level1_bytes = 256 << 10;
  uint32_t level_ratio = 4;
  uint64_t block_bytes = 4096;
  uint64_t file_bytes = 64 << 10;
  int bloom_bits_per_key = 10;
  bool use_bloom = true;
  bool compaction_enabled = true;
  ReadPathKind read_path = ReadPathKind::kMmap;
  uint64_t read_buffer_bytes = 8 << 20;
  storage::BufferPlacement buffer_placement =
      storage::BufferPlacement::kOutsideEnclave;
  // eLSM-P1 file-granularity protection: per-block HMAC + cipher charges.
  bool protect_blocks = false;
  std::string mac_key = "elsm-p1-file-key";
  // Keep superseded versions of a key during compaction (eLSM chains need
  // them for time-travel GETs); tombstone-covered records are still dropped
  // when merging into the deepest level.
  bool keep_old_versions = true;
};

// Everything a CompactionListener returns to seal a freshly built level.
struct CompactionSeal {
  std::vector<std::string> proof_blobs;  // aligned with output records
  crypto::Hash256 root = crypto::kZeroHash;
  uint64_t leaf_count = 0;
  std::string tree_payload;  // written as the level's sidecar when non-empty
};

class CompactionListener {
 public:
  virtual ~CompactionListener() = default;
  // Called once per input run in search order. src_depth == -1 means the
  // memtable (trusted, blobs empty); otherwise it is the level position.
  // `meta` is null for the memtable run. Returning non-OK aborts the merge.
  virtual Status OnInputRun(int src_depth, const std::vector<RawEntry>& run,
                            const LevelMeta* meta) {
    (void)src_depth;
    (void)run;
    (void)meta;
    return Status::Ok();
  }
  // Called with the merged output before any file is written. The seal's
  // proof_blobs must be empty or exactly one per record.
  virtual Result<CompactionSeal> OnOutput(const std::vector<Record>& output) {
    (void)output;
    return CompactionSeal{};
  }
  virtual void OnTableFileCreated(const FileMeta& meta) { (void)meta; }
};

// One consulted level during a GET (paper §5.3 r1: the untrusted store
// prepares proof material; verification happens in the facade/enclave).
struct LevelGetResult {
  size_t level_pos = 0;
  bool bloom_negative = false;  // trusted skip: filter lives in the enclave
  bool found = false;           // chain ends with a record visible at ts_max
  // Group prefix, newest first: entries with ts > ts_max, then (iff found)
  // the result record. Empty if the key's group is absent from the level.
  std::vector<RawEntry> chain;
  std::optional<RawEntry> pred;  // newest record of the preceding key group
  std::optional<RawEntry> succ;  // newest record of the following key group
};

struct GetResponse {
  std::optional<Record> memtable_hit;  // trusted L0 answer (early stop)
  std::vector<LevelGetResult> levels;  // search order; ends at hit level
};

// One consulted level during a SCAN.
struct LevelScanResult {
  size_t level_pos = 0;
  std::vector<RawEntry> heads;   // newest record of each key group in range
  std::optional<RawEntry> pred;  // newest record of last group below range
  std::optional<RawEntry> succ;  // newest record of first group above range
};

struct ScanResponse {
  std::vector<Record> memtable_records;  // trusted, newest per key in range
  std::vector<LevelScanResult> levels;
};

struct EngineStats {
  uint64_t puts = 0;
  // gets/scans are bumped on the shared-lock read path, so they must be
  // atomic; the write-path counters are covered by the exclusive lock.
  std::atomic<uint64_t> gets = 0;
  std::atomic<uint64_t> scans = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t compaction_bytes_in = 0;
  uint64_t compaction_bytes_out = 0;
};

class LsmEngine {
 public:
  LsmEngine(LsmOptions options, std::shared_ptr<sgx::Enclave> enclave,
            std::shared_ptr<storage::SimFs> fs);
  ~LsmEngine();

  LsmEngine(const LsmEngine&) = delete;
  LsmEngine& operator=(const LsmEngine&) = delete;

  void SetListener(CompactionListener* listener) { listener_ = listener; }

  // Appends to the WAL and inserts into the memtable. The caller assigns
  // timestamps and decides when to Flush (memtable_bytes() tells how full
  // L0 is). Tombstones are Puts with RecordType::kTombstone.
  Status Put(Record record);

  Result<GetResponse> Get(std::string_view key, uint64_t ts_max);
  Result<ScanResponse> Scan(std::string_view k1, std::string_view k2);

  // Memtable -> disk. With compaction enabled the run merges into the
  // shallowest level; otherwise it becomes a new level on top of the stack.
  Status Flush();
  // Merges any level exceeding its capacity into the next one (rippling).
  Status MaybeCompact();
  // Force-merges the whole stack into a single deepest level.
  Status CompactAll();

  const std::vector<LevelMeta>& levels() const { return levels_; }
  size_t memtable_entries() const { return memtable_->size(); }
  uint64_t memtable_bytes() const { return memtable_used_; }
  const EngineStats& stats() const { return stats_; }
  const LsmOptions& options() const { return options_; }
  storage::SimFs& fs() { return *fs_; }
  sgx::Enclave& enclave() { return *enclave_; }

  // --- manifest & recovery (driven by the elsm facade) ---------------------
  std::string EncodeManifest() const;
  Status RestoreManifest(std::string_view manifest);
  Result<storage::WalContents> ReadWalRecords() const;
  // Reinserts a WAL record into the memtable without re-appending it.
  Status ReinsertFromWal(Record record);
  Status ResetWal();
  uint64_t wal_bytes() const;

 private:
  uint64_t LevelCapacity(size_t pos) const;
  std::string NewFileName(const char* suffix);

  Result<std::shared_ptr<const std::string>> ReadBlock(const FileMeta& file,
                                                       const BlockHandle& block)
      const;
  Result<std::vector<RawEntry>> ReadParsedBlock(const FileMeta& file,
                                                const BlockHandle& block) const;

  Status LookupInLevel(const LevelMeta& level, std::string_view key,
                       uint64_t ts_max, LevelGetResult* out) const;
  Status ScanInLevel(const LevelMeta& level, std::string_view k1,
                     std::string_view k2, LevelScanResult* out) const;
  // Newest record of the key group holding the first/last entry of a file.
  Result<RawEntry> FirstHead(const FileMeta& file) const;
  Result<RawEntry> LastHead(const FileMeta& file) const;

  Result<std::vector<RawEntry>> LoadLevel(const LevelMeta& level) const;
  // Merge `upper` (search-order-shallower) into the level at `target_pos`
  // (which may equal levels_.size() to create a new deepest level). When
  // `insert_as_new` is true the run becomes a brand-new shallowest level.
  Status MergeRuns(std::vector<RawEntry> upper, int upper_depth,
                   size_t target_pos, bool insert_as_new);
  Status WriteLevel(const std::vector<Record>& output,
                    const CompactionSeal& seal, LevelMeta* out);
  void DropLevelFiles(const LevelMeta& level);
  void ChargeMetadataAccess(size_t level_pos) const;
  void RefreshMetadataFootprint();

  LsmOptions options_;
  std::shared_ptr<sgx::Enclave> enclave_;
  std::shared_ptr<storage::SimFs> fs_;
  CompactionListener* listener_ = nullptr;

  mutable std::shared_mutex mu_;
  std::unique_ptr<SkipList> memtable_;
  uint64_t memtable_used_ = 0;
  std::vector<LevelMeta> levels_;
  uint64_t next_file_no_ = 1;

  storage::WalWriter wal_;
  std::unique_ptr<storage::ReadBuffer> read_buffer_;
  mutable std::unordered_map<std::string, storage::MmapRegion> mmaps_;
  sgx::RegionId memtable_region_ = 0;
  sgx::RegionId metadata_region_ = 0;
  mutable EngineStats stats_;
};

}  // namespace elsm::lsm
