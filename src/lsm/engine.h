// LsmEngine: a LevelDB-class LSM store over the simulated enclave substrate.
//
// Layout (paper §5.1): L0 is the in-enclave memtable; disk levels are a
// stack of sorted runs, shallowest first (levels()[0] is the paper's L1).
// Each disk level is one sorted run split into SSTable files. Compaction is
// the paper's basic form — merge a full level into the next one.
//
// The engine is "vanilla": it knows nothing about Merkle trees. It exposes
// the integration points the paper uses for RocksDB (§5.5.3):
//   * CompactionListener — the Filter() / OnTableFileCreated() analogue
//     through which auth verifies compaction inputs and seals outputs. The
//     streaming hooks feed the listener block-granular input/output streams
//     so the hash-chain/Merkle build never buffers a whole level; the
//     buffered hooks remain for legacy listeners (and for embed_full_paths,
//     whose per-record Merkle paths need the finished tree).
//   * opaque per-record proof blobs stored alongside records in SSTables.
//
// Read paths (§5.5.1): mmap (direct untrusted-memory access) or a
// user-space ReadBuffer placed outside (P2) or inside (P1) the enclave.
// With `protect_blocks` (P1) every block carries an HMAC checked on load
// and the engine charges SDK-style encrypt/decrypt costs.
//
// Concurrency (copy-on-write version set): the sealed level stack lives in
// an immutable Version published behind a shared_ptr. Get/Scan take the
// shared lock only long enough to probe the memtable and copy the version
// pointer, then search SSTables with no lock held; the response carries its
// snapshot so proof assembly/verification sees exactly the roots the lookup
// used. Structural changes (flush, compaction) serialize on an internal
// compaction mutex, do their merge work without blocking readers, and
// install the new version with one brief exclusive swap. Compacted-away
// files are refcounted (FileTracker) and deleted only when the last
// snapshot using them dies. With `background_compaction` the engine owns a
// compaction thread; ScheduleCompaction()/WaitForCompaction() drive it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "lsm/merge_iter.h"
#include "lsm/record.h"
#include "lsm/skiplist.h"
#include "lsm/sstable.h"
#include "lsm/version.h"
#include "sgxsim/enclave.h"
#include "storage/mmap.h"
#include "storage/read_buffer.h"
#include "storage/fs.h"
#include "storage/wal.h"

namespace elsm::lsm {

enum class ReadPathKind { kMmap, kBuffer };

// Accounted bytes per memtable entry beyond the record payload (skiplist
// node + height vector slack). Both the simulated enclave access charge and
// the memtable_used_ occupancy advance by record.ByteSize() + this one
// constant, so the charged access pattern can never drift from the
// accounted occupancy (they briefly disagreed, +64 charged vs +32
// accounted).
inline constexpr uint64_t kMemtableEntryOverhead = 32;

struct LsmOptions {
  std::string name = "db";
  uint64_t memtable_bytes = 64 << 10;
  uint64_t level1_bytes = 256 << 10;
  uint32_t level_ratio = 4;
  uint64_t block_bytes = 4096;
  uint64_t file_bytes = 64 << 10;
  int bloom_bits_per_key = 10;
  bool use_bloom = true;
  bool compaction_enabled = true;
  // Run ripple compaction on a dedicated engine thread instead of inline;
  // schedule with ScheduleCompaction(), drain with WaitForCompaction().
  bool background_compaction = false;
  ReadPathKind read_path = ReadPathKind::kMmap;
  uint64_t read_buffer_bytes = 8 << 20;
  // LRU shards of the read buffer (per-shard mutex + single-flight misses).
  int read_cache_shards = 8;
  storage::BufferPlacement buffer_placement =
      storage::BufferPlacement::kOutsideEnclave;
  // eLSM-P1 file-granularity protection: per-block HMAC + cipher charges.
  bool protect_blocks = false;
  // Verify loaded blocks against the digest sealed in the snapshot metadata
  // before admitting them to the read buffer (digest-keyed verified cache).
  // P2 turns this on; P1 already authenticates loads via the block MAC and
  // the unsecured baseline carries no integrity contract at all.
  bool verify_blocks = false;
  std::string mac_key = "elsm-p1-file-key";
  // Keep superseded versions of a key during compaction (eLSM chains need
  // them for time-travel GETs); tombstone-covered records are still dropped
  // when merging into the deepest level.
  bool keep_old_versions = true;
  // Honor the Fs::Sync durability contract on the write path: fsync the
  // WAL before acknowledging, and SSTables/tree sidecars before they can
  // be referenced by a manifest. No-op on SimFs, real fsyncs on PosixFs.
  bool sync_writes = true;
  // Park compacted-away files instead of unlinking them; the owner calls
  // PurgeObsoleteFiles() once the manifest dropping them is durable. Keeps
  // a crash between version swap and manifest persist recoverable.
  bool defer_obsolete_deletion = false;
  // Bounded retry for transient storage faults (Status::IsTransient) on the
  // retry-safe write paths: WAL append+sync (with tail repair between
  // attempts), SSTable/tree-sidecar installs (atomic whole-file replace),
  // and WAL reset. Backoff is charged on the simulated clock, so retried
  // runs stay deterministic. max_attempts <= 1 disables retries.
  common::RetryPolicy io_retry;
  // Group-commit linger window. Concurrent writers always share one WAL
  // append + fsync (the first writer at the barrier leads the cohort); with
  // a non-zero window the leader additionally waits up to this many
  // wall-clock microseconds for stragglers before issuing the sync, trading
  // per-op latency for larger cohorts (bigger fsync amortization). 0 =
  // sync as soon as a leader forms — cohorts still batch whatever queued
  // while the previous cohort's fsync was in flight. Only meaningful with
  // sync_writes; the crash window it opens is bounded by the window itself
  // (an unsynced cohort is never acknowledged).
  uint64_t wal_sync_interval_us = 0;
  // --- batched read I/O ----------------------------------------------------
  // MultiGet collects the candidate blocks of all still-searching keys at
  // each level and loads the cache misses with one Fs::MultiRead (buffer
  // read path only; per-block verify-and-admit is unchanged).
  bool multiget_batching = true;
  // Scan readahead: batch-fetch up to this many upcoming blocks of each
  // level run ahead of the sequential walk, bounded to blocks the walk
  // provably visits (first_key <= k2). 0 disables. Buffer read path only.
  uint64_t scan_readahead_blocks = 8;
  // Streaming-compaction input readahead: batch-read this many upcoming
  // input files of a run together with the one being opened. Default 0
  // keeps the legacy Blob() path and its exact cost profile (a Blob
  // materialization charges no file read, a MultiRead does), so simulated
  // clocks only move when a caller opts in.
  uint64_t compaction_readahead_files = 0;
};

// Everything a CompactionListener returns to seal a freshly built level.
struct CompactionSeal {
  std::vector<std::string> proof_blobs;  // aligned with output records
  crypto::Hash256 root = crypto::kZeroHash;
  uint64_t leaf_count = 0;
  std::string tree_payload;  // written as the level's sidecar when non-empty
};

class CompactionListener {
 public:
  virtual ~CompactionListener() = default;

  // Listeners answering true are driven through the streaming hooks below;
  // the default (false) keeps the buffered protocol, where whole runs and
  // the whole merged output are materialized before the hooks fire.
  virtual bool streaming() const { return false; }

  // --- buffered hooks (streaming() == false) -------------------------------
  // Called once per input run in search order. src_depth == -1 means the
  // memtable (trusted, blobs empty); otherwise it is the level position.
  // `meta` is null for the memtable run. Returning non-OK aborts the merge.
  virtual Status OnInputRun(int src_depth, const std::vector<RawEntry>& run,
                            const LevelMeta* meta) {
    (void)src_depth;
    (void)run;
    (void)meta;
    return Status::Ok();
  }
  // Called with the merged output before any file is written. The seal's
  // proof_blobs must be empty or exactly one per record.
  virtual Result<CompactionSeal> OnOutput(const std::vector<Record>& output) {
    (void)output;
    return CompactionSeal{};
  }

  // --- streaming hooks (streaming() == true) -------------------------------
  // One compaction = OnCompactionBegin, then per run: OnInputRunBegin,
  // OnInputEntry xN (per-run order), OnInputRunEnd (the natural place to
  // reject a tampered input); interleaved with OnOutputGroup once per merged
  // key group (newest-first, after the drop policy); then OnOutputEnd, whose
  // seal carries root/leaf_count/tree_payload (proof_blobs are ignored —
  // they were emitted groupwise).
  virtual Status OnCompactionBegin(size_t run_count) {
    (void)run_count;
    return Status::Ok();
  }
  virtual Status OnInputRunBegin(size_t run_idx, int src_depth,
                                 const LevelMeta* meta) {
    (void)run_idx;
    (void)src_depth;
    (void)meta;
    return Status::Ok();
  }
  virtual Status OnInputEntry(size_t run_idx, const Record& record,
                              std::string_view core) {
    (void)run_idx;
    (void)record;
    (void)core;
    return Status::Ok();
  }
  virtual Status OnInputRunEnd(size_t run_idx) {
    (void)run_idx;
    return Status::Ok();
  }
  // Append one proof blob per record to *proof_blobs (or none at all).
  virtual Status OnOutputGroup(const std::vector<Record>& group,
                               std::vector<std::string>* proof_blobs) {
    (void)group;
    (void)proof_blobs;
    return Status::Ok();
  }
  virtual Result<CompactionSeal> OnOutputEnd() { return CompactionSeal{}; }

  // --- both protocols ------------------------------------------------------
  virtual void OnTableFileCreated(const FileMeta& meta) { (void)meta; }
};

// One consulted level during a GET (paper §5.3 r1: the untrusted store
// prepares proof material; verification happens in the facade/enclave).
struct LevelGetResult {
  size_t level_pos = 0;
  bool bloom_negative = false;  // trusted skip: filter lives in the enclave
  bool found = false;           // chain ends with a record visible at ts_max
  // Group prefix, newest first: entries with ts > ts_max, then (iff found)
  // the result record. Empty if the key's group is absent from the level.
  std::vector<RawEntry> chain;
  std::optional<RawEntry> pred;  // newest record of the preceding key group
  std::optional<RawEntry> succ;  // newest record of the following key group
};

struct GetResponse {
  std::optional<Record> memtable_hit;  // trusted L0 answer (early stop)
  std::vector<LevelGetResult> levels;  // search order; ends at hit level
  // The level-stack snapshot the lookup ran against. Verify proofs against
  // snapshot->levels(), not the engine's live stack, which a concurrent
  // compaction may have replaced.
  std::shared_ptr<const Version> snapshot;
};

// One consulted level during a SCAN.
struct LevelScanResult {
  size_t level_pos = 0;
  std::vector<RawEntry> heads;   // newest record of each key group in range
  std::optional<RawEntry> pred;  // newest record of last group below range
  std::optional<RawEntry> succ;  // newest record of first group above range
};

struct ScanResponse {
  std::vector<Record> memtable_records;  // trusted, newest per key in range
  std::vector<LevelScanResult> levels;
  std::shared_ptr<const Version> snapshot;  // see GetResponse::snapshot
};

struct EngineStats {
  // Write-path counters: acknowledged records only, split by kind. A write
  // whose WAL commit failed (retry budget exhausted) lands in the failed_*
  // twin instead — the counters are bumped by the commit leader *after* the
  // cohort's fsync, so an unacknowledged write can never inflate them.
  // Plain (non-atomic) because every bump happens under the exclusive
  // engine write lock.
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t failed_puts = 0;
  uint64_t failed_deletes = 0;
  // Group-commit telemetry: cohorts committed (one WAL barrier each) and
  // the records they carried. records / commits is the mean cohort size —
  // the fsync amortization factor concurrent writers actually achieved.
  uint64_t group_commits = 0;
  uint64_t group_commit_records = 0;
  // gets/scans are bumped on the lock-free read path; the compaction
  // counters on the background thread — all of those must be atomic.
  std::atomic<uint64_t> gets = 0;
  std::atomic<uint64_t> scans = 0;
  std::atomic<uint64_t> flushes = 0;
  std::atomic<uint64_t> compactions = 0;
  std::atomic<uint64_t> compaction_bytes_in = 0;
  std::atomic<uint64_t> compaction_bytes_out = 0;
  // High-water mark of entry bytes a single compaction held in memory
  // (group buffer + parsed blocks; O(blocks in flight) when streaming,
  // O(level) on the buffered legacy path).
  std::atomic<uint64_t> compaction_peak_resident_bytes = 0;
  // Manifest-maintenance telemetry, bumped by the owning facade through
  // NoteManifestWrite: delta records appended to the tail log, full
  // snapshots installed, and total sealed manifest bytes written. With the
  // edit log, bytes-per-mutation stays O(1) in resident file count — see
  // bench/fig_manifest_scaling.cc.
  std::atomic<uint64_t> manifest_edits_appended = 0;
  std::atomic<uint64_t> manifest_snapshots_written = 0;
  std::atomic<uint64_t> manifest_bytes_written = 0;
  // Transient-fault tolerance telemetry: extra attempts spent in retry
  // loops, ops whose transient failure a retry absorbed, ops that exhausted
  // the retry budget, and WAL tails truncated back to the last committed
  // frame boundary (write-path repair + recovery-time torn-tail drops).
  std::atomic<uint64_t> retry_attempts = 0;
  std::atomic<uint64_t> retries_absorbed = 0;
  std::atomic<uint64_t> retries_exhausted = 0;
  std::atomic<uint64_t> wal_tail_repairs = 0;
  // Batched read-path telemetry: MultiGet block batches issued and the
  // blocks they carried, blocks submitted by scan readahead windows, and
  // prefetched blocks actually consumed by a lookup or scan walk
  // (MultiGet + readahead combined).
  std::atomic<uint64_t> multiget_batches = 0;
  std::atomic<uint64_t> multiget_batched_blocks = 0;
  std::atomic<uint64_t> readahead_blocks = 0;
  std::atomic<uint64_t> readahead_hits = 0;
};

class LsmEngine {
 public:
  LsmEngine(LsmOptions options, std::shared_ptr<sgx::Enclave> enclave,
            std::shared_ptr<storage::Fs> fs);
  ~LsmEngine();

  LsmEngine(const LsmEngine&) = delete;
  LsmEngine& operator=(const LsmEngine&) = delete;

  void SetListener(CompactionListener* listener) { listener_ = listener; }

  // Invoked once per record, in WAL byte order, after the cohort holding it
  // is durable (fsynced under sync_writes) and before its writer is
  // acknowledged. Runs under the exclusive engine write lock, so calls are
  // totally ordered and match the WAL exactly — the facade chains its
  // in-enclave WAL digest here. Set once before concurrent use.
  using CommitHook = std::function<void(std::string_view core)>;
  void SetCommitHook(CommitHook hook) { commit_hook_ = std::move(hook); }

  // Appends to the WAL and inserts into the memtable. The caller assigns
  // timestamps and decides when to Flush (memtable_bytes() tells how full
  // L0 is). Tombstones are Puts with RecordType::kTombstone.
  //
  // Concurrent writers group-commit on the WAL fsync barrier
  // (leader/follower, LevelDB-style): each writer enqueues its encoded
  // records under a short queue lock; the front writer becomes leader,
  // appends the whole cohort as one frame group, pays ONE SyncWal() for
  // everyone, advances the committed offset once, and wakes the followers
  // with the shared Status. The cohort commits or fails atomically: a
  // failed leader append/sync marks the tail dirty and the retry (or the
  // next cohort) truncates back to the committed boundary, so no follower
  // is ever acknowledged on an unsynced frame.
  Status Put(Record record);
  // Batched variant: the batch joins a cohort as one unit (one lock
  // acquisition and one WAL append cover it even without other writers).
  Status PutBatch(std::vector<Record> records);

  Result<GetResponse> Get(std::string_view key, uint64_t ts_max);

  // One key's outcome in a MultiGet: status guards the response (per-key
  // error isolation — one failed block fails only the keys needing it).
  struct MultiGetItem {
    Status status = Status::Ok();
    GetResponse response;
  };
  // Batched point reads: one shared-lock pass probes the memtables for
  // every key and grabs ONE version snapshot, then the level walk runs
  // level-major — all still-searching keys' candidate blocks at a level
  // are planned together and the cache misses load via one Fs::MultiRead
  // (see LsmOptions::multiget_batching). Each key's per-level results,
  // bracketing witnesses, and early stop match a sequential Get against
  // the same snapshot exactly, so proof assembly/verification is unchanged.
  std::vector<MultiGetItem> MultiGet(const std::vector<std::string>& keys,
                                     uint64_t ts_max);

  Result<ScanResponse> Scan(std::string_view k1, std::string_view k2);

  // Memtable -> disk (immutable memtable first, then the active one). With
  // compaction enabled the run merges into the shallowest level; otherwise
  // it becomes a new level on top of the stack. The caller must have
  // quiesced writers (the facade holds its exclusive lock).
  Status Flush();
  // --- off-writer-path flush handoff ---------------------------------------
  // Seals the active memtable: one pointer swap under the exclusive engine
  // lock turns it into the immutable memtable (imm) and installs a fresh
  // active one, so writers roll over instead of stalling behind the flush.
  // Returns false (and does nothing) when the active memtable is empty or
  // an earlier seal has not been flushed yet. The caller must have
  // quiesced writers for the duration of the swap (exclusive facade lock):
  // that is what makes its captured timestamp watermark sound.
  bool SealMemtable();
  // Merges the sealed memtable into the level stack. Runs under the
  // compaction mutex only — concurrent writers (into the fresh active
  // memtable) and readers proceed throughout. No-op without a pending imm.
  Status FlushImm();
  // True while a sealed memtable is awaiting its flush.
  bool HasImm() const;
  // Merges any level exceeding its capacity into the next one (rippling).
  Status MaybeCompact();
  // Force-merges the whole stack into a single deepest level.
  Status CompactAll();
  // Physically deletes files parked under defer_obsolete_deletion. Call
  // after persisting a manifest that no longer references them.
  void PurgeObsoleteFiles();

  // --- background compaction ----------------------------------------------
  // Requests a MaybeCompact pass on the engine thread (runs it inline when
  // background_compaction is off).
  void ScheduleCompaction();
  // Blocks until no background pass is pending or running.
  void WaitForCompaction();
  // First error a background pass (or its callback) hit since the last
  // call (Ok if none).
  Status TakeBackgroundStatus();
  // Invoked after every background pass, with no engine lock held (the elsm
  // facade persists the manifest here). A non-OK return is surfaced via
  // TakeBackgroundStatus().
  void SetCompactionCallback(std::function<Status()> callback);
  // Drains pending work and joins the thread. Idempotent.
  void StopBackgroundCompaction();

  // Live level stack. Single-threaded callers only: a concurrent compaction
  // may retire the backing version — concurrent readers must hold the
  // snapshot from a Get/Scan response (or current_version()) instead.
  const std::vector<LevelMeta>& levels() const { return version_->levels(); }
  std::shared_ptr<const Version> current_version() const;
  size_t memtable_entries() const { return memtable_->size(); }
  uint64_t memtable_bytes() const {
    return memtable_used_.load(std::memory_order_relaxed);
  }
  // Acknowledged (committed-boundary) WAL bytes. Lock-free; the facade's
  // async-flush path uses it to force a synchronous truncating flush when
  // the WAL outgrows its bound.
  uint64_t wal_bytes() const {
    return wal_committed_bytes_.load(std::memory_order_relaxed);
  }
  const EngineStats& stats() const { return stats_; }
  const LsmOptions& options() const { return options_; }
  storage::Fs& fs() { return *fs_; }
  sgx::Enclave& enclave() { return *enclave_; }
  // Null when read_path == kMmap (no block cache on the mmap path).
  const storage::ReadBuffer* read_buffer() const { return read_buffer_.get(); }
  // Drops every cached block (no-op on the mmap path). Bench support:
  // cold-read measurements reset the cache between passes.
  void ClearReadCache() {
    if (read_buffer_ != nullptr) read_buffer_->Clear();
  }
  // Invoked (outside engine locks) with each batch of compaction-deleted
  // file names drained from the tracker, after the engine has dropped its
  // own mmap handles and read-buffer entries. The facade hangs
  // ProofAssembler tree-handle eviction off it.
  void SetCachePurgeHook(
      std::function<void(const std::vector<std::string>&)> hook);

  // --- manifest & recovery (driven by the elsm facade) ---------------------
  // Full level-stack snapshot. When `covered_edit_seq` is non-null it
  // receives the edit sequence number the snapshot covers, captured
  // atomically with the stack — pass it to TrimEditsThrough once the
  // snapshot is durable.
  std::string EncodeManifest(uint64_t* covered_edit_seq = nullptr) const;
  Status RestoreManifest(std::string_view manifest);
  // Every structural change (flush / compaction step) appends an encoded
  // VersionEdit to an in-memory log with a monotone sequence number; the
  // facade drains it into sealed delta records. EditsSince returns the
  // encoded edits with seq > `since` plus the newest sequence (atomically
  // with the copy); TrimEditsThrough drops entries the facade has made
  // durable. RestoreManifest resets the log (sequence restarts at 0).
  std::vector<std::string> EditsSince(uint64_t since,
                                      uint64_t* newest_seq) const;
  void TrimEditsThrough(uint64_t seq);
  // Recovery replay: applies one encoded VersionEdit from a sealed delta
  // record on top of the restored stack. Does not re-log the edit.
  Status ApplyEdit(std::string_view encoded);
  // Manifest-maintenance telemetry (see EngineStats): the facade reports
  // each sealed manifest write here.
  void NoteManifestWrite(bool snapshot, uint64_t bytes);
  // Retry telemetry (see EngineStats): the facade folds in the stats of
  // retry loops it runs itself (manifest install).
  void NoteRetry(const common::RetryStats& stats);
  Result<storage::WalContents> ReadWalRecords() const;
  // Reinserts a WAL record into the memtable without re-appending it.
  Status ReinsertFromWal(Record record);
  Status ResetWal();
  // Recovery-side tail repair: drops WAL bytes past `committed_bytes` (the
  // well-formed prefix ReadWal accepted) so post-recovery appends never
  // land behind a torn frame, and primes the committed-offset tracking the
  // write path's repair relies on. The facade calls it after a successful
  // WAL replay.
  Status TruncateWalTail(uint64_t committed_bytes);

 private:
  // A level under construction: SSTable building, bloom, file bookkeeping.
  struct LevelBuild {
    LevelMeta level;
    SSTableBuilder builder;
    std::string prev_key;
    uint64_t records_out = 0;

    LevelBuild(uint64_t block_bytes, std::string mac_key)
        : builder(block_bytes, std::move(mac_key)) {}
  };
  // One merge input: a level position, or the memtable run when depth < 0.
  struct MergeSource {
    int depth = -1;
    std::vector<RawEntry> run;  // only for depth < 0
  };

  uint64_t LevelCapacity(size_t pos) const;
  std::string NewFileName(const char* suffix);

  // Batch-loaded block results keyed by BlockKey(file, block). MultiGet and
  // scan readahead fill one with ReadBlockBatch; the block readers consult
  // it before the cache, so a batched operation reads and charges each
  // block exactly once and a stored error replays deterministically
  // instead of triggering a divergent second load.
  using PrefetchedBlocks =
      std::unordered_map<std::string,
                         Result<std::shared_ptr<const std::string>>>;
  static std::string BlockKey(const FileMeta& file, const BlockHandle& block);
  // Batch-loads `blocks` through ReadBuffer::GetBatch backed by one
  // Fs::MultiRead (buffer read path only), recording every per-block
  // result — including failures — in *out. Blocks already present are
  // skipped; returns how many blocks were newly submitted.
  size_t ReadBlockBatch(
      const std::vector<std::pair<const FileMeta*, const BlockHandle*>>&
          blocks,
      PrefetchedBlocks* out) const;
  // Appends the block(s) LookupInLevel will read first for `key`: the
  // candidate block, or the boundary-witness blocks when the key misses
  // every file range.
  void PlanLookupBlocks(
      const LevelMeta& level, std::string_view key,
      std::vector<std::pair<const FileMeta*, const BlockHandle*>>* out) const;

  Result<std::shared_ptr<const std::string>> ReadBlock(
      const FileMeta& file, const BlockHandle& block,
      const PrefetchedBlocks* prefetched = nullptr) const;
  // Parsed entries viewing `backing` (which pins them).
  struct ParsedBlock {
    std::shared_ptr<const std::string> backing;
    std::vector<BlockEntry> entries;
  };
  Result<ParsedBlock> ReadParsedBlock(
      const FileMeta& file, const BlockHandle& block,
      const PrefetchedBlocks* prefetched = nullptr) const;

  // WAL durability barrier for Put/PutBatch: fsync the file, plus a
  // one-time directory fsync per WAL generation (a freshly created WAL's
  // directory entry is not durable until SyncDir — fs.h contract).
  Status SyncWal();
  // Runs `op` under options_.io_retry, charging backoff on the simulated
  // clock and folding the attempt counts into stats_.
  Status RetryIo(const std::function<Status()>& op);
  // If a failed append/sync left unacknowledged bytes at the WAL's tail
  // (wal_dirty_), truncates back to wal_committed_bytes_ so the next frame
  // never lands behind garbage. Callers hold the exclusive write lock.
  Status RepairWalTailLocked();

  Status LookupInLevel(const LevelMeta& level, std::string_view key,
                       uint64_t ts_max, LevelGetResult* out,
                       const PrefetchedBlocks* prefetched = nullptr) const;
  Status ScanInLevel(const LevelMeta& level, std::string_view k1,
                     std::string_view k2, LevelScanResult* out) const;
  // Newest record of the key group holding the first/last entry of a file.
  Result<RawEntry> FirstHead(const FileMeta& file,
                             const PrefetchedBlocks* prefetched = nullptr)
      const;
  Result<RawEntry> LastHead(const FileMeta& file,
                            const PrefetchedBlocks* prefetched = nullptr)
      const;

  std::shared_ptr<const Version> SnapshotVersion() const;
  std::unique_ptr<RunIterator> MakeSourceIterator(const Version& base,
                                                  MergeSource source) const;

  // Which in-memory table a flush-style CompactStep drains: the active
  // memtable, the sealed (immutable) one, or neither (pure compaction).
  enum class MemtableReset { kNone, kActive, kImm };

  // --- group commit core ----------------------------------------------------
  // One writer's stake in a commit cohort (lives on the writer's stack).
  struct CommitRequest {
    std::vector<Record>* records = nullptr;  // moved into the memtable by
                                             // the leader on success
    std::vector<std::string> cores;          // encoded payloads, WAL order
    uint64_t framed_bytes = 0;
    Status status;
    bool done = false;
    std::condition_variable cv;
  };
  // The shared Put/PutBatch path: enqueue, lead or follow, return the
  // cohort's shared Status.
  Status CommitGroup(std::vector<Record>* records);
  // Leader body: one AppendBatch + one SyncWal for the whole cohort under
  // the exclusive write lock, then hook + memtable insert per record.
  Status CommitCohort(const std::vector<CommitRequest*>& cohort);

  // --- compaction core (callers hold compaction_mu_) -----------------------
  Status FlushInternal();
  Status FlushImmInternal();
  Status MaybeCompactInternal();
  Status CompactAllInternal();
  // Merges `sources` (search-order-shallower first) plus — unless
  // insert_as_new — the level at `target_pos` into a fresh level installed
  // per the legacy position rules. `reset` empties the named in-memory
  // table atomically with the version swap (the flush paths).
  Status CompactStep(std::vector<MergeSource> sources, size_t target_pos,
                     bool insert_as_new, MemtableReset reset);
  Status StreamCompaction(const Version& base, std::vector<MergeSource> sources,
                          std::vector<int> depths, bool to_bottom,
                          LevelBuild* build, CompactionSeal* seal);
  Status BufferedCompaction(const Version& base,
                            std::vector<MergeSource> sources,
                            std::vector<int> depths, bool to_bottom,
                            LevelBuild* build, CompactionSeal* seal);
  Status AppendOutput(LevelBuild* build, const Record& record,
                      std::string_view proof_blob);
  Status FinishOutputFile(LevelBuild* build);
  Status FinalizeLevel(LevelBuild* build, const CompactionSeal& seal);
  void AbortLevel(LevelBuild* build);
  // `encoded_edit` (when non-empty) is logged under the same exclusive
  // section as the version swap, so the edit sequence observes installs in
  // publication order.
  void InstallVersion(std::vector<LevelMeta> levels, MemtableReset reset,
                      const std::vector<std::string>& obsolete_files,
                      std::string encoded_edit = std::string());
  void PurgeDeadCaches();
  void UpdatePeakResident(uint64_t resident_bytes);
  void BackgroundLoop();

  void ChargeMetadataAccess(size_t level_pos) const;
  void RefreshMetadataFootprint(const std::vector<LevelMeta>& levels);

  LsmOptions options_;
  std::shared_ptr<sgx::Enclave> enclave_;
  std::shared_ptr<storage::Fs> fs_;
  CompactionListener* listener_ = nullptr;

  // mu_ protects the memtables and the version pointer swap; readers hold
  // it only while probing the memtables and copying the pointer.
  // compaction_mu_ serializes structural changes (flush/compaction/restore)
  // end to end. commit_mu_ (below) orders writers into cohorts *before*
  // they touch mu_ — only the cohort leader ever takes mu_ exclusively.
  mutable std::shared_mutex mu_;
  std::mutex compaction_mu_;
  std::unique_ptr<SkipList> memtable_;
  // Sealed-but-not-yet-flushed memtable (SealMemtable/FlushImm). Reads
  // probe it after the active memtable (its records are strictly older);
  // guarded by mu_ like the active one.
  std::unique_ptr<SkipList> imm_;
  uint64_t imm_used_ = 0;
  // Atomic: advanced by the commit leader under exclusive mu_, but read
  // lock-free by the facade's flush-trigger check on concurrent writers.
  std::atomic<uint64_t> memtable_used_{0};

  // --- group-commit queue ---------------------------------------------------
  // Writers enqueue under commit_mu_ and park on their request's cv. The
  // front request's owner is the leader: it may linger (wal_sync_interval_us)
  // on commit_join_cv_ to absorb stragglers, then commits the whole queue
  // prefix it captured. The cohort stays in the queue while its I/O runs —
  // arrivals during the fsync line up behind it as the next cohort.
  std::mutex commit_mu_;
  std::condition_variable commit_join_cv_;
  std::deque<CommitRequest*> commit_queue_;
  CommitHook commit_hook_;
  std::shared_ptr<FileTracker> tracker_;
  std::shared_ptr<const Version> version_;
  std::atomic<uint64_t> next_file_no_ = 1;
  // In-memory VersionEdit log (guarded by mu_): (seq, encoded edit) pairs
  // not yet persisted by the facade. Bounded by the facade's trim after
  // every sealed record; RestoreManifest clears it.
  uint64_t edit_seq_ = 0;
  std::vector<std::pair<uint64_t, std::string>> edit_log_;

  storage::WalWriter wal_;
  // The current WAL generation's directory entry is known durable (a
  // SyncDir ran since the file was created). Reset by ResetWal; writers
  // mutate it under the exclusive write lock, so relaxed atomics only
  // guard against incidental concurrent reads.
  std::atomic<bool> wal_dir_synced_{false};
  // Bytes of the WAL covered by acknowledged appends (always a frame
  // boundary). A failed append/sync sets wal_dirty_: a torn or orphan
  // frame may sit past the committed offset, and a frame appended behind
  // it would be unreachable to ReadWal — and would diverge the facade's
  // in-enclave WAL digest into a spurious AuthFailure on recovery. The
  // next append (or recovery) truncates back to the committed offset
  // first. Mutated under the exclusive write lock (mu_); atomic so the
  // facade's lock-free WAL-growth bound check (wal_bytes()) can read it
  // from concurrent writer threads.
  std::atomic<uint64_t> wal_committed_bytes_{0};
  bool wal_dirty_ = false;
  std::unique_ptr<storage::ReadBuffer> read_buffer_;
  mutable std::mutex mmaps_mu_;
  mutable std::unordered_map<std::string, storage::MmapRegion> mmaps_;
  // Guards cache_purge_hook_: PurgeDeadCaches fires from reader and
  // background-compaction threads while the facade installs the hook.
  mutable std::mutex purge_hook_mu_;
  std::function<void(const std::vector<std::string>&)> cache_purge_hook_;
  sgx::RegionId memtable_region_ = 0;
  sgx::RegionId metadata_region_ = 0;
  mutable EngineStats stats_;

  // --- background thread state ---------------------------------------------
  // bg_thread_ is only touched under bg_mu_ (StopBackgroundCompaction moves
  // it out before joining), so Schedule/Wait/Stop may race freely.
  std::thread bg_thread_;
  std::mutex bg_mu_;
  std::condition_variable bg_work_cv_;
  std::condition_variable bg_idle_cv_;
  std::function<Status()> bg_callback_;
  Status bg_status_;
  bool bg_started_ = false;  // a thread was launched at construction
  bool bg_pending_ = false;
  bool bg_running_ = false;
  bool bg_stop_ = false;
};

}  // namespace elsm::lsm
