#include "lsm/merge_iter.h"

namespace elsm::lsm {

VectorRunIterator::VectorRunIterator(std::vector<RawEntry> run)
    : run_(std::move(run)) {
  for (const RawEntry& e : run_) {
    resident_bytes_ += e.record.ByteSize() + e.core.size() + e.proof_blob.size();
  }
}

Status VectorRunIterator::Init() { return Status::Ok(); }

Status VectorRunIterator::Next() {
  ++pos_;
  return Status::Ok();
}

LevelRunIterator::LevelRunIterator(const LevelMeta* level, FileOpener opener,
                                   BlockCheck check)
    : level_(level), opener_(std::move(opener)), check_(std::move(check)) {}

Status LevelRunIterator::Init() { return LoadNextBlock(); }

Status LevelRunIterator::Next() {
  if (++ei_ < entries_.size()) return Status::Ok();
  return LoadNextBlock();
}

Status LevelRunIterator::LoadNextBlock() {
  valid_ = false;
  while (true) {
    if (fi_ >= level_->files.size()) {
      entries_.clear();
      file_image_.reset();
      resident_bytes_ = 0;
      return Status::Ok();  // exhausted
    }
    const FileMeta& file = level_->files[fi_];
    if (file_image_ == nullptr) {
      auto image = opener_(file);
      if (!image.ok()) return image.status();
      file_image_ = std::move(image).value();
      bi_ = 0;
    }
    if (bi_ >= file.blocks.size()) {
      ++fi_;
      file_image_.reset();
      continue;
    }
    const BlockHandle& block = file.blocks[bi_++];
    if (block.offset + block.size > file_image_->size()) {
      return Status::Corruption("block beyond file");
    }
    const std::string_view bytes(file_image_->data() + block.offset,
                                 block.size);
    Status s = check_(file, block, bytes);
    if (!s.ok()) return s;
    s = ParseBlockInto(bytes, block.num_entries, &entries_);
    if (!s.ok()) return s;
    if (entries_.empty()) continue;
    ei_ = 0;
    valid_ = true;
    resident_bytes_ = 0;
    for (const BlockEntry& e : entries_) {
      resident_bytes_ += e.record.ByteSize() + 32;
    }
    return Status::Ok();
  }
}

MergeIterator::MergeIterator(std::vector<std::unique_ptr<RunIterator>> runs,
                             EntryTap tap, RunEnd run_end)
    : runs_(std::move(runs)), tap_(std::move(tap)), run_end_(std::move(run_end)) {}

Status MergeIterator::AfterLoad(size_t idx) {
  RunIterator& run = *runs_[idx];
  if (run.Valid()) {
    if (tap_ != nullptr) return tap_(idx, run.record(), run.core());
    return Status::Ok();
  }
  if (run_end_ != nullptr) return run_end_(idx);
  return Status::Ok();
}

Status MergeIterator::Init() {
  for (size_t i = 0; i < runs_.size(); ++i) {
    Status s = runs_[i]->Init();
    if (!s.ok()) return status_ = s;
    s = AfterLoad(i);
    if (!s.ok()) return status_ = s;
  }
  PickCurrent();
  return Status::Ok();
}

void MergeIterator::PickCurrent() {
  current_ = kNone;
  InternalKeyLess less;
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (!runs_[i]->Valid()) continue;
    if (current_ == kNone || less(runs_[i]->record(), runs_[current_]->record())) {
      current_ = i;
    }
  }
}

Record MergeIterator::TakeAndAdvance() {
  const size_t idx = current_;
  Record out = runs_[idx]->TakeRecord();
  Status s = runs_[idx]->Next();
  if (!s.ok()) {
    status_ = s;
    current_ = kNone;
    return out;
  }
  s = AfterLoad(idx);
  if (!s.ok()) {
    status_ = s;
    current_ = kNone;
    return out;
  }
  PickCurrent();
  return out;
}

uint64_t MergeIterator::resident_bytes() const {
  uint64_t total = 0;
  for (const auto& run : runs_) total += run->resident_bytes();
  return total;
}

}  // namespace elsm::lsm
