// Streaming compaction iterators (paper §5.5.2: the untrusted host merges
// levels while the enclave digests the stream).
//
// A RunIterator is a pull-based cursor over one sorted run (key asc, ts
// desc). LevelRunIterator streams a sealed on-disk level block by block —
// it pins at most one file image (zero-copy blob) and keeps one parsed
// block resident, which is what turns compaction memory from O(level) into
// O(blocks in flight). MergeIterator k-way-merges the runs and taps every
// entry once, in per-run order, so a listener can authenticate inputs
// incrementally without buffering them.
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "lsm/record.h"
#include "lsm/sstable.h"
#include "lsm/version.h"

namespace elsm::lsm {

class RunIterator {
 public:
  virtual ~RunIterator() = default;

  // Positions on the first entry. Must be called once before use.
  virtual Status Init() = 0;
  virtual bool Valid() const = 0;
  virtual const Record& record() const = 0;
  // Exact stored bytes of the current record (what hash chains digest).
  virtual std::string_view core() const = 0;
  virtual std::string_view proof() const = 0;
  // Moves the current record out. The iterator must be advanced (Next)
  // before the next record()/core() access.
  virtual Record TakeRecord() = 0;
  virtual Status Next() = 0;
  // Bytes of parsed entries currently buffered by this iterator — the
  // streaming-memory gauge (excludes zero-copy file blobs shared with the
  // filesystem).
  virtual uint64_t resident_bytes() const = 0;
};

// A run held fully in memory (the memtable snapshot during a flush, or a
// materialized run on the buffered legacy path).
class VectorRunIterator : public RunIterator {
 public:
  explicit VectorRunIterator(std::vector<RawEntry> run);

  Status Init() override;
  bool Valid() const override { return pos_ < run_.size(); }
  const Record& record() const override { return run_[pos_].record; }
  std::string_view core() const override { return run_[pos_].core; }
  std::string_view proof() const override { return run_[pos_].proof_blob; }
  Record TakeRecord() override { return std::move(run_[pos_].record); }
  Status Next() override;
  uint64_t resident_bytes() const override { return resident_bytes_; }

 private:
  std::vector<RawEntry> run_;
  size_t pos_ = 0;
  uint64_t resident_bytes_ = 0;
};

// Streams a sealed level file by file, block by block. The callbacks keep
// the iterator free of engine state: `opener` maps a file to its byte image
// (and charges the OCall/mmap), `check` charges the per-block read and
// verifies the block MAC in protected mode.
class LevelRunIterator : public RunIterator {
 public:
  using FileOpener = std::function<Result<std::shared_ptr<const std::string>>(
      const FileMeta&)>;
  using BlockCheck = std::function<Status(const FileMeta&, const BlockHandle&,
                                          std::string_view)>;

  LevelRunIterator(const LevelMeta* level, FileOpener opener, BlockCheck check);

  Status Init() override;
  bool Valid() const override { return valid_; }
  const Record& record() const override { return entries_[ei_].record; }
  std::string_view core() const override { return entries_[ei_].core; }
  std::string_view proof() const override { return entries_[ei_].proof_blob; }
  Record TakeRecord() override { return std::move(entries_[ei_].record); }
  Status Next() override;
  uint64_t resident_bytes() const override { return resident_bytes_; }

 private:
  // Loads blocks until one yields entries or the level is exhausted.
  Status LoadNextBlock();

  const LevelMeta* level_;
  FileOpener opener_;
  BlockCheck check_;
  size_t fi_ = 0;  // next file to open
  size_t bi_ = 0;  // next block of the current file
  std::shared_ptr<const std::string> file_image_;
  std::vector<BlockEntry> entries_;  // parsed current block
  size_t ei_ = 0;
  bool valid_ = false;
  uint64_t resident_bytes_ = 0;
};

// K-way merge over sorted runs; on an (impossible between well-formed runs)
// full internal-key tie the lowest run index — the newest run — wins,
// matching the two-way merge it replaces.
class MergeIterator {
 public:
  // `tap(run_idx, record, core)` fires exactly once per input entry, in
  // per-run order, when the entry is first loaded; `run_end(run_idx)` fires
  // when that run is exhausted. Either may be null.
  using EntryTap =
      std::function<Status(size_t, const Record&, std::string_view)>;
  using RunEnd = std::function<Status(size_t)>;

  MergeIterator(std::vector<std::unique_ptr<RunIterator>> runs, EntryTap tap,
                RunEnd run_end);

  Status Init();
  bool Valid() const { return current_ != kNone && status_.ok(); }
  const Record& record() const { return runs_[current_]->record(); }
  std::string_view core() const { return runs_[current_]->core(); }
  size_t run_index() const { return current_; }
  // Moves the winning record out and advances past it (firing taps for any
  // newly loaded entry). Check status() when Valid() turns false.
  Record TakeAndAdvance();
  const Status& status() const { return status_; }
  uint64_t resident_bytes() const;

 private:
  static constexpr size_t kNone = static_cast<size_t>(-1);

  Status AfterLoad(size_t idx);  // tap / run-end bookkeeping
  void PickCurrent();

  std::vector<std::unique_ptr<RunIterator>> runs_;
  EntryTap tap_;
  RunEnd run_end_;
  size_t current_ = kNone;
  Status status_;
};

}  // namespace elsm::lsm
