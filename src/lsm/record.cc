#include "lsm/record.h"

#include "common/coding.h"

namespace elsm::lsm {

std::string Record::EncodeCore() const {
  std::string out;
  out.reserve(key.size() + value.size() + 12);
  PutLengthPrefixed(&out, key);
  PutFixed64(&out, ts);
  out.push_back(static_cast<char>(type));
  PutLengthPrefixed(&out, value);
  return out;
}

Result<Record> Record::DecodeCore(std::string_view* input) {
  Record r;
  std::string_view key;
  std::string_view value;
  if (!GetLengthPrefixed(input, &key) || !GetFixed64(input, &r.ts) ||
      input->empty()) {
    return Status::Corruption("bad record encoding");
  }
  const uint8_t type = static_cast<uint8_t>(input->front());
  input->remove_prefix(1);
  if (type > 1) return Status::Corruption("bad record type");
  r.type = static_cast<RecordType>(type);
  if (!GetLengthPrefixed(input, &value)) {
    return Status::Corruption("bad record encoding");
  }
  r.key.assign(key);
  r.value.assign(value);
  return r;
}

}  // namespace elsm::lsm
