// Key-value record model (paper Eq. 1): a record is <key, value, ts, type>.
// Timestamps are assigned by the in-enclave timestamp manager; tombstones
// implement deletes (§5.4).
//
// EncodeCore() is the canonical byte form — it is what hash chains digest,
// what the WAL frames, and what SSTable entries store (followed by a
// length-prefixed embedded-proof blob that is *not* part of the core
// encoding, so proofs can be re-embedded without changing record identity).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace elsm::lsm {

enum class RecordType : uint8_t { kValue = 0, kTombstone = 1 };

struct Record {
  std::string key;
  std::string value;
  uint64_t ts = 0;
  RecordType type = RecordType::kValue;

  bool deleted() const { return type == RecordType::kTombstone; }

  std::string EncodeCore() const;
  // Consumes one record from the front of *input.
  static Result<Record> DecodeCore(std::string_view* input);

  size_t ByteSize() const { return key.size() + value.size() + 16; }

  bool operator==(const Record& other) const = default;
};

// LSM internal ordering: ascending key, then descending timestamp (newest
// first), matching the sorted-run layout of a level.
struct InternalKeyLess {
  bool operator()(const Record& a, const Record& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.ts > b.ts;
  }
};

}  // namespace elsm::lsm
