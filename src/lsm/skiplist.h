// Probabilistic skiplist keyed by (user key asc, ts desc) — the MemTable's
// core structure, mirroring LevelDB's. Single writer at a time (the engine
// serializes writes); concurrent readers are safe against a quiesced list
// (the engine uses a shared_mutex around memtable access).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "lsm/record.h"

namespace elsm::lsm {

class SkipList {
 public:
  SkipList() : rng_(0xe15a), head_(MakeNode(Record{}, kMaxHeight)) {}

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  // Inserts a record; duplicate (key, ts) pairs keep the latest insertion
  // ordered after the earlier one is replaced (writes always carry fresh
  // timestamps, so true duplicates don't occur in normal operation).
  void Insert(Record record);

  // Newest record for `key` with ts <= ts_max, or nullptr.
  const Record* Find(std::string_view key, uint64_t ts_max) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  static constexpr int kMaxHeight = 12;

  struct Node {
    Record record;
    std::vector<Node*> next;
  };

 public:
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : node_(list->head_->next[0]) {}
    bool Valid() const { return node_ != nullptr; }
    const Record& record() const { return node_->record; }
    void Next() { node_ = node_->next[0]; }

   private:
    friend class SkipList;
    const Node* node_;
  };
  Iterator NewIterator() const { return Iterator(this); }

 private:

  Node* MakeNode(Record record, int height) {
    nodes_.push_back(std::make_unique<Node>());
    Node* n = nodes_.back().get();
    n->record = std::move(record);
    n->next.assign(height, nullptr);
    return n;
  }

  int RandomHeight() {
    int h = 1;
    while (h < kMaxHeight && rng_.Uniform(4) == 0) ++h;
    return h;
  }

  bool Less(const Record& a, const Record& b) const { return cmp_(a, b); }

  InternalKeyLess cmp_;
  Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  Node* head_;
  int height_ = 1;
  size_t size_ = 0;

  friend class Iterator;
};

inline void SkipList::Insert(Record record) {
  Node* prev[kMaxHeight];
  Node* x = head_;
  for (int level = height_ - 1; level >= 0; --level) {
    while (x->next[level] != nullptr && Less(x->next[level]->record, record)) {
      x = x->next[level];
    }
    prev[level] = x;
  }
  const int h = RandomHeight();
  if (h > height_) {
    for (int level = height_; level < h; ++level) prev[level] = head_;
    height_ = h;
  }
  Node* n = MakeNode(std::move(record), h);
  for (int level = 0; level < h; ++level) {
    n->next[level] = prev[level]->next[level];
    prev[level]->next[level] = n;
  }
  ++size_;
}

inline const Record* SkipList::Find(std::string_view key,
                                    uint64_t ts_max) const {
  // Seek to the first node with (key, ts <= ts_max): because ordering is
  // (key asc, ts desc), that node — if its key matches — is the newest
  // visible version.
  Record probe;
  probe.key.assign(key);
  probe.ts = ts_max;
  const Node* x = head_;
  for (int level = height_ - 1; level >= 0; --level) {
    while (x->next[level] != nullptr && Less(x->next[level]->record, probe)) {
      x = x->next[level];
    }
  }
  const Node* candidate = x->next[0];
  if (candidate != nullptr && candidate->record.key == key &&
      candidate->record.ts <= ts_max) {
    return &candidate->record;
  }
  return nullptr;
}

}  // namespace elsm::lsm
