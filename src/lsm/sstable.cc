#include "lsm/sstable.h"

#include "common/coding.h"
#include "crypto/hmac.h"

namespace elsm::lsm {

SSTableBuilder::SSTableBuilder(uint64_t block_bytes, std::string mac_key)
    : block_bytes_(block_bytes == 0 ? 4096 : block_bytes),
      mac_key_(std::move(mac_key)) {}

void SSTableBuilder::FlushBlock() {
  if (block_.empty()) return;
  current_.offset = contents_.size();
  current_.size = block_.size();
  if (!mac_key_.empty()) {
    current_.mac = crypto::HmacSha256(mac_key_, block_);
  }
  current_.digest = crypto::Sha256::Digest(block_);
  contents_ += block_;
  meta_.blocks.push_back(current_);
  block_.clear();
  current_ = BlockHandle{};
}

void SSTableBuilder::Add(const Record& record, std::string_view proof_blob) {
  // Only break blocks at key-group boundaries.
  if (block_.size() >= block_bytes_ && record.key != last_key_) FlushBlock();
  if (block_.empty()) current_.first_key = record.key;
  const std::string core = record.EncodeCore();
  PutLengthPrefixed(&block_, core);
  PutLengthPrefixed(&block_, proof_blob);
  ++current_.num_entries;
  ++meta_.num_records;
  if (meta_.smallest.empty() || record.key < meta_.smallest) {
    meta_.smallest = record.key;
  }
  if (record.key > meta_.largest) meta_.largest = record.key;
  last_key_ = record.key;
}

std::string SSTableBuilder::Finish(FileMeta* meta) {
  FlushBlock();
  meta_.size = contents_.size();
  *meta = std::move(meta_);
  meta_ = FileMeta{};
  last_key_.clear();
  return std::move(contents_);
}

RawEntry MaterializeEntry(const BlockEntry& entry) {
  RawEntry out;
  out.record = entry.record;
  out.core.assign(entry.core);
  out.proof_blob.assign(entry.proof_blob);
  return out;
}

Status ParseBlockInto(std::string_view block, size_t reserve,
                      std::vector<BlockEntry>* out) {
  out->clear();
  if (reserve > 0) out->reserve(reserve);
  while (!block.empty()) {
    std::string_view core;
    std::string_view proof;
    if (!GetLengthPrefixed(&block, &core) ||
        !GetLengthPrefixed(&block, &proof)) {
      return Status::Corruption("bad sstable block framing");
    }
    std::string_view core_cursor = core;
    auto record = Record::DecodeCore(&core_cursor);
    if (!record.ok()) return record.status();
    BlockEntry entry;
    entry.record = std::move(record).value();
    entry.core = core;
    entry.proof_blob = proof;
    out->push_back(std::move(entry));
  }
  return Status::Ok();
}

Result<std::vector<RawEntry>> ParseBlock(std::string_view block) {
  std::vector<BlockEntry> views;
  Status s = ParseBlockInto(block, 0, &views);
  if (!s.ok()) return s;
  std::vector<RawEntry> entries;
  entries.reserve(views.size());
  for (const BlockEntry& v : views) entries.push_back(MaterializeEntry(v));
  return entries;
}

Status VerifyBlockMac(std::string_view block, std::string_view mac_key,
                      const crypto::Hash256& expected) {
  if (!crypto::TagEqual(crypto::HmacSha256(mac_key, block), expected)) {
    return Status::AuthFailure("sstable block MAC mismatch");
  }
  return Status::Ok();
}

}  // namespace elsm::lsm
