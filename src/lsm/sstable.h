// SSTable: a sequence of ~4 KiB data blocks. Each entry is a canonical
// record encoding followed by a length-prefixed embedded-proof blob
// (paper §5.2: records stored as <k, v ‖ π>). The block index lives in
// FileMeta (enclave metadata), never in the file, so there is no footer.
//
// A key group (all versions of one data key) never straddles a block or
// file boundary — the read path depends on a group's newest record being
// the first entry of its group within a single block.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "lsm/record.h"
#include "lsm/version.h"

namespace elsm::lsm {

// One decoded SSTable entry. `core` preserves the exact bytes that hash
// chains digest, so verification never depends on re-encoding.
struct RawEntry {
  Record record;
  std::string core;
  std::string proof_blob;
};

// A decoded entry whose byte payloads are *views* into the block image the
// entry was parsed from (valid only while that image is pinned). The Get
// hot path works on these and materializes a RawEntry only for the handful
// of entries that escape into a response.
struct BlockEntry {
  Record record;
  std::string_view core;
  std::string_view proof_blob;
};

RawEntry MaterializeEntry(const BlockEntry& entry);

class SSTableBuilder {
 public:
  // When `mac_key` is non-empty each finished block gets an HMAC tag in its
  // BlockHandle (eLSM-P1 file-granularity protection).
  SSTableBuilder(uint64_t block_bytes, std::string mac_key = "");

  void Add(const Record& record, std::string_view proof_blob);
  // Returns the file image and fills `meta` (name left empty).
  std::string Finish(FileMeta* meta);

  uint64_t pending_bytes() const {
    return uint64_t(contents_.size() + block_.size());
  }

 private:
  void FlushBlock();

  uint64_t block_bytes_;
  std::string mac_key_;
  std::string contents_;
  std::string block_;
  FileMeta meta_;
  BlockHandle current_;
  std::string last_key_;
};

// Decodes every entry of a block image into *out (cleared first; reserved
// to `reserve` when non-zero, typically BlockHandle::num_entries). The
// entries' core/proof views alias `block`.
Status ParseBlockInto(std::string_view block, size_t reserve,
                      std::vector<BlockEntry>* out);

// Decodes every entry of a block image into owning entries.
Result<std::vector<RawEntry>> ParseBlock(std::string_view block);

// Recomputes and checks the HMAC for a block image (P1 read path).
Status VerifyBlockMac(std::string_view block, std::string_view mac_key,
                      const crypto::Hash256& expected);

}  // namespace elsm::lsm
