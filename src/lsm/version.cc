#include "lsm/version.h"

#include <cstring>

#include "common/coding.h"

namespace elsm::lsm {
namespace {

void PutHash(std::string* dst, const crypto::Hash256& h) {
  dst->append(reinterpret_cast<const char*>(h.data()), h.size());
}

bool GetHash(std::string_view* input, crypto::Hash256* h) {
  if (input->size() < 32) return false;
  std::memcpy(h->data(), input->data(), 32);
  input->remove_prefix(32);
  return true;
}

}  // namespace

uint64_t LevelMeta::MetadataBytes() const {
  uint64_t total = bloom.byte_size();
  for (const FileMeta& f : files) {
    total += f.name.size() + f.smallest.size() + f.largest.size() + 32;
    for (const BlockHandle& b : f.blocks) {
      total += b.first_key.size() + 16 + 32;
    }
  }
  return total;
}

std::string LevelMeta::Encode() const {
  std::string out;
  PutVarint64(&out, num_records);
  PutVarint64(&out, bytes);
  PutLengthPrefixed(&out, bloom.Encode());
  PutHash(&out, root);
  PutVarint64(&out, leaf_count);
  PutLengthPrefixed(&out, tree_file);
  PutVarint32(&out, static_cast<uint32_t>(files.size()));
  for (const FileMeta& f : files) {
    PutLengthPrefixed(&out, f.name);
    PutLengthPrefixed(&out, f.smallest);
    PutLengthPrefixed(&out, f.largest);
    PutVarint64(&out, f.size);
    PutVarint64(&out, f.num_records);
    PutVarint32(&out, static_cast<uint32_t>(f.blocks.size()));
    for (const BlockHandle& b : f.blocks) {
      PutVarint64(&out, b.offset);
      PutVarint64(&out, b.size);
      PutVarint32(&out, b.num_entries);
      PutLengthPrefixed(&out, b.first_key);
      PutHash(&out, b.mac);
      PutHash(&out, b.digest);
    }
  }
  return out;
}

Result<LevelMeta> LevelMeta::Decode(std::string_view* input) {
  LevelMeta level;
  std::string_view bloom_bytes;
  std::string_view tree_file;
  uint32_t file_count = 0;
  if (!GetVarint64(input, &level.num_records) ||
      !GetVarint64(input, &level.bytes) ||
      !GetLengthPrefixed(input, &bloom_bytes) ||
      !GetHash(input, &level.root) ||
      !GetVarint64(input, &level.leaf_count) ||
      !GetLengthPrefixed(input, &tree_file) ||
      !GetVarint32(input, &file_count)) {
    return Status::Corruption("bad level meta");
  }
  level.bloom = BloomFilter::Decode(bloom_bytes);
  level.tree_file.assign(tree_file);
  level.files.resize(file_count);
  for (FileMeta& f : level.files) {
    std::string_view name, smallest, largest;
    uint32_t block_count = 0;
    if (!GetLengthPrefixed(input, &name) ||
        !GetLengthPrefixed(input, &smallest) ||
        !GetLengthPrefixed(input, &largest) || !GetVarint64(input, &f.size) ||
        !GetVarint64(input, &f.num_records) ||
        !GetVarint32(input, &block_count)) {
      return Status::Corruption("bad file meta");
    }
    f.name.assign(name);
    f.smallest.assign(smallest);
    f.largest.assign(largest);
    f.blocks.resize(block_count);
    for (BlockHandle& b : f.blocks) {
      std::string_view first_key;
      if (!GetVarint64(input, &b.offset) || !GetVarint64(input, &b.size) ||
          !GetVarint32(input, &b.num_entries) ||
          !GetLengthPrefixed(input, &first_key) || !GetHash(input, &b.mac) ||
          !GetHash(input, &b.digest)) {
        return Status::Corruption("bad block handle");
      }
      b.first_key.assign(first_key);
    }
  }
  return level;
}

std::string EncodeLevels(const std::vector<LevelMeta>& levels) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(levels.size()));
  for (const LevelMeta& level : levels) {
    PutLengthPrefixed(&out, level.Encode());
  }
  return out;
}

void FileTracker::Ref(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  ++refs_[name];
}

void FileTracker::Unref(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = refs_.find(name);
  if (it == refs_.end()) return;
  if (--it->second > 0) return;
  refs_.erase(it);
  if (obsolete_.erase(name) > 0) DeleteLocked(name);
}

void FileTracker::MarkObsolete(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (refs_.count(name) > 0) {
    obsolete_.insert(name);
  } else {
    DeleteLocked(name);
  }
}

std::vector<std::string> FileTracker::DrainDeleted() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.swap(deleted_);
  has_deleted_.store(false, std::memory_order_relaxed);
  return out;
}

void FileTracker::DeleteLocked(const std::string& name) {
  if (defer_deletion_) {
    // Still readable on disk (the last durable manifest may reference it);
    // PurgeParked unlinks it after the next manifest persist.
    parked_.insert(name);
    return;
  }
  (void)fs_->Delete(name);
  deleted_.push_back(name);
  has_deleted_.store(true, std::memory_order_relaxed);
}

void FileTracker::PurgeParked() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& name : parked_) {
    (void)fs_->Delete(name);
    deleted_.push_back(name);
  }
  if (!parked_.empty()) has_deleted_.store(true, std::memory_order_relaxed);
  parked_.clear();
}

Version::Version(std::vector<LevelMeta> levels,
                 std::shared_ptr<FileTracker> tracker)
    : levels_(std::move(levels)), tracker_(std::move(tracker)) {
  if (tracker_ != nullptr) {
    ForEachFile([&](const std::string& name) { tracker_->Ref(name); });
  }
}

Version::~Version() {
  if (tracker_ != nullptr) {
    ForEachFile([&](const std::string& name) { tracker_->Unref(name); });
  }
}

void Version::ForEachFile(
    const std::function<void(const std::string&)>& fn) const {
  for (const LevelMeta& level : levels_) {
    for (const FileMeta& file : level.files) fn(file.name);
    if (!level.tree_file.empty()) fn(level.tree_file);
  }
}

Result<std::vector<LevelMeta>> DecodeLevels(std::string_view input) {
  uint32_t count = 0;
  if (!GetVarint32(&input, &count)) {
    return Status::Corruption("bad levels encoding");
  }
  std::vector<LevelMeta> levels;
  levels.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view payload;
    if (!GetLengthPrefixed(&input, &payload)) {
      return Status::Corruption("bad levels encoding");
    }
    auto level = LevelMeta::Decode(&payload);
    if (!level.ok()) return level.status();
    levels.push_back(std::move(level).value());
  }
  return levels;
}

std::string VersionEdit::Encode() const {
  std::string out;
  PutVarint64(&out, next_file_no);
  PutVarint32(&out, static_cast<uint32_t>(ops.size()));
  for (const LevelOp& op : ops) {
    out.push_back(static_cast<char>(op.kind));
    PutVarint32(&out, op.pos);
    PutLengthPrefixed(&out, op.level.Encode());
  }
  return out;
}

Result<VersionEdit> VersionEdit::Decode(std::string_view input) {
  VersionEdit edit;
  uint32_t count = 0;
  if (!GetVarint64(&input, &edit.next_file_no) ||
      !GetVarint32(&input, &count)) {
    return Status::Corruption("bad version-edit encoding");
  }
  edit.ops.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    LevelOp op;
    if (input.empty()) return Status::Corruption("bad version-edit encoding");
    const uint8_t kind = static_cast<uint8_t>(input.front());
    input.remove_prefix(1);
    if (kind != static_cast<uint8_t>(OpKind::kSet) &&
        kind != static_cast<uint8_t>(OpKind::kInsert)) {
      return Status::Corruption("bad version-edit op kind");
    }
    op.kind = static_cast<OpKind>(kind);
    std::string_view payload;
    if (!GetVarint32(&input, &op.pos) ||
        !GetLengthPrefixed(&input, &payload)) {
      return Status::Corruption("bad version-edit encoding");
    }
    auto level = LevelMeta::Decode(&payload);
    if (!level.ok()) return level.status();
    op.level = std::move(level).value();
    edit.ops.push_back(std::move(op));
  }
  if (!input.empty()) return Status::Corruption("bad version-edit encoding");
  return edit;
}

Status VersionEdit::ApplyTo(std::vector<LevelMeta>* levels) const {
  for (const LevelOp& op : ops) {
    if (op.kind == OpKind::kSet) {
      if (op.pos >= levels->size()) {
        return Status::Corruption("version-edit sets a level slot " +
                                  std::to_string(op.pos) +
                                  " beyond the stack");
      }
      (*levels)[op.pos] = op.level;
    } else {
      if (op.pos > levels->size()) {
        return Status::Corruption("version-edit inserts a level slot " +
                                  std::to_string(op.pos) +
                                  " beyond the stack");
      }
      levels->insert(levels->begin() + op.pos, op.level);
    }
  }
  return Status::Ok();
}

}  // namespace elsm::lsm
