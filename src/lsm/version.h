// Level / file metadata — the enclave-resident index structures (paper
// Fig. 1: "Index" inside the enclave; §4.2: metadata grows sublinearly and
// fits the EPC) — plus the copy-on-write version machinery that lets reads
// run lock-free while the untrusted host compacts.
//
// The engine treats the auth fields (root, leaf_count, tree_file) as opaque
// seal data installed by a CompactionListener; the vanilla engine leaves
// them empty. This is what keeps authentication an add-on (§5.5.3).
//
// A Version is an immutable snapshot of the whole level stack. The engine
// publishes the current Version behind a shared_ptr swap; readers copy the
// pointer under a brief shared lock and then search sealed SSTables with no
// lock at all. FileTracker refcounts the files each live Version pins, so
// compaction can retire its inputs immediately while snapshot holders keep
// reading them (LevelDB-style deferred deletion).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "crypto/sha256.h"
#include "lsm/bloom.h"
#include "storage/fs.h"

namespace elsm::lsm {

struct BlockHandle {
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t num_entries = 0;
  std::string first_key;
  // Per-block MAC (eLSM-P1 file-granularity protection; unused in P2).
  crypto::Hash256 mac = crypto::kZeroHash;
  // SHA-256 of the block bytes, sealed into the snapshot metadata at build
  // time. The read cache keys on it, so a cached hit is already verified
  // and a rewritten file can never satisfy a stale lookup.
  crypto::Hash256 digest = crypto::kZeroHash;
};

struct FileMeta {
  std::string name;
  std::string smallest;
  std::string largest;
  uint64_t size = 0;
  uint64_t num_records = 0;
  std::vector<BlockHandle> blocks;
};

struct LevelMeta {
  std::vector<FileMeta> files;
  uint64_t num_records = 0;
  uint64_t bytes = 0;
  BloomFilter bloom;

  // --- authentication seal (opaque to the engine) ---
  crypto::Hash256 root = crypto::kZeroHash;
  uint64_t leaf_count = 0;      // distinct keys in the level
  std::string tree_file;        // untrusted Merkle-node sidecar

  // Approximate enclave-metadata footprint of this level (indexes+bloom).
  uint64_t MetadataBytes() const;

  std::string Encode() const;
  static Result<LevelMeta> Decode(std::string_view* input);
};

// Serialize/restore the whole level stack (the manifest payload; the elsm
// facade seals it and binds it to the monotonic counter).
std::string EncodeLevels(const std::vector<LevelMeta>& levels);
Result<std::vector<LevelMeta>> DecodeLevels(std::string_view input);

// The delta one structural change (a flush or one compaction step) applies
// to the level stack: an ordered sequence of level-slot operations plus the
// file-number high-water mark. The ops mirror the install sequence of
// LsmEngine::CompactStep — clear the merged-away upper levels in place,
// then set or insert the freshly built level — so replaying them over the
// previous stack reproduces the new one exactly (same files, blooms and
// auth seals). O(touched levels) to encode, vs O(all files) for a full
// EncodeLevels snapshot: this is what makes the facade's manifest log
// constant-cost per mutation.
struct VersionEdit {
  enum class OpKind : uint8_t { kSet = 0, kInsert = 1 };
  struct LevelOp {
    OpKind kind = OpKind::kSet;
    uint32_t pos = 0;
    LevelMeta level;
  };

  uint64_t next_file_no = 0;
  std::vector<LevelOp> ops;

  std::string Encode() const;
  static Result<VersionEdit> Decode(std::string_view input);
  // Replays the edit over `levels` in place. Fails (without a partial
  // mutation having semantic meaning) when an op addresses a slot the
  // stack does not have — a record replayed against the wrong base.
  Status ApplyTo(std::vector<LevelMeta>* levels) const;
};

// Thread-safe refcount of the on-disk files live Versions pin. A file is
// physically deleted once it is both obsolete (dropped from the current
// version by a compaction) and unreferenced (the last snapshot that could
// read it has been released). Deletions are recorded so the engine can
// purge its mmap/block caches lazily.
//
// With `defer_deletion`, files that become deletable are *parked* instead
// of unlinked; PurgeParked() performs the physical deletes. The facade
// purges only after the manifest that stops referencing those files is
// durable — otherwise a crash between a compaction's version swap and its
// manifest persist would leave the recovered (old) manifest pointing at
// vanished files.
class FileTracker {
 public:
  explicit FileTracker(std::shared_ptr<storage::Fs> fs,
                       bool defer_deletion = false)
      : fs_(std::move(fs)), defer_deletion_(defer_deletion) {}

  void Ref(const std::string& name);
  void Unref(const std::string& name);
  // Marks `name` dead-on-last-unref; deletes immediately if unreferenced.
  void MarkObsolete(const std::string& name);
  // Physically deletes every parked file (defer_deletion mode). Call once
  // the manifest no longer referencing them has been persisted.
  void PurgeParked();
  // Names deleted since the last drain (for cache invalidation).
  std::vector<std::string> DrainDeleted();
  // Cheap pre-check for DrainDeleted (one relaxed atomic load), so the
  // read path can poll without taking the mutex.
  bool has_deleted() const {
    return has_deleted_.load(std::memory_order_relaxed);
  }

 private:
  void DeleteLocked(const std::string& name);

  std::shared_ptr<storage::Fs> fs_;
  const bool defer_deletion_;
  std::mutex mu_;
  std::map<std::string, int> refs_;
  std::set<std::string> obsolete_;
  std::set<std::string> parked_;  // deletable, awaiting a durable manifest
  std::vector<std::string> deleted_;
  std::atomic<bool> has_deleted_{false};
};

// An immutable snapshot of the level stack. Construction pins every SSTable
// and tree-sidecar file in the tracker; destruction unpins them, which may
// trigger the deferred deletion of compacted-away inputs.
class Version {
 public:
  Version(std::vector<LevelMeta> levels, std::shared_ptr<FileTracker> tracker);
  ~Version();

  Version(const Version&) = delete;
  Version& operator=(const Version&) = delete;

  const std::vector<LevelMeta>& levels() const { return levels_; }

 private:
  void ForEachFile(const std::function<void(const std::string&)>& fn) const;

  std::vector<LevelMeta> levels_;
  std::shared_ptr<FileTracker> tracker_;
};

}  // namespace elsm::lsm
