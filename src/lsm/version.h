// Level / file metadata — the enclave-resident index structures (paper
// Fig. 1: "Index" inside the enclave; §4.2: metadata grows sublinearly and
// fits the EPC).
//
// The engine treats the auth fields (root, leaf_count, tree_file) as opaque
// seal data installed by a CompactionListener; the vanilla engine leaves
// them empty. This is what keeps authentication an add-on (§5.5.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "crypto/sha256.h"
#include "lsm/bloom.h"

namespace elsm::lsm {

struct BlockHandle {
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t num_entries = 0;
  std::string first_key;
  // Per-block MAC (eLSM-P1 file-granularity protection; unused in P2).
  crypto::Hash256 mac = crypto::kZeroHash;
};

struct FileMeta {
  std::string name;
  std::string smallest;
  std::string largest;
  uint64_t size = 0;
  uint64_t num_records = 0;
  std::vector<BlockHandle> blocks;
};

struct LevelMeta {
  std::vector<FileMeta> files;
  uint64_t num_records = 0;
  uint64_t bytes = 0;
  BloomFilter bloom;

  // --- authentication seal (opaque to the engine) ---
  crypto::Hash256 root = crypto::kZeroHash;
  uint64_t leaf_count = 0;      // distinct keys in the level
  std::string tree_file;        // untrusted Merkle-node sidecar

  // Approximate enclave-metadata footprint of this level (indexes+bloom).
  uint64_t MetadataBytes() const;

  std::string Encode() const;
  static Result<LevelMeta> Decode(std::string_view* input);
};

// Serialize/restore the whole level stack (the manifest payload; the elsm
// facade seals it and binds it to the monotonic counter).
std::string EncodeLevels(const std::vector<LevelMeta>& levels);
Result<std::vector<LevelMeta>> DecodeLevels(std::string_view input);

}  // namespace elsm::lsm
