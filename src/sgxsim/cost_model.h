// Calibrated cost model for the simulated SGX enclave (DESIGN.md §2).
//
// The engine executes the real data structures; the enclave runtime counts
// events (world switches, EPC page faults, bytes copied/hashed/ciphered,
// bytes of IO) and this table converts events into simulated nanoseconds.
// Values are calibrated so the *ratios* of the paper's figures reproduce:
// the per-event magnitudes follow published SGX measurements (ECall/OCall
// ~8k cycles, EPC paging tens of microseconds per 4 KiB page).
#pragma once

#include <cstdint>

namespace elsm::sgx {

struct CostModel {
  // World switches (round trip, ns). OCalls are costlier than ECalls:
  // they carry a syscall plus enclave-side cache/TLB pollution on re-entry.
  uint64_t ecall_ns = 2'000;
  uint64_t ocall_ns = 8'000;

  // Hardware enclave paging: cost per 4 KiB EPC page fault (AEX + EWB +
  // page table walk). Dominates once a working set exceeds the EPC.
  uint64_t epc_fault_ns = 20'000;
  // Software paging (Eleos-style user-space relocation): cheaper than a
  // hardware fault but still a cross-boundary copy of a page.
  uint64_t sw_fault_ns = 12'000;
  // Eleos runtime monitoring overhead per memory reference.
  uint64_t sw_monitor_ns = 60;

  // Memory access (per byte, sub-ns expressed in picoseconds to keep
  // integer math; 1000 ps = 1 ns/B).
  uint64_t untrusted_read_pb = 500;    // plain DRAM read
  uint64_t enclave_read_pb = 700;      // MEE-decrypted read, page resident
  uint64_t cross_copy_pb = 1'500;      // memcpy across the enclave boundary
  uint64_t plain_copy_pb = 500;        // memcpy within one world

  // Crypto work inside the enclave (vectorized SHA-256 class).
  uint64_t hash_per_byte_pb = 1'500;
  uint64_t hash_setup_ns = 100;        // per invocation
  uint64_t cipher_per_byte_pb = 1'200; // AES-NI-class stream cipher

  // Simulated storage (paper's evaluation is memory-resident: reads come
  // from the OS page cache, writes are sequential).
  uint64_t file_read_req_ns = 1'000;   // per read request (syscall-side)
  uint64_t file_read_pb = 500;         // per byte
  uint64_t file_write_req_ns = 400;
  uint64_t file_write_pb = 400;
  // Group-committed WAL append: the world switch is batched across writers,
  // so the per-record cost folds the amortized exit into one constant.
  uint64_t wal_append_ns = 1'500;
  uint64_t mmap_setup_ns = 4'000;      // one-time mmap of a file

  // Trusted monotonic counter (TPM-class; buffered, charged rarely).
  uint64_t counter_bump_ns = 80'000;

  // Page geometry.
  uint64_t page_size = 4096;

  // Scaled EPC budget: 128 MiB / 64 (DESIGN.md geometry), minus nothing --
  // the reserved share is modeled by registering metadata regions.
  uint64_t epc_bytes = 2 * 1024 * 1024;

  uint64_t CopyCost(uint64_t bytes, bool cross_boundary) const {
    return bytes * (cross_boundary ? cross_copy_pb : plain_copy_pb) / 1000;
  }
  uint64_t HashCost(uint64_t bytes) const {
    return hash_setup_ns + bytes * hash_per_byte_pb / 1000;
  }
  uint64_t CipherCost(uint64_t bytes) const {
    return bytes * cipher_per_byte_pb / 1000;
  }
};

}  // namespace elsm::sgx
