// Trusted monotonic counter (paper §5.6.1 rollback defence).
//
// Models a TPM / SGX-SDK monotonic counter: the value survives "power
// cycles" (DB close/reopen) because it lives in a TrustedPlatform object
// owned by the test/bench harness, independent of the untrusted storage the
// adversary may roll back. Bumps are expensive (counter_bump_ns) and in eLSM
// are buffered/periodic.
#pragma once

#include <cstdint>

namespace elsm::sgx {

class MonotonicCounter {
 public:
  uint64_t Read() const { return value_; }
  uint64_t Increment() { return ++value_; }

 private:
  uint64_t value_ = 0;
};

}  // namespace elsm::sgx
