#include "sgxsim/enclave.h"

namespace elsm::sgx {

Enclave::Enclave(CostModel model, bool enabled)
    : model_(model),
      enabled_(enabled),
      epc_(model.epc_bytes, model.page_size) {}

void Enclave::ChargeEcall() {
  if (!enabled_) return;
  counters_.ecalls.fetch_add(1, std::memory_order_relaxed);
  Advance(model_.ecall_ns);
}

void Enclave::ChargeOcall() {
  if (!enabled_) return;
  counters_.ocalls.fetch_add(1, std::memory_order_relaxed);
  Advance(model_.ocall_ns);
}

RegionId Enclave::RegisterRegion(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(epc_mu_);
  return epc_.Register(bytes);
}

void Enclave::ResizeRegion(RegionId region, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(epc_mu_);
  epc_.Resize(region, bytes);
}

void Enclave::FreeRegion(RegionId region) {
  std::lock_guard<std::mutex> lock(epc_mu_);
  epc_.Free(region);
}

void Enclave::AccessRegion(RegionId region, uint64_t offset, uint64_t len,
                           bool software_paging) {
  if (!enabled_) {
    UntrustedRead(len);
    return;
  }
  uint64_t faults = 0;
  {
    std::lock_guard<std::mutex> lock(epc_mu_);
    faults = epc_.Access(region, offset, len);
  }
  if (faults > 0) {
    counters_.epc_faults.fetch_add(faults, std::memory_order_relaxed);
    Advance(faults *
            (software_paging ? model_.sw_fault_ns : model_.epc_fault_ns));
  }
  Advance(len * model_.enclave_read_pb / 1000);
}

void Enclave::UntrustedRead(uint64_t bytes) {
  Advance(bytes * model_.untrusted_read_pb / 1000);
}

void Enclave::Copy(uint64_t bytes, bool cross_boundary) {
  counters_.bytes_copied.fetch_add(bytes, std::memory_order_relaxed);
  // Crossing the boundary is only special when the enclave is real.
  Advance(model_.CopyCost(bytes, cross_boundary && enabled_));
}

void Enclave::ChargeHash(uint64_t bytes) {
  counters_.bytes_hashed.fetch_add(bytes, std::memory_order_relaxed);
  Advance(model_.HashCost(bytes));
}

void Enclave::ChargeCipher(uint64_t bytes) {
  counters_.bytes_ciphered.fetch_add(bytes, std::memory_order_relaxed);
  Advance(model_.CipherCost(bytes));
}

void Enclave::ChargeFileRead(uint64_t bytes) {
  counters_.file_bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  Advance(model_.file_read_req_ns + bytes * model_.file_read_pb / 1000);
}

void Enclave::ChargeFileWrite(uint64_t bytes) {
  counters_.file_bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  Advance(model_.file_write_req_ns + bytes * model_.file_write_pb / 1000);
}

void Enclave::ChargeWalAppend(uint64_t bytes) {
  counters_.wal_appends.fetch_add(1, std::memory_order_relaxed);
  Advance(model_.wal_append_ns + bytes * model_.file_write_pb / 1000);
}

void Enclave::ChargeMmapSetup() { Advance(model_.mmap_setup_ns); }

void Enclave::ChargeCounterBump() { Advance(model_.counter_bump_ns); }

void Enclave::Advance(uint64_t ns) {
  clock_ns_.fetch_add(ns, std::memory_order_relaxed);
}

EnclaveCounters Enclave::counters() const {
  EnclaveCounters out;
  out.ecalls = counters_.ecalls.load(std::memory_order_relaxed);
  out.ocalls = counters_.ocalls.load(std::memory_order_relaxed);
  out.epc_faults = counters_.epc_faults.load(std::memory_order_relaxed);
  out.bytes_hashed = counters_.bytes_hashed.load(std::memory_order_relaxed);
  out.bytes_ciphered =
      counters_.bytes_ciphered.load(std::memory_order_relaxed);
  out.bytes_copied = counters_.bytes_copied.load(std::memory_order_relaxed);
  out.file_bytes_read =
      counters_.file_bytes_read.load(std::memory_order_relaxed);
  out.file_bytes_written =
      counters_.file_bytes_written.load(std::memory_order_relaxed);
  out.wal_appends = counters_.wal_appends.load(std::memory_order_relaxed);
  return out;
}

}  // namespace elsm::sgx
