// Simulated enclave runtime: the single charging point through which the
// storage engine reports its work. Wraps a SimClock (accumulated simulated
// nanoseconds), the EPC page simulator, and event counters.
//
// `enabled() == false` models the unsecured baselines: world switches are
// free (plain calls), enclave regions behave like ordinary DRAM, no paging.
//
// Thread safety: the clock and counters are atomics; the EPC page table is
// guarded by a mutex. Concurrent DB operations therefore serialize only on
// the page-table update, mirroring how real EPC contention behaves.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "sgxsim/cost_model.h"
#include "sgxsim/epc.h"

namespace elsm::sgx {

struct EnclaveCounters {
  uint64_t ecalls = 0;
  uint64_t ocalls = 0;
  uint64_t epc_faults = 0;
  uint64_t bytes_hashed = 0;
  uint64_t bytes_ciphered = 0;
  uint64_t bytes_copied = 0;
  uint64_t file_bytes_read = 0;
  uint64_t file_bytes_written = 0;
  uint64_t wal_appends = 0;
};

class Enclave {
 public:
  explicit Enclave(CostModel model = {}, bool enabled = true);

  bool enabled() const { return enabled_; }
  const CostModel& model() const { return model_; }

  // --- world switches -----------------------------------------------------
  void ChargeEcall();
  void ChargeOcall();

  // --- enclave memory ------------------------------------------------------
  RegionId RegisterRegion(uint64_t bytes);
  void ResizeRegion(RegionId region, uint64_t bytes);
  void FreeRegion(RegionId region);
  // Read/write `len` bytes of an enclave region: charges resident-access
  // cost plus any page faults. No-op paging when the enclave is disabled.
  // `software_paging` bills misses at the Eleos-style user-space relocation
  // price (sw_fault_ns) instead of a hardware EPC fault.
  void AccessRegion(RegionId region, uint64_t offset, uint64_t len,
                    bool software_paging = false);

  // --- plain memory & copies ----------------------------------------------
  void UntrustedRead(uint64_t bytes);
  void Copy(uint64_t bytes, bool cross_boundary);

  // --- crypto (charged only; callers do the real work via elsm::crypto) ---
  void ChargeHash(uint64_t bytes);
  void ChargeCipher(uint64_t bytes);

  // --- storage --------------------------------------------------------------
  void ChargeFileRead(uint64_t bytes);
  void ChargeFileWrite(uint64_t bytes);
  void ChargeWalAppend(uint64_t bytes);
  void ChargeMmapSetup();
  void ChargeCounterBump();

  // Raw simulated-time charge (e.g. fixed-function costs in baselines).
  void Advance(uint64_t ns);

  uint64_t now_ns() const { return clock_ns_.load(std::memory_order_relaxed); }
  EnclaveCounters counters() const;
  uint64_t epc_faults() const {
    return counters_.epc_faults.load(std::memory_order_relaxed);
  }

 private:
  struct AtomicCounters {
    std::atomic<uint64_t> ecalls{0};
    std::atomic<uint64_t> ocalls{0};
    std::atomic<uint64_t> epc_faults{0};
    std::atomic<uint64_t> bytes_hashed{0};
    std::atomic<uint64_t> bytes_ciphered{0};
    std::atomic<uint64_t> bytes_copied{0};
    std::atomic<uint64_t> file_bytes_read{0};
    std::atomic<uint64_t> file_bytes_written{0};
    std::atomic<uint64_t> wal_appends{0};
  };

  CostModel model_;
  bool enabled_;
  std::atomic<uint64_t> clock_ns_{0};
  mutable std::mutex epc_mu_;
  EpcSimulator epc_;
  AtomicCounters counters_;
};

// RAII world-switch guards for readability at call sites.
class EcallScope {
 public:
  explicit EcallScope(Enclave& enclave) { enclave.ChargeEcall(); }
};
class OcallScope {
 public:
  explicit OcallScope(Enclave& enclave) { enclave.ChargeOcall(); }
};

}  // namespace elsm::sgx
