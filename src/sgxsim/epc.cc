#include "sgxsim/epc.h"

namespace elsm::sgx {

EpcSimulator::EpcSimulator(uint64_t epc_bytes, uint64_t page_size)
    : page_size_(page_size == 0 ? 4096 : page_size),
      capacity_pages_(epc_bytes / page_size_) {
  if (capacity_pages_ == 0) capacity_pages_ = 1;
}

RegionId EpcSimulator::Register(uint64_t bytes) {
  const RegionId id = next_region_++;
  region_bytes_[id] = bytes;
  return id;
}

void EpcSimulator::Resize(RegionId region, uint64_t bytes) {
  region_bytes_[region] = bytes;
}

void EpcSimulator::Free(RegionId region) {
  region_bytes_.erase(region);
  // Drop this region's resident pages so they stop occupying EPC.
  for (auto it = lru_.begin(); it != lru_.end();) {
    if ((*it >> 40) == region) {
      table_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void EpcSimulator::TouchPage(PageKey key, uint64_t* faults) {
  ++stats_.accesses;
  auto it = table_.find(key);
  if (it != table_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  ++stats_.faults;
  ++*faults;
  if (lru_.size() >= capacity_pages_) {
    table_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  table_[key] = lru_.begin();
}

uint64_t EpcSimulator::Access(RegionId region, uint64_t offset, uint64_t len) {
  if (len == 0) len = 1;
  const uint64_t first = offset / page_size_;
  const uint64_t last = (offset + len - 1) / page_size_;
  uint64_t faults = 0;
  for (uint64_t page = first; page <= last; ++page) {
    TouchPage(Key(region, page), &faults);
  }
  return faults;
}

}  // namespace elsm::sgx
