// Page-granular EPC (Enclave Page Cache) simulator.
//
// Enclave-resident memory regions register here; every access walks the
// touched 4 KiB pages through an LRU page table bounded by the EPC budget.
// A miss is an enclave page fault (the dominant cost in eLSM-P1 once the
// in-enclave read buffer outgrows the EPC, Fig. 2 / Fig. 6).
//
// Regions model *enclave virtual memory*: they can be far larger than the
// EPC; only residency is bounded.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace elsm::sgx {

using RegionId = uint32_t;

struct EpcStats {
  uint64_t accesses = 0;
  uint64_t faults = 0;
  uint64_t evictions = 0;
};

class EpcSimulator {
 public:
  EpcSimulator(uint64_t epc_bytes, uint64_t page_size);

  // Registers an enclave memory region of `bytes` virtual size; returns its
  // id. Pages are faulted in lazily on first access.
  RegionId Register(uint64_t bytes);
  void Resize(RegionId region, uint64_t bytes);
  void Free(RegionId region);

  // Touches [offset, offset+len) of the region; returns the number of page
  // faults incurred (0 when all pages are resident).
  uint64_t Access(RegionId region, uint64_t offset, uint64_t len);

  const EpcStats& stats() const { return stats_; }
  uint64_t resident_pages() const { return lru_.size(); }
  uint64_t capacity_pages() const { return capacity_pages_; }

 private:
  using PageKey = uint64_t;  // (region << 40) | page_number
  static PageKey Key(RegionId region, uint64_t page) {
    return (uint64_t(region) << 40) | page;
  }

  void TouchPage(PageKey key, uint64_t* faults);

  uint64_t page_size_;
  uint64_t capacity_pages_;
  RegionId next_region_ = 1;
  std::unordered_map<RegionId, uint64_t> region_bytes_;
  // LRU: front = most recent. Map points into the list for O(1) updates.
  std::list<PageKey> lru_;
  std::unordered_map<PageKey, std::list<PageKey>::iterator> table_;
  EpcStats stats_;
};

}  // namespace elsm::sgx
