#include "sgxsim/sealed.h"

#include <cstring>

#include "crypto/hmac.h"

namespace elsm::sgx {

std::string Seal(std::string_view sealing_key, std::string_view payload) {
  const crypto::Hash256 tag = crypto::HmacSha256(sealing_key, payload);
  std::string out(payload);
  out.append(reinterpret_cast<const char*>(tag.data()), tag.size());
  return out;
}

Result<std::string> Unseal(std::string_view sealing_key,
                           std::string_view sealed_blob) {
  if (sealed_blob.size() < 32) {
    return Status::Corruption("sealed blob shorter than tag");
  }
  const std::string_view payload =
      sealed_blob.substr(0, sealed_blob.size() - 32);
  crypto::Hash256 tag;
  std::memcpy(tag.data(), sealed_blob.data() + payload.size(), 32);
  if (!crypto::TagEqual(tag, crypto::HmacSha256(sealing_key, payload))) {
    return Status::AuthFailure("sealed blob MAC mismatch");
  }
  return std::string(payload);
}

}  // namespace elsm::sgx
