// Sealed storage: enclave-keyed authenticated blobs (SGX sealing analogue).
//
// Seal(key, payload) = payload || HMAC(key, payload). Unseal authenticates
// and strips the tag. eLSM seals its manifest (level roots + WAL digest +
// counter value) so that a restart can detect tampering and, combined with
// the monotonic counter, rollbacks.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"

namespace elsm::sgx {

std::string Seal(std::string_view sealing_key, std::string_view payload);
Result<std::string> Unseal(std::string_view sealing_key,
                           std::string_view sealed_blob);

}  // namespace elsm::sgx
