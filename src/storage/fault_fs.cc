#include "storage/fault_fs.h"

#include <algorithm>

namespace elsm::storage {

void FaultFs::ScheduleCrash(uint64_t ops_from_now, double keep_fraction) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  crash_at_ = ops_ + std::max<uint64_t>(1, ops_from_now);
  keep_fraction_ = std::clamp(keep_fraction, 0.0, 1.0);
}

void FaultFs::CrashNow() {
  std::lock_guard<std::mutex> lock(fault_mu_);
  crashed_ = true;
  crash_at_ = 0;
  if (crash_op_.empty()) crash_op_ = "manual";
}

void FaultFs::ClearCrash() {
  std::lock_guard<std::mutex> lock(fault_mu_);
  crashed_ = false;
  crash_at_ = 0;
}

bool FaultFs::crashed() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return crashed_;
}

std::string FaultFs::crash_op() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return crash_op_;
}

uint64_t FaultFs::mutating_ops() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return ops_;
}

bool FaultFs::CountOp(const char* kind, double* keep) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  *keep = -1.0;
  if (crashed_) return true;
  ++ops_;
  if (crash_at_ != 0 && ops_ >= crash_at_) {
    crashed_ = true;
    crash_at_ = 0;
    crash_op_ = kind;
    *keep = keep_fraction_;
    return true;
  }
  return false;
}

Status FaultFs::Write(const std::string& name, std::string contents) {
  double keep = -1.0;
  if (CountOp("write", &keep)) {
    if (keep >= 0.0) {
      (void)SimFs::Write(
          name, contents.substr(0, size_t(double(contents.size()) * keep)));
    }
    return CrashedStatus();
  }
  return SimFs::Write(name, std::move(contents));
}

Status FaultFs::Append(const std::string& name, std::string_view data) {
  double keep = -1.0;
  if (CountOp("append", &keep)) {
    if (keep >= 0.0) {
      (void)SimFs::Append(name,
                          data.substr(0, size_t(double(data.size()) * keep)));
    }
    return CrashedStatus();
  }
  return SimFs::Append(name, data);
}

Status FaultFs::Delete(const std::string& name) {
  double keep = -1.0;
  if (CountOp("delete", &keep)) return CrashedStatus();
  return SimFs::Delete(name);
}

Status FaultFs::Rename(const std::string& from, const std::string& to) {
  double keep = -1.0;
  if (CountOp("rename", &keep)) return CrashedStatus();
  return SimFs::Rename(from, to);
}

}  // namespace elsm::storage
