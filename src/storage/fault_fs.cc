#include "storage/fault_fs.h"

#include <algorithm>

#include "storage/simfs.h"

namespace elsm::storage {

FaultFs::FaultFs(std::shared_ptr<Fs> base)
    : Fs(base->enclave_shared()), base_(std::move(base)) {}

FaultFs::FaultFs(std::shared_ptr<sgx::Enclave> enclave)
    : Fs(enclave), base_(std::make_shared<SimFs>(std::move(enclave))) {}

void FaultFs::ScheduleCrash(uint64_t ops_from_now, double keep_fraction) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  crash_at_ = ops_ + std::max<uint64_t>(1, ops_from_now);
  keep_fraction_ = std::clamp(keep_fraction, 0.0, 1.0);
}

void FaultFs::CrashNow() {
  std::lock_guard<std::mutex> lock(fault_mu_);
  if (!crashed_ && unsynced_loss_) DropUnsyncedLocked();
  crashed_ = true;
  crash_at_ = 0;
  if (crash_op_.empty()) crash_op_ = "manual";
}

void FaultFs::ClearCrash() {
  std::lock_guard<std::mutex> lock(fault_mu_);
  crashed_ = false;
  crash_at_ = 0;
}

void FaultFs::EnableUnsyncedLoss(bool on) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  unsynced_loss_ = on;
  if (!on) undo_log_.clear();
}

void FaultFs::ScheduleTransient(uint64_t ops_from_now, TransientKind kind,
                                double keep_fraction) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  transient_at_ = transient_ops_ + std::max<uint64_t>(1, ops_from_now);
  transient_kind_ = kind;
  transient_keep_ = std::clamp(keep_fraction, 0.0, 1.0);
}

void FaultFs::SetTransientRate(double rate, uint64_t seed) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  transient_rate_ = rate;
  rng_state_ = seed != 0 ? seed : 0x9e3779b97f4a7c15ull;
}

void FaultFs::SetCapacityBudget(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  capacity_budget_ = bytes;
}

uint64_t FaultFs::transient_ops() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return transient_ops_;
}

uint64_t FaultFs::injected_faults() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return injected_faults_;
}

std::string FaultFs::transient_op() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return transient_op_;
}

Status FaultFs::MaybeTransientLocked(const char* kind, OpClass cls,
                                     double* keep) const {
  if (keep != nullptr) *keep = -1.0;
  ++transient_ops_;
  bool fire = false;
  TransientKind fired = TransientKind::kEIO;
  if (transient_at_ != 0 && transient_ops_ >= transient_at_) {
    fire = true;
    fired = transient_kind_;
    transient_at_ = 0;  // one-shot: the blip has passed
  } else if (transient_rate_ > 0.0) {
    // xorshift64 → uniform draw in [0,1) from the top 53 bits.
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    const double draw = double(rng_state_ >> 11) * (1.0 / double(1ull << 53));
    fire = draw < transient_rate_;
  }
  if (!fire) return Status::Ok();
  ++injected_faults_;
  transient_op_ = kind;
  // Degrade kinds that make no sense for the op class: a read cannot run
  // out of space or short-write, a sync/delete carries no payload.
  if (cls == OpClass::kRead && fired == TransientKind::kENOSPC) {
    fired = TransientKind::kEIO;
  }
  if (cls != OpClass::kPayload && fired == TransientKind::kShortWrite) {
    fired = TransientKind::kEIO;
  }
  switch (fired) {
    case TransientKind::kENOSPC:
      return Status::CapacityExceeded(std::string("injected ENOSPC: ") + kind);
    case TransientKind::kShortWrite:
      if (keep != nullptr) *keep = transient_keep_;
      return Status::Unavailable(std::string("injected short write: ") + kind);
    case TransientKind::kEIO:
      break;
  }
  return Status::Unavailable(std::string("injected EIO: ") + kind);
}

uint64_t FaultFs::UsedBytesLocked() const {
  uint64_t used = 0;
  for (const std::string& name : base_->List("")) {
    auto size = base_->FileSize(name);
    if (size.ok()) used += size.value();
  }
  return used;
}

Status FaultFs::CheckBudgetLocked(const char* kind, uint64_t new_bytes,
                                  uint64_t replaced_bytes) const {
  if (capacity_budget_ == 0) return Status::Ok();
  // Recomputed from the base on every admission so undo-log rollbacks and
  // direct adversary edits can never make the accounting drift.
  const uint64_t used = UsedBytesLocked();
  const uint64_t after = used - std::min(used, replaced_bytes) + new_bytes;
  if (after <= capacity_budget_) return Status::Ok();
  ++injected_faults_;
  transient_op_ = kind;
  return Status::CapacityExceeded(std::string("disk full (budget): ") + kind);
}

bool FaultFs::crashed() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return crashed_;
}

std::string FaultFs::crash_op() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return crash_op_;
}

uint64_t FaultFs::mutating_ops() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return ops_;
}

bool FaultFs::CountOpLocked(const char* kind, double* keep) {
  *keep = -1.0;
  if (crashed_) return true;
  ++ops_;
  if (crash_at_ != 0 && ops_ >= crash_at_) {
    crashed_ = true;
    crash_at_ = 0;
    crash_op_ = kind;
    *keep = keep_fraction_;
    // Power fails mid-op: everything the store never fsynced is gone
    // before the torn fragment of this op (maybe) reaches the platter.
    if (unsynced_loss_) DropUnsyncedLocked();
    return true;
  }
  return false;
}

bool FaultFs::HasUndoLocked(Undo::Barrier barrier,
                            const std::string& name) const {
  for (const Undo& u : undo_log_) {
    if (u.barrier == barrier && u.name == name) return true;
  }
  return false;
}

void FaultFs::SnapshotLocked(Undo::Barrier barrier, const std::string& name) {
  if (!unsynced_loss_) return;
  // One pre-image per (barrier, name) suffices: entries of a class retire
  // together, and reverse replay makes the oldest pre-image the restored
  // state — so re-snapshotting on every append would only burn quadratic
  // I/O and memory for the same rollback.
  if (HasUndoLocked(barrier, name)) return;
  Undo undo;
  undo.barrier = barrier;
  undo.name = name;
  // Blob() charges nothing — the snapshot is harness bookkeeping, not I/O
  // the store performed.
  auto blob = base_->Blob(name);
  if (blob != nullptr) {
    undo.existed = true;
    undo.content = *blob;
  }
  undo_log_.push_back(std::move(undo));
}

void FaultFs::DropUnsyncedLocked() {
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    if (it->existed) {
      (void)base_->Write(it->name, it->content);
    } else if (base_->Exists(it->name)) {
      (void)base_->Delete(it->name);
    }
  }
  undo_log_.clear();
}

Status FaultFs::Write(const std::string& name, std::string contents) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  if (!crashed_) {
    double tkeep = -1.0;
    Status ts = MaybeTransientLocked("write", OpClass::kPayload, &tkeep);
    if (!ts.ok()) {
      if (tkeep >= 0.0) {
        // The short prefix really lands (and is undo-logged like any
        // landed bytes) — a retrying caller must cope with it.
        SnapshotLocked(Undo::Barrier::kData, name);
        (void)base_->Write(
            name, contents.substr(0, size_t(double(contents.size()) * tkeep)));
      }
      return ts;
    }
    auto replaced = base_->FileSize(name);
    Status bs =
        CheckBudgetLocked("write", contents.size(), replaced.value_or(0));
    if (!bs.ok()) return bs;
  }
  double keep = -1.0;
  if (CountOpLocked("write", &keep)) {
    if (keep >= 0.0) {
      (void)base_->Write(
          name, contents.substr(0, size_t(double(contents.size()) * keep)));
    }
    return CrashedStatus();
  }
  SnapshotLocked(Undo::Barrier::kData, name);
  return base_->Write(name, std::move(contents));
}

Status FaultFs::Append(const std::string& name, std::string_view data) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  if (!crashed_) {
    double tkeep = -1.0;
    Status ts = MaybeTransientLocked("append", OpClass::kPayload, &tkeep);
    if (!ts.ok()) {
      if (tkeep >= 0.0) {
        SnapshotLocked(Undo::Barrier::kData, name);
        (void)base_->Append(
            name, data.substr(0, size_t(double(data.size()) * tkeep)));
      }
      return ts;
    }
    Status bs = CheckBudgetLocked("append", data.size(), 0);
    if (!bs.ok()) return bs;
  }
  double keep = -1.0;
  if (CountOpLocked("append", &keep)) {
    if (keep >= 0.0) {
      (void)base_->Append(name,
                          data.substr(0, size_t(double(data.size()) * keep)));
    }
    return CrashedStatus();
  }
  SnapshotLocked(Undo::Barrier::kData, name);
  return base_->Append(name, data);
}

Status FaultFs::Delete(const std::string& name) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  if (!crashed_) {
    Status ts = MaybeTransientLocked("delete", OpClass::kMutate, nullptr);
    if (!ts.ok()) return ts;
  }
  double keep = -1.0;
  if (CountOpLocked("delete", &keep)) return CrashedStatus();
  SnapshotLocked(Undo::Barrier::kNamespace, name);
  return base_->Delete(name);
}

Status FaultFs::Truncate(const std::string& name, uint64_t size) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  if (!crashed_) {
    Status ts = MaybeTransientLocked("truncate", OpClass::kMutate, nullptr);
    if (!ts.ok()) return ts;
  }
  double keep = -1.0;
  if (CountOpLocked("truncate", &keep)) return CrashedStatus();
  // A crash-era truncate simply does not happen (like Delete); when it
  // does happen, the shrunk tail is data dirt until the next Sync.
  SnapshotLocked(Undo::Barrier::kData, name);
  return base_->Truncate(name, size);
}

Status FaultFs::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  if (!crashed_) {
    Status ts = MaybeTransientLocked("rename", OpClass::kMutate, nullptr);
    if (!ts.ok()) return ts;
  }
  double keep = -1.0;
  if (CountOpLocked("rename", &keep)) return CrashedStatus();
  // Unsynced data dirt must follow the bytes to their new name: if the
  // rename itself becomes durable (SyncDir) while `from`'s data was never
  // fsynced, a crash leaves `to` as the classic zero-length file (or the
  // prefix that *was* synced under `from`) — not the full payload. The
  // source's own data entries are reclassified as namespace dirt: they
  // must roll `from` back while the rename is volatile, but must retire
  // with it at SyncDir (a durable rename leaves no `from` to restore).
  std::string from_synced_content;
  bool migrate = false;
  if (unsynced_loss_) {
    for (Undo& u : undo_log_) {
      if (u.barrier == Undo::Barrier::kData && u.name == from) {
        if (!migrate) {
          migrate = true;
          if (u.existed) from_synced_content = u.content;  // oldest wins
        }
        u.barrier = Undo::Barrier::kNamespace;
      }
    }
  }
  SnapshotLocked(Undo::Barrier::kNamespace, from);
  SnapshotLocked(Undo::Barrier::kNamespace, to);
  Status s = base_->Rename(from, to);
  if (s.ok() && migrate && !HasUndoLocked(Undo::Barrier::kData, to)) {
    Undo undo;
    undo.barrier = Undo::Barrier::kData;
    undo.name = to;
    undo.existed = true;
    undo.content = std::move(from_synced_content);
    undo_log_.push_back(std::move(undo));
  }
  return s;
}

Status FaultFs::Sync(const std::string& name) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  if (!crashed_) {
    Status ts = MaybeTransientLocked("sync", OpClass::kMutate, nullptr);
    if (!ts.ok()) return ts;
  }
  double keep = -1.0;
  if (CountOpLocked("sync", &keep)) return CrashedStatus();
  Status s = base_->Sync(name);
  if (s.ok() && unsynced_loss_) {
    // `name`'s data is durable now; its pre-images need no rollback. But
    // per the fs.h contract, fsync of a file created since the last
    // SyncDir does NOT make its directory entry durable — keep (or plant)
    // a namespace entry whose rollback deletes the file, retired only by
    // SyncDir. This is what catches a write path that acknowledges on a
    // freshly created WAL without ever syncing its directory.
    bool created_since_barrier = false;
    undo_log_.erase(
        std::remove_if(undo_log_.begin(), undo_log_.end(),
                       [&](const Undo& u) {
                         if (u.barrier != Undo::Barrier::kData ||
                             u.name != name) {
                           return false;
                         }
                         created_since_barrier |= !u.existed;
                         return true;
                       }),
        undo_log_.end());
    if (created_since_barrier &&
        !HasUndoLocked(Undo::Barrier::kNamespace, name)) {
      Undo undo;
      undo.barrier = Undo::Barrier::kNamespace;
      undo.name = name;
      undo.existed = false;  // rollback = unlink the never-dir-synced file
      undo_log_.push_back(std::move(undo));
    }
  }
  return s;
}

Status FaultFs::SyncDir() {
  std::lock_guard<std::mutex> lock(fault_mu_);
  if (!crashed_) {
    Status ts = MaybeTransientLocked("syncdir", OpClass::kMutate, nullptr);
    if (!ts.ok()) return ts;
  }
  double keep = -1.0;
  if (CountOpLocked("syncdir", &keep)) return CrashedStatus();
  Status s = base_->SyncDir();
  if (s.ok() && unsynced_loss_) {
    // Directory entries are durable: creates/deletes/renames survive.
    undo_log_.erase(
        std::remove_if(undo_log_.begin(), undo_log_.end(),
                       [](const Undo& u) {
                         return u.barrier == Undo::Barrier::kNamespace;
                       }),
        undo_log_.end());
  }
  return s;
}

Result<std::string> FaultFs::Read(const std::string& name, uint64_t offset,
                                  uint64_t len) const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  if (!crashed_) {
    Status ts = MaybeTransientLocked("read", OpClass::kRead, nullptr);
    if (!ts.ok()) return ts;
  }
  return base_->Read(name, offset, len);
}

std::vector<Result<std::string>> FaultFs::MultiRead(
    const std::vector<ReadRequest>& requests) const {
  std::vector<Result<std::string>> out(
      requests.size(), Result<std::string>(Status::IOError("unset")));
  std::lock_guard<std::mutex> lock(fault_mu_);
  // Walk the transient schedule one sub-read at a time — a batch of N is N
  // eligible ops, exactly like N sequential Reads — then forward whatever
  // survived as one base batch. Reads stay crash-immune.
  std::vector<ReadRequest> forward;
  std::vector<size_t> forward_idx;
  forward.reserve(requests.size());
  forward_idx.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!crashed_) {
      Status ts = MaybeTransientLocked("multiread", OpClass::kRead, nullptr);
      if (!ts.ok()) {
        out[i] = Result<std::string>(std::move(ts));
        continue;
      }
    }
    forward.push_back(requests[i]);
    forward_idx.push_back(i);
  }
  if (!forward.empty()) {
    auto got = base_->MultiRead(forward);
    for (size_t k = 0; k < forward_idx.size(); ++k) {
      out[forward_idx[k]] = std::move(got[k]);
    }
  }
  return out;
}

Result<std::string> FaultFs::ReadAll(const std::string& name) const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  if (!crashed_) {
    Status ts = MaybeTransientLocked("readall", OpClass::kRead, nullptr);
    if (!ts.ok()) return ts;
  }
  return base_->ReadAll(name);
}

Result<uint64_t> FaultFs::FileSize(const std::string& name) const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  if (!crashed_) {
    Status ts = MaybeTransientLocked("filesize", OpClass::kRead, nullptr);
    if (!ts.ok()) return ts;
  }
  return base_->FileSize(name);
}

bool FaultFs::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return base_->Exists(name);
}

std::vector<std::string> FaultFs::List(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return base_->List(prefix);
}

std::shared_ptr<const std::string> FaultFs::Blob(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return base_->Blob(name);
}

bool FaultFs::Corrupt(const std::string& name, size_t offset, uint8_t mask) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return base_->Corrupt(name, offset, mask);
}

void FaultFs::set_enclave(std::shared_ptr<sgx::Enclave> enclave) {
  base_->set_enclave(enclave);
  Fs::set_enclave(std::move(enclave));
}

}  // namespace elsm::storage
