// Fault-injecting filesystem for crash-recovery testing.
//
// FaultFs wraps SimFs and counts mutating operations (Write / Append /
// Delete / Rename). ScheduleCrash(n) arms a "power failure" n mutating ops
// from now: the n-th op is *torn* — only a prefix of its payload reaches
// the disk (Write/Append; Delete/Rename simply do not happen) — and every
// later mutating op fails with IOError until ClearCrash(). Reads keep
// working throughout: after the crash the recovery path inspects the same
// (torn) disk image, exactly like a reboot over a real block device.
//
// The torn op also returns IOError, because in a real crash the caller
// never observes completion — tests must treat the in-flight op as
// indeterminate (it may or may not have (partially) landed).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "storage/simfs.h"

namespace elsm::storage {

class FaultFs : public SimFs {
 public:
  explicit FaultFs(std::shared_ptr<sgx::Enclave> enclave)
      : SimFs(std::move(enclave)) {}

  // Crash on the `ops_from_now`-th mutating op from now (1 = the very next
  // one). That op keeps only floor(bytes * keep_fraction) of its payload;
  // 0.0 drops it entirely, values in (0,1) model a torn sector.
  void ScheduleCrash(uint64_t ops_from_now, double keep_fraction = 0.0);
  // Fail every mutating op from now on (nothing is torn).
  void CrashNow();
  // Lift the failure so the store can be reopened on the surviving image.
  void ClearCrash();

  bool crashed() const;
  // Kind of the op the crash landed on ("append", "write", "delete",
  // "rename"), empty until the crash fires. Lets tests report coverage of
  // the crash surface across seeds.
  std::string crash_op() const;
  uint64_t mutating_ops() const;

  Status Write(const std::string& name, std::string contents) override;
  Status Append(const std::string& name, std::string_view data) override;
  Status Delete(const std::string& name) override;
  Status Rename(const std::string& from, const std::string& to) override;

 private:
  // Returns true when the caller must fail with IOError; sets *keep to the
  // payload fraction to land when this op is the crash point (and to a
  // negative value otherwise, meaning "nothing lands").
  bool CountOp(const char* kind, double* keep);
  static Status CrashedStatus() {
    return Status::IOError("simulated crash: disk is gone");
  }

  mutable std::mutex fault_mu_;
  uint64_t ops_ = 0;
  uint64_t crash_at_ = 0;  // 0 = disarmed; otherwise absolute op index
  double keep_fraction_ = 0.0;
  bool crashed_ = false;
  std::string crash_op_;
};

}  // namespace elsm::storage
