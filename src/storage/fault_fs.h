// Fault-injecting filesystem decorator for crash-recovery testing.
//
// FaultFs wraps any storage::Fs backend (SimFs by default, PosixFs in the
// on-disk torture suites) and counts mutating operations (Write / Append /
// Delete / Rename / Sync / SyncDir). ScheduleCrash(n) arms a "power
// failure" n mutating ops from now: the n-th op is *torn* — only a prefix
// of its payload reaches the disk (Write/Append; Delete/Rename/Sync simply
// do not happen) — and every later mutating op fails with IOError until
// ClearCrash(). Reads keep working throughout and pass straight to the
// wrapped backend: after the crash the recovery path inspects the same
// (torn) disk image, exactly like a reboot over a real block device.
//
// The torn op also returns IOError, because in a real crash the caller
// never observes completion — tests must treat the in-flight op as
// indeterminate (it may or may not have (partially) landed).
//
// Unsynced-data loss (EnableUnsyncedLoss): by default the decorator models
// a disk with an infinite battery — every completed op survives the crash.
// With unsynced loss enabled it models the real Fs::Sync contract instead:
// mutations land in the "page cache" (the wrapped backend) immediately,
// but the decorator keeps an undo log of everything since the last
// durability barrier — Sync(name) retires the data undo entries of `name`,
// SyncDir() retires the namespace (create/Delete/Rename) entries — and
// when the crash fires, the undo log is rolled back newest-first, dropping
// every write the store never fsynced. The model is strict about the two
// classic fsync traps: a file *created* since the last SyncDir vanishes at
// the crash even if its data was fsynced (the directory entry was not),
// and data renamed into place without a prior Sync survives a durable
// rename only as the zero-length/prefix file (the dirt migrates to the new
// name). This is what verifies the engine's fsync ordering (WAL sync +
// one-time directory sync before acknowledge, SSTable sync before
// manifest, manifest Sync+Rename+SyncDir before counter bump): any missing
// barrier surfaces as lost acknowledged data in the torture suites.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/fs.h"

namespace elsm::storage {

class FaultFs : public Fs {
 public:
  // Decorates `base`; all I/O is forwarded to it.
  explicit FaultFs(std::shared_ptr<Fs> base);
  // Convenience: decorates a fresh SimFs on `enclave` (the historical
  // constructor the simulated torture suites use).
  explicit FaultFs(std::shared_ptr<sgx::Enclave> enclave);

  // Crash on the `ops_from_now`-th mutating op from now (1 = the very next
  // one). That op keeps only floor(bytes * keep_fraction) of its payload;
  // 0.0 drops it entirely, values in (0,1) model a torn sector.
  void ScheduleCrash(uint64_t ops_from_now, double keep_fraction = 0.0);
  // Fail every mutating op from now on (nothing is torn).
  void CrashNow();
  // Lift the failure so the store can be reopened on the surviving image.
  void ClearCrash();

  // Model unsynced-data loss: a crash also rolls back every mutation not
  // yet covered by a Sync/SyncDir barrier. Enable before the workload.
  void EnableUnsyncedLoss(bool on = true);

  // --- transient-error injection -------------------------------------------
  // Orthogonal to the crash modes above: a transiently faulted op returns a
  // retryable Status (Unavailable / CapacityExceeded) while the disk stays
  // alive — an EIO/ENOSPC/short-write blip, not a power failure. The
  // transient op counter covers every Status-returning op *including
  // reads* (Write / Append / Delete / Rename / Truncate / Sync / SyncDir /
  // Read / ReadAll / FileSize), so an error-point walk can sweep the whole
  // fallible surface. A transiently faulted op is checked before the crash
  // schedule and does not count as a mutating op (it never reached the
  // disk); short-write prefixes are still captured by the unsynced-loss
  // undo log like any other landed bytes.
  enum class TransientKind { kEIO, kENOSPC, kShortWrite };

  // Arms a one-shot fault on the `ops_from_now`-th eligible op from now
  // (1 = the very next). kEIO fails the op with Unavailable, nothing
  // lands; kENOSPC fails it with CapacityExceeded; kShortWrite lands only
  // floor(bytes * keep_fraction) of a Write/Append payload, then fails
  // with Unavailable. Kinds degrade sensibly where they make no sense
  // (reads and non-payload ops fault as kEIO). Auto-disarms after firing.
  void ScheduleTransient(uint64_t ops_from_now, TransientKind kind,
                         double keep_fraction = 0.5);
  // Seeded probabilistic mode for soak/bench runs: each eligible op fails
  // with Unavailable with probability `rate`, drawn from a deterministic
  // xorshift64 stream. rate <= 0 disables.
  void SetTransientRate(double rate, uint64_t seed);
  // Sticky capacity budget: while armed, Write/Append admission keeps the
  // sum of stored file sizes at or under `bytes`; an op that would exceed
  // it fails with CapacityExceeded and nothing lands. Delete / Rename /
  // Truncate stay admissible — freeing space must work on a full disk.
  // 0 disarms (unlimited). This is how the ENOSPC-during-growth suites
  // model a disk that fills up and is later cleared, on both backends.
  void SetCapacityBudget(uint64_t bytes);

  uint64_t transient_ops() const;    // eligible ops observed so far
  uint64_t injected_faults() const;  // transient + budget faults fired
  // Kind string of the most recent transient fault ("append", "read",
  // "syncdir", ...), empty until one fires; walk harnesses report
  // fault-surface coverage with it.
  std::string transient_op() const;

  bool crashed() const;
  // Kind of the op the crash landed on ("append", "write", "delete",
  // "rename", "sync", "syncdir"), empty until the crash fires. Lets tests
  // report coverage of the crash surface across seeds.
  std::string crash_op() const;
  uint64_t mutating_ops() const;
  Fs& base() { return *base_; }

  // --- mutating ops: counted, crash-eligible -------------------------------
  Status Write(const std::string& name, std::string contents) override;
  Status Append(const std::string& name, std::string_view data) override;
  Status Delete(const std::string& name) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Truncate(const std::string& name, uint64_t size) override;
  Status Sync(const std::string& name) override;
  Status SyncDir() override;

  // --- reads: forwarded; crash-immune but transient-eligible ---------------
  Result<std::string> Read(const std::string& name, uint64_t offset,
                           uint64_t len) const override;
  // Each sub-read is one transient-eligible op (so an error-point walk
  // steps through a batch exactly like the equivalent sequential reads);
  // non-faulted sub-reads forward to the base backend as one batch.
  std::vector<Result<std::string>> MultiRead(
      const std::vector<ReadRequest>& requests) const override;
  Result<std::string> ReadAll(const std::string& name) const override;
  Result<uint64_t> FileSize(const std::string& name) const override;
  bool Exists(const std::string& name) const override;
  std::vector<std::string> List(std::string_view prefix) const override;
  std::shared_ptr<const std::string> Blob(
      const std::string& name) const override;
  bool Corrupt(const std::string& name, size_t offset,
               uint8_t mask = 0x01) override;

  void set_enclave(std::shared_ptr<sgx::Enclave> enclave) override;

 private:
  // One rollback step: restore `name` to its pre-op image. kData entries
  // retire at Sync(name), kNamespace entries at SyncDir(); whatever is
  // still in the log when the crash fires gets undone, newest first.
  struct Undo {
    enum class Barrier { kData, kNamespace };
    Barrier barrier;
    std::string name;
    bool existed = false;
    std::string content;
  };

  // Counts one mutating op under fault_mu_ (already held). Returns true
  // when the caller must fail with IOError; sets *keep to the payload
  // fraction to land when this op is the crash point (negative otherwise).
  bool CountOpLocked(const char* kind, double* keep);
  // Transient-eligible op classes: plain reads, non-payload mutations, and
  // payload-carrying mutations (Write/Append — short-write candidates).
  enum class OpClass { kRead, kMutate, kPayload };
  // Counts one transient-eligible op and decides whether to fault it
  // (scheduled one-shot first, then the probabilistic stream). Returns Ok
  // to proceed; otherwise the status the op must return. For kPayload
  // short-writes, *keep is set to the payload fraction to land first.
  Status MaybeTransientLocked(const char* kind, OpClass cls,
                              double* keep) const;
  // Capacity-budget admission for an op that stores `new_bytes` while
  // replacing `replaced_bytes` of an existing file.
  Status CheckBudgetLocked(const char* kind, uint64_t new_bytes,
                           uint64_t replaced_bytes) const;
  uint64_t UsedBytesLocked() const;
  bool HasUndoLocked(Undo::Barrier barrier, const std::string& name) const;
  // Captures `name`'s pre-image into the undo log (unsynced mode only).
  void SnapshotLocked(Undo::Barrier barrier, const std::string& name);
  // Rolls the undo log back against the base (the crash just fired).
  void DropUnsyncedLocked();
  static Status CrashedStatus() {
    return Status::IOError("simulated crash: disk is gone");
  }

  std::shared_ptr<Fs> base_;

  // Held across each whole mutating op (count + forward), so a concurrent
  // crash can never interleave its rollback with a half-applied op.
  mutable std::mutex fault_mu_;
  uint64_t ops_ = 0;
  uint64_t crash_at_ = 0;  // 0 = disarmed; otherwise absolute op index
  double keep_fraction_ = 0.0;
  bool crashed_ = false;
  bool unsynced_loss_ = false;
  std::string crash_op_;
  std::vector<Undo> undo_log_;

  // Transient state is mutated from const read paths; fault_mu_ (already
  // mutable) guards it all.
  mutable uint64_t transient_ops_ = 0;
  mutable uint64_t transient_at_ = 0;  // 0 = disarmed; absolute op index
  TransientKind transient_kind_ = TransientKind::kEIO;
  double transient_keep_ = 0.5;
  double transient_rate_ = 0.0;
  mutable uint64_t rng_state_ = 0;
  uint64_t capacity_budget_ = 0;  // 0 = unlimited
  mutable uint64_t injected_faults_ = 0;
  mutable std::string transient_op_;
};

}  // namespace elsm::storage
