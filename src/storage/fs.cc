#include "storage/fs.h"

#include "storage/posix_fs.h"
#include "storage/simfs.h"

namespace elsm::storage {

Result<std::string> Fs::ReadAll(const std::string& name) const {
  auto size = FileSize(name);
  if (!size.ok()) return size.status();
  return Read(name, 0, size.value());
}

std::shared_ptr<Fs> MakeFs(BackendKind kind, const std::string& dir,
                           std::shared_ptr<sgx::Enclave> enclave) {
  switch (kind) {
    case BackendKind::kPosix:
      return std::make_shared<PosixFs>(std::move(enclave), dir);
    case BackendKind::kSim:
      break;
  }
  return std::make_shared<SimFs>(std::move(enclave));
}

}  // namespace elsm::storage
