#include "storage/fs.h"

#include <atomic>
#include <limits>

#include "storage/posix_fs.h"
#include "storage/simfs.h"

namespace elsm::storage {

namespace {

// Process-wide so multi-shard stores and tools aggregate without plumbing.
std::atomic<uint64_t> g_multiread_batches{0};
std::atomic<uint64_t> g_multiread_subreads{0};
std::atomic<uint64_t> g_uring_batches{0};
std::atomic<uint64_t> g_pread_batches{0};

}  // namespace

IoStats GlobalIoStats() {
  IoStats s;
  s.multiread_batches = g_multiread_batches.load(std::memory_order_relaxed);
  s.multiread_subreads = g_multiread_subreads.load(std::memory_order_relaxed);
  s.uring_batches = g_uring_batches.load(std::memory_order_relaxed);
  s.pread_batches = g_pread_batches.load(std::memory_order_relaxed);
  return s;
}

void ResetGlobalIoStats() {
  g_multiread_batches.store(0, std::memory_order_relaxed);
  g_multiread_subreads.store(0, std::memory_order_relaxed);
  g_uring_batches.store(0, std::memory_order_relaxed);
  g_pread_batches.store(0, std::memory_order_relaxed);
}

namespace internal {

void NoteMultiReadBatch(size_t subreads) {
  g_multiread_batches.fetch_add(1, std::memory_order_relaxed);
  g_multiread_subreads.fetch_add(subreads, std::memory_order_relaxed);
}

void NoteUringBatch() { g_uring_batches.fetch_add(1, std::memory_order_relaxed); }
void NotePreadBatch() { g_pread_batches.fetch_add(1, std::memory_order_relaxed); }

}  // namespace internal

std::vector<Result<std::string>> Fs::MultiRead(
    const std::vector<ReadRequest>& requests) const {
  internal::NoteMultiReadBatch(requests.size());
  std::vector<Result<std::string>> out;
  out.reserve(requests.size());
  for (const ReadRequest& req : requests) {
    out.push_back(Read(req.name, req.offset, req.len));
  }
  return out;
}

Result<std::string> Fs::ReadAll(const std::string& name) const {
  // Read to EOF in one call (every backend clamps len to the file size), so
  // a concurrent Rename/Truncate between a separate FileSize and Read can
  // never hand back a torn or short result.
  return Read(name, 0, std::numeric_limits<uint64_t>::max());
}

std::shared_ptr<Fs> MakeFs(BackendKind kind, const std::string& dir,
                           std::shared_ptr<sgx::Enclave> enclave) {
  switch (kind) {
    case BackendKind::kPosix:
      return std::make_shared<PosixFs>(std::move(enclave), dir);
    case BackendKind::kSim:
      break;
  }
  return std::make_shared<SimFs>(std::move(enclave));
}

}  // namespace elsm::storage
