// storage::Fs — the pluggable untrusted-storage backend boundary.
//
// Every layer above storage/ (lsm, auth, elsm) programs against this
// interface; concrete backends are:
//   * SimFs   (storage/simfs.h)    — deterministic in-memory disk, the
//     paper's memory-resident evaluation substrate and the default.
//   * PosixFs (storage/posix_fs.h) — real files under a root directory,
//     with honest fsync durability.
//   * FaultFs (storage/fault_fs.h) — crash-injection decorator over any
//     backend, for the recovery torture suites.
//
// Files are immutable-after-write blobs except for Append (WAL). Blobs are
// handed out as shared_ptr so MmapRegion keeps content alive past Delete
// (real mmap-after-unlink semantics).
//
// Durability contract (the part SimFs gets for free and PosixFs must earn):
//   * Write/Append/Delete/Rename only promise that *subsequent reads
//     through this Fs* observe the new state ("page cache" visibility).
//     None of them promise the state survives a power failure.
//   * Sync(name) — on return, all previously completed Write/Append data
//     of `name` has reached durable media (fsync(2) semantics). The
//     existence of a freshly created file is NOT guaranteed durable until
//     SyncDir() (its directory entry may still be volatile).
//   * SyncDir() — on return, all previously completed namespace
//     operations (create/Delete/Rename) are durable (directory-fsync
//     semantics, applied to every directory of the store).
//   * The crash-consistent install sequence for an authoritative file is
//     therefore: Write(tmp); Sync(tmp); Rename(tmp, final); SyncDir().
//     ElsmDb/ShardedDb use exactly that for manifests, and Sync the WAL
//     after every acknowledged append (Options::sync_writes).
// SimFs is always-durable, so its Sync/SyncDir are free no-ops; FaultFs's
// unsynced-loss mode drops everything not covered by this contract at a
// simulated power failure, which is what holds the callers honest.
//
// All methods must be thread-safe. Reads must keep working after a crash
// or fault injection — a dead disk is still readable by the recovery path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sgxsim/enclave.h"

namespace elsm::storage {

// One sub-read of a MultiRead batch: `len` bytes of `name` starting at
// `offset`. Semantics per request are exactly those of Fs::Read — a read
// past EOF fails, a read reaching EOF is clamped to the available bytes.
struct ReadRequest {
  std::string name;
  uint64_t offset = 0;
  uint64_t len = 0;
};

// Process-wide counters for the batched read path, surfaced by ycsb_tool's
// `io:` line and asserted by tests. Plain totals, not rates.
struct IoStats {
  uint64_t multiread_batches = 0;   // MultiRead calls reaching a backend
  uint64_t multiread_subreads = 0;  // total sub-reads across those batches
  uint64_t uring_batches = 0;       // PosixFs batches served by io_uring
  uint64_t pread_batches = 0;       // PosixFs batches served by pread loop
};

IoStats GlobalIoStats();
void ResetGlobalIoStats();

namespace internal {
// Counter hooks for concrete backends (FaultFs forwards, so only the base
// backend it wraps notes the batch — batches are not double-counted).
void NoteMultiReadBatch(size_t subreads);
void NoteUringBatch();
void NotePreadBatch();
}  // namespace internal

class Fs {
 public:
  explicit Fs(std::shared_ptr<sgx::Enclave> enclave)
      : enclave_(std::move(enclave)) {}
  virtual ~Fs() = default;

  Fs(const Fs&) = delete;
  Fs& operator=(const Fs&) = delete;

  // Creates or replaces `name` with `contents` (atomic replace: a reader
  // never observes a mix of old and new bytes, though a crash may).
  virtual Status Write(const std::string& name, std::string contents) = 0;
  // Appends to `name`, creating it if missing (WAL-style framing is the
  // caller's concern).
  virtual Status Append(const std::string& name, std::string_view data) = 0;

  virtual Result<std::string> Read(const std::string& name, uint64_t offset,
                                   uint64_t len) const = 0;
  // Vectored batch read: one Result per request, in request order, each
  // byte-identical (contents, error text, and cost charges) to a sequential
  // Read of the same range. Failures are isolated per sub-read — one bad
  // request never poisons its batch-mates. Backends may overlap the
  // underlying I/O (PosixFs uses io_uring when available); the default is a
  // correct sequential loop.
  virtual std::vector<Result<std::string>> MultiRead(
      const std::vector<ReadRequest>& requests) const;
  virtual Result<std::string> ReadAll(const std::string& name) const;
  virtual Result<uint64_t> FileSize(const std::string& name) const = 0;

  virtual Status Delete(const std::string& name) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  // Shrinks `name` to exactly `size` bytes (ftruncate semantics; growing is
  // not supported). Used by WAL tail repair: after a failed/short append the
  // writer truncates back to the last committed frame boundary so the next
  // append never lands behind garbage.
  virtual Status Truncate(const std::string& name, uint64_t size) = 0;

  // Durability barriers — see the contract in the file comment.
  virtual Status Sync(const std::string& name) = 0;
  virtual Status SyncDir() = 0;

  virtual bool Exists(const std::string& name) const = 0;
  virtual std::vector<std::string> List(std::string_view prefix) const = 0;

  // Zero-copy blob handle for mmap simulation (nullptr if missing). The
  // handle pins the content past Delete; like a real shared mapping it MAY
  // observe later in-place tampering of the underlying bytes (Corrupt).
  virtual std::shared_ptr<const std::string> Blob(
      const std::string& name) const = 0;

  // Adversary hook: XOR one byte of the stored file at offset % size, as a
  // malicious host flipping bits on the untrusted disk. Charges no cost.
  // Visible through live Blob handles (mmap semantics). Returns false when
  // the file is missing or empty.
  virtual bool Corrupt(const std::string& name, size_t offset,
                       uint8_t mask = 0x01) = 0;

  sgx::Enclave& enclave() const { return *enclave_; }
  const std::shared_ptr<sgx::Enclave>& enclave_shared() const {
    return enclave_;
  }
  // Re-attach the filesystem to a fresh enclave (simulated "reboot": the
  // disk survives, the enclave instance does not).
  virtual void set_enclave(std::shared_ptr<sgx::Enclave> enclave) {
    enclave_ = std::move(enclave);
  }

 protected:
  std::shared_ptr<sgx::Enclave> enclave_;
};

// Backend selection, threaded through elsm::Options and ycsb_tool
// --backend={sim,posix}.
enum class BackendKind { kSim, kPosix };

// Creates a backend instance. `dir` is the on-disk root directory for
// kPosix (ignored by kSim).
std::shared_ptr<Fs> MakeFs(BackendKind kind, const std::string& dir,
                           std::shared_ptr<sgx::Enclave> enclave);

}  // namespace elsm::storage
