#include "storage/mmap.h"

namespace elsm::storage {

Result<MmapRegion> MmapRegion::Open(const Fs& fs, const std::string& name) {
  auto blob = fs.Blob(name);
  if (blob == nullptr) return Status::IOError("no such file: " + name);
  sgx::Enclave& enclave = fs.enclave();
  enclave.ChargeOcall();  // mmap(2) is a syscall: one world switch at open
  enclave.ChargeMmapSetup();
  return MmapRegion(std::move(blob), &enclave);
}

Result<std::string_view> MmapRegion::Read(uint64_t offset,
                                          uint64_t len) const {
  if (offset > data_->size()) return Status::IOError("mmap read past EOF");
  const uint64_t n = std::min<uint64_t>(len, data_->size() - offset);
  enclave_->UntrustedRead(n);
  return std::string_view(*data_).substr(offset, n);
}

}  // namespace elsm::storage
