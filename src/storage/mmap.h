// mmap-style file access (paper §5.5.1 "Support mmap reads").
//
// Opening charges a one-time OCall + mmap setup; afterwards the enclave code
// reads the file bytes directly from untrusted memory with no world switch
// and no buffer copy — the reason eLSM-P2-mmap is the fastest read path
// (Fig. 6b). The blob handle pins the content even if the file is deleted.
#pragma once

#include <memory>
#include <string>

#include "common/status.h"
#include "sgxsim/enclave.h"
#include "storage/fs.h"

namespace elsm::storage {

class MmapRegion {
 public:
  static Result<MmapRegion> Open(const Fs& fs, const std::string& name);

  // Reads [offset, offset+len) as a view; charges untrusted-memory access.
  Result<std::string_view> Read(uint64_t offset, uint64_t len) const;
  uint64_t size() const { return data_->size(); }

 private:
  MmapRegion(std::shared_ptr<const std::string> data, sgx::Enclave* enclave)
      : data_(std::move(data)), enclave_(enclave) {}

  std::shared_ptr<const std::string> data_;
  sgx::Enclave* enclave_;
};

}  // namespace elsm::storage
