#include "storage/posix_fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <map>

#include "storage/uring_reader.h"

namespace elsm::storage {
namespace fsys = std::filesystem;
namespace {

// Suffix of the transient sibling Write() renames over its target. Never
// visible through List(); stranded copies (hard process kill mid-Write)
// are swept at the next PosixFs construction over the root — a "mount" —
// when no Write can still be in flight.
constexpr std::string_view kTmpSuffix = ".ptmp";

bool IsTmpName(std::string_view name) {
  return name.size() >= kTmpSuffix.size() &&
         name.compare(name.size() - kTmpSuffix.size(), kTmpSuffix.size(),
                      kTmpSuffix) == 0;
}

// Errno name for the classes we care about; "errno=N" otherwise. Kept in
// every message so operators (and tests) see the raw cause, not just our
// classification of it.
std::string ErrnoName(int err) {
  switch (err) {
    case EIO: return "EIO";
    case EINTR: return "EINTR";
    case ENOSPC: return "ENOSPC";
    case EDQUOT: return "EDQUOT";
    case EAGAIN: return "EAGAIN";
    case ENFILE: return "ENFILE";
    case EMFILE: return "EMFILE";
    case EBUSY: return "EBUSY";
    case ENOMEM: return "ENOMEM";
    case ENOENT: return "ENOENT";
    case EEXIST: return "EEXIST";
    case EACCES: return "EACCES";
    case EROFS: return "EROFS";
    case EFBIG: return "EFBIG";
    default: return "errno=" + std::to_string(err);
  }
}

// Errno fidelity: space exhaustion is CapacityExceeded (the engine reacts
// by entering read-only degraded mode, not by retrying into a full disk);
// resource-pressure errnos are Unavailable (IsTransient — retry sites key
// off the class). EIO stays a permanent IOError on purpose: after a failed
// fsync the kernel may have dropped the dirty pages, so "retry the fsync"
// would falsely report durability (the fsyncgate trap).
Status ErrnoValue(int err, const std::string& op, const std::string& name) {
  std::string m =
      op + " " + name + ": " + ErrnoName(err) + " (" + std::strerror(err) + ")";
  switch (err) {
    case ENOSPC:
    case EDQUOT:
      return Status::CapacityExceeded(std::move(m));
    case EAGAIN:
    case ENFILE:
    case EMFILE:
    case EBUSY:
    case ENOMEM:
      return Status::Unavailable(std::move(m));
    default:
      return Status::IOError(std::move(m));
  }
}

Status Errno(const std::string& op, const std::string& name) {
  return ErrnoValue(errno, op, name);
}

// open(2) with the EINTR retry the blocking syscalls below get; open can
// be interrupted when the file lives on a slow (network) filesystem.
int OpenRetry(const char* path, int flags, mode_t mode = 0) {
  int fd;
  do {
    fd = ::open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

Status WriteWholeFd(int fd, const std::string& name, std::string_view data) {
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", name);
    }
    done += size_t(n);
  }
  return Status::Ok();
}

std::atomic<int> g_page_cache_policy{int(PageCachePolicy::kKernel)};

bool BypassPageCache() {
  return PageCachePolicy(g_page_cache_policy.load(
             std::memory_order_relaxed)) == PageCachePolicy::kBypass;
}

// kBypass drop-behind: release the page-cache footprint of a finished
// read. Page-rounded so partially covered edge pages (which a neighbouring
// concurrent read may be using) still get dropped only when clean — the
// kernel skips dirty or locked pages, keeping this purely advisory.
void DropBehind(int fd, uint64_t offset, uint64_t len) {
  if (len == 0) return;
  constexpr uint64_t kPage = 4096;
  const uint64_t lo = offset / kPage * kPage;
  const uint64_t hi = (offset + len + kPage - 1) / kPage * kPage;
  (void)posix_fadvise(fd, off_t(lo), off_t(hi - lo), POSIX_FADV_DONTNEED);
}

Result<std::string> ReadRange(const std::string& path, const std::string& name,
                              uint64_t offset, uint64_t len) {
  const int fd = OpenRetry(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IOError("no such file: " + name);
  if (BypassPageCache()) {
    (void)posix_fadvise(fd, 0, 0, POSIX_FADV_RANDOM);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Errno("stat", name);
  }
  const uint64_t size = uint64_t(st.st_size);
  if (offset > size) {
    ::close(fd);
    return Status::IOError("read past EOF: " + name);
  }
  const uint64_t n = std::min<uint64_t>(len, size - offset);
  std::string out(n, '\0');
  uint64_t done = 0;
  while (done < n) {
    const ssize_t got =
        ::pread(fd, out.data() + done, n - done, off_t(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("pread", name);
    }
    if (got == 0) break;  // concurrently truncated: return what exists
    done += uint64_t(got);
  }
  if (BypassPageCache()) DropBehind(fd, offset, done);
  ::close(fd);
  out.resize(done);
  return out;
}

Status FsyncPath(const std::string& path, const std::string& label) {
  const int fd = OpenRetry(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IOError("no such file: " + label);
  Status s = Status::Ok();
  int r;
  do {
    r = ::fsync(fd);
  } while (r != 0 && errno == EINTR);
  if (r != 0) s = Errno("fsync", label);
  ::close(fd);
  return s;
}

// rename(2)/unlink(2)/truncate(2) with the same EINTR retry.
int RenameRetry(const char* from, const char* to) {
  int r;
  do {
    r = ::rename(from, to);
  } while (r != 0 && errno == EINTR);
  return r;
}

int UnlinkRetry(const char* path) {
  int r;
  do {
    r = ::unlink(path);
  } while (r != 0 && errno == EINTR);
  return r;
}

int TruncateRetry(const char* path, off_t size) {
  int r;
  do {
    r = ::truncate(path, size);
  } while (r != 0 && errno == EINTR);
  return r;
}

std::atomic<int> g_multiread_path{int(MultiReadPath::kAuto)};

// Runs the batch with plain pread, resuming each op from `done` — also the
// recovery path if the ring breaks mid-batch. Semantics match ReadRange's
// loop: EINTR retries, got == 0 (concurrent truncate / EOF) leaves the op
// short with err == 0.
void PreadOps(std::vector<uring::ReadOp>& ops) {
  for (uring::ReadOp& op : ops) {
    while (op.done < op.len && op.err == 0) {
      const ssize_t got = ::pread(op.fd, op.buf + op.done, op.len - op.done,
                                  off_t(op.offset + op.done));
      if (got < 0) {
        if (errno == EINTR) continue;
        op.err = errno;
        break;
      }
      if (got == 0) break;
      op.done += size_t(got);
    }
  }
}

}  // namespace

void SetPosixMultiReadPath(MultiReadPath path) {
  g_multiread_path.store(int(path), std::memory_order_relaxed);
}

MultiReadPath PosixMultiReadPath() {
  return MultiReadPath(g_multiread_path.load(std::memory_order_relaxed));
}

void SetPosixPageCachePolicy(PageCachePolicy policy) {
  g_page_cache_policy.store(int(policy), std::memory_order_relaxed);
}

PageCachePolicy PosixPageCachePolicy() {
  return PageCachePolicy(g_page_cache_policy.load(std::memory_order_relaxed));
}

PosixFs::PosixFs(std::shared_ptr<sgx::Enclave> enclave, std::string root)
    : Fs(std::move(enclave)), root_(std::move(root)) {
  if (root_.empty()) {
    root_status_ = Status::InvalidArgument("PosixFs needs a root directory");
    return;
  }
  while (root_.size() > 1 && root_.back() == '/') root_.pop_back();
  std::error_code ec;
  fsys::create_directories(root_, ec);
  if (ec) {
    root_status_ =
        Status::IOError("cannot create root " + root_ + ": " + ec.message());
    return;
  }
  // Mount-time recovery: a hard process kill mid-Write can strand a
  // ".ptmp" sibling, which List() hides from the store's orphan GC. Only
  // a *previous process* can have stranded one (in-process Writes clean
  // up on every failure path), so one sweep per (process, root) suffices
  // — ShardedDb's N+1 instances over a shared --dir must not each walk
  // the whole tree.
  static std::mutex swept_mu;
  static std::set<std::string>* swept_roots = new std::set<std::string>();
  bool first_mount = false;
  {
    std::error_code canon_ec;
    std::string canonical = fsys::weakly_canonical(root_, canon_ec).string();
    if (canon_ec) canonical = root_;
    std::lock_guard<std::mutex> lock(swept_mu);
    first_mount = swept_roots->insert(canonical).second;
  }
  if (first_mount) SweepStrandedTmp();
}

void PosixFs::SweepStrandedTmp() {
  if (!root_status_.ok()) return;
  std::error_code ec;
  for (auto it = fsys::recursive_directory_iterator(
           root_, fsys::directory_options::skip_permission_denied, ec);
       !ec && it != fsys::recursive_directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file(ec) && IsTmpName(it->path().filename().string())) {
      std::error_code unlink_ec;
      fsys::remove(it->path(), unlink_ec);
    }
  }
}

std::string PosixFs::PathFor(const std::string& name) const {
  if (name.empty() || name.front() == '/' ||
      name.find('\0') != std::string::npos) {
    return "";
  }
  // Reject traversal out of the root; names are internal, keep it simple.
  for (size_t pos = 0; (pos = name.find("..", pos)) != std::string::npos;
       ++pos) {
    const bool at_start = pos == 0 || name[pos - 1] == '/';
    const bool at_end = pos + 2 == name.size() || name[pos + 2] == '/';
    if (at_start && at_end) return "";
  }
  return root_ + "/" + name;
}

Status PosixFs::EnsureParentDirs(const std::string& path) const {
  std::error_code ec;
  fsys::create_directories(fsys::path(path).parent_path(), ec);
  if (ec) {
    std::string m =
        "cannot create directories for " + path + ": " + ec.message();
    if (ec == std::errc::no_space_on_device) {
      return Status::CapacityExceeded(std::move(m));
    }
    return Status::IOError(std::move(m));
  }
  return Status::Ok();
}

void PosixFs::InvalidateBlob(const std::string& name) {
  std::lock_guard<std::mutex> lock(blob_mu_);
  blobs_.erase(name);
}

void PosixFs::MarkDirsDirty(const std::string& path) {
  std::lock_guard<std::mutex> lock(dir_mu_);
  // The parent chain up to the root: a create/delete/rename dirties the
  // immediate directory, and freshly made intermediate directories dirty
  // their parents too. Store trees are 2-3 levels deep.
  fsys::path dir = fsys::path(path).parent_path();
  while (dir.string().size() >= root_.size() && !dir.empty()) {
    dirty_dirs_.insert(dir.string());
    if (dir.string() == root_) break;
    dir = dir.parent_path();
  }
}

Status PosixFs::Write(const std::string& name, std::string contents) {
  if (!root_status_.ok()) return root_status_;
  const std::string path = PathFor(name);
  if (path.empty()) return Status::InvalidArgument("bad file name: " + name);
  enclave_->ChargeFileWrite(contents.size());
  Status s = EnsureParentDirs(path);
  if (!s.ok()) return s;
  const std::string tmp = path + std::string(kTmpSuffix);
  const int fd = OpenRetry(tmp.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", name);
  s = WriteWholeFd(fd, name, contents);
  ::close(fd);
  if (!s.ok()) {
    (void)UnlinkRetry(tmp.c_str());
    return s;
  }
  if (RenameRetry(tmp.c_str(), path.c_str()) != 0) {
    Status rs = Errno("rename", name);
    (void)UnlinkRetry(tmp.c_str());
    return rs;
  }
  MarkDirsDirty(path);
  InvalidateBlob(name);
  return Status::Ok();
}

Status PosixFs::Append(const std::string& name, std::string_view data) {
  if (!root_status_.ok()) return root_status_;
  const std::string path = PathFor(name);
  if (path.empty()) return Status::InvalidArgument("bad file name: " + name);
  enclave_->ChargeWalAppend(data.size());
  Status s = EnsureParentDirs(path);
  if (!s.ok()) return s;
  struct stat st {};
  const bool creating = ::stat(path.c_str(), &st) != 0;
  const int fd = OpenRetry(path.c_str(),
                           O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", name);
  s = WriteWholeFd(fd, name, data);
  ::close(fd);
  if (s.ok()) {
    if (creating) MarkDirsDirty(path);
    InvalidateBlob(name);
  }
  return s;
}

Result<std::string> PosixFs::Read(const std::string& name, uint64_t offset,
                                  uint64_t len) const {
  if (!root_status_.ok()) return root_status_;
  const std::string path = PathFor(name);
  if (path.empty()) return Status::InvalidArgument("bad file name: " + name);
  auto out = ReadRange(path, name, offset, len);
  if (out.ok()) enclave_->ChargeFileRead(out.value().size());
  return out;
}

std::vector<Result<std::string>> PosixFs::MultiRead(
    const std::vector<ReadRequest>& requests) const {
  internal::NoteMultiReadBatch(requests.size());
  std::vector<Result<std::string>> out(
      requests.size(), Result<std::string>(Status::IOError("unset")));
  if (!root_status_.ok()) {
    std::fill(out.begin(), out.end(),
              Result<std::string>(root_status_));
    return out;
  }

  // Validate names and group sub-reads by file so each distinct file pays
  // one open+fstat for the whole batch.
  std::map<std::string, std::vector<size_t>> by_name;
  for (size_t i = 0; i < requests.size(); ++i) {
    const std::string path = PathFor(requests[i].name);
    if (path.empty()) {
      out[i] = Result<std::string>(
          Status::InvalidArgument("bad file name: " + requests[i].name));
      continue;
    }
    by_name[requests[i].name].push_back(i);
  }

  std::vector<int> fds;
  std::vector<std::string> bufs(requests.size());
  std::vector<uring::ReadOp> ops;
  std::vector<size_t> op_req;  // ops[k] serves requests[op_req[k]]
  const bool bypass = BypassPageCache();
  for (const auto& [name, indices] : by_name) {
    const std::string path = PathFor(name);
    const int fd = OpenRetry(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      for (size_t i : indices) {
        out[i] = Result<std::string>(Status::IOError("no such file: " + name));
      }
      continue;
    }
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      const Status s = Errno("stat", name);
      ::close(fd);
      for (size_t i : indices) out[i] = Result<std::string>(s);
      continue;
    }
    if (bypass) (void)posix_fadvise(fd, 0, 0, POSIX_FADV_RANDOM);
    fds.push_back(fd);
    const uint64_t size = uint64_t(st.st_size);
    for (size_t i : indices) {
      if (requests[i].offset > size) {
        out[i] = Result<std::string>(
            Status::IOError("read past EOF: " + name));
        continue;
      }
      const uint64_t n =
          std::min<uint64_t>(requests[i].len, size - requests[i].offset);
      bufs[i].assign(n, '\0');
      uring::ReadOp op;
      op.fd = fd;
      op.offset = requests[i].offset;
      op.buf = bufs[i].data();
      op.len = size_t(n);
      ops.push_back(op);
      op_req.push_back(i);
    }
  }

  if (!ops.empty()) {
    const bool want_uring = PosixMultiReadPath() == MultiReadPath::kAuto;
    if (want_uring && uring::ExecuteReads(ops)) {
      internal::NoteUringBatch();
    } else {
      // Either the fallback was forced or the ring is unusable; pread
      // resumes each op from whatever `done` the ring already achieved.
      PreadOps(ops);
      internal::NotePreadBatch();
    }
    for (size_t k = 0; k < ops.size(); ++k) {
      const size_t i = op_req[k];
      if (ops[k].err != 0) {
        out[i] = Result<std::string>(
            ErrnoValue(ops[k].err, "pread", requests[i].name));
        continue;
      }
      bufs[i].resize(ops[k].done);  // short read: concurrently truncated
      out[i] = Result<std::string>(std::move(bufs[i]));
    }
    if (bypass) {
      for (const uring::ReadOp& op : ops) {
        DropBehind(op.fd, op.offset, op.done);
      }
    }
  }
  for (int fd : fds) ::close(fd);

  // Charge in request order, exactly as the sequential loop would.
  for (size_t i = 0; i < requests.size(); ++i) {
    if (out[i].ok()) enclave_->ChargeFileRead(out[i].value().size());
  }
  return out;
}

Result<uint64_t> PosixFs::FileSize(const std::string& name) const {
  if (!root_status_.ok()) return root_status_;
  const std::string path = PathFor(name);
  if (path.empty()) return Status::InvalidArgument("bad file name: " + name);
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) {
    return Status::IOError("no such file: " + name);
  }
  return uint64_t(st.st_size);
}

Status PosixFs::Delete(const std::string& name) {
  if (!root_status_.ok()) return root_status_;
  const std::string path = PathFor(name);
  if (path.empty()) return Status::InvalidArgument("bad file name: " + name);
  // Live Blob handles stay readable past the unlink (mmap-after-unlink):
  // they own their own in-memory copy; only the cache entry is dropped.
  InvalidateBlob(name);
  if (UnlinkRetry(path.c_str()) != 0) {
    if (errno == ENOENT) return Status::IOError("no such file: " + name);
    return Errno("unlink", name);
  }
  MarkDirsDirty(path);
  return Status::Ok();
}

Status PosixFs::Truncate(const std::string& name, uint64_t size) {
  if (!root_status_.ok()) return root_status_;
  const std::string path = PathFor(name);
  if (path.empty()) return Status::InvalidArgument("bad file name: " + name);
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) {
    return Status::IOError("no such file: " + name);
  }
  if (size > uint64_t(st.st_size)) {
    return Status::InvalidArgument("truncate would grow: " + name);
  }
  if (TruncateRetry(path.c_str(), off_t(size)) != 0) {
    return Errno("truncate", name);
  }
  InvalidateBlob(name);
  return Status::Ok();
}

Status PosixFs::Rename(const std::string& from, const std::string& to) {
  if (!root_status_.ok()) return root_status_;
  const std::string from_path = PathFor(from);
  const std::string to_path = PathFor(to);
  if (from_path.empty() || to_path.empty()) {
    return Status::InvalidArgument("bad file name: " + from + " -> " + to);
  }
  if (!Exists(from)) return Status::IOError("no such file: " + from);
  Status s = EnsureParentDirs(to_path);
  if (!s.ok()) return s;
  InvalidateBlob(from);
  InvalidateBlob(to);
  if (RenameRetry(from_path.c_str(), to_path.c_str()) != 0) {
    return Errno("rename", from);
  }
  MarkDirsDirty(from_path);
  MarkDirsDirty(to_path);
  return Status::Ok();
}

Status PosixFs::Sync(const std::string& name) {
  if (!root_status_.ok()) return root_status_;
  const std::string path = PathFor(name);
  if (path.empty()) return Status::InvalidArgument("bad file name: " + name);
  return FsyncPath(path, name);
}

Status PosixFs::SyncDir() {
  if (!root_status_.ok()) return root_status_;
  std::set<std::string> dirty;
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    dirty.swap(dirty_dirs_);
  }
  Status s = FsyncPath(root_, root_);
  if (s.ok()) {
    for (const std::string& dir : dirty) {
      if (dir == root_) continue;
      struct stat st {};
      if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) continue;
      s = FsyncPath(dir, dir);
      if (!s.ok()) break;
    }
  }
  if (!s.ok()) {
    // A failed barrier leaves every dir's durability unknown (a failed
    // fsync may clear the kernel's error state); keep the whole set
    // dirty so a retry cannot falsely report the namespace durable.
    std::lock_guard<std::mutex> lock(dir_mu_);
    dirty_dirs_.insert(dirty.begin(), dirty.end());
  }
  return s;
}

bool PosixFs::Exists(const std::string& name) const {
  if (!root_status_.ok()) return false;
  const std::string path = PathFor(name);
  if (path.empty()) return false;
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

std::vector<std::string> PosixFs::List(std::string_view prefix) const {
  std::vector<std::string> out;
  if (!root_status_.ok()) return out;
  std::error_code ec;
  for (auto it = fsys::recursive_directory_iterator(
           root_, fsys::directory_options::skip_permission_denied, ec);
       !ec && it != fsys::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    std::string rel =
        it->path().lexically_relative(root_).generic_string();
    if (IsTmpName(rel)) {
      continue;  // transient Write() sibling, not part of the namespace
    }
    if (rel.compare(0, prefix.size(), prefix) == 0) out.push_back(std::move(rel));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::shared_ptr<const std::string> PosixFs::Blob(
    const std::string& name) const {
  if (!root_status_.ok()) return nullptr;
  const std::string path = PathFor(name);
  if (path.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(blob_mu_);
  auto it = blobs_.find(name);
  if (it != blobs_.end()) {
    if (auto alive = it->second.lock()) return alive;
    blobs_.erase(it);
  }
  // Like SimFs::Blob, materializing the mapping charges nothing; the
  // MmapRegion caller charges the mmap-setup OCall.
  auto range = ReadRange(path, name, 0, UINT64_MAX);
  if (!range.ok()) return nullptr;
  auto blob = std::make_shared<std::string>(std::move(range).value());
  blobs_[name] = blob;
  return blob;
}

bool PosixFs::Corrupt(const std::string& name, size_t offset, uint8_t mask) {
  if (!root_status_.ok()) return false;
  const std::string path = PathFor(name);
  if (path.empty()) return false;
  const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return false;
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size == 0) {
    ::close(fd);
    return false;
  }
  const off_t pos = off_t(offset % size_t(st.st_size));
  char byte = 0;
  if (::pread(fd, &byte, 1, pos) != 1) {
    ::close(fd);
    return false;
  }
  byte = char(uint8_t(byte) ^ mask);
  const bool ok = ::pwrite(fd, &byte, 1, pos) == 1;
  ::close(fd);
  if (ok) {
    // Mmap semantics: a live shared mapping of the file sees the flip.
    std::lock_guard<std::mutex> lock(blob_mu_);
    auto it = blobs_.find(name);
    if (it != blobs_.end()) {
      if (auto alive = it->second.lock()) {
        (*alive)[size_t(pos)] = char(uint8_t((*alive)[size_t(pos)]) ^ mask);
      }
    }
  }
  return ok;
}

}  // namespace elsm::storage
