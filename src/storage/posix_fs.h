// storage::PosixFs — the first real-disk backend: files live under a root
// directory on a POSIX filesystem and durability is earned with fsync(2),
// not assumed (ISSUE 5 / ROADMAP "multi-backend").
//
// Mapping: the logical name "elsm/shard-000/000042.sst" becomes
// "<root>/elsm/shard-000/000042.sst"; parent directories are created on
// demand. Several PosixFs instances may share one root (ShardedDb gives
// every shard its own instance — so per-shard enclaves are charged
// correctly — over one --dir).
//
// Semantics vs the Fs contract:
//   * Write is an atomic replace: the bytes go to a ".ptmp" sibling which
//     is rename(2)d over the target, so a concurrent reader (or a crash
//     before Sync) never observes a half-written file — matching SimFs's
//     whole-blob replace.
//   * Sync(name) opens the file and fsyncs it; SyncDir() fsyncs the root
//     plus every directory this instance performed namespace operations
//     in since the last barrier, making creates/deletes/renames durable
//     without walking a (possibly shared) root.
//   * Blob(name) materializes the file into memory once and caches it
//     weakly, so repeated MmapRegion::Opens of an SSTable share one copy
//     and — like a real shared mapping — live handles observe Corrupt()'s
//     on-disk byte flips.
//   * Costs are charged on the owning enclave exactly like SimFs (the
//     simulated clock stays comparable); wall-clock time additionally
//     reflects the real I/O, which is what the --backend=posix bench rows
//     measure.
//
// Thread safety: namespace ops go through per-call fds/std::filesystem and
// the blob cache is mutex-guarded. Like SimFs, concurrent mutators of the
// *same* name are the caller's concern (the engine serializes per file).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/fs.h"

namespace elsm::storage {

// Process-wide selector for the PosixFs batched-read execution path.
// kAuto prefers io_uring when built in and accepted by the kernel; kPread
// forces the sequential pread loop (the benches' serialized baseline and
// the tests' path-parity check). Semantics are identical on both paths.
enum class MultiReadPath { kAuto, kPread };
void SetPosixMultiReadPath(MultiReadPath path);
MultiReadPath PosixMultiReadPath();

// Process-wide page-cache policy for PosixFs data reads (Read/MultiRead).
// kKernel (default) is plain buffered I/O: the kernel caches file pages
// and runs its readahead heuristic. kBypass advises POSIX_FADV_RANDOM
// before reading (no kernel readahead) and drops the touched range with
// POSIX_FADV_DONTNEED afterwards, so the only read cache left is the
// enclave's verified ReadBuffer and the only prefetcher is the engine's
// batched readahead — the deployment-faithful setting for SGX, where the
// host page cache is untrusted and double-caches what the verified cache
// already holds. Purely advisory: results and charges are identical on
// both policies. Blob/mmap handles and the write path are unaffected.
enum class PageCachePolicy { kKernel, kBypass };
void SetPosixPageCachePolicy(PageCachePolicy policy);
PageCachePolicy PosixPageCachePolicy();

class PosixFs : public Fs {
 public:
  // Creates `root` (and parents) if missing. A root that cannot be created
  // surfaces as IOError from every subsequent operation.
  PosixFs(std::shared_ptr<sgx::Enclave> enclave, std::string root);

  Status Write(const std::string& name, std::string contents) override;
  Status Append(const std::string& name, std::string_view data) override;

  Result<std::string> Read(const std::string& name, uint64_t offset,
                           uint64_t len) const override;
  // Native batch read: one open+fstat per distinct file, all sub-reads
  // submitted through io_uring when available (pread loop otherwise).
  // Per-request results, error texts, and enclave charges match Read.
  std::vector<Result<std::string>> MultiRead(
      const std::vector<ReadRequest>& requests) const override;
  Result<uint64_t> FileSize(const std::string& name) const override;

  Status Delete(const std::string& name) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Truncate(const std::string& name, uint64_t size) override;
  Status Sync(const std::string& name) override;
  Status SyncDir() override;

  bool Exists(const std::string& name) const override;
  std::vector<std::string> List(std::string_view prefix) const override;

  std::shared_ptr<const std::string> Blob(
      const std::string& name) const override;
  bool Corrupt(const std::string& name, size_t offset,
               uint8_t mask = 0x01) override;

  const std::string& root() const { return root_; }

  // Removes stranded ".ptmp" Write siblings under the root. The
  // constructor runs it once per (process, root) — only a dead process
  // can strand one, and ShardedDb opens many instances over one root —
  // so tests simulating a restart call it directly.
  void SweepStrandedTmp();

 private:
  // Absolute path for a validated logical name ("" on bad names).
  std::string PathFor(const std::string& name) const;
  Status EnsureParentDirs(const std::string& path) const;
  void InvalidateBlob(const std::string& name);
  // Records `path`'s parent chain (up to the root) as namespace-dirty:
  // SyncDir() fsyncs exactly those directories. Keeps the barrier O(dirs
  // this instance touched), not O(every directory under a shared root) —
  // each ShardedDb shard instance only ever pays for its own namespace.
  void MarkDirsDirty(const std::string& path);

  std::string root_;
  Status root_status_ = Status::Ok();  // root creation outcome

  // Weak blob cache: alive handles are shared and tamper-visible; dead
  // entries are reaped lazily.
  mutable std::mutex blob_mu_;
  mutable std::map<std::string, std::weak_ptr<std::string>> blobs_;

  // Directories with namespace operations not yet covered by a SyncDir().
  std::mutex dir_mu_;
  std::set<std::string> dirty_dirs_;
};

}  // namespace elsm::storage
