#include "storage/read_buffer.h"

namespace elsm::storage {
namespace {

std::string CacheKey(const std::string& file, uint64_t offset) {
  return file + "#" + std::to_string(offset);
}

}  // namespace

ReadBuffer::ReadBuffer(std::shared_ptr<sgx::Enclave> enclave,
                       uint64_t capacity_bytes, BufferPlacement placement)
    : enclave_(std::move(enclave)),
      capacity_(capacity_bytes == 0 ? 1 : capacity_bytes),
      placement_(placement) {
  if (placement_ == BufferPlacement::kInsideEnclave) {
    region_ = enclave_->RegisterRegion(capacity_);
  }
}

ReadBuffer::~ReadBuffer() {
  if (region_ != 0) enclave_->FreeRegion(region_);
}

void ReadBuffer::EvictLocked(uint64_t need_bytes) {
  while (bytes_used_ + need_bytes > capacity_ && !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    if (it != entries_.end()) {
      bytes_used_ -= it->second.block->size();
      entries_.erase(it);
      ++stats_.evictions;
    }
  }
}

Result<std::shared_ptr<const std::string>> ReadBuffer::Get(
    const std::string& file, uint64_t offset,
    const std::function<Result<std::string>()>& loader) {
  const std::string key = CacheKey(file, offset);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      const auto& entry = it->second;
      if (placement_ == BufferPlacement::kInsideEnclave) {
        enclave_->AccessRegion(region_, entry.region_offset,
                               entry.block->size());
      } else {
        enclave_->UntrustedRead(entry.block->size());
      }
      return entry.block;
    }
  }

  // Miss: the loader reads from the (untrusted-world) filesystem. The file
  // read is a syscall, so enclave code pays a world switch wherever the
  // buffer lives; inside placement additionally pays the boundary copy.
  ++stats_.misses;
  enclave_->ChargeOcall();
  auto loaded = loader();
  if (!loaded.ok()) return loaded.status();
  auto block = std::make_shared<const std::string>(std::move(loaded).value());

  std::lock_guard<std::mutex> lock(mu_);
  EvictLocked(block->size());
  Entry entry;
  entry.block = block;
  if (placement_ == BufferPlacement::kInsideEnclave) {
    if (ring_cursor_ + block->size() > capacity_) ring_cursor_ = 0;
    entry.region_offset = ring_cursor_;
    ring_cursor_ += block->size();
    enclave_->Copy(block->size(), /*cross_boundary=*/true);
    enclave_->AccessRegion(region_, entry.region_offset, block->size());
  } else {
    enclave_->Copy(block->size(), /*cross_boundary=*/false);
    enclave_->UntrustedRead(block->size());
  }
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  bytes_used_ += block->size();
  entries_[key] = std::move(entry);
  return std::shared_ptr<const std::string>(block);
}

void ReadBuffer::Invalidate(const std::string& file) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    const bool match = it->first.compare(0, file.size(), file) == 0 &&
                       it->first.size() > file.size() &&
                       it->first[file.size()] == '#';
    if (match) {
      bytes_used_ -= it->second.block->size();
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace elsm::storage
