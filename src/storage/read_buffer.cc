#include "storage/read_buffer.h"

#include <algorithm>

namespace elsm::storage {
namespace {

// Cache key: file "#" offset "#" raw digest bytes. File names never contain
// '#', so the prefix file "#" uniquely identifies a file's entries.
std::string CacheKey(const std::string& file, uint64_t offset,
                     const crypto::Hash256& digest) {
  std::string key;
  key.reserve(file.size() + 1 + 20 + 1 + digest.size());
  key += file;
  key += '#';
  key += std::to_string(offset);
  key += '#';
  key.append(reinterpret_cast<const char*>(digest.data()), digest.size());
  return key;
}

bool KeyMatchesFile(const std::string& key, const std::string& file) {
  return key.size() > file.size() + 1 && key[file.size()] == '#' &&
         key.compare(0, file.size(), file) == 0;
}

uint64_t ShardHash(const std::string& file, uint64_t offset) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : file) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  h ^= offset;
  h *= 1099511628211ull;
  return h;
}

}  // namespace

ReadBuffer::ReadBuffer(std::shared_ptr<sgx::Enclave> enclave,
                       uint64_t capacity_bytes, BufferPlacement placement,
                       int shards)
    : enclave_(std::move(enclave)),
      capacity_(capacity_bytes == 0 ? 1 : capacity_bytes),
      placement_(placement) {
  const int n = std::clamp(shards, 1, 64);
  if (placement_ == BufferPlacement::kInsideEnclave) {
    region_ = enclave_->RegisterRegion(capacity_);
  }
  shards_.reserve(n);
  const uint64_t slice = std::max<uint64_t>(capacity_ / n, 1);
  for (int i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->ring_base = slice * i;
    shard->ring_limit = (i + 1 == n) ? capacity_ : slice * (i + 1);
    if (shard->ring_limit <= shard->ring_base) {
      shard->ring_limit = shard->ring_base + 1;
    }
    shard->ring_cursor = shard->ring_base;
    shards_.push_back(std::move(shard));
  }
}

ReadBuffer::~ReadBuffer() {
  if (region_ != 0) enclave_->FreeRegion(region_);
}

ReadBuffer::Shard& ReadBuffer::ShardFor(const std::string& file,
                                        uint64_t offset) {
  return *shards_[ShardHash(file, offset) % shards_.size()];
}

void ReadBuffer::ChargeHit(const Entry& entry) const {
  if (placement_ == BufferPlacement::kInsideEnclave) {
    enclave_->AccessRegion(region_, entry.region_offset,
                           entry.block->size());
  } else {
    enclave_->UntrustedRead(entry.block->size());
  }
}

bool ReadBuffer::RemoveLocked(Shard& shard, const std::string& key) {
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return false;
  shard.bytes_used -= it->second.charged_size;
  shard.lru.erase(it->second.lru_it);
  shard.entries.erase(it);
  return true;
}

void ReadBuffer::EvictLocked(Shard& shard, uint64_t need_bytes) {
  const uint64_t shard_capacity = shard.ring_limit - shard.ring_base;
  while (shard.bytes_used + need_bytes > shard_capacity &&
         !shard.lru.empty()) {
    const std::string victim = shard.lru.back();
    RemoveLocked(shard, victim);
    ++shard.stats.evictions;
  }
}

void ReadBuffer::InstallLocked(Shard& shard, const std::string& key,
                               std::shared_ptr<const std::string> block) {
  // Overwriting a resident entry must retire its accounting and LRU node
  // first, or bytes_used_ drifts up and a stranded node poisons the list.
  RemoveLocked(shard, key);
  EvictLocked(shard, block->size());
  Entry entry;
  entry.charged_size = block->size();
  if (placement_ == BufferPlacement::kInsideEnclave) {
    if (shard.ring_cursor + block->size() > shard.ring_limit) {
      shard.ring_cursor = shard.ring_base;
    }
    entry.region_offset = shard.ring_cursor;
    shard.ring_cursor += block->size();
    enclave_->Copy(block->size(), /*cross_boundary=*/true);
    enclave_->AccessRegion(region_, entry.region_offset, block->size());
  } else {
    enclave_->Copy(block->size(), /*cross_boundary=*/false);
    enclave_->UntrustedRead(block->size());
  }
  shard.lru.push_front(key);
  entry.lru_it = shard.lru.begin();
  shard.bytes_used += block->size();
  entry.block = std::move(block);
  shard.entries[key] = std::move(entry);
}

Result<std::shared_ptr<const std::string>> ReadBuffer::Get(
    const std::string& file, uint64_t offset,
    const crypto::Hash256& expected_digest,
    const std::function<Result<std::string>()>& loader) {
  const std::string key = CacheKey(file, offset, expected_digest);
  Shard& shard = ShardFor(file, offset);
  std::shared_ptr<Flight> flight;
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    for (;;) {
      auto it = shard.entries.find(key);
      if (it != shard.entries.end()) {
        ++shard.stats.hits;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
        ChargeHit(it->second);
        return it->second.block;
      }
      auto fit = shard.flights.find(key);
      if (fit == shard.flights.end()) break;
      // Duplicate miss: wait for the in-flight leader instead of issuing a
      // second load for the same bytes.
      std::shared_ptr<Flight> f = fit->second;
      f->cv.wait(lock, [&f] { return f->done; });
      if (!f->status.ok()) return f->status;
      if (f->block != nullptr) {
        ++shard.stats.hits;
        enclave_->Copy(f->block->size(),
                       placement_ == BufferPlacement::kInsideEnclave);
        return f->block;
      }
      // The leader's flight was superseded; retry from the top.
    }
    ++shard.stats.misses;
    flight = std::make_shared<Flight>();
    shard.flights[key] = flight;
  }

  // Leader path, no lock held: the loader reads from the (untrusted-world)
  // filesystem. The file read is a syscall, so enclave code pays a world
  // switch wherever the buffer lives.
  enclave_->ChargeOcall();
  return FinishFlight(shard, key, file, expected_digest, flight, loader());
}

Result<std::shared_ptr<const std::string>> ReadBuffer::FinishFlight(
    Shard& shard, const std::string& key, const std::string& file,
    const crypto::Hash256& expected_digest,
    const std::shared_ptr<Flight>& flight, Result<std::string> loaded) {
  std::shared_ptr<const std::string> block;
  Status status = loaded.status();
  if (status.ok()) {
    block = std::make_shared<const std::string>(std::move(loaded).value());
    if (expected_digest != crypto::kZeroHash) {
      // Verify-before-cache: the block is only admitted when its bytes hash
      // to the digest sealed in the snapshot metadata (fail closed).
      enclave_->ChargeHash(block->size());
      if (crypto::Sha256::Digest(*block) != expected_digest) {
        status = Status::AuthFailure("block digest mismatch: " + file);
        block = nullptr;
      }
    }
  }

  std::unique_lock<std::mutex> lock(shard.mu);
  if (status.ok() && !flight->invalidated) {
    InstallLocked(shard, key, block);
  } else if (status.ok()) {
    // Invalidated mid-flight (the file was deleted): hand the verified bytes
    // to callers but do not cache them.
    enclave_->Copy(block->size(),
                   placement_ == BufferPlacement::kInsideEnclave);
  }
  flight->status = status;
  flight->block = block;
  flight->done = true;
  auto fit = shard.flights.find(key);
  if (fit != shard.flights.end() && fit->second == flight) {
    shard.flights.erase(fit);
  }
  lock.unlock();
  flight->cv.notify_all();
  if (!status.ok()) return status;
  return block;
}

std::vector<Result<std::shared_ptr<const std::string>>> ReadBuffer::GetBatch(
    const std::vector<BatchRequest>& requests,
    const BatchLoader& batch_loader, const SingleLoader& single_loader) {
  using BlockResult = Result<std::shared_ptr<const std::string>>;
  std::vector<BlockResult> out(requests.size(),
                               BlockResult(Status::IOError("unset")));
  struct Leader {
    size_t index;
    std::string key;
    std::shared_ptr<Flight> flight;
  };
  std::vector<Leader> leaders;
  std::vector<size_t> deferred;
  for (size_t i = 0; i < requests.size(); ++i) {
    const BatchRequest& req = requests[i];
    const std::string key = CacheKey(req.file, req.offset, req.digest);
    Shard& shard = ShardFor(req.file, req.offset);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      ++shard.stats.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      ChargeHit(it->second);
      out[i] = BlockResult(it->second.block);
      continue;
    }
    if (shard.flights.count(key) > 0) {
      // Someone (possibly an earlier request of this very batch) is already
      // loading these bytes; join that flight after the leaders are issued.
      deferred.push_back(i);
      continue;
    }
    ++shard.stats.misses;
    auto flight = std::make_shared<Flight>();
    shard.flights[key] = flight;
    leaders.push_back(Leader{i, key, std::move(flight)});
  }

  if (!leaders.empty()) {
    std::vector<size_t> leader_indices;
    leader_indices.reserve(leaders.size());
    for (const Leader& l : leaders) {
      // One world switch per missed block, exactly as the sequential path.
      enclave_->ChargeOcall();
      leader_indices.push_back(l.index);
    }
    std::vector<Result<std::string>> loaded(
        requests.size(), Result<std::string>(Status::IOError("not loaded")));
    batch_loader(leader_indices, loaded);
    for (Leader& l : leaders) {
      const BatchRequest& req = requests[l.index];
      out[l.index] =
          FinishFlight(ShardFor(req.file, req.offset), l.key, req.file,
                       req.digest, l.flight, std::move(loaded[l.index]));
    }
  }
  for (size_t i : deferred) {
    const BatchRequest& req = requests[i];
    out[i] = Get(req.file, req.offset, req.digest,
                 [&single_loader, i] { return single_loader(i); });
  }
  return out;
}

void ReadBuffer::Invalidate(const std::string& file) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      if (KeyMatchesFile(it->first, file)) {
        shard.bytes_used -= it->second.charged_size;
        shard.lru.erase(it->second.lru_it);
        it = shard.entries.erase(it);
        ++shard.stats.invalidations;
      } else {
        ++it;
      }
    }
    for (auto& [key, flight] : shard.flights) {
      if (KeyMatchesFile(key, file)) flight->invalidated = true;
    }
  }
}

void ReadBuffer::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.stats.invalidations += shard.entries.size();
    shard.entries.clear();
    shard.lru.clear();
    shard.bytes_used = 0;
    shard.ring_cursor = shard.ring_base;
    for (auto& [key, flight] : shard.flights) flight->invalidated = true;
  }
}

ReadBufferStats ReadBuffer::stats() const {
  ReadBufferStats total;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.evictions += shard.stats.evictions;
    total.invalidations += shard.stats.invalidations;
  }
  return total;
}

uint64_t ReadBuffer::bytes_used() const {
  uint64_t total = 0;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mu);
    total += shard_ptr->bytes_used;
  }
  return total;
}

uint64_t ReadBuffer::ResidentBytes() const {
  uint64_t total = 0;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mu);
    for (const auto& [key, entry] : shard_ptr->entries) {
      total += entry.block->size();
    }
  }
  return total;
}

}  // namespace elsm::storage
