// User-space read buffer (verified block cache) with sharded LRU eviction.
//
// This is the structure whose *placement* the paper studies (Fig. 2, 6c, 8):
//  * placement == kOutsideEnclave — eLSM-P2 / unsecured: hits are plain
//    untrusted-memory reads; misses load from the storage::Fs backend.
//  * placement == kInsideEnclave — eLSM-P1: the buffer occupies an enclave
//    region registered with the EPC simulator. Hits touch EPC pages (page
//    faults once capacity > EPC, the Fig. 2 cliff); misses additionally pay
//    an OCall (file read is a syscall) and a cross-boundary copy.
//
// Entries are keyed by (file, offset, expected digest): a block only enters
// the cache after its bytes hash to the digest sealed in the snapshot's
// BlockHandle, so a hit is *already verified* — it skips both the I/O and
// the re-hash. A loader whose bytes do not match fails closed (AuthFailure)
// and nothing is cached. Because a rewritten file (compaction name reuse)
// carries new digests, stale blocks are structurally unreachable even
// before the purge path invalidates them.
//
// Concurrency: the cache is sharded (per-shard mutex); the loader never
// runs under a lock, and duplicate misses on the same key are collapsed
// into a single flight (one loader call, waiters reuse the result).
//
// Cached blocks get stable byte offsets inside the region from a per-shard
// ring allocator, so the EPC page-table sees a realistic address stream.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "crypto/sha256.h"
#include "sgxsim/enclave.h"

namespace elsm::storage {

enum class BufferPlacement { kOutsideEnclave, kInsideEnclave };

struct ReadBufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
};

class ReadBuffer {
 public:
  ReadBuffer(std::shared_ptr<sgx::Enclave> enclave, uint64_t capacity_bytes,
             BufferPlacement placement, int shards = 1);
  ~ReadBuffer();

  ReadBuffer(const ReadBuffer&) = delete;
  ReadBuffer& operator=(const ReadBuffer&) = delete;

  // Returns the cached block for (file, offset, expected_digest), invoking
  // `loader` on a miss to fetch the bytes (the loader runs "in the
  // untrusted world"; world-switch charging happens here, not in the
  // loader). Loaded bytes are hashed inside the enclave and compared to
  // `expected_digest` before they may enter the cache; a mismatch returns
  // AuthFailure and caches nothing. A digest of kZeroHash skips the check
  // (legacy/unsealed blocks) — such entries still key on the zero digest.
  Result<std::shared_ptr<const std::string>> Get(
      const std::string& file, uint64_t offset,
      const crypto::Hash256& expected_digest,
      const std::function<Result<std::string>()>& loader);

  // One block of a GetBatch: the same (file, offset, digest) key as Get.
  struct BatchRequest {
    std::string file;
    uint64_t offset = 0;
    crypto::Hash256 digest{};
  };
  // batch_loader(leader_indices, out) fills out[i] (parallel to `requests`)
  // for every index it is given — the engine backs it with one
  // Fs::MultiRead. single_loader(i) is the sequential reload used by
  // requests that instead join a load already in flight.
  using BatchLoader = std::function<void(const std::vector<size_t>&,
                                         std::vector<Result<std::string>>&)>;
  using SingleLoader = std::function<Result<std::string>(size_t)>;

  // Batched Get: classifies every request in one pass (cache hit / join an
  // in-flight load / become a load leader), issues ONE batch_loader call
  // covering all leaders, then finishes each leader's flight exactly like
  // Get — per-block verify-before-admit, single-flight collapse, and
  // digest-keyed admission are all preserved, and every per-block charge
  // (hit, ocall, hash, copy) matches the sequential path. Results are in
  // request order with per-request error isolation; duplicate keys within
  // a batch collapse to one load.
  std::vector<Result<std::shared_ptr<const std::string>>> GetBatch(
      const std::vector<BatchRequest>& requests,
      const BatchLoader& batch_loader, const SingleLoader& single_loader);

  // Drops every cached block of `file` (called when compaction deletes it)
  // and marks the file's in-flight loads so their results are returned to
  // callers but never installed.
  void Invalidate(const std::string& file);

  // Drops everything (manifest restore / reopen).
  void Clear();

  // Aggregated over shards, taken under the shard locks (safe to call from
  // any thread while readers are active).
  ReadBufferStats stats() const;
  uint64_t bytes_used() const;
  uint64_t capacity() const { return capacity_; }
  int shard_count() const { return static_cast<int>(shards_.size()); }

  // Recomputes the sum of resident entry sizes by walking the maps (test
  // support: must always equal bytes_used()).
  uint64_t ResidentBytes() const;

 private:
  struct Entry {
    std::shared_ptr<const std::string> block;
    uint64_t region_offset = 0;
    size_t charged_size = 0;
    std::list<std::string>::iterator lru_it;
  };

  // A single-flight record: the first missing reader becomes the leader and
  // runs the loader; concurrent readers of the same key wait on `done`.
  struct Flight {
    std::condition_variable cv;
    bool done = false;
    bool invalidated = false;
    Status status = Status::Ok();
    std::shared_ptr<const std::string> block;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> entries;  // key = file#offset#digest
    std::unordered_map<std::string, std::shared_ptr<Flight>> flights;
    std::list<std::string> lru;  // front = most recent
    uint64_t bytes_used = 0;
    uint64_t ring_base = 0;    // this shard's slice of the enclave region
    uint64_t ring_limit = 0;   // exclusive end of the slice
    uint64_t ring_cursor = 0;  // next offset within [ring_base, ring_limit)
    ReadBufferStats stats;
  };

  Shard& ShardFor(const std::string& file, uint64_t offset);
  void ChargeHit(const Entry& entry) const;
  // Leader tail shared by Get and GetBatch: verify the loaded bytes, admit
  // them (unless the flight was invalidated mid-load), publish the flight
  // result and wake the waiters.
  Result<std::shared_ptr<const std::string>> FinishFlight(
      Shard& shard, const std::string& key, const std::string& file,
      const crypto::Hash256& expected_digest,
      const std::shared_ptr<Flight>& flight, Result<std::string> loaded);
  // Removes `key` from `shard` if resident, fixing accounting; returns true
  // if an entry was removed.
  static bool RemoveLocked(Shard& shard, const std::string& key);
  void EvictLocked(Shard& shard, uint64_t need_bytes);
  void InstallLocked(Shard& shard, const std::string& key,
                     std::shared_ptr<const std::string> block);

  std::shared_ptr<sgx::Enclave> enclave_;
  uint64_t capacity_;
  BufferPlacement placement_;
  sgx::RegionId region_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace elsm::storage
