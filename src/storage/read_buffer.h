// User-space read buffer (block cache) with LRU eviction.
//
// This is the structure whose *placement* the paper studies (Fig. 2, 6c, 8):
//  * placement == kOutsideEnclave — eLSM-P2 / unsecured: hits are plain
//    untrusted-memory reads; misses load from the storage::Fs backend.
//  * placement == kInsideEnclave — eLSM-P1: the buffer occupies an enclave
//    region registered with the EPC simulator. Hits touch EPC pages (page
//    faults once capacity > EPC, the Fig. 2 cliff); misses additionally pay
//    an OCall (file read is a syscall) and a cross-boundary copy.
//
// Cached blocks get stable byte offsets inside the region from a ring
// allocator, so the EPC page-table sees a realistic address stream.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "sgxsim/enclave.h"

namespace elsm::storage {

enum class BufferPlacement { kOutsideEnclave, kInsideEnclave };

struct ReadBufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

class ReadBuffer {
 public:
  ReadBuffer(std::shared_ptr<sgx::Enclave> enclave, uint64_t capacity_bytes,
             BufferPlacement placement);
  ~ReadBuffer();

  ReadBuffer(const ReadBuffer&) = delete;
  ReadBuffer& operator=(const ReadBuffer&) = delete;

  // Returns the cached block for (file, offset), invoking `loader` on a
  // miss to fetch the bytes (the loader runs "in the untrusted world";
  // world-switch charging happens here, not in the loader).
  Result<std::shared_ptr<const std::string>> Get(
      const std::string& file, uint64_t offset,
      const std::function<Result<std::string>()>& loader);

  // Drops every cached block of `file` (called when compaction deletes it).
  void Invalidate(const std::string& file);

  const ReadBufferStats& stats() const { return stats_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t bytes_used() const { return bytes_used_; }

 private:
  struct Entry {
    std::shared_ptr<const std::string> block;
    uint64_t region_offset = 0;
    std::list<std::string>::iterator lru_it;
  };

  void EvictLocked(uint64_t need_bytes);

  std::shared_ptr<sgx::Enclave> enclave_;
  uint64_t capacity_;
  BufferPlacement placement_;
  sgx::RegionId region_ = 0;

  std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;  // key = file "#" offset
  std::list<std::string> lru_;                      // front = most recent
  uint64_t bytes_used_ = 0;
  uint64_t ring_cursor_ = 0;
  ReadBufferStats stats_;
};

}  // namespace elsm::storage
