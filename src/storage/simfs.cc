#include "storage/simfs.h"

namespace elsm::storage {

Status SimFs::Write(const std::string& name, std::string contents) {
  enclave_->ChargeFileWrite(contents.size());
  std::lock_guard<std::mutex> lock(mu_);
  files_[name] = std::make_shared<std::string>(std::move(contents));
  return Status::Ok();
}

Status SimFs::Append(const std::string& name, std::string_view data) {
  enclave_->ChargeWalAppend(data.size());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    it = files_.emplace(name, std::make_shared<std::string>()).first;
  }
  // Copy-on-write so outstanding Blob() handles stay stable.
  auto updated = std::make_shared<std::string>(*it->second);
  updated->append(data.data(), data.size());
  it->second = std::move(updated);
  return Status::Ok();
}

Result<std::string> SimFs::Read(const std::string& name, uint64_t offset,
                                uint64_t len) const {
  std::shared_ptr<const std::string> blob;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(name);
    if (it == files_.end()) return Status::IOError("no such file: " + name);
    blob = it->second;
  }
  if (offset > blob->size()) return Status::IOError("read past EOF: " + name);
  const uint64_t n = std::min<uint64_t>(len, blob->size() - offset);
  enclave_->ChargeFileRead(n);
  return blob->substr(offset, n);
}

Result<std::string> SimFs::ReadAll(const std::string& name) const {
  auto size = FileSize(name);
  if (!size.ok()) return size.status();
  return Read(name, 0, size.value());
}

Result<uint64_t> SimFs::FileSize(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::IOError("no such file: " + name);
  return uint64_t(it->second->size());
}

Status SimFs::Delete(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.erase(name) > 0 ? Status::Ok()
                                : Status::IOError("no such file: " + name);
}

Status SimFs::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::IOError("no such file: " + from);
  files_[to] = std::move(it->second);
  files_.erase(from);
  return Status::Ok();
}

bool SimFs::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(name) > 0;
}

std::vector<std::string> SimFs::List(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, blob] : files_) {
    if (name.compare(0, prefix.size(), prefix) == 0) out.push_back(name);
  }
  return out;
}

std::shared_ptr<const std::string> SimFs::Blob(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : it->second;
}

std::shared_ptr<std::string> SimFs::MutableBlob(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : it->second;
}

}  // namespace elsm::storage
