#include "storage/simfs.h"

namespace elsm::storage {

Status SimFs::Write(const std::string& name, std::string contents) {
  enclave_->ChargeFileWrite(contents.size());
  std::lock_guard<std::mutex> lock(mu_);
  files_[name] = std::make_shared<std::string>(std::move(contents));
  return Status::Ok();
}

Status SimFs::Append(const std::string& name, std::string_view data) {
  enclave_->ChargeWalAppend(data.size());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    it = files_.emplace(name, std::make_shared<std::string>()).first;
  }
  // Copy-on-write so outstanding Blob() handles stay stable.
  auto updated = std::make_shared<std::string>(*it->second);
  updated->append(data.data(), data.size());
  it->second = std::move(updated);
  return Status::Ok();
}

Result<std::string> SimFs::Read(const std::string& name, uint64_t offset,
                                uint64_t len) const {
  std::shared_ptr<const std::string> blob;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(name);
    if (it == files_.end()) return Status::IOError("no such file: " + name);
    blob = it->second;
  }
  if (offset > blob->size()) return Status::IOError("read past EOF: " + name);
  const uint64_t n = std::min<uint64_t>(len, blob->size() - offset);
  enclave_->ChargeFileRead(n);
  return blob->substr(offset, n);
}

std::vector<Result<std::string>> SimFs::MultiRead(
    const std::vector<ReadRequest>& requests) const {
  internal::NoteMultiReadBatch(requests.size());
  // Snapshot all blobs under one lock acquisition; shared_ptrs keep the
  // contents stable if a writer replaces a file mid-batch.
  std::vector<std::shared_ptr<const std::string>> blobs(requests.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < requests.size(); ++i) {
      auto it = files_.find(requests[i].name);
      if (it != files_.end()) blobs[i] = it->second;
    }
  }
  std::vector<Result<std::string>> out;
  out.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const ReadRequest& req = requests[i];
    if (blobs[i] == nullptr) {
      out.push_back(Status::IOError("no such file: " + req.name));
      continue;
    }
    if (req.offset > blobs[i]->size()) {
      out.push_back(Status::IOError("read past EOF: " + req.name));
      continue;
    }
    const uint64_t n = std::min<uint64_t>(req.len, blobs[i]->size() - req.offset);
    enclave_->ChargeFileRead(n);
    out.push_back(blobs[i]->substr(req.offset, n));
  }
  return out;
}

Result<uint64_t> SimFs::FileSize(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::IOError("no such file: " + name);
  return uint64_t(it->second->size());
}

Status SimFs::Delete(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.erase(name) > 0 ? Status::Ok()
                                : Status::IOError("no such file: " + name);
}

Status SimFs::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::IOError("no such file: " + from);
  files_[to] = std::move(it->second);
  files_.erase(from);
  return Status::Ok();
}

Status SimFs::Truncate(const std::string& name, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::IOError("no such file: " + name);
  if (size > it->second->size()) {
    return Status::InvalidArgument("truncate would grow: " + name);
  }
  // Copy-on-write so outstanding Blob() handles stay stable.
  it->second = std::make_shared<std::string>(it->second->substr(0, size));
  return Status::Ok();
}

Status SimFs::Sync(const std::string& name) {
  // Match fsync(2): syncing a file that does not exist is the caller's bug.
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(name) > 0 ? Status::Ok()
                                : Status::IOError("no such file: " + name);
}

bool SimFs::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(name) > 0;
}

std::vector<std::string> SimFs::List(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, blob] : files_) {
    if (name.compare(0, prefix.size(), prefix) == 0) out.push_back(name);
  }
  return out;
}

std::shared_ptr<const std::string> SimFs::Blob(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : it->second;
}

bool SimFs::Corrupt(const std::string& name, size_t offset, uint8_t mask) {
  auto blob = MutableBlob(name);
  if (blob == nullptr || blob->empty()) return false;
  const size_t pos = offset % blob->size();
  (*blob)[pos] = char(uint8_t((*blob)[pos]) ^ mask);
  return true;
}

std::shared_ptr<std::string> SimFs::MutableBlob(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : it->second;
}

}  // namespace elsm::storage
