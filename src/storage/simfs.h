// In-memory simulated filesystem (DESIGN.md §2: the paper's evaluation is
// memory-resident, so "disk" behaves like the OS page cache) — the default
// storage::Fs backend.
//
// Costs are charged on the owning Enclave: reads charge file_read_*,
// whole-file writes charge file_write_*, appends charge wal_append_*.
// Sync/SyncDir are free no-ops: an in-memory disk is always "durable"
// (crash semantics are injected by the FaultFs decorator instead).
//
// MutableBlob exists for SimFs-specific adversary tests that rewrite whole
// regions (e.g. WAL truncation); the portable byte-flip tamper hook is
// Fs::Corrupt.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sgxsim/enclave.h"
#include "storage/fs.h"

namespace elsm::storage {

class SimFs : public Fs {
 public:
  explicit SimFs(std::shared_ptr<sgx::Enclave> enclave)
      : Fs(std::move(enclave)) {}

  Status Write(const std::string& name, std::string contents) override;
  Status Append(const std::string& name, std::string_view data) override;

  Result<std::string> Read(const std::string& name, uint64_t offset,
                           uint64_t len) const override;
  // Batched variant: one lock acquisition snapshots every blob, then each
  // sub-read resolves with byte- and cost-identical semantics to Read, so
  // batched and sequential runs stay deterministic-clock comparable.
  std::vector<Result<std::string>> MultiRead(
      const std::vector<ReadRequest>& requests) const override;
  Result<uint64_t> FileSize(const std::string& name) const override;

  Status Delete(const std::string& name) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Truncate(const std::string& name, uint64_t size) override;
  // Always-durable backend: the barriers are free.
  Status Sync(const std::string& name) override;
  Status SyncDir() override { return Status::Ok(); }

  bool Exists(const std::string& name) const override;
  std::vector<std::string> List(std::string_view prefix) const override;

  std::shared_ptr<const std::string> Blob(
      const std::string& name) const override;
  bool Corrupt(const std::string& name, size_t offset,
               uint8_t mask = 0x01) override;

  // Adversary access: direct mutation of stored bytes, no cost charged.
  // SimFs-only (a real disk has no such handle; use Corrupt portably).
  std::shared_ptr<std::string> MutableBlob(const std::string& name);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<std::string>> files_;
};

}  // namespace elsm::storage
