// In-memory simulated filesystem (DESIGN.md §2: the paper's evaluation is
// memory-resident, so "disk" behaves like the OS page cache).
//
// Files are immutable-after-write blobs except for Append (WAL). Costs are
// charged on the owning Enclave: reads charge file_read_*, whole-file writes
// charge file_write_*, appends charge wal_append_*.
//
// Blobs are handed out as shared_ptr so MmapRegion keeps content alive past
// Delete (real mmap-after-unlink semantics). MutableBlob exists for the
// adversary harness: a malicious host tampering with on-disk bytes.
//
// The mutating entry points (Write/Append/Delete/Rename) are virtual so a
// fault-injection wrapper (storage/fault_fs.h) can tear or drop them at a
// simulated crash point; reads stay non-virtual — a crashed disk is still
// readable by the recovery path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sgxsim/enclave.h"

namespace elsm::storage {

class SimFs {
 public:
  explicit SimFs(std::shared_ptr<sgx::Enclave> enclave)
      : enclave_(std::move(enclave)) {}
  virtual ~SimFs() = default;

  // Creates or replaces `name` with `contents`.
  virtual Status Write(const std::string& name, std::string contents);
  // Appends to `name`, creating it if missing (WAL-style framing is the
  // caller's concern).
  virtual Status Append(const std::string& name, std::string_view data);

  Result<std::string> Read(const std::string& name, uint64_t offset,
                           uint64_t len) const;
  Result<std::string> ReadAll(const std::string& name) const;
  Result<uint64_t> FileSize(const std::string& name) const;

  virtual Status Delete(const std::string& name);
  virtual Status Rename(const std::string& from, const std::string& to);
  bool Exists(const std::string& name) const;
  std::vector<std::string> List(std::string_view prefix) const;

  // Zero-copy blob handle for mmap simulation (nullptr if missing).
  std::shared_ptr<const std::string> Blob(const std::string& name) const;
  // Adversary access: direct mutation of stored bytes, no cost charged.
  std::shared_ptr<std::string> MutableBlob(const std::string& name);

  sgx::Enclave& enclave() const { return *enclave_; }
  // Re-attach the filesystem to a fresh enclave (simulated "reboot": the
  // disk survives, the enclave instance does not).
  void set_enclave(std::shared_ptr<sgx::Enclave> enclave) {
    enclave_ = std::move(enclave);
  }

 private:
  std::shared_ptr<sgx::Enclave> enclave_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<std::string>> files_;
};

}  // namespace elsm::storage
