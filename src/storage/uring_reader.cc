#include "storage/uring_reader.h"

#ifdef ELSM_HAVE_LIBURING

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

#ifndef __NR_io_uring_setup
#define __NR_io_uring_setup 425
#endif
#ifndef __NR_io_uring_enter
#define __NR_io_uring_enter 426
#endif

namespace elsm::storage::uring {

namespace {

constexpr unsigned kQueueDepth = 64;

int UringSetup(unsigned entries, io_uring_params* p) {
  return int(syscall(__NR_io_uring_setup, entries, p));
}

int UringEnter(int fd, unsigned to_submit, unsigned min_complete,
               unsigned flags) {
  return int(syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags,
                     nullptr, 0));
}

// Set once a setup attempt fails with a "never going to work" errno, so
// every later thread skips the probe. Transient failures (EMFILE/ENOMEM)
// leave it unset and that thread just runs the pread fallback.
std::atomic<bool> g_permanently_unavailable{false};

// One ring per thread; submission and reaping need no locks. The kernel
// writes the shared head/tail indices from its side, so crossings use
// __atomic acquire/release on the mmap'd words (also keeps TSan honest).
class Ring {
 public:
  Ring() {
    io_uring_params params{};
    fd_ = UringSetup(kQueueDepth, &params);
    if (fd_ < 0) {
      const int err = errno;
      if (err == ENOSYS || err == EPERM || err == EACCES || err == EINVAL) {
        g_permanently_unavailable.store(true, std::memory_order_relaxed);
      }
      return;
    }
    sq_len_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    cq_len_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) sq_len_ = cq_len_ = std::max(sq_len_, cq_len_);
    sq_ptr_ = mmap(nullptr, sq_len_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, fd_, IORING_OFF_SQ_RING);
    if (sq_ptr_ == MAP_FAILED) {
      sq_ptr_ = nullptr;
      Close();
      return;
    }
    if (single_mmap) {
      cq_ptr_ = sq_ptr_;
    } else {
      cq_ptr_ = mmap(nullptr, cq_len_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, fd_, IORING_OFF_CQ_RING);
      if (cq_ptr_ == MAP_FAILED) {
        cq_ptr_ = nullptr;
        Close();
        return;
      }
    }
    sqes_len_ = params.sq_entries * sizeof(io_uring_sqe);
    void* sqes = mmap(nullptr, sqes_len_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, fd_, IORING_OFF_SQES);
    if (sqes == MAP_FAILED) {
      Close();
      return;
    }
    sqes_ = static_cast<io_uring_sqe*>(sqes);

    char* sq = static_cast<char*>(sq_ptr_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    char* cq = static_cast<char*>(cq_ptr_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
    entries_ = params.sq_entries;
    ok_ = true;
  }

  ~Ring() { Close(); }

  bool ok() const { return ok_; }

  bool Execute(std::vector<ReadOp>& ops) {
    // `pending` holds indices of ops still needing (re)submission; EOF
    // (res == 0), hard errors, and fully satisfied reads leave the set.
    std::vector<size_t> pending;
    pending.reserve(ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].len > ops[i].done) pending.push_back(i);
    }
    unsigned in_flight = 0;
    while (!pending.empty() || in_flight > 0) {
      unsigned submitted = 0;
      while (!pending.empty() && in_flight + submitted < entries_) {
        PushRead(ops[pending.back()], pending.back());
        pending.pop_back();
        ++submitted;
      }
      // Block for at least one completion so the loop always progresses.
      const unsigned want = (in_flight + submitted) > 0 ? 1 : 0;
      const int ret =
          UringEnter(fd_, submitted, want, IORING_ENTER_GETEVENTS);
      if (ret < 0) {
        if (errno == EINTR) {
          in_flight += submitted;  // submission may still have happened
          continue;
        }
        return false;  // ring broke mid-batch; caller's fallback resumes
      }
      in_flight += submitted;
      in_flight -= Reap(ops, pending);
    }
    return true;
  }

 private:
  void PushRead(ReadOp& op, size_t index) {
    const unsigned tail = *sq_tail_;  // we are the only submitter
    const unsigned slot = tail & sq_mask_;
    io_uring_sqe* sqe = &sqes_[slot];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = IORING_OP_READ;
    sqe->fd = op.fd;
    sqe->off = op.offset + op.done;
    sqe->addr = reinterpret_cast<uint64_t>(op.buf + op.done);
    sqe->len = static_cast<uint32_t>(op.len - op.done);
    sqe->user_data = index;
    sq_array_[slot] = slot;
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
  }

  // Drains every available CQE; ops needing another round (short read,
  // EINTR/EAGAIN) go back on `pending`. Returns CQEs consumed.
  unsigned Reap(std::vector<ReadOp>& ops, std::vector<size_t>& pending) {
    unsigned head = *cq_head_;
    const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    unsigned reaped = 0;
    while (head != tail) {
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      ReadOp& op = ops[cqe.user_data];
      const int res = cqe.res;
      if (res > 0) {
        op.done += size_t(res);
        if (op.done < op.len) pending.push_back(cqe.user_data);
      } else if (res == -EINTR || res == -EAGAIN) {
        pending.push_back(cqe.user_data);
      } else if (res < 0) {
        op.err = -res;
      }
      // res == 0 is EOF: leave `done` short, done with this op.
      ++head;
      ++reaped;
    }
    __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
    return reaped;
  }

  void Close() {
    if (sqes_ != nullptr) munmap(sqes_, sqes_len_);
    if (cq_ptr_ != nullptr && cq_ptr_ != sq_ptr_) munmap(cq_ptr_, cq_len_);
    if (sq_ptr_ != nullptr) munmap(sq_ptr_, sq_len_);
    if (fd_ >= 0) close(fd_);
    sqes_ = nullptr;
    cq_ptr_ = nullptr;
    sq_ptr_ = nullptr;
    fd_ = -1;
    ok_ = false;
  }

  int fd_ = -1;
  void* sq_ptr_ = nullptr;
  void* cq_ptr_ = nullptr;
  size_t sq_len_ = 0;
  size_t cq_len_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  size_t sqes_len_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  unsigned entries_ = 0;
  bool ok_ = false;
};

Ring* ThreadRing() {
  if (g_permanently_unavailable.load(std::memory_order_relaxed)) {
    return nullptr;
  }
  thread_local Ring ring;
  return ring.ok() ? &ring : nullptr;
}

}  // namespace

bool Available() { return ThreadRing() != nullptr; }

bool ExecuteReads(std::vector<ReadOp>& ops) {
  Ring* ring = ThreadRing();
  if (ring == nullptr) return false;
  return ring->Execute(ops);
}

}  // namespace elsm::storage::uring

#else  // !ELSM_HAVE_LIBURING

namespace elsm::storage::uring {

bool Available() { return false; }
bool ExecuteReads(std::vector<ReadOp>&) { return false; }

}  // namespace elsm::storage::uring

#endif  // ELSM_HAVE_LIBURING
