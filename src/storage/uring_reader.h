// Minimal io_uring batch-read executor for PosixFs::MultiRead.
//
// Talks to the kernel ABI directly (<linux/io_uring.h> + the three raw
// syscalls) rather than through liburing, so the build needs no extra
// library. Compile-time gated by ELSM_HAVE_LIBURING (a CMake probe that the
// kernel uapi header and syscall numbers exist) and runtime-gated by a
// once-cached io_uring_setup probe, so binaries built with the gate still
// fall back cleanly on kernels without io_uring (ENOSYS) or in sandboxes
// that filter it (EPERM).
//
// The executor owns one small thread_local ring per calling thread; callers
// never share a ring, so submission needs no locking. ExecuteReads drives a
// vector of absolute-offset reads to completion — short reads are
// resubmitted, EINTR/EAGAIN retried — and reports per-op byte counts and
// errno values. It returns false when the ring is unusable, in which case
// the caller must run its own pread fallback (no ops were partially
// consumed in a way the fallback cannot redo: `done` tracks progress and
// the fallback may simply continue from it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace elsm::storage::uring {

// One read of `len` bytes at absolute file offset `offset` into `buf`.
// After ExecuteReads: `done` holds the bytes read (short means EOF) and
// `err` a positive errno if the read failed (0 on success/EOF).
struct ReadOp {
  int fd = -1;
  uint64_t offset = 0;
  char* buf = nullptr;
  size_t len = 0;
  size_t done = 0;
  int err = 0;
};

// True when this build has the io_uring ABI and the running kernel accepts
// io_uring_setup. Cached after the first call.
bool Available();

// Runs every op to completion (or error) through this thread's ring.
// Returns false without touching the ops when no ring is available.
bool ExecuteReads(std::vector<ReadOp>& ops);

}  // namespace elsm::storage::uring
