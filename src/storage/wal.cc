#include "storage/wal.h"

#include <cstring>

#include "common/coding.h"
#include "crypto/sha256.h"

namespace elsm::storage {
namespace {

uint32_t Checksum(std::string_view payload) {
  const crypto::Hash256 h = crypto::Sha256::Digest(payload);
  uint32_t c = 0;
  std::memcpy(&c, h.data(), sizeof(c));
  return c;
}

}  // namespace

Status WalWriter::Append(std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 8);
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, Checksum(payload));
  frame.append(payload.data(), payload.size());
  return fs_->Append(name_, frame);
}

Result<WalContents> ReadWal(const SimFs& fs, const std::string& name) {
  if (!fs.Exists(name)) return WalContents{};
  auto all = fs.ReadAll(name);
  if (!all.ok()) return all.status();

  WalContents out;
  std::string_view input(all.value());
  const size_t total = input.size();
  while (!input.empty()) {
    std::string_view mark = input;
    uint32_t len = 0;
    uint32_t cksum = 0;
    if (!GetFixed32(&input, &len) || !GetFixed32(&input, &cksum) ||
        input.size() < len) {
      out.clean = false;
      input = mark;  // leave unread
      break;
    }
    const std::string_view payload = input.substr(0, len);
    if (Checksum(payload) != cksum) {
      out.clean = false;
      input = mark;
      break;
    }
    out.records.emplace_back(payload);
    input.remove_prefix(len);
  }
  out.valid_bytes = total - input.size();
  return out;
}

}  // namespace elsm::storage
