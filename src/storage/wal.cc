#include "storage/wal.h"

#include <cstring>

#include "common/coding.h"
#include "crypto/sha256.h"

namespace elsm::storage {
namespace {

uint32_t Checksum(std::string_view payload) {
  const crypto::Hash256 h = crypto::Sha256::Digest(payload);
  uint32_t c = 0;
  std::memcpy(&c, h.data(), sizeof(c));
  return c;
}

void AppendFrame(std::string* out, std::string_view payload) {
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  PutFixed32(out, Checksum(payload));
  out->append(payload.data(), payload.size());
}

}  // namespace

Status WalWriter::Append(std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 8);
  AppendFrame(&frame, payload);
  return fs_->Append(name_, frame);
}

Status WalWriter::AppendBatch(const std::vector<std::string>& payloads) {
  std::vector<std::string_view> views(payloads.begin(), payloads.end());
  return AppendBatch(views);
}

Status WalWriter::AppendBatch(const std::vector<std::string_view>& payloads) {
  if (payloads.empty()) return Status::Ok();
  size_t total = 0;
  for (std::string_view payload : payloads) total += payload.size() + 8;
  std::string frames;
  frames.reserve(total);
  for (std::string_view payload : payloads) AppendFrame(&frames, payload);
  return fs_->Append(name_, frames);
}

Result<WalContents> ReadWal(const Fs& fs, const std::string& name) {
  if (!fs.Exists(name)) return WalContents{};
  auto all = fs.ReadAll(name);
  if (!all.ok()) return all.status();

  WalContents out;
  std::string_view input(all.value());
  const size_t total = input.size();
  while (!input.empty()) {
    std::string_view mark = input;
    uint32_t len = 0;
    uint32_t cksum = 0;
    if (!GetFixed32(&input, &len) || !GetFixed32(&input, &cksum) ||
        input.size() < len) {
      out.clean = false;
      input = mark;  // leave unread
      break;
    }
    const std::string_view payload = input.substr(0, len);
    if (Checksum(payload) != cksum) {
      out.clean = false;
      input = mark;
      break;
    }
    out.records.emplace_back(payload);
    input.remove_prefix(len);
  }
  out.valid_bytes = total - input.size();
  return out;
}

}  // namespace elsm::storage
