// Write-ahead log framing on top of storage::Fs (paper §5.3 write path, w3).
//
// Frame: fixed32 payload length || fixed32 checksum (first 4 bytes of
// SHA-256 over the payload) || payload. The checksum guards against benign
// torn writes; *authenticity* of the WAL is the job of the in-enclave WAL
// digest chain (auth/wal_digest.h), not of this framing.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/fs.h"

namespace elsm::storage {

// Framing bytes per record: fixed32 length + fixed32 checksum. The engine
// uses it to advance its committed-offset tracking by payload + overhead
// per acknowledged frame.
inline constexpr uint64_t kWalFrameOverhead = 8;

class WalWriter {
 public:
  WalWriter(Fs* fs, std::string name) : fs_(fs), name_(std::move(name)) {}

  Status Append(std::string_view payload);
  // Group commit: frames every payload but issues a single filesystem
  // append, so the (simulated) world switch is paid once per batch. The
  // string_view overload lets the engine's commit leader splice a whole
  // cohort's payloads (owned by the individual writers) without copying.
  Status AppendBatch(const std::vector<std::string>& payloads);
  Status AppendBatch(const std::vector<std::string_view>& payloads);
  // Durability barrier: appended frames survive a power failure once this
  // returns (Fs::Sync contract). The engine calls it before acknowledging
  // a write when LsmOptions::sync_writes is set.
  Status Sync() { return fs_->Sync(name_); }
  const std::string& name() const { return name_; }

 private:
  Fs* fs_;
  std::string name_;
};

// Reads every well-formed frame; stops cleanly at the first corrupt or
// truncated frame (crash semantics) and reports how many bytes were consumed.
struct WalContents {
  std::vector<std::string> records;
  uint64_t valid_bytes = 0;
  bool clean = true;  // false if trailing garbage was skipped
};
Result<WalContents> ReadWal(const Fs& fs, const std::string& name);

}  // namespace elsm::storage
