// Minimal store interface the YCSB runner drives, plus adapters for every
// engine the paper benchmarks (eLSM P1/P2/unsecured, Eleos, Merkle B-tree).
// Latency is read from the store's *simulated* enclave clock.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "baseline/eleos_store.h"
#include "baseline/merkle_btree.h"
#include "common/status.h"
#include "elsm/elsm_db.h"
#include "elsm/sharded_db.h"

namespace elsm::ycsb {

class KvInterface {
 public:
  virtual ~KvInterface() = default;
  virtual Status Put(std::string_view key, std::string_view value) = 0;
  // Bulk insert (the YCSB load phase). Stores with a group-commit path
  // override this; the default degrades to per-record Puts.
  virtual Status PutBatch(
      const std::vector<std::pair<std::string, std::string>>& records) {
    for (const auto& [key, value] : records) {
      Status s = Put(key, value);
      if (!s.ok()) return s;
    }
    return Status::Ok();
  }
  virtual Result<std::optional<std::string>> Get(std::string_view key) = 0;
  // Batched point lookups, results in input order (slot i answers keys[i]).
  // Stores with a cross-shard fan-out path override this; the default
  // degrades to per-key Gets. Fail-closed: any per-key error fails the
  // whole call.
  virtual Result<std::vector<std::optional<std::string>>> MultiGet(
      const std::vector<std::string>& keys) {
    std::vector<std::optional<std::string>> out;
    out.reserve(keys.size());
    for (const std::string& key : keys) {
      auto got = Get(key);
      if (!got.ok()) return got.status();
      out.push_back(std::move(got).value());
    }
    return out;
  }
  // Range scan of up to `limit` records starting at `start_key`. Returns the
  // number of records produced.
  virtual Result<size_t> Scan(std::string_view start_key,
                              std::string_view end_key, size_t limit) = 0;
  // Simulated time (ns) — the latency source for all measurements.
  virtual uint64_t now_ns() const = 0;
};

class ElsmKv : public KvInterface {
 public:
  explicit ElsmKv(ElsmDb* db) : db_(db) {}
  Status Put(std::string_view key, std::string_view value) override {
    return db_->Put(key, value);
  }
  Status PutBatch(const std::vector<std::pair<std::string, std::string>>&
                      records) override {
    ElsmDb::WriteBatch batch;
    batch.entries.reserve(records.size());
    for (const auto& [key, value] : records) batch.Put(key, value);
    return db_->Write(batch);
  }
  Result<std::optional<std::string>> Get(std::string_view key) override {
    return db_->Get(key);
  }
  Result<std::vector<std::optional<std::string>>> MultiGet(
      const std::vector<std::string>& keys) override {
    return db_->MultiGet(keys);
  }
  Result<size_t> Scan(std::string_view start_key, std::string_view end_key,
                      size_t limit) override {
    auto records = db_->Scan(start_key, end_key);
    if (!records.ok()) return records.status();
    return std::min(records.value().size(), limit);
  }
  uint64_t now_ns() const override { return db_->enclave().now_ns(); }

 private:
  ElsmDb* db_;
};

// Hash-partitioned multi-shard store; the batch load path partitions per
// shard, so each shard sees one group commit per batch (dispatched to the
// fan-out pool when Options::fanout_threads is set), and MultiGet rides
// the parallel cross-shard path. Latency comes from the summed shard
// clocks: an op advances only its shard's enclave, so the delta prices
// exactly that op.
class ShardedKv : public KvInterface {
 public:
  explicit ShardedKv(ShardedDb* db) : db_(db) {}
  Status Put(std::string_view key, std::string_view value) override {
    return db_->Put(key, value);
  }
  Status PutBatch(const std::vector<std::pair<std::string, std::string>>&
                      records) override {
    ElsmDb::WriteBatch batch;
    batch.entries.reserve(records.size());
    for (const auto& [key, value] : records) batch.Put(key, value);
    return db_->Write(batch);
  }
  Result<std::optional<std::string>> Get(std::string_view key) override {
    return db_->Get(key);
  }
  Result<std::vector<std::optional<std::string>>> MultiGet(
      const std::vector<std::string>& keys) override {
    return db_->MultiGet(keys);
  }
  Result<size_t> Scan(std::string_view start_key, std::string_view end_key,
                      size_t limit) override {
    auto records = db_->Scan(start_key, end_key);
    if (!records.ok()) return records.status();
    return std::min(records.value().size(), limit);
  }
  uint64_t now_ns() const override { return db_->now_ns(); }

 private:
  ShardedDb* db_;
};

class EleosKv : public KvInterface {
 public:
  EleosKv(baseline::EleosStore* store, sgx::Enclave* enclave)
      : store_(store), enclave_(enclave) {}
  Status Put(std::string_view key, std::string_view value) override {
    return store_->Put(key, value);
  }
  Result<std::optional<std::string>> Get(std::string_view key) override {
    return store_->Get(key);
  }
  Result<size_t> Scan(std::string_view start_key, std::string_view end_key,
                      size_t limit) override {
    auto records = store_->Scan(start_key, end_key);
    if (!records.ok()) return records.status();
    return std::min(records.value().size(), limit);
  }
  uint64_t now_ns() const override { return enclave_->now_ns(); }

 private:
  baseline::EleosStore* store_;
  sgx::Enclave* enclave_;
};

class MerkleBTreeKv : public KvInterface {
 public:
  MerkleBTreeKv(baseline::MerkleBTree* tree, sgx::Enclave* enclave)
      : tree_(tree), enclave_(enclave) {}
  Status Put(std::string_view key, std::string_view value) override {
    return tree_->Put(key, value);
  }
  Result<std::optional<std::string>> Get(std::string_view key) override {
    return tree_->Get(key);
  }
  Result<size_t> Scan(std::string_view, std::string_view, size_t) override {
    return Status::NotSupported("merkle btree baseline: point ops only");
  }
  uint64_t now_ns() const override { return enclave_->now_ns(); }

 private:
  baseline::MerkleBTree* tree_;
  sgx::Enclave* enclave_;
};

}  // namespace elsm::ycsb
