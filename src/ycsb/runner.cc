#include "ycsb/runner.h"

namespace elsm::ycsb {

YcsbRunner::YcsbRunner(WorkloadSpec spec, uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {}

Status YcsbRunner::Load(KvInterface& kv) {
  // Group-commit the load phase: stores with a WriteBatch path pay one lock
  // acquisition and one WAL append per kLoadBatch records.
  constexpr uint64_t kLoadBatch = 64;
  std::vector<std::pair<std::string, std::string>> batch;
  batch.reserve(kLoadBatch);
  for (uint64_t i = 0; i < spec_.record_count; ++i) {
    batch.emplace_back(MakeKey(i, spec_.key_size),
                       MakeValue(i, spec_.value_size));
    if (batch.size() == kLoadBatch || i + 1 == spec_.record_count) {
      Status s = kv.PutBatch(batch);
      if (!s.ok()) return s;
      batch.clear();
    }
  }
  return Status::Ok();
}

Result<RunStats> YcsbRunner::Run(KvInterface& kv) {
  KeyChooser chooser(spec_, seed_);
  RunStats stats;
  const uint64_t start_ns = kv.now_ns();

  for (uint64_t op = 0; op < spec_.operation_count; ++op) {
    const OpType type = chooser.NextOp();
    const uint64_t before = kv.now_ns();
    Status s = Status::Ok();
    bool is_write = false;
    bool is_scan = false;

    switch (type) {
      case OpType::kRead: {
        auto got = kv.Get(MakeKey(chooser.NextExisting(), spec_.key_size));
        s = got.status();
        if (s.ok() && !got.value().has_value()) ++stats.not_found;
        break;
      }
      case OpType::kUpdate: {
        const uint64_t index = chooser.NextExisting();
        s = kv.Put(MakeKey(index, spec_.key_size),
                   MakeValue(index + op, spec_.value_size));
        is_write = true;
        break;
      }
      case OpType::kInsert: {
        const uint64_t index = chooser.NextInsert();
        s = kv.Put(MakeKey(index, spec_.key_size),
                   MakeValue(index, spec_.value_size));
        is_write = true;
        break;
      }
      case OpType::kScan: {
        const uint64_t index = chooser.NextExisting();
        const uint64_t len = 1 + (index % spec_.max_scan_len);
        auto scanned =
            kv.Scan(MakeKey(index, spec_.key_size),
                    MakeKey(index + len, spec_.key_size), spec_.max_scan_len);
        s = scanned.status();
        is_scan = true;
        break;
      }
      case OpType::kReadModifyWrite: {
        const uint64_t index = chooser.NextExisting();
        const std::string key = MakeKey(index, spec_.key_size);
        auto got = kv.Get(key);
        s = got.status();
        if (s.ok()) s = kv.Put(key, MakeValue(index + op, spec_.value_size));
        is_write = true;
        break;
      }
    }

    if (!s.ok()) {
      ++stats.failures;
      if (s.IsCapacityExceeded()) break;  // Eleos hit its scaling cap
      return s;                           // real failures abort the run
    }
    const uint64_t latency = kv.now_ns() - before;
    stats.overall.Add(latency);
    if (is_scan) {
      stats.scans.Add(latency);
    } else if (is_write) {
      stats.writes.Add(latency);
    } else {
      stats.reads.Add(latency);
    }
    ++stats.ops;
  }

  stats.sim_ns = kv.now_ns() - start_ns;
  return stats;
}

}  // namespace elsm::ycsb
