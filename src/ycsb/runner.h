// YCSB load/run driver over KvInterface, measuring simulated per-op latency
// (§6.1: "YCSB works in two phases: the load phase ... and the evaluation
// phase").
#pragma once

#include "common/histogram.h"
#include "common/status.h"
#include "ycsb/kv_interface.h"
#include "ycsb/workload.h"

namespace elsm::ycsb {

struct RunStats {
  Histogram overall;
  Histogram reads;
  Histogram writes;
  Histogram scans;
  uint64_t ops = 0;
  uint64_t not_found = 0;
  uint64_t failures = 0;  // CapacityExceeded etc. (Eleos scaling cap)
  uint64_t sim_ns = 0;

  double MeanLatencyUs() const { return overall.Mean() / 1000.0; }
};

class YcsbRunner {
 public:
  explicit YcsbRunner(WorkloadSpec spec, uint64_t seed = 42);

  // Load phase: inserts record_count records (keys 0..n-1, in order).
  Status Load(KvInterface& kv);
  // Evaluation phase: operation_count ops drawn from the spec.
  Result<RunStats> Run(KvInterface& kv);

  const WorkloadSpec& spec() const { return spec_; }

 private:
  WorkloadSpec spec_;
  uint64_t seed_;
};

}  // namespace elsm::ycsb
