#include "ycsb/workload.h"

#include <cstdio>

namespace elsm::ycsb {

const char* KeyDistributionName(KeyDistribution d) {
  switch (d) {
    case KeyDistribution::kUniform:
      return "Uniform";
    case KeyDistribution::kZipfian:
      return "Zipfian";
    case KeyDistribution::kLatest:
      return "Latest";
  }
  return "?";
}

WorkloadSpec WorkloadSpec::A() {
  WorkloadSpec w;
  w.name = "A";
  w.read_proportion = 0.5;
  w.update_proportion = 0.5;
  w.distribution = KeyDistribution::kZipfian;
  return w;
}

WorkloadSpec WorkloadSpec::B() {
  WorkloadSpec w;
  w.name = "B";
  w.read_proportion = 0.95;
  w.update_proportion = 0.05;
  w.distribution = KeyDistribution::kZipfian;
  return w;
}

WorkloadSpec WorkloadSpec::C() {
  WorkloadSpec w;
  w.name = "C";
  w.read_proportion = 1.0;
  w.distribution = KeyDistribution::kZipfian;
  return w;
}

WorkloadSpec WorkloadSpec::D() {
  WorkloadSpec w;
  w.name = "D";
  w.read_proportion = 0.95;
  w.insert_proportion = 0.05;
  w.distribution = KeyDistribution::kLatest;
  return w;
}

WorkloadSpec WorkloadSpec::E() {
  WorkloadSpec w;
  w.name = "E";
  w.scan_proportion = 0.95;
  w.insert_proportion = 0.05;
  w.distribution = KeyDistribution::kZipfian;
  w.max_scan_len = 100;
  return w;
}

WorkloadSpec WorkloadSpec::F() {
  WorkloadSpec w;
  w.name = "F";
  w.read_proportion = 0.5;
  w.rmw_proportion = 0.5;
  w.distribution = KeyDistribution::kZipfian;
  return w;
}

WorkloadSpec WorkloadSpec::ReadWriteMix(double read_pct, KeyDistribution d) {
  WorkloadSpec w;
  w.name = "mix" + std::to_string(int(read_pct));
  w.read_proportion = read_pct / 100.0;
  w.update_proportion = 1.0 - read_pct / 100.0;
  w.distribution = d;
  return w;
}

std::string MakeKey(uint64_t index, size_t key_size) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "u%015llu",
                              static_cast<unsigned long long>(index));
  std::string key(buf, size_t(n));
  if (key.size() < key_size) key.append(key_size - key.size(), 'k');
  return key;
}

std::string MakeValue(uint64_t index, size_t value_size) {
  std::string value;
  value.reserve(value_size);
  uint64_t state = index * 0x9e3779b97f4a7c15ull + 1;
  while (value.size() < value_size) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    value.push_back(char('a' + (state % 26)));
  }
  return value;
}

KeyChooser::KeyChooser(const WorkloadSpec& spec, uint64_t seed)
    : spec_(spec),
      rng_(seed),
      count_(spec.record_count == 0 ? 1 : spec.record_count),
      zipf_(count_),
      latest_(count_) {}

uint64_t KeyChooser::NextExisting() {
  switch (spec_.distribution) {
    case KeyDistribution::kUniform:
      return rng_.Uniform(count_);
    case KeyDistribution::kZipfian:
      return zipf_.Next(rng_);
    case KeyDistribution::kLatest:
      return latest_.Next(rng_);
  }
  return 0;
}

uint64_t KeyChooser::NextInsert() {
  const uint64_t index = count_++;
  latest_.AdvanceTo(count_);
  return index;
}

OpType KeyChooser::NextOp() {
  double p = rng_.NextDouble();
  if ((p -= spec_.read_proportion) < 0) return OpType::kRead;
  if ((p -= spec_.update_proportion) < 0) return OpType::kUpdate;
  if ((p -= spec_.insert_proportion) < 0) return OpType::kInsert;
  if ((p -= spec_.scan_proportion) < 0) return OpType::kScan;
  return OpType::kReadModifyWrite;
}

}  // namespace elsm::ycsb
