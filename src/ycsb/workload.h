// YCSB workload specifications (Cooper et al., SoCC'10) — the benchmark
// framework the paper evaluates with (§6.1). Core workloads A–F plus the
// parameterized read/write mixes and key distributions of Figures 5a/5c.
#pragma once

#include <cstdint>
#include <string>

#include "common/random.h"

namespace elsm::ycsb {

enum class OpType { kRead, kUpdate, kInsert, kScan, kReadModifyWrite };

enum class KeyDistribution { kUniform, kZipfian, kLatest };

const char* KeyDistributionName(KeyDistribution d);

struct WorkloadSpec {
  double read_proportion = 0;
  double update_proportion = 0;
  double insert_proportion = 0;
  double scan_proportion = 0;
  double rmw_proportion = 0;
  KeyDistribution distribution = KeyDistribution::kZipfian;
  uint64_t record_count = 10'000;
  uint64_t operation_count = 10'000;
  size_t key_size = 16;    // paper: 16-byte keys
  size_t value_size = 100; // paper: 100-byte values
  uint32_t max_scan_len = 100;
  std::string name = "custom";

  // --- the six YCSB core workloads -----------------------------------------
  static WorkloadSpec A();  // 50/50 read/update, zipfian
  static WorkloadSpec B();  // 95/5 read/update, zipfian
  static WorkloadSpec C();  // read-only, zipfian
  static WorkloadSpec D();  // 95/5 read/insert, latest
  static WorkloadSpec E();  // 95/5 scan/insert, zipfian
  static WorkloadSpec F();  // 50/50 read/read-modify-write, zipfian
  // Fig. 5a style mix: `read_pct` % reads, rest updates.
  static WorkloadSpec ReadWriteMix(double read_pct,
                                   KeyDistribution d = KeyDistribution::kUniform);
};

// Key/value generation shared by the runner and the benches. Keys are
// "u" + zero-padded decimal of the (optionally scrambled) record index,
// padded to spec.key_size.
std::string MakeKey(uint64_t index, size_t key_size);
std::string MakeValue(uint64_t index, size_t value_size);

// Draws record indices according to the spec's distribution. Inserts extend
// the keyspace; Latest re-targets recency after every insert.
class KeyChooser {
 public:
  KeyChooser(const WorkloadSpec& spec, uint64_t seed);

  uint64_t NextExisting();   // index in [0, record_count)
  uint64_t NextInsert();     // fresh index (grows the keyspace)
  uint64_t record_count() const { return count_; }
  OpType NextOp();

 private:
  WorkloadSpec spec_;
  Rng rng_;
  uint64_t count_;
  ScrambledZipfianGenerator zipf_;
  LatestGenerator latest_;
};

}  // namespace elsm::ycsb
