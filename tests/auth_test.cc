// Unit tests for the auth module: embedded-proof codec, the Merkle sidecar
// (TreeFile), level digest/seal construction, the WAL digest chain, and
// verifier edge cases not covered by the end-to-end security tests.
#include <gtest/gtest.h>

#include "auth/level_builder.h"
#include "auth/listener.h"
#include "auth/proof.h"
#include "auth/verifier.h"
#include "auth/wal_digest.h"
#include "storage/simfs.h"

namespace elsm::auth {
namespace {

std::shared_ptr<sgx::Enclave> MakeEnclave() {
  return std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
}

lsm::Record MakeRecord(const std::string& key, const std::string& value,
                       uint64_t ts) {
  lsm::Record r;
  r.key = key;
  r.value = value;
  r.ts = ts;
  return r;
}

// A sorted run with 3 versions of "b" and single versions of "a".."e".
std::vector<lsm::Record> SampleRun() {
  return {
      MakeRecord("a", "va", 10), MakeRecord("b", "vb3", 30),
      MakeRecord("b", "vb2", 20), MakeRecord("b", "vb1", 5),
      MakeRecord("c", "vc", 11), MakeRecord("d", "vd", 12),
      MakeRecord("e", "ve", 13),
  };
}

TEST(EmbeddedProofTest, CodecRoundTripWithSuffix) {
  EmbeddedProof proof;
  proof.leaf_index = 1234567;
  proof.suffix.present = true;
  proof.suffix.digest = crypto::Sha256::Digest("suffix");
  auto decoded = EmbeddedProof::Decode(proof.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().leaf_index, proof.leaf_index);
  EXPECT_TRUE(decoded.value().suffix.present);
  EXPECT_EQ(decoded.value().suffix.digest, proof.suffix.digest);
  EXPECT_FALSE(decoded.value().path.has_value());
}

TEST(EmbeddedProofTest, CodecRoundTripWithPath) {
  EmbeddedProof proof;
  proof.leaf_index = 3;
  crypto::MerklePath path;
  path.leaf_index = 3;
  path.siblings = {crypto::Sha256::Digest("s1"), crypto::Sha256::Digest("s2")};
  proof.path = path;
  auto decoded = EmbeddedProof::Decode(proof.Encode());
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded.value().path.has_value());
  EXPECT_EQ(decoded.value().path->siblings, path.siblings);
}

TEST(EmbeddedProofTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(EmbeddedProof::Decode("").ok());
  EXPECT_FALSE(EmbeddedProof::Decode("\x01").ok());          // missing index
  EXPECT_FALSE(EmbeddedProof::Decode("\x01\x05shrt").ok());  // short suffix
}

TEST(LevelBuilderTest, SealMatchesDigestRun) {
  auto enclave = MakeEnclave();
  const auto records = SampleRun();
  auto seal = BuildLevelSeal(records, *enclave, /*embed_full_paths=*/false);
  ASSERT_TRUE(seal.ok());
  EXPECT_EQ(seal.value().leaf_count, 5u);  // distinct keys a..e
  ASSERT_EQ(seal.value().proof_blobs.size(), records.size());

  // Re-digesting the same run (as compaction-input verification does) must
  // reproduce the sealed root.
  std::vector<lsm::RawEntry> run;
  for (const auto& r : records) {
    lsm::RawEntry e;
    e.record = r;
    e.core = r.EncodeCore();
    run.push_back(e);
  }
  const LevelDigest digest = DigestRun(run, *enclave);
  EXPECT_EQ(digest.root, seal.value().root);
  EXPECT_EQ(digest.leaf_count, seal.value().leaf_count);
}

TEST(LevelBuilderTest, ChainMembersShareLeafIndex) {
  auto enclave = MakeEnclave();
  const auto records = SampleRun();
  auto seal = BuildLevelSeal(records, *enclave, false);
  ASSERT_TRUE(seal.ok());
  // Records 1..3 are the three versions of "b" -> leaf index 1.
  for (int i = 1; i <= 3; ++i) {
    auto proof = EmbeddedProof::Decode(seal.value().proof_blobs[size_t(i)]);
    ASSERT_TRUE(proof.ok());
    EXPECT_EQ(proof.value().leaf_index, 1u);
  }
  // Newest "b" has a suffix; oldest does not.
  auto newest = EmbeddedProof::Decode(seal.value().proof_blobs[1]);
  auto oldest = EmbeddedProof::Decode(seal.value().proof_blobs[3]);
  EXPECT_TRUE(newest.value().suffix.present);
  EXPECT_FALSE(oldest.value().suffix.present);
}

TEST(LevelBuilderTest, EmptyRunYieldsEmptySeal) {
  auto enclave = MakeEnclave();
  auto seal = BuildLevelSeal({}, *enclave, false);
  ASSERT_TRUE(seal.ok());
  EXPECT_EQ(seal.value().leaf_count, 0u);
  EXPECT_EQ(seal.value().root, crypto::kZeroHash);
  EXPECT_TRUE(seal.value().proof_blobs.empty());
}

TEST(TreeFileTest, SiblingsMatchInMemoryTree) {
  auto enclave = MakeEnclave();
  storage::SimFs fs(enclave);
  std::vector<crypto::Hash256> leaves;
  for (int i = 0; i < 37; ++i) {
    leaves.push_back(crypto::Sha256::Digest("leaf" + std::to_string(i)));
  }
  crypto::MerkleTree tree(leaves);
  ASSERT_TRUE(fs.Write("t.tree", TreeFile::Serialize(tree)).ok());
  auto file = TreeFile::Open(fs, "t.tree");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file.value().leaf_count(), 37u);
  for (uint64_t i = 0; i < 37; ++i) {
    auto path = file.value().Siblings(i);
    ASSERT_TRUE(path.ok());
    EXPECT_EQ(path.value().siblings, tree.Path(i).siblings) << i;
  }
}

TEST(TreeFileTest, RangeProofMatchesInMemoryTree) {
  auto enclave = MakeEnclave();
  storage::SimFs fs(enclave);
  std::vector<crypto::Hash256> leaves;
  for (int i = 0; i < 64; ++i) {
    leaves.push_back(crypto::Sha256::Digest("leaf" + std::to_string(i)));
  }
  crypto::MerkleTree tree(leaves);
  ASSERT_TRUE(fs.Write("t.tree", TreeFile::Serialize(tree)).ok());
  auto file = TreeFile::Open(fs, "t.tree");
  ASSERT_TRUE(file.ok());
  for (uint64_t lo = 0; lo < 64; lo += 13) {
    for (uint64_t hi = lo; hi < 64; hi += 7) {
      auto proof = file.value().RangeProof(lo, hi);
      ASSERT_TRUE(proof.ok());
      EXPECT_EQ(proof.value().hashes, tree.RangeProof(lo, hi).hashes);
    }
  }
}

TEST(TreeFileTest, OpenRejectsTruncatedFile) {
  auto enclave = MakeEnclave();
  storage::SimFs fs(enclave);
  ASSERT_TRUE(fs.Write("t.tree", "shrt").ok());
  EXPECT_FALSE(TreeFile::Open(fs, "t.tree").ok());
  EXPECT_FALSE(TreeFile::Open(fs, "missing.tree").ok());
}

TEST(WalDigestTest, OrderAndContentSensitive) {
  WalDigest a, b;
  a.Append("one");
  a.Append("two");
  b.Append("two");
  b.Append("one");
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_EQ(a.count(), 2u);

  WalDigest c;
  c.Append("one");
  c.Append("two");
  EXPECT_EQ(a.digest(), c.digest());
}

TEST(WalDigestTest, RestoreContinuesChain) {
  WalDigest a;
  a.Append("one");
  WalDigest b;
  b.Restore(a.digest(), a.count());
  a.Append("two");
  b.Append("two");
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(b.count(), 2u);
}

TEST(ListenerTest, AcceptsMatchingInputRejectsMismatched) {
  auto enclave = MakeEnclave();
  AuthCompactionListener listener(enclave.get(), false);
  const auto records = SampleRun();
  auto seal = listener.OnOutput(records);
  ASSERT_TRUE(seal.ok());

  lsm::LevelMeta meta;
  meta.root = seal.value().root;
  meta.leaf_count = seal.value().leaf_count;

  std::vector<lsm::RawEntry> run;
  for (const auto& r : records) {
    lsm::RawEntry e;
    e.record = r;
    e.core = r.EncodeCore();
    run.push_back(e);
  }
  EXPECT_TRUE(listener.OnInputRun(2, run, &meta).ok());

  run[3].core[1] ^= 0x01;  // tamper one stored byte
  EXPECT_TRUE(listener.OnInputRun(2, run, &meta).IsAuthFailure());
  // Memtable runs (depth -1) are trusted regardless.
  EXPECT_TRUE(listener.OnInputRun(-1, run, nullptr).ok());
}

TEST(VerifierTest, EmptyLevelNeedsNoWitnesses) {
  auto enclave = MakeEnclave();
  Verifier verifier(enclave.get());
  AssembledGet proof;
  AssembledLevel level;
  level.level_pos = 0;
  proof.levels.push_back(level);
  std::vector<lsm::LevelMeta> levels(1);  // empty level: zero root
  auto result = verifier.VerifyGet("k", UINT64_MAX, proof, levels);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().has_value());
}

TEST(VerifierTest, WitnessAgainstEmptyLevelRejected) {
  auto enclave = MakeEnclave();
  Verifier verifier(enclave.get());
  AssembledGet proof;
  AssembledLevel level;
  level.level_pos = 0;
  AssembledEntry fake;
  fake.entry.record = MakeRecord("a", "v", 1);
  fake.entry.core = fake.entry.record.EncodeCore();
  level.pred = fake;
  proof.levels.push_back(level);
  std::vector<lsm::LevelMeta> levels(1);
  EXPECT_TRUE(verifier.VerifyGet("k", UINT64_MAX, proof, levels)
                  .status()
                  .IsAuthFailure());
}

TEST(VerifierTest, MissProofMustCoverAllLevels) {
  auto enclave = MakeEnclave();
  Verifier verifier(enclave.get());
  AssembledGet proof;
  AssembledLevel level;
  level.level_pos = 0;
  proof.levels.push_back(level);  // covers level 0 only
  std::vector<lsm::LevelMeta> levels(2);  // but there are two levels
  EXPECT_TRUE(verifier.VerifyGet("k", UINT64_MAX, proof, levels)
                  .status()
                  .IsAuthFailure());
}

TEST(VerifierTest, MemtableHitWithTrailingLevelsRejected) {
  auto enclave = MakeEnclave();
  Verifier verifier(enclave.get());
  AssembledGet proof;
  proof.memtable_hit = MakeRecord("k", "v", 9);
  AssembledLevel level;
  level.level_pos = 0;
  proof.levels.push_back(level);
  std::vector<lsm::LevelMeta> levels(1);
  EXPECT_TRUE(verifier.VerifyGet("k", UINT64_MAX, proof, levels)
                  .status()
                  .IsAuthFailure());
}

}  // namespace
}  // namespace elsm::auth
