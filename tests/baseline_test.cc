// Baseline tests: Eleos-like in-enclave store (ops, slack behaviour,
// capacity cap) and the update-in-place Merkle B+-tree ADS (ops, proofs,
// tamper detection, write-amplification shape).
#include <gtest/gtest.h>

#include <set>

#include "baseline/eleos_store.h"
#include "baseline/merkle_btree.h"
#include "common/random.h"

namespace elsm::baseline {
namespace {

std::shared_ptr<sgx::Enclave> MakeEnclave(uint64_t epc_bytes = 2 << 20) {
  sgx::CostModel m;
  m.epc_bytes = epc_bytes;
  return std::make_shared<sgx::Enclave>(m, true);
}

std::string Key(int i) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

TEST(EleosTest, PutGetRoundTrip) {
  EleosStore store(EleosOptions{}, MakeEnclave());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(store.Put(Key(i), "v" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 500; ++i) {
    auto got = store.Get(Key(i));
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got.value().has_value()) << Key(i);
    EXPECT_EQ(*got.value(), "v" + std::to_string(i));
  }
  EXPECT_FALSE(store.Get("missing").value().has_value());
}

TEST(EleosTest, RandomInsertionOrderStaysSorted) {
  EleosStore store(EleosOptions{}, MakeEnclave());
  Rng rng(3);
  std::set<int> inserted;
  for (int n = 0; n < 400; ++n) {
    const int i = int(rng.Uniform(10000));
    inserted.insert(i);
    ASSERT_TRUE(store.Put(Key(i), "v" + std::to_string(i)).ok());
  }
  EXPECT_EQ(store.size(), inserted.size());
  for (int i : inserted) {
    auto got = store.Get(Key(i));
    ASSERT_TRUE(got.value().has_value()) << Key(i);
  }
}

TEST(EleosTest, OverwriteInPlace) {
  EleosStore store(EleosOptions{}, MakeEnclave());
  ASSERT_TRUE(store.Put("k", "v1").ok());
  const size_t size_before = store.size();
  ASSERT_TRUE(store.Put("k", "v2").ok());
  EXPECT_EQ(store.size(), size_before);
  EXPECT_EQ(*store.Get("k").value(), "v2");
}

TEST(EleosTest, ScanReturnsRangeInOrder) {
  EleosStore store(EleosOptions{}, MakeEnclave());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.Put(Key(i), "v").ok());
  }
  auto scan = store.Scan(Key(10), Key(19));
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.value().size(), 10u);
  EXPECT_EQ(scan.value().front().first, Key(10));
  EXPECT_EQ(scan.value().back().first, Key(19));
}

TEST(EleosTest, CapacityCapEnforced) {
  EleosOptions o;
  o.capacity_bytes = 4 << 10;  // tiny cap for the test
  EleosStore store(o, MakeEnclave());
  Status last = Status::Ok();
  for (int i = 0; i < 10000 && last.ok(); ++i) {
    last = store.Put(Key(i), std::string(100, 'v'));
  }
  EXPECT_TRUE(last.IsCapacityExceeded());
}

TEST(EleosTest, LargeStoreThrashesEpc) {
  // Working set >> EPC: uniform reads must incur paging (the Fig. 6a Eleos
  // growth), unlike a store that fits.
  auto small_enclave = MakeEnclave(1 << 20);
  EleosOptions o;
  o.capacity_bytes = 32 << 20;
  EleosStore store(o, small_enclave);
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(store.Put(Key(int(rng.Uniform(1000000))),
                          std::string(100, 'v'))
                    .ok());
  }
  const uint64_t faults_before = small_enclave->counters().epc_faults;
  for (int i = 0; i < 500; ++i) {
    (void)store.Get(Key(int(rng.Uniform(1000000))));
  }
  EXPECT_GT(small_enclave->counters().epc_faults, faults_before + 500);
}

TEST(MerkleBTreeTest, PutGetRoundTrip) {
  MerkleBTree tree(MerkleBTreeOptions{}, MakeEnclave());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree.Put(Key(i), "v" + std::to_string(i)).ok());
  }
  EXPECT_EQ(tree.size(), 2000u);
  for (int i = 0; i < 2000; i += 37) {
    auto got = tree.Get(Key(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value().has_value());
    EXPECT_EQ(*got.value(), "v" + std::to_string(i));
  }
  EXPECT_FALSE(tree.Get("absent").value().has_value());
}

TEST(MerkleBTreeTest, RootHashChangesOnEveryWrite) {
  MerkleBTree tree(MerkleBTreeOptions{}, MakeEnclave());
  ASSERT_TRUE(tree.Put("a", "1").ok());
  const crypto::Hash256 r1 = tree.root_hash();
  ASSERT_TRUE(tree.Put("b", "2").ok());
  const crypto::Hash256 r2 = tree.root_hash();
  EXPECT_NE(r1, r2);
  ASSERT_TRUE(tree.Put("a", "3").ok());  // overwrite also re-digests
  EXPECT_NE(tree.root_hash(), r2);
}

TEST(MerkleBTreeTest, TamperedLeafDetectedOnGet) {
  MerkleBTree tree(MerkleBTreeOptions{}, MakeEnclave());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Put(Key(i), "genuine").ok());
  }
  ASSERT_TRUE(tree.TamperLeafValue(Key(123), "forged"));
  const auto got = tree.Get(Key(123));
  EXPECT_TRUE(got.status().IsAuthFailure()) << got.status().ToString();
  // Untampered keys in other subtrees still verify.
  EXPECT_TRUE(tree.Get(Key(490)).ok());
}

TEST(MerkleBTreeTest, SplitsKeepAllKeysReachable) {
  MerkleBTreeOptions o;
  o.fanout = 4;  // force deep trees
  MerkleBTree tree(o, MakeEnclave());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree.Put(Key((i * 7919) % 1000), "v").ok());
  }
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(tree.Get(Key((i * 7919) % 1000)).value().has_value());
  }
  EXPECT_GT(tree.node_count(), 50u);
}

TEST(MerkleBTreeTest, UpdateCostGrowsWithDepth) {
  // The §3.4 argument: update-in-place digests pay O(depth) random IO +
  // re-hash per write; cost per op grows with the dataset.
  auto measure = [&](int n) {
    auto enclave = MakeEnclave();
    MerkleBTreeOptions o;
    o.fanout = 8;
    MerkleBTree tree(o, enclave);
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(tree.Put(Key(i), std::string(100, 'v')).ok());
    }
    const uint64_t before = enclave->now_ns();
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(tree.Put(Key(i * (n / 100 + 1) % n), "update").ok());
    }
    return (enclave->now_ns() - before) / 100;
  };
  EXPECT_GT(measure(8000), measure(200));
}

}  // namespace
}  // namespace elsm::baseline
