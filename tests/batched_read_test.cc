// Batched modern-I/O read path tests: the Fs::MultiRead contract across
// every backend (SimFs / PosixFs / FaultFs, io_uring and pread execution),
// ReadBuffer::GetBatch admission semantics, engine MultiGet / scan
// readahead equivalence with the sequential path, per-key fail-closed
// isolation under tampering and transient faults, and a concurrent
// batched-readers-vs-writers-vs-compaction stress (TSan suite).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "crypto/sha256.h"
#include "elsm/elsm_db.h"
#include "elsm/sharded_db.h"
#include "storage/fault_fs.h"
#include "storage/posix_fs.h"
#include "storage/read_buffer.h"
#include "storage/simfs.h"
#include "temp_dir.h"

namespace elsm {
namespace {

using storage::FaultFs;
using storage::PosixFs;
using storage::ReadRequest;
using storage::SimFs;

std::shared_ptr<sgx::Enclave> MakeEnclave() {
  return std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
}

std::string Key(int i) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

std::string Value(int i, int version = 0) {
  return "value-" + std::to_string(i) + "-v" + std::to_string(version);
}

Options BufferOptions(Mode mode = Mode::kP2) {
  Options o;
  o.mode = mode;
  o.memtable_bytes = 4 << 10;
  o.level1_bytes = 16 << 10;
  o.block_bytes = 1024;
  o.file_bytes = 8 << 10;
  o.read_path = lsm::ReadPathKind::kBuffer;
  o.read_buffer_bytes = 4 << 20;
  return o;
}

// --- Fs::MultiRead contract ------------------------------------------------

// Every backend must answer a MultiRead batch byte-identically to the same
// requests issued as sequential Reads, with per-sub-read error isolation:
// a bad request (missing file, offset past EOF) fails only its own slot.
void CheckMultiReadContract(storage::Fs& fs) {
  ASSERT_TRUE(fs.Write("a", "aaaaaaaaaa").ok());      // 10 bytes
  ASSERT_TRUE(fs.Write("b", "0123456789xyz").ok());   // 13 bytes
  std::vector<ReadRequest> reqs = {
      {"a", 0, 10},          // exact
      {"b", 4, 6},           // interior
      {"a", 8, 100},         // clamped to EOF -> "aa"
      {"missing", 0, 4},     // no such file
      {"b", 50, 1},          // offset past EOF
      {"b", 0, 13},          // whole file
      {"a", 0, 10},          // duplicate of slot 0
  };
  auto got = fs.MultiRead(reqs);
  ASSERT_EQ(got.size(), reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    auto seq = fs.Read(reqs[i].name, reqs[i].offset, reqs[i].len);
    ASSERT_EQ(got[i].ok(), seq.ok()) << "slot " << i;
    if (seq.ok()) {
      EXPECT_EQ(got[i].value(), seq.value()) << "slot " << i;
    }
  }
  EXPECT_TRUE(got[0].ok());
  EXPECT_EQ(got[1].value(), "456789");
  EXPECT_EQ(got[2].value(), "aa");
  EXPECT_FALSE(got[3].ok());
  EXPECT_FALSE(got[4].ok());
  EXPECT_EQ(got[5].value(), "0123456789xyz");
  EXPECT_EQ(got[6].value(), got[0].value());
}

TEST(MultiReadContractTest, SimFs) {
  SimFs fs(MakeEnclave());
  CheckMultiReadContract(fs);
}

TEST(MultiReadContractTest, PosixFsAuto) {
  test_util::TempDir dir;
  ASSERT_TRUE(dir.ok());
  storage::SetPosixMultiReadPath(storage::MultiReadPath::kAuto);
  PosixFs fs(MakeEnclave(), dir.path());
  CheckMultiReadContract(fs);
}

TEST(MultiReadContractTest, PosixFsPreadFallback) {
  test_util::TempDir dir;
  ASSERT_TRUE(dir.ok());
  storage::SetPosixMultiReadPath(storage::MultiReadPath::kPread);
  PosixFs fs(MakeEnclave(), dir.path());
  CheckMultiReadContract(fs);
  storage::SetPosixMultiReadPath(storage::MultiReadPath::kAuto);
}

TEST(MultiReadContractTest, PosixFsPageCacheBypass) {
  // PageCachePolicy::kBypass is purely advisory (fadvise hints around the
  // same reads): every result and charge must match the kernel policy.
  test_util::TempDir dir;
  ASSERT_TRUE(dir.ok());
  storage::SetPosixPageCachePolicy(storage::PageCachePolicy::kBypass);
  PosixFs fs(MakeEnclave(), dir.path());
  CheckMultiReadContract(fs);
  storage::SetPosixPageCachePolicy(storage::PageCachePolicy::kKernel);
}

TEST(MultiReadContractTest, FaultFsPassthrough) {
  FaultFs fs(MakeEnclave());
  CheckMultiReadContract(fs);
}

TEST(MultiReadContractTest, UringAndPreadAgreeByteForByte) {
  // Same batch through both execution paths must produce identical results
  // slot for slot (on kernels without io_uring, kAuto silently runs the
  // fallback and this degenerates to pread-vs-pread — still a valid check).
  test_util::TempDir dir;
  ASSERT_TRUE(dir.ok());
  PosixFs fs(MakeEnclave(), dir.path());
  std::string blob;
  for (int i = 0; i < 4096; ++i) blob.push_back(char('a' + i % 26));
  ASSERT_TRUE(fs.Write("f", blob).ok());
  std::vector<ReadRequest> reqs;
  for (uint64_t off = 0; off < 4096; off += 512) {
    reqs.push_back({"f", off, 512});
  }
  reqs.push_back({"f", 4000, 500});  // tail clamp
  storage::SetPosixMultiReadPath(storage::MultiReadPath::kAuto);
  auto fast = fs.MultiRead(reqs);
  storage::SetPosixMultiReadPath(storage::MultiReadPath::kPread);
  auto slow = fs.MultiRead(reqs);
  storage::SetPosixMultiReadPath(storage::MultiReadPath::kAuto);
  ASSERT_EQ(fast.size(), slow.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    ASSERT_TRUE(fast[i].ok());
    ASSERT_TRUE(slow[i].ok());
    EXPECT_EQ(fast[i].value(), slow[i].value()) << "slot " << i;
  }
}

TEST(MultiReadContractTest, SimFsChargesMatchSequential) {
  // The deterministic backend must charge the simulated clock identically
  // for a batch and for the same reads issued one by one.
  auto e1 = MakeEnclave();
  auto e2 = MakeEnclave();
  SimFs batched(e1);
  SimFs sequential(e2);
  for (auto* fs : {&batched, &sequential}) {
    ASSERT_TRUE(fs->Write("f", std::string(8192, 'x')).ok());
  }
  std::vector<ReadRequest> reqs = {{"f", 0, 1024}, {"f", 1024, 1024},
                                   {"f", 4096, 4096}};
  const uint64_t b0 = e1->now_ns();
  auto got = batched.MultiRead(reqs);
  const uint64_t batch_cost = e1->now_ns() - b0;
  const uint64_t s0 = e2->now_ns();
  for (const auto& r : reqs) {
    ASSERT_TRUE(sequential.Read(r.name, r.offset, r.len).ok());
  }
  const uint64_t seq_cost = e2->now_ns() - s0;
  for (const auto& r : got) ASSERT_TRUE(r.ok());
  EXPECT_EQ(batch_cost, seq_cost);
}

TEST(MultiReadContractTest, FaultFsInjectsPerSubRead) {
  // A one-shot transient fault fails exactly one sub-read of the batch;
  // the other requests in the same MultiRead still succeed.
  FaultFs fs(MakeEnclave());
  ASSERT_TRUE(fs.Write("f", std::string(4096, 'x')).ok());
  fs.ScheduleTransient(2, FaultFs::TransientKind::kEIO);
  std::vector<ReadRequest> reqs = {{"f", 0, 64}, {"f", 64, 64},
                                   {"f", 128, 64}};
  auto got = fs.MultiRead(reqs);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_TRUE(got[0].ok());
  EXPECT_FALSE(got[1].ok());
  EXPECT_TRUE(got[1].status().IsUnavailable());
  EXPECT_TRUE(got[2].ok());
  EXPECT_EQ(fs.injected_faults(), 1u);
  // The fault auto-disarmed: a repeat batch is clean.
  for (auto& r : fs.MultiRead(reqs)) EXPECT_TRUE(r.ok());
}

TEST(MultiReadContractTest, ReadAllIsRaceFreeOneShot) {
  // ReadAll must read to EOF in a single call instead of FileSize-then-Read
  // (the old two-step raced concurrent appends). Byte-equality with the
  // current contents is the observable contract.
  SimFs fs(MakeEnclave());
  ASSERT_TRUE(fs.Write("f", "hello world").ok());
  auto got = fs.ReadAll("f");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "hello world");
  ASSERT_TRUE(fs.Append("f", "!").ok());
  EXPECT_EQ(fs.ReadAll("f").value(), "hello world!");
}

// --- ReadBuffer::GetBatch --------------------------------------------------

TEST(GetBatchTest, LeadersLoadOnceAndDuplicatesCollapse) {
  auto enclave = MakeEnclave();
  storage::ReadBuffer buffer(enclave, 1 << 20,
                             storage::BufferPlacement::kOutsideEnclave, 4);
  const std::string block_a(512, 'a');
  const std::string block_b(512, 'b');
  const crypto::Hash256 da = crypto::Sha256::Digest(block_a);
  const crypto::Hash256 db = crypto::Sha256::Digest(block_b);
  std::atomic<int> batch_calls{0};
  std::atomic<int> single_calls{0};
  std::vector<storage::ReadBuffer::BatchRequest> reqs = {
      {"f", 0, da}, {"f", 512, db}, {"f", 0, da},  // duplicate of slot 0
  };
  auto batch_loader = [&](const std::vector<size_t>& leaders,
                          std::vector<Result<std::string>>& out) {
    ++batch_calls;
    for (size_t li : leaders) {
      out[li] = li == 1 ? block_b : block_a;
    }
  };
  auto single_loader = [&](size_t i) -> Result<std::string> {
    ++single_calls;
    return i == 1 ? block_b : block_a;
  };
  auto got = buffer.GetBatch(reqs, batch_loader, single_loader);
  ASSERT_EQ(got.size(), 3u);
  for (auto& r : got) ASSERT_TRUE(r.ok());
  EXPECT_EQ(*got[0].value(), block_a);
  EXPECT_EQ(*got[1].value(), block_b);
  EXPECT_EQ(*got[2].value(), block_a);
  // Two distinct keys -> one batch_loader call covering both leaders; the
  // intra-batch duplicate joined slot 0's flight instead of loading again.
  EXPECT_EQ(batch_calls.load(), 1);
  EXPECT_EQ(single_calls.load(), 0);
  EXPECT_EQ(buffer.stats().misses, 2u);

  // Warm repeat: all hits, no loader runs.
  auto warm = buffer.GetBatch(reqs, batch_loader, single_loader);
  for (auto& r : warm) ASSERT_TRUE(r.ok());
  EXPECT_EQ(batch_calls.load(), 1);
  EXPECT_EQ(buffer.stats().hits, 3u + 1u);  // 3 warm + 1 intra-batch waiter
}

TEST(GetBatchTest, PerRequestVerifyFailsClosed) {
  // One tampered block in the batch fails only its own slot (AuthFailure,
  // nothing cached); the good block is admitted normally.
  auto enclave = MakeEnclave();
  storage::ReadBuffer buffer(enclave, 1 << 20,
                             storage::BufferPlacement::kOutsideEnclave, 4);
  const std::string good(512, 'g');
  const crypto::Hash256 dg = crypto::Sha256::Digest(good);
  const crypto::Hash256 dt = crypto::Sha256::Digest(std::string(512, 't'));
  std::vector<storage::ReadBuffer::BatchRequest> reqs = {
      {"f", 0, dg}, {"f", 512, dt},
  };
  auto batch_loader = [&](const std::vector<size_t>& leaders,
                          std::vector<Result<std::string>>& out) {
    for (size_t li : leaders) {
      // The host returns swapped bytes for the second block.
      out[li] = li == 0 ? good : std::string(512, 'Z');
    }
  };
  auto single_loader = [&](size_t) -> Result<std::string> {
    return Status::IOError("unexpected");
  };
  auto got = buffer.GetBatch(reqs, batch_loader, single_loader);
  ASSERT_TRUE(got[0].ok());
  ASSERT_FALSE(got[1].ok());
  EXPECT_TRUE(got[1].status().IsAuthFailure());
  // Only the verified block is resident.
  EXPECT_EQ(buffer.bytes_used(), 512u);
}

// --- engine MultiGet -------------------------------------------------------

TEST(BatchedMultiGetTest, MatchesSequentialGets) {
  for (storage::BackendKind backend :
       {storage::BackendKind::kSim, storage::BackendKind::kPosix}) {
    test_util::TempDir dir;
    ASSERT_TRUE(dir.ok());
    Options o = BufferOptions();
    o.backend = backend;
    o.backend_dir = dir.path();
    auto db = ElsmDb::Create(o);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), Value(i)).ok());
    }
    ASSERT_TRUE(db.value()->CompactAll().ok());
    // Mix of present keys (cold blocks), absent keys, and duplicates.
    std::vector<std::string> keys;
    for (int i = 0; i < 400; i += 7) keys.push_back(Key(i));
    keys.push_back("nope-x");
    keys.push_back(Key(7));  // duplicate
    db.value()->ClearReadCache();
    auto batched = db.value()->MultiGet(keys);
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    ASSERT_EQ(batched.value().size(), keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      auto seq = db.value()->Get(keys[i]);
      ASSERT_TRUE(seq.ok());
      EXPECT_EQ(batched.value()[i], seq.value()) << keys[i];
    }
    // The cold pass actually exercised the batch machinery.
    const auto& es = db.value()->engine().stats();
    EXPECT_GT(es.multiget_batches.load(), 0u);
    EXPECT_GT(es.multiget_batched_blocks.load(), 0u);
  }
}

TEST(BatchedMultiGetTest, BatchingOffIsEquivalent) {
  Options on = BufferOptions();
  Options off = BufferOptions();
  off.multiget_batching = false;
  auto db_on = ElsmDb::Create(on);
  auto db_off = ElsmDb::Create(off);
  ASSERT_TRUE(db_on.ok());
  ASSERT_TRUE(db_off.ok());
  std::vector<std::string> keys;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(db_on.value()->Put(Key(i), Value(i)).ok());
    ASSERT_TRUE(db_off.value()->Put(Key(i), Value(i)).ok());
    if (i % 5 == 0) keys.push_back(Key(i));
  }
  ASSERT_TRUE(db_on.value()->CompactAll().ok());
  ASSERT_TRUE(db_off.value()->CompactAll().ok());
  auto a = db_on.value()->MultiGet(keys);
  auto b = db_off.value()->MultiGet(keys);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(db_off.value()->engine().stats().multiget_batches.load(), 0u);
}

TEST(BatchedMultiGetTest, TamperedBlockFailsOnlyItsKeys) {
  // P2 verified MultiGet over SimFs: corrupt one on-disk block, then batch-
  // read keys from many blocks. Only the keys resolving through the
  // tampered block fail (fail-closed), every other key still verifies.
  Options o = BufferOptions();
  auto enclave = MakeEnclave();
  auto fs = std::make_shared<SimFs>(enclave);
  auto platform = std::make_shared<TrustedPlatform>();
  auto db = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(db.value()->CompactAll().ok());
  // Flip bytes in the middle of one data block of one SSTable.
  const auto& levels = db.value()->engine().levels();
  ASSERT_FALSE(levels.empty());
  ASSERT_FALSE(levels.back().files.empty());
  const auto& victim_file = levels.back().files.front();
  ASSERT_GT(victim_file.blocks.size(), 1u);
  const auto& victim_block = victim_file.blocks[0];
  auto blob = fs->MutableBlob(victim_file.name);
  ASSERT_NE(blob, nullptr);
  (*blob)[victim_block.offset + victim_block.size / 2] ^= 0x5a;

  std::vector<std::string> keys;
  for (int i = 0; i < 400; i += 3) keys.push_back(Key(i));
  db.value()->ClearReadCache();
  auto results = db.value()->MultiGetVerified(keys);
  ASSERT_EQ(results.size(), keys.size());
  size_t failed = 0;
  size_t verified = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (results[i].ok()) {
      EXPECT_TRUE(results[i].value().verified);
      ASSERT_TRUE(results[i].value().record.has_value());
      ++verified;
    } else {
      EXPECT_TRUE(results[i].status().IsAuthFailure())
          << results[i].status().ToString();
      ++failed;
    }
  }
  EXPECT_GT(failed, 0u);    // the tampered block was detected...
  EXPECT_GT(verified, 0u);  // ...without taking down unrelated keys
  // The aggregate value API fails closed on any per-key failure.
  EXPECT_FALSE(db.value()->MultiGet(keys).ok());
}

TEST(BatchedMultiGetTest, TransientFaultIsolatesAndRetires) {
  // A one-shot EIO during the batched load fails only the keys needing the
  // faulted sub-read; the very next MultiGet (fault disarmed) is clean —
  // the stored error was not cached.
  Options o = BufferOptions();
  o.io_retry.max_attempts = 1;  // surface the injected fault, no retries
  auto enclave = MakeEnclave();
  auto fault = std::make_shared<FaultFs>(std::make_shared<SimFs>(enclave));
  auto platform = std::make_shared<TrustedPlatform>();
  auto db = ElsmDb::Open(o, fault, platform);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(db.value()->CompactAll().ok());
  std::vector<std::string> keys;
  for (int i = 0; i < 400; i += 3) keys.push_back(Key(i));

  db.value()->ClearReadCache();
  fault->ScheduleTransient(3, FaultFs::TransientKind::kEIO);
  auto results = db.value()->MultiGetVerified(keys);
  size_t failed = 0;
  for (auto& r : results) {
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
      ++failed;
    }
  }
  EXPECT_GT(failed, 0u);
  EXPECT_LT(failed, keys.size());  // isolation: most keys unaffected
  EXPECT_FALSE(db.value()->degraded());  // read faults never degrade writes

  db.value()->ClearReadCache();
  for (auto& r : db.value()->MultiGetVerified(keys)) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
}

TEST(BatchedMultiGetTest, ShardedMultiGetRidesBatchedPath) {
  Options o = BufferOptions();
  o.fanout_threads = 4;
  auto db = ShardedDb::Create(o, 4);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  std::vector<std::string> keys;
  std::map<std::string, std::string> expect;
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), Value(i)).ok());
    if (i % 4 == 0) {
      keys.push_back(Key(i));
      expect[Key(i)] = Value(i);
    }
  }
  ASSERT_TRUE(db.value()->CompactAll().ok());
  db.value()->ClearReadCache();
  auto got = db.value()->MultiGet(keys);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(got.value()[i].has_value()) << keys[i];
    EXPECT_EQ(*got.value()[i], expect[keys[i]]);
  }
  uint64_t batches = 0;
  for (uint32_t s = 0; s < db.value()->num_shards(); ++s) {
    batches += db.value()->shard(s).engine().stats().multiget_batches.load();
  }
  EXPECT_GT(batches, 0u);
}

// --- scan readahead --------------------------------------------------------

TEST(ScanReadaheadTest, ResultsMatchNoReadahead) {
  Options with = BufferOptions();
  with.scan_readahead_blocks = 8;
  Options without = BufferOptions();
  without.scan_readahead_blocks = 0;
  auto db_ra = ElsmDb::Create(with);
  auto db_seq = ElsmDb::Create(without);
  ASSERT_TRUE(db_ra.ok());
  ASSERT_TRUE(db_seq.ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(db_ra.value()->Put(Key(i), Value(i)).ok());
    ASSERT_TRUE(db_seq.value()->Put(Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(db_ra.value()->CompactAll().ok());
  ASSERT_TRUE(db_seq.value()->CompactAll().ok());
  for (auto [lo, hi] : std::vector<std::pair<int, int>>{
           {0, 499}, {13, 130}, {250, 260}, {490, 600}}) {
    db_ra.value()->ClearReadCache();
    auto a = db_ra.value()->Scan(Key(lo), Key(hi));
    auto b = db_seq.value()->Scan(Key(lo), Key(hi));
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value().size(), b.value().size());
    for (size_t i = 0; i < a.value().size(); ++i) {
      EXPECT_EQ(a.value()[i].key, b.value()[i].key);
      EXPECT_EQ(a.value()[i].value, b.value()[i].value);
    }
  }
  const auto& es = db_ra.value()->engine().stats();
  EXPECT_GT(es.readahead_blocks.load(), 0u);
  EXPECT_GT(es.readahead_hits.load(), 0u);
  EXPECT_EQ(db_seq.value()->engine().stats().readahead_blocks.load(), 0u);
}

TEST(ScanReadaheadTest, ChargesMatchSequentialOnSimFs) {
  // The readahead window only covers blocks the walk provably visits, so
  // the simulated clock must price a cold scan identically with and
  // without readahead.
  auto run_scan = [](uint64_t readahead_blocks) -> uint64_t {
    Options o = BufferOptions();
    o.scan_readahead_blocks = readahead_blocks;
    auto db = ElsmDb::Create(o);
    EXPECT_TRUE(db.ok());
    for (int i = 0; i < 500; ++i) {
      EXPECT_TRUE(db.value()->Put(Key(i), Value(i)).ok());
    }
    EXPECT_TRUE(db.value()->CompactAll().ok());
    db.value()->ClearReadCache();
    const uint64_t t0 = db.value()->enclave().now_ns();
    auto got = db.value()->Scan(Key(50), Key(450));
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got.value().size(), 401u);
    return db.value()->enclave().now_ns() - t0;
  };
  EXPECT_EQ(run_scan(8), run_scan(0));
}

// --- compaction input readahead --------------------------------------------

TEST(CompactionReadaheadTest, MergedDataIdentical) {
  Options batched = BufferOptions();
  batched.compaction_readahead_files = 2;
  Options plain = BufferOptions();
  auto db_b = ElsmDb::Create(batched);
  auto db_p = ElsmDb::Create(plain);
  ASSERT_TRUE(db_b.ok());
  ASSERT_TRUE(db_p.ok());
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(db_b.value()->Put(Key(i), Value(i, round)).ok());
      ASSERT_TRUE(db_p.value()->Put(Key(i), Value(i, round)).ok());
    }
    ASSERT_TRUE(db_b.value()->Flush().ok());
    ASSERT_TRUE(db_p.value()->Flush().ok());
  }
  ASSERT_TRUE(db_b.value()->CompactAll().ok());
  ASSERT_TRUE(db_p.value()->CompactAll().ok());
  auto a = db_b.value()->Scan(Key(0), Key(299));
  auto b = db_p.value()->Scan(Key(0), Key(299));
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), 300u);
  ASSERT_EQ(b.value().size(), 300u);
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].key, b.value()[i].key);
    EXPECT_EQ(a.value()[i].value, b.value()[i].value);
  }
}

// --- concurrency (TSan suite) ----------------------------------------------

TEST(BatchedReadConcurrencyTest, MultiGetVsWritersAndCompaction) {
  Options o = BufferOptions();
  o.backend = storage::BackendKind::kPosix;
  test_util::TempDir dir;
  ASSERT_TRUE(dir.ok());
  o.backend_dir = dir.path();
  auto db = ElsmDb::Create(o);
  ASSERT_TRUE(db.ok());
  constexpr int kKeys = 300;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(db.value()->CompactAll().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> batch_errors{0};
  std::vector<std::thread> threads;
  // Batched readers: every result must be either the seed value or some
  // writer's later version — never torn, never unverified.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::string> keys;
      for (int i = t; i < kKeys; i += 3) keys.push_back(Key(i));
      while (!stop.load(std::memory_order_relaxed)) {
        auto got = db.value()->MultiGetVerified(keys);
        for (size_t i = 0; i < got.size(); ++i) {
          if (!got[i].ok()) {
            ++batch_errors;
            continue;
          }
          if (!got[i].value().record.has_value()) {
            ++batch_errors;
            continue;
          }
          const std::string& v = got[i].value().record->value;
          if (v.rfind("value-", 0) != 0) ++batch_errors;
        }
      }
    });
  }
  // Scanning reader exercising the readahead path concurrently.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto got = db.value()->Scan(Key(0), Key(kKeys - 1));
      if (!got.ok() || got.value().size() < size_t(kKeys)) ++batch_errors;
    }
  });
  // Writers churning versions, plus periodic flushes driving compaction
  // (which rewrites files and invalidates cached blocks under the readers).
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      int version = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = t; i < kKeys; i += 2) {
          if (!db.value()->Put(Key(i), Value(i, version)).ok()) {
            ++batch_errors;
          }
        }
        ++version;
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)db.value()->Flush();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(batch_errors.load(), 0);
}

}  // namespace
}  // namespace elsm
