// Unit tests for the common substrate: varint/fixed coding (round trips and
// malformed-input rejection), Status/Result semantics, Rng determinism and
// histogram accounting.
#include <gtest/gtest.h>

#include <limits>

#include "common/coding.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"

namespace elsm {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  for (uint32_t v : {0u, 1u, 0xffu, 0x12345678u, 0xffffffffu}) {
    std::string buf;
    PutFixed32(&buf, v);
    EXPECT_EQ(buf.size(), 4u);
    std::string_view cursor(buf);
    uint32_t out = 0;
    ASSERT_TRUE(GetFixed32(&cursor, &out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(cursor.empty());
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  for (uint64_t v : {uint64_t(0), uint64_t(1), uint64_t(1) << 33,
                     std::numeric_limits<uint64_t>::max()}) {
    std::string buf;
    PutFixed64(&buf, v);
    std::string_view cursor(buf);
    uint64_t out = 0;
    ASSERT_TRUE(GetFixed64(&cursor, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, VarintRoundTripAtBoundaries) {
  const uint64_t values[] = {0,       127,        128,        16383,
                             16384,   (1u << 21) - 1, 1u << 21,  0xffffffffu,
                             uint64_t(1) << 32, uint64_t(1) << 63,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(int(buf.size()), VarintLength(v)) << v;
    std::string_view cursor(buf);
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&cursor, &out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(cursor.empty());
  }
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, uint64_t(1) << 40);
  std::string_view cursor(buf);
  uint32_t out = 0;
  EXPECT_FALSE(GetVarint32(&cursor, &out));
}

TEST(CodingTest, VarintRejectsTruncation) {
  std::string buf;
  PutVarint64(&buf, uint64_t(1) << 40);
  for (size_t cut = 1; cut < buf.size(); ++cut) {
    std::string_view cursor(buf.data(), cut);
    uint64_t out = 0;
    EXPECT_FALSE(GetVarint64(&cursor, &out)) << cut;
  }
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  PutLengthPrefixed(&buf, "");
  std::string_view cursor(buf);
  std::string_view a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&cursor, &a));
  ASSERT_TRUE(GetLengthPrefixed(&cursor, &b));
  ASSERT_TRUE(GetLengthPrefixed(&cursor, &c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_TRUE(c.empty());
  EXPECT_TRUE(cursor.empty());
}

TEST(CodingTest, LengthPrefixedRejectsShortPayload) {
  std::string buf;
  PutVarint32(&buf, 100);  // claims 100 bytes
  buf += "only-a-few";
  std::string_view cursor(buf);
  std::string_view out;
  EXPECT_FALSE(GetLengthPrefixed(&cursor, &out));
}

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status s = Status::AuthFailure("bad proof");
  EXPECT_TRUE(s.IsAuthFailure());
  EXPECT_EQ(s.ToString(), "AuthFailure: bad proof");
  EXPECT_EQ(Status::NotFound().ToString(), "NotFound");
  EXPECT_TRUE(Status::RollbackDetected("x").IsRollbackDetected());
}

TEST(StatusTest, ResultCarriesValueXorStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> bad(Status::IOError("disk"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_EQ(ok.value_or(-1), 42);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(7);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(4);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(double(hits) / 100000.0, 0.25, 0.01);
}

TEST(HistogramTest, MinMaxMeanCount) {
  Histogram h;
  h.Add(100);
  h.Add(200);
  h.Add(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.Min(), 100u);
  EXPECT_EQ(h.Max(), 300u);
  EXPECT_DOUBLE_EQ(h.Mean(), 200.0);
}

TEST(HistogramTest, MergeAndClear) {
  Histogram a, b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.Max(), 1000u);
  a.Clear();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.Mean(), 0.0);
}

TEST(HistogramTest, PercentileApproximatesDistribution) {
  Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) h.Add(i * 1000);  // 1us..1ms uniform
  const double p50 = h.Percentile(50);
  EXPECT_GT(p50, 300'000);
  EXPECT_LT(p50, 800'000);
  EXPECT_GE(h.Percentile(99), p50);
}

TEST(HistogramTest, SummaryFormatsFields) {
  Histogram h;
  h.Add(5000);
  const std::string s = h.Summary();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("mean="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
}

}  // namespace
}  // namespace elsm
