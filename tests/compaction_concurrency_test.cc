// Non-blocking reads under compaction (paper §5.5.2 + the eLSM claim that
// the untrusted host compacts while the enclave keeps serving): verified
// Gets/Scans run continuously while the engine's background thread ripples
// levels. Checks: no AuthFailure (no torn snapshot between lookup and
// verification), monotone results (a reader never observes time going
// backwards for a key), and streaming compaction memory bounded by blocks
// in flight rather than level size. Runs under the tsan preset.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "elsm/elsm_db.h"
#include "elsm/sharded_db.h"
#include "storage/simfs.h"

namespace elsm {
namespace {

Options BackgroundOptions() {
  Options o;
  o.mode = Mode::kP2;
  o.memtable_bytes = 16 << 10;
  o.level1_bytes = 64 << 10;
  o.background_compaction = true;
  return o;
}

std::string Key(int i) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

TEST(CompactionConcurrencyTest, VerifiedReadersDuringBackgroundCompaction) {
  auto db = ElsmDb::Create(BackgroundOptions());
  ASSERT_TRUE(db.ok());
  constexpr int kKeys = 200;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), "round0000").ok());
  }
  ASSERT_TRUE(db.value()->Flush().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::atomic<int> auth_failures{0};
  std::atomic<int> monotonicity_violations{0};

  // Writer: rounds of overwrites; the facade flushes when the memtable
  // fills and schedules ripple merges on the engine thread.
  std::thread writer([&] {
    char value[16];
    for (int round = 1; round <= 12 && !stop; ++round) {
      std::snprintf(value, sizeof(value), "round%04d", round);
      for (int i = 0; i < kKeys; ++i) {
        if (!db.value()->Put(Key(i), value).ok()) ++errors;
      }
    }
    stop = true;
  });

  // Verified point readers: every result must verify, and per key the
  // record timestamp must never move backwards across reads.
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      std::map<int, uint64_t> last_ts;
      uint64_t reads = 0;
      while (!stop.load() || reads < 200) {
        const int i = static_cast<int>((reads * 13 + uint64_t(t) * 7) % kKeys);
        auto got = db.value()->GetVerified(Key(i));
        if (!got.ok()) {
          ++errors;
          if (got.status().IsAuthFailure()) ++auth_failures;
        } else if (!got.value().record.has_value()) {
          ++errors;  // every key was seeded
        } else {
          const uint64_t ts = got.value().record->ts;
          auto it = last_ts.find(i);
          if (it != last_ts.end() && ts < it->second) {
            ++monotonicity_violations;
          }
          last_ts[i] = ts;
        }
        ++reads;
        if (reads > 200000) break;
      }
    });
  }

  // Completeness-verified scans race the same merges.
  std::thread scanner([&] {
    uint64_t scans = 0;
    while (!stop.load() || scans < 50) {
      const int base = static_cast<int>((scans * 17) % (kKeys - 20));
      auto got = db.value()->Scan(Key(base), Key(base + 10));
      if (!got.ok()) {
        ++errors;
        if (got.status().IsAuthFailure()) ++auth_failures;
      } else if (got.value().empty()) {
        ++errors;
      }
      ++scans;
      if (scans > 50000) break;
    }
  });

  writer.join();
  for (auto& t : readers) t.join();
  scanner.join();
  EXPECT_TRUE(db.value()->WaitForCompaction().ok());

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(auth_failures.load(), 0);
  EXPECT_EQ(monotonicity_violations.load(), 0);
  EXPECT_GT(db.value()->engine().stats().compactions.load(), 0u);

  // Quiesced end state: the last round won everywhere.
  for (int i = 0; i < kKeys; i += 17) {
    auto got = db.value()->GetVerified(Key(i));
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got.value().record.has_value());
    EXPECT_EQ(got.value().record->value, "round0012");
  }
}

TEST(CompactionConcurrencyTest, GetsCompleteWhileScheduledCompactionRuns) {
  Options o = BackgroundOptions();
  o.memtable_bytes = 8 << 10;
  o.level1_bytes = 16 << 10;  // small capacities -> deep pending ripple
  auto db = ElsmDb::Create(o);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db.value()->Flush().ok());

  // Kick a ripple pass and read straight through it: the reads must all
  // verify against their snapshots whether they land before, during or
  // after the version swaps.
  db.value()->ScheduleCompaction();
  for (int i = 0; i < 1500; i += 3) {
    auto got = db.value()->GetVerified(Key(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value().record.has_value()) << i;
    EXPECT_EQ(got.value().record->value, "v" + std::to_string(i));
  }
  EXPECT_TRUE(db.value()->WaitForCompaction().ok());
}

TEST(CompactionConcurrencyTest, BackgroundCompactionPersistsAcrossReopen) {
  // Build on one SimFs, compact in the background, close, reopen.
  Options o = BackgroundOptions();
  auto platform = std::make_shared<TrustedPlatform>();
  auto enclave = std::make_shared<sgx::Enclave>(o.cost_model, true);
  auto fs = std::make_shared<storage::SimFs>(enclave);
  auto db = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), "persist" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db.value()->Flush().ok());
  ASSERT_TRUE(db.value()->WaitForCompaction().ok());
  ASSERT_TRUE(db.value()->Close().ok());

  auto reopened = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(reopened.ok());
  for (int i = 0; i < 600; i += 31) {
    auto got = reopened.value()->GetVerified(Key(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value().record.has_value());
    EXPECT_EQ(got.value().record->value, "persist" + std::to_string(i));
  }
}

TEST(CompactionConcurrencyTest, ShardedConcurrentWritersWithBackgroundCompaction) {
  // Sharded variant (run under the tsan preset): writers on disjoint key
  // ranges + verified readers + cross-shard scans while every shard's own
  // background-compaction thread ripples. Shards must stay decoupled — a
  // shard's flush/merge never blocks another shard's writers — and every
  // read must verify against its shard's snapshot.
  constexpr uint32_t kShards = 4;
  constexpr int kKeys = 240;
  constexpr int kWriters = 3;
  auto db = ShardedDb::Create(BackgroundOptions(), kShards);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), "round0000").ok());
  }
  ASSERT_TRUE(db.value()->Flush().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::atomic<int> auth_failures{0};

  // Each writer owns a disjoint key range (the hash router spreads every
  // range across all shards), so the quiesced end state is deterministic.
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const int lo = w * (kKeys / kWriters);
      const int hi = lo + kKeys / kWriters;
      char value[16];
      for (int round = 1; round <= 10; ++round) {
        std::snprintf(value, sizeof(value), "round%04d", round);
        for (int i = lo; i < hi; ++i) {
          if (!db.value()->Put(Key(i), value).ok()) ++errors;
        }
      }
    });
  }

  std::thread reader([&] {
    uint64_t reads = 0;
    while (!stop.load() || reads < 300) {
      const int i = static_cast<int>((reads * 13) % kKeys);
      auto got = db.value()->GetVerified(Key(i));
      if (!got.ok()) {
        ++errors;
        if (got.status().IsAuthFailure()) ++auth_failures;
      } else if (!got.value().record.has_value()) {
        ++errors;  // every key was seeded
      }
      if (++reads > 100000) break;
    }
  });

  std::thread scanner([&] {
    uint64_t scans = 0;
    while (!stop.load() || scans < 30) {
      const int base = static_cast<int>((scans * 17) % (kKeys - 20));
      auto got = db.value()->Scan(Key(base), Key(base + 10));
      if (!got.ok()) {
        ++errors;
        if (got.status().IsAuthFailure()) ++auth_failures;
      } else if (got.value().empty()) {
        ++errors;
      }
      if (++scans > 20000) break;
    }
  });

  for (auto& t : writers) t.join();
  stop = true;
  reader.join();
  scanner.join();
  EXPECT_TRUE(db.value()->WaitForCompaction().ok());

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(auth_failures.load(), 0);
  uint64_t total_compactions = 0;
  for (uint32_t s = 0; s < kShards; ++s) {
    total_compactions +=
        db.value()->shard(s).engine().stats().compactions.load();
  }
  EXPECT_GT(total_compactions, 0u);

  // Quiesced end state: the final round won on every key, across shards.
  for (int i = 0; i < kKeys; i += 11) {
    auto got = db.value()->GetVerified(Key(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value().record.has_value());
    EXPECT_EQ(got.value().record->value, "round0010");
  }
}

TEST(CompactionConcurrencyTest, StreamingCompactionMemoryBoundedByBlocks) {
  Options o;
  o.mode = Mode::kP2;
  o.memtable_bytes = 32 << 10;
  o.level1_bytes = 64 << 10;
  o.block_bytes = 1 << 10;
  o.file_bytes = 8 << 10;
  auto db = ElsmDb::Create(o);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), std::string(100, 'x')).ok());
  }
  ASSERT_TRUE(db.value()->CompactAll().ok());

  const auto& levels = db.value()->engine().levels();
  uint64_t deepest_bytes = 0;
  for (const auto& level : levels) {
    deepest_bytes = std::max(deepest_bytes, level.bytes);
  }
  const uint64_t peak =
      db.value()->engine().stats().compaction_peak_resident_bytes.load();
  ASSERT_GT(peak, 0u);
  ASSERT_GT(deepest_bytes, uint64_t(200) << 10);  // the merge was big...
  // ...but the resident set stayed at memtable + blocks-in-flight scale,
  // nowhere near the O(level) the buffered merge used to materialize.
  EXPECT_LT(peak, deepest_bytes / 2);
}

}  // namespace
}  // namespace elsm
