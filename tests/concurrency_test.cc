// Multi-threading tests (paper §5.5.2 "Multi-threading"): concurrent
// readers against a quiesced store, readers racing flush/compaction through
// the engine's reader/writer locking, and verified reads under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "elsm/elsm_db.h"

namespace elsm {
namespace {

Options ConcurrencyOptions() {
  Options o;
  o.mode = Mode::kP2;
  o.memtable_bytes = 16 << 10;
  o.level1_bytes = 64 << 10;
  return o;
}

std::string Key(int i) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

TEST(ConcurrencyTest, ParallelVerifiedReaders) {
  auto db = ElsmDb::Create(ConcurrencyOptions());
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db.value()->CompactAll().ok());

  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int i = t; i < 500; i += 4) {
        auto got = db.value()->GetVerified(Key(i));
        if (!got.ok() || !got.value().record.has_value() ||
            got.value().record->value != "v" + std::to_string(i)) {
          ++errors;
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST(ConcurrencyTest, ReadersDuringWritesSeeConsistentValues) {
  auto db = ElsmDb::Create(ConcurrencyOptions());
  ASSERT_TRUE(db.ok());
  // Seed every key so readers always find something.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), "seed").ok());
  }
  ASSERT_TRUE(db.value()->Flush().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::thread writer([&] {
    // The facade's Put path triggers flushes and compactions internally;
    // the engine's reader/writer lock must keep readers consistent.
    for (int round = 0; round < 10 && !stop; ++round) {
      for (int i = 0; i < 200; ++i) {
        if (!db.value()->Put(Key(i), "round" + std::to_string(round)).ok()) {
          ++errors;
        }
      }
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      uint64_t reads = 0;
      while (!stop.load() || reads < 100) {
        const int i = (int(reads) * 7 + t) % 200;
        auto got = db.value()->Get(Key(i));
        if (!got.ok() || !got.value().has_value()) ++errors;
        ++reads;
        if (reads > 100000) break;
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST(ConcurrencyTest, ParallelScansAndGets) {
  auto db = ElsmDb::Create(ConcurrencyOptions());
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), "v").ok());
  }
  ASSERT_TRUE(db.value()->Flush().ok());

  std::atomic<int> errors{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        if (t % 2 == 0) {
          auto scan = db.value()->Scan(Key(i * 4), Key(i * 4 + 20));
          if (!scan.ok() || scan.value().empty()) ++errors;
        } else {
          auto got = db.value()->Get(Key((i * 13) % 400));
          if (!got.ok() || !got.value().has_value()) ++errors;
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace elsm
