// Randomized crash-recovery torture tests over FaultFs (the test-archetype
// core of this PR): run a workload, kill the "disk" at a random mutating
// op — mid-WAL-append, mid-SSTable-write, mid-manifest-rename, anywhere —
// reopen on the surviving image and require that
//   * recovery succeeds (a benign crash must never read as an attack:
//     no AuthFailure, no RollbackDetected),
//   * every acknowledged op is present and every Get still verifies
//     (compared against a shadow std::map; the single in-flight op at the
//     crash point is indeterminate and may have either value),
//   * a full verified Scan agrees with the shadow map.
// Loops over many seeds so the crash lands on every op kind.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "common/random.h"
#include "elsm/elsm_db.h"
#include "elsm/sharded_db.h"
#include "storage/fault_fs.h"
#include "storage/posix_fs.h"
#include "storage/simfs.h"
#include "temp_dir.h"

namespace elsm {
namespace {

Options CrashOptions() {
  Options o;
  o.mode = Mode::kP2;
  o.memtable_bytes = 2 << 10;  // flush every ~15 records: many crash points
  o.level1_bytes = 8 << 10;
  o.level_ratio = 4;
  o.block_bytes = 1024;
  o.file_bytes = 4 << 10;
  // Snapshot the manifest log every 3 delta records so the random torture
  // crosses append -> snapshot-install -> stale-tail-truncation boundaries
  // many times per seed instead of staying inside one delta generation.
  o.manifest_snapshot_edits = 3;
  return o;
}

std::string Key(uint64_t i) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "key%06llu", (unsigned long long)i);
  return buf;
}

// One workload op attempted against both the store and the shadow map.
struct PendingOp {
  std::string key;
  std::optional<std::string> value;  // nullopt = delete
};

// Drives `max_ops` random puts/deletes/flushes until the scheduled crash
// fires. Returns the op that was in flight when the crash hit (or nullopt
// if everything succeeded before the fault — the caller retries with a
// tighter fuse).
std::optional<PendingOp> RunUntilCrash(
    ElsmDb& db, storage::FaultFs& fs, Rng& rng, uint64_t max_ops,
    std::map<std::string, std::string>* shadow) {
  for (uint64_t op = 0; op < max_ops; ++op) {
    PendingOp pending;
    pending.key = Key(rng.Uniform(120));
    Status s;
    if (rng.Bernoulli(0.15) && shadow->count(pending.key) > 0) {
      pending.value = std::nullopt;
      s = db.Delete(pending.key);
    } else {
      pending.value = "v" + std::to_string(op) + "-" + pending.key;
      s = db.Put(pending.key, *pending.value);
    }
    if (!s.ok()) {
      EXPECT_TRUE(fs.crashed()) << "non-crash failure: " << s.ToString();
      return pending;
    }
    // Acknowledged: the shadow map commits the op.
    if (pending.value.has_value()) {
      (*shadow)[pending.key] = *pending.value;
    } else {
      shadow->erase(pending.key);
    }
    if (rng.Bernoulli(0.02)) {
      s = db.Flush();
      if (!s.ok()) {
        EXPECT_TRUE(fs.crashed()) << "non-crash failure: " << s.ToString();
        // The flush moved acknowledged state around but acknowledged ops
        // themselves are all durable-or-replayable; nothing is in flight.
        return PendingOp{};
      }
    }
  }
  return std::nullopt;
}

void CheckRecovered(ElsmDb& db, const std::map<std::string, std::string>& shadow,
                    const PendingOp& in_flight) {
  // Every shadow key must be present with the committed value — except the
  // in-flight key, which may hold either the old or the attempted value.
  for (const auto& [key, value] : shadow) {
    auto got = db.GetVerified(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    if (key == in_flight.key) continue;
    ASSERT_TRUE(got.value().record.has_value()) << key;
    ASSERT_FALSE(got.value().record->deleted()) << key;
    EXPECT_EQ(got.value().record->value, value) << key;
  }
  // Scan completeness: the recovered store holds exactly the shadow keys
  // (modulo the indeterminate one).
  auto scanned = db.Scan(Key(0), Key(999999));
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  std::set<std::string> scanned_keys;
  for (const auto& r : scanned.value()) scanned_keys.insert(r.key);
  for (const auto& [key, value] : shadow) {
    if (key == in_flight.key) continue;
    EXPECT_TRUE(scanned_keys.count(key)) << "lost acknowledged key " << key;
  }
  for (const auto& key : scanned_keys) {
    if (key == in_flight.key) continue;
    EXPECT_TRUE(shadow.count(key)) << "resurrected key " << key;
  }
  // The in-flight op: old value, attempted value, or (for a fresh key)
  // absence are all legal — but whatever is there must have verified above.
  if (!in_flight.key.empty()) {
    auto got = db.GetVerified(in_flight.key);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
  }
}

// The torture loop, shared by every (backend, loss-model) combination:
// `backend` picks the base Fs under the FaultFs decorator ("sim" or
// "posix" — the latter on a throwaway real directory per seed);
// `unsynced_loss` additionally drops everything not fsynced at the crash,
// which is what proves the engine's Sync ordering and not just its
// torn-op tolerance.
void RunCrashTorture(const std::string& backend, bool unsynced_loss,
                     uint64_t seeds) {
  int crashes_seen = 0;
  std::map<std::string, int> crash_ops;  // op kind -> count (coverage)
  for (uint64_t seed = 0; seed < seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(0x9000 + seed);
    auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
    test_util::TempDir dir;  // per-seed scratch root (posix only)
    std::shared_ptr<storage::Fs> base;
    if (backend == "posix") {
      ASSERT_TRUE(dir.ok());
      base = std::make_shared<storage::PosixFs>(enclave, dir.path());
    } else {
      base = std::make_shared<storage::SimFs>(enclave);
    }
    auto fs = std::make_shared<storage::FaultFs>(base);
    if (unsynced_loss) fs->EnableUnsyncedLoss();
    auto platform = std::make_shared<TrustedPlatform>();
    std::map<std::string, std::string> shadow;

    // Warm up uncrashed so some seeds crash into a multi-level store.
    PendingOp in_flight;
    {
      auto db = ElsmDb::Open(CrashOptions(), fs, platform);
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      const uint64_t warm = rng.Uniform(150);
      for (uint64_t i = 0; i < warm; ++i) {
        const std::string key = Key(rng.Uniform(120));
        const std::string value = "warm" + std::to_string(i);
        ASSERT_TRUE(db.value()->Put(key, value).ok());
        shadow[key] = value;
      }
      // Arm the fault: a crash a few dozen fs-ops out, tearing the payload
      // of the op it lands on at a random fraction.
      const double keep = double(rng.Uniform(11)) / 10.0;
      fs->ScheduleCrash(1 + rng.Uniform(60), keep);
      auto crashed_op =
          RunUntilCrash(*db.value(), *fs, rng, /*max_ops=*/2000, &shadow);
      if (!crashed_op.has_value()) {
        // The fuse outlived the workload (rare); nothing crashed — close
        // cleanly and verify trivially below.
        fs->ClearCrash();
        ASSERT_TRUE(db.value()->Close().ok());
      } else {
        ++crashes_seen;
        ++crash_ops[fs->crash_op()];
        in_flight = *crashed_op;
        // Simulated power loss: drop the instance without Close(); the
        // destructor's best-effort persist fails against the dead disk.
      }
    }

    // Power back on: same (torn) disk image, same trusted platform.
    fs->ClearCrash();
    auto db = ElsmDb::Open(CrashOptions(), fs, platform);
    ASSERT_TRUE(db.ok()) << "recovery rejected a benign crash image: "
                         << db.status().ToString();
    CheckRecovered(*db.value(), shadow, in_flight);

    // The recovered store must be fully usable: write, flush, reopen again.
    ASSERT_TRUE(db.value()->Put("post-crash", "alive").ok());
    ASSERT_TRUE(db.value()->Flush().ok());
    ASSERT_TRUE(db.value()->Close().ok());
    auto again = ElsmDb::Open(CrashOptions(), fs, platform);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    auto got = again.value()->Get("post-crash");
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got.value().has_value());
    EXPECT_EQ(*got.value(), "alive");
  }
  // Most seeds must actually crash, and across several op kinds: WAL
  // appends (append), SSTable/manifest writes (write), the manifest's
  // atomic install (rename) and — with sync_writes — the durability
  // barriers themselves (sync/syncdir).
  EXPECT_GE(crashes_seen, int(seeds * 3 / 5));
  EXPECT_GE(crash_ops.size(), 2u) << "crash landed on too few op kinds";
}

TEST(CrashRecoveryTest, RandomCrashPointsRecoverToShadowState) {
  RunCrashTorture("sim", /*unsynced_loss=*/false, /*seeds=*/50);
}

TEST(CrashRecoveryTest, RandomCrashPointsRecoverWithUnsyncedLoss) {
  // Same torture, but the crash also drops every write the store never
  // fsynced — any missing Sync/SyncDir in the write path shows up here as
  // lost acknowledged data or a false attack on reopen.
  RunCrashTorture("sim", /*unsynced_loss=*/true, /*seeds=*/30);
}

TEST(CrashRecoveryTest, RandomCrashPointsRecoverOnPosixBackend) {
  RunCrashTorture("posix", /*unsynced_loss=*/false, /*seeds=*/20);
}

TEST(CrashRecoveryTest, RandomCrashPointsRecoverOnPosixWithUnsyncedLoss) {
  RunCrashTorture("posix", /*unsynced_loss=*/true, /*seeds=*/15);
}

TEST(CrashRecoveryTest, TornWalTailLosesOnlyUnacknowledgedOps) {
  auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
  auto fs = std::make_shared<storage::FaultFs>(enclave);
  auto platform = std::make_shared<TrustedPlatform>();
  Options o = CrashOptions();
  o.memtable_bytes = 256 << 10;  // keep everything in the WAL

  std::map<std::string, std::string> shadow;
  {
    auto db = ElsmDb::Open(o, fs, platform);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "committed").ok());
      shadow[Key(i)] = "committed";
    }
    // The very next WAL append tears mid-frame.
    fs->ScheduleCrash(1, /*keep_fraction=*/0.5);
    EXPECT_FALSE(db.value()->Put(Key(40), "torn").ok());
  }

  fs->ClearCrash();
  auto db = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (const auto& [key, value] : shadow) {
    auto got = db.value()->GetVerified(key);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value().record.has_value());
    EXPECT_EQ(got.value().record->value, value);
  }
  // The torn op was never acknowledged; it must not have survived.
  auto got = db.value()->Get(Key(40));
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value().has_value());
}

TEST(CrashRecoveryTest, CrashBeforeFirstManifestReplaysWal) {
  // Regression: a crash before any flush used to lose every acknowledged
  // write, because recovery only replayed the WAL when a manifest existed.
  auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
  auto fs = std::make_shared<storage::FaultFs>(enclave);
  auto platform = std::make_shared<TrustedPlatform>();
  Options o = CrashOptions();
  o.memtable_bytes = 256 << 10;

  {
    auto db = ElsmDb::Open(o, fs, platform);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "pre-manifest").ok());
    }
    fs->CrashNow();  // power loss before any flush/Close persisted state
  }

  fs->ClearCrash();
  auto db = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (int i = 0; i < 25; ++i) {
    auto got = db.value()->Get(Key(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value().has_value()) << Key(i);
    EXPECT_EQ(*got.value(), "pre-manifest");
  }
}

TEST(CrashRecoveryTest, OrphanFilesCollectedOnRecovery) {
  // A crash can strand files no manifest references (compaction outputs
  // whose manifest persist never landed, parked inputs whose purge never
  // ran). Recovery garbage-collects them instead of leaking across
  // crash/recover cycles — without touching live files.
  auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
  auto fs = std::make_shared<storage::FaultFs>(enclave);
  auto platform = std::make_shared<TrustedPlatform>();
  Options o = CrashOptions();
  {
    auto db = ElsmDb::Open(o, fs, platform);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "live").ok());
    }
    ASSERT_TRUE(db.value()->Close().ok());
  }
  const std::string orphan_sst = o.name + "/999999.sst";
  const std::string orphan_tree = o.name + "/999999.tree";
  ASSERT_TRUE(fs->Write(orphan_sst, "stranded by a simulated crash").ok());
  ASSERT_TRUE(fs->Write(orphan_tree, "stranded sidecar").ok());
  const size_t live_files = fs->List(o.name + "/").size() - 2;

  auto db = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_FALSE(fs->Exists(orphan_sst));
  EXPECT_FALSE(fs->Exists(orphan_tree));
  EXPECT_EQ(fs->List(o.name + "/").size(), live_files);
  for (int i = 0; i < 100; i += 7) {
    auto got = db.value()->GetVerified(Key(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value().record.has_value());
    EXPECT_EQ(got.value().record->value, "live");
  }
}

TEST(CrashRecoveryTest, ParallelPutBatchCrashRecoversToConsistentShadowState) {
  // A power failure landing on one shard's disk while a *parallel* PutBatch
  // is in flight on the fan-out pool: sub-batches on healthy shards may
  // have committed, the crashed shard's sub-batch may be torn mid-WAL-
  // append. Reopen must read as a benign crash (never an attack), every
  // acknowledged batch must be intact, and each key of the one in-flight
  // batch must hold either its old or its attempted value — nothing else.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(0xba7c + seed);
    constexpr uint32_t kShards = 3;
    auto env = std::make_shared<ShardEnv>();
    env->shard_fs.resize(kShards);
    auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
    auto fault = std::make_shared<storage::FaultFs>(enclave);
    const uint32_t victim_shard = uint32_t(seed % kShards);
    env->shard_fs[victim_shard] = fault;

    Options o = CrashOptions();
    o.fanout_threads = 4;

    std::map<std::string, std::string> shadow;
    std::set<std::string> in_flight;  // keys of the one unacknowledged batch
    std::map<std::string, std::string> attempted;  // their racing values
    {
      auto db = ShardedDb::Open(o, kShards, env);
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      // Acknowledged warm-up batches across all shards.
      for (int round = 0; round < 4; ++round) {
        ElsmDb::WriteBatch batch;
        for (int i = 0; i < 30; ++i) {
          const std::string key = Key(rng.Uniform(120));
          batch.Put(key, "warm" + std::to_string(round));
        }
        ASSERT_TRUE(db.value()->Write(batch).ok());
        for (const auto& e : batch.entries) shadow[e.key] = e.value;
      }
      fault->ScheduleCrash(1 + rng.Uniform(40),
                           double(rng.Uniform(11)) / 10.0);
      bool crashed = false;
      for (int round = 0; round < 400 && !crashed; ++round) {
        ElsmDb::WriteBatch batch;
        for (int i = 0; i < 20; ++i) {
          const std::string key = Key(rng.Uniform(120));
          batch.Put(key, "racing" + std::to_string(round) + "-" + key);
        }
        Status s = db.value()->Write(batch);
        if (!s.ok()) {
          EXPECT_TRUE(fault->crashed()) << "non-crash failure: " << s.ToString();
          // The whole batch is unacknowledged: healthy shards' sub-batches
          // may have landed, the victim's may be torn — every key of the
          // batch is indeterminate between old and attempted value.
          for (const auto& e : batch.entries) {
            in_flight.insert(e.key);
            attempted[e.key] = e.value;
          }
          crashed = true;
        } else {
          for (const auto& e : batch.entries) shadow[e.key] = e.value;
        }
      }
      ASSERT_TRUE(crashed) << "crash never fired";
      // Power loss: no Close(); the destructor's persist fails on the
      // victim shard and the super-manifest lags — recovery must cope.
    }

    fault->ClearCrash();
    auto db = ShardedDb::Open(o, kShards, env);
    ASSERT_TRUE(db.ok()) << "benign parallel-batch crash read as attack: "
                         << db.status().ToString();
    // Acknowledged state: every shadow key outside the in-flight batch
    // verifies with exactly its committed value.
    for (const auto& [key, value] : shadow) {
      auto got = db.value()->GetVerified(key);
      ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
      if (in_flight.count(key)) continue;
      ASSERT_TRUE(got.value().record.has_value()) << key;
      EXPECT_EQ(got.value().record->value, value) << key;
    }
    // In-flight keys: old committed value, attempted value, or (for a key
    // never acknowledged before) absence — anything else is corruption.
    for (const auto& key : in_flight) {
      auto got = db.value()->GetVerified(key);
      ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
      if (got.value().record.has_value() && !got.value().record->deleted()) {
        const std::string& v = got.value().record->value;
        const auto it = shadow.find(key);
        EXPECT_TRUE((it != shadow.end() && v == it->second) ||
                    v == attempted[key])
            << key << " holds neither old nor attempted value: " << v;
      } else {
        EXPECT_EQ(shadow.count(key), 0u)
            << key << " was acknowledged but vanished";
      }
    }
    // A full verified cross-shard scan (on the same fan-out pool) agrees
    // with the shadow map modulo the in-flight batch.
    auto scanned = db.value()->Scan(Key(0), Key(999999));
    ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
    std::set<std::string> scanned_keys;
    for (const auto& r : scanned.value()) scanned_keys.insert(r.key);
    for (const auto& [key, value] : shadow) {
      if (in_flight.count(key)) continue;
      EXPECT_TRUE(scanned_keys.count(key)) << "lost acknowledged key " << key;
    }
    for (const auto& key : scanned_keys) {
      EXPECT_TRUE(shadow.count(key) || in_flight.count(key))
          << "resurrected key " << key;
    }
    // The recovered store stays fully usable on the parallel path.
    ElsmDb::WriteBatch post;
    for (int i = 0; i < 30; ++i) post.Put(Key(200 + i), "post-crash");
    ASSERT_TRUE(db.value()->Write(post).ok());
    auto got = db.value()->MultiGet({Key(200), Key(229), Key(215)});
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    for (const auto& v : got.value()) {
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, "post-crash");
    }
    ASSERT_TRUE(db.value()->Close().ok());
  }
}

// Deterministic crash-point walk over the manifest-log maintenance path.
// With a 2-edit snapshot cadence every other flush upgrades its persist
// from delta append to snapshot install, so sweeping the crash one
// mutating fs-op at a time marches through every ordering window the
// incremental log added: the pre-append namespace SyncDir, the record
// append and its fsync, the tmp-write/Sync/Rename/SyncDir install, and
// the stale-tail deletion after it. Each crash image must reopen as a
// benign crash with all acknowledged keys intact.
void RunManifestMaintenanceWalk(const std::string& backend,
                                bool unsynced_loss) {
  for (uint64_t k = 1; k <= 36; ++k) {
    SCOPED_TRACE("crash at mutating op " + std::to_string(k));
    auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
    test_util::TempDir dir;
    std::shared_ptr<storage::Fs> base;
    if (backend == "posix") {
      ASSERT_TRUE(dir.ok());
      base = std::make_shared<storage::PosixFs>(enclave, dir.path());
    } else {
      base = std::make_shared<storage::SimFs>(enclave);
    }
    auto fs = std::make_shared<storage::FaultFs>(base);
    if (unsynced_loss) fs->EnableUnsyncedLoss();
    auto platform = std::make_shared<TrustedPlatform>();
    Options o = CrashOptions();
    o.manifest_snapshot_edits = 2;

    std::map<std::string, std::string> shadow;
    std::string in_flight_key;
    bool crashed = false;
    {
      auto db = ElsmDb::Open(o, fs, platform);
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      // Clean warm-up so the armed window starts inside an existing log
      // generation rather than at first-ever-manifest special cases.
      for (int i = 0; i < 20; ++i) {
        const std::string key = Key(i);
        ASSERT_TRUE(db.value()->Put(key, "warm").ok());
        shadow[key] = "warm";
      }
      ASSERT_TRUE(db.value()->Flush().ok());
      fs->ScheduleCrash(k, /*keep_fraction=*/0.5);
      for (uint64_t op = 0; op < 400 && !crashed; ++op) {
        const std::string key = Key(op % 50);
        const std::string value = "walk" + std::to_string(op);
        Status s = db.value()->Put(key, value);
        if (!s.ok()) {
          EXPECT_TRUE(fs->crashed()) << "non-crash failure: " << s.ToString();
          in_flight_key = key;  // indeterminate: old or attempted value
          crashed = true;
          break;
        }
        shadow[key] = value;
        if (op % 6 == 5) {
          s = db.value()->Flush();
          if (!s.ok()) {
            EXPECT_TRUE(fs->crashed())
                << "non-crash failure: " << s.ToString();
            crashed = true;  // acknowledged ops stay durable-or-replayable
          }
        }
      }
      ASSERT_TRUE(crashed) << "crash fuse " << k << " never fired";
      // Power loss: drop without Close().
    }

    fs->ClearCrash();
    auto db = ElsmDb::Open(o, fs, platform);
    ASSERT_TRUE(db.ok()) << "manifest-maintenance crash at op " << k
                         << " read as attack: " << db.status().ToString();
    for (const auto& [key, value] : shadow) {
      auto got = db.value()->GetVerified(key);
      ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
      if (key == in_flight_key) continue;
      ASSERT_TRUE(got.value().record.has_value()) << key;
      EXPECT_EQ(got.value().record->value, value) << key;
    }
    // The recovered log must keep extending: write across another
    // snapshot boundary, then reopen once more.
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(db.value()->Put("post-crash", "alive").ok());
      ASSERT_TRUE(db.value()->Flush().ok());
    }
    ASSERT_TRUE(db.value()->Close().ok());
    auto again = ElsmDb::Open(o, fs, platform);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    auto got = again.value()->Get("post-crash");
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got.value().has_value());
    EXPECT_EQ(*got.value(), "alive");
  }
}

TEST(CrashRecoveryTest, ManifestMaintenanceCrashWalk) {
  RunManifestMaintenanceWalk("sim", /*unsynced_loss=*/false);
}

TEST(CrashRecoveryTest, ManifestMaintenanceCrashWalkWithUnsyncedLoss) {
  RunManifestMaintenanceWalk("sim", /*unsynced_loss=*/true);
}

TEST(CrashRecoveryTest, ManifestMaintenanceCrashWalkOnPosixBackend) {
  RunManifestMaintenanceWalk("posix", /*unsynced_loss=*/false);
}

TEST(CrashRecoveryTest, ManifestMaintenanceCrashWalkOnPosixWithUnsyncedLoss) {
  RunManifestMaintenanceWalk("posix", /*unsynced_loss=*/true);
}

TEST(CrashRecoveryTest, SuperManifestCrashWalkRecoversBenignly) {
  // Crash-point walk isolated to the super-manifest's own disk: shards
  // live on healthy SimFs instances while meta_fs gets the FaultFs, so
  // every crash in the sweep lands inside PersistSuperManifest — the
  // delta append/fsync, the snapshot's tmp-write/Sync/Rename/SyncDir, or
  // the stale super-tail deletion. Data is acknowledged on shard disks
  // throughout; reopen must never read the lagging/torn super log as an
  // attack and must serve every acknowledged key.
  constexpr uint32_t kShards = 2;
  for (int unsynced = 0; unsynced < 2; ++unsynced) {
    for (uint64_t k = 1; k <= 14; ++k) {
      SCOPED_TRACE("unsynced_loss=" + std::to_string(unsynced) +
                   " crash at meta op " + std::to_string(k));
      auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
      auto env = std::make_shared<ShardEnv>();
      auto meta_fault = std::make_shared<storage::FaultFs>(
          std::make_shared<storage::SimFs>(enclave));
      if (unsynced) meta_fault->EnableUnsyncedLoss();
      env->meta_fs = meta_fault;

      Options o = CrashOptions();
      o.manifest_snapshot_edits = 2;

      std::map<std::string, std::string> shadow;
      bool crashed = false;
      {
        auto db = ShardedDb::Open(o, kShards, env);
        ASSERT_TRUE(db.ok()) << db.status().ToString();
        for (int i = 0; i < 40; ++i) {
          const std::string key = Key(i);
          ASSERT_TRUE(db.value()->Put(key, "warm").ok());
          shadow[key] = "warm";
        }
        ASSERT_TRUE(db.value()->Flush().ok());
        meta_fault->ScheduleCrash(k, /*keep_fraction=*/0.5);
        for (int round = 0; round < 12 && !crashed; ++round) {
          for (int i = 0; i < 10; ++i) {
            // Puts touch only shard disks; they must keep succeeding.
            const std::string key = Key(100 + (round * 10 + i) % 60);
            const std::string value = "super" + std::to_string(round);
            ASSERT_TRUE(db.value()->Put(key, value).ok());
            shadow[key] = value;
          }
          Status s = db.value()->Flush();
          if (!s.ok()) {
            EXPECT_TRUE(meta_fault->crashed())
                << "non-crash failure: " << s.ToString();
            crashed = true;
          }
        }
        ASSERT_TRUE(crashed) << "meta crash fuse " << k << " never fired";
        // Power loss without Close(): the super log lags the shards.
      }

      meta_fault->ClearCrash();
      auto db = ShardedDb::Open(o, kShards, env);
      ASSERT_TRUE(db.ok()) << "benign super-manifest crash at meta op " << k
                           << " read as attack: " << db.status().ToString();
      for (const auto& [key, value] : shadow) {
        auto got = db.value()->GetVerified(key);
        ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
        ASSERT_TRUE(got.value().record.has_value()) << key;
        EXPECT_EQ(got.value().record->value, value) << key;
      }
      // The super log must keep extending across another cadence cycle.
      for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(db.value()->Put("post-crash", "alive").ok());
        ASSERT_TRUE(db.value()->Flush().ok());
      }
      ASSERT_TRUE(db.value()->Close().ok());
      auto again = ShardedDb::Open(o, kShards, env);
      ASSERT_TRUE(again.ok()) << again.status().ToString();
      auto got = again.value()->Get("post-crash");
      ASSERT_TRUE(got.ok());
      ASSERT_TRUE(got.value().has_value());
      EXPECT_EQ(*got.value(), "alive");
    }
  }
}

TEST(CrashRecoveryTest, ManifestVanishingIsStillAnAttack) {
  // Crash tolerance must not have weakened the rollback defence: deleting
  // the manifest outright (not a torn write — the file is *gone* while the
  // trusted counter advanced) is detected on reopen.
  auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
  auto fs = std::make_shared<storage::FaultFs>(enclave);
  auto platform = std::make_shared<TrustedPlatform>();
  Options o = CrashOptions();
  {
    auto db = ElsmDb::Open(o, fs, platform);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "v").ok());
    }
    ASSERT_TRUE(db.value()->Close().ok());
  }
  ASSERT_TRUE(fs->Delete(o.name + "/MANIFEST").ok());
  auto db = ElsmDb::Open(o, fs, platform);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsRollbackDetected()) << db.status().ToString();
}

}  // namespace
}  // namespace elsm
