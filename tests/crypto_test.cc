// Unit tests for the crypto substrate: SHA-256 against FIPS/NIST vectors,
// HMAC-SHA256 against RFC 4231 vectors, cipher round-trips, hash chains.
#include <gtest/gtest.h>

#include <string>

#include "crypto/cipher.h"
#include "crypto/hash_chain.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace elsm::crypto {
namespace {

TEST(Sha256Test, NistVectorEmpty) {
  EXPECT_EQ(ToHex(Sha256::Digest("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, NistVectorAbc) {
  EXPECT_EQ(ToHex(Sha256::Digest("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, NistVectorTwoBlock) {
  EXPECT_EQ(ToHex(Sha256::Digest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(ToHex(h.Finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string data =
      "The quick brown fox jumps over the lazy dog, repeatedly and with "
      "variable chunk sizes to exercise the buffer boundary logic.";
  for (size_t chunk = 1; chunk <= 67; chunk += 3) {
    Sha256 h;
    for (size_t i = 0; i < data.size(); i += chunk) {
      h.Update(data.substr(i, chunk));
    }
    EXPECT_EQ(h.Finalize(), Sha256::Digest(data)) << "chunk=" << chunk;
  }
}

TEST(Sha256Test, FinalizeResetsState) {
  Sha256 h;
  h.Update("abc");
  const Hash256 first = h.Finalize();
  h.Update("abc");
  EXPECT_EQ(h.Finalize(), first);
}

TEST(Sha256Test, ExactBlockBoundaryPadding) {
  // 55, 56, 63, 64, 65 bytes straddle the padding edge cases.
  for (size_t n : {55u, 56u, 63u, 64u, 65u}) {
    const std::string data(n, 'x');
    Sha256 a;
    a.Update(data);
    Sha256 b;
    for (char c : data) b.Update(&c, 1);
    EXPECT_EQ(a.Finalize(), b.Finalize()) << n;
  }
}

TEST(HmacTest, Rfc4231Case1) {
  const std::string key(20, '\x0b');
  EXPECT_EQ(ToHex(HmacSha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(ToHex(HmacSha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231LongKey) {
  const std::string key(131, '\xaa');
  EXPECT_EQ(ToHex(HmacSha256(
                key, "Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, TagEqualConstantTimeSemantics) {
  const Hash256 a = Sha256::Digest("a");
  Hash256 b = a;
  EXPECT_TRUE(TagEqual(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(TagEqual(a, b));
}

TEST(CipherTest, StreamRoundTrip) {
  const std::string plain = "some secret value with \x00 bytes and length 42";
  const std::string ct = StreamEncrypt("key", 7, plain);
  EXPECT_NE(ct, plain);
  EXPECT_EQ(StreamDecrypt("key", 7, ct), plain);
}

TEST(CipherTest, StreamDifferentNoncesDiffer) {
  const std::string plain(100, 'p');
  EXPECT_NE(StreamEncrypt("key", 1, plain), StreamEncrypt("key", 2, plain));
}

TEST(CipherTest, DeterministicEncryptIsDeterministic) {
  const std::string ct1 = DeterministicEncrypt("key", "hostname.example");
  const std::string ct2 = DeterministicEncrypt("key", "hostname.example");
  EXPECT_EQ(ct1, ct2);  // searchability: equal plaintext -> equal ciphertext
  EXPECT_NE(ct1, DeterministicEncrypt("key", "hostname.example2"));
}

TEST(CipherTest, DeterministicDecryptRoundTrip) {
  const std::string ct = DeterministicEncrypt("key", "payload");
  auto pt = DeterministicDecrypt("key", ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(pt.value(), "payload");
}

TEST(CipherTest, DeterministicDecryptRejectsTamper) {
  const std::string plaintext = "a-reasonably-long-payload-to-tamper-with";
  std::string body_tampered = DeterministicEncrypt("key", plaintext);
  ASSERT_GT(body_tampered.size(), 40u);
  body_tampered[40] ^= 1;  // inside the encrypted body
  EXPECT_FALSE(DeterministicDecrypt("key", body_tampered).ok());

  std::string tag_tampered = DeterministicEncrypt("key", plaintext);
  tag_tampered[5] ^= 1;  // inside the SIV tag
  EXPECT_FALSE(DeterministicDecrypt("key", tag_tampered).ok());

  EXPECT_FALSE(DeterministicDecrypt("other-key",
                                    DeterministicEncrypt("key", plaintext))
                   .ok());
  EXPECT_FALSE(DeterministicDecrypt("key", "short").ok());
}

TEST(HashChainTest, SingleRecordChain) {
  const std::vector<std::string> encs{"record-a"};
  EXPECT_EQ(ChainDigest(encs), ChainBase("record-a"));
  const auto suffixes = ChainSuffixes(encs);
  ASSERT_EQ(suffixes.size(), 1u);
  EXPECT_FALSE(suffixes[0].present);
}

TEST(HashChainTest, ChainStructureMatchesPaperExample) {
  // h4 = H(<Z,7> || H(<Z,6>)) — newest outermost (§5.2).
  const std::vector<std::string> encs{"Z7", "Z6"};
  EXPECT_EQ(ChainDigest(encs), ChainLink("Z7", ChainBase("Z6")));
}

TEST(HashChainTest, SuffixesRebuildLeaf) {
  const std::vector<std::string> encs{"r1", "r2", "r3", "r4"};
  const Hash256 leaf = ChainDigest(encs);
  const auto suffixes = ChainSuffixes(encs);
  ASSERT_EQ(suffixes.size(), 4u);
  // Rebuild from any prefix length.
  for (size_t k = 1; k <= encs.size(); ++k) {
    std::vector<std::string_view> prefix;
    for (size_t i = 0; i < k; ++i) prefix.emplace_back(encs[i]);
    EXPECT_EQ(ChainLeafFromPrefix(prefix, suffixes[k - 1]), leaf) << k;
  }
}

TEST(HashChainTest, OrderMatters) {
  EXPECT_NE(ChainDigest({"a", "b"}), ChainDigest({"b", "a"}));
}

TEST(HashChainTest, DomainSeparationFromInteriorNodes) {
  // A chain base over 65 bytes must differ from an interior-node hash over
  // the same bytes (0x00 vs 0x01 prefixes).
  Hash256 a = Sha256::Digest("a-left-half-that-is-32-bytes-xx");
  Hash256 b = Sha256::Digest("b-right-half-that-is-32-bytes-x");
  std::string concat(reinterpret_cast<const char*>(a.data()), 32);
  concat.append(reinterpret_cast<const char*>(b.data()), 32);
  EXPECT_NE(ChainBase(concat), HashInterior(a, b));
}

}  // namespace
}  // namespace elsm::crypto
