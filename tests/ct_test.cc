// Certificate-transparency case-study tests (paper §5.7): submission,
// audited lookups, revocation freshness, domain monitoring, and the
// misbehaving-log path.
#include <gtest/gtest.h>

#include "auth/adversary.h"
#include "ct/ct.h"

namespace elsm::ct {
namespace {

Certificate MakeCert(const std::string& host, uint64_t serial,
                     const std::string& issuer = "TestCA") {
  Certificate cert;
  cert.hostname = host;
  cert.issuer = issuer;
  cert.public_key = "pk-" + host + "-" + std::to_string(serial);
  cert.serial = serial;
  return cert;
}

Options LogOptions() {
  Options o;
  o.mode = Mode::kP2;
  o.name = "ctlog";
  o.memtable_bytes = 8 << 10;
  return o;
}

TEST(CtLogTest, SubmitAndLookup) {
  auto log = LogServer::Create(LogOptions());
  ASSERT_TRUE(log.ok());
  const Certificate cert = MakeCert("example.com", 1);
  ASSERT_TRUE(log.value()->Submit(cert).ok());
  auto entry = log.value()->Lookup("example.com");
  ASSERT_TRUE(entry.ok());
  ASSERT_TRUE(entry.value().has_value());
  EXPECT_EQ(entry.value()->cert_digest, cert.Digest());
  EXPECT_GT(entry.value()->log_ts, 0u);
}

TEST(CtLogTest, LookupUnknownHostIsAuthenticatedMiss) {
  auto log = LogServer::Create(LogOptions());
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log.value()->Submit(MakeCert("a.com", 1)).ok());
  ASSERT_TRUE(log.value()->Checkpoint().ok());
  auto entry = log.value()->Lookup("unknown.com");
  ASSERT_TRUE(entry.ok());
  EXPECT_FALSE(entry.value().has_value());
}

TEST(CtLogTest, RejectsCertificateWithoutHostname) {
  auto log = LogServer::Create(LogOptions());
  ASSERT_TRUE(log.ok());
  EXPECT_FALSE(log.value()->Submit(MakeCert("", 1)).ok());
}

TEST(AuditorTest, ValidatesGenuineCertificate) {
  auto log = LogServer::Create(LogOptions());
  ASSERT_TRUE(log.ok());
  const Certificate cert = MakeCert("example.com", 1);
  ASSERT_TRUE(log.value()->Submit(cert).ok());
  ASSERT_TRUE(log.value()->Checkpoint().ok());
  Auditor auditor(log.value().get());
  EXPECT_EQ(auditor.Validate(cert), Auditor::Verdict::kValid);
}

TEST(AuditorTest, DetectsRotatedCertificate) {
  // A newer certificate was logged: presenting the old one must fail the
  // freshness-backed mismatch check (the CT motivation in §3.1).
  auto log = LogServer::Create(LogOptions());
  ASSERT_TRUE(log.ok());
  const Certificate old_cert = MakeCert("example.com", 1);
  const Certificate new_cert = MakeCert("example.com", 2);
  ASSERT_TRUE(log.value()->Submit(old_cert).ok());
  ASSERT_TRUE(log.value()->Submit(new_cert).ok());
  Auditor auditor(log.value().get());
  EXPECT_EQ(auditor.Validate(old_cert), Auditor::Verdict::kMismatch);
  EXPECT_EQ(auditor.Validate(new_cert), Auditor::Verdict::kValid);
}

TEST(AuditorTest, DetectsRevokedCertificate) {
  auto log = LogServer::Create(LogOptions());
  ASSERT_TRUE(log.ok());
  const Certificate cert = MakeCert("example.com", 1);
  ASSERT_TRUE(log.value()->Submit(cert).ok());
  ASSERT_TRUE(log.value()->Revoke("example.com").ok());
  Auditor auditor(log.value().get());
  EXPECT_EQ(auditor.Validate(cert), Auditor::Verdict::kRevoked);
}

TEST(AuditorTest, UnknownHostVerdict) {
  auto log = LogServer::Create(LogOptions());
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log.value()->Submit(MakeCert("other.com", 1)).ok());
  Auditor auditor(log.value().get());
  EXPECT_EQ(auditor.Validate(MakeCert("nolog.com", 1)),
            Auditor::Verdict::kUnknownHost);
}

TEST(MonitorTest, WatchesOnlyOwnDomain) {
  auto log = LogServer::Create(LogOptions());
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log.value()->Submit(MakeCert("mydomain.com", 1)).ok());
  ASSERT_TRUE(log.value()->Submit(MakeCert("mydomain.com.shop", 2)).ok());
  ASSERT_TRUE(log.value()->Submit(MakeCert("otherdomain.org", 3)).ok());
  ASSERT_TRUE(log.value()->Checkpoint().ok());
  auto watched = log.value()->WatchDomain("mydomain.com");
  ASSERT_TRUE(watched.ok());
  EXPECT_EQ(watched.value().size(), 2u);  // sublinear monitoring: no
                                          // otherdomain.org download
}

TEST(MonitorTest, DetectsMisissuedCertificate) {
  auto log = LogServer::Create(LogOptions());
  ASSERT_TRUE(log.ok());
  const Certificate genuine = MakeCert("mydomain.com", 1);
  ASSERT_TRUE(log.value()->Submit(genuine).ok());
  Monitor monitor(log.value().get(), "mydomain.com");
  monitor.Trust(genuine);

  auto clean = monitor.FindMisissued();
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean.value().empty());

  // A rogue CA issues a cert for a subdomain the owner never requested.
  ASSERT_TRUE(
      log.value()->Submit(MakeCert("mydomain.com.evil", 666, "RogueCA")).ok());
  ASSERT_TRUE(log.value()->Checkpoint().ok());
  auto alerts = monitor.FindMisissued();
  ASSERT_TRUE(alerts.ok());
  ASSERT_EQ(alerts.value().size(), 1u);
  EXPECT_EQ(alerts.value()[0], "mydomain.com.evil");
}

TEST(CtSecurityTest, TamperedLogDetectedByAuditor) {
  auto log = LogServer::Create(LogOptions());
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        log.value()->Submit(MakeCert("host" + std::to_string(i) + ".com",
                                     uint64_t(i)))
            .ok());
  }
  ASSERT_TRUE(log.value()->Checkpoint().ok());
  // Malicious log operator flips bytes in the stored log files.
  std::string victim;
  for (const auto& name : log.value()->db().fs().List("ctlog")) {
    if (name.ends_with(".sst")) victim = name;
  }
  ASSERT_FALSE(victim.empty());
  ASSERT_TRUE(auth::Adversary::CorruptFile(log.value()->db().fs(), victim, 64));

  Auditor auditor(log.value().get());
  int misbehaved = 0;
  for (int i = 0; i < 200; ++i) {
    if (auditor.Validate(MakeCert("host" + std::to_string(i) + ".com",
                                  uint64_t(i))) ==
        Auditor::Verdict::kLogMisbehaved) {
      ++misbehaved;
    }
  }
  EXPECT_GT(misbehaved, 0);
}

}  // namespace
}  // namespace elsm::ct
