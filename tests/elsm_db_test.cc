// End-to-end tests of the ElsmDb facade in all three modes: basic CRUD,
// flush/compaction behaviour, verified reads, time-travel gets, recovery,
// and persistence across reopen.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "elsm/elsm_db.h"
#include "storage/simfs.h"

namespace elsm {
namespace {

Options SmallOptions(Mode mode) {
  Options o;
  o.mode = mode;
  o.memtable_bytes = 4 << 10;
  o.level1_bytes = 16 << 10;
  o.level_ratio = 4;
  o.block_bytes = 1024;
  o.file_bytes = 8 << 10;
  return o;
}

std::string Key(int i) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

std::string Value(int i, int version = 0) {
  return "value-" + std::to_string(i) + "-v" + std::to_string(version);
}

class ElsmDbModeTest : public ::testing::TestWithParam<Mode> {};

TEST_P(ElsmDbModeTest, PutGetRoundTrip) {
  auto db = ElsmDb::Create(SmallOptions(GetParam()));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), Value(i)).ok());
  }
  for (int i = 0; i < 200; ++i) {
    auto got = db.value()->Get(Key(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value().has_value()) << Key(i);
    EXPECT_EQ(*got.value(), Value(i));
  }
}

TEST_P(ElsmDbModeTest, MissingKeyReturnsAuthenticatedAbsence) {
  auto db = ElsmDb::Create(SmallOptions(GetParam()));
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(2 * i), Value(i)).ok());
  }
  ASSERT_TRUE(db.value()->Flush().ok());
  for (int i = 0; i < 100; ++i) {
    auto got = db.value()->Get(Key(2 * i + 1));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_FALSE(got.value().has_value());
  }
  // Keys below and above the stored range.
  EXPECT_FALSE(db.value()->Get("aaa").value().has_value());
  EXPECT_FALSE(db.value()->Get("zzz").value().has_value());
}

TEST_P(ElsmDbModeTest, OverwritesReturnNewestValue) {
  auto db = ElsmDb::Create(SmallOptions(GetParam()));
  ASSERT_TRUE(db.ok());
  for (int version = 0; version < 5; ++version) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), Value(i, version)).ok());
    }
    ASSERT_TRUE(db.value()->Flush().ok());
  }
  for (int i = 0; i < 50; ++i) {
    auto got = db.value()->Get(Key(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value().has_value());
    EXPECT_EQ(*got.value(), Value(i, 4));
  }
}

TEST_P(ElsmDbModeTest, DeleteHidesKey) {
  auto db = ElsmDb::Create(SmallOptions(GetParam()));
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(db.value()->Flush().ok());
  for (int i = 0; i < 60; i += 2) {
    ASSERT_TRUE(db.value()->Delete(Key(i)).ok());
  }
  ASSERT_TRUE(db.value()->Flush().ok());
  for (int i = 0; i < 60; ++i) {
    auto got = db.value()->Get(Key(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value().has_value(), i % 2 == 1) << Key(i);
  }
}

TEST_P(ElsmDbModeTest, ScanReturnsSortedVisibleRange) {
  auto db = ElsmDb::Create(SmallOptions(GetParam()));
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(db.value()->Delete(Key(25)).ok());
  ASSERT_TRUE(db.value()->Flush().ok());

  auto scan = db.value()->Scan(Key(20), Key(40));
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  std::set<std::string> keys;
  for (const auto& r : scan.value()) keys.insert(r.key);
  EXPECT_EQ(keys.size(), 20u);  // 21 keys in range minus deleted key 25
  EXPECT_EQ(keys.count(Key(25)), 0u);
  EXPECT_EQ(keys.count(Key(20)), 1u);
  EXPECT_EQ(keys.count(Key(40)), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ElsmDbModeTest,
                         ::testing::Values(Mode::kP2, Mode::kP1,
                                           Mode::kUnsecured),
                         [](const auto& info) {
                           switch (info.param) {
                             case Mode::kP2:
                               return "P2";
                             case Mode::kP1:
                               return "P1";
                             default:
                               return "Unsecured";
                           }
                         });

TEST(ElsmDbRecovery, ReopenRestoresFlushedAndWalData) {
  Options options = SmallOptions(Mode::kP2);
  auto platform = std::make_shared<TrustedPlatform>();
  auto enclave = std::make_shared<sgx::Enclave>(options.cost_model, true);
  auto fs = std::make_shared<storage::SimFs>(enclave);
  {
    auto db = ElsmDb::Open(options, fs, platform);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 120; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), Value(i)).ok());
    }
    ASSERT_TRUE(db.value()->Flush().ok());
    for (int i = 120; i < 140; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), Value(i)).ok());
    }
    ASSERT_TRUE(db.value()->Close().ok());
  }
  {
    auto db = ElsmDb::Open(options, fs, platform);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 140; ++i) {
      auto got = db.value()->Get(Key(i));
      ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
      ASSERT_TRUE(got.value().has_value()) << Key(i);
      EXPECT_EQ(*got.value(), Value(i));
    }
    // Timestamps continue monotonically after recovery.
    const uint64_t ts_before = db.value()->last_ts();
    ASSERT_TRUE(db.value()->Put("post-recovery", "x").ok());
    EXPECT_GT(db.value()->last_ts(), ts_before);
  }
}

TEST(ElsmDbTimeTravel, GetAtOldTimestampSeesOldVersion) {
  auto db = ElsmDb::Create(SmallOptions(Mode::kP2));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value()->Put("k", "v1").ok());
  const uint64_t ts1 = db.value()->last_ts();
  ASSERT_TRUE(db.value()->Flush().ok());
  ASSERT_TRUE(db.value()->Put("k", "v2").ok());
  const uint64_t ts2 = db.value()->last_ts();
  ASSERT_TRUE(db.value()->Flush().ok());
  ASSERT_TRUE(db.value()->Put("k", "v3").ok());
  ASSERT_TRUE(db.value()->CompactAll().ok());

  auto at = [&](uint64_t ts) {
    auto r = db.value()->GetVerified("k", ts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.value().record.has_value());
    return r.value().record->value;
  };
  EXPECT_EQ(at(ts1), "v1");
  EXPECT_EQ(at(ts2), "v2");
  EXPECT_EQ(at(kLatest), "v3");
}

TEST(ElsmDbVerification, ProofBytesReportedForVerifiedGets) {
  auto db = ElsmDb::Create(SmallOptions(Mode::kP2));
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(db.value()->CompactAll().ok());
  auto r = db.value()->GetVerified(Key(42));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().verified);
  EXPECT_GT(r.value().proof_bytes, 0u);
  ASSERT_TRUE(r.value().record.has_value());
  EXPECT_EQ(r.value().record->value, Value(42));
}

TEST(ElsmDbConfidentiality, EncryptedValuesRoundTrip) {
  Options o = SmallOptions(Mode::kP2);
  o.encrypt_values = true;
  auto db = ElsmDb::Create(o);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(db.value()->Flush().ok());
  for (int i = 0; i < 80; ++i) {
    auto got = db.value()->Get(Key(i));
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got.value().has_value());
    EXPECT_EQ(*got.value(), Value(i));
  }
  // Ciphertext must not appear in plaintext on "disk".
  bool found_plain = false;
  for (const auto& name : db.value()->fs().List(o.name)) {
    auto blob = db.value()->fs().Blob(name);
    if (blob && blob->find("value-7-v0") != std::string::npos) {
      found_plain = true;
    }
  }
  EXPECT_FALSE(found_plain);
}

TEST(ElsmDbConfidentiality, DeterministicKeysStillSearchable) {
  Options o = SmallOptions(Mode::kP2);
  o.deterministic_key_encryption = true;
  auto db = ElsmDb::Create(o);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(db.value()->Flush().ok());
  auto got = db.value()->Get(Key(7));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(got.value().has_value());
  EXPECT_EQ(*got.value(), Value(7));
  // Range queries need OPE; DE mode reports NotSupported.
  auto scan = db.value()->Scan(Key(0), Key(10));
  EXPECT_EQ(scan.status().code(), StatusCode::kNotSupported);
}

TEST(ElsmDbCompaction, CompactionDisabledStacksRuns) {
  Options o = SmallOptions(Mode::kP2);
  o.compaction_enabled = false;
  auto db = ElsmDb::Create(o);
  ASSERT_TRUE(db.ok());
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), Value(i, round)).ok());
    }
    ASSERT_TRUE(db.value()->Flush().ok());
  }
  EXPECT_EQ(db.value()->engine().levels().size(), 4u);
  auto got = db.value()->Get(Key(3));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got.value(), Value(3, 3));
}

TEST(ElsmDbModes, EmbeddedFullPathsVerifyIdentically) {
  Options o = SmallOptions(Mode::kP2);
  o.embed_full_paths = true;
  auto db = ElsmDb::Create(o);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(db.value()->CompactAll().ok());
  for (int i = 0; i < 200; i += 7) {
    auto got = db.value()->Get(Key(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got.value(), Value(i));
  }
  EXPECT_FALSE(db.value()->Get("nope").value().has_value());
}

}  // namespace
}  // namespace elsm
