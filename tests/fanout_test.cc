// Fan-out stress/property suite (the test-archetype core of this PR): the
// parallel cross-shard paths (Scan / MultiGet / PutBatch on the shared
// common::ThreadPool) must be *equivalent* to the sequential fallback —
// byte-identical results (keys, values, timestamps), identical verification
// behavior, identical errors — across randomized key distributions, shard
// counts (1–8) and pool sizes (0–8), including empty ranges, all-keys-on-
// one-shard skew and duplicate keys in a MultiGet. Plus:
//   * a scan-invocation stats regression for the short-circuit of provably
//     empty per-shard scans (empty and single-key ranges),
//   * adversary coverage: a shard returning tampered state mid-fan-out
//     fails the WHOLE parallel operation (no partial success),
//   * a tsan-targeted stress test racing PutBatch writers against parallel
//     Scan/MultiGet readers with background compaction on every shard.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "auth/adversary.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "elsm/sharded_db.h"

namespace elsm {
namespace {

Options FanoutOptions(uint32_t fanout_threads) {
  Options o;
  o.mode = Mode::kP2;
  o.memtable_bytes = 4 << 10;
  o.level1_bytes = 16 << 10;
  o.level_ratio = 4;
  o.block_bytes = 1024;
  o.file_bytes = 8 << 10;
  o.fanout_threads = fanout_threads;
  return o;
}

std::string Key(uint64_t i) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "key%06llu", (unsigned long long)i);
  return buf;
}

// A key from `space` that routes to shard 0 of `shards` (for the all-keys-
// one-shard skew distribution).
std::string SkewedKey(Rng& rng, uint64_t space, uint32_t shards) {
  for (;;) {
    const std::string key = Key(rng.Uniform(space));
    if (ShardForKey(key, shards) == 0) return key;
  }
}

void ExpectRecordsEqual(const std::vector<lsm::Record>& seq,
                        const std::vector<lsm::Record>& par,
                        const std::string& what) {
  ASSERT_EQ(seq.size(), par.size()) << what;
  for (size_t i = 0; i < seq.size(); ++i) {
    // operator== covers key, value, ts and type — byte-identical results.
    EXPECT_TRUE(seq[i] == par[i])
        << what << " diverged at " << i << ": " << seq[i].key << "@"
        << seq[i].ts << " vs " << par[i].key << "@" << par[i].ts;
  }
}

// --- property tests ---------------------------------------------------------

TEST(FanoutPropertyTest, ParallelMatchesSequentialAcrossRandomizedWorkloads) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(0xfa40 + seed);
    const uint32_t shards = 1 + uint32_t(rng.Uniform(8));      // 1..8
    const uint32_t pool_size = uint32_t(rng.Uniform(9));       // 0..8
    const bool skew = seed % 3 == 2;  // every third seed: one-shard pile-up
    SCOPED_TRACE("shards=" + std::to_string(shards) +
                 " pool=" + std::to_string(pool_size) +
                 (skew ? " skew" : ""));

    auto seq = ShardedDb::Create(FanoutOptions(0), shards);
    auto par = ShardedDb::Create(FanoutOptions(pool_size), shards);
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    ASSERT_TRUE(par.ok()) << par.status().ToString();

    // Identical op sequence against both stores: per-shard timestamp
    // sequences depend only on the per-shard op order, so even the
    // timestamps must come out byte-identical.
    constexpr uint64_t kSpace = 300;
    std::vector<std::string> touched;
    for (int round = 0; round < 4; ++round) {
      ElsmDb::WriteBatch batch;
      const uint64_t batch_size = 20 + rng.Uniform(60);
      for (uint64_t i = 0; i < batch_size; ++i) {
        const std::string key = skew ? SkewedKey(rng, kSpace, shards)
                                     : Key(rng.Uniform(kSpace));
        touched.push_back(key);
        if (rng.Bernoulli(0.15)) {
          batch.Delete(key);
        } else {
          batch.Put(key, "r" + std::to_string(round) + "-" + key);
        }
      }
      ASSERT_TRUE(seq.value()->Write(batch).ok());
      ASSERT_TRUE(par.value()->Write(batch).ok());
      // Interleave point writes so memtables/flush boundaries move too.
      for (int i = 0; i < 10; ++i) {
        const std::string key = Key(rng.Uniform(kSpace));
        const std::string value = "p" + std::to_string(round * 10 + i);
        touched.push_back(key);
        ASSERT_TRUE(seq.value()->Put(key, value).ok());
        ASSERT_TRUE(par.value()->Put(key, value).ok());
      }
    }
    ASSERT_TRUE(seq.value()->Flush().ok());
    ASSERT_TRUE(par.value()->Flush().ok());

    // Scans: full space, random interior ranges, inverted (empty) range,
    // single-key ranges (short-circuited on the parallel path).
    const auto check_scan = [&](const std::string& lo, const std::string& hi) {
      auto a = seq.value()->Scan(lo, hi);
      auto b = par.value()->Scan(lo, hi);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      ExpectRecordsEqual(a.value(), b.value(),
                         "scan [" + lo + ", " + hi + "]");
    };
    check_scan(Key(0), Key(kSpace));
    for (int i = 0; i < 4; ++i) {
      const uint64_t lo = rng.Uniform(kSpace);
      const uint64_t hi = lo + rng.Uniform(kSpace - lo);
      check_scan(Key(lo), Key(hi));
    }
    check_scan(Key(200), Key(100));  // inverted: provably empty
    check_scan(touched.front(), touched.front());
    check_scan(Key(kSpace + 1), Key(kSpace + 1));  // single key, absent

    // MultiGet: shuffled mix of present, absent and duplicated keys. The
    // parallel result must match both the sequential MultiGet and a plain
    // per-key Get loop, slot for slot.
    std::vector<std::string> keys;
    for (int i = 0; i < 60; ++i) keys.push_back(Key(rng.Uniform(kSpace * 2)));
    for (int i = 0; i < 10; ++i) keys.push_back(keys[size_t(rng.Uniform(keys.size()))]);
    auto a = seq.value()->MultiGet(keys);
    auto b = par.value()->MultiGet(keys);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_EQ(a.value().size(), keys.size());
    ASSERT_EQ(b.value().size(), keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      auto got = seq.value()->Get(keys[i]);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(a.value()[i], got.value()) << keys[i];
      EXPECT_EQ(b.value()[i], got.value()) << keys[i];
    }
  }
}

TEST(FanoutPropertyTest, SharedPoolServesMultipleStores) {
  // Many ShardedDbs in one process share one pool via Options::fanout_pool
  // instead of each spawning workers.
  auto pool = std::make_shared<common::ThreadPool>(4);
  Options o = FanoutOptions(0);
  o.fanout_pool = pool;
  auto a = ShardedDb::Create(o, 4);
  auto b = ShardedDb::Create(o, 8);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value()->fanout_pool().get(), pool.get());
  EXPECT_EQ(b.value()->fanout_pool().get(), pool.get());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(a.value()->Put(Key(i), "a" + std::to_string(i)).ok());
    ASSERT_TRUE(b.value()->Put(Key(i), "b" + std::to_string(i)).ok());
  }
  auto sa = a.value()->Scan(Key(0), Key(199));
  auto sb = b.value()->Scan(Key(0), Key(199));
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_EQ(sa.value().size(), 200u);
  EXPECT_EQ(sb.value().size(), 200u);
  EXPECT_EQ(sa.value()[0].value, "a0");
  EXPECT_EQ(sb.value()[0].value, "b0");
  EXPECT_GE(a.value()->fanout_stats().parallel_dispatches.load(), 1u);
  EXPECT_GE(b.value()->fanout_stats().parallel_dispatches.load(), 1u);
}

TEST(FanoutPropertyTest, MaintenancePathsFanOutAcrossShards) {
  // Flush/CompactAll route through the same FanOut machinery as the query
  // paths (ROADMAP item: they used to visit shards sequentially under
  // super_mu_): with a pool they dispatch in parallel, the super-manifest
  // still refreshes once at the end, and the store stays verifiable and
  // reopenable afterwards.
  auto env = std::make_shared<ShardEnv>();
  auto db = ShardedDb::Open(FanoutOptions(/*fanout_threads=*/4), 4, env);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (uint64_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  const uint64_t dispatches_before =
      db.value()->fanout_stats().parallel_dispatches.load();
  ASSERT_TRUE(db.value()->Flush().ok());
  ASSERT_TRUE(db.value()->CompactAll().ok());
  EXPECT_GE(db.value()->fanout_stats().parallel_dispatches.load(),
            dispatches_before + 2)
      << "maintenance did not dispatch on the fan-out pool";
  for (uint64_t i = 0; i < 400; i += 37) {
    auto got = db.value()->GetVerified(Key(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value().record.has_value());
    EXPECT_EQ(got.value().record->value, "v" + std::to_string(i));
  }
  ASSERT_TRUE(db.value()->Close().ok());
  // The super-manifest recorded post-maintenance shard digests: reopen.
  auto again = ShardedDb::Open(FanoutOptions(4), 4, env);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  auto got = again.value()->Get(Key(0));
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value().has_value());
  EXPECT_EQ(*got.value(), "v0");
}

TEST(FanoutPropertyTest, DeterministicKeyEncryptionRejectsEveryScanRange) {
  // The short-circuits must not mask the DE-keys configuration error: a
  // provably empty or single-key range errors exactly like a genuine one
  // (and like ElsmDb::Scan), instead of silently answering empty.
  Options o = FanoutOptions(2);
  o.deterministic_key_encryption = true;
  auto db = ShardedDb::Create(o, 4);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db.value()->Put(Key(1), "v").ok());
  for (const auto& [lo, hi] : std::vector<std::pair<std::string, std::string>>{
           {Key(0), Key(9)}, {Key(9), Key(0)}, {Key(1), Key(1)}}) {
    auto got = db.value()->Scan(lo, hi);
    ASSERT_FALSE(got.ok()) << "[" << lo << ", " << hi << "]";
    EXPECT_EQ(got.status().code(), StatusCode::kNotSupported)
        << got.status().ToString();
  }
}

// --- scan short-circuit stats (regression) ----------------------------------

TEST(FanoutScanStatsTest, ShortCircuitSkipsProvablyEmptyShardScans) {
  constexpr uint32_t kShards = 4;
  auto db = ShardedDb::Create(FanoutOptions(2), kShards);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), "v").ok());
  }
  const auto& stats = db.value()->fanout_stats();
  const auto engine_scans = [&] {
    uint64_t total = 0;
    for (uint32_t s = 0; s < kShards; ++s) {
      total += db.value()->shard(s).engine().stats().scans.load();
    }
    return total;
  };

  // A genuine range must consult every shard (hash routing scatters it).
  uint64_t invocations = stats.scan_shard_invocations.load();
  uint64_t engines = engine_scans();
  auto got = db.value()->Scan(Key(10), Key(90));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(stats.scan_shard_invocations.load(), invocations + kShards);
  EXPECT_EQ(engine_scans(), engines + kShards);

  // Inverted range: provably empty — no shard opens an iterator.
  invocations = stats.scan_shard_invocations.load();
  engines = engine_scans();
  uint64_t skipped = stats.scan_shards_skipped.load();
  got = db.value()->Scan(Key(90), Key(10));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().empty());
  EXPECT_EQ(stats.scan_shard_invocations.load(), invocations);
  EXPECT_EQ(engine_scans(), engines) << "empty range still opened iterators";
  EXPECT_EQ(stats.scan_shards_skipped.load(), skipped + kShards);

  // Single-key range: only the owning shard runs, and it returns exactly
  // that key.
  invocations = stats.scan_shard_invocations.load();
  engines = engine_scans();
  skipped = stats.scan_shards_skipped.load();
  got = db.value()->Scan(Key(42), Key(42));
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().size(), 1u);
  EXPECT_EQ(got.value()[0].key, Key(42));
  EXPECT_EQ(stats.scan_shard_invocations.load(), invocations + 1);
  EXPECT_EQ(engine_scans(), engines + 1)
      << "single-key range consulted more than the owning shard";
  EXPECT_EQ(stats.scan_shards_skipped.load(), skipped + kShards - 1);
}

// --- adversary: no partial success mid-fan-out ------------------------------

class FanoutAdversaryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_shared<ShardEnv>();
    auto db = ShardedDb::Open(FanoutOptions(4), kShards, env_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    for (int i = 0; i < 400; ++i) {
      keys_.push_back(Key(i));
      ASSERT_TRUE(db_->Put(keys_.back(), "genuine" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(db_->Flush().ok());
  }

  // Corrupts one SSTable of `shard` so reads touching it fail verification.
  void TamperShard(uint32_t shard) {
    std::string victim;
    for (const auto& name : env_->shard_fs[shard]->List("")) {
      if (name.ends_with(".sst")) {
        victim = name;
        break;
      }
    }
    ASSERT_FALSE(victim.empty());
    ASSERT_TRUE(
        auth::Adversary::CorruptFile(*env_->shard_fs[shard], victim, 100));
  }

  static constexpr uint32_t kShards = 4;
  std::shared_ptr<ShardEnv> env_;
  std::unique_ptr<ShardedDb> db_;
  std::vector<std::string> keys_;
};

TEST_F(FanoutAdversaryTest, TamperedShardFailsWholeParallelMultiGet) {
  TamperShard(1);
  // The MultiGet spans all shards; three answer honestly, one is tampered.
  // The whole call must fail closed — Result carries no value on error, so
  // partial success is impossible by construction; assert the status class.
  auto got = db_->MultiGet(keys_);
  ASSERT_FALSE(got.ok()) << "tampered shard went unnoticed mid-fan-out";
  EXPECT_TRUE(got.status().IsAuthFailure() || got.status().IsCorruption())
      << got.status().ToString();
  // Keys routed to intact shards still answer individually — the failure
  // above is the *cross-shard operation* failing closed, not collateral
  // damage on the healthy shards.
  for (const auto& key : keys_) {
    if (db_->ShardOf(key) == 1) continue;
    auto single = db_->Get(key);
    ASSERT_TRUE(single.ok()) << single.status().ToString();
    ASSERT_TRUE(single.value().has_value());
  }
}

TEST_F(FanoutAdversaryTest, TamperedShardFailsWholeParallelScan) {
  TamperShard(2);
  auto scanned = db_->Scan(Key(0), Key(399));
  ASSERT_FALSE(scanned.ok());
  EXPECT_TRUE(scanned.status().IsAuthFailure() ||
              scanned.status().IsCorruption())
      << scanned.status().ToString();
  // The single-key short-circuit must not widen the blast radius: a range
  // owned by an intact shard still verifies.
  std::string intact_key;
  for (const auto& key : keys_) {
    if (db_->ShardOf(key) != 2) {
      intact_key = key;
      break;
    }
  }
  auto ok_scan = db_->Scan(intact_key, intact_key);
  ASSERT_TRUE(ok_scan.ok()) << ok_scan.status().ToString();
  ASSERT_EQ(ok_scan.value().size(), 1u);
}

TEST_F(FanoutAdversaryTest, StaleShardManifestDetectedDespitePool) {
  // Roll one shard's sealed manifest *log* (snapshot file plus its delta
  // tail) back to an older, validly-sealed capture — stale freshness, not
  // byte corruption — and reopen: the super-manifest's last_ts floor must
  // reject it no matter how many fan-out threads the reopened instance is
  // configured with.
  const uint32_t victim = 3;
  const std::string shard_prefix =
      ShardedDb::ShardName(FanoutOptions(0).name, victim);
  auto capture_log = [&](std::map<std::string, std::string>* files) {
    files->clear();
    for (const std::string& name : env_->shard_fs[victim]->List("")) {
      if (name == shard_prefix + "/MANIFEST" ||
          name.starts_with(shard_prefix + "/EDITS-")) {
        auto bytes = env_->shard_fs[victim]->ReadAll(name);
        ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
        (*files)[name] = std::move(bytes).value();
      }
    }
  };
  std::map<std::string, std::string> stale;
  ASSERT_NO_FATAL_FAILURE(capture_log(&stale));
  ASSERT_FALSE(stale.empty());
  for (int i = 400; i < 800; ++i) {
    ASSERT_TRUE(db_->Put(Key(i), "epoch2").ok());
  }
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();
  std::map<std::string, std::string> current;
  ASSERT_NO_FATAL_FAILURE(capture_log(&current));
  for (const auto& [name, _] : current) {
    if (!stale.count(name)) {
      ASSERT_TRUE(env_->shard_fs[victim]->Delete(name).ok());
    }
  }
  for (const auto& [name, bytes] : stale) {
    ASSERT_TRUE(env_->shard_fs[victim]->Write(name, bytes).ok());
  }
  auto reopened = ShardedDb::Open(FanoutOptions(4), kShards, env_);
  ASSERT_FALSE(reopened.ok()) << "stale shard manifest accepted";
  EXPECT_TRUE(reopened.status().IsAuthFailure())
      << reopened.status().ToString();
}

// --- tsan-targeted stress ----------------------------------------------------

TEST(FanoutStressTest, PutBatchWritersRaceParallelScanAndMultiGetReaders) {
  // N writer threads issue cross-shard PutBatches while M reader threads
  // run parallel Scans and MultiGets, every shard compacting on its own
  // background thread and every cross-shard op fanning out on the shared
  // pool. Run under the tsan preset alongside the sharded concurrency test.
  constexpr uint32_t kShards = 4;
  constexpr int kKeys = 240;
  constexpr int kWriters = 2;
  Options o = FanoutOptions(4);
  o.memtable_bytes = 16 << 10;
  o.level1_bytes = 64 << 10;
  o.background_compaction = true;
  auto db = ShardedDb::Create(o, kShards);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), "round0000").ok());
  }
  ASSERT_TRUE(db.value()->Flush().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::atomic<int> auth_failures{0};

  // Each writer owns a disjoint key range; every batch scatters across all
  // shards, so the parallel sub-batch commits constantly overlap with the
  // other writer's and with the readers' fan-outs.
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const int lo = w * (kKeys / kWriters);
      const int hi = lo + kKeys / kWriters;
      char value[16];
      for (int round = 1; round <= 10; ++round) {
        std::snprintf(value, sizeof(value), "round%04d", round);
        for (int base = lo; base < hi; base += 24) {
          ElsmDb::WriteBatch batch;
          for (int i = base; i < std::min(base + 24, hi); ++i) {
            batch.Put(Key(i), value);
          }
          if (!db.value()->Write(batch).ok()) ++errors;
        }
      }
    });
  }

  std::thread multigetter([&] {
    uint64_t ops = 0;
    while (!stop.load() || ops < 200) {
      std::vector<std::string> keys;
      for (int i = 0; i < 16; ++i) {
        keys.push_back(Key((ops * 31 + uint64_t(i) * 7) % kKeys));
      }
      keys.push_back(keys[0]);  // duplicate slot under race, too
      auto got = db.value()->MultiGet(keys);
      if (!got.ok()) {
        ++errors;
        if (got.status().IsAuthFailure()) ++auth_failures;
      } else {
        for (const auto& v : got.value()) {
          if (!v.has_value()) ++errors;  // every key was seeded
        }
      }
      if (++ops > 100000) break;
    }
  });

  std::thread scanner([&] {
    uint64_t scans = 0;
    while (!stop.load() || scans < 30) {
      const int base = static_cast<int>((scans * 17) % (kKeys - 20));
      auto got = db.value()->Scan(Key(base), Key(base + 10));
      if (!got.ok()) {
        ++errors;
        if (got.status().IsAuthFailure()) ++auth_failures;
      } else if (got.value().empty()) {
        ++errors;
      }
      if (++scans > 20000) break;
    }
  });

  for (auto& t : writers) t.join();
  stop = true;
  multigetter.join();
  scanner.join();
  EXPECT_TRUE(db.value()->WaitForCompaction().ok());

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(auth_failures.load(), 0);
  EXPECT_GT(db.value()->fanout_stats().parallel_dispatches.load(), 0u);

  // Quiesced end state: the final round won on every key.
  for (int i = 0; i < kKeys; i += 11) {
    auto got = db.value()->GetVerified(Key(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value().record.has_value());
    EXPECT_EQ(got.value().record->value, "round0010");
  }
}

}  // namespace
}  // namespace elsm
