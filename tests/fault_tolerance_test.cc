// Transient I/O fault tolerance (the robustness core of this PR): unlike
// the crash suites — where the disk dies and the store reopens — these
// tests keep the store *running* through injected fault blips and verify
// the three tolerance layers end to end:
//   * bounded retry: a one-shot EIO / short-write on any write-path fs op
//     is absorbed (the op succeeds, stats count the retry) and never
//     surfaces as AuthFailure — the cardinal sin would be a benign blip
//     read as tampering;
//   * clean exhaustion: a fault the policy cannot absorb (ENOSPC is never
//     retried) fails the one op with a typed Status while the store stays
//     consistent and serving — verified reads still pass, a later retry or
//     reopen succeeds;
//   * graceful degradation: capacity exhaustion flips the store into
//     verified read-only degraded mode; TryResume() re-probes the disk;
//     ShardedDb quarantines repeatedly failing shards and keeps
//     maintaining the healthy ones.
// The error-point walk sweeps a one-shot fault through every eligible fs
// op index of a mixed put/flush/compact workload, on both backends, so no
// write-path op ordering escapes coverage.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "common/retry.h"
#include "elsm/elsm_db.h"
#include "elsm/sharded_db.h"
#include "storage/fault_fs.h"
#include "storage/posix_fs.h"
#include "storage/simfs.h"
#include "temp_dir.h"

namespace elsm {
namespace {

using storage::FaultFs;
using TransientKind = storage::FaultFs::TransientKind;

Options FaultOptions() {
  Options o;
  o.mode = Mode::kP2;
  o.memtable_bytes = 2 << 10;  // flush every ~15 records
  o.level1_bytes = 8 << 10;
  o.level_ratio = 4;
  o.block_bytes = 1024;
  o.file_bytes = 4 << 10;
  // Snapshot the manifest log every 2 delta records so the walk crosses
  // delta-append and snapshot-install persists many times per sweep.
  o.manifest_snapshot_edits = 2;
  return o;
}

std::string Key(uint64_t i) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "key%06llu", (unsigned long long)i);
  return buf;
}

std::shared_ptr<storage::Fs> MakeBase(const std::string& backend,
                                      std::shared_ptr<sgx::Enclave> enclave,
                                      const test_util::TempDir& dir) {
  if (backend == "posix") {
    EXPECT_TRUE(dir.ok());
    return std::make_shared<storage::PosixFs>(std::move(enclave), dir.path());
  }
  return std::make_shared<storage::SimFs>(std::move(enclave));
}

// Sum of stored file sizes — what the FaultFs capacity budget admits
// against. Computed through the decorator (no faults are armed when the
// tests call this).
uint64_t UsedBytes(storage::Fs& fs) {
  uint64_t used = 0;
  for (const std::string& name : fs.List("")) {
    auto size = fs.FileSize(name);
    if (size.ok()) used += size.value();
  }
  return used;
}

// Verifies every shadow key against the store and that a full verified
// scan returns exactly the shadow keys.
void VerifyShadow(ElsmDb& db, const std::map<std::string, std::string>& shadow) {
  for (const auto& [key, value] : shadow) {
    auto got = db.GetVerified(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    ASSERT_TRUE(got.value().record.has_value()) << key;
    EXPECT_EQ(got.value().record->value, value) << key;
  }
  auto scanned = db.Scan(Key(0), Key(999999));
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  std::set<std::string> scanned_keys;
  for (const auto& r : scanned.value()) scanned_keys.insert(r.key);
  for (const auto& [key, value] : shadow) {
    EXPECT_TRUE(scanned_keys.count(key)) << "lost acknowledged key " << key;
  }
  for (const auto& key : scanned_keys) {
    EXPECT_TRUE(shadow.count(key)) << "resurrected key " << key;
  }
}

// --- FaultFs transient-injection unit behavior ------------------------------

TEST(FaultToleranceTest, TransientInjectionTaxonomyAndAutoDisarm) {
  auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
  auto fs = std::make_shared<FaultFs>(enclave);

  // One-shot EIO: the next op fails Unavailable, nothing lands, disarms.
  fs->ScheduleTransient(1, TransientKind::kEIO);
  Status s = fs->Write("a", "payload");
  EXPECT_TRUE(s.IsTransient()) << s.ToString();
  EXPECT_FALSE(fs->Exists("a"));
  EXPECT_EQ(fs->injected_faults(), 1u);
  EXPECT_EQ(fs->transient_op(), "write");
  ASSERT_TRUE(fs->Write("a", "payload").ok());  // blip has passed

  // One-shot ENOSPC maps to CapacityExceeded (the non-retryable class).
  fs->ScheduleTransient(1, TransientKind::kENOSPC);
  s = fs->Append("a", "more");
  EXPECT_TRUE(s.IsCapacityExceeded()) << s.ToString();
  EXPECT_FALSE(s.IsTransient());

  // Short write: the prefix really lands before the op reports failure —
  // a retrying caller must cope with the partial state.
  fs->ScheduleTransient(1, TransientKind::kShortWrite, /*keep_fraction=*/0.5);
  s = fs->Write("torn", "0123456789");
  EXPECT_TRUE(s.IsTransient()) << s.ToString();
  auto torn = fs->ReadAll("torn");
  ASSERT_TRUE(torn.ok());
  EXPECT_EQ(torn.value(), "01234");

  // Capacity budget: admission keeps the stored byte sum at or under the
  // budget; freeing space stays admissible on a "full disk".
  const uint64_t used = UsedBytes(*fs);
  fs->SetCapacityBudget(used);
  EXPECT_TRUE(fs->Append("a", "x").IsCapacityExceeded());
  EXPECT_TRUE(fs->Write("b", "x").IsCapacityExceeded());
  EXPECT_TRUE(fs->Delete("torn").ok());
  // The freed bytes are admissible again.
  EXPECT_TRUE(fs->Write("b", "x").ok());
  fs->SetCapacityBudget(0);
  EXPECT_TRUE(fs->Write("c", std::string(1024, 'c')).ok());

  // Seeded probabilistic mode is deterministic per seed.
  fs->SetTransientRate(1.0, 7);
  EXPECT_TRUE(fs->Sync("a").IsTransient());
  fs->SetTransientRate(0.0, 7);
  EXPECT_TRUE(fs->Sync("a").ok());
}

TEST(FaultToleranceTest, StatusTransientTaxonomy) {
  EXPECT_TRUE(Status::Unavailable("blip").IsTransient());
  EXPECT_TRUE(Status::Unavailable("blip").IsUnavailable());
  EXPECT_FALSE(Status::Unavailable("blip").ok());
  EXPECT_FALSE(Status::IOError("dead").IsTransient());
  EXPECT_FALSE(Status::CapacityExceeded("full").IsTransient());
  EXPECT_TRUE(Status::CapacityExceeded("full").IsCapacityExceeded());
  EXPECT_FALSE(Status::AuthFailure("tamper").IsTransient());
  EXPECT_FALSE(Status::Ok().IsTransient());
}

// --- bounded retry on the write path ----------------------------------------

TEST(FaultToleranceTest, RetryAbsorbsSingleWalAppendFault) {
  auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
  auto fs = std::make_shared<FaultFs>(enclave);
  auto platform = std::make_shared<TrustedPlatform>();
  Options o = FaultOptions();
  o.memtable_bytes = 256 << 10;  // keep the workload in the WAL

  auto db = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value()->Put(Key(0), "clean").ok());

  // The very next fs op is the WAL append of this Put: one EIO blip, and
  // the op must still be acknowledged.
  fs->ScheduleTransient(1, TransientKind::kEIO);
  ASSERT_TRUE(db.value()->Put(Key(1), "absorbed").ok());
  EXPECT_EQ(fs->injected_faults(), 1u);
  const auto& stats = db.value()->engine().stats();
  EXPECT_GE(stats.retry_attempts.load(), 1u);
  EXPECT_GE(stats.retries_absorbed.load(), 1u);
  EXPECT_EQ(stats.retries_exhausted.load(), 0u);

  // Short write on the append: a torn frame lands, the retry must repair
  // the WAL tail (truncate back to the committed offset) before it
  // re-appends — otherwise recovery would strand acknowledged frames
  // behind the mid-stream garbage and read as data loss or tampering.
  fs->ScheduleTransient(1, TransientKind::kShortWrite, 0.5);
  ASSERT_TRUE(db.value()->Put(Key(2), "repaired").ok());
  EXPECT_GE(stats.wal_tail_repairs.load(), 1u);

  ASSERT_TRUE(db.value()->Close().ok());
  auto again = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(again.ok()) << "retried WAL read as attack: "
                          << again.status().ToString();
  for (int i = 0; i < 3; ++i) {
    auto got = again.value()->GetVerified(Key(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value().record.has_value()) << Key(i);
  }
}

TEST(FaultToleranceTest, ExhaustedRetriesFailCleanlyAndLaterOpsSucceed) {
  auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
  auto fs = std::make_shared<FaultFs>(enclave);
  auto platform = std::make_shared<TrustedPlatform>();
  Options o = FaultOptions();
  o.memtable_bytes = 256 << 10;
  o.io_retry.max_attempts = 2;  // exhaust with a 100% fault rate

  auto db = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value()->Put(Key(0), "committed").ok());

  fs->SetTransientRate(1.0, 11);
  Status s = db.value()->Put(Key(1), "doomed");
  EXPECT_TRUE(s.IsTransient()) << s.ToString();
  EXPECT_GE(db.value()->engine().stats().retries_exhausted.load(), 1u);
  EXPECT_FALSE(db.value()->degraded());  // transient exhaustion: not ENOSPC
  fs->SetTransientRate(0.0, 11);

  // The failed op left the store consistent: the committed key verifies,
  // the doomed key is absent, and the same op now succeeds.
  auto got = db.value()->GetVerified(Key(0));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(got.value().record.has_value());
  auto miss = db.value()->Get(Key(1));
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.value().has_value());
  ASSERT_TRUE(db.value()->Put(Key(1), "landed").ok());
  ASSERT_TRUE(db.value()->Flush().ok());
  ASSERT_TRUE(db.value()->Close().ok());
  auto again = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
}

// --- deterministic error-point walk -----------------------------------------

// Sweeps a one-shot fault of `kind` through eligible fs-op indices
// 1..max_k of a mixed put/flush/compact workload. At every index the store
// must either absorb the fault (bounded retry) or fail exactly one op with
// a clean typed error — never AuthFailure, never a bricked store — and the
// final state must match the shadow map exactly, survive a reopen, and
// keep accepting writes.
void RunErrorPointWalk(const std::string& backend, TransientKind kind,
                       uint64_t max_k) {
  uint64_t fired_points = 0;
  for (uint64_t k = 1; k <= max_k; ++k) {
    SCOPED_TRACE("fault at eligible op " + std::to_string(k));
    auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
    test_util::TempDir dir;
    auto fs = std::make_shared<FaultFs>(MakeBase(backend, enclave, dir));
    auto platform = std::make_shared<TrustedPlatform>();
    Options o = FaultOptions();

    std::map<std::string, std::string> shadow;
    auto db = ElsmDb::Open(o, fs, platform);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    // Clean warm-up so the armed window starts inside an existing log
    // generation rather than at first-ever-manifest special cases.
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "warm").ok());
      shadow[Key(i)] = "warm";
    }
    ASSERT_TRUE(db.value()->Flush().ok());

    fs->ScheduleTransient(k, kind, /*keep_fraction=*/0.5);
    auto handle_failure = [&](const Status& s) {
      // A clean, typed failure — never an auth/corruption verdict.
      EXPECT_TRUE(s.IsTransient() || s.IsCapacityExceeded())
          << "fault leaked as wrong class: " << s.ToString();
      if (db.value()->degraded()) {
        // ENOSPC exhaustion flipped the store read-only; the blip has
        // passed (one-shot), so the resume probe must re-admit writes.
        ASSERT_TRUE(db.value()->TryResume().ok());
        EXPECT_FALSE(db.value()->degraded());
      }
    };
    for (uint64_t op = 0; op < 140; ++op) {
      const std::string key = Key(op % 40);
      const std::string value = "walk" + std::to_string(op);
      Status s = db.value()->Put(key, value);
      if (s.ok()) {
        shadow[key] = value;
      } else {
        handle_failure(s);
        // The failed op was never acknowledged; retried now, it must land.
        ASSERT_TRUE(db.value()->Put(key, value).ok()) << "op " << op;
        shadow[key] = value;
      }
      if (op % 7 == 6) {
        s = db.value()->Flush();
        if (!s.ok()) handle_failure(s);
      }
      if (op == 20) {
        s = db.value()->CompactAll();
        if (!s.ok()) handle_failure(s);
      }
    }
    if (fs->injected_faults() == 0) {
      // The workload has fewer than k eligible ops — sweep exhausted.
      break;
    }
    ++fired_points;
    // One-shot: exactly one fault fired, nothing leaked into later ops.
    EXPECT_EQ(fs->injected_faults(), 1u);
    EXPECT_FALSE(db.value()->degraded());

    VerifyShadow(*db.value(), shadow);
    ASSERT_TRUE(db.value()->Close().ok());
    auto again = ElsmDb::Open(o, fs, platform);
    ASSERT_TRUE(again.ok()) << "walk image at op " << k
                            << " read as attack: " << again.status().ToString();
    auto got = again.value()->GetVerified(Key(7));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value().record.has_value());
    ASSERT_TRUE(again.value()->Put("post-walk", "alive").ok());
    ASSERT_TRUE(again.value()->Flush().ok());
    ASSERT_TRUE(again.value()->Close().ok());
  }
  // The sweep must have exercised a real fault surface, not no-op'd.
  EXPECT_EQ(fired_points, max_k);
}

TEST(FaultToleranceTest, ErrorPointWalkEioOnSim) {
  RunErrorPointWalk("sim", TransientKind::kEIO, 90);
}

TEST(FaultToleranceTest, ErrorPointWalkEnospcOnSim) {
  RunErrorPointWalk("sim", TransientKind::kENOSPC, 90);
}

TEST(FaultToleranceTest, ErrorPointWalkShortWriteOnSim) {
  RunErrorPointWalk("sim", TransientKind::kShortWrite, 90);
}

TEST(FaultToleranceTest, ErrorPointWalkEioOnPosix) {
  RunErrorPointWalk("posix", TransientKind::kEIO, 36);
}

TEST(FaultToleranceTest, ErrorPointWalkEnospcOnPosix) {
  RunErrorPointWalk("posix", TransientKind::kENOSPC, 36);
}

TEST(FaultToleranceTest, ErrorPointWalkShortWriteOnPosix) {
  RunErrorPointWalk("posix", TransientKind::kShortWrite, 24);
}

// --- ENOSPC during growth: degraded mode and resume -------------------------

// The disk fills while the WAL grows: the failing Put returns
// CapacityExceeded, the store degrades to verified read-only, the resume
// probe fails while the disk is still full and succeeds once space is
// back, and the pending data drains on the next flush.
void RunWalGrowthEnospc(const std::string& backend) {
  auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
  test_util::TempDir dir;
  auto fs = std::make_shared<FaultFs>(MakeBase(backend, enclave, dir));
  auto platform = std::make_shared<TrustedPlatform>();
  Options o = FaultOptions();
  o.memtable_bytes = 256 << 10;  // growth happens in the WAL

  std::map<std::string, std::string> shadow;
  auto db = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), "acknowledged").ok());
    shadow[Key(i)] = "acknowledged";
  }

  fs->SetCapacityBudget(UsedBytes(*fs));  // the disk is now exactly full
  Status s = db.value()->Put(Key(100), "doomed");
  ASSERT_TRUE(s.IsCapacityExceeded()) << s.ToString();
  EXPECT_TRUE(db.value()->degraded());

  // Writes fail fast without touching the disk; verified reads serve.
  EXPECT_TRUE(db.value()->Put(Key(101), "x").IsCapacityExceeded());
  EXPECT_TRUE(db.value()->Delete(Key(0)).IsCapacityExceeded());
  ElsmDb::WriteBatch batch;
  batch.Put(Key(102), "x");
  EXPECT_TRUE(db.value()->Write(batch).IsCapacityExceeded());
  VerifyShadow(*db.value(), shadow);
  auto miss = db.value()->Get(Key(100));
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.value().has_value()) << "unacknowledged key visible";

  // Still full: the probe fails and the store stays degraded.
  EXPECT_TRUE(db.value()->TryResume().IsCapacityExceeded());
  EXPECT_TRUE(db.value()->degraded());

  // Space comes back: resume, drain, verify, survive a reopen.
  fs->SetCapacityBudget(0);
  ASSERT_TRUE(db.value()->TryResume().ok());
  EXPECT_FALSE(db.value()->degraded());
  ASSERT_TRUE(db.value()->Put(Key(100), "resumed").ok());
  shadow[Key(100)] = "resumed";
  ASSERT_TRUE(db.value()->Flush().ok());
  VerifyShadow(*db.value(), shadow);
  ASSERT_TRUE(db.value()->Close().ok());
  auto again = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  VerifyShadow(*again.value(), shadow);
}

TEST(FaultToleranceTest, WalGrowthEnospcDegradesAndResumesOnSim) {
  RunWalGrowthEnospc("sim");
}

TEST(FaultToleranceTest, WalGrowthEnospcDegradesAndResumesOnPosix) {
  RunWalGrowthEnospc("posix");
}

// The disk fills while a flush writes its SSTable: the flush fails with
// CapacityExceeded, the memtable and WAL stay intact (every acknowledged
// key still verifies), and after resume the same flush drains cleanly.
void RunFlushEnospc(const std::string& backend) {
  auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
  test_util::TempDir dir;
  auto fs = std::make_shared<FaultFs>(MakeBase(backend, enclave, dir));
  auto platform = std::make_shared<TrustedPlatform>();
  Options o = FaultOptions();
  o.memtable_bytes = 64 << 10;  // no auto-flush: the test drives it

  std::map<std::string, std::string> shadow;
  auto db = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), "pending").ok());
    shadow[Key(i)] = "pending";
  }

  fs->SetCapacityBudget(UsedBytes(*fs));
  Status s = db.value()->Flush();
  ASSERT_TRUE(s.IsCapacityExceeded()) << s.ToString();
  EXPECT_TRUE(db.value()->degraded());
  VerifyShadow(*db.value(), shadow);

  fs->SetCapacityBudget(0);
  ASSERT_TRUE(db.value()->TryResume().ok());
  ASSERT_TRUE(db.value()->Flush().ok());
  VerifyShadow(*db.value(), shadow);
  ASSERT_TRUE(db.value()->Close().ok());
  auto again = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  VerifyShadow(*again.value(), shadow);
}

TEST(FaultToleranceTest, FlushEnospcDegradesAndResumesOnSim) {
  RunFlushEnospc("sim");
}

TEST(FaultToleranceTest, FlushEnospcDegradesAndResumesOnPosix) {
  RunFlushEnospc("posix");
}

// The disk fills while compaction writes its outputs: the pass fails with
// CapacityExceeded and degrades the store, but the pre-compaction file set
// is untouched — every key verifies — and after resume the same compaction
// completes. The budget leaves slack for small appends but not for an
// SSTable-sized output, so the rejection lands on the compaction write.
void RunCompactionEnospc(const std::string& backend) {
  auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
  test_util::TempDir dir;
  auto fs = std::make_shared<FaultFs>(MakeBase(backend, enclave, dir));
  auto platform = std::make_shared<TrustedPlatform>();
  Options o = FaultOptions();
  // Stack each flush as its own level: without the fill-time ripple the
  // explicit CompactAll below has real multi-level merge work, so the
  // budget rejection provably lands on a compaction output write.
  o.compaction_enabled = false;

  std::map<std::string, std::string> shadow;
  auto db = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), "level-data").ok());
    shadow[Key(i)] = "level-data";
  }
  ASSERT_TRUE(db.value()->Flush().ok());

  fs->SetCapacityBudget(UsedBytes(*fs) + 600);
  Status s = db.value()->CompactAll();
  ASSERT_TRUE(s.IsCapacityExceeded()) << s.ToString();
  EXPECT_TRUE(db.value()->degraded());
  VerifyShadow(*db.value(), shadow);

  fs->SetCapacityBudget(0);
  ASSERT_TRUE(db.value()->TryResume().ok());
  ASSERT_TRUE(db.value()->CompactAll().ok());
  VerifyShadow(*db.value(), shadow);
  ASSERT_TRUE(db.value()->Close().ok());
  auto again = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  VerifyShadow(*again.value(), shadow);
}

TEST(FaultToleranceTest, CompactionEnospcDegradesAndResumesOnSim) {
  RunCompactionEnospc("sim");
}

TEST(FaultToleranceTest, CompactionEnospcDegradesAndResumesOnPosix) {
  RunCompactionEnospc("posix");
}

TEST(FaultToleranceTest, CrashWhileDegradedReopensCleanly) {
  // Power fails while the store sits in degraded mode (full disk). The
  // reopen — with space back — must read as a benign crash and recover
  // every acknowledged key; the degraded flag does not outlive the
  // instance (it re-derives from the disk on the next exhaustion).
  auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
  auto fs = std::make_shared<FaultFs>(enclave);
  auto platform = std::make_shared<TrustedPlatform>();
  Options o = FaultOptions();
  o.memtable_bytes = 256 << 10;

  std::map<std::string, std::string> shadow;
  {
    auto db = ElsmDb::Open(o, fs, platform);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "acknowledged").ok());
      shadow[Key(i)] = "acknowledged";
    }
    fs->SetCapacityBudget(UsedBytes(*fs));
    ASSERT_TRUE(db.value()->Put(Key(100), "doomed").IsCapacityExceeded());
    ASSERT_TRUE(db.value()->degraded());
    fs->CrashNow();
    // Power loss: drop without Close().
  }

  fs->ClearCrash();
  fs->SetCapacityBudget(0);
  auto db = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(db.ok()) << "crash-while-degraded read as attack: "
                       << db.status().ToString();
  EXPECT_FALSE(db.value()->degraded());
  VerifyShadow(*db.value(), shadow);
  ASSERT_TRUE(db.value()->Put(Key(100), "post-crash").ok());
  ASSERT_TRUE(db.value()->Flush().ok());
  ASSERT_TRUE(db.value()->Close().ok());
}

// --- ShardedDb per-shard health ---------------------------------------------

TEST(FaultToleranceTest, ShardedDegradedShardIsSkippedAndResumed) {
  constexpr uint32_t kShards = 3;
  auto env = std::make_shared<ShardEnv>();
  std::vector<std::shared_ptr<FaultFs>> faults;
  for (uint32_t i = 0; i < kShards; ++i) {
    auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
    faults.push_back(std::make_shared<FaultFs>(enclave));
    env->shard_fs.push_back(faults.back());
  }
  Options o = FaultOptions();
  o.fanout_threads = 2;

  std::map<std::string, std::string> shadow;
  auto db = ShardedDb::Open(o, kShards, env);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), "seed").ok());
    shadow[Key(i)] = "seed";
  }
  ASSERT_TRUE(db.value()->Flush().ok());
  ASSERT_EQ(db.value()->sick_shards(), 0u);

  // Fill shard 0's disk exactly and push a routed write into it.
  const uint32_t victim = 0;
  faults[victim]->SetCapacityBudget(UsedBytes(*faults[victim]));
  std::string victim_key, healthy_key;
  for (int i = 0; victim_key.empty() || healthy_key.empty(); ++i) {
    const std::string key = Key(1000 + i);
    if (db.value()->ShardOf(key) == victim) {
      if (victim_key.empty()) victim_key = key;
    } else if (healthy_key.empty()) {
      healthy_key = key;
    }
  }
  ASSERT_TRUE(db.value()->Put(victim_key, "doomed").IsCapacityExceeded());
  EXPECT_TRUE(db.value()->shard(victim).degraded());
  EXPECT_EQ(db.value()->shard_health(victim).state,
            ShardedDb::ShardHealth::kDegraded);
  EXPECT_EQ(db.value()->sick_shards(), 1u);

  // Maintenance skips the sick shard and keeps succeeding for the rest.
  const uint64_t skipped_before =
      db.value()->fanout_stats().maintenance_shards_skipped.load();
  ASSERT_TRUE(db.value()->Flush().ok());
  EXPECT_GT(db.value()->fanout_stats().maintenance_shards_skipped.load(),
            skipped_before);

  // Healthy shards accept writes; the sick shard still serves verified
  // reads (fail-closed, not fail-dark).
  ASSERT_TRUE(db.value()->Put(healthy_key, "healthy").ok());
  shadow[healthy_key] = "healthy";
  for (const auto& [key, value] : shadow) {
    if (db.value()->ShardOf(key) != victim) continue;
    auto got = db.value()->GetVerified(key);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value().record.has_value());
    EXPECT_EQ(got.value().record->value, value);
  }

  // Space returns: TryResume re-admits the shard to maintenance.
  faults[victim]->SetCapacityBudget(0);
  ASSERT_TRUE(db.value()->TryResume().ok());
  EXPECT_EQ(db.value()->sick_shards(), 0u);
  EXPECT_EQ(db.value()->shard_health(victim).state,
            ShardedDb::ShardHealth::kHealthy);
  ASSERT_TRUE(db.value()->Put(victim_key, "resumed").ok());
  shadow[victim_key] = "resumed";
  ASSERT_TRUE(db.value()->Flush().ok());
  ASSERT_TRUE(db.value()->Close().ok());

  auto again = ShardedDb::Open(o, kShards, env);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  for (const auto& [key, value] : shadow) {
    auto got = again.value()->GetVerified(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    ASSERT_TRUE(got.value().record.has_value()) << key;
    EXPECT_EQ(got.value().record->value, value) << key;
  }
  ASSERT_TRUE(again.value()->Close().ok());
}

TEST(FaultToleranceTest, ShardedQuarantineAfterRepeatedMaintenanceFailures) {
  constexpr uint32_t kShards = 2;
  auto env = std::make_shared<ShardEnv>();
  std::vector<std::shared_ptr<FaultFs>> faults;
  for (uint32_t i = 0; i < kShards; ++i) {
    auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
    faults.push_back(std::make_shared<FaultFs>(enclave));
    env->shard_fs.push_back(faults.back());
  }
  Options o = FaultOptions();
  o.memtable_bytes = 256 << 10;  // flushes happen only when driven

  auto db = ShardedDb::Open(o, kShards, env);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Seed every shard with pending data so each driven flush has work.
  std::vector<std::string> shard_keys(kShards);
  for (int i = 0; i < 64; ++i) {
    const std::string key = Key(i);
    ASSERT_TRUE(db.value()->Put(key, "pending").ok());
    shard_keys[db.value()->ShardOf(key)] = key;
  }
  for (uint32_t i = 0; i < kShards; ++i) ASSERT_FALSE(shard_keys[i].empty());

  // Shard 0's disk develops a persistent transient storm: every op fails
  // Unavailable, so each maintenance pass exhausts its retries. Not an
  // ENOSPC, so the shard never self-degrades — quarantine is what takes
  // it out of the maintenance rotation.
  const uint32_t victim = 0;
  faults[victim]->SetTransientRate(1.0, 42);
  for (uint64_t i = 1; i <= 3; ++i) {
    Status s = db.value()->Flush();
    ASSERT_TRUE(s.IsTransient()) << s.ToString();
    EXPECT_EQ(db.value()->shard_health(victim).consecutive_failures, i);
  }
  EXPECT_EQ(db.value()->shard_health(victim).state,
            ShardedDb::ShardHealth::kQuarantined);
  EXPECT_EQ(db.value()->sick_shards(), 1u);
  EXPECT_FALSE(db.value()->shard(victim).degraded());

  // The next pass skips the quarantined shard and succeeds: the healthy
  // shard's flush runs, and the super-manifest refresh still records the
  // sick shard's last-known-good state (its manifest never advanced — the
  // quarantined flushes all failed before touching it).
  const uint64_t skipped_before =
      db.value()->fanout_stats().maintenance_shards_skipped.load();
  Status s = db.value()->Flush();
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(db.value()->fanout_stats().maintenance_shards_skipped.load(),
            skipped_before);

  // The storm passes: TryResume clears the quarantine (the shard is not
  // degraded, so its probe is a no-op Ok) and maintenance drains it.
  faults[victim]->SetTransientRate(0.0, 42);
  ASSERT_TRUE(db.value()->TryResume().ok());
  EXPECT_EQ(db.value()->sick_shards(), 0u);
  EXPECT_EQ(db.value()->shard_health(victim).state,
            ShardedDb::ShardHealth::kHealthy);
  ASSERT_TRUE(db.value()->Flush().ok());
  for (uint32_t i = 0; i < kShards; ++i) {
    auto got = db.value()->GetVerified(shard_keys[i]);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value().record.has_value());
    EXPECT_EQ(got.value().record->value, "pending");
  }
  ASSERT_TRUE(db.value()->Close().ok());

  auto again = ShardedDb::Open(o, kShards, env);
  ASSERT_TRUE(again.ok()) << "quarantine history read as attack: "
                          << again.status().ToString();
  ASSERT_TRUE(again.value()->Close().ok());
}

}  // namespace
}  // namespace elsm
