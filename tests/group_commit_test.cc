// Group-commit failure semantics (the tentpole of this PR): concurrent
// writers share one WAL append + one fsync per commit cohort, so these
// tests pin the invariants the amortization must not bend:
//   (a) no writer is ever acknowledged unless its frame is durable — a
//       transient storm or crash mid-cohort may fail writes, but every
//       *acked* write survives recovery on both backends, torn and
//       unsynced-loss modes alike;
//   (b) a failed leader sync fails the whole cohort (shared Status, no
//       partial acks) and the tail-repair discipline truncates the
//       unsynced frames back to the committed boundary;
//   (c) recovery replays at least the acked prefix and nothing that was
//       never attempted — and a parallel-writer run recovers to the same
//       logical state as a sequential replay of the same operations.
// Plus the write-path accounting audits that ride along: stats_.puts /
// stats_.deletes count only acknowledged records (failed_* twins count
// exhausted retries), and the memtable charge/occupancy constants agree
// (kMemtableEntryOverhead).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/retry.h"
#include "elsm/elsm_db.h"
#include "lsm/engine.h"
#include "lsm/record.h"
#include "storage/fault_fs.h"
#include "storage/posix_fs.h"
#include "storage/simfs.h"
#include "temp_dir.h"

namespace elsm {
namespace {

using storage::FaultFs;
using TransientKind = storage::FaultFs::TransientKind;

constexpr int kWriters = 8;

std::shared_ptr<sgx::Enclave> MakeEnclave() {
  return std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
}

std::string Key(int thread, int i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "t%02d-key%05d", thread, i);
  return buf;
}

std::string Value(int thread, int i) {
  return "value-" + std::to_string(thread) + "-" + std::to_string(i);
}

lsm::Record MakeRecord(const std::string& key, const std::string& value,
                       uint64_t ts,
                       lsm::RecordType type = lsm::RecordType::kValue) {
  lsm::Record r;
  r.key = key;
  r.value = value;
  r.ts = ts;
  r.type = type;
  return r;
}

std::shared_ptr<storage::Fs> MakeBase(const std::string& backend,
                                      std::shared_ptr<sgx::Enclave> enclave,
                                      const test_util::TempDir& dir) {
  if (backend == "posix") {
    EXPECT_TRUE(dir.ok());
    return std::make_shared<storage::PosixFs>(std::move(enclave), dir.path());
  }
  return std::make_shared<storage::SimFs>(std::move(enclave));
}

Options SmallOptions() {
  Options o;
  o.mode = Mode::kP2;
  o.memtable_bytes = 4 << 10;
  o.level1_bytes = 16 << 10;
  o.level_ratio = 4;
  o.block_bytes = 1024;
  o.file_bytes = 4 << 10;
  o.manifest_snapshot_edits = 4;
  return o;
}

// Decodes every WAL frame into its record key set.
std::set<std::string> WalKeys(lsm::LsmEngine& engine) {
  auto wal = engine.ReadWalRecords();
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  std::set<std::string> keys;
  for (const std::string& core : wal.value().records) {
    std::string_view cursor(core);
    auto record = lsm::Record::DecodeCore(&cursor);
    EXPECT_TRUE(record.ok());
    keys.insert(record.value().key);
  }
  return keys;
}

// --- write-path accounting audits -------------------------------------------

TEST(GroupCommitTest, MemtableChargeMatchesOccupancy) {
  // Regression for the charge/occupancy mismatch: AccessRegion used to be
  // charged ByteSize()+64 while memtable_used_ advanced ByteSize()+32.
  // Both sides now use kMemtableEntryOverhead; the engine's accounted
  // occupancy must be exactly the sum of per-record footprints.
  auto enclave = MakeEnclave();
  auto fs = std::make_shared<storage::SimFs>(enclave);
  lsm::LsmOptions o;
  o.name = "acct";
  o.memtable_bytes = 1 << 20;  // never flush during the test
  lsm::LsmEngine engine(o, enclave, fs);

  uint64_t expected = 0;
  for (int i = 0; i < 100; ++i) {
    lsm::Record r = MakeRecord(Key(0, i), Value(0, i), uint64_t(i) + 1);
    expected += r.ByteSize() + lsm::kMemtableEntryOverhead;
    ASSERT_TRUE(engine.Put(std::move(r)).ok());
  }
  EXPECT_EQ(engine.memtable_bytes(), expected);

  // Replay-path inserts use the same constant.
  lsm::Record replayed = MakeRecord("replayed", "value", 1000);
  expected += replayed.ByteSize() + lsm::kMemtableEntryOverhead;
  ASSERT_TRUE(engine.ReinsertFromWal(std::move(replayed)).ok());
  EXPECT_EQ(engine.memtable_bytes(), expected);
}

TEST(GroupCommitTest, StatsCountOnlyAcknowledgedWrites) {
  auto enclave = MakeEnclave();
  auto fs = std::make_shared<FaultFs>(enclave);
  lsm::LsmOptions o;
  o.name = "stats";
  o.memtable_bytes = 1 << 20;
  o.sync_writes = true;
  o.io_retry.max_attempts = 1;  // no retry: transient faults surface
  lsm::LsmEngine engine(o, enclave, fs);

  ASSERT_TRUE(engine.Put(MakeRecord("a", "v", 1)).ok());
  ASSERT_TRUE(
      engine.Put(MakeRecord("b", "", 2, lsm::RecordType::kTombstone)).ok());
  EXPECT_EQ(engine.stats().puts, 1u);
  EXPECT_EQ(engine.stats().deletes, 1u);
  EXPECT_EQ(engine.stats().failed_puts, 0u);
  EXPECT_EQ(engine.stats().failed_deletes, 0u);

  // Fail the next WAL append outright: neither counter may move, the
  // failed twins must.
  fs->ScheduleTransient(1, TransientKind::kEIO);
  EXPECT_FALSE(engine.Put(MakeRecord("c", "v", 3)).ok());
  fs->ScheduleTransient(1, TransientKind::kEIO);
  EXPECT_FALSE(
      engine.Put(MakeRecord("d", "", 4, lsm::RecordType::kTombstone)).ok());
  EXPECT_EQ(engine.stats().puts, 1u);
  EXPECT_EQ(engine.stats().deletes, 1u);
  EXPECT_EQ(engine.stats().failed_puts, 1u);
  EXPECT_EQ(engine.stats().failed_deletes, 1u);
}

// --- cohort atomicity (invariant b) -----------------------------------------

TEST(GroupCommitTest, FailedLeaderSyncFailsWholeCohortAndRepairsTail) {
  auto enclave = MakeEnclave();
  auto fs = std::make_shared<FaultFs>(enclave);
  lsm::LsmOptions o;
  o.name = "cohort";
  o.memtable_bytes = 1 << 20;
  o.sync_writes = true;
  o.io_retry.max_attempts = 1;
  lsm::LsmEngine engine(o, enclave, fs);

  // Prime two records (also performs the one-time WAL SyncDir), so every
  // later commit is exactly Append + Sync on the fault-op counter.
  ASSERT_TRUE(engine.Put(MakeRecord("p1", "v", 1)).ok());
  ASSERT_TRUE(engine.Put(MakeRecord("p2", "v", 2)).ok());

  // A batch commits through the same cohort path as queued concurrent
  // writers (one AppendBatch frame group, one Sync). Fault the Sync: the
  // append landed, the barrier did not — the whole cohort must fail and
  // none of its records may be acked.
  fs->ScheduleTransient(2, TransientKind::kEIO);  // op1=Append, op2=Sync
  std::vector<lsm::Record> batch;
  batch.push_back(MakeRecord("c1", "v", 3));
  batch.push_back(MakeRecord("c2", "v", 4));
  batch.push_back(MakeRecord("c3", "v", 5));
  Status s = engine.PutBatch(std::move(batch));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(engine.stats().puts, 2u);
  EXPECT_EQ(engine.stats().failed_puts, 3u);
  for (const char* key : {"c1", "c2", "c3"}) {
    auto resp = engine.Get(key, UINT64_MAX);
    ASSERT_TRUE(resp.ok());
    EXPECT_FALSE(resp.value().memtable_hit.has_value())
        << key << " acked out of a failed cohort";
  }

  // The next write repairs the tail first: the unsynced cohort's frames
  // are truncated back to the committed boundary before the new frame
  // lands, so no acknowledged frame ever sits behind orphan bytes.
  ASSERT_TRUE(engine.Put(MakeRecord("after", "v", 6)).ok());
  EXPECT_GE(engine.stats().wal_tail_repairs.load(), 1u);
  const std::set<std::string> keys = WalKeys(engine);
  EXPECT_EQ(keys, (std::set<std::string>{"p1", "p2", "after"}));
}

// --- concurrent writers, engine level (invariant a) -------------------------

TEST(GroupCommitTest, ConcurrentWritersSurviveTransientStorm) {
  auto enclave = MakeEnclave();
  auto fs = std::make_shared<FaultFs>(enclave);
  lsm::LsmOptions o;
  o.name = "storm";
  o.memtable_bytes = 8 << 20;  // keep everything in the WAL + memtable
  o.sync_writes = true;
  o.wal_sync_interval_us = 100;
  o.io_retry.max_attempts = 1;  // every injected blip surfaces as a failure
  lsm::LsmEngine engine(o, enclave, fs);
  fs->SetTransientRate(0.05, /*seed=*/0xC0FFEE);

  constexpr int kPerThread = 64;
  std::mutex acked_mu;
  std::set<std::string> acked;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string key = Key(t, i);
        const uint64_t ts = uint64_t(t) * kPerThread + i + 1;
        if (engine.Put(MakeRecord(key, Value(t, i), ts)).ok()) {
          std::lock_guard<std::mutex> lock(acked_mu);
          acked.insert(key);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  fs->SetTransientRate(0.0, 0);

  // One clean commit repairs any dirty tail left by a failed final cohort.
  ASSERT_TRUE(engine.Put(MakeRecord("zz-final", "v", 100000)).ok());

  // Every acknowledged write has a durable WAL frame; nothing that was
  // never attempted appears.
  const std::set<std::string> wal_keys = WalKeys(engine);
  for (const std::string& key : acked) {
    EXPECT_TRUE(wal_keys.count(key)) << "acked write lost from WAL: " << key;
  }
  for (const std::string& key : wal_keys) {
    if (key == "zz-final") continue;
    EXPECT_EQ(key.size(), Key(0, 0).size()) << "foreign WAL frame: " << key;
  }
  // Acked-only accounting holds under concurrency + failures.
  EXPECT_EQ(engine.stats().puts, acked.size() + 1);
  EXPECT_EQ(engine.stats().puts + engine.stats().failed_puts,
            uint64_t(kWriters) * kPerThread + 1);
}

// --- facade: parallel writers vs sequential replay (invariant c) ------------

class GroupCommitBackendTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GroupCommitBackendTest, ParallelWritersMatchSequentialReplay) {
  const std::string backend = GetParam();
  constexpr int kPerThread = 40;

  // Parallel store: 8 writer threads, lingering leader.
  test_util::TempDir par_dir;
  Options o = SmallOptions();
  o.wal_sync_interval_us = 200;
  auto platform = std::make_shared<TrustedPlatform>();
  auto fs = std::make_shared<FaultFs>(
      MakeBase(backend, MakeEnclave(), par_dir));
  auto db = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kWriters; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          ASSERT_TRUE(db.value()->Put(Key(t, i), Value(t, i)).ok());
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  ASSERT_TRUE(db.value()->Close().ok());

  // Sequential store: the same logical operations, one thread.
  test_util::TempDir seq_dir;
  auto seq_platform = std::make_shared<TrustedPlatform>();
  auto seq_fs = std::make_shared<FaultFs>(
      MakeBase(backend, MakeEnclave(), seq_dir));
  auto seq = ElsmDb::Open(SmallOptions(), seq_fs, seq_platform);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  for (int t = 0; t < kWriters; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      ASSERT_TRUE(seq.value()->Put(Key(t, i), Value(t, i)).ok());
    }
  }
  ASSERT_TRUE(seq.value()->Close().ok());

  // Both recover; the recovered logical state (key and value bytes of a
  // full verified scan) must be identical.
  auto par_again = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(par_again.ok()) << par_again.status().ToString();
  auto seq_again = ElsmDb::Open(SmallOptions(), seq_fs, seq_platform);
  ASSERT_TRUE(seq_again.ok()) << seq_again.status().ToString();
  auto par_scan = par_again.value()->Scan(Key(0, 0), "t99");
  auto seq_scan = seq_again.value()->Scan(Key(0, 0), "t99");
  ASSERT_TRUE(par_scan.ok()) << par_scan.status().ToString();
  ASSERT_TRUE(seq_scan.ok()) << seq_scan.status().ToString();
  ASSERT_EQ(par_scan.value().size(), seq_scan.value().size());
  ASSERT_EQ(par_scan.value().size(), size_t(kWriters) * kPerThread);
  for (size_t i = 0; i < par_scan.value().size(); ++i) {
    EXPECT_EQ(par_scan.value()[i].key, seq_scan.value()[i].key);
    EXPECT_EQ(par_scan.value()[i].value, seq_scan.value()[i].value);
  }
  ASSERT_TRUE(par_again.value()->Close().ok());
  ASSERT_TRUE(seq_again.value()->Close().ok());
}

TEST_P(GroupCommitBackendTest, TransientStormNeverLosesAcknowledgedWrites) {
  const std::string backend = GetParam();
  constexpr int kPerThread = 32;
  test_util::TempDir dir;
  Options o = SmallOptions();
  o.wal_sync_interval_us = 100;
  auto platform = std::make_shared<TrustedPlatform>();
  auto fs = std::make_shared<FaultFs>(MakeBase(backend, MakeEnclave(), dir));
  auto db = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  fs->SetTransientRate(0.03, /*seed=*/0xFEED + (backend == "posix"));
  std::mutex acked_mu;
  std::map<std::string, std::string> acked;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Writes may fail mid-storm (the default retry policy is bypassed
        // by raising the blip rate above what it can always absorb); only
        // acknowledged ones enter the shadow.
        if (db.value()->Put(Key(t, i), Value(t, i)).ok()) {
          std::lock_guard<std::mutex> lock(acked_mu);
          acked.emplace(Key(t, i), Value(t, i));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  fs->SetTransientRate(0.0, 0);

  // Every acknowledged write must read back verified, live...
  for (const auto& [key, value] : acked) {
    auto got = db.value()->GetVerified(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    ASSERT_TRUE(got.value().record.has_value()) << "lost acked key " << key;
    EXPECT_EQ(got.value().record->value, value);
  }
  ASSERT_TRUE(db.value()->Close().ok());

  // ...and across recovery.
  auto again = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  for (const auto& [key, value] : acked) {
    auto got = again.value()->GetVerified(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    ASSERT_TRUE(got.value().record.has_value())
        << "acked key lost across recovery: " << key;
    EXPECT_EQ(got.value().record->value, value);
  }
  ASSERT_TRUE(again.value()->Close().ok());
}

TEST_P(GroupCommitBackendTest, CrashWalkRecoversAckedPrefix) {
  const std::string backend = GetParam();
  // Enough records that the fs-op walk always reaches the deepest crash
  // point: group commit packs ~8 records per 2 fs ops (append + sync), so
  // 8x96 records still guarantee >127 ops even with perfect cohorts.
  constexpr int kPerThread = 96;
  // Sweep the crash point through the concurrent commit path, in both
  // battery-backed (torn-op only) and strict unsynced-loss modes.
  for (const bool unsynced_loss : {false, true}) {
    for (const uint64_t crash_at : {7u, 23u, 61u, 127u}) {
      test_util::TempDir dir;
      Options o = SmallOptions();
      o.wal_sync_interval_us = 100;
      auto platform = std::make_shared<TrustedPlatform>();
      auto fs =
          std::make_shared<FaultFs>(MakeBase(backend, MakeEnclave(), dir));
      if (unsynced_loss) fs->EnableUnsyncedLoss();
      {
        auto db = ElsmDb::Open(o, fs, platform);
        ASSERT_TRUE(db.ok()) << db.status().ToString();
        fs->ScheduleCrash(crash_at, /*keep_fraction=*/0.5);
        std::mutex acked_mu;
        std::map<std::string, std::string> acked;
        std::vector<std::thread> threads;
        for (int t = 0; t < kWriters; ++t) {
          threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
              if (db.value()->Put(Key(t, i), Value(t, i)).ok()) {
                std::lock_guard<std::mutex> lock(acked_mu);
                acked.emplace(Key(t, i), Value(t, i));
              }
            }
          });
        }
        for (auto& th : threads) th.join();
        EXPECT_TRUE(fs->crashed());

        // Power back on over the (torn) image: every write acknowledged
        // before the crash must be there, verified.
        fs->ClearCrash();
        auto again = ElsmDb::Open(o, fs, platform);
        ASSERT_TRUE(again.ok())
            << backend << " unsynced=" << unsynced_loss
            << " crash_at=" << crash_at
            << ": recovery rejected a benign crash image: "
            << again.status().ToString();
        for (const auto& [key, value] : acked) {
          auto got = again.value()->GetVerified(key);
          ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
          ASSERT_TRUE(got.value().record.has_value())
              << backend << " unsynced=" << unsynced_loss
              << " crash_at=" << crash_at
              << ": lost acknowledged key " << key;
          EXPECT_EQ(got.value().record->value, value);
        }
        // Nothing the workload never wrote may appear.
        auto scanned = again.value()->Scan(Key(0, 0), "t99");
        ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
        for (const auto& r : scanned.value()) {
          EXPECT_EQ(r.value, "value-" + std::to_string(r.key[2] - '0') +
                                 "-" + std::to_string(std::stoi(
                                           r.key.substr(7))))
              << "foreign record " << r.key;
        }
        ASSERT_TRUE(again.value()->Close().ok());
      }
    }
  }
}

TEST_P(GroupCommitBackendTest, AsyncFlushKeepsWritersOffTheFlushPath) {
  const std::string backend = GetParam();
  constexpr int kPerThread = 64;
  test_util::TempDir dir;
  Options o = SmallOptions();
  o.memtable_bytes = 2 << 10;  // force many seals during the workload
  o.max_wal_bytes = 32 << 10;  // and at least one truncating full flush
  o.async_flush = true;
  o.wal_sync_interval_us = 100;
  auto platform = std::make_shared<TrustedPlatform>();
  auto fs = std::make_shared<FaultFs>(MakeBase(backend, MakeEnclave(), dir));
  auto db = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(db.value()->Put(Key(t, i), Value(t, i)).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(db.value()->WaitForFlush().ok());

  // Reads see every write while part of the data sits in the sealed /
  // flushed runs and part in the active memtable.
  for (int t = 0; t < kWriters; ++t) {
    for (int i = 0; i < kPerThread; i += 7) {
      auto got = db.value()->GetVerified(Key(t, i));
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_TRUE(got.value().record.has_value()) << Key(t, i);
      EXPECT_EQ(got.value().record->value, Value(t, i));
    }
  }
  ASSERT_TRUE(db.value()->Close().ok());

  // Async-flushed manifests persist the *live* WAL digest; recovery must
  // accept the chain and replay the un-flushed suffix.
  auto again = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  for (int t = 0; t < kWriters; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      auto got = again.value()->GetVerified(Key(t, i));
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_TRUE(got.value().record.has_value())
          << "lost across async-flush recovery: " << Key(t, i);
      EXPECT_EQ(got.value().record->value, Value(t, i));
    }
  }
  ASSERT_TRUE(again.value()->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(Backends, GroupCommitBackendTest,
                         ::testing::Values("sim", "posix"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace elsm
