// LSM substrate tests: record codec, skiplist ordering/visibility, bloom
// filter properties, SSTable build/parse, level metadata codec, and engine
// behaviours (flush, ripple compaction, tombstone purge, listener hooks).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "lsm/bloom.h"
#include "lsm/engine.h"
#include "lsm/record.h"
#include "lsm/skiplist.h"
#include "lsm/sstable.h"
#include "lsm/version.h"
#include "storage/simfs.h"

namespace elsm::lsm {
namespace {

std::shared_ptr<sgx::Enclave> MakeEnclave() {
  return std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
}

Record MakeRecord(const std::string& key, const std::string& value,
                  uint64_t ts, RecordType type = RecordType::kValue) {
  Record r;
  r.key = key;
  r.value = value;
  r.ts = ts;
  r.type = type;
  return r;
}

TEST(RecordTest, EncodeDecodeRoundTrip) {
  const Record r = MakeRecord("key\x00with-nul", std::string(300, 'v'), 42);
  std::string encoded = r.EncodeCore();
  std::string_view cursor(encoded);
  auto decoded = Record::DecodeCore(&cursor);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(cursor.empty());
  EXPECT_EQ(decoded.value(), r);
}

TEST(RecordTest, TombstoneRoundTrip) {
  const Record r = MakeRecord("k", "", 7, RecordType::kTombstone);
  std::string encoded = r.EncodeCore();
  std::string_view cursor(encoded);
  auto decoded = Record::DecodeCore(&cursor);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().deleted());
}

TEST(RecordTest, DecodeRejectsGarbage) {
  std::string_view garbage("\xff\xff\xff\xff");
  EXPECT_FALSE(Record::DecodeCore(&garbage).ok());
  std::string_view empty;
  EXPECT_FALSE(Record::DecodeCore(&empty).ok());
}

TEST(RecordTest, InternalOrderingKeyAscTsDesc) {
  InternalKeyLess less;
  EXPECT_TRUE(less(MakeRecord("a", "", 1), MakeRecord("b", "", 9)));
  EXPECT_TRUE(less(MakeRecord("a", "", 9), MakeRecord("a", "", 1)));
  EXPECT_FALSE(less(MakeRecord("a", "", 1), MakeRecord("a", "", 9)));
}

TEST(SkipListTest, InsertAndFindNewest) {
  SkipList list;
  list.Insert(MakeRecord("k", "v1", 1));
  list.Insert(MakeRecord("k", "v2", 2));
  list.Insert(MakeRecord("k", "v3", 3));
  const Record* r = list.Find("k", UINT64_MAX);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->value, "v3");
}

TEST(SkipListTest, TimeTravelVisibility) {
  SkipList list;
  for (uint64_t ts = 1; ts <= 10; ++ts) {
    list.Insert(MakeRecord("k", "v" + std::to_string(ts), ts));
  }
  for (uint64_t ts = 1; ts <= 10; ++ts) {
    const Record* r = list.Find("k", ts);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->value, "v" + std::to_string(ts));
  }
  EXPECT_EQ(list.Find("k", 0), nullptr);
}

TEST(SkipListTest, IteratorYieldsSortedOrder) {
  SkipList list;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    list.Insert(MakeRecord("key" + std::to_string(rng.Uniform(100)), "v",
                           uint64_t(i + 1)));
  }
  InternalKeyLess less;
  int count = 0;
  const Record* prev = nullptr;
  for (auto it = list.NewIterator(); it.Valid(); it.Next()) {
    if (prev != nullptr) {
      EXPECT_TRUE(less(*prev, it.record()));
    }
    prev = &it.record();
    ++count;
  }
  EXPECT_EQ(count, 500);
}

TEST(SkipListTest, FindMissingKey) {
  SkipList list;
  list.Insert(MakeRecord("b", "v", 1));
  EXPECT_EQ(list.Find("a", UINT64_MAX), nullptr);
  EXPECT_EQ(list.Find("c", UINT64_MAX), nullptr);
}

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter bloom(10, 2000);
  for (int i = 0; i < 2000; ++i) bloom.Add("key" + std::to_string(i));
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(bloom.MayContain("key" + std::to_string(i))) << i;
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilter bloom(10, 2000);
  for (int i = 0; i < 2000; ++i) bloom.Add("key" + std::to_string(i));
  int fps = 0;
  for (int i = 0; i < 10000; ++i) {
    if (bloom.MayContain("absent" + std::to_string(i))) ++fps;
  }
  EXPECT_LT(fps, 300);  // ~1% expected at 10 bits/key; generous bound
}

TEST(BloomTest, EmptyFilterRejectsEverything) {
  BloomFilter bloom;
  EXPECT_FALSE(bloom.MayContain("anything"));
}

TEST(BloomTest, EncodeDecodeRoundTrip) {
  BloomFilter bloom(10, 100);
  for (int i = 0; i < 100; ++i) bloom.Add("k" + std::to_string(i));
  BloomFilter decoded = BloomFilter::Decode(bloom.Encode());
  EXPECT_EQ(decoded.key_count(), bloom.key_count());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(decoded.MayContain("k" + std::to_string(i)));
  }
}

TEST(SSTableTest, BuildAndParseBlocks) {
  SSTableBuilder builder(256);
  for (int i = 0; i < 100; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i);
    builder.Add(MakeRecord(key, "value" + std::to_string(i), uint64_t(i + 1)),
                "proof" + std::to_string(i));
  }
  FileMeta meta;
  const std::string image = builder.Finish(&meta);
  EXPECT_EQ(meta.num_records, 100u);
  EXPECT_GT(meta.blocks.size(), 1u);
  EXPECT_EQ(meta.smallest, "k0000");
  EXPECT_EQ(meta.largest, "k0099");

  size_t total = 0;
  for (const BlockHandle& block : meta.blocks) {
    auto entries = ParseBlock(
        std::string_view(image).substr(block.offset, block.size));
    ASSERT_TRUE(entries.ok());
    EXPECT_EQ(entries.value().size(), block.num_entries);
    EXPECT_EQ(entries.value().front().record.key, block.first_key);
    total += entries.value().size();
  }
  EXPECT_EQ(total, 100u);
}

TEST(SSTableTest, GroupsNeverStraddleBlocks) {
  SSTableBuilder builder(128);  // tiny blocks force splits
  for (int g = 0; g < 30; ++g) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", g);
    for (int v = 5; v >= 1; --v) {  // 5 versions, newest first
      builder.Add(MakeRecord(key, std::string(20, 'v'), uint64_t(v)), "");
    }
  }
  FileMeta meta;
  const std::string image = builder.Finish(&meta);
  for (const BlockHandle& block : meta.blocks) {
    auto entries = ParseBlock(
        std::string_view(image).substr(block.offset, block.size));
    ASSERT_TRUE(entries.ok());
    // Each block must start at a group head: first entry's key differs from
    // the previous block's last key (checked via first_key monotonicity)
    // and contains all 5 versions of every key it includes.
    std::map<std::string, int> counts;
    for (const RawEntry& e : entries.value()) ++counts[e.record.key];
    for (const auto& [k, c] : counts) EXPECT_EQ(c, 5) << k;
  }
}

TEST(SSTableTest, BlockMacDetectsTamper) {
  SSTableBuilder builder(4096, "mac-key");
  builder.Add(MakeRecord("a", "v", 1), "");
  FileMeta meta;
  std::string image = builder.Finish(&meta);
  ASSERT_EQ(meta.blocks.size(), 1u);
  EXPECT_TRUE(
      VerifyBlockMac(image, "mac-key", meta.blocks[0].mac).ok());
  image[3] ^= 1;
  EXPECT_TRUE(VerifyBlockMac(image, "mac-key", meta.blocks[0].mac)
                  .IsAuthFailure());
}

TEST(SSTableTest, ParseRejectsTruncatedBlock) {
  SSTableBuilder builder(4096);
  builder.Add(MakeRecord("a", "value", 1), "proof");
  FileMeta meta;
  const std::string image = builder.Finish(&meta);
  EXPECT_FALSE(ParseBlock(std::string_view(image).substr(0, 5)).ok());
}

TEST(VersionTest, LevelMetaEncodeDecodeRoundTrip) {
  LevelMeta level;
  level.num_records = 1234;
  level.bytes = 99999;
  level.leaf_count = 777;
  level.root = crypto::Sha256::Digest("root");
  level.tree_file = "db/000009.tree";
  level.bloom = BloomFilter(10, 100);
  level.bloom.Add("hello");
  FileMeta f;
  f.name = "db/000007.sst";
  f.smallest = "aaa";
  f.largest = "zzz";
  f.size = 4096;
  f.num_records = 10;
  BlockHandle b;
  b.offset = 0;
  b.size = 4096;
  b.num_entries = 10;
  b.first_key = "aaa";
  b.mac = crypto::Sha256::Digest("mac");
  f.blocks.push_back(b);
  level.files.push_back(f);

  const std::string encoded = EncodeLevels({level});
  auto decoded = DecodeLevels(encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), 1u);
  const LevelMeta& out = decoded.value()[0];
  EXPECT_EQ(out.num_records, 1234u);
  EXPECT_EQ(out.leaf_count, 777u);
  EXPECT_EQ(out.root, level.root);
  EXPECT_EQ(out.tree_file, "db/000009.tree");
  ASSERT_EQ(out.files.size(), 1u);
  EXPECT_EQ(out.files[0].name, "db/000007.sst");
  ASSERT_EQ(out.files[0].blocks.size(), 1u);
  EXPECT_EQ(out.files[0].blocks[0].first_key, "aaa");
  EXPECT_TRUE(out.bloom.MayContain("hello"));
}

TEST(VersionTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeLevels("nonsense-bytes").ok());
}

// ---------------------------------------------------------------------------
// Engine-level behaviour.
// ---------------------------------------------------------------------------

LsmOptions SmallEngineOptions() {
  LsmOptions o;
  o.name = "t";
  o.memtable_bytes = 2 << 10;
  o.level1_bytes = 8 << 10;
  o.level_ratio = 4;
  o.block_bytes = 1024;
  o.file_bytes = 4 << 10;
  return o;
}

struct EngineHarness {
  std::shared_ptr<sgx::Enclave> enclave = MakeEnclave();
  std::shared_ptr<storage::SimFs> fs =
      std::make_shared<storage::SimFs>(enclave);
  LsmEngine engine;

  explicit EngineHarness(LsmOptions o = SmallEngineOptions())
      : engine(o, enclave, fs) {}

  void Fill(int n, uint64_t ts_base = 1, const char* tag = "v") {
    for (int i = 0; i < n; ++i) {
      char key[16];
      std::snprintf(key, sizeof(key), "k%05d", i);
      ASSERT_TRUE(engine
                      .Put(MakeRecord(key, tag + std::to_string(i),
                                      ts_base + uint64_t(i)))
                      .ok());
    }
  }
};

TEST(EngineTest, FlushCreatesLevelAndGetFinds) {
  EngineHarness h;
  h.Fill(100);
  ASSERT_TRUE(h.engine.Flush().ok());
  EXPECT_EQ(h.engine.memtable_entries(), 0u);
  ASSERT_EQ(h.engine.levels().size(), 1u);
  auto resp = h.engine.Get("k00042", UINT64_MAX);
  ASSERT_TRUE(resp.ok());
  ASSERT_FALSE(resp.value().levels.empty());
  EXPECT_TRUE(resp.value().levels.back().found);
  EXPECT_EQ(resp.value().levels.back().chain.back().record.value, "v42");
}

TEST(EngineTest, MemtableHitStopsSearch) {
  EngineHarness h;
  h.Fill(10);
  auto resp = h.engine.Get("k00003", UINT64_MAX);
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp.value().memtable_hit.has_value());
  EXPECT_TRUE(resp.value().levels.empty());
}

TEST(EngineTest, RippleCompactionRespectsCapacities) {
  EngineHarness h;
  // Push enough data through flush+compact cycles to build several levels.
  for (int round = 0; round < 30; ++round) {
    h.Fill(20, uint64_t(round) * 1000 + 1, ("r" + std::to_string(round)).c_str());
    ASSERT_TRUE(h.engine.Flush().ok());
    ASSERT_TRUE(h.engine.MaybeCompact().ok());
  }
  ASSERT_GE(h.engine.levels().size(), 2u);
  // No level (except possibly the deepest) exceeds its capacity.
  for (size_t i = 0; i + 1 < h.engine.levels().size(); ++i) {
    uint64_t cap = SmallEngineOptions().level1_bytes;
    for (size_t j = 0; j < i; ++j) cap *= SmallEngineOptions().level_ratio;
    EXPECT_LE(h.engine.levels()[i].bytes, cap) << "level " << i;
  }
  // Newest round's data wins.
  auto resp = h.engine.Get("k00007", UINT64_MAX);
  ASSERT_TRUE(resp.ok());
  bool found = resp.value().memtable_hit.has_value();
  std::string value = found ? resp.value().memtable_hit->value : "";
  for (const auto& lr : resp.value().levels) {
    if (lr.found) {
      found = true;
      value = lr.chain.back().record.value;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_EQ(value, "r297");
}

TEST(EngineTest, TombstonePurgedAtBottomOnly) {
  EngineHarness h;
  h.Fill(50);
  ASSERT_TRUE(h.engine.Flush().ok());
  ASSERT_TRUE(h.engine.Put(MakeRecord("k00010", "", 1000,
                                      RecordType::kTombstone))
                  .ok());
  ASSERT_TRUE(h.engine.Flush().ok());
  ASSERT_TRUE(h.engine.CompactAll().ok());
  // After merging to the bottom, neither the tombstone nor the old record
  // remains.
  uint64_t total = 0;
  for (const auto& level : h.engine.levels()) total += level.num_records;
  EXPECT_EQ(total, 49u);
}

TEST(EngineTest, ScanCoversRangeAndBoundaries) {
  EngineHarness h;
  h.Fill(100);
  ASSERT_TRUE(h.engine.Flush().ok());
  auto resp = h.engine.Scan("k00010", "k00020");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp.value().levels.size(), 1u);
  const LevelScanResult& lr = resp.value().levels[0];
  EXPECT_EQ(lr.heads.size(), 11u);
  ASSERT_TRUE(lr.pred.has_value());
  EXPECT_EQ(lr.pred->record.key, "k00009");
  ASSERT_TRUE(lr.succ.has_value());
  EXPECT_EQ(lr.succ->record.key, "k00021");
}

TEST(EngineTest, ScanAtEdgesOmitsBoundaries) {
  EngineHarness h;
  h.Fill(20);
  ASSERT_TRUE(h.engine.Flush().ok());
  auto resp = h.engine.Scan("k00000", "k00019");
  ASSERT_TRUE(resp.ok());
  const LevelScanResult& lr = resp.value().levels[0];
  EXPECT_EQ(lr.heads.size(), 20u);
  EXPECT_FALSE(lr.pred.has_value());
  EXPECT_FALSE(lr.succ.has_value());
}

TEST(EngineTest, NonMembershipBracketsGap) {
  EngineHarness h;
  // Keys k00000, k00002, ... even only.
  for (int i = 0; i < 50; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", 2 * i);
    ASSERT_TRUE(h.engine.Put(MakeRecord(key, "v", uint64_t(i + 1))).ok());
  }
  ASSERT_TRUE(h.engine.Flush().ok());
  auto resp = h.engine.Get("k00013", UINT64_MAX);
  ASSERT_TRUE(resp.ok());
  const LevelGetResult& lr = resp.value().levels.back();
  EXPECT_FALSE(lr.found);
  if (!lr.bloom_negative) {
    ASSERT_TRUE(lr.pred.has_value());
    EXPECT_EQ(lr.pred->record.key, "k00012");
    ASSERT_TRUE(lr.succ.has_value());
    EXPECT_EQ(lr.succ->record.key, "k00014");
  }
}

TEST(EngineTest, ListenerSealInstalledOnLevels) {
  struct CountingListener : CompactionListener {
    int input_runs = 0;
    int outputs = 0;
    Status OnInputRun(int, const std::vector<RawEntry>&,
                      const LevelMeta*) override {
      ++input_runs;
      return Status::Ok();
    }
    Result<CompactionSeal> OnOutput(
        const std::vector<Record>& output) override {
      ++outputs;
      CompactionSeal seal;
      seal.root = crypto::Sha256::Digest("sealed");
      seal.leaf_count = output.size();
      return seal;
    }
  };
  EngineHarness h;
  CountingListener listener;
  h.engine.SetListener(&listener);
  h.Fill(50);
  ASSERT_TRUE(h.engine.Flush().ok());
  EXPECT_GE(listener.input_runs, 1);
  EXPECT_EQ(listener.outputs, 1);
  EXPECT_EQ(h.engine.levels()[0].root, crypto::Sha256::Digest("sealed"));
  EXPECT_EQ(h.engine.levels()[0].leaf_count,
            h.engine.levels()[0].num_records);
}

TEST(EngineTest, ListenerFailureAbortsCompaction) {
  struct RejectingListener : CompactionListener {
    Result<CompactionSeal> OnOutput(const std::vector<Record>&) override {
      return Status::AuthFailure("no");
    }
  };
  EngineHarness h;
  RejectingListener listener;
  h.engine.SetListener(&listener);
  h.Fill(10);
  EXPECT_TRUE(h.engine.Flush().IsAuthFailure());
}

TEST(EngineTest, ManifestRoundTripRestoresLevels) {
  EngineHarness h;
  h.Fill(200);
  ASSERT_TRUE(h.engine.Flush().ok());
  ASSERT_TRUE(h.engine.MaybeCompact().ok());
  const std::string manifest = h.engine.EncodeManifest();

  LsmEngine restored(SmallEngineOptions(), h.enclave, h.fs);
  ASSERT_TRUE(restored.RestoreManifest(manifest).ok());
  ASSERT_EQ(restored.levels().size(), h.engine.levels().size());
  auto resp = restored.Get("k00123", UINT64_MAX);
  ASSERT_TRUE(resp.ok());
  bool found = false;
  for (const auto& lr : resp.value().levels) found |= lr.found;
  EXPECT_TRUE(found);
}

TEST(EngineTest, BufferReadPathWorks) {
  LsmOptions o = SmallEngineOptions();
  o.read_path = ReadPathKind::kBuffer;
  o.read_buffer_bytes = 16 << 10;
  EngineHarness h(o);
  h.Fill(200);
  ASSERT_TRUE(h.engine.Flush().ok());
  for (int i = 0; i < 200; i += 13) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i);
    auto resp = h.engine.Get(key, UINT64_MAX);
    ASSERT_TRUE(resp.ok());
    bool found = false;
    for (const auto& lr : resp.value().levels) found |= lr.found;
    EXPECT_TRUE(found) << key;
  }
}

TEST(EngineTest, StatsAccumulate) {
  EngineHarness h;
  h.Fill(50);
  ASSERT_TRUE(h.engine.Flush().ok());
  (void)h.engine.Get("k00001", UINT64_MAX);
  (void)h.engine.Scan("k00001", "k00005");
  EXPECT_EQ(h.engine.stats().puts, 50u);
  EXPECT_EQ(h.engine.stats().flushes, 1u);
  EXPECT_EQ(h.engine.stats().gets, 1u);
  EXPECT_EQ(h.engine.stats().scans, 1u);
}

}  // namespace
}  // namespace elsm::lsm
