// Merkle tree tests: membership paths and range proofs across a sweep of
// tree sizes (property-style via TEST_P), adjacency semantics, tamper and
// malformed-proof rejection, and wire-format round trips.
#include <gtest/gtest.h>

#include <vector>

#include "crypto/merkle.h"

namespace elsm::crypto {
namespace {

std::vector<Hash256> MakeLeaves(uint64_t n) {
  std::vector<Hash256> leaves;
  leaves.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256::Digest("leaf-" + std::to_string(i)));
  }
  return leaves;
}

class MerkleSizeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MerkleSizeTest, EveryPathVerifies) {
  const uint64_t n = GetParam();
  MerkleTree tree(MakeLeaves(n));
  for (uint64_t i = 0; i < n; ++i) {
    const MerklePath path = tree.Path(i);
    EXPECT_TRUE(MerkleTree::VerifyPath(tree.leaf(i), path, n, tree.root())
                    .ok())
        << "n=" << n << " i=" << i;
  }
}

TEST_P(MerkleSizeTest, WrongLeafFailsEveryPath) {
  const uint64_t n = GetParam();
  MerkleTree tree(MakeLeaves(n));
  const Hash256 wrong = Sha256::Digest("not-a-leaf");
  for (uint64_t i = 0; i < n; i += (n / 7 + 1)) {
    EXPECT_FALSE(
        MerkleTree::VerifyPath(wrong, tree.Path(i), n, tree.root()).ok());
  }
}

TEST_P(MerkleSizeTest, AllRangesVerify) {
  const uint64_t n = GetParam();
  if (n > 64) GTEST_SKIP() << "quadratic sweep bounded to small trees";
  MerkleTree tree(MakeLeaves(n));
  for (uint64_t lo = 0; lo < n; ++lo) {
    for (uint64_t hi = lo; hi < n; ++hi) {
      std::vector<Hash256> run;
      for (uint64_t i = lo; i <= hi; ++i) run.push_back(tree.leaf(i));
      const MerkleRangeProof proof = tree.RangeProof(lo, hi);
      EXPECT_TRUE(
          MerkleTree::VerifyRange(run, proof, n, tree.root()).ok())
          << "n=" << n << " [" << lo << "," << hi << "]";
    }
  }
}

TEST_P(MerkleSizeTest, RangeWithAlteredLeafFails) {
  const uint64_t n = GetParam();
  MerkleTree tree(MakeLeaves(n));
  const uint64_t lo = 0;
  const uint64_t hi = n - 1 < 5 ? n - 1 : 5;
  std::vector<Hash256> run;
  for (uint64_t i = lo; i <= hi; ++i) run.push_back(tree.leaf(i));
  run[run.size() / 2][0] ^= 1;
  EXPECT_FALSE(MerkleTree::VerifyRange(run, tree.RangeProof(lo, hi), n,
                                       tree.root())
                   .ok());
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                           31, 33, 64, 100, 255, 256, 257,
                                           1000));

TEST(MerkleTest, EmptyTreeHasZeroRoot) {
  MerkleTree tree({});
  EXPECT_EQ(tree.root(), kZeroHash);
  EXPECT_EQ(tree.leaf_count(), 0u);
}

TEST(MerkleTest, SingleLeafRootIsLeaf) {
  auto leaves = MakeLeaves(1);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), leaves[0]);
  EXPECT_TRUE(tree.Path(0).siblings.empty());
}

TEST(MerkleTest, RootChangesWithAnyLeaf) {
  auto leaves = MakeLeaves(10);
  MerkleTree tree(leaves);
  for (int i = 0; i < 10; ++i) {
    auto mutated = leaves;
    mutated[size_t(i)][5] ^= 0x10;
    EXPECT_NE(MerkleTree(mutated).root(), tree.root()) << i;
  }
}

TEST(MerkleTest, PathAgainstWrongIndexFails) {
  MerkleTree tree(MakeLeaves(16));
  MerklePath path = tree.Path(5);
  path.leaf_index = 6;
  EXPECT_FALSE(
      MerkleTree::VerifyPath(tree.leaf(5), path, 16, tree.root()).ok());
}

TEST(MerkleTest, TruncatedPathFails) {
  MerkleTree tree(MakeLeaves(16));
  MerklePath path = tree.Path(5);
  path.siblings.pop_back();
  EXPECT_FALSE(
      MerkleTree::VerifyPath(tree.leaf(5), path, 16, tree.root()).ok());
}

TEST(MerkleTest, OverlongPathFails) {
  MerkleTree tree(MakeLeaves(16));
  MerklePath path = tree.Path(5);
  path.siblings.push_back(kZeroHash);
  EXPECT_FALSE(
      MerkleTree::VerifyPath(tree.leaf(5), path, 16, tree.root()).ok());
}

TEST(MerkleTest, PathIndexBeyondCountFails) {
  MerkleTree tree(MakeLeaves(8));
  MerklePath path = tree.Path(7);
  path.leaf_index = 8;
  EXPECT_FALSE(
      MerkleTree::VerifyPath(tree.leaf(7), path, 8, tree.root()).ok());
}

TEST(MerkleTest, CarriedNodePathsVerify) {
  // Odd widths exercise the carry-up rule at several levels: 11 leaves give
  // level widths 11 -> 6 -> 3 -> 2 -> 1.
  MerkleTree tree(MakeLeaves(11));
  for (uint64_t i = 0; i < 11; ++i) {
    EXPECT_TRUE(
        MerkleTree::VerifyPath(tree.leaf(i), tree.Path(i), 11, tree.root())
            .ok())
        << i;
  }
}

TEST(MerkleTest, PathEncodeDecodeRoundTrip) {
  MerkleTree tree(MakeLeaves(33));
  const MerklePath path = tree.Path(20);
  auto decoded = MerklePath::Decode(path.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().leaf_index, path.leaf_index);
  EXPECT_EQ(decoded.value().siblings, path.siblings);
}

TEST(MerkleTest, RangeProofEncodeDecodeRoundTrip) {
  MerkleTree tree(MakeLeaves(33));
  const MerkleRangeProof proof = tree.RangeProof(7, 19);
  auto decoded = MerkleRangeProof::Decode(proof.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().lo, proof.lo);
  EXPECT_EQ(decoded.value().hashes, proof.hashes);
}

TEST(MerkleTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(MerklePath::Decode("\xff\xff\xff").ok());
  EXPECT_FALSE(MerkleRangeProof::Decode("\x01\x05"
                                        "abc")
                   .ok());
}

TEST(MerkleTest, RangeProofWrongOffsetFails) {
  MerkleTree tree(MakeLeaves(32));
  std::vector<Hash256> run;
  for (uint64_t i = 4; i <= 9; ++i) run.push_back(tree.leaf(i));
  MerkleRangeProof proof = tree.RangeProof(4, 9);
  proof.lo = 5;  // misaligned claim
  EXPECT_FALSE(
      MerkleTree::VerifyRange(run, proof, 32, tree.root()).ok());
}

TEST(MerkleTest, FullRangeNeedsNoExtraHashes) {
  MerkleTree tree(MakeLeaves(16));
  const MerkleRangeProof proof = tree.RangeProof(0, 15);
  EXPECT_TRUE(proof.hashes.empty());
  std::vector<Hash256> run;
  for (uint64_t i = 0; i < 16; ++i) run.push_back(tree.leaf(i));
  EXPECT_TRUE(MerkleTree::VerifyRange(run, proof, 16, tree.root()).ok());
}

TEST(MerkleTest, PathLengthIsLogarithmic) {
  MerkleTree tree(MakeLeaves(1024));
  EXPECT_EQ(tree.Path(512).siblings.size(), 10u);
}

}  // namespace
}  // namespace elsm::crypto
