// OPE tests (paper §5.6.2 extension): order preservation (property sweep),
// round trips, tamper rejection, and end-to-end verified range queries over
// order-preserving-encrypted keys, plus the WriteBatch API.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "crypto/ope.h"
#include "elsm/elsm_db.h"
#include "storage/simfs.h"

namespace elsm {
namespace {

TEST(OpeTest, RoundTripAssortedStrings) {
  crypto::OpeCipher ope("k");
  const std::vector<std::string> plains = {
      "", "a", "abc", "user000123", std::string("\x00\xff\x7f", 3),
      std::string(64, 'z')};
  for (const std::string& plain : plains) {
    const std::string ct = ope.Encrypt(plain);
    auto back = ope.Decrypt(ct);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.value(), plain);
  }
}

TEST(OpeTest, PreservesOrderOnRandomPairs) {
  crypto::OpeCipher ope("key");
  Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    std::string a, b;
    const size_t la = rng.Uniform(10);
    const size_t lb = rng.Uniform(10);
    for (size_t i = 0; i < la; ++i) a.push_back(char('a' + rng.Uniform(6)));
    for (size_t i = 0; i < lb; ++i) b.push_back(char('a' + rng.Uniform(6)));
    const std::string ea = ope.Encrypt(a);
    const std::string eb = ope.Encrypt(b);
    EXPECT_EQ(a < b, ea < eb) << "a=" << a << " b=" << b;
    EXPECT_EQ(a == b, ea == eb);
  }
}

TEST(OpeTest, PrefixSortsBeforeExtension) {
  crypto::OpeCipher ope("key");
  EXPECT_LT(ope.Encrypt("user"), ope.Encrypt("user0"));
  EXPECT_LT(ope.Encrypt(""), ope.Encrypt(std::string("\x00", 1)));
}

TEST(OpeTest, SortedSequenceStaysSorted) {
  crypto::OpeCipher ope("key");
  std::vector<std::string> ciphertexts;
  for (int i = 0; i < 200; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%05d", i * 7);
    ciphertexts.push_back(ope.Encrypt(buf));
  }
  EXPECT_TRUE(std::is_sorted(ciphertexts.begin(), ciphertexts.end()));
}

TEST(OpeTest, DifferentKeysDifferentCiphertexts) {
  crypto::OpeCipher a("key1");
  crypto::OpeCipher b("key2");
  EXPECT_NE(a.Encrypt("same-plaintext"), b.Encrypt("same-plaintext"));
}

TEST(OpeTest, DecryptRejectsGarbage) {
  crypto::OpeCipher ope("key");
  EXPECT_FALSE(ope.Decrypt("\x01").ok());          // truncated code
  EXPECT_FALSE(ope.Decrypt("\xff\xff\x00\x00").ok());  // impossible code
  std::string ct = ope.Encrypt("abc");
  ct += "x";  // trailing byte
  EXPECT_FALSE(ope.Decrypt(ct).ok());
}

TEST(OpeDbTest, VerifiedRangeQueriesOverEncryptedKeys) {
  Options o;
  o.mode = Mode::kP2;
  o.memtable_bytes = 4 << 10;
  o.order_preserving_keys = true;
  o.encrypt_values = true;
  auto db = ElsmDb::Create(o);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 80; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i);
    ASSERT_TRUE(db.value()->Put(key, "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db.value()->Flush().ok());

  // Point reads round-trip through the OPE layer.
  auto got = db.value()->Get("k00042");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(got.value().has_value());
  EXPECT_EQ(*got.value(), "v42");

  // Range scan works — the property DE cannot provide.
  auto scan = db.value()->Scan("k00010", "k00020");
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan.value().size(), 11u);
  EXPECT_EQ(scan.value().front().key, "k00010");
  EXPECT_EQ(scan.value().back().key, "k00020");
  EXPECT_EQ(scan.value()[5].value, "v15");

  // No plaintext key appears on the untrusted disk.
  bool plain_on_disk = false;
  for (const auto& name : db.value()->fs().List(o.name)) {
    auto blob = db.value()->fs().Blob(name);
    if (blob && blob->find("k00042") != std::string::npos) plain_on_disk = true;
  }
  EXPECT_FALSE(plain_on_disk);
}

TEST(OpeDbTest, ExclusiveWithDeterministicEncryption) {
  Options o;
  o.deterministic_key_encryption = true;
  o.order_preserving_keys = true;
  EXPECT_FALSE(ElsmDb::Create(o).ok());
}

TEST(WriteBatchTest, AtomicBatchApplies) {
  Options o;
  o.mode = Mode::kP2;
  o.memtable_bytes = 4 << 10;
  auto db = ElsmDb::Create(o);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value()->Put("stale", "old").ok());

  ElsmDb::WriteBatch batch;
  for (int i = 0; i < 50; ++i) {
    batch.Put("batch" + std::to_string(i), "v" + std::to_string(i));
  }
  batch.Delete("stale");
  ASSERT_TRUE(db.value()->Write(batch).ok());

  for (int i = 0; i < 50; ++i) {
    auto got = db.value()->Get("batch" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got.value().has_value());
    EXPECT_EQ(*got.value(), "v" + std::to_string(i));
  }
  EXPECT_FALSE(db.value()->Get("stale").value().has_value());
}

TEST(WriteBatchTest, BatchSurvivesFlushAndCompaction) {
  Options o;
  o.mode = Mode::kP2;
  o.memtable_bytes = 2 << 10;  // batch larger than the memtable
  auto db = ElsmDb::Create(o);
  ASSERT_TRUE(db.ok());
  ElsmDb::WriteBatch batch;
  for (int i = 0; i < 200; ++i) {
    batch.Put("k" + std::to_string(i), "v" + std::to_string(i));
  }
  ASSERT_TRUE(db.value()->Write(batch).ok());
  ASSERT_TRUE(db.value()->CompactAll().ok());
  for (int i = 0; i < 200; i += 17) {
    auto got = db.value()->Get("k" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got.value().has_value()) << i;
  }
}

}  // namespace
}  // namespace elsm
