// PosixFs backend tests: Fs-contract semantics on real files, the
// unsynced-data-loss model of the FaultFs decorator (which verifies the
// engine's fsync ordering), reopen-across-process-restart recovery, and
// on-disk tampering detection (AuthFailure) on the posix backend.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "auth/adversary.h"
#include "elsm/elsm_db.h"
#include "elsm/sharded_db.h"
#include "storage/fault_fs.h"
#include "storage/posix_fs.h"
#include "storage/simfs.h"
#include "temp_dir.h"

namespace elsm {
namespace {

using storage::FaultFs;
using storage::PosixFs;
using test_util::TempDir;

std::shared_ptr<sgx::Enclave> MakeEnclave() {
  return std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
}

// --- Fs contract on real files ---------------------------------------------

TEST(PosixFsTest, WriteReadRoundTripAndAtomicReplace) {
  TempDir dir;
  ASSERT_TRUE(dir.ok());
  PosixFs fs(MakeEnclave(), dir.path());
  ASSERT_TRUE(fs.Write("db/file", "hello world").ok());
  auto all = fs.ReadAll("db/file");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), "hello world");
  // Replace: readers only ever see whole blobs.
  ASSERT_TRUE(fs.Write("db/file", "v2").ok());
  EXPECT_EQ(fs.ReadAll("db/file").value(), "v2");
  auto range = fs.Read("db/file", 1, 10);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range.value(), "2");
  EXPECT_FALSE(fs.Read("db/file", 3, 1).ok()) << "read past EOF must fail";
  EXPECT_FALSE(fs.ReadAll("db/missing").ok());
}

TEST(PosixFsTest, AppendCreatesAndExtends) {
  TempDir dir;
  ASSERT_TRUE(dir.ok());
  PosixFs fs(MakeEnclave(), dir.path());
  ASSERT_TRUE(fs.Append("wal", "aaa").ok());
  ASSERT_TRUE(fs.Append("wal", "bbb").ok());
  EXPECT_EQ(fs.ReadAll("wal").value(), "aaabbb");
  EXPECT_EQ(fs.FileSize("wal").value(), 6u);
  ASSERT_TRUE(fs.Sync("wal").ok());
}

TEST(PosixFsTest, DeleteRenameListExists) {
  TempDir dir;
  ASSERT_TRUE(dir.ok());
  PosixFs fs(MakeEnclave(), dir.path());
  ASSERT_TRUE(fs.Write("db/a", "1").ok());
  ASSERT_TRUE(fs.Write("db/nested/b", "2").ok());
  ASSERT_TRUE(fs.Write("other/c", "3").ok());
  EXPECT_TRUE(fs.Exists("db/a"));
  EXPECT_FALSE(fs.Exists("db/zzz"));
  EXPECT_EQ(fs.List("db/").size(), 2u);
  EXPECT_EQ(fs.List("").size(), 3u);
  ASSERT_TRUE(fs.Rename("db/a", "db/a2").ok());
  EXPECT_FALSE(fs.Exists("db/a"));
  EXPECT_EQ(fs.ReadAll("db/a2").value(), "1");
  ASSERT_TRUE(fs.Delete("db/a2").ok());
  EXPECT_FALSE(fs.Delete("db/a2").ok());
  EXPECT_EQ(fs.List("db/").size(), 1u);
  ASSERT_TRUE(fs.SyncDir().ok());
}

TEST(PosixFsTest, ListIsSortedLikeSimFs) {
  TempDir dir;
  ASSERT_TRUE(dir.ok());
  PosixFs fs(MakeEnclave(), dir.path());
  ASSERT_TRUE(fs.Write("db/b", "x").ok());
  ASSERT_TRUE(fs.Write("db/a", "x").ok());
  ASSERT_TRUE(fs.Write("db/c", "x").ok());
  const auto names = fs.List("db/");
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "db/a");
  EXPECT_EQ(names[2], "db/c");
}

TEST(PosixFsTest, BlobSurvivesDeleteAndSeesCorruption) {
  TempDir dir;
  ASSERT_TRUE(dir.ok());
  PosixFs fs(MakeEnclave(), dir.path());
  ASSERT_TRUE(fs.Write("f", "pinned-content").ok());
  auto blob = fs.Blob("f");
  ASSERT_NE(blob, nullptr);
  // A live handle behaves like a shared mapping: on-disk tampering shows
  // through it...
  ASSERT_TRUE(fs.Corrupt("f", 0, 0x20));
  EXPECT_EQ((*blob)[0], 'p' ^ 0x20);
  EXPECT_EQ(fs.ReadAll("f").value()[0], 'p' ^ 0x20);
  // ...and mmap-after-unlink keeps the bytes alive past Delete.
  ASSERT_TRUE(fs.Delete("f").ok());
  EXPECT_EQ(blob->size(), std::string("pinned-content").size());
  EXPECT_FALSE(fs.Exists("f"));
}

TEST(PosixFsTest, StrandedWriteTmpSweptOnNextMount) {
  // A hard process kill mid-Write can strand the ".ptmp" sibling, which
  // List() hides from the store's orphan GC — the next PosixFs over the
  // root (the "mount") must sweep it.
  TempDir dir;
  ASSERT_TRUE(dir.ok());
  {
    PosixFs fs(MakeEnclave(), dir.path());
    ASSERT_TRUE(fs.Write("db/live", "kept").ok());
  }
  const auto stranded =
      std::filesystem::path(dir.path()) / "db" / "crashed.sst.ptmp";
  { std::ofstream(stranded) << "half-written"; }
  ASSERT_TRUE(std::filesystem::exists(stranded));
  // The constructor sweeps once per (process, root); this root was
  // already mounted above, so simulate the next process's mount directly.
  PosixFs fs(MakeEnclave(), dir.path());
  fs.SweepStrandedTmp();
  EXPECT_FALSE(std::filesystem::exists(stranded));
  EXPECT_EQ(fs.ReadAll("db/live").value(), "kept");
}

TEST(PosixFsTest, RejectsEscapingNames) {
  TempDir dir;
  ASSERT_TRUE(dir.ok());
  PosixFs fs(MakeEnclave(), dir.path());
  EXPECT_FALSE(fs.Write("../escape", "x").ok());
  EXPECT_FALSE(fs.Write("/abs", "x").ok());
  EXPECT_FALSE(fs.Write("a/../../b", "x").ok());
  EXPECT_TRUE(fs.Write("dots..are/fine..", "x").ok());
}

TEST(PosixFsTest, ChargesCostsLikeSimFs) {
  // The simulated clock must stay backend-independent: same charges for
  // the same ops, so sim and posix runs are cost-comparable.
  TempDir dir;
  ASSERT_TRUE(dir.ok());
  auto enclave_posix = MakeEnclave();
  auto enclave_sim = MakeEnclave();
  PosixFs posix(enclave_posix, dir.path());
  storage::SimFs sim(enclave_sim);
  for (storage::Fs* fs : {static_cast<storage::Fs*>(&posix),
                          static_cast<storage::Fs*>(&sim)}) {
    ASSERT_TRUE(fs->Write("f", std::string(1000, 'x')).ok());
    ASSERT_TRUE(fs->Append("wal", std::string(100, 'y')).ok());
    ASSERT_TRUE(fs->Read("f", 0, 500).ok());
    ASSERT_TRUE(fs->Sync("wal").ok());
    ASSERT_TRUE(fs->SyncDir().ok());
  }
  EXPECT_EQ(enclave_posix->now_ns(), enclave_sim->now_ns());
  EXPECT_EQ(enclave_posix->counters().file_bytes_written,
            enclave_sim->counters().file_bytes_written);
}

// --- FaultFs unsynced-data-loss model ---------------------------------------

// The decorator's undo log must drop exactly the mutations not covered by
// a barrier. Exercised over both backends.
class UnsyncedLossTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::shared_ptr<storage::Fs> MakeBase(std::shared_ptr<sgx::Enclave> e) {
    if (std::string(GetParam()) == "posix") {
      return std::make_shared<PosixFs>(std::move(e), dir_.path());
    }
    return std::make_shared<storage::SimFs>(std::move(e));
  }
  TempDir dir_;
};

TEST_P(UnsyncedLossTest, CrashDropsUnsyncedAppendsKeepsSyncedPrefix) {
  auto fs = std::make_shared<FaultFs>(MakeBase(MakeEnclave()));
  fs->EnableUnsyncedLoss();
  ASSERT_TRUE(fs->Append("wal", "durable|").ok());
  ASSERT_TRUE(fs->Sync("wal").ok());
  ASSERT_TRUE(fs->SyncDir().ok());  // the create itself needs the dir barrier
  ASSERT_TRUE(fs->Append("wal", "volatile|").ok());
  ASSERT_TRUE(fs->Append("wal", "more-volatile").ok());
  fs->CrashNow();
  fs->ClearCrash();
  EXPECT_EQ(fs->ReadAll("wal").value(), "durable|");
}

TEST_P(UnsyncedLossTest, CrashDropsUnsyncedFileEntirely) {
  auto fs = std::make_shared<FaultFs>(MakeBase(MakeEnclave()));
  fs->EnableUnsyncedLoss();
  ASSERT_TRUE(fs->Write("sst", "never-synced").ok());
  ASSERT_TRUE(fs->Write("kept", "synced").ok());
  ASSERT_TRUE(fs->Sync("kept").ok());
  ASSERT_TRUE(fs->SyncDir().ok());
  fs->CrashNow();
  fs->ClearCrash();
  EXPECT_FALSE(fs->Exists("sst")) << "unsynced create must not survive";
  EXPECT_EQ(fs->ReadAll("kept").value(), "synced");
}

TEST_P(UnsyncedLossTest, CreatedFileVanishesWithoutSyncDirEvenIfDataSynced) {
  // The classic trap the strict model must catch: fsync of a freshly
  // created file does not persist its directory entry — only SyncDir
  // does. A write path acknowledging on Sync alone loses the whole file.
  auto fs = std::make_shared<FaultFs>(MakeBase(MakeEnclave()));
  fs->EnableUnsyncedLoss();
  ASSERT_TRUE(fs->Append("wal", "fsynced-data").ok());
  ASSERT_TRUE(fs->Sync("wal").ok());
  fs->CrashNow();  // no SyncDir ran since the create
  fs->ClearCrash();
  EXPECT_FALSE(fs->Exists("wal"))
      << "created-but-never-dir-synced file must not survive";
}

TEST_P(UnsyncedLossTest, DurableRenameOfUnsyncedDataYieldsEmptyFile) {
  // Rename durable (SyncDir) but the renamed bytes never fsynced: the
  // file exists under the new name with only its synced prefix — here
  // none, the zero-length-file outcome — never the full unsynced payload.
  auto fs = std::make_shared<FaultFs>(MakeBase(MakeEnclave()));
  fs->EnableUnsyncedLoss();
  ASSERT_TRUE(fs->Write("tmp", "never-fsynced-payload").ok());
  ASSERT_TRUE(fs->Rename("tmp", "final").ok());
  ASSERT_TRUE(fs->SyncDir().ok());
  fs->CrashNow();
  fs->ClearCrash();
  EXPECT_FALSE(fs->Exists("tmp"));
  ASSERT_TRUE(fs->Exists("final"));
  EXPECT_EQ(fs->ReadAll("final").value(), "")
      << "unsynced bytes must not survive a durable rename";
}

TEST_P(UnsyncedLossTest, RenameNeedsSyncDirToSurvive) {
  auto fs = std::make_shared<FaultFs>(MakeBase(MakeEnclave()));
  fs->EnableUnsyncedLoss();
  // The manifest install protocol, interrupted before the directory fsync:
  ASSERT_TRUE(fs->Write("MANIFEST", "old").ok());
  ASSERT_TRUE(fs->Sync("MANIFEST").ok());
  ASSERT_TRUE(fs->SyncDir().ok());
  ASSERT_TRUE(fs->Write("MANIFEST.tmp", "new").ok());
  ASSERT_TRUE(fs->Sync("MANIFEST.tmp").ok());
  ASSERT_TRUE(fs->Rename("MANIFEST.tmp", "MANIFEST").ok());
  fs->CrashNow();  // power fails before SyncDir
  fs->ClearCrash();
  EXPECT_EQ(fs->ReadAll("MANIFEST").value(), "old")
      << "un-fsynced rename must roll back";
  // The tmp file was created after the last SyncDir, so strictly its
  // directory entry was never durable either: it is gone, not restored.
  EXPECT_FALSE(fs->Exists("MANIFEST.tmp"));

  // Run the full protocol and crash after the barrier: the install sticks.
  ASSERT_TRUE(fs->Write("MANIFEST.tmp", "new").ok());
  ASSERT_TRUE(fs->Sync("MANIFEST.tmp").ok());
  ASSERT_TRUE(fs->Rename("MANIFEST.tmp", "MANIFEST").ok());
  ASSERT_TRUE(fs->SyncDir().ok());
  fs->CrashNow();
  fs->ClearCrash();
  EXPECT_EQ(fs->ReadAll("MANIFEST").value(), "new");
  EXPECT_FALSE(fs->Exists("MANIFEST.tmp"));
}

TEST_P(UnsyncedLossTest, DeleteRollsBackWithoutSyncDir) {
  auto fs = std::make_shared<FaultFs>(MakeBase(MakeEnclave()));
  fs->EnableUnsyncedLoss();
  ASSERT_TRUE(fs->Write("f", "contents").ok());
  ASSERT_TRUE(fs->Sync("f").ok());
  ASSERT_TRUE(fs->SyncDir().ok());
  ASSERT_TRUE(fs->Delete("f").ok());
  EXPECT_FALSE(fs->Exists("f"));
  fs->CrashNow();
  fs->ClearCrash();
  EXPECT_EQ(fs->ReadAll("f").value(), "contents")
      << "un-fsynced unlink must roll back";
}

TEST_P(UnsyncedLossTest, RenamedAwayFileDoesNotResurrectAfterDurableRename) {
  // An overwritten-then-renamed file: once SyncDir makes the rename
  // durable, a crash must leave only the destination (with the synced
  // content) — the source's data pre-image must not recreate it.
  auto fs = std::make_shared<FaultFs>(MakeBase(MakeEnclave()));
  fs->EnableUnsyncedLoss();
  ASSERT_TRUE(fs->Write("f", "v1").ok());
  ASSERT_TRUE(fs->Sync("f").ok());
  ASSERT_TRUE(fs->SyncDir().ok());
  ASSERT_TRUE(fs->Write("f", "v2-unsynced").ok());
  ASSERT_TRUE(fs->Rename("f", "g").ok());
  ASSERT_TRUE(fs->SyncDir().ok());
  fs->CrashNow();
  fs->ClearCrash();
  EXPECT_FALSE(fs->Exists("f")) << "durably renamed-away file resurrected";
  ASSERT_TRUE(fs->Exists("g"));
  EXPECT_EQ(fs->ReadAll("g").value(), "v1")
      << "only the synced content may survive under the new name";

  // And with the rename still volatile, the rollback is the full undo.
  ASSERT_TRUE(fs->Write("g", "v3").ok());
  ASSERT_TRUE(fs->Sync("g").ok());
  ASSERT_TRUE(fs->SyncDir().ok());
  ASSERT_TRUE(fs->Rename("g", "h").ok());
  fs->CrashNow();
  fs->ClearCrash();
  EXPECT_EQ(fs->ReadAll("g").value(), "v3");
  EXPECT_FALSE(fs->Exists("h"));
}

INSTANTIATE_TEST_SUITE_P(Backends, UnsyncedLossTest,
                         ::testing::Values("sim", "posix"));

// --- the store on real files ------------------------------------------------

Options PosixOptions(const std::string& dir) {
  Options o;
  o.mode = Mode::kP2;
  o.memtable_bytes = 4 << 10;
  o.level1_bytes = 16 << 10;
  o.block_bytes = 1024;
  o.file_bytes = 8 << 10;
  o.backend = storage::BackendKind::kPosix;
  o.backend_dir = dir;
  return o;
}

std::string Key(int i) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

TEST(PosixBackendTest, ReopenAcrossProcessRestart) {
  // A "process restart": every in-memory object — including the PosixFs
  // instance itself — is destroyed; only the real directory and the
  // trusted platform (hardware counter + sealing key) survive. A second
  // PosixFs over the same root must recover the store with verified reads.
  TempDir dir;
  ASSERT_TRUE(dir.ok());
  auto platform = std::make_shared<TrustedPlatform>();
  Options o = PosixOptions(dir.path());
  {
    auto fs = std::make_shared<PosixFs>(MakeEnclave(), dir.path());
    auto db = ElsmDb::Open(o, fs, platform);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "persisted-" + Key(i)).ok());
    }
    ASSERT_TRUE(db.value()->Close().ok());
  }
  // Fresh Fs instance over the same on-disk state.
  auto fs = std::make_shared<PosixFs>(MakeEnclave(), dir.path());
  auto db = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (int i = 0; i < 300; i += 11) {
    auto got = db.value()->GetVerified(Key(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value().record.has_value()) << Key(i);
    ASSERT_TRUE(got.value().verified);
    EXPECT_EQ(got.value().record->value, "persisted-" + Key(i));
  }
  auto scanned = db.value()->Scan(Key(0), Key(999));
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  EXPECT_EQ(scanned.value().size(), 300u);
}

TEST(PosixBackendTest, OnDiskByteFlipFailsVerification) {
  // The adversary flips one byte of an SSTable on the real disk; the next
  // verified reads touching it must AuthFailure (or reject the block as
  // corrupt), never return the tampered value.
  TempDir dir;
  ASSERT_TRUE(dir.ok());
  Options o = PosixOptions(dir.path());
  auto db = ElsmDb::Create(o);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), "genuine").ok());
  }
  ASSERT_TRUE(db.value()->CompactAll().ok());

  std::string victim;
  for (const auto& name : db.value()->fs().List(o.name)) {
    if (name.ends_with(".sst")) {
      victim = name;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  ASSERT_TRUE(auth::Adversary::CorruptFile(db.value()->fs(), victim, 100));

  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    auto got = db.value()->GetVerified(Key(i));
    if (!got.ok()) {
      EXPECT_TRUE(got.status().IsAuthFailure() || got.status().IsCorruption())
          << got.status().ToString();
      ++failures;
    } else if (got.value().record.has_value()) {
      EXPECT_EQ(got.value().record->value, "genuine");
    }
  }
  EXPECT_GT(failures, 0);
}

TEST(PosixBackendTest, ShardedStoreReopensOnSharedRoot) {
  // ShardedDb: every shard (plus the super-manifest) lives under one
  // --dir; reopen with a fresh ShardEnv of fresh PosixFs instances must
  // recover, and whole-shard deletion must still read as an attack.
  TempDir dir;
  ASSERT_TRUE(dir.ok());
  Options o = PosixOptions(dir.path());
  constexpr uint32_t kShards = 3;
  auto env = std::make_shared<ShardEnv>();
  {
    auto db = ShardedDb::Open(o, kShards, env);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "sharded").ok());
    }
    ASSERT_TRUE(db.value()->Flush().ok());
    ASSERT_TRUE(db.value()->Close().ok());
  }
  // "Restart": keep only the trusted platforms; rebuild every Fs from disk.
  auto env2 = std::make_shared<ShardEnv>();
  env2->meta_platform = env->meta_platform;
  env2->shard_platforms = env->shard_platforms;
  {
    auto db = ShardedDb::Open(o, kShards, env2);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 200; i += 17) {
      auto got = db.value()->Get(Key(i));
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_TRUE(got.value().has_value());
      EXPECT_EQ(*got.value(), "sharded");
    }
    ASSERT_TRUE(db.value()->Close().ok());
  }
  // Drop one shard's directory wholesale: AuthFailure on reopen.
  std::filesystem::remove_all(std::string(dir.path()) + "/" +
                              ShardedDb::ShardName(o.name, 1));
  auto env3 = std::make_shared<ShardEnv>();
  env3->meta_platform = env->meta_platform;
  env3->shard_platforms = env->shard_platforms;
  auto db = ShardedDb::Open(o, kShards, env3);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsAuthFailure() || db.status().IsRollbackDetected())
      << db.status().ToString();
}

TEST(PosixBackendTest, MissingBackendDirIsInvalidArgument) {
  Options o;
  o.backend = storage::BackendKind::kPosix;
  auto db = ElsmDb::Create(o);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument)
      << db.status().ToString();
}

}  // namespace
}  // namespace elsm
