// Property-based tests: randomized operation sequences checked against a
// std::map reference model in every mode, plus protocol invariants —
// verification always succeeds for an honest host (Definition 5.2,
// protocol correctness), proofs stop at the hit level (Lemma 5.4), and
// timestamps strictly decrease down the level stack.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>

#include "common/random.h"
#include "elsm/elsm_db.h"

namespace elsm {
namespace {

Options FuzzOptions(Mode mode, uint64_t seed) {
  Options o;
  o.mode = mode;
  // Vary geometry with the seed so different shapes are exercised.
  o.memtable_bytes = 1 << (10 + seed % 3);        // 1-4 KiB
  o.level1_bytes = o.memtable_bytes * 4;
  o.level_ratio = 2 + uint32_t(seed % 3);
  o.block_bytes = 512 << (seed % 2);
  o.file_bytes = 4 << 10;
  o.read_path = (seed % 2 == 0) ? lsm::ReadPathKind::kMmap
                                : lsm::ReadPathKind::kBuffer;
  return o;
}

struct ModelCase {
  Mode mode;
  uint64_t seed;
};

class RandomOpsTest : public ::testing::TestWithParam<ModelCase> {};

TEST_P(RandomOpsTest, MatchesReferenceModel) {
  const auto [mode, seed] = GetParam();
  auto db = ElsmDb::Create(FuzzOptions(mode, seed));
  ASSERT_TRUE(db.ok());
  std::map<std::string, std::optional<std::string>> model;
  Rng rng(seed);

  auto key_of = [](uint64_t i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%05llu",
                  static_cast<unsigned long long>(i));
    return std::string(buf);
  };

  for (int op = 0; op < 2000; ++op) {
    const uint64_t which = rng.Uniform(100);
    const std::string key = key_of(rng.Uniform(150));
    if (which < 55) {  // put
      const std::string value = "v" + std::to_string(op);
      ASSERT_TRUE(db.value()->Put(key, value).ok());
      model[key] = value;
    } else if (which < 65) {  // delete
      ASSERT_TRUE(db.value()->Delete(key).ok());
      model[key] = std::nullopt;
    } else if (which < 95) {  // get
      auto got = db.value()->Get(key);
      ASSERT_TRUE(got.ok()) << got.status().ToString() << " op=" << op;
      auto it = model.find(key);
      const bool expect_present =
          it != model.end() && it->second.has_value();
      ASSERT_EQ(got.value().has_value(), expect_present)
          << "op=" << op << " key=" << key;
      if (expect_present) {
        EXPECT_EQ(*got.value(), *it->second);
      }
    } else if (which < 98) {  // scan
      const std::string hi = key_of(rng.Uniform(150));
      const std::string lo = std::min(key, hi);
      const std::string hi2 = std::max(key, hi);
      auto scan = db.value()->Scan(lo, hi2);
      ASSERT_TRUE(scan.ok()) << scan.status().ToString() << " op=" << op;
      std::map<std::string, std::string> expect;
      for (auto it2 = model.lower_bound(lo);
           it2 != model.end() && it2->first <= hi2; ++it2) {
        if (it2->second.has_value()) expect[it2->first] = *it2->second;
      }
      ASSERT_EQ(scan.value().size(), expect.size()) << "op=" << op;
      for (const auto& r : scan.value()) {
        auto it2 = expect.find(r.key);
        ASSERT_NE(it2, expect.end()) << r.key;
        EXPECT_EQ(r.value, it2->second);
      }
    } else {  // flush or full compaction
      if (which == 98) {
        ASSERT_TRUE(db.value()->Flush().ok());
      } else {
        ASSERT_TRUE(db.value()->CompactAll().ok());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, RandomOpsTest,
    ::testing::Values(ModelCase{Mode::kP2, 1}, ModelCase{Mode::kP2, 2},
                      ModelCase{Mode::kP2, 3}, ModelCase{Mode::kP2, 4},
                      ModelCase{Mode::kP1, 5}, ModelCase{Mode::kP1, 6},
                      ModelCase{Mode::kUnsecured, 7},
                      ModelCase{Mode::kP2, 8}, ModelCase{Mode::kP2, 9},
                      ModelCase{Mode::kP2, 10}),
    [](const auto& info) {
      const char* m = info.param.mode == Mode::kP2
                          ? "P2"
                          : (info.param.mode == Mode::kP1 ? "P1" : "Raw");
      return std::string(m) + "Seed" + std::to_string(info.param.seed);
    });

TEST(ProtocolInvariants, EarlyStopOmitsDeeperLevels) {
  // Lemma 5.4 consequence: the proof for a found key ends at the hit level.
  Options o = FuzzOptions(Mode::kP2, 1);
  auto db = ElsmDb::Create(o);
  ASSERT_TRUE(db.ok());
  // Three generations spread across three levels.
  for (int gen = 0; gen < 3; ++gen) {
    for (int i = 0; i < 100; ++i) {
      char key[16];
      std::snprintf(key, sizeof(key), "k%05d", i);
      ASSERT_TRUE(db.value()->Put(key, "gen" + std::to_string(gen)).ok());
    }
    ASSERT_TRUE(gen == 0 ? db.value()->CompactAll().ok()
                         : db.value()->Flush().ok());
  }
  auto resp = db.value()->engine().Get("k00050", kLatest);
  ASSERT_TRUE(resp.ok());
  ASSERT_FALSE(resp.value().levels.empty());
  EXPECT_TRUE(resp.value().levels.back().found);
  EXPECT_LT(resp.value().levels.size(), db.value()->engine().levels().size())
      << "proof should stop before the deepest level";
}

TEST(ProtocolInvariants, TimestampsDecreaseDownTheStack) {
  // Lemma 5.4 itself: for any key, versions at shallower levels are newer.
  Options o = FuzzOptions(Mode::kP2, 2);
  auto db = ElsmDb::Create(o);
  ASSERT_TRUE(db.ok());
  Rng rng(99);
  for (int op = 0; op < 3000; ++op) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05llu",
                  static_cast<unsigned long long>(rng.Uniform(200)));
    ASSERT_TRUE(db.value()->Put(key, "v" + std::to_string(op)).ok());
  }
  ASSERT_TRUE(db.value()->Flush().ok());

  for (int i = 0; i < 200; i += 11) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i);
    auto resp = db.value()->engine().Get(key, 0);  // forces full descent
    ASSERT_TRUE(resp.ok());
    uint64_t shallowest_newer = UINT64_MAX;
    for (const auto& lr : resp.value().levels) {
      for (const auto& e : lr.chain) {
        EXPECT_LT(e.record.ts, shallowest_newer)
            << key << " level " << lr.level_pos;
      }
      if (!lr.chain.empty()) {
        shallowest_newer = lr.chain.back().record.ts;
      }
    }
  }
}

TEST(ProtocolInvariants, VerifiedAndUnverifiedAgree) {
  // verify_reads=false must return the same data as the verified path.
  Options verified_opts = FuzzOptions(Mode::kP2, 3);
  Options raw_opts = verified_opts;
  raw_opts.verify_reads = false;
  auto db1 = ElsmDb::Create(verified_opts);
  auto db2 = ElsmDb::Create(raw_opts);
  ASSERT_TRUE(db1.ok());
  ASSERT_TRUE(db2.ok());
  Rng rng(17);
  for (int op = 0; op < 1500; ++op) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05llu",
                  static_cast<unsigned long long>(rng.Uniform(100)));
    const std::string value = "v" + std::to_string(op);
    ASSERT_TRUE(db1.value()->Put(key, value).ok());
    ASSERT_TRUE(db2.value()->Put(key, value).ok());
  }
  for (int i = 0; i < 100; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i);
    auto a = db1.value()->Get(key);
    auto b = db2.value()->Get(key);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value()) << key;
  }
}

}  // namespace
}  // namespace elsm
